"""Ablation: elastic grow-after-shrink vs shrink-only under a node flap.

The same workload — one long job plus a short neighbour on a tight
4-node cluster — survives a node kill followed by a revival.  With
``elastic_grow`` off the long job limps to the finish at half gang while
the revived node idles; with it on, the scheduler re-grants the freed
slot at the next iteration boundary and the job reclaims its learner.
The grown fleet converts the revived capacity back into goodput.
"""

from conftest import emit

from repro.fleet import FleetScheduler, JobSpec, SharedCluster
from repro.utils.ascii import render_table

CLUSTER = dict(n_racks=2, nodes_per_rack=2, slots_per_node=1)
REVIVE_AFTER = 3e-4


def make_specs(elastic):
    return [
        JobSpec(name="long", n_learners=2, n_steps=12, seed=800,
                elastic_grow=elastic, checkpoint_every=4),
        JobSpec(name="short", n_learners=2, n_steps=3, seed=801),
    ]


def kill_then_revive(cluster, scheduler):
    """Kill one of the long job's nodes early, revive it shortly after."""
    job = scheduler.jobs["long"]
    while job.telemetry.steps < 1:
        yield cluster.engine.timeout(1e-4)
    node = job.placement[-1]
    scheduler.kill_node(node)
    yield cluster.engine.timeout(REVIVE_AFTER)
    scheduler.revive_node(node)


def run_elastic_ablation():
    rows = []
    for label, elastic in (("shrink-only", False), ("grow-after-shrink", True)):
        cluster = SharedCluster(**CLUSTER)
        scheduler = FleetScheduler(cluster, make_specs(elastic))
        scheduler.spawn(kill_then_revive(cluster, scheduler))
        report = scheduler.run()
        assert all(j.status == "finished" for j in report.jobs)
        assert report.leaked == []
        long = report.job("long")
        rows.append(
            (
                label,
                report.makespan,
                report.utilization,
                report.goodput,
                len(long.shrinks),
                len(long.grows),
            )
        )
    return rows


def test_ablation_elastic(benchmark):
    rows = benchmark.pedantic(run_elastic_ablation, rounds=1, iterations=1)
    table = render_table(
        ["mode", "makespan (ms)", "utilization", "goodput",
         "shrinks", "grows"],
        [
            [label, f"{makespan * 1e3:.2f}", f"{util:.1%}", f"{goodput:.1%}",
             str(shrinks), str(grows)]
            for label, makespan, util, goodput, shrinks, grows in rows
        ],
        title="Ablation — elastic recovery: shrink-only vs grow-after-shrink",
    )
    emit("ablation_elastic", table)

    by_mode = {r[0]: r for r in rows}
    shrink_only = by_mode["shrink-only"]
    grown = by_mode["grow-after-shrink"]
    # Both modes shrank exactly once; only the elastic one grew back.
    assert shrink_only[4] == grown[4] == 1
    assert shrink_only[5] == 0 and grown[5] == 1
    # Growing back turns the revived node's capacity into useful work.
    assert grown[3] > shrink_only[3]
    assert grown[2] > shrink_only[2]
    for row in rows:
        assert row[1] > 0
        assert 0 < row[3] <= row[2] <= 1
