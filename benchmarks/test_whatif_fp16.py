"""What-if: fp16 gradient compression halves the allreduce payload.

A natural companion to the paper's communication work: communicating
gradients in half precision halves every byte count in the reduction
pipeline.  This bench quantifies the epoch-level effect per algorithm —
large for the default OpenMPI path, modest once the multi-color algorithm
has already driven communication close to the wire.
"""

from conftest import emit

from repro.cluster import MINSKY_NODE, ClusterSpec
from repro.core.calibration import compute_model_for
from repro.data import IMAGENET_1K
from repro.models import build_resnet50
from repro.train import EpochTimeModel
from repro.utils.ascii import render_table

MODEL = build_resnet50()


def build(allreduce, fp16):
    grads = MODEL.gradient_bytes // 2 if fp16 else MODEL.gradient_bytes
    return EpochTimeModel(
        model=MODEL,
        cluster=ClusterSpec(name="w", n_nodes=32, node=MINSKY_NODE),
        dataset=IMAGENET_1K,
        compute=compute_model_for("resnet50"),
        allreduce_algorithm=allreduce,
        gradient_bytes_override=grads,
    )


def run_fp16_whatif():
    rows = {}
    for alg in ("multicolor", "openmpi_default"):
        for fp16 in (False, True):
            b = build(alg, fp16).iteration_breakdown()
            comm = b.inter_allreduce + b.intra_reduce + b.intra_broadcast
            rows[(alg, fp16)] = (b.total, comm)
    return rows


def test_whatif_fp16(benchmark):
    rows = benchmark.pedantic(run_fp16_whatif, rounds=1, iterations=1)
    table = render_table(
        ["allreduce", "precision", "iter (ms)", "comm (ms)"],
        [
            [alg, "fp16" if fp16 else "fp32", f"{t * 1e3:.1f}", f"{c * 1e3:.2f}"]
            for (alg, fp16), (t, c) in rows.items()
        ],
        title="What-if — fp16 gradients (ResNet-50, 32 nodes)",
    )
    emit("whatif_fp16", table)

    for alg in ("multicolor", "openmpi_default"):
        fp32_comm = rows[(alg, False)][1]
        fp16_comm = rows[(alg, True)][1]
        # Communication roughly halves (latency terms keep it above 0.5x).
        assert 0.4 < fp16_comm / fp32_comm < 0.75
    # Absolute saving is larger where communication was worse to begin with.
    save_default = rows[("openmpi_default", False)][0] - rows[("openmpi_default", True)][0]
    save_mc = rows[("multicolor", False)][0] - rows[("multicolor", True)][0]
    assert save_default > save_mc
