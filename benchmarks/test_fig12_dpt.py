"""Figure 12: epoch time with/without the DataParallelTable optimizations.

Paper: with DIMD + multi-color in place, the re-designed DPT improves
per-epoch time by 15% (GoogleNetBN) and 18% (ResNet-50); the improvement
in *scaling* is marginal.
"""

import pytest
from conftest import emit

from repro.analysis import PAPER_FIG12_GAINS, fig_dpt_series
from repro.analysis.compare import improvement_pct
from repro.train.metrics import scaling_efficiency
from repro.utils.ascii import render_table


def run_fig12():
    return fig_dpt_series()


def test_fig12_dpt_optimizations(benchmark):
    x, series, _meta = benchmark.pedantic(run_fig12, rounds=1, iterations=1)

    rows = []
    gains = {}
    for model in ("googlenet_bn", "resnet50"):
        for i, n in enumerate(x):
            base = series[f"{model} baseline"][i]
            opt = series[f"{model} optimized"][i]
            gain = improvement_pct(base, opt)
            gains.setdefault(model, []).append(gain)
            rows.append(
                [model, n, f"{base:.1f}", f"{opt:.1f}", f"{gain:.1f}",
                 f"{PAPER_FIG12_GAINS[model]:.0f}"]
            )
    table = render_table(
        ["model", "nodes", "baseline DPT (s)", "optimized DPT (s)",
         "gain %", "paper %"],
        rows,
        title="Figure 12 — DataParallelTable optimization effect",
    )
    emit("fig12_dpt", table)

    # Shape: optimized always wins, gains in the paper's 10-20% band.
    for model, gs in gains.items():
        for g in gs:
            assert g == pytest.approx(PAPER_FIG12_GAINS[model], abs=8.0)
    # "The improvement in scaling is marginal": efficiency changes < 5 pts.
    for model in ("googlenet_bn", "resnet50"):
        eff_base = scaling_efficiency(
            x[0], series[f"{model} baseline"][0], x[-1], series[f"{model} baseline"][-1]
        )
        eff_opt = scaling_efficiency(
            x[0], series[f"{model} optimized"][0], x[-1], series[f"{model} optimized"][-1]
        )
        assert abs(eff_base - eff_opt) < 5.0
