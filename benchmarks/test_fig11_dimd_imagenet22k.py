"""Figure 11: epoch time with/without DIMD, ImageNet-22k.

Same experiment as Figure 10 on the 7M-image / 22k-class dataset; the
paper reports comparable relative gains (the I/O path cost per image is
dataset-independent).
"""

from conftest import emit

from repro.analysis import fig_dimd_series
from repro.analysis.compare import improvement_pct
from repro.utils.ascii import render_table


def run_fig11():
    return fig_dimd_series("imagenet-22k")


def test_fig11_dimd_imagenet22k(benchmark):
    x, series, _meta = benchmark.pedantic(run_fig11, rounds=1, iterations=1)

    rows = []
    for model in ("googlenet_bn", "resnet50"):
        for i, n in enumerate(x):
            no = series[f"{model} file I/O"][i]
            yes = series[f"{model} DIMD"][i]
            rows.append(
                [model, n, f"{no:.0f}", f"{yes:.0f}",
                 f"{improvement_pct(no, yes):.1f}"]
            )
    table = render_table(
        ["model", "nodes", "file I/O (s)", "DIMD (s)", "gain %"],
        rows,
        title="Figure 11 — DIMD effect on ImageNet-22k epoch time",
    )
    emit("fig11_dimd_imagenet22k", table)

    for model in ("googlenet_bn", "resnet50"):
        for i in range(len(x)):
            no = series[f"{model} file I/O"][i]
            yes = series[f"{model} DIMD"][i]
            assert 5.0 < improvement_pct(no, yes) < 50.0
        # 22k epochs are ~5.5x longer than 1k (7M vs 1.28M images).
        assert series[f"{model} DIMD"][0] > 500
