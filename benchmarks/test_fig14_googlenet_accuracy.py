"""Figure 14: GoogleNetBN validation top-1 vs training time, 8/16/32 nodes."""

import numpy as np
from conftest import emit

from repro.analysis import fig_accuracy_series
from repro.utils.ascii import render_table


def run_fig14():
    return fig_accuracy_series("googlenet_bn")


def test_fig14_googlenet_accuracy_vs_time(benchmark):
    series, _meta = benchmark.pedantic(run_fig14, rounds=1, iterations=1)

    rows = [
        [name, f"{hours[-1]:.2f}", f"{top1[-1]:.2f}"]
        for name, (hours, top1) in series.items()
    ]
    emit(
        "fig14_googlenet_accuracy",
        render_table(
            ["config", "total hours", "final top-1 %"], rows,
            title="Figure 14 — GoogleNetBN top-1 vs training time",
        ),
    )

    finals = {name: top1[-1] for name, (_h, top1) in series.items()}
    hours = {name: h[-1] for name, (h, _t) in series.items()}
    assert all(73.5 < v < 75.5 for v in finals.values())
    assert hours["8 nodes"] > hours["16 nodes"] > hours["32 nodes"]
    # GoogleNetBN epochs are faster than ResNet-50's: 90 epochs at 8 nodes
    # in under 4.5 hours (155 s/epoch ~ 3.9 h).
    assert hours["8 nodes"] < 4.5
    for _name, (_h, top1) in series.items():
        assert np.all(np.diff(top1) >= -1e-9)
