"""Figure 16: GoogleNetBN training error vs training time, 8/16/32 nodes."""

import numpy as np
from conftest import emit

from repro.analysis import fig_error_series
from repro.utils.ascii import render_table


def run_fig16():
    return fig_error_series("googlenet_bn")


def test_fig16_googlenet_error_vs_time(benchmark):
    series, _meta = benchmark.pedantic(run_fig16, rounds=1, iterations=1)

    rows = [
        [name, f"{err[0]:.2f}", f"{err[-1]:.3f}", f"{hours[-1]:.2f}"]
        for name, (hours, err) in series.items()
    ]
    emit(
        "fig16_googlenet_error",
        render_table(
            ["config", "initial error", "final error", "hours"], rows,
            title="Figure 16 — GoogleNetBN training error vs time",
        ),
    )

    hours_final = {name: h[-1] for name, (h, _e) in series.items()}
    assert hours_final["8 nodes"] > hours_final["16 nodes"] > hours_final["32 nodes"]
    for _name, (_h, err) in series.items():
        assert err[0] > 6.0
        assert np.all(np.diff(err) <= 1e-9)
        assert err[-1] < 0.7
