"""Ablation: fleet scheduling — placement policy vs fault blast radius.

Runs the same five-job workload on one shared 2-rack cluster under both
placement policies, clean and with a node kill, and reports the fleet
metrics (makespan, queue wait, utilization, goodput, shrinks).  ``pack``
keeps each job's allreduce inside one rack (faster), but co-locates jobs
on nodes, so one dead node shrinks *several* jobs at once; ``spread``
pays cross-rack latency for independent fault domains.
"""

from conftest import emit

from repro.fleet import FleetScheduler, JobSpec, SharedCluster
from repro.utils.ascii import render_table

N_JOBS = 5


def make_specs():
    return [
        JobSpec(name=f"job{i}", n_learners=2, n_steps=5, seed=700 + i)
        for i in range(N_JOBS)
    ]


def kill_busiest_node(cluster, scheduler):
    """Kill the most-shared node once every job has made progress."""
    while True:
        yield cluster.engine.timeout(1e-4)
        running = [j for j in scheduler.jobs.values() if j.status == "running"]
        if running and all(j.telemetry.steps >= 1 for j in running):
            node = max(
                (n for n in cluster.nodes if n.alive),
                key=lambda n: (len(n.held), -n.index),
            )
            scheduler.kill_node(node.index)
            return


def run_fleet_ablation():
    rows = []
    for placement in ("pack", "spread"):
        for faulted in (False, True):
            cluster = SharedCluster()
            scheduler = FleetScheduler(
                cluster, make_specs(), placement=placement
            )
            if faulted:
                scheduler.spawn(kill_busiest_node(cluster, scheduler))
            report = scheduler.run()
            assert all(j.status == "finished" for j in report.jobs)
            assert report.leaked == []
            shrinks = sum(len(j.shrinks) for j in report.jobs)
            waits = [j.queue_wait for j in report.jobs]
            rows.append(
                (
                    placement,
                    "node-kill" if faulted else "clean",
                    report.makespan,
                    sum(waits) / len(waits),
                    report.utilization,
                    report.goodput,
                    shrinks,
                )
            )
    return rows


def test_ablation_fleet(benchmark):
    rows = benchmark.pedantic(run_fleet_ablation, rounds=1, iterations=1)
    table = render_table(
        ["placement", "fault", "makespan (ms)", "avg wait (ms)",
         "utilization", "goodput", "shrinks"],
        [
            [placement, fault, f"{makespan * 1e3:.2f}", f"{wait * 1e3:.3f}",
             f"{util:.1%}", f"{goodput:.1%}", str(shrinks)]
            for placement, fault, makespan, wait, util, goodput, shrinks in rows
        ],
        title=f"Ablation — fleet of {N_JOBS} jobs: placement vs node kill",
    )
    emit("ablation_fleet", table)

    by_key = {(r[0], r[1]): r for r in rows}
    # pack keeps each allreduce intra-rack: no slower than spread, clean.
    assert by_key[("pack", "clean")][2] <= by_key[("spread", "clean")][2] * 1.05
    # The kill lands on a co-hosted node: several jobs shrink under pack.
    assert by_key[("pack", "node-kill")][6] >= 2
    assert by_key[("spread", "node-kill")][6] >= 1
    # Every configuration keeps the fleet busy and productive.
    for row in rows:
        assert row[2] > 0
        assert 0 < row[5] <= row[4] <= 1
