"""Ablation: shuffle period vs per-node batch class diversity.

§4.1's randomness argument, quantified: on a class-sorted record file,
contiguous DIMD partitions freeze each learner's class mix; the
Algorithm 2 shuffle restores it.  This bench sweeps the shuffle period
and reports the class diversity of node batches next to the ideal.
"""

from conftest import emit

from repro.data.sampler import sampling_diversity_study
from repro.utils.ascii import render_table

KW = dict(
    n_learners=8,
    records_per_learner=512,
    n_classes=64,
    batch_per_learner=32,
    steps=64,
    seed=3,
)


def run_sampling_sweep():
    periods = [None, 32, 8, 2]
    return {p: sampling_diversity_study(shuffle_every=p, **KW) for p in periods}


def test_ablation_sampling(benchmark):
    reports = benchmark.pedantic(run_sampling_sweep, rounds=1, iterations=1)
    table = render_table(
        ["strategy", "classes/node-batch", "diversity", "record coverage"],
        [
            [r.strategy, f"{r.mean_classes_per_node_batch:.1f}",
             f"{r.class_diversity:.0%}", f"{r.record_coverage:.0%}"]
            for r in reports.values()
        ],
        title="Ablation — shuffle period vs batch class diversity "
        "(class-sorted record file)",
    )
    emit("ablation_sampling", table)

    frozen = reports[None]
    frequent = reports[2]
    assert frequent.class_diversity > 2 * frozen.class_diversity
    # Diversity grows (weakly) as shuffles become more frequent.
    series = [reports[p].class_diversity for p in (None, 32, 8, 2)]
    assert series[0] == min(series)
    assert series[-1] == max(series)
