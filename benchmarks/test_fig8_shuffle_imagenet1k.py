"""Figure 8: ImageNet-1k shuffle time + memory/node at 8/16/32 learners."""

import pytest
from conftest import emit

from repro.analysis import fig_shuffle_series
from repro.utils.ascii import render_table


def run_fig8():
    return fig_shuffle_series("imagenet-1k")


def test_fig8_shuffle_imagenet1k(benchmark):
    x, series, _meta = benchmark.pedantic(run_fig8, rounds=1, iterations=1)
    times = series["shuffle time (s)"]
    mems = series["memory/node (GB)"]

    table = render_table(
        ["learners", "shuffle (s)", "memory/node (GB)"],
        [[n, f"{times[i]:.2f}", f"{mems[i]:.1f}"] for i, n in enumerate(x)],
        title="Figure 8 — ImageNet-1k shuffle time and memory per node",
    )
    emit("fig8_shuffle_imagenet1k", table)

    # Shape: time decreases with learners, memory halves per doubling,
    # and the 70 GB set is ~3x faster to shuffle than the 220 GB set.
    assert times[0] > times[1] > times[2]
    assert mems[0] == pytest.approx(70 / 8, rel=0.01)
    assert mems[2] == pytest.approx(70 / 32, rel=0.01)
    assert times[2] < 4.0  # well under the 22k shuffle at the same scale
