"""Figure 13: ResNet-50 validation top-1 vs training time, 8/16/32 nodes.

Paper: all node counts reach ~75.5-76% top-1; more nodes reach it in less
wall-clock time; curves show the LR-decay staircase.
"""

import numpy as np
from conftest import emit

from repro.analysis import fig_accuracy_series
from repro.utils.ascii import render_series, render_table


def run_fig13():
    return fig_accuracy_series("resnet50")


def test_fig13_resnet50_accuracy_vs_time(benchmark):
    series, meta = benchmark.pedantic(run_fig13, rounds=1, iterations=1)

    rows = []
    for name, (hours, top1) in series.items():
        rows.append([name, f"{hours[-1]:.2f}", f"{top1[-1]:.2f}"])
    table = render_table(
        ["config", "total hours", "final top-1 %"], rows,
        title="Figure 13 — ResNet-50 top-1 vs training time",
    )
    # Downsample one curve for the chart.
    h32, t32 = series["32 nodes"]
    chart = render_series(
        h32[:: max(1, len(h32) // 60)],
        {"32 nodes": t32[:: max(1, len(t32) // 60)]},
        title="Figure 13 (32-node curve)", **meta,
    )
    emit("fig13_resnet_accuracy", table + "\n\n" + chart)

    finals = {name: top1[-1] for name, (_h, top1) in series.items()}
    hours = {name: h[-1] for name, (h, _t) in series.items()}
    # All configurations converge to ~the same accuracy...
    assert max(finals.values()) - min(finals.values()) < 1.0
    assert all(74.5 < v < 76.6 for v in finals.values())
    # ...but more nodes finish faster.
    assert hours["8 nodes"] > hours["16 nodes"] > hours["32 nodes"]
    # Curves are monotone non-decreasing.
    for _name, (_h, top1) in series.items():
        assert np.all(np.diff(top1) >= -1e-9)
