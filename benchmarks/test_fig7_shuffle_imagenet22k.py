"""Figure 7: ImageNet-22k shuffle time + memory/node at 8/16/32 learners.

Paper: shuffle time decreases with more learners; the full 220 GB set
shuffles across 32 learners in just 4.2 s; memory/node halves per doubling.
"""

import pytest
from conftest import emit

from repro.analysis import PAPER_SHUFFLE_22K_32, fig_shuffle_series
from repro.utils.ascii import render_table


def run_fig7():
    return fig_shuffle_series("imagenet-22k")


def test_fig7_shuffle_imagenet22k(benchmark):
    x, series, _meta = benchmark.pedantic(run_fig7, rounds=1, iterations=1)
    times = series["shuffle time (s)"]
    mems = series["memory/node (GB)"]

    table = render_table(
        ["learners", "shuffle (s)", "memory/node (GB)"],
        [[n, f"{times[i]:.2f}", f"{mems[i]:.1f}"] for i, n in enumerate(x)],
        title=(
            "Figure 7 — ImageNet-22k shuffle "
            f"(paper: 4.2 s at 32 learners; measured {times[-1]:.1f} s)"
        ),
    )
    emit("fig7_shuffle_imagenet22k", table)

    assert times[0] > times[1] > times[2]
    assert mems[0] == pytest.approx(2 * mems[1], rel=0.01)
    assert times[-1] == pytest.approx(PAPER_SHUFFLE_22K_32, rel=0.5)
