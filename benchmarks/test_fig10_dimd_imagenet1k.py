"""Figure 10: epoch time with/without DIMD, ImageNet-1k.

Paper: with the multi-color reduction in place, DIMD improves per-epoch
time by 33% for GoogleNetBN and 25% for ResNet-50.
"""

import pytest
from conftest import emit

from repro.analysis import PAPER_FIG10_GAINS, fig_dimd_series
from repro.train.metrics import speedup
from repro.utils.ascii import render_table


def run_fig10():
    return fig_dimd_series("imagenet-1k")


def test_fig10_dimd_imagenet1k(benchmark):
    x, series, _meta = benchmark.pedantic(run_fig10, rounds=1, iterations=1)

    rows = []
    gains = {}
    for model in ("googlenet_bn", "resnet50"):
        for i, n in enumerate(x):
            no = series[f"{model} file I/O"][i]
            yes = series[f"{model} DIMD"][i]
            # The paper's improvement convention, as in Table 1: (old-new)/new.
            gain = speedup(no, yes)
            gains.setdefault(model, []).append(gain)
            rows.append(
                [model, n, f"{no:.1f}", f"{yes:.1f}", f"{gain:.1f}",
                 f"{PAPER_FIG10_GAINS[model]:.0f}"]
            )
    table = render_table(
        ["model", "nodes", "file I/O (s)", "DIMD (s)", "gain %", "paper %"],
        rows,
        title="Figure 10 — DIMD effect on ImageNet-1k epoch time",
    )
    emit("fig10_dimd_imagenet1k", table)

    # Shape: DIMD always wins; gains within +-6 points of the paper's.
    for model, gs in gains.items():
        for g in gs:
            assert g > 5.0
            assert g == pytest.approx(PAPER_FIG10_GAINS[model], abs=6.0)
    # GoogleNetBN (lighter compute) benefits more than ResNet-50.
    assert min(gains["googlenet_bn"]) > max(gains["resnet50"]) - 2.0
