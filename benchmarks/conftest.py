"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure from the paper, prints the
same rows/series the paper reports (run with ``-s`` to see them inline) and
writes the rendered text to ``benchmarks/out/`` for inspection.
"""

from __future__ import annotations

from pathlib import Path

OUT_DIR = Path(__file__).parent / "out"


def emit(name: str, text: str) -> None:
    """Print a rendered table/figure and persist it."""
    print(f"\n{text}\n")
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
