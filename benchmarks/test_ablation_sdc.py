"""Ablation: what the SDC defense costs, and what it saves.

Two questions the fingerprinting design must answer with numbers:

* **Detection overhead** — per-bucket fingerprints are pure bookkeeping
  outside the simulation, so a clean run's *simulated* time is bit-equal
  with the guard on or off; the wall-clock cost of hashing is measured
  here, and the real-world audit latency enters simulated time only
  through the explicit ``sdc_audit_time`` knob on the step DAG's gated
  audit steps.
* **MTTR** — when a flip is caught at the allreduce boundary, quarantine
  and-rerun repeats one collective on the survivors; the classic
  alternative restores the last checkpoint and replays every step since.
  The gap between those two is the repair-time saving.
"""

import time

from conftest import emit

import numpy as np

from repro.train.injection import FaultPlan, sdc_flip
from repro.train.sdc_chaos import _N_STEPS, SDCChaosPoint, _build_trainer
from repro.utils.ascii import render_table

#: The scripted flip used for the MTTR comparison.
POINT = SDCChaosPoint(rank=1, bucket=0, iteration=2)
#: Checkpoint cadence of the hypothetical restore-based recovery.
CHECKPOINT_EVERY = 4


def _run(trainer):
    """Drive a trainer to completion; wall seconds, per-step sim, params."""
    with trainer:
        start = time.perf_counter()
        results = [trainer.step() for _ in range(_N_STEPS)]
        wall = time.perf_counter() - start
        return wall, [r.sim_time for r in results], trainer.params()


def _scripted_shrink_times(point):
    """Per-step sim times of a fault-free run shedding the same learner
    at the same iteration (the quarantine repair's reference cost)."""
    trainer = _build_trainer()
    with trainer:
        times = []
        for iteration in range(_N_STEPS):
            grads, losses = trainer.step_compute()
            if iteration == point.iteration:
                del grads[point.rank]
                trainer.absorb_failure(point.rank, reshuffle=False)
            summed, n = trainer._allreduce(grads)
            result = trainer.step_apply(summed, n, losses)
            times.append(result.sim_time)
        return times


def run_sdc_ablation():
    out = {}
    # Clean path: guard off vs on.
    for check in (False, True):
        out["on" if check else "off"] = _run(_build_trainer(sdc_check=check))
    # Priced audit: the step DAG's gated audit steps with explicit latency.
    for label, audit in (("audit-free", 0.0), ("audit-priced", 5e-4)):
        out[label] = _run(_build_trainer(
            sdc_check=True, step_dag=True, sdc_audit_time=audit
        ))
    # MTTR: one scripted flip, quarantine-and-rerun measured for real.
    plan = FaultPlan([
        sdc_flip(POINT.rank, POINT.iteration, bucket=POINT.bucket)
    ])
    out["faulted"] = _run(_build_trainer(plan=plan, sdc_check=True))
    out["shrink-ref"] = _scripted_shrink_times(POINT)
    return out


def test_ablation_sdc(benchmark):
    out = benchmark.pedantic(run_sdc_ablation, rounds=1, iterations=1)

    wall_off, sim_off, params_off = out["off"]
    wall_on, sim_on, params_on = out["on"]
    # Zero simulated cost on the clean path: params and sim time bit-equal.
    np.testing.assert_array_equal(params_off, params_on)
    assert sim_off == sim_on

    _, sim_free, _ = out["audit-free"]
    _, sim_priced, _ = out["audit-priced"]
    assert sum(sim_priced) > sum(sim_free)  # the knob is really priced

    # MTTR: extra simulated time the quarantine repair added, vs a full
    # restore-and-replay of every step since the last checkpoint.
    _, sim_faulted, _ = out["faulted"]
    ref_times = out["shrink-ref"]
    mttr_quarantine = sum(sim_faulted) - sum(ref_times)
    last_ckpt = (POINT.iteration // CHECKPOINT_EVERY) * CHECKPOINT_EVERY
    replayed = POINT.iteration - last_ckpt + 1
    mttr_restart = sum(sim_off[last_ckpt:POINT.iteration + 1])
    assert 0 < mttr_quarantine < mttr_restart

    overhead = (wall_on - wall_off) / wall_off if wall_off else 0.0
    cost = render_table(
        ["mode", "wall (ms)", "simulated (ms)"],
        [
            ["fingerprints off", f"{wall_off * 1e3:.2f}",
             f"{sum(sim_off) * 1e3:.4f}"],
            ["fingerprints on", f"{wall_on * 1e3:.2f}",
             f"{sum(sim_on) * 1e3:.4f}"],
            ["audited step DAG (audit_time=0)", "-",
             f"{sum(sim_free) * 1e3:.4f}"],
            ["audited step DAG (audit_time=0.5ms)", "-",
             f"{sum(sim_priced) * 1e3:.4f}"],
        ],
        title="Ablation — SDC detection cost "
              f"(wall overhead {overhead:+.0%}; simulated cost 0 unless "
              "priced via sdc_audit_time)",
    )
    mttr = render_table(
        ["recovery", "replayed work", "MTTR (sim ms)"],
        [
            ["quarantine-and-rerun",
             "1 collective on survivors",
             f"{mttr_quarantine * 1e3:.4f}"],
            [f"restore + replay (ckpt every {CHECKPOINT_EVERY})",
             f"{replayed} full steps",
             f"{mttr_restart * 1e3:.4f}"],
        ],
        title="Ablation — SDC repair: mean time to recovery "
              f"({mttr_restart / mttr_quarantine:.1f}x faster than restart)",
    )
    emit("ablation_sdc", cost + "\n\n" + mttr)
