"""Table 1: total improvement — open-source vs fully optimized.

The acceptance benchmark: every epoch time within 10% of the paper's
(GoogleNetBN 249/131/65 -> 155/76/41; ResNet-50 498/251/128 -> 224/109/58),
speedups in the published bands, peak accuracies within noise.
"""

import pytest
from conftest import emit

from repro.analysis import PAPER_TABLE1, render_table1, table1_rows


def run_table1():
    return table1_rows()


def test_table1_total_improvement(benchmark):
    rows = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    emit("table1_total_improvement", render_table1(rows))

    for r in rows:
        paper_base, paper_opt, paper_speedup, paper_acc = PAPER_TABLE1[
            (r["model"], r["nodes"])
        ]
        assert r["base_s"] == pytest.approx(paper_base, rel=0.10)
        assert r["opt_s"] == pytest.approx(paper_opt, rel=0.10)
        # The ratio amplifies the (bounded) epoch deviations: the paper's
        # speedups swing 110-130% across node counts while the underlying
        # mechanism is node-count-independent; accept +-20 points.
        assert r["speedup_pct"] == pytest.approx(paper_speedup, abs=20.0)
        assert r["top1_pct"] == pytest.approx(paper_acc, abs=0.5)

    # ResNet-50 gains roughly twice GoogleNetBN's, as the paper found.
    g_speedups = [r["speedup_pct"] for r in rows if r["model"] == "googlenet_bn"]
    r_speedups = [r["speedup_pct"] for r in rows if r["model"] == "resnet50"]
    assert min(r_speedups) > max(g_speedups)
