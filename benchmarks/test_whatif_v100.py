"""What-if: swap the Minsky's P100s for V100s, keep the 2017 network.

A forward-looking extension: as GPU compute outpaces the interconnect,
the communication share of each iteration grows and the paper's allreduce
work matters *more*, not less.  This bench re-runs the 32-node ResNet-50
configuration with a V100-equipped node and compares iteration breakdowns.
"""

from dataclasses import replace

from conftest import emit

from repro.cluster import MINSKY_NODE, V100, ClusterSpec, GPUComputeModel
from repro.core.calibration import GPU_EFFICIENCY
from repro.data import IMAGENET_1K
from repro.models import build_resnet50
from repro.train import EpochTimeModel
from repro.utils.ascii import render_table


def build(gpu, allreduce):
    node = replace(MINSKY_NODE, gpu=gpu)
    return EpochTimeModel(
        model=build_resnet50(),
        cluster=ClusterSpec(name="whatif", n_nodes=32, node=node),
        dataset=IMAGENET_1K,
        compute=GPUComputeModel(gpu=gpu, efficiency=GPU_EFFICIENCY["resnet50"]),
        allreduce_algorithm=allreduce,
    )


def run_whatif():
    from repro.cluster import P100

    rows = {}
    for gpu in (P100, V100):
        for alg in ("multicolor", "openmpi_default"):
            b = build(gpu, alg).iteration_breakdown()
            comm = b.inter_allreduce + b.intra_reduce + b.intra_broadcast
            rows[(gpu.name, alg)] = (b.total, comm / b.total)
    return rows


def test_whatif_v100(benchmark):
    rows = benchmark.pedantic(run_whatif, rounds=1, iterations=1)
    table = render_table(
        ["GPU", "allreduce", "iter (ms)", "comm share"],
        [
            [gpu, alg, f"{total * 1e3:.1f}", f"{share:.1%}"]
            for (gpu, alg), (total, share) in rows.items()
        ],
        title="What-if — V100 compute on the 2017 network (ResNet-50, 32 nodes)",
    )
    emit("whatif_v100", table)

    # Faster GPUs shrink the iteration but inflate the communication share…
    assert rows[("V100-SXM2", "multicolor")][0] < rows[("P100-SXM2", "multicolor")][0]
    assert rows[("V100-SXM2", "multicolor")][1] > rows[("P100-SXM2", "multicolor")][1]
    # …so the multicolor-vs-default gap widens in relative terms.
    gap_p100 = (
        rows[("P100-SXM2", "openmpi_default")][0]
        / rows[("P100-SXM2", "multicolor")][0]
    )
    gap_v100 = (
        rows[("V100-SXM2", "openmpi_default")][0]
        / rows[("V100-SXM2", "multicolor")][0]
    )
    assert gap_v100 > gap_p100
