"""Ablation: batch size per GPU vs compute/communication ratio.

§1: scaling out forces smaller per-worker batches, so "the communication
algorithm become[s] an important factor".  This bench sweeps batch/GPU at
32 nodes and reports the fraction of each iteration spent communicating,
for the multi-color and default allreduce.
"""

from conftest import emit

from repro.core import ClusterExperiment, ExperimentConfig
from repro.utils.ascii import render_table

BATCHES = (8, 16, 32, 64)


def sweep_batch():
    rows = {}
    for alg in ("multicolor", "openmpi_default"):
        for b in BATCHES:
            cfg = ExperimentConfig(
                model="resnet50", n_nodes=32, batch_per_gpu=b, allreduce=alg
            )
            br = ClusterExperiment(cfg).breakdown()
            comm = br.inter_allreduce + br.intra_reduce + br.intra_broadcast
            rows[(alg, b)] = (br.total, comm / br.total)
    return rows


def test_ablation_batch_size(benchmark):
    rows = benchmark.pedantic(sweep_batch, rounds=1, iterations=1)
    table = render_table(
        ["allreduce", "batch/GPU", "iter (ms)", "comm fraction"],
        [
            [alg, b, f"{total * 1e3:.1f}", f"{frac:.1%}"]
            for (alg, b), (total, frac) in rows.items()
        ],
        title="Ablation — batch size vs communication share (32 nodes)",
    )
    emit("ablation_batch_size", table)

    # Smaller batches raise the communication share (both algorithms)...
    for alg in ("multicolor", "openmpi_default"):
        fracs = [rows[(alg, b)][1] for b in BATCHES]
        assert fracs[0] > fracs[-1]
    # ...and the multi-color advantage grows as batches shrink.
    gain_small = rows[("openmpi_default", 8)][0] - rows[("multicolor", 8)][0]
    gain_large = rows[("openmpi_default", 64)][0] - rows[("multicolor", 64)][0]
    assert gain_small >= gain_large * 0.9
