"""Ablation: allreduce algorithms across topologies and oversubscription.

The paper argues the multi-color trees exploit fat-tree path diversity;
this bench checks how each algorithm's 93 MB allreduce behaves on a
non-blocking fat-tree, a 4:1 oversubscribed fat-tree and a plain ring
network — and how much traffic each pushes through the leaf-spine core.
"""

from conftest import emit

from repro.mpi import ALLREDUCE_ALGORITHMS, SizeBuffer
from repro.mpi.runner import build_world, run_rank_programs
from repro.net import CONNECTX5_DUAL, fat_tree
from repro.utils.ascii import render_table
from repro.utils.units import MB

PAYLOAD = int(93 * MB)
N = 16
ALGS = ("multicolor", "ring", "rsag", "hierarchical")


def run_topology_sweep():
    rows = {}
    for oversub in (1.0, 4.0):
        for alg in ALGS:
            topo = fat_tree(
                N, CONNECTX5_DUAL, hosts_per_leaf=4, oversubscription=oversub
            )
            engine, world, comm = build_world(N, topology=topo)
            kwargs = {"group_size": 4} if alg == "hierarchical" else {}
            if alg in ("multicolor", "ring"):
                kwargs["segment_bytes"] = 1024 * 1024
            bufs = [SizeBuffer(PAYLOAD // 4, 4) for _ in range(N)]
            run_rank_programs(
                comm, ALLREDUCE_ALGORITHMS[alg],
                per_rank_args=[(b,) for b in bufs], **kwargs,
            )
            core = sum(
                v
                for li, v in world.fabric.stats.link_bytes.items()
                if "spine" in topo.links[li].src or "spine" in topo.links[li].dst
            )
            rows[(oversub, alg)] = (engine.now, core)
    return rows


def test_ablation_topology(benchmark):
    rows = benchmark.pedantic(run_topology_sweep, rounds=1, iterations=1)
    table = render_table(
        ["oversubscription", "algorithm", "time (ms)", "core traffic (GB)"],
        [
            [f"{o:.0f}:1", alg, f"{t * 1e3:.2f}", f"{core / 1e9:.2f}"]
            for (o, alg), (t, core) in rows.items()
        ],
        title="Ablation — topology sensitivity, 93 MB allreduce, 16 nodes",
    )
    emit("ablation_topology", table)

    # Non-blocking fabric: multicolor is the fastest (the paper's regime).
    best_nb = min(rows[(1.0, a)][0] for a in ALGS)
    assert rows[(1.0, "multicolor")][0] == best_nb
    # Oversubscription hurts multicolor most (its trees span leaves)...
    slowdown = {a: rows[(4.0, a)][0] / rows[(1.0, a)][0] for a in ALGS}
    assert slowdown["multicolor"] >= max(slowdown[a] for a in ("ring", "rsag"))
    # ...while the hierarchical layout moves the least core traffic.
    assert rows[(4.0, "hierarchical")][1] == min(rows[(4.0, a)][1] for a in ALGS)
