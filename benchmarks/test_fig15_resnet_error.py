"""Figure 15: ResNet-50 training error vs training time, 8/16/32 nodes."""

import numpy as np
from conftest import emit

from repro.analysis import fig_error_series
from repro.utils.ascii import render_table


def run_fig15():
    return fig_error_series("resnet50")


def test_fig15_resnet50_error_vs_time(benchmark):
    series, _meta = benchmark.pedantic(run_fig15, rounds=1, iterations=1)

    rows = [
        [name, f"{err[0]:.2f}", f"{err[-1]:.3f}", f"{hours[-1]:.2f}"]
        for name, (hours, err) in series.items()
    ]
    emit(
        "fig15_resnet_error",
        render_table(
            ["config", "initial error", "final error", "hours"], rows,
            title="Figure 15 — ResNet-50 training error vs time",
        ),
    )

    for _name, (hours, err) in series.items():
        # Starts near ln(1000) ~ 6.9, decreases monotonically, ends low.
        assert err[0] > 6.0
        assert np.all(np.diff(err) <= 1e-9)
        assert err[-1] < 0.6
    # More nodes: same final error reached in less time.
    finals = {name: err[-1] for name, (_h, err) in series.items()}
    assert max(finals.values()) - min(finals.values()) < 0.1
