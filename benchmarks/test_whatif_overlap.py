"""What-if: bucketed comm/compute overlap on top of the paper's allreduce.

Goyal et al. (the paper's strongest Table 2 rival) hide the allreduce
behind backpropagation; the paper instead makes the allreduce itself
faster.  This bench combines both: bucket-count sweep with the multicolor
collective at the 32-node ResNet-50 operating point.  The whole
iteration is one unified training-step DAG
(:func:`repro.train.overlap.simulate_bucketed_overlap` lowering through
:func:`repro.train.stepdag.compile_bucketed_step`), so bucket allreduces
are real pipelined collectives gated by gradient-ready dependency edges,
not a closed-form cost sum — and fp16 composes with bucketing and the
algorithm choice inside the *same* schedule
(:func:`test_whatif_fp16_overlap_composed`).
"""

from conftest import emit

from repro.cluster import MINSKY_NODE, ClusterSpec
from repro.core.calibration import compute_model_for
from repro.data import IMAGENET_1K
from repro.models import build_resnet50
from repro.train import EpochTimeModel
from repro.train.overlap import (
    _legacy_simulate_bucketed_overlap,
    simulate_bucketed_overlap,
)
from repro.utils.ascii import render_table

MODEL = build_resnet50()
N_NODES = 32


def run_overlap_sweep():
    pipeline = EpochTimeModel(
        model=MODEL,
        cluster=ClusterSpec(name="w", n_nodes=N_NODES, node=MINSKY_NODE),
        dataset=IMAGENET_1K,
        compute=compute_model_for("resnet50"),
    )
    gpu = pipeline.iteration_breakdown().gpu_compute
    fwd, bwd = gpu / 3.0, gpu * 2.0 / 3.0
    results = {}
    for n_buckets in (1, 2, 4, 8, 32):
        results[n_buckets] = simulate_bucketed_overlap(
            n_ranks=N_NODES,
            forward_time=fwd,
            backward_time=bwd,
            gradient_bytes=MODEL.gradient_bytes,
            n_buckets=n_buckets,
            algorithm="multicolor",
        )
    return results


def test_whatif_overlap(benchmark):
    results = benchmark.pedantic(run_overlap_sweep, rounds=1, iterations=1)
    table = render_table(
        ["buckets", "iter (ms)", "exposed comm (ms)", "gain vs serial"],
        [
            [n, f"{r.iteration_time * 1e3:.1f}",
             f"{r.exposed_comm * 1e3:.2f}", f"{r.overlap_gain:.1%}"]
            for n, r in results.items()
        ],
        title="What-if — bucketed overlap + multicolor allreduce "
        "(ResNet-50, 32 nodes, schedule-executed buckets)",
    )
    emit("whatif_overlap", table)

    serial = results[1]
    best = min(results.values(), key=lambda r: r.iteration_time)
    # Overlap helps, and a moderate bucket count is at or near the best.
    assert best.iteration_time < serial.iteration_time
    assert results[8].iteration_time <= serial.iteration_time
    # Iteration can never drop below pure compute.
    for r in results.values():
        assert r.iteration_time >= r.compute_time
        # Bucket collectives really executed on the fabric.
        assert len(r.bucket_spans) == r.n_buckets


def run_composition():
    pipeline = EpochTimeModel(
        model=MODEL,
        cluster=ClusterSpec(name="w", n_nodes=N_NODES, node=MINSKY_NODE),
        dataset=IMAGENET_1K,
        compute=compute_model_for("resnet50"),
    )
    gpu = pipeline.iteration_breakdown().gpu_compute
    kw = dict(
        n_ranks=N_NODES,
        forward_time=gpu / 3.0,
        backward_time=gpu * 2.0 / 3.0,
        n_buckets=8,
        algorithm="multicolor",
    )
    results = {
        "fp32": simulate_bucketed_overlap(
            gradient_bytes=MODEL.gradient_bytes, itemsize=4, **kw
        ),
        "fp16": simulate_bucketed_overlap(
            gradient_bytes=MODEL.gradient_bytes // 2, itemsize=2, **kw
        ),
    }
    legacy = _legacy_simulate_bucketed_overlap(
        gradient_bytes=MODEL.gradient_bytes // 2, itemsize=2, **kw
    )
    return results, legacy


def test_whatif_fp16_overlap_composed(benchmark):
    """fp16 x bucketed overlap x multicolor, all in ONE schedule.

    The unified step DAG composes the three knobs directly; the retired
    bucket-release driver manually composed over the fp16 payload is the
    independent estimate it must reproduce within 1%.
    """
    (results, legacy) = benchmark.pedantic(run_composition, rounds=1, iterations=1)
    table = render_table(
        ["precision", "iter (ms)", "exposed comm (ms)", "gain vs serial"],
        [
            [name, f"{r.iteration_time * 1e3:.1f}",
             f"{r.exposed_comm * 1e3:.2f}", f"{r.overlap_gain:.1%}"]
            for name, r in results.items()
        ],
        title="What-if — fp16 + overlap + multicolor in one step DAG "
        "(ResNet-50, 32 nodes)",
    )
    emit("whatif_fp16_overlap_composed", table)

    fp16, fp32 = results["fp16"], results["fp32"]
    # Unified DAG within 1% of the manually-composed legacy estimate.
    assert abs(fp16.iteration_time - legacy.iteration_time) <= (
        0.01 * legacy.iteration_time
    )
    # Half the wire bytes can only help, and compute still floors it.
    assert fp16.iteration_time <= fp32.iteration_time
    assert fp16.iteration_time >= fp16.compute_time
