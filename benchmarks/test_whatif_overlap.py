"""What-if: bucketed comm/compute overlap on top of the paper's allreduce.

Goyal et al. (the paper's strongest Table 2 rival) hide the allreduce
behind backpropagation; the paper instead makes the allreduce itself
faster.  This bench combines both: bucket-count sweep with the multicolor
collective at the 32-node ResNet-50 operating point.  Each bucket is a
compiled schedule executed on the simulated fabric
(:func:`repro.train.overlap.simulate_bucketed_overlap`), so bucket
allreduces are real pipelined collectives released at gradient-ready
times, not a closed-form cost sum.
"""

from conftest import emit

from repro.cluster import MINSKY_NODE, ClusterSpec
from repro.core.calibration import compute_model_for
from repro.data import IMAGENET_1K
from repro.models import build_resnet50
from repro.train import EpochTimeModel
from repro.train.overlap import simulate_bucketed_overlap
from repro.utils.ascii import render_table

MODEL = build_resnet50()
N_NODES = 32


def run_overlap_sweep():
    pipeline = EpochTimeModel(
        model=MODEL,
        cluster=ClusterSpec(name="w", n_nodes=N_NODES, node=MINSKY_NODE),
        dataset=IMAGENET_1K,
        compute=compute_model_for("resnet50"),
    )
    gpu = pipeline.iteration_breakdown().gpu_compute
    fwd, bwd = gpu / 3.0, gpu * 2.0 / 3.0
    results = {}
    for n_buckets in (1, 2, 4, 8, 32):
        results[n_buckets] = simulate_bucketed_overlap(
            n_ranks=N_NODES,
            forward_time=fwd,
            backward_time=bwd,
            gradient_bytes=MODEL.gradient_bytes,
            n_buckets=n_buckets,
            algorithm="multicolor",
        )
    return results


def test_whatif_overlap(benchmark):
    results = benchmark.pedantic(run_overlap_sweep, rounds=1, iterations=1)
    table = render_table(
        ["buckets", "iter (ms)", "exposed comm (ms)", "gain vs serial"],
        [
            [n, f"{r.iteration_time * 1e3:.1f}",
             f"{r.exposed_comm * 1e3:.2f}", f"{r.overlap_gain:.1%}"]
            for n, r in results.items()
        ],
        title="What-if — bucketed overlap + multicolor allreduce "
        "(ResNet-50, 32 nodes, schedule-executed buckets)",
    )
    emit("whatif_overlap", table)

    serial = results[1]
    best = min(results.values(), key=lambda r: r.iteration_time)
    # Overlap helps, and a moderate bucket count is at or near the best.
    assert best.iteration_time < serial.iteration_time
    assert results[8].iteration_time <= serial.iteration_time
    # Iteration can never drop below pure compute.
    for r in results.values():
        assert r.iteration_time >= r.compute_time
        # Bucket collectives really executed on the fabric.
        assert len(r.bucket_spans) == r.n_buckets
