"""What-if: bucketed comm/compute overlap on top of the paper's allreduce.

Goyal et al. (the paper's strongest Table 2 rival) hide the allreduce
behind backpropagation; the paper instead makes the allreduce itself
faster.  This bench combines both: bucket-count sweep with the simulated
multicolor collective as the per-bucket cost, at the 32-node ResNet-50
operating point.
"""

from functools import lru_cache

from conftest import emit

from repro.cluster import MINSKY_NODE, ClusterSpec
from repro.core.calibration import compute_model_for
from repro.data import IMAGENET_1K
from repro.models import build_resnet50
from repro.train import EpochTimeModel
from repro.train.overlap import bucketed_iteration_time
from repro.utils.ascii import render_table

MODEL = build_resnet50()
N_NODES = 32


@lru_cache(maxsize=None)
def allreduce_cost(nbytes: int) -> float:
    from repro.mpi import simulate_allreduce

    return simulate_allreduce(
        N_NODES, nbytes, algorithm="multicolor",
        segment_bytes=max(64 * 1024, nbytes // 16),
    ).elapsed


def run_overlap_sweep():
    pipeline = EpochTimeModel(
        model=MODEL,
        cluster=ClusterSpec(name="w", n_nodes=N_NODES, node=MINSKY_NODE),
        dataset=IMAGENET_1K,
        compute=compute_model_for("resnet50"),
    )
    gpu = pipeline.iteration_breakdown().gpu_compute
    fwd, bwd = gpu / 3.0, gpu * 2.0 / 3.0
    results = {}
    for n_buckets in (1, 2, 4, 8, 32):
        results[n_buckets] = bucketed_iteration_time(
            forward_time=fwd,
            backward_time=bwd,
            allreduce_time=allreduce_cost,
            gradient_bytes=MODEL.gradient_bytes,
            n_buckets=n_buckets,
        )
    return results


def test_whatif_overlap(benchmark):
    results = benchmark.pedantic(run_overlap_sweep, rounds=1, iterations=1)
    table = render_table(
        ["buckets", "iter (ms)", "exposed comm (ms)", "gain vs serial"],
        [
            [n, f"{r.iteration_time * 1e3:.1f}",
             f"{r.exposed_comm * 1e3:.2f}", f"{r.overlap_gain:.1%}"]
            for n, r in results.items()
        ],
        title="What-if — bucketed overlap + multicolor allreduce "
        "(ResNet-50, 32 nodes)",
    )
    emit("whatif_overlap", table)

    serial = results[1]
    best = min(results.values(), key=lambda r: r.iteration_time)
    # Overlap helps, and a moderate bucket count is at or near the best.
    assert best.iteration_time < serial.iteration_time
    assert results[8].iteration_time <= serial.iteration_time
    # Iteration can never drop below pure compute.
    for r in results.values():
        assert r.iteration_time >= r.compute_time
