"""Ablation: how many colors should the multi-color allreduce use?

DESIGN.md calls out the color count as the algorithm's central design
choice.  One color is a plain pipelined tree (one summing chain); more
colors parallelize the reduction across disjoint internal nodes until the
per-node NIC is saturated.
"""

from conftest import emit

from repro.mpi import simulate_allreduce
from repro.utils.ascii import render_table
from repro.utils.units import MB

PAYLOAD = 93 * MB
N_RANKS = 16


def sweep_colors(colors=(1, 2, 4, 8)):
    out = {}
    for k in colors:
        res = simulate_allreduce(
            N_RANKS, PAYLOAD, algorithm="multicolor",
            n_colors=k, segment_bytes=1024 * 1024,
        )
        out[k] = res.elapsed
    return out


def test_ablation_color_count(benchmark):
    times = benchmark.pedantic(sweep_colors, rounds=1, iterations=1)
    table = render_table(
        ["colors", "allreduce (ms)", "throughput (GB/s)"],
        [[k, f"{t * 1e3:.2f}", f"{PAYLOAD / t / 1e9:.2f}"] for k, t in times.items()],
        title=f"Ablation — color count, {N_RANKS} nodes, 93 MB payload",
    )
    emit("ablation_colors", table)

    # More colors must help up to the paper's choice of 4.
    assert times[2] < times[1]
    assert times[4] < times[1]
    # 4 colors within 25% of the best observed configuration.
    best = min(times.values())
    assert times[4] <= best * 1.25
