"""Table 2: comparison with the state of the art.

Paper: 90 epochs of ResNet-50 on 256 P100 GPUs (batch 8k) in 48 minutes at
75.4% top-1, vs Goyal et al. 65 min / 76.2% (same hardware) and You et al.
60 min on 512 KNL.  Shape requirement: this work is the fastest and the
P100 accuracy ordering holds.
"""

import pytest
from conftest import emit

from repro.analysis import render_table2, table2_rows


def run_table2():
    return table2_rows()


def test_table2_state_of_the_art(benchmark):
    rows = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    emit("table2_state_of_the_art", render_table2(rows))

    ours = next(r for r in rows if r["measured"])
    goyal = next(r for r in rows if "Goyal" in r["description"])
    you = next(r for r in rows if "You" in r["description"])
    paper = next(r for r in rows if "Kumar" in r["description"])

    # Fastest time-to-90-epochs of the cohort, in the paper's 45-60 min band.
    assert ours["minutes"] < goyal["minutes"]
    assert ours["minutes"] < you["minutes"]
    assert 45 < ours["minutes"] < 60
    # Accuracy matches the paper's own 75.4 +- noise, below Goyal's 76.2
    # (large-batch penalty) and above You et al.'s 74.7.
    assert ours["top1_pct"] == pytest.approx(paper["top1_pct"], abs=0.5)
    assert ours["top1_pct"] < goyal["top1_pct"]
    assert ours["batch"] == 8192
