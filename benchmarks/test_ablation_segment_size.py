"""Ablation: pipeline segment size of the multi-color allreduce.

Tiny segments drown in per-message software overhead; huge segments stall
the pipeline (tree stages sit idle while one segment serializes).  The
sweet spot sits in the hundreds-of-KiB range on InfiniBand-class fabrics.
"""

from conftest import emit

from repro.mpi import simulate_allreduce
from repro.utils.ascii import render_table
from repro.utils.units import MB

PAYLOAD = 93 * MB
N_RANKS = 16
SEGMENTS = (16 * 1024, 64 * 1024, 256 * 1024, 1024 * 1024, 8 * 1024 * 1024, PAYLOAD)


def sweep_segments():
    return {
        seg: simulate_allreduce(
            N_RANKS, PAYLOAD, algorithm="multicolor", segment_bytes=seg
        ).elapsed
        for seg in SEGMENTS
    }


def test_ablation_segment_size(benchmark):
    times = benchmark.pedantic(sweep_segments, rounds=1, iterations=1)
    table = render_table(
        ["segment", "allreduce (ms)"],
        [[f"{seg // 1024} KiB", f"{t * 1e3:.2f}"] for seg, t in times.items()],
        title=f"Ablation — pipeline segment size, {N_RANKS} nodes, 93 MB",
    )
    emit("ablation_segment_size", table)

    # Unsegmented (one chunk per color) must lose to mid-size segments.
    mid = times[256 * 1024]
    assert times[PAYLOAD] > mid
    # The optimum is interior: both extremes are no better than the middle.
    assert times[16 * 1024] >= mid * 0.9
