"""Ablation: static-verification cost per allreduce algorithm.

The verifier (DESIGN.md §4g) proves every compiled schedule before it is
trusted, so its wall-time is part of the operational budget alongside
the MTTR rows: a proof that took longer than a watchdog restart would
undercut the case for static checking.  This bench records the per-pass
cost of a full proof (lint + determinism + races + semantics + bounds)
for each of the eight allreduce compilers at 16 ranks.
"""

from conftest import emit

from repro.mpi.collectives import ALLREDUCE_COMPILERS
from repro.mpi.verify import allreduce_contract, verify_schedule
from repro.utils.ascii import render_table

N_RANKS = 16
COUNT = 1003
ITEMSIZE = 8


def run_verify_study():
    rows = []
    for name in sorted(ALLREDUCE_COMPILERS):
        schedule = ALLREDUCE_COMPILERS[name](N_RANKS, COUNT, ITEMSIZE)
        report = verify_schedule(schedule, allreduce_contract(N_RANKS, COUNT))
        rows.append((name, len(schedule.steps), report))
    return rows


def test_ablation_verify_wall_time(benchmark):
    rows = benchmark.pedantic(run_verify_study, rounds=1, iterations=1)
    table = render_table(
        ["algorithm", "steps", "verify (ms)", "verdict"],
        [
            [name, str(steps), f"{report.wall_time_s * 1e3:.3g}",
             "PROVED" if report.ok else "FAILED"]
            for name, steps, report in rows
        ],
        title=f"Ablation — verifier wall-time per algorithm ({N_RANKS} ranks)",
    )
    emit("ablation_verify", table)

    assert len(rows) == len(ALLREDUCE_COMPILERS)
    for name, _steps, report in rows:
        # Every production compiler must prove clean...
        assert report.ok, f"{name}: {sorted(report.kinds())}"
        # ...and the proof must cost far less than a watchdog restart
        # (MTTR table: restarts are tens of sim-milliseconds; a proof
        # that took minutes of wall time would not be a viable gate).
        assert 0.0 < report.wall_time_s < 60.0, name
