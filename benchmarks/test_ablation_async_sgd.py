"""Extension bench: synchronous vs asynchronous SGD (paper §6 future work).

Runs both training modes functionally on the simulated cluster and reports
updates/second, staleness statistics and final accuracy — the quantities
one would use to decide whether DIMD + the communication work carry over
to the asynchronous setting.
"""

import numpy as np
from conftest import emit

from repro.data import DIMDStore
from repro.data.codec import encode_image
from repro.models.nn import Dense, Flatten, Network, ReLU
from repro.train.async_sgd import AsyncSGDTrainer
from repro.utils.ascii import render_table

N_CLASSES = 4
N_WORKERS = 4


def net_factory(rng):
    return Network(
        [Flatten(), Dense(16, 16, rng), ReLU(), Dense(16, N_CLASSES, rng)]
    )


def make_stores(seed=0, per_worker=32):
    rng = np.random.default_rng(seed)
    stores = []
    for w in range(N_WORKERS):
        labels = rng.integers(0, N_CLASSES, size=per_worker)
        records = []
        for lab in labels:
            img = rng.integers(0, 50, size=(1, 4, 4), dtype=np.uint8)
            img[0, int(lab) % 4, :] = 255
            records.append(encode_image(img))
        stores.append(DIMDStore(records, labels, learner=w))
    return stores


def run_async_comparison():
    results = {}
    for label, aware in (("async", False), ("async+staleness-aware", True)):
        stores = make_stores(seed=1)
        trainer = AsyncSGDTrainer(
            net_factory, stores, lr=0.08, staleness_aware=aware,
            compute_jitter=0.5, seed=2,
        )
        r = trainer.run(iterations_per_worker=25)
        x = np.concatenate(
            [s.random_batch(16, np.random.default_rng(9))[0] for s in stores]
        )
        y = np.concatenate(
            [s.random_batch(16, np.random.default_rng(9))[1] for s in stores]
        )
        results[label] = {
            "updates_per_s": r.updates_per_second,
            "mean_staleness": r.mean_staleness,
            "max_staleness": r.max_staleness,
            "accuracy": trainer.evaluate(x, y),
        }
    return results


def test_ablation_async_sgd(benchmark):
    results = benchmark.pedantic(run_async_comparison, rounds=1, iterations=1)
    table = render_table(
        ["mode", "updates/s (sim)", "mean staleness", "max", "top-1"],
        [
            [k, f"{v['updates_per_s']:,.0f}", f"{v['mean_staleness']:.2f}",
             v["max_staleness"], f"{v['accuracy']:.1%}"]
            for k, v in results.items()
        ],
        title="Extension — asynchronous SGD with a parameter server (§6)",
    )
    emit("ablation_async_sgd", table)

    for v in results.values():
        assert v["accuracy"] > 0.6          # both modes learn
        assert v["mean_staleness"] > 0      # staleness genuinely emerges
    # Same push schedule in both modes -> identical staleness profile.
    assert (
        results["async"]["mean_staleness"]
        == results["async+staleness-aware"]["mean_staleness"]
    )
