"""Figure 5: MPI_Allreduce throughput of the collective algorithms.

Paper setup: 16 POWER8 nodes / 64 GPUs, dual ConnectX-5.  The multi-color
algorithm outperforms both the pipelined ring and default OpenMPI; §5.1
quotes 50-60% less time than the default at the 93 MB GoogleNetBN payload.
"""

import json
from pathlib import Path

from conftest import emit

from repro.analysis import fig5_series
from repro.analysis.compare import improvement_pct
from repro.utils.ascii import render_series, render_table
from repro.utils.units import MB
from repro.mpi import simulate_allreduce


def run_fig5():
    return fig5_series(n_ranks=16)


def test_fig5_allreduce_throughput(benchmark):
    x, series, meta = benchmark.pedantic(run_fig5, rounds=1, iterations=1)

    rows = [
        [f"{mb} MB"] + [f"{series[alg][i]:.2f}" for alg in series]
        for i, mb in enumerate(x)
    ]
    table = render_table(
        ["payload"] + [f"{alg} GB/s" for alg in series], rows,
        title="Figure 5 — allreduce throughput, 16 nodes (measured)",
    )
    chart = render_series(x, series, title="Figure 5", **meta)
    emit("fig5_allreduce_throughput", table + "\n\n" + chart)

    # Shape: multicolor >= ring > default at gradient-sized payloads
    # (the paper's regime); small payloads legitimately favour the
    # low-round-count recursive algorithm.
    for i, mb in enumerate(x):
        if mb >= 64:
            assert series["multicolor"][i] >= series["ring"][i]
            assert series["ring"][i] > series["openmpi_default"][i]
        assert series["multicolor"][i] > series["openmpi_default"][i] * 0.7

    # §5.1's headline at 93 MB: multicolor takes far less time than default.
    t_mc = simulate_allreduce(16, 93 * MB, algorithm="multicolor",
                              segment_bytes=1024 * 1024).elapsed
    t_def = simulate_allreduce(16, 93 * MB, algorithm="openmpi_default").elapsed
    gain = improvement_pct(t_def, t_mc)
    emit(
        "fig5_headline",
        f"multicolor vs default OpenMPI at 93 MB: {gain:.0f}% less time "
        f"(paper: 50-60%)",
    )
    assert 30 < gain < 75


def test_fig5_matches_pre_refactor_goldens():
    """Every Figure 5 timing must stay within 1% of the pre-schedule-IR
    goldens (captured from the generator collectives; currently bit-exact
    through the strand-fused executor)."""
    path = Path(__file__).parent / "data" / "fig5_goldens.json"
    goldens = json.loads(path.read_text())["elapsed_s"]
    worst = 0.0
    for key, want in goldens.items():
        algorithm, size = key.split("/")
        nbytes = int(float(size[:-2]) * MB)
        kwargs = {}
        if algorithm in ("multicolor", "ring"):
            kwargs["segment_bytes"] = max(64 * 1024, nbytes // 64)
        got = simulate_allreduce(16, nbytes, algorithm=algorithm, **kwargs).elapsed
        rel = abs(got - want) / want
        worst = max(worst, rel)
        assert rel <= 0.01, f"{key}: got {got:.6g}, golden {want:.6g} ({rel:.2%})"
    emit(
        "fig5_golden_drift",
        f"worst relative drift vs pre-refactor goldens over "
        f"{len(goldens)} points: {worst:.2e}",
    )
