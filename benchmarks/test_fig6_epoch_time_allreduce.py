"""Figure 6: GoogleNetBN epoch time under the three allreduce schemes.

Paper: 8/16/32 learners, 93 MB reduction payload; all three scale, the
multi-color algorithm gives the best scaling efficiency (90.5%).
"""

from conftest import emit

from repro.analysis import fig6_series
from repro.train.metrics import scaling_efficiency
from repro.utils.ascii import render_series, render_table


def run_fig6():
    return fig6_series()


def test_fig6_epoch_time_per_allreduce(benchmark):
    x, series, meta = benchmark.pedantic(run_fig6, rounds=1, iterations=1)

    rows = [
        [f"{n} nodes"] + [f"{series[alg][i]:.1f}" for alg in series]
        for i, n in enumerate(x)
    ]
    effs = {
        alg: scaling_efficiency(x[0], series[alg][0], x[-1], series[alg][-1])
        for alg in series
    }
    table = render_table(
        ["learners"] + [f"{a} (s)" for a in series], rows,
        title="Figure 6 — GoogleNetBN epoch time per allreduce scheme",
    )
    eff_text = "scaling efficiency 8->32 nodes: " + ", ".join(
        f"{a}={e:.1f}%" for a, e in effs.items()
    ) + "  (paper: multicolor best, 90.5%)"
    chart = render_series(x, series, title="Figure 6", **meta)
    emit("fig6_epoch_time_allreduce", table + "\n" + eff_text + "\n\n" + chart)

    # Shape: every scheme scales down with nodes; multicolor always fastest
    # and with the best scaling efficiency.
    for alg in series:
        assert series[alg][0] > series[alg][1] > series[alg][2]
    for i in range(len(x)):
        assert series["multicolor"][i] <= series["ring"][i]
        assert series["multicolor"][i] < series["openmpi_default"][i]
    assert effs["multicolor"] >= max(effs.values()) - 1e-9
    assert effs["multicolor"] > 85.0
