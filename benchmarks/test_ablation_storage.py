"""Ablation: storage tiers vs DIMD.

§1 notes that flash "or other high performance storage solutions" could
also fix the I/O bottleneck but are "typically costly"; DIMD gets the same
effect from the memory already on the nodes.  This bench quantifies the
epoch time on shared-fs / flash / DIMD.
"""

from conftest import emit

from repro.cluster import FLASH_STORAGE, MINSKY_NODE, NFS_STORAGE, ClusterSpec
from repro.core.calibration import compute_model_for
from repro.data import IMAGENET_1K
from repro.models import build_resnet50
from repro.train import EpochTimeModel
from repro.utils.ascii import render_table


def build(storage, dimd):
    cluster = ClusterSpec(
        name="ablate", n_nodes=8, node=MINSKY_NODE, storage=storage
    )
    return EpochTimeModel(
        model=build_resnet50(),
        cluster=cluster,
        dataset=IMAGENET_1K,
        compute=compute_model_for("resnet50"),
        dimd=dimd,
    )


def sweep_storage():
    return {
        "shared-fs + donkeys": build(NFS_STORAGE, dimd=False).epoch_time(),
        "flash + donkeys": build(FLASH_STORAGE, dimd=False).epoch_time(),
        "DIMD (memory)": build(NFS_STORAGE, dimd=True).epoch_time(),
    }


def test_ablation_storage_tiers(benchmark):
    times = benchmark.pedantic(sweep_storage, rounds=1, iterations=1)
    table = render_table(
        ["data path", "epoch (s)"],
        [[k, f"{v:.1f}"] for k, v in times.items()],
        title="Ablation — storage tier vs DIMD (ResNet-50, 8 nodes)",
    )
    emit("ablation_storage", table)

    # DIMD beats both file paths; flash narrows but does not close the gap
    # (per-file software costs remain).
    assert times["DIMD (memory)"] < times["flash + donkeys"]
    assert times["flash + donkeys"] <= times["shared-fs + donkeys"]
