"""Figure 9: group-based shuffle of ImageNet-22k on 32 nodes.

Paper: with 1/4/8/16 groups "there is not much improvement with the group
based shuffle (compared to single group)" because the cluster's links are
symmetric — group locality buys nothing.
"""

import pytest
from conftest import emit

from repro.analysis import fig_group_shuffle_series
from repro.utils.ascii import render_table


def run_fig9():
    return fig_group_shuffle_series()


def test_fig9_group_shuffle(benchmark):
    x, series, _meta = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    times = series["shuffle time (s)"]

    table = render_table(
        ["groups", "shuffle (s)"],
        [[g, f"{times[i]:.2f}"] for i, g in enumerate(x)],
        title="Figure 9 — group-based ImageNet-22k shuffle on 32 nodes "
        "(paper: roughly flat across group counts)",
    )
    emit("fig9_group_shuffle", table)

    # Shape: roughly flat — every grouping within 50% of the single group.
    base = times[0]
    for t in times[1:]:
        assert t == pytest.approx(base, rel=0.5)
