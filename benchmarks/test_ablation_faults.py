"""Ablation: failure sensitivity — stragglers and degraded links.

Quantifies the operational risk the paper's synchronous design accepts:
one 2x-slow node throttles every iteration (the barrier), and one host
with a degraded NIC drags the whole allreduce.  Asynchronous SGD (the §6
extension) degrades gracefully instead — a 2x-slow worker only thins its
own update stream.  The last row exercises live elastic recovery
(:mod:`repro.train.injection`): a rank crashed mid-run, survivors absorb
its data and finish within tolerance of the fault-free loss.
"""

import numpy as np
from conftest import emit

from repro.cluster import MINSKY_NODE, ClusterSpec
from repro.core.calibration import compute_model_for
from repro.data import DIMDStore, IMAGENET_1K
from repro.data.codec import encode_image
from repro.models import build_resnet50
from repro.models.nn import Dense, Flatten, Network, ReLU
from repro.train import (
    DistributedSGDTrainer,
    EpochTimeModel,
    FaultPlan,
    WarmupStepSchedule,
    crash,
)
from repro.train.async_sgd import AsyncSGDTrainer
from repro.train.faults import degraded_allreduce_time, straggler_epoch_time
from repro.utils.ascii import render_table


def net_factory(rng):
    return Network([Flatten(), Dense(16, 8, rng), ReLU(), Dense(8, 3, rng)])


def make_stores(n, seed=0):
    rng = np.random.default_rng(seed)
    stores = []
    for w in range(n):
        labels = rng.integers(0, 3, size=16)
        records = [
            encode_image(rng.integers(0, 255, size=(1, 4, 4), dtype=np.uint8))
            for _ in labels
        ]
        stores.append(DIMDStore(records, labels, learner=w))
    return stores


def run_fault_study():
    # Synchronous: straggler penalty from the epoch model.
    model = EpochTimeModel(
        model=build_resnet50(),
        cluster=ClusterSpec(name="c", n_nodes=8, node=MINSKY_NODE),
        dataset=IMAGENET_1K,
        compute=compute_model_for("resnet50"),
    )
    sync = straggler_epoch_time(model, slowdown=2.0, n_stragglers=1)

    # Synchronous: degraded-NIC allreduce penalty.
    healthy_ar, degraded_ar = degraded_allreduce_time(
        8, 32 << 20, algorithm="multicolor", link_factor=0.25
    )

    # Asynchronous: one 2x-slow worker of four, fixed time budget —
    # throughput drops only by the slow worker's missing updates.
    budget = 0.05  # simulated seconds
    base = AsyncSGDTrainer(net_factory, make_stores(4, seed=1), seed=2)
    r_base = base.run(time_limit=budget)
    slow = AsyncSGDTrainer(
        net_factory, make_stores(4, seed=1), seed=2,
        worker_speed_factors=[2.0, 1.0, 1.0, 1.0],
    )
    r_slow = slow.run(time_limit=budget)
    async_penalty = 1.0 - r_slow.iterations / r_base.iterations

    recovery = run_elastic_recovery()
    return sync, (healthy_ar, degraded_ar), async_penalty, recovery


def run_elastic_recovery(steps=16, crash_at=5):
    """Crash one of four learners mid-run; finish on the survivors.

    Returns the tail-loss ratio (faulted / fault-free) — ~1.0 means the
    shrunken run converges like the healthy one.
    """
    def make(plan):
        schedule = WarmupStepSchedule(
            batch_per_gpu=4, n_workers=4, base_lr=0.08,
            reference_batch=16, warmup_epochs=0.0,
        )
        return DistributedSGDTrainer(
            net_factory, make_stores(4, seed=3), gpus_per_node=1,
            batch_per_gpu=4, schedule=schedule, reducer="multicolor",
            seed=3, fault_plan=plan,
        )

    faulted = make(FaultPlan([crash(1, crash_at)]))
    results = [faulted.step() for _ in range(steps)]
    assert faulted.n_learners == 3
    faulted.check_synchronized()
    clean = make(None)
    clean_losses = [clean.step().loss for _ in range(steps)]
    tail = max(1, steps // 4)
    return float(
        np.mean([r.loss for r in results[-tail:]])
        / np.mean(clean_losses[-tail:])
    )


def test_ablation_faults(benchmark):
    sync, (h_ar, d_ar), async_penalty, recovery = benchmark.pedantic(
        run_fault_study, rounds=1, iterations=1
    )
    table = render_table(
        ["scenario", "penalty"],
        [
            ["sync: one 2x-slow node (8-node epoch)", f"+{sync.penalty:.0%}"],
            ["sync: one NIC at 25% (32 MB allreduce)",
             f"+{d_ar / h_ar - 1:.0%}"],
            ["async: one 2x-slow worker of 4 (update throughput)",
             f"-{async_penalty:.0%}"],
            ["elastic: crash 1 of 4 mid-run (tail-loss vs fault-free)",
             f"x{recovery:.2f}"],
        ],
        title="Ablation — failure sensitivity: sync barriers vs async",
    )
    emit("ablation_faults", table)

    # Sync pays nearly the full slowdown; async only loses the slow
    # worker's missing updates (~ (1/4) * (1/2) = 12.5% of throughput).
    assert sync.penalty > 0.5
    assert d_ar > h_ar * 1.5
    assert 0.0 < async_penalty < 0.3
    assert async_penalty < sync.penalty
    # Elastic recovery finishes on the survivors with comparable loss.
    assert 0.25 < recovery < 2.0


def run_mttr_study(n_ranks=4, count=1024):
    """Mean time to a recovered result for a mid-collective crash.

    *Restart* is the strategy available without failure attribution: the
    crash is only detected when the watchdog window expires, after which
    the survivor group reruns the collective from scratch.  *Surgical*
    is the schedule-level path: the crash interrupts the executor at
    fault time and the guarded attempt recompiles for the survivors
    immediately, never waiting out the watchdog.
    """
    from repro.mpi.chaos import DEFAULT_TIMEOUT_FACTOR, chaos_input, reference_run
    from repro.mpi.collectives import ALLREDUCE_COMPILERS
    from repro.mpi.datatypes import ArrayBuffer
    from repro.mpi.schedule import run_guarded
    from repro.train.injection import FaultInjector

    rows = []
    for name in sorted(ALLREDUCE_COMPILERS):
        ref = reference_run(name, n_ranks, count=count)
        timeout = DEFAULT_TIMEOUT_FACTOR * ref.elapsed
        injector = FaultInjector(
            FaultPlan([crash(1, 0, at=ref.elapsed / 2.0)])
        )
        _, telemetry = run_guarded(
            ALLREDUCE_COMPILERS[name],
            lambda: [ArrayBuffer(chaos_input(r, count)) for r in range(n_ranks)],
            timeout=timeout,
            fault_injector=injector,
            repair=True,
        )
        surgical = telemetry.sim_time
        survivors = reference_run(name, n_ranks - 1, count=count)
        restart = timeout + survivors.elapsed
        rows.append((name, surgical, restart))
    return rows


def test_mttr_restart_vs_surgical(benchmark):
    rows = benchmark.pedantic(run_mttr_study, rounds=1, iterations=1)
    table = render_table(
        ["algorithm", "surgical (ms)", "watchdog restart (ms)", "speedup"],
        [
            [name, f"{surgical * 1e3:.3g}", f"{restart * 1e3:.3g}",
             f"x{restart / surgical:.1f}"]
            for name, surgical, restart in rows
        ],
        title="MTTR — crash 1 of 4 mid-allreduce: surgical repair vs restart",
    )
    emit("ablation_mttr", table)
    assert len(rows) == 8
    for name, surgical, restart in rows:
        # Attribution removes the watchdog wait from the recovery path.
        assert surgical < restart, name
        assert surgical > 0.0, name