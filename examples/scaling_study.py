#!/usr/bin/env python
"""Scaling study: epoch time, throughput and time-to-accuracy vs nodes.

Sweeps the cluster from 8 to 64 nodes for both models, reporting epoch
times, images/second, strong-scaling efficiency and the 90-epoch
time-to-solution — the scan behind Figures 6/13/14 and Table 2.

Run:  python examples/scaling_study.py
"""

from repro import ClusterExperiment, ExperimentConfig
from repro.train import scaling_efficiency
from repro.utils.ascii import render_table

NODE_COUNTS = (8, 16, 32, 64)


def main() -> None:
    for model in ("googlenet_bn", "resnet50"):
        rows = []
        base_time = None
        for n in NODE_COUNTS:
            cfg = ExperimentConfig(model=model, n_nodes=n).fully_optimized()
            exp = ClusterExperiment(cfg)
            t = exp.epoch_time()
            if base_time is None:
                base_time = t
            eff = scaling_efficiency(NODE_COUNTS[0], base_time, n, t)
            run = exp.run(n_epochs=90)
            rows.append(
                [
                    n,
                    n * 4,
                    f"{t:.1f}",
                    f"{exp.images_per_second():,.0f}",
                    f"{eff:.1f}",
                    f"{run.total_minutes:.0f}",
                    f"{run.peak_top1:.2f}",
                ]
            )
        print(
            render_table(
                ["nodes", "GPUs", "epoch (s)", "img/s", "scaling %",
                 "90 epochs (min)", "top-1 %"],
                rows,
                title=f"\nScaling study — {model}, ImageNet-1k, batch 64/GPU",
            )
        )

    # The Table 2 configuration: batch 32/GPU on 64 nodes.
    cfg = ExperimentConfig(model="resnet50", n_nodes=64, batch_per_gpu=32)
    run = ClusterExperiment(cfg).run(n_epochs=90)
    print(
        f"\nTable 2 configuration (256 P100, batch 8192): "
        f"{run.total_minutes:.0f} min, {run.peak_top1:.1f}% top-1 "
        f"(paper: 48 min, 75.4%)"
    )


if __name__ == "__main__":
    main()
