#!/usr/bin/env python
"""The DIMD data store and Algorithm 2 shuffle, end to end (§4.1).

Builds a record file, partition-loads it onto 4 learners, samples random
in-memory batches, runs the distributed AlltoAllv shuffle (with the 32-bit
segmentation workaround forced on), verifies that no record was lost or
duplicated, and finally times the full-scale ImageNet-22k shuffle the
paper reports (4.2 s on 32 learners).

Run:  python examples/dimd_shuffle_demo.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.data import (
    GroupLayout,
    IMAGENET_22K,
    RecordReader,
    build_synthetic_record_file,
    distributed_shuffle,
    partitioned_load,
    simulate_shuffle,
)
from repro.mpi import build_world
from repro.utils.units import format_bytes

N_LEARNERS = 4


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-dimd-"))
    _ds, base = build_synthetic_record_file(
        workdir / "imagenet", n_images=64, n_classes=10, seed=11
    )
    print(f"record file: {base}.data + index")

    # API (i): partitioned load.
    layout = GroupLayout(N_LEARNERS, 1)
    with RecordReader(base) as reader:
        print(f"{len(reader)} records, {format_bytes(reader.data_bytes)} total")
        stores = [partitioned_load(reader, l, layout) for l in range(N_LEARNERS)]
    for s in stores:
        print(f"  learner {s.learner}: {len(s)} records, {format_bytes(s.nbytes)}")

    # API (ii): random in-memory batch load.
    images, labels = stores[0].random_batch(8, np.random.default_rng(0))
    print(f"random batch: images {images.shape}, labels {labels.tolist()}")

    # API (iii): distributed shuffle (Algorithm 2), multi-pass forced by a
    # tiny 'MPI offset limit' so the sub-tensor loop is visible.
    before = sorted(p for s in stores for p in s.content_multiset())
    engine, world, comm = build_world(N_LEARNERS, topology="star")
    procs = [
        engine.process(
            distributed_shuffle(comm, r, stores[r], seed=5, max_chunk_bytes=4096),
            name=f"shuffle{r}",
        )
        for r in range(N_LEARNERS)
    ]
    engine.run(engine.all_of(procs))
    after = sorted(p for s in stores for p in s.content_multiset())
    report = procs[0].value
    assert before == after, "shuffle must conserve the record multiset"
    print(
        f"\nshuffle done in {report.n_passes} AlltoAllv passes; "
        f"records conserved; new partition sizes: {[len(s) for s in stores]}"
    )

    # Full-scale timing (Figure 7's headline).
    r = simulate_shuffle(32, IMAGENET_22K)
    print(
        f"\nfull ImageNet-22k shuffle across 32 learners: {r.elapsed:.1f} s "
        f"(paper: 4.2 s), {format_bytes(r.memory_per_node)} per node, "
        f"{r.n_passes} passes"
    )


if __name__ == "__main__":
    main()
