#!/usr/bin/env python
"""The multi-color allreduce, inside out (reproduces Figure 2).

Constructs the 4-color 4-ary spanning trees on 8 nodes exactly as in the
paper's Figure 2, prints each tree, verifies the internal-node
disjointness property, then runs the algorithm with real payloads and
checks the result against NumPy.

Run:  python examples/multicolor_trees.py
"""

import numpy as np

from repro.mpi import simulate_allreduce
from repro.mpi.collectives import color_trees, internal_nodes
from repro.utils.units import MB, format_duration, format_rate


def render_tree(tree) -> str:
    lines = [f"  root: node {tree.root}"]

    def walk(node, depth):
        kids = tree.children.get(node, ())
        for child in kids:
            lines.append("  " + "    " * depth + f"+- node {child}")
            walk(child, depth + 1)

    walk(tree.root, 1)
    return "\n".join(lines)


def main() -> None:
    print("Figure 2: 4-color 4-ary trees on 8 nodes")
    trees = color_trees(8, 4, arity=4)
    used_internals: set[int] = set()
    for color, tree in enumerate(trees):
        inner = internal_nodes(tree)
        print(f"\ncolor {color} (internal nodes {sorted(inner)}):")
        print(render_tree(tree))
        assert not (inner & used_internals), "internal nodes must be disjoint!"
        used_internals |= inner
    print(f"\nall 8 nodes serve as an internal node exactly once: "
          f"{sorted(used_internals)}")

    # Run it for real: 8 ranks, 8 MB of float32, payload verified.
    nbytes = 8 * MB
    out = simulate_allreduce(
        8, nbytes, algorithm="multicolor", n_colors=4, payload=True, seed=1
    )
    rng = np.random.default_rng(1)
    count = nbytes // 4
    truth = np.sum(
        [rng.standard_normal(count).astype("float32") for _ in range(8)], axis=0
    )
    for buf in out.results:
        np.testing.assert_allclose(buf.array, truth, rtol=1e-4, atol=1e-5)
    print(
        f"\n8 MB allreduce on 8 nodes: {format_duration(out.elapsed)} "
        f"({format_rate(nbytes / out.elapsed)} algorithmic) — results match NumPy"
    )

    # Compare against the baselines at the paper's payload.
    print("\n93 MB (GoogleNetBN gradients) on 16 nodes:")
    for alg in ("multicolor", "ring", "openmpi_default"):
        res = simulate_allreduce(
            16, 93 * MB, algorithm=alg, segment_bytes=1024 * 1024
        )
        print(f"  {alg:16s} {format_duration(res.elapsed):>10s}")


if __name__ == "__main__":
    main()
