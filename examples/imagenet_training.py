#!/usr/bin/env python
"""End-to-end functional training: Algorithm 1 on a synthetic ImageNet.

This example exercises the whole *functional* stack — synthetic images are
encoded into a DIMD record file, partition-loaded by four learners, and
trained with real NumPy CNNs whose gradients travel through the simulated
multi-color MPI allreduce.  Data is reshuffled across learners with
Algorithm 2 every few steps.  Watch the loss fall and accuracy rise.

Run:  python examples/imagenet_training.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.data import (
    GroupLayout,
    RecordReader,
    build_synthetic_record_file,
    partitioned_load,
)
from repro.models.nn import Conv2d, Dense, Flatten, MaxPool2d, Network, ReLU
from repro.train import DistributedSGDTrainer, WarmupStepSchedule

N_LEARNERS = 4
GPUS_PER_NODE = 2
N_CLASSES = 8
IMG = 16  # synthetic "ImageNet" resolution


def cnn_factory(rng: np.random.Generator) -> Network:
    return Network(
        [
            Conv2d(3, 8, 3, rng),
            ReLU(),
            MaxPool2d(2),
            Conv2d(8, 16, 3, rng),
            ReLU(),
            MaxPool2d(2),
            Flatten(),
            Dense(16 * (IMG // 4) ** 2, N_CLASSES, rng),
        ]
    )


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-train-"))
    print(f"writing synthetic record file under {workdir}")
    dataset, base = build_synthetic_record_file(
        workdir / "train", n_images=512, n_classes=N_CLASSES,
        height=IMG, width=IMG, seed=7,
    )

    layout = GroupLayout(N_LEARNERS, 1)
    with RecordReader(base) as reader:
        stores = [partitioned_load(reader, l, layout) for l in range(N_LEARNERS)]
    print(
        f"{len(stores[0])} records/learner, {sum(len(s) for s in stores)} total"
    )

    schedule = WarmupStepSchedule(
        batch_per_gpu=8,
        n_workers=N_LEARNERS * GPUS_PER_NODE,
        base_lr=0.02,
        reference_batch=64,
        warmup_epochs=1.0,
        total_epochs=12,
        decay_every=6,
    )
    # Validation set drawn from the same synthetic distribution.
    val_ids = np.arange(0, 512, 7)
    val_x, val_y = dataset.batch(val_ids)

    with DistributedSGDTrainer(
        cnn_factory,
        stores,
        gpus_per_node=GPUS_PER_NODE,
        batch_per_gpu=8,
        schedule=schedule,
        momentum=0.9,
        weight_decay=1e-4,
        reducer="multicolor",   # gradients really go through the simulated MPI
        seed=3,
        shuffle_every=4,        # Algorithm 2 every 4 steps
    ) as trainer:
        print(f"global batch {trainer.global_batch}, "
              f"{trainer.steps_per_epoch} steps/epoch")
        for epoch in range(6):
            results = trainer.train_epoch()
            trainer.check_synchronized()
            acc = trainer.evaluate(val_x, val_y)
            print(
                f"epoch {epoch + 1}: loss {np.mean([r.loss for r in results]):.3f}"
                f"  lr {results[-1].lr:.4f}  val top-1 {acc:.1%}"
            )
        final = trainer.evaluate(val_x, val_y)
    print(f"final validation top-1: {final:.1%} (chance = {1 / N_CLASSES:.1%})")


if __name__ == "__main__":
    main()
