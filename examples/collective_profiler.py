#!/usr/bin/env python
"""Profile the collective algorithms: where do the bytes and time go?

Uses the collective profiler and the fabric's per-link accounting to show,
for each allreduce algorithm at the paper's 93 MB payload:

* achieved time vs the bandwidth lower bound (pipelining efficiency),
* hop-weighted wire amplification,
* how much traffic crosses the leaf-spine core vs stays at the edge,
* the busiest links.

Run:  python examples/collective_profiler.py
"""

from repro.mpi.profiler import profile_allreduce
from repro.utils.ascii import render_table
from repro.utils.units import MB, format_bytes, format_duration

PAYLOAD = int(93 * MB)
N = 16


def main() -> None:
    rows = []
    for alg in ("multicolor", "ring", "rsag", "hierarchical", "openmpi_default"):
        kwargs = {"group_size": 4} if alg == "hierarchical" else {}
        p = profile_allreduce(N, PAYLOAD, algorithm=alg, **kwargs)
        rows.append(
            [
                alg,
                format_duration(p.elapsed),
                f"{p.efficiency:.0%}",
                f"{p.wire_amplification:.1f}x",
                format_bytes(p.core_bytes),
                f"{p.max_rank_imbalance:.2f}",
            ]
        )
    print(
        render_table(
            ["algorithm", "time", "vs bound", "wire amp",
             "core traffic", "rank imbalance"],
            rows,
            title=f"Allreduce profile — {N} nodes, 93 MB (GoogleNetBN gradients)",
        )
    )
    print(
        "\nReading guide: 'vs bound' compares against the 2n(N-1)/N uplink "
        "lower bound; 'core traffic' is what crosses the leaf-spine layer "
        "(the multi-color trees trade core traffic for pipeline parallelism; "
        "the hierarchical 2-D layout minimizes it)."
    )


if __name__ == "__main__":
    main()
