#!/usr/bin/env python
"""Quickstart: reproduce the paper's headline numbers in a few lines.

Builds the paper's cluster configuration, prints the per-epoch time with
and without the three optimizations (Table 1), the per-iteration breakdown,
and the 90-epoch / 256-GPU result (Table 2).

Run:  python examples/quickstart.py
"""

from repro import ClusterExperiment, ExperimentConfig
from repro.utils.units import format_duration


def main() -> None:
    # ---- Table 1, one row: ResNet-50 on 8 Minsky nodes (32 P100s). -------
    cfg = ExperimentConfig(model="resnet50", dataset="imagenet-1k", n_nodes=8)

    base = ClusterExperiment(cfg.open_source_baseline())
    opt = ClusterExperiment(cfg.fully_optimized())
    t_base, t_opt = base.epoch_time(), opt.epoch_time()
    print("ResNet-50, ImageNet-1k, 8 nodes x 4 P100")
    print(f"  open-source baseline : {t_base:6.1f} s/epoch   (paper: 498 s)")
    print(f"  fully optimized      : {t_opt:6.1f} s/epoch   (paper: 224 s)")
    print(f"  speedup              : {(t_base - t_opt) / t_opt:6.1%}        (paper: 120%)")

    # ---- where the time goes -------------------------------------------------
    print("\nPer-iteration breakdown (fully optimized):")
    for name, seconds in opt.breakdown().as_dict().items():
        print(f"  {name:16s} {format_duration(seconds):>10s}")

    # ---- Table 2: the 48-minute run. -----------------------------------------
    cfg256 = ExperimentConfig(model="resnet50", n_nodes=64, batch_per_gpu=32)
    run = ClusterExperiment(cfg256).run(n_epochs=90)
    print(
        f"\n90 epochs on 256 P100s (batch 8192): "
        f"{run.total_minutes:.0f} min at {run.peak_top1:.1f}% top-1"
        f"   (paper: 48 min, 75.4%; Goyal et al.: 65 min)"
    )


if __name__ == "__main__":
    main()
