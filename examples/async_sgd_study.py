#!/usr/bin/env python
"""Asynchronous SGD study — the paper's §6 future work, made concrete.

Trains the same synthetic task three ways on the simulated cluster:

* synchronous Algorithm 1 (the paper's system),
* plain asynchronous parameter-server SGD,
* staleness-aware asynchronous SGD (lr / (1 + staleness)).

Reports simulated wall-clock, update rates, staleness statistics and final
accuracy, so the sync/async trade-off the authors wanted to explore is
visible end to end.

Run:  python examples/async_sgd_study.py
"""

import numpy as np

from repro.data import DIMDStore
from repro.data.codec import encode_image
from repro.models.nn import Dense, Flatten, Network, ReLU
from repro.train import DistributedSGDTrainer, WarmupStepSchedule
from repro.train.async_sgd import AsyncSGDTrainer

N_WORKERS = 4
N_CLASSES = 5
PER_WORKER = 40


def net_factory(rng: np.random.Generator) -> Network:
    return Network(
        [Flatten(), Dense(16, 20, rng), ReLU(), Dense(20, N_CLASSES, rng)]
    )


def make_stores(seed: int):
    rng = np.random.default_rng(seed)
    stores = []
    for w in range(N_WORKERS):
        labels = rng.integers(0, N_CLASSES, size=PER_WORKER)
        records = []
        for lab in labels:
            img = rng.integers(0, 50, size=(1, 4, 4), dtype=np.uint8)
            img[0, int(lab) % 4, :] = 230
            records.append(encode_image(img))
        stores.append(DIMDStore(records, labels, learner=w))
    return stores


def validation_set(stores):
    rng = np.random.default_rng(1234)
    xs, ys = zip(*(s.random_batch(20, rng) for s in stores))
    return np.concatenate(xs), np.concatenate(ys)


def main() -> None:
    seed = 11
    val_x, val_y = validation_set(make_stores(seed))

    # --- synchronous Algorithm 1 ------------------------------------------
    schedule = WarmupStepSchedule(
        batch_per_gpu=8, n_workers=N_WORKERS, base_lr=0.08,
        reference_batch=32, warmup_epochs=0.0,
    )
    with DistributedSGDTrainer(
        net_factory, make_stores(seed), gpus_per_node=1, batch_per_gpu=8,
        schedule=schedule, reducer="multicolor", seed=seed,
    ) as sync:
        for _ in range(25):
            sync.step()
        sync_acc = sync.evaluate(val_x, val_y)
    print(f"synchronous Algorithm 1 : top-1 {sync_acc:.1%} after 25 steps")

    # --- asynchronous variants ----------------------------------------------
    for label, aware in (("plain async", False), ("staleness-aware", True)):
        trainer = AsyncSGDTrainer(
            net_factory, make_stores(seed), batch_size=8, lr=0.08,
            staleness_aware=aware, compute_jitter=0.5, seed=seed,
        )
        result = trainer.run(iterations_per_worker=25)
        acc = trainer.evaluate(val_x, val_y)
        print(
            f"{label:24s}: top-1 {acc:.1%}, {result.iterations} updates in "
            f"{result.simulated_seconds * 1e3:.1f} simulated ms "
            f"({result.updates_per_second:,.0f}/s), staleness mean "
            f"{result.mean_staleness:.2f} max {result.max_staleness}"
        )


if __name__ == "__main__":
    main()
