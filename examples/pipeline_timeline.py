#!/usr/bin/env python
"""Render one training iteration's timeline: baseline vs optimized DPT.

Recreates Figures 3 and 4 of the paper as executable timelines: the same
node-level iteration (input staging, four GPU forward/backward passes,
criterion, serialized Torch callbacks, gradient reduction) is simulated
under both DataParallelTable designs and drawn with the event tracer, so
the serialization the paper removed is directly visible.

Run:  python examples/pipeline_timeline.py
"""

from repro.cluster import MINSKY_NODE
from repro.core.calibration import compute_model_for
from repro.cluster.interconnect import IntraNodeFabric
from repro.dpt.timing import DPTTimingModel
from repro.models import build_resnet50
from repro.sim import Engine, Resource
from repro.sim.trace import Tracer

BATCH_PER_GPU = 64
MODEL = build_resnet50()
NODE = MINSKY_NODE


def simulate_iteration(variant: str) -> Tracer:
    """One node-level iteration as concurrent processes with tracing."""
    engine = Engine()
    tracer = Tracer(engine)
    fabric = IntraNodeFabric(NODE)
    dpt = DPTTimingModel(NODE, variant)
    compute = compute_model_for("resnet50")
    gpu_time = compute.step_time(
        MODEL.forward_flops, BATCH_PER_GPU, MODEL.n_layers
    )
    batch_bytes = BATCH_PER_GPU * NODE.n_gpus * 3 * 224 * 224 * 4
    output_bytes = BATCH_PER_GPU * NODE.n_gpus * 1000 * 4
    main_thread = Resource(engine, 1, name="main")

    def gpu(g: int, ready_events, done_events):
        yield ready_events[g]
        start = engine.now
        yield engine.timeout(gpu_time)
        tracer.record(f"gpu{g}", "fwd+bwd", start, engine.now)
        # Ending callback: serialized on the main Lua thread.
        t0 = engine.now
        yield from main_thread.use(dpt.callback_cost * dpt.sync_points)
        tracer.record("main", f"callbacks g{g}", t0, engine.now)
        done_events[g].succeed()

    def driver():
        ready = [engine.event() for _ in range(NODE.n_gpus)]
        done = [engine.event() for _ in range(NODE.n_gpus)]
        for g in range(NODE.n_gpus):
            engine.process(gpu(g, ready, done), name=f"gpu{g}")
        # Input staging.
        t0 = engine.now
        yield engine.timeout(dpt.input_time(batch_bytes))
        tracer.record("host", f"input ({variant})", t0, engine.now)
        for ev in ready:
            ev.succeed()
        yield engine.all_of(done)
        # Criterion placement differs between designs.
        t0 = engine.now
        yield engine.timeout(dpt.criterion_time(output_bytes))
        tracer.record("host", "criterion", t0, engine.now)
        # Intra-node gradient reduction + broadcast.
        t0 = engine.now
        yield engine.timeout(fabric.allreduce_time(MODEL.gradient_bytes))
        tracer.record("host", "grad reduce", t0, engine.now)

    engine.run(engine.process(driver(), name="driver"))
    return tracer


def main() -> None:
    for variant in ("baseline", "optimized"):
        tracer = simulate_iteration(variant)
        total = max(s.end for s in tracer.spans)
        print(f"\n=== {variant} DataParallelTable — iteration {total * 1e3:.1f} ms ===")
        print(tracer.render(width=68))
        print(f"main-thread busy: {tracer.busy_time('main') * 1e3:.1f} ms "
              f"({tracer.utilization('main', total):.0%} of the iteration)")


if __name__ == "__main__":
    main()
