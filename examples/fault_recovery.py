#!/usr/bin/env python
"""Live fault injection and elastic recovery, end to end.

Trains a small synthetic task on the simulated cluster while a fault plan
fires mid-run:

* iteration 2 — a gradient message is **dropped** in transit (transient):
  the collective watchdog times out, the trainer backs off and retries,
  and the retried allreduce is bit-identical to a fault-free one;
* iteration 4 — one host's links **degrade** to 25% bandwidth for a
  while (transient): the collective completes, just slower;
* iteration 6 — rank 1 **crashes** (permanent): the trainer shrinks to
  the survivors, redistributes the dead learner's DIMD records, rescales
  the LR schedule, and keeps training;
* iteration 9 — a **checkpoint** is written; a second trainer restores
  from it and finishes the run with bit-identical weights.

Run:  python examples/fault_recovery.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.data import DIMDStore
from repro.data.codec import encode_image
from repro.models.nn import Dense, Flatten, Network, ReLU
from repro.train import (
    DistributedSGDTrainer,
    FaultPlan,
    WarmupStepSchedule,
    crash,
    degrade_links,
    drop_messages,
)

N_LEARNERS = 4
N_CLASSES = 3
PER_LEARNER = 24
TOTAL_STEPS = 12


def net_factory(rng: np.random.Generator) -> Network:
    return Network(
        [Flatten(), Dense(16, 10, rng), ReLU(), Dense(10, N_CLASSES, rng)]
    )


def make_stores(seed: int):
    rng = np.random.default_rng(seed)
    stores = []
    for w in range(N_LEARNERS):
        labels = rng.integers(0, N_CLASSES, size=PER_LEARNER)
        records = []
        for lab in labels:
            img = rng.integers(0, 60, size=(1, 4, 4), dtype=np.uint8)
            img[0, int(lab) % 4, :] = 255
            records.append(encode_image(img))
        stores.append(DIMDStore(records, labels, learner=w))
    return stores


def main() -> None:
    seed = 7
    plan = FaultPlan(
        [
            drop_messages(2, rank=1, count=1),
            degrade_links(2, 4, factor=0.25, duration=0.01),
            crash(1, 6),
        ]
    )
    schedule = WarmupStepSchedule(
        batch_per_gpu=4, n_workers=N_LEARNERS, base_lr=0.08,
        reference_batch=16, warmup_epochs=0.0,
    )
    trainer = DistributedSGDTrainer(
        net_factory, make_stores(seed), gpus_per_node=1, batch_per_gpu=4,
        schedule=schedule, reducer="multicolor", seed=seed, fault_plan=plan,
    )
    total_records = sum(len(s) for s in trainer.stores)

    print(f"fault plan: {len(plan)} scheduled faults over {TOTAL_STEPS} steps")
    print(f"{'it':>3} {'learners':>8} {'loss':>8} {'retries':>7}  faults")
    checkpoint = Path(tempfile.mkdtemp()) / "it9.ckpt"
    for step in range(TOTAL_STEPS):
        r = trainer.step()
        note = "; ".join(r.faults) if r.faults else "-"
        print(
            f"{r.iteration:>3} {r.n_learners:>8} {r.loss:>8.4f} "
            f"{r.retries:>7}  {note}"
        )
        if r.iteration == 9:
            trainer.save_checkpoint(checkpoint)

    trainer.check_synchronized()
    survivors = trainer.n_learners
    conserved = sum(len(s) for s in trainer.stores)
    print(
        f"\nelastic recovery: {N_LEARNERS} -> {survivors} learners, "
        f"records conserved {conserved}/{total_records}"
    )

    resumed = DistributedSGDTrainer.from_checkpoint(checkpoint, net_factory)
    while resumed.iteration < TOTAL_STEPS:
        resumed.step()
    bit_exact = np.array_equal(trainer.params(), resumed.params())
    print(
        f"checkpoint restore from iteration 9: resumed weights "
        f"{'bit-identical' if bit_exact else 'DIVERGED'}"
    )


if __name__ == "__main__":
    main()
