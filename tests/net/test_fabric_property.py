"""Property-based tests for the flow fabric (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import Fabric, LinkParams, NetworkParams, fat_tree, star
from repro.sim import Engine

FAST = NetworkParams(
    host_link=LinkParams(bandwidth=100.0, latency=0.0),
    fabric_link=LinkParams(bandwidth=100.0, latency=0.0),
    software_overhead=0.0,
)


@settings(max_examples=25, deadline=None)
@given(
    transfers=st.lists(
        st.tuples(
            st.integers(0, 7),          # src
            st.integers(0, 7),          # dst
            st.floats(1.0, 500.0),      # bytes
            st.floats(0.0, 5.0),        # start offset
        ),
        min_size=1,
        max_size=20,
    )
)
def test_all_transfers_complete_and_conserve_bytes(transfers):
    eng = Engine()
    fab = Fabric(eng, star(8, FAST))
    total = 0.0

    def launch(src, dst, nbytes, offset):
        yield eng.timeout(offset)
        yield fab.transfer(src, dst, nbytes)

    for src, dst, nbytes, offset in transfers:
        total += nbytes
        eng.process(launch(src, dst, nbytes, offset))
    eng.run()
    assert fab.stats.transfers_completed == len(transfers)
    assert fab.stats.bytes_completed == pytest.approx(total)
    assert not fab.active_flows


@settings(max_examples=25, deadline=None)
@given(
    n_flows=st.integers(1, 12),
    nbytes=st.floats(10.0, 1000.0),
)
def test_completion_no_faster_than_physics(n_flows, nbytes):
    """n identical flows into one sink take >= n * nbytes / bandwidth."""
    eng = Engine()
    fab = Fabric(eng, star(8, FAST))
    evs = [fab.transfer(src % 7, 7, nbytes) for src in range(n_flows)]
    eng.run(eng.all_of(evs))
    lower_bound = n_flows * nbytes / 100.0
    assert eng.now >= lower_bound * (1 - 1e-9)


@settings(max_examples=15, deadline=None)
@given(
    pairs=st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)),
        min_size=2,
        max_size=12,
    ),
    cap=st.floats(10.0, 100.0),
)
def test_per_flow_cap_respected(pairs, cap):
    eng = Engine()
    topo = fat_tree(16, FAST, hosts_per_leaf=4)
    fab = Fabric(eng, topo, per_flow_cap=cap)
    evs = [fab.transfer(a, b, 200.0) for a, b in pairs]

    def audit():
        while fab.stats.transfers_completed < len(evs):
            for flow in fab.active_flows:
                assert flow.rate <= cap * (1 + 1e-9)
            yield eng.timeout(0.05)

    eng.process(audit())
    eng.run(eng.all_of(evs))


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 1000))
def test_fabric_deterministic(seed):
    import numpy as np

    def simulate():
        rng = np.random.default_rng(seed)
        eng = Engine()
        fab = Fabric(eng, star(6, FAST))
        finish = []
        evs = []
        for _ in range(8):
            src, dst = rng.integers(0, 6, size=2)
            if src == dst:
                dst = (dst + 1) % 6
            ev = fab.transfer(int(src), int(dst), float(rng.uniform(10, 300)))
            ev.callbacks.append(lambda _e: finish.append(eng.now))
            evs.append(ev)
        eng.run(eng.all_of(evs))
        return finish

    assert simulate() == simulate()
