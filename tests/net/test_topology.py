"""Unit tests for topologies and routing."""

import pytest

from repro.net import LinkParams, NetworkParams, fat_tree, full_mesh, ring, star

SIMPLE = NetworkParams(
    host_link=LinkParams(bandwidth=100.0, latency=1e-3),
    fabric_link=LinkParams(bandwidth=100.0, latency=1e-3),
    software_overhead=0.0,
)


def test_link_params_validation():
    with pytest.raises(ValueError):
        LinkParams(bandwidth=0.0, latency=0.0)
    with pytest.raises(ValueError):
        LinkParams(bandwidth=1.0, latency=-1.0)


def test_serialization_time():
    lp = LinkParams(bandwidth=200.0, latency=0.0)
    assert lp.serialization_time(100.0) == pytest.approx(0.5)


def test_star_routes_two_hops():
    topo = star(4, SIMPLE)
    path = topo.route(0, 3)
    assert len(path) == 2
    assert topo.links[path[0]].src == "h0"
    assert topo.links[path[-1]].dst == "h3"


def test_route_loopback_empty():
    topo = star(4, SIMPLE)
    assert topo.route(2, 2) == ()
    assert topo.path_bottleneck(()) == float("inf")


def test_route_is_cached_and_deterministic():
    topo = fat_tree(16, SIMPLE, hosts_per_leaf=4)
    p1 = topo.route(0, 9)
    p2 = topo.route(0, 9)
    assert p1 == p2
    # fresh topology gives identical routing
    topo2 = fat_tree(16, SIMPLE, hosts_per_leaf=4)
    assert topo2.route(0, 9) == p1


def test_fat_tree_hop_counts():
    topo = fat_tree(16, SIMPLE, hosts_per_leaf=4)
    # same leaf: host->leaf->host
    assert len(topo.route(0, 1)) == 2
    # cross leaf: host->leaf->spine->leaf->host
    assert len(topo.route(0, 15)) == 4


def test_fat_tree_single_leaf_degenerates_to_star():
    topo = fat_tree(3, SIMPLE, hosts_per_leaf=4)
    assert len(topo.route(0, 2)) == 2


def test_fat_tree_oversubscription_shrinks_uplinks():
    non_blocking = fat_tree(8, SIMPLE, hosts_per_leaf=4, oversubscription=1.0)
    oversub = fat_tree(8, SIMPLE, hosts_per_leaf=4, oversubscription=2.0)

    def uplink_bw(topo):
        return sum(
            l.params.bandwidth
            for l in topo.links
            if l.src == "s:leaf0" and l.dst.startswith("s:spine")
        )

    assert uplink_bw(oversub) == pytest.approx(uplink_bw(non_blocking) / 2)


def test_fat_tree_validation():
    with pytest.raises(ValueError):
        fat_tree(0, SIMPLE)
    with pytest.raises(ValueError):
        fat_tree(8, SIMPLE, hosts_per_leaf=0)
    with pytest.raises(ValueError):
        fat_tree(8, SIMPLE, oversubscription=0.5)


def test_ring_neighbors_one_hop():
    topo = ring(6, SIMPLE)
    assert len(topo.route(2, 3)) == 1
    assert len(topo.route(5, 0)) == 1  # wraps around
    # opposite side of ring: 3 hops either way
    assert len(topo.route(0, 3)) == 3


def test_ring_validation():
    with pytest.raises(ValueError):
        ring(1, SIMPLE)


def test_full_mesh_single_hop_everywhere():
    topo = full_mesh(5, SIMPLE)
    for a in range(5):
        for b in range(5):
            if a != b:
                assert len(topo.route(a, b)) == 1


def test_path_latency_sums_links():
    topo = star(2, SIMPLE)
    path = topo.route(0, 1)
    assert topo.path_latency(path) == pytest.approx(2e-3)


def test_host_rank_bounds():
    topo = star(2, SIMPLE)
    with pytest.raises(ValueError):
        topo.host(2)
    with pytest.raises(ValueError):
        topo.host(-1)


def test_no_route_raises():
    from repro.net.topology import Topology

    topo = Topology(name="broken", n_hosts=2)
    topo.add_cable("h0", "s:a", SIMPLE.host_link)
    # h1 never wired up
    with pytest.raises(ValueError, match="no route"):
        topo.route(0, 1)
