"""Unit tests for the max-min fair flow fabric."""

import pytest

from repro.net import Fabric, LinkParams, NetworkParams, fat_tree, star
from repro.sim import Engine

FAST = NetworkParams(
    host_link=LinkParams(bandwidth=100.0, latency=0.0),
    fabric_link=LinkParams(bandwidth=100.0, latency=0.0),
    software_overhead=0.0,
)


def make_fabric(n_hosts=4, topo_fn=star, **kw):
    eng = Engine()
    topo = topo_fn(n_hosts, FAST)
    fab = Fabric(eng, topo, **kw)
    return eng, fab


def test_single_transfer_time():
    eng, fab = make_fabric()
    ev = fab.transfer(0, 1, 200.0)
    eng.run(ev)
    # 200 bytes at 100 B/s over an uncontended path
    assert eng.now == pytest.approx(2.0)


def test_latency_and_overhead_added():
    eng = Engine()
    params = NetworkParams(
        host_link=LinkParams(bandwidth=100.0, latency=0.5),
        fabric_link=LinkParams(bandwidth=100.0, latency=0.5),
    )
    topo = star(2, params)
    fab = Fabric(eng, topo, software_overhead=0.25)
    ev = fab.transfer(0, 1, 100.0)
    eng.run(ev)
    # 0.25 overhead + 2 * 0.5 latency + 1.0 serialization
    assert eng.now == pytest.approx(2.25)


def test_zero_byte_transfer_pays_only_latency():
    eng = Engine()
    params = NetworkParams(
        host_link=LinkParams(bandwidth=100.0, latency=0.5),
        fabric_link=LinkParams(bandwidth=100.0, latency=0.5),
    )
    fab = Fabric(eng, star(2, params), software_overhead=0.1)
    ev = fab.transfer(0, 1, 0.0)
    eng.run(ev)
    assert eng.now == pytest.approx(1.1)


def test_loopback_uses_memcpy_rate():
    eng, fab = make_fabric(loopback_bandwidth=50.0)
    ev = fab.transfer(2, 2, 100.0)
    eng.run(ev)
    assert eng.now == pytest.approx(2.0)


def test_negative_bytes_rejected():
    _eng, fab = make_fabric()
    with pytest.raises(ValueError):
        fab.transfer(0, 1, -1.0)


def test_disjoint_flows_do_not_contend():
    eng, fab = make_fabric(4)
    e1 = fab.transfer(0, 1, 100.0)
    e2 = fab.transfer(2, 3, 100.0)
    done = eng.all_of([e1, e2])
    eng.run(done)
    assert eng.now == pytest.approx(1.0)


def test_shared_link_halves_rate():
    eng, fab = make_fabric(4)
    # Both flows converge on link switch->h2.
    e1 = fab.transfer(0, 2, 100.0)
    e2 = fab.transfer(1, 2, 100.0)
    eng.run(eng.all_of([e1, e2]))
    assert eng.now == pytest.approx(2.0)


def test_three_flows_share_bottleneck_equally():
    eng, fab = make_fabric(4)
    evs = [fab.transfer(src, 3, 100.0) for src in (0, 1, 2)]
    eng.run(eng.all_of(evs))
    assert eng.now == pytest.approx(3.0)


def test_rates_rebalance_after_completion():
    eng, fab = make_fabric(4)
    times = {}

    def watch(name, ev):
        yield ev
        times[name] = eng.now

    ea = fab.transfer(0, 2, 100.0)
    eb = fab.transfer(1, 2, 300.0)
    pa = eng.process(watch("a", ea))
    pb = eng.process(watch("b", eb))
    eng.run(eng.all_of([pa, pb]))
    # Shared 100 B/s bottleneck: both run at 50 B/s until a completes at t=2
    # with b having 200 bytes left, then b runs at 100 B/s: t = 2 + 2 = 4.
    assert times["a"] == pytest.approx(2.0)
    assert times["b"] == pytest.approx(4.0)


def test_staggered_start_shares_fairly():
    eng, fab = make_fabric(4)
    times = {}

    def second_flow():
        yield eng.timeout(1.0)
        ev = fab.transfer(1, 2, 100.0)
        yield ev
        times["b"] = eng.now

    def first_flow():
        ev = fab.transfer(0, 2, 200.0)
        yield ev
        times["a"] = eng.now

    eng.process(first_flow())
    eng.process(second_flow())
    eng.run()
    # a: 100 bytes alone in [0,1), then 50 B/s shared until it finishes.
    # At t=1, a has 100 left, b has 100; both at 50 B/s -> both done at t=3.
    assert times["a"] == pytest.approx(3.0)
    assert times["b"] == pytest.approx(3.0)


def test_maxmin_not_just_equal_split():
    # Flow A crosses two links; B contends on the first, C on the second.
    # Max-min: A=B=C=50 on a 100 B/s topology is the equal outcome here,
    # but removing B must give A 100 on link1 only if link2 allows it.
    eng, fab = make_fabric(6)
    times = {}

    def run_flow(name, src, dst, nbytes):
        ev = fab.transfer(src, dst, nbytes)
        yield ev
        times[name] = eng.now

    eng.process(run_flow("a", 0, 1, 100.0))
    eng.process(run_flow("b", 0, 2, 100.0))  # shares h0->switch with a
    eng.process(run_flow("c", 3, 1, 100.0))  # shares switch->h1 with a
    eng.run()
    # All three see a 2-way shared bottleneck -> 50 B/s each initially.
    # a finishes at 2.0; b and c then speed up to 100 B/s... but they only
    # have 0 left? No: all are 100 bytes at 50 B/s -> all finish at 2.0.
    assert times == {"a": pytest.approx(2.0), "b": pytest.approx(2.0), "c": pytest.approx(2.0)}


def test_fat_tree_cross_leaf_contention():
    eng = Engine()
    topo = fat_tree(8, FAST, hosts_per_leaf=4)
    fab = Fabric(eng, topo)
    # 4 hosts on leaf0 all send to distinct hosts on leaf1: the leaf uplink
    # fans out across spines; with non-blocking sizing, aggregate capacity
    # suffices, though individual spine links may collide via ECMP.
    evs = [fab.transfer(i, 4 + i, 100.0) for i in range(4)]
    eng.run(eng.all_of(evs))
    # Completion no faster than uncontended, no slower than full serialization.
    assert 1.0 - 1e-9 <= eng.now <= 4.0 + 1e-9


def test_stats_track_bytes():
    eng, fab = make_fabric()
    ev = fab.transfer(0, 1, 123.0)
    eng.run(ev)
    assert fab.stats.transfers_started == 1
    assert fab.stats.transfers_completed == 1
    assert fab.stats.bytes_completed == pytest.approx(123.0)
    assert sum(fab.stats.link_bytes.values()) == pytest.approx(2 * 123.0)


def test_many_concurrent_flows_complete():
    eng, fab = make_fabric(8)
    evs = [
        fab.transfer(a, b, 10.0 * (1 + a))
        for a in range(8)
        for b in range(8)
        if a != b
    ]
    eng.run(eng.all_of(evs))
    assert fab.stats.transfers_completed == len(evs)
