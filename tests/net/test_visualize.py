"""Tests for topology/traffic rendering."""

import pytest

from repro.net import CONNECTX5_DUAL, Fabric, fat_tree, star
from repro.net.visualize import core_traffic, describe_topology, link_utilization_table
from repro.sim import Engine


def test_describe_topology_lists_switches():
    topo = fat_tree(8, CONNECTX5_DUAL, hosts_per_leaf=4)
    text = describe_topology(topo)
    assert "8 hosts" in text
    assert "s:leaf0" in text and "s:spine" in text
    assert "h0" in text


def test_link_utilization_table_orders_by_bytes():
    eng = Engine()
    fab = Fabric(eng, star(4, CONNECTX5_DUAL))
    eng.run(eng.all_of([fab.transfer(0, 1, 1e6), fab.transfer(2, 3, 5e6)]))
    text = link_utilization_table(fab, top=2)
    lines = text.splitlines()
    assert "h2" in lines[1]  # busiest first
    assert "%" in lines[1]


def test_link_utilization_empty():
    eng = Engine()
    fab = Fabric(eng, star(2, CONNECTX5_DUAL))
    assert "no traffic" in link_utilization_table(fab)
    with pytest.raises(ValueError):
        link_utilization_table(fab, top=0)


def test_core_traffic_classification():
    eng = Engine()
    topo = fat_tree(8, CONNECTX5_DUAL, hosts_per_leaf=4)
    fab = Fabric(eng, topo)
    # Intra-leaf transfer: edge only.
    eng.run(fab.transfer(0, 1, 1e6))
    classes = core_traffic(fab)
    assert classes["core"] == 0.0
    assert classes["edge"] == pytest.approx(2e6)
    # Cross-leaf transfer adds core bytes.
    eng.run(fab.transfer(0, 7, 1e6))
    classes = core_traffic(fab)
    assert classes["core"] == pytest.approx(2e6)
