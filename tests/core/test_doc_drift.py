"""Registry-driven doc-drift lint: code registries vs the prose.

DESIGN.md's fault matrix and README.md's command surface are generated
by hand but *derived* from code registries — so each registry entry must
appear in its document, and each documented matrix row must still be
registered.  A new fault kind or CLI subcommand that skips the docs (or
a renamed one that orphans a row) fails here, not in review.
"""

import re
from pathlib import Path

from repro.cli import _COMMANDS
from repro.train.injection import FAULT_KINDS

REPO = Path(__file__).resolve().parents[2]


def fault_matrix_rows(text: str) -> list[str]:
    """Kind names of DESIGN.md's fault-matrix rows: ``| `kind` | ...``."""
    return re.findall(r"^\|\s*`([a-z-]+)`\s*\|", text, re.M)


def test_design_fault_matrix_covers_registry_exactly():
    design = (REPO / "DESIGN.md").read_text()
    rows = fault_matrix_rows(design)
    registered = set(FAULT_KINDS)
    missing = registered - set(rows)
    assert not missing, (
        f"fault kinds registered in repro.train.injection.FAULT_KINDS but "
        f"absent from DESIGN.md's fault matrix: {sorted(missing)}"
    )
    orphaned = set(rows) - registered
    assert not orphaned, (
        f"DESIGN.md fault-matrix rows no longer registered: "
        f"{sorted(orphaned)}"
    )


def test_readme_mentions_every_cli_subcommand():
    readme = (REPO / "README.md").read_text()
    missing = [
        command
        for command in _COMMANDS
        if not re.search(rf"repro {re.escape(command)}\b", readme)
    ]
    assert not missing, (
        f"CLI subcommands with no README mention "
        f"(`python -m repro <cmd>`): {missing}"
    )


def test_readme_documents_fleet_verify_mode():
    # The checker is reached through a flag, not a subcommand, so the
    # registry walk above cannot see it; pin the quickstart explicitly.
    readme = (REPO / "README.md").read_text()
    assert re.search(r"repro verify --fleet\b", readme), (
        "README.md lost the `repro verify --fleet` quickstart"
    )
