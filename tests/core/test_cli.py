"""CLI tests: in-process (fast paths) and one subprocess smoke test."""

import subprocess
import sys

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_allreduce_command(capsys):
    code, out = run_cli(
        capsys, "allreduce", "--ranks", "8", "--mbytes", "4",
        "--algorithm", "multicolor",
    )
    assert code == 0
    assert "multicolor allreduce" in out
    assert "8 nodes" in out


def test_allreduce_unknown_algorithm(capsys):
    code = main(["allreduce", "--algorithm", "warp"])
    assert code == 2


def test_epoch_command(capsys):
    code, out = run_cli(capsys, "epoch", "--model", "googlenet_bn", "--nodes", "8")
    assert code == 0
    assert "epoch time" in out
    assert "gpu_compute" in out


def test_epoch_baseline_flag(capsys):
    _code, opt_out = run_cli(capsys, "epoch", "--nodes", "8")
    _code, base_out = run_cli(capsys, "epoch", "--nodes", "8", "--baseline")

    def epoch_seconds(text):
        line = [l for l in text.splitlines() if "epoch time" in l][0]
        return line

    assert epoch_seconds(base_out) != epoch_seconds(opt_out)


def test_step_command(capsys):
    code, out = run_cli(
        capsys, "step", "--model", "googlenet_bn", "--ranks", "4",
        "--algorithm", "multicolor", "--buckets", "4",
    )
    assert code == 0
    assert "step[multicolor x4 data]" in out
    assert "PROVED: all passes clean" in out
    assert "critical-path lower bound" in out
    assert "VIOLATED" not in out


def test_step_command_prints_schedule(capsys):
    code, out = run_cli(
        capsys, "step", "--model", "googlenet_bn", "--ranks", "2",
        "--buckets", "2", "--fp16", "--print", "--max-steps", "3",
    )
    assert code == 0
    assert "compute" in out and "bwd bucket" in out
    assert "more steps" in out  # truncation marker from --max-steps


def test_step_command_unknown_model(capsys):
    code = main(["step", "--model", "resnet9000"])
    assert code == 2
    assert "unknown model" in capsys.readouterr().err


def test_step_command_unknown_algorithm(capsys):
    code = main(["step", "--algorithm", "warp"])
    assert code == 2
    assert "unknown algorithm" in capsys.readouterr().err


def test_shuffle_command(capsys):
    code, out = run_cli(
        capsys, "shuffle", "--dataset", "imagenet-1k", "--learners", "16"
    )
    assert code == 0
    assert "16 learners" in out
    assert "AlltoAllv passes" in out


def test_memory_command(capsys):
    code, out = run_cli(capsys, "memory", "--dataset", "imagenet-22k",
                        "--learners", "32")
    assert code == 0
    assert "fits" in out
    assert "max replication" in out


def test_trees_command(capsys):
    code, out = run_cli(capsys, "trees", "--ranks", "8", "--colors", "4")
    assert code == 0
    assert "color 0: root 0" in out
    assert "color 1: root 2" in out


def test_faults_command(capsys):
    code, out = run_cli(
        capsys, "faults", "--steps", "6", "--crash-at", "3", "--drop-at", "-1"
    )
    assert code == 0
    assert "crash[rank 1]" in out
    assert "survivors 3/4" in out
    assert "records conserved 96/96" in out


def test_faults_command_rejects_bad_crash_rank(capsys):
    code = main(["faults", "--learners", "4", "--crash-rank", "9"])
    assert code == 2


def test_faults_command_exits_1_when_recovery_fails(capsys, monkeypatch):
    from repro.train.distributed import DistributedSGDTrainer

    def broken(self):
        raise AssertionError("replicas diverged")

    monkeypatch.setattr(DistributedSGDTrainer, "check_synchronized", broken)
    code = main(["faults", "--steps", "2", "--crash-rank", "-1",
                 "--drop-at", "-1"])
    assert code == 1
    assert "recovery failed" in capsys.readouterr().err


def test_faults_list_prints_registry(capsys):
    from repro.train import FAULT_KINDS

    code, out = run_cli(capsys, "faults", "--list")
    assert code == 0
    for name, kind in FAULT_KINDS.items():
        assert name in out
        assert kind.doc in out


def test_faults_unknown_kind_exits_2(capsys):
    code = main(["faults", "--kind", "bogus"])
    assert code == 2
    assert "unknown fault kind" in capsys.readouterr().err


def test_faults_kind_sdc_demo(capsys):
    code, out = run_cli(capsys, "faults", "--kind", "sdc")
    assert code == 0
    assert "sdc" in out
    assert "survivors 3/4" in out


def test_sdc_step_chaos_exit_codes(capsys, monkeypatch):
    code, out = run_cli(
        capsys, "chaos", "--collective", "sdc-step", "--max-points", "1"
    )
    assert code == 0
    assert "sdc chaos: 1 points, 1 ok" in out

    import repro.train.sdc_chaos as sdc_chaos

    class FakeReport:
        all_ok = False

        def format(self):
            return "sdc chaos: 1 points, 0 ok, 1 failed"

    monkeypatch.setattr(
        sdc_chaos, "sdc_chaos_sweep", lambda **kw: FakeReport()
    )
    assert main(["chaos", "--collective", "sdc-step"]) == 1


def test_fleet_command(capsys):
    code, out = run_cli(
        capsys, "fleet", "--jobs", "3", "--steps", "3", "--events"
    )
    assert code == 0
    assert "placement=pack" in out
    assert "job2" in out
    assert "finish" in out


def test_fleet_command_with_node_kill(capsys):
    code, out = run_cli(
        capsys, "fleet", "--jobs", "2", "--kill-node", "0", "--events"
    )
    assert code == 0
    assert "node-kill" in out


def test_fleet_command_kill_revive_grow(capsys):
    code, out = run_cli(
        capsys, "fleet", "--jobs", "3", "--kill-node", "0",
        "--revive-after", "0.0005", "--grow", "--events",
    )
    assert code == 0
    assert "node-kill" in out
    assert "revive" in out
    assert "grow-grant" in out
    assert "grew onto node" in out
    assert "grows=1" in out  # per-job summary reports the grow


def test_fleet_command_rejects_bad_args(capsys):
    assert main(["fleet", "--jobs", "0"]) == 2
    assert main(["fleet", "--kill-node", "99"]) == 2
    assert main(["fleet", "--racks", "0"]) == 2
    assert main(["fleet", "--revive-after", "0.1"]) == 2  # needs --kill-node
    assert main(["fleet", "--kill-node", "0", "--revive-after", "-1"]) == 2


def test_fleet_chaos_exit_codes(capsys, monkeypatch):
    import repro.cli as cli

    class FakeReport:
        all_ok = False

        def format(self):
            return "fleet chaos: 1 points, 0 ok, 1 failed"

    def fake_sweep(**kwargs):
        return FakeReport()

    import repro.fleet
    import repro.fleet.chaos

    monkeypatch.setattr(repro.fleet, "fleet_chaos_sweep", fake_sweep)
    monkeypatch.setattr(repro.fleet.chaos, "fleet_chaos_sweep", fake_sweep)
    assert main(["fleet", "--chaos"]) == 1
    assert main(["chaos", "--collective", "fleet"]) == 1


def test_fleet_chaos_rejects_unknown_kind(capsys):
    code = main(["chaos", "--collective", "fleet", "--kinds", "bogus"])
    assert code == 2


def test_module_invocation_smoke():
    result = subprocess.run(
        [sys.executable, "-m", "repro", "trees", "--ranks", "8", "--colors", "4"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0
    assert "color 3" in result.stdout
