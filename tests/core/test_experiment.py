"""End-to-end experiment tests: the Table 1 / Table 2 reproduction bands.

These are the repository's acceptance tests — every epoch time within 10%
of the paper's Table 1, the 90-epoch Table 2 run within the published
ordering.
"""

import pytest

from repro.core import ClusterExperiment, ExperimentConfig

# Table 1: (model, nodes) -> (open-source s/epoch, optimized s/epoch, top-1 %)
TABLE1 = {
    ("googlenet_bn", 8): (249, 155, 74.86),
    ("googlenet_bn", 16): (131, 76, 74.36),
    ("googlenet_bn", 32): (65, 41, 74.19),
    ("resnet50", 8): (498, 224, 75.99),
    ("resnet50", 16): (251, 109, 75.78),
    ("resnet50", 32): (128, 58, 75.56),
}


@pytest.mark.parametrize("model,n_nodes", sorted(TABLE1))
def test_table1_epoch_times_within_band(model, n_nodes):
    paper_base, paper_opt, _acc = TABLE1[(model, n_nodes)]
    cfg = ExperimentConfig(model=model, n_nodes=n_nodes)
    base = ClusterExperiment(cfg.open_source_baseline()).epoch_time()
    opt = ClusterExperiment(cfg.fully_optimized()).epoch_time()
    assert base == pytest.approx(paper_base, rel=0.10)
    assert opt == pytest.approx(paper_opt, rel=0.10)


@pytest.mark.parametrize("model,n_nodes", sorted(TABLE1))
def test_table1_accuracy_within_band(model, n_nodes):
    _b, _o, paper_acc = TABLE1[(model, n_nodes)]
    cfg = ExperimentConfig(model=model, n_nodes=n_nodes)
    assert ClusterExperiment(cfg).peak_top1() == pytest.approx(paper_acc, abs=0.5)


def test_table2_90_epoch_run():
    """256 P100, batch 32/GPU: paper 48 min at 75.4%; Goyal et al. 65 min.
    We accept the 45-60 min band (faster than Goyal, same accuracy)."""
    cfg = ExperimentConfig(model="resnet50", n_nodes=64, batch_per_gpu=32)
    exp = ClusterExperiment(cfg)
    run = exp.run(n_epochs=90)
    assert 45 < run.total_minutes < 60
    assert run.peak_top1 == pytest.approx(75.4, abs=0.5)
    assert run.config.global_batch == 8192


def test_run_curves_shape():
    cfg = ExperimentConfig(model="resnet50", n_nodes=8)
    run = ClusterExperiment(cfg).run(n_epochs=90, points_per_epoch=2)
    assert len(run.epochs) == 181
    assert run.hours[-1] == pytest.approx(run.total_seconds / 3600)
    assert run.top1[-1] > 70
    assert run.train_error[0] > run.train_error[-1]


def test_accuracy_independent_of_optimizations():
    """§5.4: none of the optimizations affect accuracy."""
    cfg = ExperimentConfig(model="googlenet_bn", n_nodes=16)
    a = ClusterExperiment(cfg.fully_optimized()).peak_top1(seed=3)
    b = ClusterExperiment(cfg.open_source_baseline()).peak_top1(seed=3)
    assert a == b


def test_scaling_is_near_linear():
    times = {}
    for n in (8, 16, 32):
        cfg = ExperimentConfig(model="resnet50", n_nodes=n).fully_optimized()
        times[n] = ClusterExperiment(cfg).epoch_time()
    assert times[8] / times[16] == pytest.approx(2.0, rel=0.15)
    assert times[8] / times[32] == pytest.approx(4.0, rel=0.2)


def test_breakdown_accessible():
    cfg = ExperimentConfig(model="resnet50", n_nodes=8)
    b = ClusterExperiment(cfg).breakdown()
    assert b.gpu_compute > 0.1  # ~330 ms steps at batch 64
    assert ClusterExperiment(cfg).images_per_second() > 1000


def test_run_validation():
    exp = ClusterExperiment(ExperimentConfig(n_nodes=8))
    with pytest.raises(ValueError):
        exp.run(n_epochs=0)


def test_validation_pass_optional_and_small():
    """§5.4's per-epoch top-1 pass adds a few seconds, off by default."""
    from dataclasses import replace

    cfg = ExperimentConfig(model="resnet50", n_nodes=8)
    base = ClusterExperiment(cfg)
    with_val = ClusterExperiment(replace(cfg, include_validation=True))
    delta = with_val.epoch_time() - base.epoch_time()
    assert delta == pytest.approx(with_val.validation_time())
    assert 0.5 < delta < 30.0  # seconds, not minutes
