"""Tests for ExperimentConfig and calibration helpers."""

import pytest

from repro.core import (
    ExperimentConfig,
    GOOGLENET_PAPER_PAYLOAD,
    compute_model_for,
    shuffle_seconds_for,
)


def test_default_config_is_paper_setup():
    cfg = ExperimentConfig()
    assert cfg.model == "resnet50"
    assert cfg.gpus_per_node == 4
    assert cfg.batch_per_gpu == 64
    assert cfg.n_workers == 32
    assert cfg.global_batch == 2048


def test_presets_flip_the_three_optimizations():
    cfg = ExperimentConfig(n_nodes=16)
    base = cfg.open_source_baseline()
    assert base.allreduce == "openmpi_default"
    assert not base.dimd
    assert base.dpt_variant == "baseline"
    assert base.open_source_kernels
    opt = base.fully_optimized()
    assert opt.allreduce == "multicolor"
    assert opt.dimd and opt.dpt_variant == "optimized"
    assert not opt.open_source_kernels
    assert opt.n_nodes == 16  # preserved


def test_with_nodes():
    cfg = ExperimentConfig(n_nodes=8).with_nodes(32)
    assert cfg.n_nodes == 32


def test_config_validation():
    with pytest.raises(ValueError):
        ExperimentConfig(n_nodes=0)
    with pytest.raises(ValueError):
        ExperimentConfig(allreduce="warp")
    with pytest.raises(ValueError):
        ExperimentConfig(dataset="cifar")
    with pytest.raises(ValueError):
        ExperimentConfig(dpt_variant="hyper")
    with pytest.raises(ValueError):
        ExperimentConfig(shuffles_per_epoch=-1)


def test_googlenet_payload_is_93mb():
    assert GOOGLENET_PAPER_PAYLOAD == 93_000_000


def test_compute_model_lookup():
    m = compute_model_for("resnet50")
    assert m.gpu.name.startswith("P100")
    with pytest.raises(ValueError):
        compute_model_for("lenet")


def test_shuffle_seconds_cached_and_single_node_zero():
    assert shuffle_seconds_for(1, "imagenet-1k") == 0.0
    a = shuffle_seconds_for(8, "imagenet-1k")
    b = shuffle_seconds_for(8, "imagenet-1k")
    assert a == b > 0
