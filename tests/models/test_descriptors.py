"""Unit tests for model descriptors and the zoo."""

import pytest

from repro.models import (
    MODELS,
    RESNET50_PARAMS,
    ModelDescriptor,
    build_alexnet,
    build_googlenet_bn,
    build_resnet50,
    build_vgg16,
    conv2d,
    dense,
    get_model,
    pool,
)


def test_conv2d_accounting():
    layer = conv2d("c", 3, 64, 7, 112, 112)
    assert layer.params == 7 * 7 * 3 * 64
    assert layer.fwd_flops == 2.0 * 7 * 7 * 3 * 64 * 112 * 112


def test_conv2d_bias_and_groups():
    layer = conv2d("c", 8, 16, 3, 4, 4, groups=4, bias=True)
    assert layer.params == 3 * 3 * 2 * 16 + 16
    with pytest.raises(ValueError):
        conv2d("c", 8, 16, 3, 4, 4, groups=3)


def test_dense_accounting():
    layer = dense("fc", 2048, 1000)
    assert layer.params == 2048 * 1000 + 1000
    assert layer.fwd_flops == 2.0 * 2048 * 1000


def test_resnet50_canonical_param_count():
    """The headline check: exact agreement with torchvision/fb.resnet."""
    assert build_resnet50().n_params == RESNET50_PARAMS


def test_resnet50_gflops_in_range():
    """~4.1 GMACs = ~8.2 GFLOPs forward at 224x224."""
    flops = build_resnet50().forward_flops
    assert 7.5e9 < flops < 9.0e9


def test_resnet50_gradient_payload_matches_paper():
    """fp32 gradients ~102 MB (the ResNet-50 allreduce payload)."""
    assert build_resnet50().gradient_bytes == pytest.approx(102.2e6, rel=0.01)


def test_alexnet_canonical_param_count():
    assert build_alexnet().n_params == pytest.approx(61.1e6, rel=0.01)


def test_vgg16_canonical_param_count():
    assert build_vgg16().n_params == pytest.approx(138.36e6, rel=0.005)


def test_googlenet_bn_structure():
    m = build_googlenet_bn()
    # BN-Inception ends in a 1024-wide global pool + classifier.
    fc = [l for l in m.layers if l.name == "fc"][0]
    assert fc.params == 1024 * 1000 + 1000
    assert 10e6 < m.n_params < 20e6
    # The aux tower must be optional.
    assert build_googlenet_bn(aux_head=False).n_params < m.n_params


def test_googlenet_cheaper_than_resnet():
    """GoogleNetBN trains faster per image than ResNet-50 (paper's Table 1
    epoch times: 249s vs 498s open-source), so it must have fewer FLOPs."""
    assert build_googlenet_bn().forward_flops < 0.6 * build_resnet50().forward_flops


def test_zoo_lookup():
    assert set(MODELS) == {"resnet50", "googlenet_bn", "alexnet", "vgg16"}
    assert get_model("resnet50").name == "resnet50"
    with pytest.raises(ValueError, match="unknown model"):
        get_model("lenet")


def test_descriptor_aggregates():
    m = ModelDescriptor(name="toy", input_shape=(3, 8, 8))
    m.add(conv2d("c1", 3, 8, 3, 8, 8))
    m.add(pool("p1", 8, 4, 4, 2))
    m.add(dense("fc", 128, 10))
    assert m.n_params == 3 * 3 * 3 * 8 + 128 * 10 + 10
    assert m.n_layers == 3
    assert m.n_weight_layers == 2
    assert "toy" in m.summary()


def test_layer_validation():
    with pytest.raises(ValueError):
        conv2d("bad", 0, 8, 3, 8, 8)
    with pytest.raises(ValueError):
        dense("bad", 10, 0)
    with pytest.raises(ValueError):
        pool("bad", 1, 0, 1, 2)
