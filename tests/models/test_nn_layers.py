"""Gradient checks and behaviour tests for the NumPy NN layers."""

import numpy as np
import pytest

from repro.models.nn import (
    BatchNorm,
    Conv2d,
    Dense,
    Flatten,
    MaxPool2d,
    ReLU,
    softmax_cross_entropy,
)

RNG = np.random.default_rng(42)


def numerical_grad(f, x, eps=1e-6):
    """Central-difference gradient of scalar f w.r.t. array x."""
    grad = np.zeros_like(x, dtype=float)
    flat = x.ravel()
    gflat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        fp = f()
        flat[i] = orig - eps
        fm = f()
        flat[i] = orig
        gflat[i] = (fp - fm) / (2 * eps)
    return grad


def check_layer_gradients(layer, x, *, check_params=True, atol=1e-6):
    """Verify backward() against central differences for input and params."""

    def loss():
        return float(np.sum(layer.forward(x, train=True) ** 2))

    layer.zero_grads()
    out = layer.forward(x, train=True)
    dx = layer.backward(2.0 * out)
    analytic = [g.copy() for g in layer.grads]

    np.testing.assert_allclose(dx, numerical_grad(loss, x), atol=atol, rtol=1e-4)
    if check_params:
        for g, p in zip(analytic, layer.params):
            np.testing.assert_allclose(
                g, numerical_grad(loss, p), atol=atol, rtol=1e-4
            )


def test_dense_gradients():
    layer = Dense(5, 4, RNG)
    x = RNG.standard_normal((3, 5))
    check_layer_gradients(layer, x)


def test_conv2d_gradients():
    layer = Conv2d(2, 3, 3, RNG)
    x = RNG.standard_normal((2, 2, 5, 5))
    check_layer_gradients(layer, x, atol=1e-5)


def test_conv2d_stride_gradients():
    layer = Conv2d(2, 2, 3, RNG, stride=2, pad=1)
    x = RNG.standard_normal((1, 2, 6, 6))
    check_layer_gradients(layer, x, atol=1e-5)


def test_conv2d_output_shape():
    layer = Conv2d(3, 8, 3, RNG)  # same padding
    out = layer.forward(RNG.standard_normal((2, 3, 8, 8)))
    assert out.shape == (2, 8, 8, 8)
    strided = Conv2d(3, 8, 3, RNG, stride=2, pad=1)
    assert strided.forward(RNG.standard_normal((2, 3, 8, 8))).shape == (2, 8, 4, 4)


def test_relu_gradients():
    layer = ReLU()
    x = RNG.standard_normal((4, 6)) + 0.1  # keep away from the kink
    check_layer_gradients(layer, x, check_params=False)


def test_maxpool_forward():
    layer = MaxPool2d(2)
    x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
    out = layer.forward(x)
    assert out.shape == (1, 1, 2, 2)
    assert out.ravel().tolist() == [5.0, 7.0, 13.0, 15.0]


def test_maxpool_gradients():
    layer = MaxPool2d(2)
    x = RNG.standard_normal((2, 3, 4, 4))
    check_layer_gradients(layer, x, check_params=False)


def test_maxpool_rejects_indivisible():
    with pytest.raises(ValueError):
        MaxPool2d(2).forward(np.zeros((1, 1, 5, 4)))


def test_flatten_roundtrip():
    layer = Flatten()
    x = RNG.standard_normal((2, 3, 4, 4))
    out = layer.forward(x)
    assert out.shape == (2, 48)
    assert layer.backward(out).shape == x.shape


def test_batchnorm_normalizes():
    layer = BatchNorm(3)
    x = RNG.standard_normal((16, 3, 4, 4)) * 5 + 2
    out = layer.forward(x, train=True)
    assert abs(out.mean()) < 1e-7
    assert out.std() == pytest.approx(1.0, abs=0.05)


def test_batchnorm_gradients():
    layer = BatchNorm(2)
    x = RNG.standard_normal((4, 2, 3, 3))
    check_layer_gradients(layer, x, atol=1e-5)


def test_batchnorm_eval_uses_running_stats():
    layer = BatchNorm(2, momentum=0.0)  # running stats = last batch
    x = RNG.standard_normal((32, 2)) * 3 + 1
    layer.forward(x, train=True)
    y = layer.forward(np.zeros((4, 2)), train=False)
    expected = (0 - layer.running_mean) / np.sqrt(layer.running_var + layer.eps)
    np.testing.assert_allclose(y[0], expected, rtol=1e-6)


def test_softmax_cross_entropy_gradcheck():
    logits = RNG.standard_normal((5, 4))
    labels = np.array([0, 1, 2, 3, 1])

    loss, grad = softmax_cross_entropy(logits, labels)

    def f():
        return softmax_cross_entropy(logits, labels)[0]

    np.testing.assert_allclose(grad, numerical_grad(f, logits), atol=1e-7)
    assert loss > 0


def test_softmax_cross_entropy_validation():
    with pytest.raises(ValueError):
        softmax_cross_entropy(np.zeros((2, 3)), np.array([0]))
    with pytest.raises(ValueError):
        softmax_cross_entropy(np.zeros((2, 3)), np.array([0, 5]))
    with pytest.raises(ValueError):
        softmax_cross_entropy(np.zeros(3), np.array([0]))


def test_backward_requires_forward():
    for layer in (Dense(2, 2, RNG), ReLU(), MaxPool2d(2), BatchNorm(2)):
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2)))
