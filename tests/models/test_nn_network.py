"""Tests for Network plumbing, SGD, and real end-to-end learning."""

import numpy as np
import pytest

from repro.models.nn import (
    Conv2d,
    Dense,
    Flatten,
    MaxPool2d,
    Network,
    ReLU,
    SGD,
)


def make_mlp(rng, n_in=8, n_hidden=16, n_out=3):
    return Network(
        [Dense(n_in, n_hidden, rng), ReLU(), Dense(n_hidden, n_out, rng)]
    )


def make_cnn(rng, n_classes=4):
    return Network(
        [
            Conv2d(1, 8, 3, rng),
            ReLU(),
            MaxPool2d(2),
            Flatten(),
            Dense(8 * 4 * 4, n_classes, rng),
        ]
    )


def blobs_dataset(rng, n=256, n_in=8, n_classes=3):
    """Linearly-separable Gaussian blobs."""
    centers = rng.standard_normal((n_classes, n_in)) * 3.0
    labels = rng.integers(0, n_classes, size=n)
    x = centers[labels] + rng.standard_normal((n, n_in)) * 0.5
    return x, labels


def test_flat_param_roundtrip():
    rng = np.random.default_rng(0)
    net = make_mlp(rng)
    flat = net.get_flat_params()
    assert flat.shape == (net.n_params,)
    net.set_flat_params(flat * 2.0)
    np.testing.assert_allclose(net.get_flat_params(), flat * 2.0)


def test_flat_grad_roundtrip():
    rng = np.random.default_rng(0)
    net = make_mlp(rng)
    g = rng.standard_normal(net.n_params)
    net.set_flat_grads(g)
    np.testing.assert_allclose(net.get_flat_grads(), g)


def test_flat_shape_validation():
    rng = np.random.default_rng(0)
    net = make_mlp(rng)
    with pytest.raises(ValueError):
        net.set_flat_params(np.zeros(3))
    with pytest.raises(ValueError):
        net.set_flat_grads(np.zeros(3))


def test_loss_and_grad_zeroes_first():
    rng = np.random.default_rng(0)
    net = make_mlp(rng)
    x, y = blobs_dataset(rng, n=16)
    _, g1 = net.loss_and_grad(x, y)
    _, g2 = net.loss_and_grad(x, y)
    np.testing.assert_allclose(g1, g2)  # no accumulation across calls


def test_gradient_batch_linearity():
    """grad(full batch) == average of per-half gradients — the invariant
    that makes data-parallel summation correct."""
    rng = np.random.default_rng(1)
    net = make_mlp(rng)
    x, y = blobs_dataset(rng, n=32)
    _, g_full = net.loss_and_grad(x, y)
    _, g_a = net.loss_and_grad(x[:16], y[:16])
    _, g_b = net.loss_and_grad(x[16:], y[16:])
    np.testing.assert_allclose(g_full, 0.5 * (g_a + g_b), rtol=1e-10, atol=1e-12)


def test_sgd_decreases_loss_on_blobs():
    rng = np.random.default_rng(2)
    net = make_mlp(rng)
    x, y = blobs_dataset(rng, n=256)
    opt = SGD(net, lr=0.1, momentum=0.9)
    first_loss, _ = net.loss_and_grad(x, y)
    for _ in range(60):
        _, g = net.loss_and_grad(x, y)
        opt.step(g)
    final_loss, _ = net.loss_and_grad(x, y)
    assert final_loss < first_loss * 0.2
    assert net.accuracy(x, y) > 0.95


def test_cnn_learns_synthetic_images():
    rng = np.random.default_rng(3)
    net = make_cnn(rng, n_classes=2)
    # Class 0: bright top half; class 1: bright bottom half.
    n = 64
    x = rng.standard_normal((n, 1, 8, 8)) * 0.1
    y = rng.integers(0, 2, size=n)
    x[y == 0, :, :4, :] += 1.0
    x[y == 1, :, 4:, :] += 1.0
    opt = SGD(net, lr=0.05, momentum=0.9)
    for _ in range(40):
        _, g = net.loss_and_grad(x, y)
        opt.step(g)
    assert net.accuracy(x, y) > 0.9


def test_sgd_momentum_matches_manual_update():
    rng = np.random.default_rng(4)
    net = make_mlp(rng, n_in=3, n_hidden=4, n_out=2)
    opt = SGD(net, lr=0.1, momentum=0.5, weight_decay=0.01)
    w0 = net.get_flat_params()
    g = np.ones(net.n_params)
    opt.step(g)
    v1 = g + 0.01 * w0
    np.testing.assert_allclose(net.get_flat_params(), w0 - 0.1 * v1)
    w1 = w0 - 0.1 * v1
    opt.step(g)
    v2 = 0.5 * v1 + g + 0.01 * w1
    np.testing.assert_allclose(net.get_flat_params(), w1 - 0.1 * v2)


def test_sgd_state_dict_roundtrip():
    rng = np.random.default_rng(5)
    net = make_mlp(rng)
    opt = SGD(net, lr=0.2, momentum=0.9)
    opt.step(np.ones(net.n_params))
    state = opt.state_dict()
    opt2 = SGD(net, lr=0.1)
    opt2.load_state_dict(state)
    assert opt2.lr == 0.2
    np.testing.assert_allclose(opt2._velocity, opt._velocity)


def test_sgd_validation():
    rng = np.random.default_rng(6)
    net = make_mlp(rng)
    with pytest.raises(ValueError):
        SGD(net, lr=0)
    with pytest.raises(ValueError):
        SGD(net, momentum=1.0)
    with pytest.raises(ValueError):
        SGD(net, weight_decay=-1)
    opt = SGD(net)
    with pytest.raises(ValueError):
        opt.step(np.zeros(3))


def test_network_requires_layers():
    with pytest.raises(ValueError):
        Network([])
