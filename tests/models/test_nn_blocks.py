"""Gradient checks and behaviour tests for composite NN blocks."""

import numpy as np
import pytest

from repro.models.nn import (
    AvgPool2d,
    Conv2d,
    Dropout,
    GlobalAvgPool,
    ReLU,
    Residual,
    SGD,
    Sequential,
    build_tiny_resnet,
)
from tests.models.test_nn_layers import check_layer_gradients

RNG = np.random.default_rng(7)


def test_avgpool_forward_values():
    layer = AvgPool2d(2)
    x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
    out = layer.forward(x)
    assert out.ravel().tolist() == [2.5, 4.5, 10.5, 12.5]


def test_avgpool_gradients():
    layer = AvgPool2d(2)
    x = RNG.standard_normal((2, 3, 4, 4))
    check_layer_gradients(layer, x, check_params=False)


def test_avgpool_validation():
    with pytest.raises(ValueError):
        AvgPool2d(0)
    with pytest.raises(ValueError):
        AvgPool2d(2).forward(np.zeros((1, 1, 5, 4)))


def test_global_avgpool_gradients():
    layer = GlobalAvgPool()
    x = RNG.standard_normal((3, 2, 4, 4))
    check_layer_gradients(layer, x, check_params=False)


def test_global_avgpool_shape():
    out = GlobalAvgPool().forward(np.ones((2, 5, 3, 3)))
    assert out.shape == (2, 5)
    np.testing.assert_allclose(out, 1.0)
    with pytest.raises(ValueError):
        GlobalAvgPool().forward(np.zeros((2, 5)))


def test_dropout_identity_at_eval():
    layer = Dropout(0.5, np.random.default_rng(0))
    x = RNG.standard_normal((4, 6))
    np.testing.assert_array_equal(layer.forward(x, train=False), x)


def test_dropout_scales_kept_units():
    layer = Dropout(0.5, np.random.default_rng(1))
    x = np.ones((500, 4))
    out = layer.forward(x, train=True)
    kept = out[out != 0]
    np.testing.assert_allclose(kept, 2.0)
    # Expectation preserved.
    assert out.mean() == pytest.approx(1.0, abs=0.1)


def test_dropout_backward_uses_same_mask():
    layer = Dropout(0.3, np.random.default_rng(2))
    x = RNG.standard_normal((5, 5))
    out = layer.forward(x, train=True)
    grad = layer.backward(np.ones_like(out))
    np.testing.assert_array_equal((grad != 0), (out != 0))


def test_dropout_validation():
    with pytest.raises(ValueError):
        Dropout(1.0, np.random.default_rng(0))


def test_sequential_matches_manual_stack():
    rng = np.random.default_rng(3)
    conv = Conv2d(2, 3, 3, rng)
    seq = Sequential([conv, ReLU()])
    x = RNG.standard_normal((2, 2, 4, 4))
    manual = ReLU().forward(conv.forward(x))
    np.testing.assert_array_equal(seq.forward(x), manual)
    assert seq.params == conv.params
    with pytest.raises(ValueError):
        Sequential([])


def test_residual_identity_gradients():
    rng = np.random.default_rng(4)
    block = Residual(
        Sequential([Conv2d(2, 2, 3, rng), ReLU(), Conv2d(2, 2, 3, rng)])
    )
    x = RNG.standard_normal((2, 2, 4, 4))
    check_layer_gradients(block, x, atol=1e-5)


def test_residual_projection_gradients():
    rng = np.random.default_rng(5)
    block = Residual(
        Sequential([Conv2d(2, 4, 3, rng, stride=2, pad=1)]),
        shortcut=Conv2d(2, 4, 1, rng, stride=2, pad=0),
    )
    x = RNG.standard_normal((1, 2, 4, 4))
    check_layer_gradients(block, x, atol=1e-5)


def test_residual_shape_mismatch_raises():
    rng = np.random.default_rng(6)
    block = Residual(Sequential([Conv2d(2, 4, 3, rng)]))  # 4ch vs 2ch skip
    with pytest.raises(ValueError, match="shortcut"):
        block.forward(RNG.standard_normal((1, 2, 4, 4)))


def test_tiny_resnet_learns_synthetic_classes():
    rng = np.random.default_rng(8)
    net = build_tiny_resnet(rng, n_classes=2, channels=6)
    n = 48
    x = rng.standard_normal((n, 3, 8, 8)) * 0.1
    y = rng.integers(0, 2, size=n)
    x[y == 0, :, :4, :] += 1.0
    x[y == 1, :, 4:, :] += 1.0
    opt = SGD(net, lr=0.05, momentum=0.9)
    first_loss, _ = net.loss_and_grad(x, y)
    for _ in range(30):
        _, g = net.loss_and_grad(x, y)
        opt.step(g)
    final_loss, _ = net.loss_and_grad(x, y)
    assert final_loss < first_loss
    assert net.accuracy(x, y) > 0.85


def test_tiny_resnet_grad_batch_linearity():
    """The residual network keeps the data-parallel invariant."""
    rng = np.random.default_rng(9)
    net = build_tiny_resnet(rng, n_classes=3, channels=4)
    x = rng.standard_normal((8, 3, 8, 8))
    y = rng.integers(0, 3, size=8)
    _, g_full = net.loss_and_grad(x, y)
    _, g_a = net.loss_and_grad(x[:4], y[:4])
    _, g_b = net.loss_and_grad(x[4:], y[4:])
    np.testing.assert_allclose(g_full, 0.5 * (g_a + g_b), rtol=1e-9, atol=1e-11)
