"""Tests for the event tracer."""

import pytest

from repro.sim import Engine
from repro.sim.trace import Tracer


def test_record_and_query():
    eng = Engine()
    tracer = Tracer(eng)
    tracer.record("gpu0", "fwd", 0.0, 1.0)
    tracer.record("gpu0", "bwd", 1.0, 3.0)
    tracer.record("net", "allreduce", 2.0, 4.0)
    assert tracer.tracks() == ["gpu0", "net"]
    assert tracer.busy_time("gpu0") == pytest.approx(3.0)
    assert tracer.busy_time("net") == pytest.approx(2.0)


def test_utilization_merges_overlaps():
    eng = Engine()
    tracer = Tracer(eng)
    tracer.record("t", "a", 0.0, 2.0)
    tracer.record("t", "b", 1.0, 3.0)  # overlaps a
    assert tracer.utilization("t", horizon=4.0) == pytest.approx(0.75)
    assert tracer.utilization("t", horizon=3.0) == pytest.approx(1.0)


def test_timed_wraps_process():
    eng = Engine()
    tracer = Tracer(eng)

    def work():
        yield eng.timeout(2.0)
        return "done"

    p = eng.process(tracer.timed("worker", "job", work()))
    assert eng.run(p) == "done"
    (span,) = tracer.spans
    assert span.track == "worker"
    assert span.start == 0.0
    assert span.end == pytest.approx(2.0)


def test_span_context_manager():
    eng = Engine()
    tracer = Tracer(eng)
    with tracer.span("cpu", "setup"):
        pass  # no time passes
    assert tracer.spans[0].duration == 0.0


def test_disabled_tracer_records_nothing():
    eng = Engine()
    tracer = Tracer(eng, enabled=False)
    tracer.record("t", "x", 0.0, 1.0)
    assert tracer.spans == []


def test_render_timeline():
    eng = Engine()
    tracer = Tracer(eng)
    tracer.record("gpu", "fwd", 0.0, 0.5)
    tracer.record("net", "ar", 0.5, 1.0)
    text = tracer.render(width=20)
    assert "gpu" in text and "net" in text
    assert "#" in text
    empty = Tracer(eng)
    assert empty.render() == "(no spans recorded)"


def test_validation():
    eng = Engine()
    tracer = Tracer(eng)
    with pytest.raises(ValueError):
        tracer.record("t", "bad", 2.0, 1.0)
