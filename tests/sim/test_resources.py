"""Unit tests for Resource / PriorityResource / Store."""

import pytest

from repro.sim import Engine, PriorityResource, Resource, SimulationError, Store


def test_resource_grants_up_to_capacity():
    eng = Engine()
    res = Resource(eng, capacity=2)
    a = res.request()
    b = res.request()
    c = res.request()
    assert a.triggered and b.triggered
    assert not c.triggered
    assert res.in_use == 2
    assert res.queue_length == 1


def test_resource_release_wakes_fifo():
    eng = Engine()
    res = Resource(eng, capacity=1)
    order = []

    def user(name, hold):
        yield res.request()
        order.append(("start", name, eng.now))
        yield eng.timeout(hold)
        res.release()

    eng.process(user("a", 2.0))
    eng.process(user("b", 1.0))
    eng.process(user("c", 1.0))
    eng.run()
    assert order == [("start", "a", 0.0), ("start", "b", 2.0), ("start", "c", 3.0)]


def test_resource_use_helper_serializes():
    eng = Engine()
    res = Resource(eng, capacity=1)
    done = []

    def worker(name):
        yield from res.use(1.5)
        done.append((name, eng.now))

    eng.process(worker("x"))
    eng.process(worker("y"))
    eng.run()
    assert done == [("x", 1.5), ("y", 3.0)]


def test_release_idle_resource_is_error():
    eng = Engine()
    res = Resource(eng, capacity=1)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_capacity_validation():
    eng = Engine()
    with pytest.raises(ValueError):
        Resource(eng, capacity=0)


def test_priority_resource_orders_waiters():
    eng = Engine()
    res = PriorityResource(eng, capacity=1)
    order = []

    def holder():
        yield res.request()
        yield eng.timeout(1.0)
        res.release()

    def waiter(name, prio, after):
        yield eng.timeout(after)
        yield res.request(priority=prio)
        order.append(name)
        res.release()

    eng.process(holder())
    eng.process(waiter("low", 5, 0.1))
    eng.process(waiter("high", 1, 0.2))
    eng.run()
    assert order == ["high", "low"]


def test_store_fifo_order():
    eng = Engine()
    store = Store(eng)
    got = []

    def producer():
        for i in range(3):
            yield eng.timeout(1.0)
            yield store.put(i)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append((eng.now, item))

    eng.process(producer())
    eng.process(consumer())
    eng.run()
    assert got == [(1.0, 0), (2.0, 1), (3.0, 2)]


def test_store_get_blocks_until_put():
    eng = Engine()
    store = Store(eng)
    ev = store.get()
    assert not ev.triggered
    store.put("x")
    assert ev.triggered and ev.value == "x"


def test_store_capacity_blocks_put():
    eng = Engine()
    store = Store(eng, capacity=1)
    p1 = store.put("a")
    p2 = store.put("b")
    assert p1.triggered and not p2.triggered
    g = store.get()
    assert g.value == "a"
    assert p2.triggered  # freed slot admits the queued put
    assert store.items == ("b",)


def test_store_len_and_items():
    eng = Engine()
    store = Store(eng)
    store.put(1)
    store.put(2)
    assert len(store) == 2
    assert store.items == (1, 2)
