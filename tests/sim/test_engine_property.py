"""Property-based tests for the event engine (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Engine, Resource, Store


@settings(max_examples=50, deadline=None)
@given(delays=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=30))
def test_timeouts_fire_in_sorted_order(delays):
    eng = Engine()
    fired = []
    for i, d in enumerate(delays):

        def proc(i=i, d=d):
            yield eng.timeout(d)
            fired.append((eng.now, i))

        eng.process(proc())
    eng.run()
    times = [t for t, _i in fired]
    assert times == sorted(times)
    # Equal-delay ties break by creation order (determinism).
    assert len(fired) == len(delays)


@settings(max_examples=30, deadline=None)
@given(
    delays=st.lists(st.floats(0.0, 10.0), min_size=1, max_size=20),
    capacity=st.integers(1, 4),
)
def test_resource_never_oversubscribed(delays, capacity):
    eng = Engine()
    res = Resource(eng, capacity=capacity)
    peak = [0]

    def user(d):
        yield res.request()
        peak[0] = max(peak[0], res.in_use)
        assert res.in_use <= capacity
        yield eng.timeout(d)
        res.release()

    for d in delays:
        eng.process(user(d))
    eng.run()
    assert res.in_use == 0
    assert peak[0] <= capacity


@settings(max_examples=30, deadline=None)
@given(items=st.lists(st.integers(), min_size=1, max_size=25))
def test_store_preserves_fifo_order(items):
    eng = Engine()
    store = Store(eng)
    got = []

    def producer():
        for item in items:
            yield store.put(item)
            yield eng.timeout(0.1)

    def consumer():
        for _ in items:
            v = yield store.get()
            got.append(v)

    eng.process(producer())
    eng.process(consumer())
    eng.run()
    assert got == items


@settings(max_examples=20, deadline=None)
@given(
    n_procs=st.integers(1, 10),
    rounds=st.integers(1, 5),
)
def test_run_is_deterministic(n_procs, rounds):
    def simulate():
        eng = Engine()
        trace = []

        def worker(i):
            for r in range(rounds):
                yield eng.timeout(0.5 + (i * 7 % 3) * 0.25)
                trace.append((i, r, eng.now))

        for i in range(n_procs):
            eng.process(worker(i))
        eng.run()
        return trace

    assert simulate() == simulate()
