"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import AllOf, Engine, Interrupt, SimulationError


def test_timeout_advances_clock():
    eng = Engine()
    t = eng.timeout(2.5)
    eng.run(t)
    assert eng.now == pytest.approx(2.5)


def test_timeout_value_passthrough():
    eng = Engine()
    t = eng.timeout(1.0, value="payload")
    assert eng.run(t) == "payload"


def test_negative_timeout_rejected():
    eng = Engine()
    with pytest.raises(ValueError):
        eng.timeout(-1.0)


def test_process_returns_value():
    eng = Engine()

    def proc():
        yield eng.timeout(1.0)
        yield eng.timeout(2.0)
        return "done"

    p = eng.process(proc())
    assert eng.run(p) == "done"
    assert eng.now == pytest.approx(3.0)


def test_process_receives_event_value():
    eng = Engine()
    seen = []

    def proc():
        v = yield eng.timeout(1.0, value=41)
        seen.append(v + 1)

    eng.run(eng.process(proc()))
    assert seen == [42]


def test_processes_interleave_deterministically():
    eng = Engine()
    trace = []

    def worker(name, delay):
        yield eng.timeout(delay)
        trace.append((name, eng.now))

    eng.process(worker("a", 2.0))
    eng.process(worker("b", 1.0))
    eng.process(worker("c", 2.0))
    eng.run()
    assert trace == [("b", 1.0), ("a", 2.0), ("c", 2.0)]


def test_event_succeed_wakes_waiter():
    eng = Engine()
    gate = eng.event()
    results = []

    def waiter():
        v = yield gate
        results.append((eng.now, v))

    def opener():
        yield eng.timeout(5.0)
        gate.succeed("open")

    eng.process(waiter())
    eng.process(opener())
    eng.run()
    assert results == [(5.0, "open")]


def test_event_double_trigger_rejected():
    eng = Engine()
    ev = eng.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_failed_event_raises_in_process():
    eng = Engine()
    gate = eng.event()
    caught = []

    def waiter():
        try:
            yield gate
        except ValueError as exc:
            caught.append(str(exc))

    eng.process(waiter())
    gate.fail(ValueError("boom"))
    eng.run()
    assert caught == ["boom"]


def test_unhandled_process_exception_propagates():
    eng = Engine()

    def bad():
        yield eng.timeout(1.0)
        raise RuntimeError("model bug")

    p = eng.process(bad())
    with pytest.raises(RuntimeError, match="model bug"):
        eng.run(p)


def test_yield_non_event_fails_process():
    eng = Engine()

    def bad():
        yield 42  # type: ignore[misc]

    p = eng.process(bad())
    with pytest.raises(SimulationError):
        eng.run(p)


def test_wait_on_already_processed_event():
    eng = Engine()
    first = eng.timeout(1.0, value="v")
    trace = []

    def late_waiter():
        yield eng.timeout(3.0)
        v = yield first  # already processed at t=1
        trace.append((eng.now, v))

    eng.run(eng.process(late_waiter()))
    assert trace == [(3.0, "v")]


def test_all_of_waits_for_all():
    eng = Engine()

    def proc():
        values = yield eng.all_of([eng.timeout(1.0, "a"), eng.timeout(3.0, "b")])
        return (eng.now, values)

    assert eng.run(eng.process(proc())) == (3.0, ["a", "b"])


def test_all_of_empty_triggers_immediately():
    eng = Engine()
    cond = AllOf(eng, [])
    eng.run(cond)
    assert cond.value == []
    assert eng.now == 0.0


def test_any_of_takes_first():
    eng = Engine()

    def proc():
        v = yield eng.any_of([eng.timeout(5.0, "slow"), eng.timeout(1.0, "fast")])
        return (eng.now, v)

    assert eng.run(eng.process(proc())) == (1.0, "fast")


def test_all_of_propagates_failure():
    eng = Engine()
    gate = eng.event()

    def proc():
        yield eng.all_of([eng.timeout(1.0), gate])

    p = eng.process(proc())
    gate.fail(KeyError("nope"))
    with pytest.raises(KeyError):
        eng.run(p)


def test_run_until_time_stops_clock():
    eng = Engine()
    hits = []

    def ticker():
        while True:
            yield eng.timeout(1.0)
            hits.append(eng.now)

    eng.process(ticker())
    eng.run(until=3.5)
    assert hits == [1.0, 2.0, 3.0]
    assert eng.now == pytest.approx(3.5)


def test_run_until_event_deadlock_detected():
    eng = Engine()
    never = eng.event()
    with pytest.raises(SimulationError, match="deadlock"):
        eng.run(never)


def test_interrupt_delivers_cause():
    eng = Engine()
    log = []

    def sleeper():
        try:
            yield eng.timeout(100.0)
        except Interrupt as intr:
            log.append((eng.now, intr.cause))

    def killer(target):
        yield eng.timeout(2.0)
        target.interrupt("wake up")

    p = eng.process(sleeper())
    eng.process(killer(p))
    eng.run()
    assert log == [(2.0, "wake up")]


def test_interrupt_finished_process_rejected():
    eng = Engine()

    def quick():
        yield eng.timeout(0.1)

    p = eng.process(quick())
    eng.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_nested_process_wait():
    eng = Engine()

    def inner():
        yield eng.timeout(2.0)
        return "inner-result"

    def outer():
        v = yield eng.process(inner())
        return f"outer({v})"

    assert eng.run(eng.process(outer())) == "outer(inner-result)"
    assert eng.now == pytest.approx(2.0)


def test_peek_reports_next_event_time():
    eng = Engine()
    assert eng.peek() == float("inf")
    eng.timeout(4.0)
    eng.timeout(2.0)
    assert eng.peek() == pytest.approx(2.0)
