"""Failure-path semantics of the event engine.

These are the primitives the fault injector (:mod:`repro.train.injection`)
relies on: ``Event.fail`` propagation through ``AllOf``/``AnyOf``
composites, ``Interrupt`` delivery into a suspended process, and defused
failures that the engine must not crash on.
"""

import pytest

from repro.sim import AllOf, AnyOf, Engine, Interrupt, SimulationError


class Boom(RuntimeError):
    pass


# -- Event.fail propagation through AllOf ------------------------------------

def test_all_of_fails_when_any_child_fails():
    eng = Engine()
    ok, bad = eng.event(), eng.event()
    combo = AllOf(eng, [ok, bad])
    ok.succeed("fine")
    bad.fail(Boom("child died"))
    with pytest.raises(Boom, match="child died"):
        eng.run(combo)


def test_all_of_over_already_processed_failure_fails():
    """A composite built over an event that already failed (and was
    handled) must itself fail immediately — stale failures propagate."""
    eng = Engine()
    bad = eng.event()

    def catcher():
        try:
            yield bad
        except Boom:
            pass
        return "ok"

    proc = eng.process(catcher())
    bad.fail(Boom("early"))
    assert eng.run(proc) == "ok"
    combo = AllOf(eng, [bad])
    with pytest.raises(Boom, match="early"):
        eng.run(combo)


def test_all_of_failure_reaches_waiting_process():
    eng = Engine()
    children = [eng.event(), eng.event()]
    caught = []

    def waiter():
        try:
            yield AllOf(eng, children)
        except Boom as exc:
            caught.append(str(exc))
        return "recovered"

    proc = eng.process(waiter())
    children[1].fail(Boom("rank 1 lost"))
    assert eng.run(proc) == "recovered"
    assert caught == ["rank 1 lost"]


# -- Event.fail propagation through AnyOf ------------------------------------

def test_any_of_fails_if_first_triggered_child_failed():
    eng = Engine()
    a, b = eng.event(), eng.event()
    combo = AnyOf(eng, [a, b])
    a.fail(Boom("first to trigger"))
    with pytest.raises(Boom, match="first to trigger"):
        eng.run(combo)


def test_any_of_success_defuses_late_failure():
    """A failure arriving after AnyOf already triggered must be defused —
    the winner decides, the loser's failure must not crash the engine."""
    eng = Engine()
    winner = eng.timeout(1.0, value="won")
    loser = eng.event()

    def late_failure():
        yield eng.timeout(2.0)
        loser.fail(Boom("too late to matter"))

    combo = AnyOf(eng, [winner, loser])
    eng.process(late_failure())
    assert eng.run(combo) == "won"
    eng.run()  # drain: the defused failure must not raise
    assert loser.triggered and not loser.ok


def test_any_of_timeout_vs_completion_race_is_deterministic():
    """The watchdog pattern the trainer uses: AnyOf([work, deadline])."""
    eng = Engine()

    def work():
        yield eng.timeout(5.0)
        return "done"

    proc = eng.process(work())
    deadline = eng.timeout(2.0, value="timeout")
    eng.run(AnyOf(eng, [proc, deadline]))
    assert not proc.processed  # watchdog fired first; work still pending
    assert eng.now == pytest.approx(2.0)


# -- Interrupt delivery into a suspended process ------------------------------

def test_interrupt_suspended_process_receives_cause_object():
    eng = Engine()
    seen = []

    def victim():
        try:
            yield eng.timeout(100.0)
        except Interrupt as exc:
            seen.append(exc.cause)
        return "bailed"

    proc = eng.process(victim())

    def killer():
        yield eng.timeout(1.0)
        proc.interrupt({"reason": "fail-stop", "rank": 3})

    eng.process(killer())
    assert eng.run(proc) == "bailed"
    assert seen == [{"reason": "fail-stop", "rank": 3}]
    assert eng.now == pytest.approx(1.0)  # did not wait out the 100s


def test_interrupt_detaches_from_waited_event():
    """After an interrupt, the originally awaited event firing later must
    not resume (or double-trigger) the process."""
    eng = Engine()
    slow = eng.event()

    def victim():
        try:
            yield slow
        except Interrupt:
            return "interrupted"
        return "normal"

    proc = eng.process(victim())

    def driver():
        yield eng.timeout(1.0)
        proc.interrupt()
        yield eng.timeout(1.0)
        slow.succeed("orphaned")

    eng.process(driver())
    assert eng.run(proc) == "interrupted"
    eng.run()  # the orphaned event fires with no waiter: must be harmless
    assert slow.ok


def test_uncaught_interrupt_fails_the_process():
    eng = Engine()

    def victim():
        yield eng.timeout(100.0)

    proc = eng.process(victim())

    def killer():
        yield eng.timeout(1.0)
        proc.interrupt("cause")

    eng.process(killer())
    with pytest.raises(Interrupt):
        eng.run(proc)
    assert not proc.is_alive


def test_interrupt_propagates_through_all_of_like_a_failure():
    """The elastic-recovery path: one rank interrupted mid-collective
    fails the AllOf guarding the whole collective."""
    eng = Engine()

    def rank(duration):
        yield eng.timeout(duration)
        return "ok"

    procs = [eng.process(rank(5.0), name=f"r{i}") for i in range(3)]

    def injector():
        yield eng.timeout(1.0)
        procs[1].interrupt("rank 1 fail-stop")

    eng.process(injector())
    combo = eng.all_of(procs)
    with pytest.raises(Interrupt) as exc_info:
        eng.run(combo)
    assert exc_info.value.cause == "rank 1 fail-stop"


# -- Defused-failure behaviour ------------------------------------------------

def test_defused_failure_does_not_crash_the_engine():
    eng = Engine()
    ev = eng.event()
    ev.fail(Boom("handled elsewhere"))
    ev.defuse()
    eng.run()  # processing the failed-but-defused event must not raise
    assert ev.triggered and not ev.ok


def test_undefused_failure_crashes_the_engine():
    eng = Engine()
    ev = eng.event()
    ev.fail(Boom("nobody handled me"))
    with pytest.raises(Boom, match="nobody handled me"):
        eng.run()


def test_process_catching_failure_auto_defuses():
    """A process that catches a yielded event's failure defuses it: the
    engine keeps running and the process continues."""
    eng = Engine()
    bad = eng.event()

    def tolerant():
        try:
            yield bad
        except Boom:
            pass
        yield eng.timeout(1.0)
        return "survived"

    proc = eng.process(tolerant())
    bad.fail(Boom("transient"))
    assert eng.run(proc) == "survived"
    assert eng.now == pytest.approx(1.0)


def test_interrupt_finished_process_is_a_structural_error():
    eng = Engine()

    def quick():
        yield eng.timeout(0.1)

    proc = eng.process(quick())
    eng.run(proc)
    with pytest.raises(SimulationError):
        proc.interrupt()
