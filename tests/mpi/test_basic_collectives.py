"""Direct tests for bcast / reduce / barrier / allgatherv / alltoallv."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import ArrayBuffer, SizeBuffer, build_world, run_rank_programs
from repro.mpi.collectives import (
    alltoallv,
    binomial_bcast,
    binomial_reduce,
    dissemination_barrier,
    ring_allgatherv,
)


def world(n, topology="star"):
    return build_world(n, topology=topology)


def test_bcast_delivers_root_payload():
    eng, w, comm = world(6)
    data = np.arange(8, dtype=float)
    bufs = [
        ArrayBuffer(data.copy() if r == 2 else np.zeros(8)) for r in range(6)
    ]
    run_rank_programs(
        comm, binomial_bcast, per_rank_args=[(b,) for b in bufs], root=2
    )
    for b in bufs:
        np.testing.assert_array_equal(b.array, data)


@pytest.mark.parametrize("root", [0, 3, 6])
def test_reduce_sums_to_root(root):
    n = 7
    eng, w, comm = world(n)
    rng = np.random.default_rng(4)
    arrays = [rng.standard_normal(16) for _ in range(n)]
    bufs = [ArrayBuffer(a.copy()) for a in arrays]
    run_rank_programs(
        comm, binomial_reduce, per_rank_args=[(b,) for b in bufs], root=root
    )
    np.testing.assert_allclose(
        bufs[root].array, np.sum(arrays, axis=0), rtol=1e-12
    )


def test_barrier_synchronizes_staggered_ranks():
    """No rank may pass the barrier before the slowest rank arrives."""
    eng, w, comm = world(5)
    exit_times = {}

    def program(comm, rank):
        yield comm.engine.timeout(rank * 1.0)  # staggered arrivals
        yield from dissemination_barrier(comm, rank, tag="t")
        exit_times[rank] = comm.engine.now

    run_rank_programs(comm, program)
    slowest_arrival = 4.0
    assert all(t >= slowest_arrival for t in exit_times.values())


def test_allgatherv_variable_sizes():
    n = 4
    eng, w, comm = world(n)
    contributions = [np.full(r + 1, float(r)) for r in range(n)]
    bufs = [ArrayBuffer(c.copy()) for c in contributions]
    out = run_rank_programs(
        comm, ring_allgatherv, per_rank_args=[(b,) for b in bufs]
    )
    for gathered in out.results:
        assert len(gathered) == n
        for src, payload in enumerate(gathered):
            np.testing.assert_array_equal(payload, contributions[src])


def test_allgatherv_size_only_mode():
    n = 3
    eng, w, comm = world(n)
    bufs = [SizeBuffer(10 * (r + 1), 4) for r in range(n)]
    out = run_rank_programs(
        comm, ring_allgatherv, per_rank_args=[(b,) for b in bufs]
    )
    assert all(len(g) == n for g in out.results)


def test_alltoallv_exchanges_blocks():
    n = 4
    eng, w, comm = world(n)
    send = [
        [ArrayBuffer(np.array([float(10 * src + dst)])) for dst in range(n)]
        for src in range(n)
    ]
    out = run_rank_programs(
        comm, alltoallv, per_rank_args=[(send[r],) for r in range(n)]
    )
    for dst, received in enumerate(out.results):
        for src in range(n):
            np.testing.assert_array_equal(
                received[src], np.array([float(10 * src + dst)])
            )


def test_alltoallv_wrong_buffer_count_rejected():
    eng, w, comm = world(3)
    bad = [[ArrayBuffer(np.zeros(1))] * 2] * 3  # 2 buffers for 3 ranks

    with pytest.raises(ValueError, match="expected 3"):
        run_rank_programs(comm, alltoallv, per_rank_args=[(b,) for b in bad])


@settings(max_examples=10, deadline=None)
@given(
    n=st.sampled_from([2, 3, 5]),
    sizes_seed=st.integers(0, 100),
)
def test_alltoallv_property_variable_sizes(n, sizes_seed):
    """Random per-pair block sizes: every block arrives intact."""
    rng = np.random.default_rng(sizes_seed)
    eng, w, comm = build_world(n, topology="star")
    send_data = [
        [rng.standard_normal(int(rng.integers(0, 6))) for _dst in range(n)]
        for _src in range(n)
    ]
    send = [[ArrayBuffer(a.copy()) for a in row] for row in send_data]
    out = run_rank_programs(
        comm, alltoallv, per_rank_args=[(send[r],) for r in range(n)]
    )
    for dst, received in enumerate(out.results):
        for src in range(n):
            got = received[src]
            expected = send_data[src][dst]
            if len(expected) == 0:
                assert got is None or len(got) == 0
            else:
                np.testing.assert_array_equal(got, expected)
    w.assert_quiescent()
