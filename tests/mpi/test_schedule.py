"""Tests for the collective schedule IR, its lint and the executor."""

import numpy as np
import pytest

from repro.mpi.collectives import ALLREDUCE_COMPILERS
from repro.mpi.datatypes import ArrayBuffer, SizeBuffer
from repro.mpi.runner import build_world, run_rank_programs
from repro.mpi.schedule import (
    CollectiveTimeout,
    ScheduleBuilder,
    ScheduleError,
    ScheduleExecutor,
    SendStep,
    execute_rank,
    format_schedule,
    memoize_compiler,
    run_guarded,
    validate_schedule,
)

# -- builder ------------------------------------------------------------------


def test_builder_emits_dense_sids_and_normalized_deps():
    b = ScheduleBuilder(2, name="toy", count=4, itemsize=4)
    s0 = b.send(1, 0, "k", 0, 4)
    s1 = b.send(1, 0, "k2", 0, 4, deps=s0)
    r0 = b.recv_reduce(0, 1, "k", 0, 4, deps=[None, None])
    r1 = b.recv_reduce(0, 1, "k2", 0, 4, deps=[r0, r0, None])
    sched = b.build(validate=True)
    assert [s.sid for s in sched.steps] == [0, 1, 2, 3]
    assert sched.steps[s1].deps == (s0,)
    assert sched.steps[r0].deps == ()
    assert sched.steps[r1].deps == (r0,)
    assert sched.rank_steps(0) == [sched.steps[2], sched.steps[3]]
    assert sched.step_counts() == {"SendStep": 2, "RecvReduceStep": 2}


def test_builder_rejects_cross_rank_dep():
    b = ScheduleBuilder(2)
    s0 = b.send(0, 1, "k")
    with pytest.raises(ScheduleError, match="crosses ranks"):
        b.recv_reduce(1, 0, "k", 0, 1, deps=s0)


def test_builder_rejects_forward_dep_and_bad_rank():
    b = ScheduleBuilder(2)
    with pytest.raises(ScheduleError, match="not yet emitted"):
        b.send(0, 1, "k", deps=0)
    with pytest.raises(ScheduleError, match="out of range"):
        b.send(2, 0, "k")


# -- lint ---------------------------------------------------------------------


def test_validate_reports_summary():
    b = ScheduleBuilder(2, count=8)
    b.send(0, 1, "x", 0, 8)
    b.recv_reduce(1, 0, "x", 0, 8)
    report = validate_schedule(b.build())
    assert report["n_steps"] == 2
    assert report["n_messages"] == 1
    assert report["sends_per_rank"] == [1, 0]
    assert report["recvs_per_rank"] == [0, 1]


def test_validate_catches_orphan_receive():
    b = ScheduleBuilder(2)
    b.recv_reduce(1, 0, "missing", 0, 1)
    with pytest.raises(ScheduleError, match="no send posts it"):
        validate_schedule(b.build())


def test_validate_catches_unmatched_send():
    b = ScheduleBuilder(2)
    b.send(0, 1, "x", 0, 1)
    b.send(0, 1, "x", 0, 1)
    b.recv_reduce(1, 0, "x", 0, 1)
    with pytest.raises(ScheduleError, match="matching receive"):
        validate_schedule(b.build())


def test_validate_catches_element_count_mismatch():
    b = ScheduleBuilder(2)
    b.send(0, 1, "x", 0, 4)
    b.recv_reduce(1, 0, "x", 0, 2)
    with pytest.raises(ScheduleError, match="count mismatch"):
        validate_schedule(b.build())


def test_validate_catches_cross_rank_message_cycle():
    # Each rank receives before it sends: a deadlock under rendezvous
    # semantics and a cycle in the happens-before graph.
    b = ScheduleBuilder(2)
    r0 = b.recv_reduce(0, 1, "b", 0, 1)
    b.send(0, 1, "a", 0, 1, deps=r0)
    r1 = b.recv_reduce(1, 0, "a", 0, 1)
    b.send(1, 0, "b", 0, 1, deps=r1)
    with pytest.raises(ScheduleError, match="cycle"):
        validate_schedule(b.build())


def test_validate_catches_range_beyond_count():
    b = ScheduleBuilder(2, count=4)
    b.send(0, 1, "x", 0, 8)
    b.recv_reduce(1, 0, "x", 0, 8)
    with pytest.raises(ScheduleError, match="exceeds count"):
        validate_schedule(b.build())


def test_validate_rejects_self_send_and_self_receive():
    # A rank messaging itself never matches — the executor's send and
    # receive strands would silently deadlock waiting on each other.
    b = ScheduleBuilder(2, count=4)
    b.send(0, 0, "loop", 0, 4)
    b.recv_reduce(0, 0, "loop", 0, 4)
    with pytest.raises(ScheduleError, match="rank 0 sends to itself"):
        validate_schedule(b.build())

    b = ScheduleBuilder(2, count=4)
    b.copy(1, 1, "loop", 0, 4)
    with pytest.raises(ScheduleError, match="rank 1 receives from itself"):
        validate_schedule(b.build())


def test_build_validate_names_the_failing_schedule():
    b = ScheduleBuilder(2, name="broken_compiler(n=2)", count=4)
    b.send(0, 1, "x", 0, 4)  # unmatched: lint must fail
    with pytest.raises(ScheduleError, match="broken_compiler"):
        b.build(validate=True)
    # build() without validation stays permissive (compilers lint later).
    assert b.build().n_steps == 1


def test_format_schedule_renders_and_truncates():
    sched = ALLREDUCE_COMPILERS["ring"](4, 1024, 4, segment_bytes=1024)
    text = format_schedule(sched)
    assert "rank 0:" in text and "send" in text and "recv" in text
    short = format_schedule(sched, max_steps=3)
    assert "more steps" in short and len(short) < len(text)


def test_format_schedule_step_kinds_and_token_rendering():
    b = ScheduleBuilder(2, name="kinds", count=8, itemsize=4)
    b.send(0, 1, "tok")                      # zero-byte token send
    b.recv(1, 0, "tok")                      # buf=None synchronization
    b.send(0, 1, "k", 0, 4, note="payload")
    b.recv_reduce(1, 0, "k", 0, 4)
    b.reduce_local(1, 4, 8, 0, 4, src_buf="data")
    text = format_schedule(b.build(validate=True))
    assert "(token)" in text                 # buf=None renders as a token
    assert "recv+copy" in text and "recv+reduce" in text
    assert "reduce-local data[0:4) -> data[4:8)" in text
    assert "# payload" in text               # notes survive formatting
    header = text.splitlines()[0]
    assert "'kinds'" in header and "2 ranks" in header


def test_format_schedule_truncation_counts_remaining_steps():
    b = ScheduleBuilder(2, name="trunc", count=4, itemsize=4)
    for i in range(5):
        b.send(0, 1, f"k{i}", 0, 4)
        b.recv_reduce(1, 0, f"k{i}", 0, 4)
    text = format_schedule(b.build(validate=True), max_steps=4)
    assert "... (6 more steps)" in text
    # Truncation must not lose the per-rank headers seen so far.
    assert "rank 0: 5 steps" in text


def test_every_registered_compiler_passes_the_lint():
    # The schedule lint run over the whole registry — every algorithm, a
    # spread of rank counts (incl. non-powers-of-two) and payload sizes.
    for name, compiler in sorted(ALLREDUCE_COMPILERS.items()):
        for n_ranks in (1, 2, 3, 6, 16):
            for count in (1, 1000):
                sched = compiler(n_ranks, count, 4)
                report = validate_schedule(sched)
                assert report["n_steps"] == sched.n_steps, (name, n_ranks, count)


# -- execution ----------------------------------------------------------------


def _reduce_to_root_schedule():
    b = ScheduleBuilder(2, name="pair", count=4, itemsize=8)
    b.send(1, 0, "g", 0, 4)
    b.recv_reduce(0, 1, "g", 0, 4)
    return b.build(validate=True)


def test_executor_reduces_real_arrays():
    sched = _reduce_to_root_schedule()
    bufs = [ArrayBuffer(np.arange(4, dtype=np.int64)),
            ArrayBuffer(10 * np.ones(4, dtype=np.int64))]
    engine, world, comm = build_world(2, topology="star")
    executor = ScheduleExecutor(comm, sched, bufs)
    elapsed = executor.run()
    assert elapsed > 0
    np.testing.assert_array_equal(bufs[0].array, np.arange(4) + 10)
    assert executor.stats.n_messages == 1
    assert executor.stats.per_rank_sent == {0: 0.0, 1: 32.0}
    assert executor.stats.reduced_bytes == 32.0


def test_executor_rejects_mismatched_worlds_and_buffers():
    sched = _reduce_to_root_schedule()
    engine, world, comm = build_world(3, topology="star")
    with pytest.raises(ScheduleError, match="ranks"):
        ScheduleExecutor(comm, sched, [None, None, None])
    engine, world, comm = build_world(2, topology="star")
    with pytest.raises(ScheduleError, match="rank buffers"):
        ScheduleExecutor(comm, sched, [None])
    with pytest.raises(ScheduleError, match="compiled for"):
        ScheduleExecutor(comm, sched, [SizeBuffer(9, 8), SizeBuffer(9, 8)])


def test_executor_launch_is_single_shot():
    sched = _reduce_to_root_schedule()
    engine, world, comm = build_world(2, topology="star")
    executor = ScheduleExecutor(
        comm, sched, [SizeBuffer(4, 8), SizeBuffer(4, 8)]
    )
    executor.run()
    with pytest.raises(ScheduleError, match="already launched"):
        executor.launch()


def test_execute_rank_legacy_adapter():
    # The generator adapter drives one rank's slice of a schedule under the
    # old rank-program protocol.
    sched = _reduce_to_root_schedule()
    engine, world, comm = build_world(2, topology="star")
    bufs = [ArrayBuffer(np.full(4, 2, dtype=np.int64)),
            ArrayBuffer(np.full(4, 3, dtype=np.int64))]

    def program(comm, rank):
        yield from execute_rank(comm, rank, sched, bufs[rank], tag="legacy")

    run_rank_programs(comm, program)
    np.testing.assert_array_equal(bufs[0].array, np.full(4, 5))


def test_concurrent_executors_share_one_world():
    # Two executors with different tags on the same world must not steal
    # each other's messages or stats.
    sched = _reduce_to_root_schedule()
    engine, world, comm = build_world(2, topology="star")
    bufs_a = [ArrayBuffer(np.ones(4, dtype=np.int64)) for _ in range(2)]
    bufs_b = [ArrayBuffer(np.full(4, 7, dtype=np.int64)) for _ in range(2)]
    ex_a = ScheduleExecutor(comm, sched, bufs_a, tag=("bkt", 0))
    ex_b = ScheduleExecutor(comm, sched, bufs_b, tag=("bkt", 1))
    done = engine.all_of([ex_a.launch(), ex_b.launch()])
    engine.run(done)
    np.testing.assert_array_equal(bufs_a[0].array, np.full(4, 2))
    np.testing.assert_array_equal(bufs_b[0].array, np.full(4, 14))
    assert ex_a.stats.n_messages == 1
    assert ex_b.stats.n_messages == 1


# -- cross-algorithm equivalence ----------------------------------------------


@pytest.mark.parametrize("n_ranks", [2, 4, 6, 16])
@pytest.mark.parametrize("name", sorted(ALLREDUCE_COMPILERS))
def test_all_algorithms_bit_identical(name, n_ranks):
    # Integer payloads make every reduction order give the same bits, so
    # all eight compilers must agree exactly — including a non-power-of-two
    # rank count and a count that does not divide evenly.
    compiler = ALLREDUCE_COMPILERS[name]
    count = 1003  # prime-ish: ragged chunking everywhere
    rng = np.random.default_rng(n_ranks)
    arrays = [
        rng.integers(-(2**40), 2**40, size=count).astype(np.int64)
        for _ in range(n_ranks)
    ]
    want = np.sum(arrays, axis=0)
    sched = compiler(n_ranks, count, 8)
    validate_schedule(sched)
    bufs = [ArrayBuffer(a.copy()) for a in arrays]
    engine, world, comm = build_world(n_ranks, topology="star")
    ScheduleExecutor(comm, sched, bufs).run()
    for rank, buf in enumerate(bufs):
        np.testing.assert_array_equal(buf.array, want, err_msg=f"{name} rank {rank}")


# -- guarded execution --------------------------------------------------------


def test_run_guarded_success_and_telemetry():
    compiler = ALLREDUCE_COMPILERS["ring"]
    make = lambda: [ArrayBuffer(np.full(8, r + 1, dtype=np.int64)) for r in range(4)]
    buffers, telemetry = run_guarded(compiler, make, timeout=10.0)
    np.testing.assert_array_equal(buffers[0].array, np.full(8, 10))
    assert telemetry.sim_time > 0
    assert telemetry.retries == 0 and telemetry.backoff == 0.0


def test_run_guarded_single_rank_shortcut():
    make = lambda: [ArrayBuffer(np.ones(4, dtype=np.int64))]
    buffers, telemetry = run_guarded(
        ALLREDUCE_COMPILERS["ring"], make, timeout=1.0
    )
    np.testing.assert_array_equal(buffers[0].array, np.ones(4))
    assert telemetry.sim_time == 0.0


def test_run_guarded_times_out_with_backoff():
    # A schedule whose receive never gets its message: the watchdog must
    # retry max_retries times with doubling backoff, then raise.
    def stuck_compiler(n, count, itemsize):
        b = ScheduleBuilder(n, name="stuck", count=count, itemsize=itemsize)
        b.recv_reduce(0, 1, "never", 0, count)
        return b.build()

    make = lambda: [SizeBuffer(4, 4), SizeBuffer(4, 4)]
    with pytest.raises(CollectiveTimeout) as exc:
        run_guarded(
            stuck_compiler, make, timeout=0.5, max_retries=2, retry_backoff=0.25
        )
    assert exc.value.attempts == 3
    telemetry = exc.value  # message carries the attempt count
    assert "timed out" in str(telemetry)


def test_run_guarded_accounts_partial_attempts_in_place():
    from repro.mpi.schedule import CollectiveTelemetry

    def stuck_compiler(n, count, itemsize):
        b = ScheduleBuilder(n, name="stuck", count=count, itemsize=itemsize)
        b.recv_reduce(0, 1, "never", 0, count)
        return b.build()

    telemetry = CollectiveTelemetry()
    with pytest.raises(CollectiveTimeout):
        run_guarded(
            lambda n, c, i: stuck_compiler(n, c, i),
            lambda: [SizeBuffer(4, 4), SizeBuffer(4, 4)],
            timeout=0.5, max_retries=1, retry_backoff=0.25,
            telemetry=telemetry,
        )
    assert telemetry.retries == 2
    assert telemetry.backoff == pytest.approx(0.25)
    assert telemetry.sim_time >= 1.0  # two 0.5s watchdog windows


# -- compiler cache -----------------------------------------------------------


def test_memoize_compiler_caches_by_value():
    calls = []

    @memoize_compiler
    def compiler(n, count, itemsize, *, flavor="x"):
        calls.append((n, count, itemsize, flavor))
        b = ScheduleBuilder(n, count=count, itemsize=itemsize)
        return b.build()

    a = compiler(2, 10, 4)
    b = compiler(2, 10, 4)
    c = compiler(2, 10, 4, flavor="y")
    assert a is b and a is not c
    assert len(calls) == 2


def test_memoize_compiler_bypasses_unhashable_args():
    @memoize_compiler
    def compiler(n, count, itemsize, *, trees=None):
        b = ScheduleBuilder(n, count=count, itemsize=itemsize)
        return b.build()

    a = compiler(2, 10, 4, trees=[1, 2])
    b = compiler(2, 10, 4, trees=[1, 2])
    assert a is not b  # unhashable kwargs skip the cache


# -- strand fusion ------------------------------------------------------------


def test_strand_fusion_groups_linear_chains():
    from repro.mpi.schedule import _partition_strands

    b = ScheduleBuilder(1, count=8)
    # Strand A: two chained sends.  Strand B: starts independently; a later
    # step depending on both tails fuses onto the most recent one (B) and
    # waits on A's tail as a cross-strand event.
    a0 = b.send(0, 0, "a0", 0, 1)
    a1 = b.send(0, 0, "a1", 0, 1, deps=a0)
    b0 = b.send(0, 0, "b0", 0, 1)
    j = b.send(0, 0, "j", 0, 1, deps=[a1, b0])
    strands = _partition_strands(b.build().rank_steps(0))
    assert [[s.sid for s, _ in strand] for strand in strands] == [[a0, a1], [b0, j]]
    (_, cross) = strands[1][1]
    assert cross == [a1]


def test_fused_execution_matches_eager_send_semantics():
    # Rank 0's two sends sit on one strand; rank 1 receives them in order.
    b = ScheduleBuilder(2, name="chain", count=2, itemsize=4)
    s0 = b.send(0, 1, "m0", 0, 1)
    b.send(0, 1, "m1", 1, 2, deps=s0)
    r0 = b.recv_reduce(1, 0, "m0", 0, 1)
    b.recv_reduce(1, 0, "m1", 1, 2, deps=r0)
    sched = b.build(validate=True)
    bufs = [ArrayBuffer(np.array([1, 2], dtype=np.int64)),
            ArrayBuffer(np.array([10, 20], dtype=np.int64))]
    engine, world, comm = build_world(2, topology="star")
    ScheduleExecutor(comm, sched, bufs).run()
    np.testing.assert_array_equal(bufs[1].array, [11, 22])


def test_send_step_type_is_exported():
    assert isinstance(
        _reduce_to_root_schedule().steps[0], SendStep
    )


# -- failure attribution and surgical repair ----------------------------------


@pytest.mark.parametrize("name", sorted(ALLREDUCE_COMPILERS))
def test_drop_retry_is_bit_exact(name):
    """A dropped message forces a watchdog retry; the retried attempt must
    start from pristine inputs (snapshot restore), not the half-reduced
    buffers the aborted attempt left behind."""
    from repro.train.injection import FaultInjector, FaultPlan, drop_messages

    rng = np.random.default_rng(7)
    arrays = [
        rng.integers(-(2**31), 2**31, size=24).astype(np.int64)
        for _ in range(4)
    ]
    injector = FaultInjector(FaultPlan([drop_messages(0, rank=1, count=1)]))
    buffers, telemetry = run_guarded(
        ALLREDUCE_COMPILERS[name],
        lambda: [ArrayBuffer(a.copy()) for a in arrays],
        timeout=5.0,
        max_retries=2,
        retry_backoff=0.1,
        fault_injector=injector,
        iteration=0,
    )
    assert telemetry.retries == 1  # the drop fired and cost one attempt
    expected = np.sum(arrays, axis=0)
    for buf in buffers:
        np.testing.assert_array_equal(buf.array, expected)


def test_timeout_diagnosis_names_dropping_sender():
    from repro.train.injection import FaultInjector, FaultPlan, drop_messages

    injector = FaultInjector(
        FaultPlan([drop_messages(0, rank=2, count=1, max_firings=10)])
    )
    make = lambda: [ArrayBuffer(np.full(8, r, dtype=np.int64)) for r in range(4)]
    with pytest.raises(CollectiveTimeout) as exc:
        run_guarded(
            ALLREDUCE_COMPILERS["ring"],
            make,
            timeout=1.0,
            max_retries=1,
            retry_backoff=0.1,
            fault_injector=injector,
        )
    diag = exc.value.diagnosis
    assert diag is not None
    assert diag.cause == "message-loss"
    assert diag.suspect_rank == 2
    assert diag.suspect_step is not None
    msg = str(exc.value)
    assert "timed out" in msg
    assert "suspect rank 2" in msg
    assert "message-loss" in msg


def test_timeout_diagnosis_for_never_posted_send():
    """An orphan receive (its sender never posts) is attributed to the
    silent peer, not the rank that is visibly stuck."""

    def stuck_compiler(n, count, itemsize):
        b = ScheduleBuilder(n, name="stuck", count=count, itemsize=itemsize)
        b.recv_reduce(0, 1, "never", 0, count)
        return b.build()

    with pytest.raises(CollectiveTimeout) as exc:
        run_guarded(
            stuck_compiler,
            lambda: [SizeBuffer(4, 4), SizeBuffer(4, 4)],
            timeout=0.5,
            max_retries=0,
            retry_backoff=0.1,
        )
    diag = exc.value.diagnosis
    assert diag is not None
    assert diag.cause == "silent-rank"
    assert diag.suspect_rank == 1
    assert diag.stalled_ranks == (0,)
    assert diag.stalled[0].kind == "RecvReduceStep"


def test_surgical_repair_continues_with_survivors():
    from repro.train.injection import FaultInjector, FaultPlan, crash

    arrays = [np.full(8, r + 1, dtype=np.int64) for r in range(4)]
    injector = FaultInjector(FaultPlan([crash(1, 0)]))
    buffers, telemetry = run_guarded(
        ALLREDUCE_COMPILERS["multicolor"],
        lambda: [ArrayBuffer(a.copy()) for a in arrays],
        timeout=5.0,
        fault_injector=injector,
        repair=True,
    )
    assert telemetry.repaired_ranks == [1]
    assert telemetry.repairs == 1
    assert telemetry.retries == 0  # repair happens inside the same attempt
    assert len(buffers) == 3
    expected = arrays[0] + arrays[2] + arrays[3]
    for buf in buffers:
        np.testing.assert_array_equal(buf.array, expected)


def test_rank_failure_propagates_without_repair():
    from repro.mpi.schedule import RankFailure
    from repro.train.injection import FaultInjector, FaultPlan, crash

    injector = FaultInjector(FaultPlan([crash(1, 0)]))
    with pytest.raises(RankFailure):
        run_guarded(
            ALLREDUCE_COMPILERS["ring"],
            lambda: [ArrayBuffer(np.ones(8, dtype=np.int64)) for _ in range(4)],
            timeout=5.0,
            fault_injector=injector,
        )


def test_executor_progress_counters_reach_totals():
    sched = ALLREDUCE_COMPILERS["ring"](4, 8, 8)
    bufs = [ArrayBuffer(np.full(8, r, dtype=np.int64)) for r in range(4)]
    engine, world, comm = build_world(4, topology="star")
    executor = ScheduleExecutor(comm, sched, bufs)
    executor.run()
    progress = executor.progress
    for r in range(4):
        assert progress.steps_done[r] == progress.steps_total[r] > 0
    assert progress.in_flight == {}
    assert len(progress.completed) == len(sched.steps)


# -- compute steps in the unified training-step DAG ---------------------------


def _toy_step_schedule():
    """1 rank, staged: bwd copies local->grad, optim writes update."""
    b = ScheduleBuilder(1, name="toy-step", count=4, itemsize=4)
    fwd = b.compute(0, 1e-3, note="fwd")
    bwd = b.compute(0, 2e-3, buf="grad", lo=0, hi=4, src_buf="local",
                    deps=fwd, note="bwd")
    b.optim(0, 5e-4, 0, 4, buf="grad", dst_buf="update", deps=bwd,
            note="optim")
    return b.build(validate=True)


def test_builder_emits_compute_and_optim_steps():
    sched = _toy_step_schedule()
    assert sched.step_counts() == {"ComputeStep": 2, "OptimStep": 1}
    assert sched.steps[1].deps == (0,)
    assert sched.steps[2].deps == (1,)


def test_validate_rejects_negative_compute_duration():
    b = ScheduleBuilder(1, count=4)
    b.compute(0, -1.0)
    with pytest.raises(ScheduleError, match="negative duration"):
        b.build(validate=True)


def test_validate_catches_optim_range_beyond_count():
    b = ScheduleBuilder(1, count=4)
    b.optim(0, 1e-3, 0, 5)
    with pytest.raises(ScheduleError, match="range"):
        b.build(validate=True)


def test_format_schedule_renders_compute_steps():
    text = format_schedule(_toy_step_schedule())
    assert "compute 1.000ms" in text            # pure timing, no buffer
    assert "compute 2.000ms -> grad[0:4) from local" in text
    assert "optim 0.500ms reads grad[0:4) -> update[0:4)" in text
    assert "1 ComputeStep" not in text           # counts are aggregated
    assert "2 ComputeStep, 1 OptimStep" in text


def test_executor_runs_staged_compute_and_optim():
    sched = _toy_step_schedule()
    engine, world, comm = build_world(1, topology="star")
    bufs = [{
        "local": ArrayBuffer(np.arange(4, dtype=np.int64)),
        "grad": ArrayBuffer(np.zeros(4, dtype=np.int64)),
        "update": ArrayBuffer(np.zeros(4, dtype=np.int64)),
    }]
    executor = ScheduleExecutor(comm, sched, bufs)
    elapsed = executor.run()
    np.testing.assert_array_equal(bufs[0]["grad"].array, np.arange(4))
    np.testing.assert_array_equal(bufs[0]["update"].array, np.arange(4))
    # fwd + bwd + optim occupy the single GPU back-to-back.
    assert elapsed == pytest.approx(3.5e-3)
    assert executor.stats.compute_seconds == pytest.approx(3.5e-3)


def test_optim_step_reads_gradient_at_start():
    # The optimizer snapshots its gradient when it STARTS, so a write
    # landing during its GPU occupancy must not leak into dst_buf — the
    # property that makes dropped-gate mutants dynamically wrong.
    b = ScheduleBuilder(2, name="stale-read", count=2, itemsize=8)
    b.optim(0, 1e-3, 0, 2, buf="grad", dst_buf="update")
    b.send(1, 0, "k", 0, 2, buf="grad")
    b.recv_reduce(0, 1, "k", 0, 2, buf="grad", deps=None)
    sched = b.build(validate=False)  # racy by construction
    engine, world, comm = build_world(2, topology="star")
    bufs = [
        {"grad": ArrayBuffer(np.ones(2, dtype=np.int64)),
         "update": ArrayBuffer(np.zeros(2, dtype=np.int64))},
        {"grad": ArrayBuffer(np.full(2, 7, dtype=np.int64)),
         "update": ArrayBuffer(np.zeros(2, dtype=np.int64))},
    ]
    ScheduleExecutor(comm, sched, bufs).run()
    # The reduce landed (grad = 1 + 7) but the optimizer read before it.
    np.testing.assert_array_equal(bufs[0]["grad"].array, [8, 8])
    np.testing.assert_array_equal(bufs[0]["update"].array, [1, 1])


def test_gpu_resource_serializes_same_rank_concurrent_compute():
    b = ScheduleBuilder(2, name="gpu-serial", count=1, itemsize=4)
    b.compute(0, 1e-3)   # two dependency-free compute steps, same rank
    b.compute(0, 1e-3)
    b.compute(1, 1e-3)   # and one on the other rank's own GPU
    sched = b.build(validate=True)
    engine, world, comm = build_world(2, topology="star")
    elapsed = ScheduleExecutor(
        comm, sched, [SizeBuffer(1, 4), SizeBuffer(1, 4)]
    ).run()
    # Rank 0's two steps serialize on its GPU; rank 1 overlaps fully.
    assert elapsed == pytest.approx(2e-3)


def test_strands_never_fuse_across_the_gpu_boundary():
    from repro.mpi.schedule import _partition_strands

    b = ScheduleBuilder(2, name="mixed", count=4, itemsize=4)
    fwd = b.compute(0, 1e-3, note="fwd")
    bwd = b.compute(0, 2e-3, buf="data", lo=0, hi=4, deps=fwd, note="bwd")
    snd = b.send(0, 1, "k", 0, 4, deps=bwd)
    b.optim(0, 5e-4, 0, 4, deps=snd)
    b.recv_reduce(1, 0, "k", 0, 4)
    sched = b.build(validate=True)

    strands = _partition_strands(sched.rank_steps(0))
    shapes = [[type(s).__name__ for s, _cross in strand] for strand in strands]
    # fwd+bwd fuse (both GPU); the send and the optim each start a new
    # strand — dep-chained but across the GPU/network boundary.
    assert shapes == [
        ["ComputeStep", "ComputeStep"], ["SendStep"], ["OptimStep"]
    ]
    # The boundary deps become cross-strand waits, preserving order.
    assert [cross for s, cross in strands[1]] == [[1]]
    assert [cross for s, cross in strands[2]] == [[2]]


def test_comm_only_schedules_partition_exactly_as_before():
    from repro.mpi.schedule import _partition_strands

    sched = ALLREDUCE_COMPILERS["ring"](4, 16, 4, segment_bytes=64)
    for rank in range(4):
        for strand in _partition_strands(sched.rank_steps(rank)):
            assert len(strand) >= 1  # pure-comm strands always fuse
    # One strand per hand-written generator process: reduce + broadcast.
    assert len(_partition_strands(sched.rank_steps(0))) <= 3


def test_diagnose_reports_compute_stall():
    from repro.mpi.schedule import ExecutionProgress, diagnose_execution

    sched = _toy_step_schedule()
    progress = ExecutionProgress(sched)
    progress.begin(sched.steps[0], 0.0)     # fwd ComputeStep, 1 ms budget
    diag = diagnose_execution(sched, progress, now=10.0)
    assert diag.cause == "compute-stall"
    assert diag.suspect_rank == 0
    assert diag.suspect_sid == 0
    assert diag.suspect_kind == "ComputeStep"
