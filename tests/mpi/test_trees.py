"""Unit + property tests for spanning-tree construction."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mpi.collectives.trees import (
    binomial_tree,
    color_trees,
    internal_nodes,
    kary_bfs_tree,
)


def test_kary_bfs_tree_layout():
    tree = kary_bfs_tree(list(range(7)), arity=2)
    assert tree.root == 0
    assert tree.children[0] == (1, 2)
    assert tree.children[1] == (3, 4)
    assert tree.children[2] == (5, 6)
    tree.validate()


def test_kary_bfs_tree_respects_order():
    tree = kary_bfs_tree([5, 3, 1], arity=4)
    assert tree.root == 5
    assert tree.children[5] == (3, 1)
    assert tree.parent[3] == 5


def test_kary_tree_validation_errors():
    with pytest.raises(ValueError):
        kary_bfs_tree([], arity=2)
    with pytest.raises(ValueError):
        kary_bfs_tree([0, 1], arity=0)


def test_figure2_reproduction():
    """Figure 2: 4-color 4-ary trees on 8 nodes.

    'chunk-0 is summed on the tree color-0 rooted at node 0 with node 1 as
    the only non-leaf node.  Similarly, chunk-1 is summed on the tree
    color-1 rooted at node 2 with node 3 as the only non-leaf node.'
    """
    trees = color_trees(8, 4, arity=4)
    assert trees[0].root == 0
    assert internal_nodes(trees[0]) == {0, 1}
    assert trees[1].root == 2
    assert internal_nodes(trees[1]) == {2, 3}
    assert trees[2].root == 4
    assert internal_nodes(trees[2]) == {4, 5}
    assert trees[3].root == 6
    assert internal_nodes(trees[3]) == {6, 7}


def test_color_trees_internal_disjointness_16():
    trees = color_trees(16, 4, arity=4)
    seen: set[int] = set()
    for t in trees:
        inner = internal_nodes(t)
        assert not (inner & seen), "internal nodes must be disjoint across colors"
        seen |= inner


def test_color_trees_span_all_ranks():
    for t in color_trees(12, 4, arity=4):
        t.validate()
        assert set(t.parent) | {t.root} == set(range(12))


def test_color_trees_infeasible_raises():
    # 3-ary trees on 8 ranks have 3 internal nodes; 4 colors need 12 > 8.
    with pytest.raises(ValueError, match="disjoint"):
        color_trees(8, 4, arity=3)


def test_color_trees_divisibility_enforced():
    with pytest.raises(ValueError, match="divisible"):
        color_trees(10, 4, arity=8)


def test_color_trees_single_color():
    (tree,) = color_trees(5, 1, arity=2)
    tree.validate()
    assert tree.root == 0


def test_color_trees_param_validation():
    with pytest.raises(ValueError):
        color_trees(8, 0)
    with pytest.raises(ValueError):
        color_trees(2, 4)


@given(
    n=st.integers(1, 64),
    root=st.integers(0, 63),
)
def test_binomial_tree_properties(n, root):
    root = root % n
    tree = binomial_tree(n, root)
    tree.validate()
    assert tree.root == root
    assert set(tree.parent) | {root} == set(range(n))
    # Binomial depth bound: ceil(log2 n)
    max_depth = max(tree.depth_of(r) for r in range(n))
    assert max_depth <= max(1, n - 1).bit_length()


@given(
    colors=st.sampled_from([1, 2, 4, 8]),
    mult=st.integers(1, 6),
)
def test_color_trees_properties(colors, mult):
    """Whenever construction succeeds: spanning + disjoint internals."""
    n = colors * mult * 2
    arity = max(2, colors)
    try:
        trees = color_trees(n, colors, arity=arity)
    except ValueError:
        return  # infeasible combination, correctly refused
    assert len(trees) == colors
    seen: set[int] = set()
    for t in trees:
        t.validate()
        assert set(t.parent) | {t.root} == set(range(n))
        inner = internal_nodes(t)
        if colors > 1:
            assert not (inner & seen)
        seen |= inner


def test_depth_cycle_detection():
    from repro.mpi.collectives.trees import Tree

    bad = Tree(root=0, parent={1: 2, 2: 1}, children={1: (2,), 2: (1,)})
    with pytest.raises(ValueError):
        bad.depth_of(1)
