"""Correctness tests: every allreduce algorithm vs NumPy ground truth."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import ALLREDUCE_ALGORITHMS, simulate_allreduce

ALGOS = sorted(ALLREDUCE_ALGORITHMS)


def expected_sum(n_ranks, count, dtype="float32", seed=0):
    rng = np.random.default_rng(seed)
    inputs = [rng.standard_normal(count).astype(dtype) for _ in range(n_ranks)]
    return np.sum(inputs, axis=0)


@pytest.mark.parametrize("algorithm", ALGOS)
@pytest.mark.parametrize("n_ranks", [2, 4, 8])
def test_allreduce_matches_numpy(algorithm, n_ranks):
    count = 1000
    nbytes = count * 4
    out = simulate_allreduce(
        n_ranks, nbytes, algorithm=algorithm, payload=True, seed=3
    )
    truth = expected_sum(n_ranks, count, seed=3)
    for buf in out.results:
        np.testing.assert_allclose(buf.array, truth, rtol=1e-4, atol=1e-5)


@pytest.mark.parametrize("algorithm", ALGOS)
def test_allreduce_non_power_of_two(algorithm):
    # 6 ranks exercises the fold prelude of recursive algorithms and the
    # remainder handling of chunked ones.  Multicolor needs divisibility, so
    # use 2 colors for it.
    kwargs = {"n_colors": 2} if algorithm == "multicolor" else {}
    count = 300
    out = simulate_allreduce(
        6, count * 4, algorithm=algorithm, payload=True, seed=11, **kwargs
    )
    truth = expected_sum(6, count, seed=11)
    for buf in out.results:
        np.testing.assert_allclose(buf.array, truth, rtol=1e-4, atol=1e-5)


@pytest.mark.parametrize("algorithm", ALGOS)
def test_allreduce_single_rank_identity(algorithm):
    out = simulate_allreduce(1, 64, algorithm=algorithm, payload=True, seed=5)
    truth = expected_sum(1, 16, seed=5)
    np.testing.assert_allclose(out.results[0].array, truth)


@pytest.mark.parametrize("algorithm", ALGOS)
def test_allreduce_tiny_payload(algorithm):
    """One element: exercises empty chunks in chunked algorithms."""
    out = simulate_allreduce(4, 4, algorithm=algorithm, payload=True, seed=7)
    truth = expected_sum(4, 1, seed=7)
    for buf in out.results:
        np.testing.assert_allclose(buf.array, truth, rtol=1e-4, atol=1e-5)


def test_multicolor_color_count_sweep():
    for n_colors in (1, 2, 4, 8):
        out = simulate_allreduce(
            8, 4096, algorithm="multicolor", payload=True, n_colors=n_colors, seed=2
        )
        truth = expected_sum(8, 1024, seed=2)
        for buf in out.results:
            np.testing.assert_allclose(buf.array, truth, rtol=1e-4, atol=1e-5)


def test_multicolor_small_segments_pipelined():
    out = simulate_allreduce(
        4, 4096, algorithm="multicolor", payload=True, segment_bytes=256, seed=9
    )
    truth = expected_sum(4, 1024, seed=9)
    for buf in out.results:
        np.testing.assert_allclose(buf.array, truth, rtol=1e-4, atol=1e-5)


def test_ring_small_segments_pipelined():
    out = simulate_allreduce(
        5, 4096, algorithm="ring", payload=True, segment_bytes=128, seed=13
    )
    truth = expected_sum(5, 1024, seed=13)
    for buf in out.results:
        np.testing.assert_allclose(buf.array, truth, rtol=1e-4, atol=1e-5)


def test_unknown_algorithm_rejected():
    with pytest.raises(ValueError, match="unknown allreduce"):
        simulate_allreduce(4, 64, algorithm="nope")


def test_unknown_topology_rejected():
    with pytest.raises(ValueError, match="unknown topology"):
        simulate_allreduce(4, 64, topology="donut")


@settings(max_examples=20, deadline=None)
@given(
    n_ranks=st.sampled_from([2, 3, 4, 5, 8]),
    count=st.integers(1, 2000),
    algorithm=st.sampled_from(["ring", "rsag", "recursive_doubling", "rabenseifner"]),
)
def test_allreduce_property_random_shapes(n_ranks, count, algorithm):
    out = simulate_allreduce(
        n_ranks, count * 4, algorithm=algorithm, payload=True, seed=count
    )
    truth = expected_sum(n_ranks, count, seed=count)
    for buf in out.results:
        np.testing.assert_allclose(buf.array, truth, rtol=1e-4, atol=1e-5)


@settings(max_examples=10, deadline=None)
@given(
    mult=st.sampled_from([1, 2, 4]),
    count=st.integers(16, 4000),
)
def test_multicolor_property(mult, count):
    n_ranks = 4 * mult
    out = simulate_allreduce(
        n_ranks,
        count * 4,
        algorithm="multicolor",
        payload=True,
        n_colors=4,
        seed=count,
    )
    truth = expected_sum(n_ranks, count, seed=count)
    for buf in out.results:
        np.testing.assert_allclose(buf.array, truth, rtol=1e-4, atol=1e-5)


def test_size_only_and_payload_timings_match():
    """SizeBuffer runs must produce the same simulated clock as real data."""
    for algorithm in ("multicolor", "ring", "rsag"):
        t_size = simulate_allreduce(4, 64 * 1024, algorithm=algorithm).elapsed
        t_data = simulate_allreduce(
            4, 64 * 1024, algorithm=algorithm, payload=True
        ).elapsed
        assert t_size == pytest.approx(t_data, rel=1e-12)


def test_elapsed_positive_and_bytes_counted():
    out = simulate_allreduce(4, 1024 * 1024, algorithm="ring")
    assert out.elapsed > 0
    assert out.bytes_on_wire > 0
    assert out.throughput(1024 * 1024) > 0
