"""Regression guard: the schedule executor reproduces pre-IR Figure 5 timings.

``benchmarks/data/fig5_goldens.json`` holds the simulated allreduce times
captured from the generator-based collectives immediately before they were
rewritten as schedule compilers.  The strand-fused executor must stay
within 1% of every golden (it is currently bit-exact); the tier-1 suite
checks the small payloads, ``benchmarks/test_fig5_allreduce_throughput.py``
sweeps all 42.
"""

import json
from pathlib import Path

import pytest

from repro.mpi import simulate_allreduce
from repro.utils.units import MB

GOLDENS_PATH = (
    Path(__file__).resolve().parents[2] / "benchmarks" / "data" / "fig5_goldens.json"
)


def golden_elapsed(key: str) -> float:
    """Simulate the golden's configuration and return the elapsed time."""
    algorithm, size = key.split("/")
    mb = float(size[:-2])
    nbytes = int(mb * MB)
    kwargs = {}
    if algorithm in ("multicolor", "ring"):
        kwargs["segment_bytes"] = max(64 * 1024, nbytes // 64)
    return simulate_allreduce(16, nbytes, algorithm=algorithm, **kwargs).elapsed


def golden_keys(max_mb: float) -> list[str]:
    goldens = json.loads(GOLDENS_PATH.read_text())["elapsed_s"]
    return [k for k in goldens if float(k.split("/")[1][:-2]) <= max_mb]


@pytest.mark.parametrize("key", golden_keys(max_mb=4.0))
def test_small_payload_goldens_within_1pct(key):
    want = json.loads(GOLDENS_PATH.read_text())["elapsed_s"][key]
    got = golden_elapsed(key)
    assert got == pytest.approx(want, rel=0.01), key
