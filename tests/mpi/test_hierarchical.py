"""Tests for the hierarchical allreduce extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import ALLREDUCE_ALGORITHMS, simulate_allreduce
from repro.net import CONNECTX5_DUAL, fat_tree


def expected_sum(n_ranks, count, seed):
    rng = np.random.default_rng(seed)
    return np.sum(
        [rng.standard_normal(count).astype("float32") for _ in range(n_ranks)],
        axis=0,
    )


def test_registered():
    assert "hierarchical" in ALLREDUCE_ALGORITHMS


@pytest.mark.parametrize("n_ranks", [2, 4, 8, 16])
def test_hierarchical_matches_numpy(n_ranks):
    out = simulate_allreduce(
        n_ranks, 2048, algorithm="hierarchical", payload=True, seed=5
    )
    truth = expected_sum(n_ranks, 512, 5)
    for buf in out.results:
        np.testing.assert_allclose(buf.array, truth, rtol=1e-4, atol=1e-5)


def test_hierarchical_ragged_groups():
    """Size not divisible by group_size: the last group is smaller."""
    out = simulate_allreduce(
        6, 1024, algorithm="hierarchical", payload=True, seed=9, group_size=4
    )
    truth = expected_sum(6, 256, 9)
    for buf in out.results:
        np.testing.assert_allclose(buf.array, truth, rtol=1e-4, atol=1e-5)


def test_hierarchical_group_size_one_degenerates_to_rsag():
    """group_size=1 means every rank is a leader: plain rsag."""
    t_h = simulate_allreduce(
        8, 1 << 20, algorithm="hierarchical", group_size=1
    ).elapsed
    t_r = simulate_allreduce(8, 1 << 20, algorithm="rsag").elapsed
    assert t_h == pytest.approx(t_r, rel=0.05)


def test_hierarchical_reduces_core_traffic():
    """The 2-D layout's value: fewer bytes cross the leaf-spine core.

    (With contiguous rank placement a flat ring is already near-optimal in
    *time* — the same symmetric-fabric effect behind the paper's Figure 9 —
    but the hierarchical exchange still shrinks core traffic, which is what
    matters when the core is shared or oversubscribed.)
    """
    from repro.mpi.runner import build_world, run_rank_programs
    from repro.mpi import ALLREDUCE_ALGORITHMS, SizeBuffer

    nbytes = 32 << 20
    core_bytes = {}
    times = {}
    for alg, kw in (("hierarchical", {"group_size": 4}), ("rsag", {})):
        topo = fat_tree(16, CONNECTX5_DUAL, hosts_per_leaf=4, oversubscription=4.0)
        engine, world, comm = build_world(16, topology=topo)
        bufs = [SizeBuffer(nbytes // 4, 4) for _ in range(16)]
        run_rank_programs(
            comm, ALLREDUCE_ALGORITHMS[alg],
            per_rank_args=[(b,) for b in bufs], **kw,
        )
        times[alg] = engine.now
        core_bytes[alg] = sum(
            v
            for li, v in world.fabric.stats.link_bytes.items()
            if "spine" in topo.links[li].dst or "spine" in topo.links[li].src
        )
    assert core_bytes["hierarchical"] < core_bytes["rsag"]
    # And it stays time-competitive with the flat ring.
    assert times["hierarchical"] < times["rsag"] * 1.3


def test_validation():
    with pytest.raises(ValueError):
        simulate_allreduce(4, 64, algorithm="hierarchical", group_size=0)


@settings(max_examples=10, deadline=None)
@given(
    n_ranks=st.sampled_from([3, 5, 8, 12]),
    count=st.integers(8, 1500),
    group=st.sampled_from([2, 3, 4]),
)
def test_hierarchical_property(n_ranks, count, group):
    out = simulate_allreduce(
        n_ranks, count * 4, algorithm="hierarchical", payload=True,
        seed=count, group_size=group,
    )
    truth = expected_sum(n_ranks, count, count)
    for buf in out.results:
        np.testing.assert_allclose(buf.array, truth, rtol=1e-4, atol=1e-5)
