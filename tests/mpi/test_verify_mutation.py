"""Mutation self-test: the verifier must kill what the executor miscomputes.

The smoke slice (one compiler per structural family) runs in tier 1;
the full eight-compiler sweep is ``slow``-marked for CI's dedicated
schedule-verify step.
"""

import pytest

from repro.mpi.collectives import ALLREDUCE_COMPILERS, ALLREDUCE_FAMILIES
from repro.mpi.verify import allreduce_contract, verify_schedule
from repro.mpi.verify.mutate import (
    MUTATORS,
    _execute_allreduce,
    run_mutation_suite,
)

SMOKE = sorted(family[0] for family in ALLREDUCE_FAMILIES.values())


def _assert_no_escapes(result):
    escaped = result.by_class("escaped")
    assert result.kill_rate >= 0.95, result.format()
    assert not escaped, result.format()


def test_mutation_smoke_slice_kills_all_harmful_mutants():
    result = run_mutation_suite(
        {name: ALLREDUCE_COMPILERS[name] for name in SMOKE}
    )
    assert result.records, "no mutants generated"
    _assert_no_escapes(result)
    # Every operator fired on at least one algorithm.
    assert {r.operator for r in result.records} == set(MUTATORS)


@pytest.mark.slow
def test_mutation_full_sweep_kills_all_harmful_mutants():
    result = run_mutation_suite(ALLREDUCE_COMPILERS, per_op=3)
    _assert_no_escapes(result)


def test_mutants_are_valid_schedule_objects():
    # Surgery must renumber sids densely and keep deps backward same-rank
    # references; the verifier's lint pass would reject anything else as
    # "lint-error" — the deeper passes, not the lint, should do the work.
    baseline = ALLREDUCE_COMPILERS["rsag"](4, 29, 8)
    lint_only = 0
    total = 0
    for mutate in MUTATORS.values():
        for mutant in mutate(baseline, 2):
            total += 1
            report = verify_schedule(
                mutant.schedule, allreduce_contract(4, 29)
            )
            if report.issues_by_pass("lint"):
                lint_only += 1
    assert total > 0
    assert lint_only == 0, "mutants should survive the structural lint"


def test_dynamic_oracle_judges_the_baseline_correct():
    sched = ALLREDUCE_COMPILERS["ring"](4, 29, 8, segment_bytes=64)
    assert _execute_allreduce(sched, 4, 29) == "correct"
