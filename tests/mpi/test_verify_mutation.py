"""Mutation self-test: the verifier must kill what the executor miscomputes.

The smoke slice (one compiler per structural family) runs in tier 1;
the full eight-compiler sweep is ``slow``-marked for CI's dedicated
schedule-verify step.
"""

import pytest

from repro.mpi.collectives import ALLREDUCE_COMPILERS, ALLREDUCE_FAMILIES
from repro.mpi.verify import allreduce_contract, verify_schedule
from repro.mpi.verify.mutate import (
    MUTATORS,
    _execute_allreduce,
    _execute_train_step,
    run_mutation_suite,
    run_step_mutation_suite,
)

SMOKE = sorted(family[0] for family in ALLREDUCE_FAMILIES.values())

#: Operators that need ComputeStep/OptimStep sites — they cannot fire on
#: a pure-communication allreduce schedule.
COMPUTE_OPS = {"drop-optim-dep", "swap-compute-comm"}


def _assert_no_escapes(result):
    escaped = result.by_class("escaped")
    assert result.kill_rate >= 0.95, result.format()
    assert not escaped, result.format()


def test_mutation_smoke_slice_kills_all_harmful_mutants():
    result = run_mutation_suite(
        {name: ALLREDUCE_COMPILERS[name] for name in SMOKE}
    )
    assert result.records, "no mutants generated"
    _assert_no_escapes(result)
    # Every communication operator fired on at least one algorithm (the
    # compute-aware ones have no sites in a pure allreduce schedule).
    assert {r.operator for r in result.records} == set(MUTATORS) - COMPUTE_OPS


@pytest.mark.slow
def test_mutation_full_sweep_kills_all_harmful_mutants():
    result = run_mutation_suite(ALLREDUCE_COMPILERS, per_op=3)
    _assert_no_escapes(result)


def test_mutants_are_valid_schedule_objects():
    # Surgery must renumber sids densely and keep deps backward same-rank
    # references; the verifier's lint pass would reject anything else as
    # "lint-error" — the deeper passes, not the lint, should do the work.
    baseline = ALLREDUCE_COMPILERS["rsag"](4, 29, 8)
    lint_only = 0
    total = 0
    for mutate in MUTATORS.values():
        for mutant in mutate(baseline, 2):
            total += 1
            report = verify_schedule(
                mutant.schedule, allreduce_contract(4, 29)
            )
            if report.issues_by_pass("lint"):
                lint_only += 1
    assert total > 0
    assert lint_only == 0, "mutants should survive the structural lint"


def test_dynamic_oracle_judges_the_baseline_correct():
    sched = ALLREDUCE_COMPILERS["ring"](4, 29, 8, segment_bytes=64)
    assert _execute_allreduce(sched, 4, 29) == "correct"


# -- unified training-step DAG mutations --------------------------------------

def test_step_mutation_suite_kills_all_harmful_mutants():
    result = run_step_mutation_suite()
    assert result.records, "no mutants generated"
    _assert_no_escapes(result)
    # On a step DAG every operator has sites, including the compute ones.
    assert {r.operator for r in result.records} == set(MUTATORS)


def test_compute_mutants_are_killed_statically():
    """The two overlap bugs the step DAG exists to rule out.

    Un-gating an optimizer from its bucket's reduce and swapping a
    chained compute/comm pair: every harmful mutant (executor
    miscomputes) must be *killed* (verifier flags it too), and each
    operator must produce at least one harmful mutant per algorithm —
    genuinely behavior-preserving swap sites (e.g. optimizer moved ahead
    of the final broadcast send of an already-reduced segment) may be
    benign, but none may escape.
    """
    result = run_step_mutation_suite(per_op=4)
    for op in COMPUTE_OPS:
        records = [r for r in result.records if r.operator == op]
        assert records, f"{op} produced no mutants"
        for algorithm in {r.algorithm for r in records}:
            harmful = [
                r for r in records if r.algorithm == algorithm and r.harmful
            ]
            assert harmful, f"{op} produced no harmful mutants on {algorithm}"
            for r in harmful:
                assert r.classification == "killed", (
                    f"{r.algorithm}/{r.operator}: {r.description} — "
                    f"dynamic={r.dynamic}, static={r.static_kinds}"
                )


def test_step_dynamic_oracle_judges_the_baseline_correct():
    from repro.train.stepdag import compile_bucketed_step

    sched = compile_bucketed_step(
        4, 29, 8, forward_time=1e-9, backward_time=2e-9, optim_time=1e-9,
        n_buckets=3, algorithm="ring", memory="staged",
    )
    assert _execute_train_step(sched, 4, 29) == "correct"


@pytest.mark.slow
def test_step_mutation_full_sweep_kills_all_harmful_mutants():
    result = run_step_mutation_suite(
        tuple(sorted(ALLREDUCE_COMPILERS)), per_op=3
    )
    _assert_no_escapes(result)
    compute_harmful = [
        r for r in result.records if r.operator in COMPUTE_OPS and r.harmful
    ]
    assert compute_harmful, "compute operators produced no harmful mutants"
    assert all(r.caught for r in compute_harmful), result.format()
