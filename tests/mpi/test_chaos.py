"""Tests for the exhaustive chaos sweep (repro.mpi.chaos).

The full sweeps (every algorithm, every fault point, at 2 and 4 ranks)
are ``slow``-marked so tier-1 stays fast; tier-1 still runs the smoke
slice — one algorithm per structural family at 4 ranks — plus the unit
tests of the enumeration itself.
"""

import numpy as np
import pytest

from repro.mpi.chaos import (
    DEFAULT_KINDS,
    ChaosPoint,
    chaos_input,
    chaos_sweep,
    enumerate_points,
    reference_run,
    run_point,
    smoke_algorithms,
)
from repro.mpi.collectives import ALLREDUCE_COMPILERS, ALLREDUCE_FAMILIES

ALL_ALGORITHMS = sorted(ALLREDUCE_COMPILERS)


# -- enumeration --------------------------------------------------------------


def test_chaos_input_is_deterministic_and_distinct():
    a = chaos_input(0, 24)
    b = chaos_input(1, 24)
    np.testing.assert_array_equal(a, chaos_input(0, 24))
    assert a.dtype == np.int64
    assert not np.array_equal(a, b)


def test_smoke_algorithms_cover_every_family():
    smoke = smoke_algorithms()
    assert len(smoke) == len(ALLREDUCE_FAMILIES)
    for name, members in zip(smoke, ALLREDUCE_FAMILIES.values()):
        assert name == members[0]
        assert name in ALLREDUCE_COMPILERS


def test_reference_run_records_boundaries_and_sends():
    ref = reference_run("ring", 4)
    assert ref.elapsed > 0
    for r in range(4):
        assert ref.boundaries[r][0] == 0.0
        assert ref.boundaries[r] == tuple(sorted(ref.boundaries[r]))
        assert ref.send_times[r]  # every rank sends in a 4-rank allreduce
        assert all(t <= ref.elapsed for t in ref.send_times[r])


def test_enumerate_points_covers_every_rank_and_kind():
    points, ref = enumerate_points("multicolor", 4)
    kinds = {p.kind for p in points}
    assert kinds == set(DEFAULT_KINDS)
    for r in range(4):
        crashes = [p for p in points if p.kind == "crash" and p.rank == r]
        drops = [p for p in points if p.kind == "drop" and p.rank == r]
        assert len(crashes) == len(ref.boundaries[r])
        assert any(p.at == 0.0 for p in crashes)
        assert len(drops) == len(ref.send_times[r])


def test_enumerate_points_kind_filter_and_cap():
    points, ref = enumerate_points(
        "ring", 4, kinds=("crash",), max_points_per_rank=2
    )
    assert {p.kind for p in points} == {"crash"}
    for r in range(4):
        mine = [p for p in points if p.rank == r]
        assert len(mine) <= 2
        if len(ref.boundaries[r]) > 2:
            assert all("subsampled" in p.note for p in mine)  # never silent


def test_enumerate_points_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown chaos kind"):
        enumerate_points("ring", 4, kinds=("gamma-ray",))


def test_chaos_sweep_rejects_unknown_algorithm():
    with pytest.raises(ValueError, match="unknown algorithm"):
        chaos_sweep(["quantum"], n_ranks=(2,))


# -- single points ------------------------------------------------------------


def test_crash_point_repairs_and_stays_bit_exact():
    points, ref = enumerate_points("ring", 4, kinds=("crash",))
    # A mid-flight crash of rank 2 (not the trivial t=0 boundary).
    point = [p for p in points if p.rank == 2 and p.at > 0][0]
    outcome = run_point(point, reference=ref)
    assert outcome.ok, outcome.detail
    assert outcome.fired
    assert outcome.repairs == 1
    assert outcome.retries == 0
    assert outcome.survivors == (0, 1, 3)


def test_drop_point_retries_and_names_victim():
    points, ref = enumerate_points("multicolor", 4, kinds=("drop",))
    point = [p for p in points if p.rank == 1][0]
    outcome = run_point(point, reference=ref)
    assert outcome.ok, outcome.detail
    assert outcome.fired
    assert outcome.repairs == 0
    assert outcome.retries >= 1
    assert outcome.diagnosis_named_victim is True
    assert outcome.survivors == (0, 1, 2, 3)


# -- sweeps -------------------------------------------------------------------


def test_smoke_sweep_at_4_ranks():
    report = chaos_sweep(smoke_algorithms(), n_ranks=(4,))
    assert report.n_points > 0
    assert report.all_ok, report.format()
    assert all(o.fired for o in report.outcomes)
    # The rendered report is what CI prints on failure; keep it well-formed.
    assert f"total: {report.n_points} points, 0 failed" in report.format()


@pytest.mark.slow
@pytest.mark.parametrize("name", ALL_ALGORITHMS)
def test_full_sweep_at_2_ranks(name):
    report = chaos_sweep([name], n_ranks=(2,))
    assert report.n_points > 0
    assert report.all_ok, report.format()


@pytest.mark.slow
@pytest.mark.parametrize("name", ALL_ALGORITHMS)
def test_full_sweep_at_4_ranks(name):
    report = chaos_sweep([name], n_ranks=(4,))
    assert report.n_points > 0
    assert report.all_ok, report.format()
    assert all(o.fired for o in report.outcomes)


def test_report_summary_rows_aggregate_by_algorithm():
    report = chaos_sweep(["binomial"], n_ranks=(2, 4))
    rows = report.summary_rows()
    assert [r["n_ranks"] for r in rows] == [2, 4]
    assert all(r["algorithm"] == "binomial" for r in rows)
    assert sum(r["points"] for r in rows) == report.n_points
    assert all(r["failed"] == 0 for r in rows)


def test_chaos_point_str_mentions_everything():
    p = ChaosPoint("ring", 4, "drop", 2, 0.125, note="send 3/9")
    s = str(p)
    assert "ring@4" in s and "drop" in s and "rank 2" in s and "send 3/9" in s


# -- shuffle (data-plane) chaos -----------------------------------------------


from repro.mpi.chaos import (  # noqa: E402
    SHUFFLE_KINDS,
    enumerate_shuffle_points,
    run_shuffle_point,
    shuffle_chaos_sweep,
    shuffle_reference_run,
)


def test_shuffle_reference_run_records_boundaries_and_sends():
    ref = shuffle_reference_run(4)
    assert ref.algorithm == "shuffle"
    assert ref.elapsed > 0
    for r in range(4):
        assert ref.boundaries[r][0] == 0.0
        assert ref.send_times[r]  # every rank sends in a 4-rank shuffle
        assert all(t <= ref.elapsed for t in ref.send_times[r])


def test_enumerate_shuffle_points_covers_every_rank_and_kind():
    points, ref = enumerate_shuffle_points(4)
    assert {p.kind for p in points} == set(SHUFFLE_KINDS)
    assert all(p.algorithm == "shuffle" for p in points)
    for r in range(4):
        crashes = [p for p in points if p.kind == "crash" and p.rank == r]
        corrupts = [p for p in points if p.kind == "corrupt" and p.rank == r]
        assert len(crashes) == len(ref.boundaries[r])
        assert any(p.at == 0.0 for p in crashes)
        assert len(corrupts) == len(ref.send_times[r])


def test_enumerate_shuffle_points_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown chaos kind"):
        enumerate_shuffle_points(4, kinds=("degrade",))


def test_shuffle_crash_point_repairs_and_conserves():
    points, ref = enumerate_shuffle_points(4, kinds=("crash",))
    point = [p for p in points if p.rank == 2 and p.at > 0][0]
    outcome = run_shuffle_point(point, reference=ref)
    assert outcome.ok, outcome.detail
    assert outcome.fired
    assert outcome.repairs == 1
    assert outcome.retries == 0
    assert outcome.survivors == (0, 1, 3)


def test_shuffle_corrupt_point_retries_and_names_victim():
    points, ref = enumerate_shuffle_points(4, kinds=("corrupt",))
    point = [p for p in points if p.rank == 1][0]
    outcome = run_shuffle_point(point, reference=ref)
    assert outcome.ok, outcome.detail
    assert outcome.fired
    assert outcome.repairs == 0
    assert outcome.retries >= 1
    assert outcome.diagnosis_named_victim is True
    assert outcome.survivors == (0, 1, 2, 3)


def test_shuffle_smoke_sweep_at_2_ranks():
    report = shuffle_chaos_sweep((2,), max_points_per_rank=3)
    assert report.n_points > 0
    assert report.all_ok, report.format()
    assert all(o.fired for o in report.outcomes)


@pytest.mark.slow
def test_shuffle_full_sweep_at_2_ranks():
    report = shuffle_chaos_sweep((2,))
    assert report.n_points > 0
    assert report.all_ok, report.format()
    assert all(o.fired for o in report.outcomes)


@pytest.mark.slow
def test_shuffle_full_sweep_at_4_ranks():
    report = shuffle_chaos_sweep((4,))
    assert report.n_points > 0
    assert report.all_ok, report.format()
    assert all(o.fired for o in report.outcomes)
