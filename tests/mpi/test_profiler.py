"""Tests for the collective profiler."""

import pytest

from repro.mpi.profiler import profile_allreduce
from repro.utils.units import MB


def test_profile_basic_fields():
    p = profile_allreduce(8, int(8 * MB), algorithm="ring")
    assert p.elapsed > 0
    assert p.total_wire_bytes > 0
    # link accounting is hop-weighted: >= the per-transfer payload count
    assert p.hop_weighted_bytes >= p.total_wire_bytes
    assert 0 < p.efficiency <= 1.0
    assert p.wire_amplification > 1.0
    assert len(p.per_rank_sent) == 8
    # A clean profiled run finished every rank's schedule slice.
    assert len(p.steps_completed) == 8
    assert all(done == total > 0 for done, total in p.steps_completed.values())


def test_multicolor_uses_more_core_than_contiguous_ring():
    mc = profile_allreduce(16, int(16 * MB), algorithm="multicolor")
    ring = profile_allreduce(16, int(16 * MB), algorithm="ring")
    assert mc.core_bytes > ring.core_bytes


def test_ring_is_balanced_multicolor_less_so():
    """Every ring member relays equal bytes; multicolor's internal nodes
    send more than its leaves per color (offset by rotation, but the root
    skips the upward send)."""
    ring = profile_allreduce(16, int(16 * MB), algorithm="ring")
    assert ring.max_rank_imbalance < 1.3


def test_efficiency_close_to_bound_for_pipelined_ring():
    p = profile_allreduce(8, int(64 * MB), algorithm="ring")
    assert p.efficiency > 0.3


def test_unknown_algorithm():
    with pytest.raises(ValueError, match="unknown algorithm"):
        profile_allreduce(4, 1024, algorithm="sorcery")
