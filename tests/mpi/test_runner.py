"""Tests for the standalone collective drivers."""

import numpy as np
import pytest

from repro.mpi import build_world, run_rank_programs, simulate_allreduce
from repro.mpi.runner import CollectiveOutcome, allreduce_throughput
from repro.net import CONNECTX5_SINGLE, fat_tree


def test_build_world_with_topology_object():
    topo = fat_tree(8, CONNECTX5_SINGLE, hosts_per_leaf=4)
    engine, world, comm = build_world(8, topology=topo)
    assert world.fabric.topology is topo
    assert comm.size == 8


def test_build_world_network_params_propagate():
    engine, world, comm = build_world(4, network=CONNECTX5_SINGLE)
    assert world.fabric.software_overhead == CONNECTX5_SINGLE.software_overhead
    assert world.fabric.per_flow_cap == CONNECTX5_SINGLE.per_flow_cap


def test_run_rank_programs_collects_returns():
    engine, world, comm = build_world(3, topology="star")

    def program(comm, rank, offset):
        yield comm.engine.timeout(0.1 * (rank + 1))
        return rank * 10 + offset

    out = run_rank_programs(comm, program, per_rank_args=[(1,), (2,), (3,)])
    assert isinstance(out, CollectiveOutcome)
    assert out.results == [1, 12, 23]
    assert out.elapsed == pytest.approx(0.3)


def test_outcome_throughput():
    out = CollectiveOutcome(elapsed=2.0, results=[], bytes_on_wire=0.0)
    assert out.throughput(100.0) == pytest.approx(50.0)
    zero = CollectiveOutcome(elapsed=0.0, results=[], bytes_on_wire=0.0)
    assert zero.throughput(1.0) == float("inf")


def test_allreduce_throughput_helper():
    t = allreduce_throughput(4, 1 << 20, algorithm="ring")
    assert t > 0


def test_single_adapter_slower_than_dual():
    from repro.net import CONNECTX5_DUAL

    t_single = simulate_allreduce(
        8, 32 << 20, algorithm="multicolor", network=CONNECTX5_SINGLE
    ).elapsed
    t_dual = simulate_allreduce(
        8, 32 << 20, algorithm="multicolor", network=CONNECTX5_DUAL
    ).elapsed
    assert t_single > t_dual * 1.4  # roughly half the uplink bandwidth


def test_seed_changes_payload_not_timing():
    a = simulate_allreduce(4, 4096, algorithm="ring", payload=True, seed=1)
    b = simulate_allreduce(4, 4096, algorithm="ring", payload=True, seed=2)
    assert a.elapsed == pytest.approx(b.elapsed)
    assert not np.allclose(a.results[0].array, b.results[0].array)
