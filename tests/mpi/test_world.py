"""Unit tests for MPIWorld messaging and Communicator groups."""

import numpy as np
import pytest

from repro.mpi import ArrayBuffer, Communicator, SizeBuffer, build_world


def test_send_recv_delivers_payload():
    eng, world, comm = build_world(2, topology="star")
    got = []

    def receiver():
        msg = yield world.recv(1, src=0, tag="t")
        got.append((msg.source, msg.payload.tolist(), msg.nbytes))

    world.isend(0, 1, "t", ArrayBuffer(np.array([1.0, 2.0])))
    eng.run(eng.process(receiver()))
    assert got == [(0, [1.0, 2.0], 16)]


def test_recv_before_send_blocks_then_fires():
    eng, world, comm = build_world(2, topology="star")
    times = []

    def receiver():
        msg = yield world.recv(1, src=0, tag=7)
        times.append((eng.now, msg.nbytes))

    def sender():
        yield eng.timeout(1.0)
        world.isend(0, 1, 7, SizeBuffer(0))

    eng.process(receiver())
    eng.process(sender())
    eng.run()
    assert len(times) == 1
    assert times[0][0] > 1.0  # delivery after latency
    assert times[0][1] == 0


def test_messages_matched_by_tag():
    eng, world, comm = build_world(2, topology="star")
    order = []

    def receiver():
        b = yield world.recv(1, src=0, tag="b")
        a = yield world.recv(1, src=0, tag="a")
        order.append((a.payload.tolist(), b.payload.tolist()))

    world.isend(0, 1, "a", ArrayBuffer(np.array([1.0])))
    world.isend(0, 1, "b", ArrayBuffer(np.array([2.0])))
    eng.run(eng.process(receiver()))
    assert order == [([1.0], [2.0])]


def test_same_channel_sends_fifo():
    """Sends on one (src, dst) pair must arrive in posting order, even if a
    later message is much smaller (NIC send-queue serialization)."""
    eng, world, comm = build_world(2, topology="star")
    arrivals = []

    def receiver():
        for i in range(2):
            yield world.recv(1, src=0, tag=("m", i))
            arrivals.append((i, eng.now))

    world.isend(0, 1, ("m", 0), SizeBuffer(10_000_000))  # big first
    world.isend(0, 1, ("m", 1), SizeBuffer(8))  # tiny second
    eng.run(eng.process(receiver()))
    assert arrivals[0][0] == 0
    assert arrivals[0][1] <= arrivals[1][1]


def test_payload_snapshot_at_send_time():
    """The receiver must see the values at isend time, not later mutations."""
    eng, world, comm = build_world(2, topology="star")
    arr = np.array([5.0])
    got = []

    def receiver():
        msg = yield world.recv(1, src=0, tag=0)
        got.append(msg.payload.tolist())

    world.isend(0, 1, 0, ArrayBuffer(arr))
    arr[0] = -1.0  # mutate after send
    eng.run(eng.process(receiver()))
    assert got == [[5.0]]


def test_rank_bounds_checked():
    _eng, world, _comm = build_world(2, topology="star")
    with pytest.raises(ValueError):
        world.isend(0, 2, 0, SizeBuffer(1))
    with pytest.raises(ValueError):
        world.recv(5, 0, 0)


def test_world_needs_enough_hosts():
    from repro.net import CONNECTX5_DUAL, Fabric, star
    from repro.mpi.world import MPIWorld
    from repro.sim import Engine

    eng = Engine()
    fab = Fabric(eng, star(2, CONNECTX5_DUAL))
    with pytest.raises(ValueError):
        MPIWorld(eng, fab, 4)


def test_assert_quiescent_detects_leftovers():
    eng, world, comm = build_world(2, topology="star")
    world.isend(0, 1, "orphan", SizeBuffer(4))
    eng.run()
    with pytest.raises(AssertionError, match="unconsumed"):
        world.assert_quiescent()


def test_communicator_rank_translation():
    _eng, world, comm = build_world(6, topology="star")
    sub = Communicator(world, [4, 2, 0])
    assert sub.size == 3
    assert sub.world_rank(0) == 4
    assert sub.group_rank(2) == 1
    assert sub.contains(0) and not sub.contains(3)
    with pytest.raises(ValueError):
        sub.group_rank(5)


def test_communicator_rejects_duplicates_and_empty():
    _eng, world, _comm = build_world(4, topology="star")
    with pytest.raises(ValueError):
        Communicator(world, [0, 0, 1])
    with pytest.raises(ValueError):
        Communicator(world, [])


def test_split_contiguous_groups():
    _eng, world, comm = build_world(8, topology="star")
    groups = comm.split(4)
    assert [g.members for g in groups] == [[0, 1], [2, 3], [4, 5], [6, 7]]


def test_split_validation():
    _eng, _world, comm = build_world(8, topology="star")
    with pytest.raises(ValueError):
        comm.split(3)  # 8 not divisible by 3
    with pytest.raises(ValueError):
        comm.split(0)
    with pytest.raises(ValueError):
        comm.split(9)


def test_subcommunicator_messaging_uses_group_ranks():
    eng, world, comm = build_world(4, topology="star")
    sub = Communicator(world, [3, 1])
    got = []

    def receiver():
        msg = yield sub.recv(1, src=0, tag="x")  # group rank 0 == world rank 3
        got.append(msg.source)

    sub.isend(0, 1, "x", SizeBuffer(8))
    eng.run(eng.process(receiver()))
    assert got == [3]  # message sources are world ranks


def test_recv_any_matches_any_source():
    eng, world, comm = build_world(3, topology="star")
    got = []

    def receiver():
        for _ in range(2):
            msg = yield world.recv_any(2, tag="w")
            got.append(msg.source)

    world.isend(0, 2, "w", SizeBuffer(4))
    world.isend(1, 2, "w", SizeBuffer(4))
    eng.run(eng.process(receiver()))
    assert sorted(got) == [0, 1]


def test_recv_any_from_mailbox_backlog():
    eng, world, comm = build_world(2, topology="star")
    world.isend(0, 1, "t", SizeBuffer(8))
    eng.run()  # deliver into the mailbox first
    ev = world.recv_any(1, tag="t")
    assert ev.triggered
    assert ev.value.source == 0


def test_recv_any_ignores_other_tags():
    eng, world, comm = build_world(2, topology="star")
    got = []

    def receiver():
        msg = yield world.recv_any(1, tag="wanted")
        got.append(msg.tag)

    world.isend(0, 1, "other", SizeBuffer(1))
    world.isend(0, 1, "wanted", SizeBuffer(1))
    eng.run(eng.process(receiver()))
    assert got == ["wanted"]
    # the "other" message is still waiting in the mailbox
    import pytest as _pytest

    with _pytest.raises(AssertionError):
        world.assert_quiescent()
