"""Tests for the static schedule verifier (repro.mpi.verify)."""

import numpy as np
import pytest

from repro.mpi.collectives import (
    ALLREDUCE_COMPILERS,
    compile_alltoallv,
    compile_binomial_bcast,
    compile_binomial_reduce,
    compile_dissemination_barrier,
)
from repro.mpi.datatypes import ArrayBuffer
from repro.mpi.runner import build_world
from repro.mpi.schedule import ScheduleBuilder, ScheduleExecutor
from repro.mpi.verify import (
    HBGraph,
    allreduce_contract,
    alltoallv_contract,
    analyze_bounds,
    barrier_contract,
    broadcast_contract,
    check_bounds,
    check_match_determinism,
    find_races,
    interpret_schedule,
    reduce_contract,
    verify_schedule,
)
from repro.mpi.verify.report import MAX_ISSUES_PER_PASS, Issue, cap_issues
from repro.mpi.verify.sweep import crosscheck_goldens, run_sweep

# -- happens-before graph -----------------------------------------------------


def _two_rank_chain():
    b = ScheduleBuilder(2, name="chain", count=4, itemsize=4)
    s0 = b.send(0, 1, "a", 0, 4)
    s1 = b.send(0, 1, "b", 0, 4, deps=s0)
    r0 = b.recv_reduce(1, 0, "a", 0, 4)
    r1 = b.recv_reduce(1, 0, "b", 0, 4, deps=r0)
    return b.build(validate=True), (s0, s1, r0, r1)


def test_hb_graph_orders_deps_and_messages():
    sched, (s0, s1, r0, r1) = _two_rank_chain()
    hb = HBGraph(sched)
    assert hb.happens_before(s0, s1)
    assert hb.happens_before(s0, r0)      # message edge
    assert hb.happens_before(s0, r1)      # transitive
    assert not hb.happens_before(r1, s0)
    assert hb.concurrent(s1, r0)
    assert hb.send_to_recv[s0] == r0
    assert hb.position[s0] < hb.position[r0]


# -- zero false positives over the compiler zoo -------------------------------


@pytest.mark.parametrize("n_ranks", [2, 4, 6, 16])
@pytest.mark.parametrize("name", sorted(ALLREDUCE_COMPILERS))
def test_all_allreduce_compilers_prove_clean(name, n_ranks):
    count = 1003
    sched = ALLREDUCE_COMPILERS[name](n_ranks, count, 4, segment_bytes=1024)
    report = verify_schedule(sched, allreduce_contract(n_ranks, count))
    assert report.ok, report.format()
    assert report.resources is not None
    assert report.resources.critical_path_s > 0
    assert report.resources.leaked_bytes == 0


@pytest.mark.parametrize("n_ranks", [2, 4, 6, 16])
def test_auxiliary_collectives_prove_clean(n_ranks):
    counts = tuple(
        tuple((s * 7 + d * 3 + 1) % 11 for d in range(n_ranks))
        for s in range(n_ranks)
    )
    cases = [
        (compile_alltoallv(counts, 4), alltoallv_contract(counts)),
        (compile_dissemination_barrier(n_ranks), barrier_contract(n_ranks)),
        (compile_binomial_reduce(n_ranks, 13, 4), reduce_contract(n_ranks, 13)),
        (compile_binomial_bcast(n_ranks, 13, 4), broadcast_contract(n_ranks, 13)),
    ]
    for sched, contract in cases:
        report = verify_schedule(sched, contract)
        assert report.ok, report.format()


def test_compiled_alltoallv_matches_generator_semantics():
    # The compiled schedule must land exactly the payloads the verifier
    # proved: in{s} on rank r ends as rank s's out{r} block.
    n = 4
    counts = tuple(tuple((s + 2 * d + 1) % 5 for d in range(n)) for s in range(n))
    sched = compile_alltoallv(counts, 8)
    bufmaps = []
    for rank in range(n):
        bufmap = {}
        for d in range(n):
            bufmap[f"out{d}"] = ArrayBuffer(
                np.arange(counts[rank][d], dtype=np.int64) + 100 * rank + d
            )
            bufmap[f"in{d}"] = ArrayBuffer(
                np.zeros(counts[d][rank], dtype=np.int64)
            )
        bufmaps.append(bufmap)
    engine, world, comm = build_world(n, topology="star")
    ScheduleExecutor(comm, sched, bufmaps).run()
    for rank in range(n):
        for src in range(n):
            np.testing.assert_array_equal(
                bufmaps[rank][f"in{src}"].array,
                np.arange(counts[src][rank], dtype=np.int64) + 100 * src + rank,
                err_msg=f"rank {rank} block from {src}",
            )


# -- semantic defect detection ------------------------------------------------


def test_semantic_flags_double_reduce():
    # Rank 0's contribution travels to rank 1 twice over two channels;
    # rank 1's contribution reaches rank 0 once (clean direction, sent
    # before any reduce touches rank 1's buffer).
    b = ScheduleBuilder(2, name="dup", count=2, itemsize=4)
    b.send(1, 0, "c", 0, 2)
    b.recv_reduce(0, 1, "c", 0, 2)
    s0 = b.send(0, 1, "a", 0, 2)
    b.send(0, 1, "b", 0, 2, deps=s0)
    r0 = b.recv_reduce(1, 0, "a", 0, 2)
    b.recv_reduce(1, 0, "b", 0, 2, deps=r0)
    sched = b.build(validate=True)
    result = interpret_schedule(sched, allreduce_contract(2, 2))
    kinds = {i.kind for i in result.issues}
    assert "double-reduce" in kinds
    dup = next(i for i in result.issues if i.kind == "double-reduce")
    assert dup.rank == 1
    assert dup.sids  # attributed to the second arrival


def test_semantic_flags_missing_contribution():
    b = ScheduleBuilder(2, name="half", count=2, itemsize=4)
    b.send(1, 0, "g", 0, 2)
    b.recv_reduce(0, 1, "g", 0, 2)
    sched = b.build(validate=True)  # rank 1 never hears from rank 0
    result = interpret_schedule(sched, allreduce_contract(2, 2))
    kinds = {i.kind for i in result.issues}
    assert kinds == {"missing-contribution"}
    assert {i.rank for i in result.issues} == {1}


def test_semantic_flags_overwrite_after_reduce():
    # Rank 0 reduces rank 1's contribution, then a later copy overwrites
    # the reduced range with rank 1's raw payload again.
    b = ScheduleBuilder(2, name="clobber", count=2, itemsize=4)
    s0 = b.send(1, 0, "g", 0, 2)
    b.send(1, 0, "h", 0, 2, deps=s0)
    r0 = b.recv_reduce(0, 1, "g", 0, 2)
    clobber = b.copy(0, 1, "h", 0, 2, deps=r0)
    # Clean reverse direction so rank 1 is fully reduced.
    b.send(0, 1, "k", 0, 2)
    b.recv_reduce(1, 0, "k", 0, 2)
    sched = b.build(validate=True)
    result = interpret_schedule(sched, allreduce_contract(2, 2))
    kinds = {i.kind for i in result.issues}
    assert "overwrite-after-reduce" in kinds
    issue = next(i for i in result.issues if i.kind == "overwrite-after-reduce")
    assert clobber in issue.sids


def test_semantic_flags_misrouted_contribution():
    # A reduce window shifted off target: payload for [0,1) lands on [1,2).
    b = ScheduleBuilder(2, name="shifted", count=2, itemsize=4)
    b.send(0, 1, "a", 0, 1)
    b.recv_reduce(1, 0, "a", 1, 2)
    sched = b.build(validate=True)
    result = interpret_schedule(sched, allreduce_contract(2, 2))
    kinds = {i.kind for i in result.issues}
    assert "misrouted-contribution" in kinds
    assert "missing-contribution" in kinds


def test_semantic_flags_unbound_buffer_and_contract_mismatch():
    b = ScheduleBuilder(2, name="ghost", count=2, itemsize=4)
    b.send(0, 1, "a", 0, 2, buf="ghost")
    b.recv_reduce(1, 0, "a", 0, 2)
    sched = b.build(validate=True)
    result = interpret_schedule(sched, allreduce_contract(2, 2))
    assert "unbound-buffer" in {i.kind for i in result.issues}

    report = verify_schedule(sched, allreduce_contract(3, 2))
    assert "contract-mismatch" in report.kinds()


# -- race detection -----------------------------------------------------------


def test_race_pass_flags_concurrent_overlapping_writes():
    b = ScheduleBuilder(2, name="racy", count=4, itemsize=4)
    s0 = b.send(0, 1, "a", 0, 3)
    b.send(0, 1, "b", 1, 4, deps=s0)
    b.recv_reduce(1, 0, "a", 0, 3)   # overlaps [1,3) with the next recv
    b.recv_reduce(1, 0, "b", 1, 4)   # no dep: concurrent on rank 1
    sched = b.build(validate=True)
    issues = find_races(sched)
    assert issues, "expected a race"
    assert issues[0].kind == "write-write-race"
    assert issues[0].rank == 1


def test_race_pass_accepts_ordered_and_disjoint_accesses():
    b = ScheduleBuilder(2, name="ordered", count=4, itemsize=4)
    s0 = b.send(0, 1, "a", 0, 3)
    b.send(0, 1, "b", 1, 4, deps=s0)
    r0 = b.recv_reduce(1, 0, "a", 0, 3)
    b.recv_reduce(1, 0, "b", 1, 4, deps=r0)  # ordered: overlap is fine
    assert find_races(b.build(validate=True)) == []


def test_race_pass_sees_cross_rank_ordering_through_messages():
    # The ordering edge between two same-rank accesses can run through
    # another rank entirely: recv -> send -> (peer echoes) -> recv.
    b = ScheduleBuilder(2, name="relay", count=2, itemsize=4)
    b.send(0, 1, "a", 0, 2)
    r = b.recv_reduce(1, 0, "a", 0, 2)
    b.send(1, 0, "echo", 0, 2, deps=r)
    rr = b.copy(0, 1, "echo", 0, 2)
    b.send(0, 1, "back", 0, 2, deps=rr)
    b.recv_reduce(1, 0, "back", 0, 2)  # writes same range as r: HB via relay
    assert find_races(b.build(validate=True)) == []


# -- match determinism --------------------------------------------------------


def test_determinism_flags_unordered_same_channel_sends():
    b = ScheduleBuilder(2, name="ambiguous", count=4, itemsize=4)
    b.send(0, 1, "k", 0, 2)
    b.send(0, 1, "k", 2, 4)          # same channel, no ordering
    r0 = b.recv_reduce(1, 0, "k", 0, 2)
    b.recv_reduce(1, 0, "k", 2, 4, deps=r0)
    issues = check_match_determinism(b.build(validate=True))
    assert [i.kind for i in issues] == ["ambiguous-send-order"]


def test_determinism_accepts_chained_channel_reuse():
    b = ScheduleBuilder(2, name="fifo", count=4, itemsize=4)
    s0 = b.send(0, 1, "k", 0, 2)
    b.send(0, 1, "k", 2, 4, deps=s0)
    r0 = b.recv_reduce(1, 0, "k", 0, 2)
    b.recv_reduce(1, 0, "k", 2, 4, deps=r0)
    assert check_match_determinism(b.build(validate=True)) == []


# -- bounds -------------------------------------------------------------------


def test_bounds_critical_path_and_peaks():
    sched, _ = _two_rank_chain()
    bounds = analyze_bounds(sched)
    assert bounds.critical_path_s > 0
    assert bounds.total_wire_bytes == 2 * 4 * 4
    assert bounds.peak_link_bytes[(0, 1)] == 2 * 4 * 4  # both sends eager
    assert bounds.peak_rank_bytes[0] == 2 * 4 * 4
    assert bounds.leaked_bytes == 0
    assert bounds.critical_path_sids  # a path was reconstructed
    assert check_bounds(bounds) == []
    capped = check_bounds(bounds, max_in_flight_bytes=16)
    assert [i.kind for i in capped] == ["in-flight-exceeds-cap"]
    golden = check_bounds(bounds, golden_elapsed_s=bounds.critical_path_s / 2)
    assert [i.kind for i in golden] == ["critical-path-exceeds-golden"]


def test_bounds_lower_bound_holds_against_small_fig5_goldens():
    checks = crosscheck_goldens(max_mb=4.0)
    assert checks, "no goldens found"
    for c in checks:
        assert c.ok, f"{c.key}: {c.critical_path_s} > {c.golden_elapsed_s}"


# -- report plumbing ----------------------------------------------------------


def test_cap_issues_truncates_long_findings():
    issues = [
        Issue(pass_name="semantic", kind="x", message=str(i))
        for i in range(MAX_ISSUES_PER_PASS + 5)
    ]
    capped = cap_issues(issues, "semantic")
    assert len(capped) == MAX_ISSUES_PER_PASS + 1
    assert capped[-1].kind == "truncated"
    assert "5 further" in capped[-1].message


def test_report_format_mentions_verdict_and_issues():
    count = 16
    sched = ALLREDUCE_COMPILERS["ring"](2, count, 4, segment_bytes=1024)
    report = verify_schedule(sched, allreduce_contract(2, count))
    text = report.format()
    assert "PROVED" in text and "critical path" in text

    b = ScheduleBuilder(2, name="broken", count=2, itemsize=4)
    b.send(1, 0, "g", 0, 2)
    b.recv_reduce(0, 1, "g", 0, 2)
    bad = verify_schedule(b.build(), allreduce_contract(2, 2))
    assert not bad.ok
    assert "FAILED" in bad.format()
    assert "missing-contribution" in bad.format()


def test_verify_reports_lint_errors_without_crashing():
    b = ScheduleBuilder(2, name="halfpair", count=2, itemsize=4)
    b.send(0, 1, "k", 0, 2)  # never received
    report = verify_schedule(b.build(), allreduce_contract(2, 2))
    assert [i.kind for i in report.issues] == ["lint-error"]


def test_run_sweep_restricted_slice():
    result = run_sweep(
        algorithms=["ring"], ranks=(2, 4), count=64, segment_kibs=(1,)
    )
    # Per rank count: 1 allreduce + 1 step DAG, plus 4 aux collectives.
    assert len(result.reports) == 2 + 2 + 2 * 4
    assert result.all_ok
    assert result.total_wall_time_s > 0
    assert "proved" in result.format()
