"""Cross-checks: discrete-event results vs alpha-beta closed forms."""

import pytest

from repro.mpi import simulate_allreduce
from repro.mpi.analytic import AlphaBetaModel
from repro.utils.units import MB

MODEL = AlphaBetaModel()


def test_simulator_never_beats_bandwidth_lower_bound():
    """No algorithm may move 2n(N-1)/N bytes faster than the uplink allows."""
    nbytes = 32 * MB
    for alg in ("multicolor", "ring", "rsag", "openmpi_default", "hierarchical"):
        for n in (4, 8, 16):
            simulated = simulate_allreduce(
                n, int(nbytes), algorithm=alg, segment_bytes=1024 * 1024
            ).elapsed
            bound = MODEL.allreduce_lower_bound(n, nbytes)
            assert simulated >= bound * 0.999, (alg, n)


def test_pipelined_algorithms_approach_lower_bound():
    """At large payloads the pipelined ring/multicolor should be within a
    small factor of the bandwidth bound (pipelining works)."""
    nbytes = 128 * MB
    bound = MODEL.allreduce_lower_bound(16, nbytes)
    for alg in ("multicolor", "ring"):
        t = simulate_allreduce(
            16, int(nbytes), algorithm=alg, segment_bytes=2 * 1024 * 1024
        ).elapsed
        assert t < 3.0 * bound, alg


def test_analytic_ordering_matches_simulation():
    """The closed forms and the DES must agree on who wins at 93 MB."""
    nbytes = 93 * MB
    analytic = {
        "multicolor": MODEL.multicolor(16, nbytes, 4, 1024 * 1024).time,
        "ring": MODEL.ring_pipelined(16, nbytes, 1024 * 1024).time,
        "rabenseifner": MODEL.rabenseifner(16, nbytes).time,
        "recursive_doubling": MODEL.recursive_doubling(16, nbytes).time,
    }
    assert analytic["multicolor"] < analytic["rabenseifner"]
    assert analytic["ring"] < analytic["rabenseifner"]
    assert analytic["rabenseifner"] < analytic["recursive_doubling"]

    simulated = {
        alg: simulate_allreduce(
            16, int(nbytes), algorithm=alg, segment_bytes=1024 * 1024
        ).elapsed
        for alg in ("multicolor", "ring", "rabenseifner", "recursive_doubling")
    }
    assert simulated["multicolor"] < simulated["rabenseifner"]
    assert simulated["rabenseifner"] < simulated["recursive_doubling"]


def test_rd_byte_count():
    cost = MODEL.recursive_doubling(8, 1000.0)
    assert cost.latency_rounds == 3
    assert cost.bytes_on_path == pytest.approx(3000.0)


def test_rsag_byte_count():
    cost = MODEL.reduce_scatter_allgather(8, 800.0)
    assert cost.latency_rounds == 14
    assert cost.bytes_on_path == pytest.approx(14 * 100.0)
    assert cost.reduce_bytes == pytest.approx(700.0)


def test_rabenseifner_moves_optimal_bytes():
    cost = MODEL.rabenseifner(16, 1600.0)
    assert cost.bytes_on_path == pytest.approx(2 * 1600.0 * 15 / 16)


def test_single_rank_costs_nothing():
    assert MODEL.recursive_doubling(1, 100.0).time == 0.0
    assert MODEL.reduce_scatter_allgather(1, 100.0).time == 0.0
    assert MODEL.allreduce_lower_bound(1, 100.0) == 0.0


def test_validation():
    with pytest.raises(ValueError):
        AlphaBetaModel(rails=0)
    with pytest.raises(ValueError):
        MODEL.recursive_doubling(0, 1.0)
    with pytest.raises(ValueError):
        MODEL.multicolor(8, 100.0, 0, 10.0)
