"""Unit tests for Buffer abstractions and chunking."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mpi.datatypes import ArrayBuffer, SizeBuffer, chunk_ranges


def test_array_buffer_basic():
    buf = ArrayBuffer(np.arange(10, dtype=np.float64))
    assert buf.count == 10
    assert buf.itemsize == 8
    assert buf.nbytes == 80


def test_array_buffer_rejects_2d():
    with pytest.raises(ValueError):
        ArrayBuffer(np.zeros((2, 3)))


def test_array_buffer_view_shares_memory():
    arr = np.zeros(10)
    buf = ArrayBuffer(arr)
    view = buf.view(2, 5)
    view.add_(np.ones(3))
    assert arr[2:5].tolist() == [1.0, 1.0, 1.0]
    assert arr[0] == 0.0


def test_array_buffer_view_bounds_checked():
    buf = ArrayBuffer(np.zeros(4))
    with pytest.raises(ValueError):
        buf.view(2, 5)
    with pytest.raises(ValueError):
        buf.view(-1, 2)


def test_array_buffer_extract_is_a_copy():
    arr = np.arange(4, dtype=float)
    buf = ArrayBuffer(arr)
    snapshot = buf.extract()
    arr[:] = 0
    assert snapshot.tolist() == [0.0, 1.0, 2.0, 3.0]


def test_array_buffer_copy_overwrites():
    buf = ArrayBuffer(np.zeros(3))
    buf.copy_(np.array([7.0, 8.0, 9.0]))
    assert buf.array.tolist() == [7.0, 8.0, 9.0]


def test_size_buffer_math_is_noop():
    buf = SizeBuffer(100, itemsize=4)
    assert buf.nbytes == 400
    buf.add_(None)
    buf.copy_(None)
    assert buf.extract() is None
    sub = buf.view(10, 30)
    assert sub.nbytes == 80


def test_size_buffer_validation():
    with pytest.raises(ValueError):
        SizeBuffer(-1)
    with pytest.raises(ValueError):
        SizeBuffer(1, itemsize=0)


def test_chunk_ranges_exact_division():
    assert chunk_ranges(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]


def test_chunk_ranges_remainder_goes_first():
    assert chunk_ranges(10, 4) == [(0, 3), (3, 6), (6, 8), (8, 10)]


def test_chunk_ranges_more_chunks_than_elements():
    ranges = chunk_ranges(2, 4)
    assert ranges == [(0, 1), (1, 2), (2, 2), (2, 2)]


def test_chunk_ranges_validation():
    with pytest.raises(ValueError):
        chunk_ranges(4, 0)
    with pytest.raises(ValueError):
        chunk_ranges(-1, 2)


@given(count=st.integers(0, 1000), n=st.integers(1, 64))
def test_chunk_ranges_partition_property(count, n):
    """Chunks tile [0, count) contiguously with sizes differing by <= 1."""
    ranges = chunk_ranges(count, n)
    assert len(ranges) == n
    assert ranges[0][0] == 0
    assert ranges[-1][1] == count
    sizes = []
    for (lo, hi), (nlo, _nhi) in zip(ranges, ranges[1:]):
        assert hi == nlo
        sizes.append(hi - lo)
    sizes.append(ranges[-1][1] - ranges[-1][0])
    assert max(sizes) - min(sizes) <= 1
