"""Unit tests for intra-node transfer models."""

import pytest

from repro.cluster import MINSKY_NODE, IntraNodeFabric


@pytest.fixture
def fabric():
    return IntraNodeFabric(MINSKY_NODE)


def test_direct_scatter_beats_staging(fabric):
    """The optimized DPT input path must be faster for any batch size."""
    for batch_bytes in (1e6, 50e6, 500e6):
        assert fabric.scatter_direct(batch_bytes) < fabric.scatter_via_first_gpu(
            batch_bytes
        )


def test_scatter_direct_is_one_slice(fabric):
    batch = 64e6
    assert fabric.scatter_direct(batch) == pytest.approx(
        (batch / 4) / MINSKY_NODE.h2d_bandwidth
    )


def test_staged_scatter_components(fabric):
    batch = 64e6
    expected = batch / MINSKY_NODE.h2d_bandwidth + (
        (batch / 4) * 3
    ) / MINSKY_NODE.nvlink_bandwidth
    assert fabric.scatter_via_first_gpu(batch) == pytest.approx(expected)


def test_allreduce_log_rounds(fabric):
    grad = 100e6
    expected = 2 * grad / MINSKY_NODE.nvlink_bandwidth + grad / MINSKY_NODE.h2d_bandwidth
    assert fabric.allreduce_time(grad) == pytest.approx(expected)


def test_broadcast_time(fabric):
    grad = 100e6
    expected = grad / MINSKY_NODE.h2d_bandwidth + 2 * grad / MINSKY_NODE.nvlink_bandwidth
    assert fabric.broadcast_time(grad) == pytest.approx(expected)


def test_single_gpu_node_skips_peer_rounds():
    from repro.cluster import NodeSpec, P100

    node = NodeSpec(
        name="single",
        gpu=P100,
        n_gpus=1,
        cpu_cores=8,
        host_memory_bytes=64e9,
        h2d_bandwidth=10e9,
        nvlink_bandwidth=10e9,
        host_reduce_bandwidth=10e9,
    )
    fab = IntraNodeFabric(node)
    assert fab.allreduce_time(1e6) == pytest.approx(1e6 / 10e9)


def test_negative_bytes_rejected(fabric):
    with pytest.raises(ValueError):
        fabric.h2d_time(-1)
    with pytest.raises(ValueError):
        fabric.allreduce_time(-1)
