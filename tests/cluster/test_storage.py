"""Unit tests for the storage device simulation."""

import pytest

from repro.cluster import NFS_STORAGE, StorageDevice, StorageSpec
from repro.sim import Engine

FAST = StorageSpec(name="t", sequential_bandwidth=100.0, random_iops=10.0)


def test_read_takes_closed_form_time():
    eng = Engine()
    dev = StorageDevice(eng, FAST)
    ev = dev.read_event(200.0, 2)
    eng.run(ev)
    assert eng.now == pytest.approx(FAST.read_time(200.0, 2))
    assert dev.bytes_read == 200.0
    assert dev.requests == 2


def test_reads_serialize_on_one_stream():
    eng = Engine()
    dev = StorageDevice(eng, FAST, streams=1)
    e1 = dev.read_event(100.0)
    e2 = dev.read_event(100.0)
    eng.run(eng.all_of([e1, e2]))
    assert eng.now == pytest.approx(2 * FAST.read_time(100.0))


def test_two_streams_run_concurrently():
    eng = Engine()
    dev = StorageDevice(eng, FAST, streams=2)
    e1 = dev.read_event(100.0)
    e2 = dev.read_event(100.0)
    eng.run(eng.all_of([e1, e2]))
    assert eng.now == pytest.approx(FAST.read_time(100.0))


def test_random_requests_dominate_small_reads():
    """Image-sized NFS reads should be IOPS/latency-bound, not bandwidth."""
    img = 110_000.0
    t = NFS_STORAGE.read_time(img, 1)
    transfer_only = img / NFS_STORAGE.sequential_bandwidth
    assert t > 1.5 * transfer_only


def test_validation():
    eng = Engine()
    with pytest.raises(ValueError):
        StorageDevice(eng, FAST, streams=0)
    dev = StorageDevice(eng, FAST)
    with pytest.raises(ValueError):
        next(dev.read(-1.0))
