"""Unit tests for hardware spec dataclasses."""

import pytest

from repro.cluster import (
    FLASH_STORAGE,
    LOCAL_MEMORY,
    MINSKY_NODE,
    NFS_STORAGE,
    P100,
    ClusterSpec,
    GPUSpec,
    NodeSpec,
    StorageSpec,
)


def test_p100_datasheet_values():
    assert P100.fp32_tflops == pytest.approx(10.6)
    assert P100.memory_bytes == 16 * 1024**3


def test_minsky_matches_paper_testbed():
    """§5: 20 cores, 256 GB host memory, four P100 per node."""
    assert MINSKY_NODE.cpu_cores == 20
    assert MINSKY_NODE.n_gpus == 4
    assert MINSKY_NODE.host_memory_bytes == 256 * 1024**3
    assert MINSKY_NODE.gpu is P100


def test_gpu_spec_validation():
    with pytest.raises(ValueError):
        GPUSpec(name="bad", fp32_tflops=0, memory_bytes=1, mem_bandwidth=1)


def test_node_spec_validation():
    with pytest.raises(ValueError):
        NodeSpec(
            name="bad",
            gpu=P100,
            n_gpus=0,
            cpu_cores=1,
            host_memory_bytes=1,
            h2d_bandwidth=1,
            nvlink_bandwidth=1,
            host_reduce_bandwidth=1,
        )


def test_storage_read_time_components():
    spec = StorageSpec(
        name="t", sequential_bandwidth=100.0, random_iops=10.0, latency=0.5
    )
    # 2 requests: 2*0.5 latency + 2/10 iops + 200/100 transfer
    assert spec.read_time(200.0, 2) == pytest.approx(1.0 + 0.2 + 2.0)


def test_storage_read_time_validation():
    with pytest.raises(ValueError):
        NFS_STORAGE.read_time(-1.0)
    with pytest.raises(ValueError):
        NFS_STORAGE.read_time(1.0, 0)


def test_storage_tier_ordering():
    """dram >> flash >> shared fs for random image-sized reads."""
    nbytes, reqs = 110_000.0, 1
    t_nfs = NFS_STORAGE.read_time(nbytes, reqs)
    t_flash = FLASH_STORAGE.read_time(nbytes, reqs)
    t_mem = LOCAL_MEMORY.read_time(nbytes, reqs)
    assert t_mem < t_flash < t_nfs


def test_cluster_spec_defaults_and_scaling():
    cluster = ClusterSpec(name="c", n_nodes=8, node=MINSKY_NODE)
    assert cluster.storage is NFS_STORAGE
    assert cluster.total_gpus == 32
    bigger = cluster.with_nodes(32)
    assert bigger.n_nodes == 32
    assert bigger.node is MINSKY_NODE
    assert cluster.n_nodes == 8  # original unchanged


def test_cluster_spec_validation():
    with pytest.raises(ValueError):
        ClusterSpec(name="c", n_nodes=0, node=MINSKY_NODE)
