"""Unit tests for the GPU compute model."""

import pytest

from repro.cluster import P100, GPUComputeModel

RESNET_FWD_FLOPS = 3.9e9  # per 224x224 image
RESNET_LAYERS = 53


def model(eff=0.25):
    return GPUComputeModel(gpu=P100, efficiency=eff)


def test_effective_flops_saturates_with_batch():
    m = model()
    small = m.effective_flops(1)
    big = m.effective_flops(64)
    assert small < big
    assert big < P100.fp32_tflops * 1e12 * 0.25


def test_step_time_scales_roughly_linearly_in_batch():
    m = model()
    t32 = m.step_time(RESNET_FWD_FLOPS, 32, RESNET_LAYERS)
    t64 = m.step_time(RESNET_FWD_FLOPS, 64, RESNET_LAYERS)
    assert 1.5 < t64 / t32 < 2.0  # sub-linear: bigger batch = better util


def test_images_per_second_in_p100_ballpark():
    """P100 ResNet-50 training throughput was ~170-250 img/s in 2017."""
    m = model(eff=0.25)
    rate = m.images_per_second(RESNET_FWD_FLOPS, 64, RESNET_LAYERS)
    assert 120 < rate < 350


def test_forward_cheaper_than_step():
    m = model()
    fwd = m.forward_time(RESNET_FWD_FLOPS, 64, RESNET_LAYERS)
    step = m.step_time(RESNET_FWD_FLOPS, 64, RESNET_LAYERS)
    assert fwd < step / 2


def test_kernel_overhead_floors_small_batches():
    m = model()
    t1 = m.step_time(RESNET_FWD_FLOPS, 1, RESNET_LAYERS)
    floor = 2 * RESNET_LAYERS * m.kernels_per_layer * P100.kernel_overhead
    assert t1 > floor


def test_validation_errors():
    m = model()
    with pytest.raises(ValueError):
        m.effective_flops(0)
    with pytest.raises(ValueError):
        m.step_time(-1.0, 8, 10)
    with pytest.raises(ValueError):
        m.step_time(1e9, 8, 0)
    with pytest.raises(ValueError):
        GPUComputeModel(gpu=P100, efficiency=1.5)
    with pytest.raises(ValueError):
        GPUComputeModel(gpu=P100, efficiency=0.2, batch_half_point=0)
