"""The whole paper in one functional test.

Record file -> memory plan -> partitioned load -> warm-up schedule ->
Algorithm 1 training with multicolor gradient allreduce and periodic
Algorithm 2 shuffles -> distributed validation -> accuracy, exercising
every functional subsystem against one another.
"""

import numpy as np
import pytest

from repro.cluster import MINSKY_NODE
from repro.data import (
    GroupLayout,
    RecordReader,
    build_synthetic_record_file,
    partitioned_load,
    plan_memory,
)
from repro.data.synthetic import DatasetSpec
from repro.models.nn import Conv2d, Dense, Flatten, MaxPool2d, Network, ReLU
from repro.train import DistributedSGDTrainer, WarmupStepSchedule
from repro.train.validation import distributed_accuracy

N_LEARNERS = 4
GPUS = 2
N_CLASSES = 6
IMG = 8
N_IMAGES = 240


def cnn_factory(rng):
    return Network(
        [
            Conv2d(3, 8, 3, rng),
            ReLU(),
            MaxPool2d(2),
            Flatten(),
            Dense(8 * (IMG // 2) ** 2, N_CLASSES, rng),
        ]
    )


def test_full_paper_pipeline(tmp_path):
    # 1. Build the dataset and its DIMD record file.
    dataset, base = build_synthetic_record_file(
        tmp_path / "train", n_images=N_IMAGES, n_classes=N_CLASSES,
        height=IMG, width=IMG, seed=42, noise=0.1,
    )

    # 2. Memory planning (the full synthetic set trivially fits).
    spec = DatasetSpec(
        name="synthetic", n_images=N_IMAGES, n_classes=N_CLASSES,
        record_file_bytes=max(1, sum(len(b) for b, _ in dataset.records())),
    )
    plan = plan_memory(spec, MINSKY_NODE, GroupLayout(N_LEARNERS, 1))
    assert plan.fits

    # 3. Partitioned load.
    layout = GroupLayout(N_LEARNERS, 1)
    with RecordReader(base) as reader:
        stores = [partitioned_load(reader, l, layout) for l in range(N_LEARNERS)]
    assert sum(len(s) for s in stores) == N_IMAGES

    # 4. Warm-up LR schedule (the paper's 0.1 * kn/256 rule, scaled down).
    schedule = WarmupStepSchedule(
        batch_per_gpu=5,
        n_workers=N_LEARNERS * GPUS,
        base_lr=0.05,
        reference_batch=40,
        warmup_epochs=0.5,
        total_epochs=12,
        decay_every=6,
    )

    # 5. Algorithm 1 with real multicolor allreduce + Algorithm 2 shuffles.
    val_ids = np.arange(0, N_IMAGES, 5)
    val_x, val_y = dataset.batch(val_ids)
    with DistributedSGDTrainer(
        cnn_factory,
        stores,
        gpus_per_node=GPUS,
        batch_per_gpu=5,
        schedule=schedule,
        momentum=0.9,
        weight_decay=1e-4,
        reducer="multicolor",
        seed=42,
        shuffle_every=3,
    ) as trainer:
        initial = trainer.evaluate(val_x, val_y)
        losses = []
        for _epoch in range(6):
            losses.extend(r.loss for r in trainer.train_epoch())
            trainer.check_synchronized()
        final_single = trainer.evaluate(val_x, val_y)

        # 6. Distributed validation agrees exactly with single-process.
        replicas = [t.replicas[0] for t in trainer.tables]
        final_distributed = distributed_accuracy(replicas, val_x, val_y)

    assert final_distributed == pytest.approx(final_single)
    assert final_single > initial
    assert final_single > 0.5  # chance is ~17%
    assert np.mean(losses[-8:]) < np.mean(losses[:8])

    # 7. Data conservation survived the repeated shuffles.
    assert sum(len(s) for s in stores) == N_IMAGES
