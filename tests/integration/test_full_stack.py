"""Cross-module integration tests: the whole stack wired together."""

import numpy as np
import pytest

from repro import (
    ClusterExperiment,
    DistributedSGDTrainer,
    ExperimentConfig,
    WarmupStepSchedule,
)
from repro.data import (
    GroupLayout,
    RecordReader,
    build_synthetic_record_file,
    partitioned_load,
)
from repro.models.nn import Dense, Flatten, Network, ReLU


def test_record_file_to_distributed_training(tmp_path):
    """Synthetic dataset -> record file -> partitioned load -> Algorithm 1
    with MPI-backed gradients and periodic Algorithm 2 shuffles."""
    n_learners, n_classes = 4, 5
    dataset, base = build_synthetic_record_file(
        tmp_path / "train", n_images=80, n_classes=n_classes,
        height=8, width=8, seed=13,
    )
    layout = GroupLayout(n_learners, 1)
    with RecordReader(base) as reader:
        stores = [partitioned_load(reader, l, layout) for l in range(n_learners)]

    def factory(rng):
        return Network(
            [Flatten(), Dense(3 * 8 * 8, 24, rng), ReLU(), Dense(24, n_classes, rng)]
        )

    schedule = WarmupStepSchedule(
        batch_per_gpu=5, n_workers=8, base_lr=0.05,
        reference_batch=40, warmup_epochs=0.0,
    )
    val_x, val_y = dataset.batch(np.arange(0, 80, 3))
    with DistributedSGDTrainer(
        factory, stores, gpus_per_node=2, batch_per_gpu=5,
        schedule=schedule, reducer="multicolor", seed=1, shuffle_every=3,
    ) as trainer:
        first = trainer.evaluate(val_x, val_y)
        for _ in range(3):
            trainer.train_epoch()
        trainer.check_synchronized()
        final = trainer.evaluate(val_x, val_y)
    assert final > first
    assert final > 0.5  # well above 20% chance


def test_experiment_pipeline_consistency():
    """ClusterExperiment numbers must be self-consistent across views."""
    cfg = ExperimentConfig(model="googlenet_bn", n_nodes=16)
    exp = ClusterExperiment(cfg)
    breakdown = exp.breakdown()
    iters = exp.pipeline.iterations_per_epoch
    shuffle = exp.pipeline.shuffle_seconds * exp.pipeline.shuffles_per_epoch
    assert exp.epoch_time() == pytest.approx(iters * breakdown.total + shuffle)
    run = exp.run(n_epochs=5)
    assert run.total_seconds == pytest.approx(5 * exp.epoch_time())


def test_optimization_chain_is_monotone():
    """Adding each optimization must never slow the epoch down."""
    base = ExperimentConfig(model="resnet50", n_nodes=8).open_source_baseline()
    from dataclasses import replace

    steps = [
        base,
        replace(base, allreduce="multicolor"),
        replace(base, allreduce="multicolor", dimd=True),
        replace(base, allreduce="multicolor", dimd=True, dpt_variant="optimized"),
        base.fully_optimized(),
    ]
    times = [ClusterExperiment(c).epoch_time() for c in steps]
    for earlier, later in zip(times, times[1:]):
        assert later <= earlier + 1e-9


def test_paper_payload_flag():
    cfg = ExperimentConfig(model="googlenet_bn", n_nodes=8, use_paper_payload=True)
    exp = ClusterExperiment(cfg)
    assert exp.pipeline.gradient_bytes == 93_000_000
    cfg2 = ExperimentConfig(model="googlenet_bn", n_nodes=8, use_paper_payload=False)
    exp2 = ClusterExperiment(cfg2)
    assert exp2.pipeline.gradient_bytes == exp2.descriptor.gradient_bytes


def test_dataset_switch_scales_epoch():
    """ImageNet-22k epochs ~5.5x ImageNet-1k's (7M vs 1.28M images)."""
    t1k = ClusterExperiment(
        ExperimentConfig(model="resnet50", n_nodes=32, dataset="imagenet-1k")
    ).epoch_time()
    t22k = ClusterExperiment(
        ExperimentConfig(model="resnet50", n_nodes=32, dataset="imagenet-22k")
    ).epoch_time()
    assert t22k / t1k == pytest.approx(7_000_000 / 1_281_167, rel=0.05)
