"""Integration: trainer across reducers / schedules / group shuffles."""

import numpy as np
import pytest

from repro.data import DIMDStore
from repro.data.codec import encode_image
from repro.models.nn import Dense, Flatten, Network, ReLU, build_tiny_resnet
from repro.train import DistributedSGDTrainer, WarmupStepSchedule

N_CLASSES = 3


def net_factory(rng):
    return Network(
        [Flatten(), Dense(16, 8, rng), ReLU(), Dense(8, N_CLASSES, rng)]
    )


def make_stores(n, per=16, seed=0):
    rng = np.random.default_rng(seed)
    stores = []
    for l in range(n):
        labels = rng.integers(0, N_CLASSES, size=per)
        records = []
        for lab in labels:
            img = rng.integers(0, 60, size=(1, 4, 4), dtype=np.uint8)
            img[0, int(lab) % 4, :] = 255
            records.append(encode_image(img))
        stores.append(DIMDStore(records, labels, learner=l))
    return stores


def flat_schedule(lr=0.05):
    return WarmupStepSchedule(
        batch_per_gpu=1, n_workers=1, base_lr=lr, reference_batch=1,
        warmup_epochs=0.0,
    )


@pytest.mark.parametrize("reducer", ["rsag", "rabenseifner", "hierarchical"])
def test_all_reducers_produce_identical_training(reducer):
    """Every allreduce implementation must yield the exact-sum gradients."""
    seed = 31
    ref_params = None
    for red in ("exact", reducer):
        with DistributedSGDTrainer(
            net_factory, make_stores(4, seed=seed), gpus_per_node=1,
            batch_per_gpu=4, schedule=flat_schedule(), reducer=red, seed=seed,
        ) as trainer:
            for _ in range(3):
                trainer.step()
            params = trainer.params()
        if ref_params is None:
            ref_params = params
        else:
            np.testing.assert_allclose(params, ref_params, rtol=1e-9, atol=1e-11)


def test_warmup_schedule_drives_lr_through_training():
    sched = WarmupStepSchedule(
        batch_per_gpu=4, n_workers=4, base_lr=0.1, reference_batch=8,
        warmup_epochs=2.0, total_epochs=8, decay_every=4,
    )
    stores = make_stores(2, per=16, seed=7)
    with DistributedSGDTrainer(
        net_factory, stores, gpus_per_node=2, batch_per_gpu=4,
        schedule=sched, seed=7,
    ) as trainer:
        lrs = []
        for _ in range(3 * trainer.steps_per_epoch):
            lrs.append(trainer.step().lr)
    # warm-up rises over the first two epochs, then plateaus at peak.
    assert lrs[0] < lrs[-1] or lrs[0] == pytest.approx(0.1)
    assert max(lrs) == pytest.approx(sched.peak_lr, rel=0.2)


def test_residual_network_trains_distributed():
    """The tiny ResNet (skip connections) through the full Algorithm 1."""
    seed = 17

    def resnet_factory(rng):
        return build_tiny_resnet(rng, n_classes=N_CLASSES, channels=4,
                                 in_channels=1, input_size=4)

    stores = make_stores(2, per=24, seed=seed)
    with DistributedSGDTrainer(
        resnet_factory, stores, gpus_per_node=2, batch_per_gpu=4,
        schedule=flat_schedule(lr=0.03), reducer="multicolor", seed=seed,
    ) as trainer:
        losses = [trainer.step().loss for _ in range(15)]
        trainer.check_synchronized()
    assert np.mean(losses[-3:]) < np.mean(losses[:3])
