"""Smoke tests: the example scripts must run and produce their claims."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, timeout: int = 300) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart_example():
    out = run_example("quickstart.py")
    assert "fully optimized" in out
    assert "90 epochs on 256 P100s" in out


def test_multicolor_trees_example():
    out = run_example("multicolor_trees.py")
    assert "color 3" in out
    assert "results match NumPy" in out
    assert "multicolor" in out


def test_dimd_shuffle_example():
    out = run_example("dimd_shuffle_demo.py")
    assert "records conserved" in out
    assert "ImageNet-22k shuffle across 32 learners" in out


def test_imagenet_training_example():
    out = run_example("imagenet_training.py")
    assert "final validation top-1" in out
    # The CNN must actually learn the synthetic classes.
    final_line = [l for l in out.splitlines() if "final validation" in l][0]
    pct = float(final_line.split(":")[1].split("%")[0])
    assert pct > 60.0


@pytest.mark.slow
def test_scaling_study_example():
    out = run_example("scaling_study.py", timeout=600)
    assert "Scaling study — resnet50" in out
    assert "Table 2 configuration" in out


def test_async_sgd_study_example():
    out = run_example("async_sgd_study.py")
    assert "synchronous Algorithm 1" in out
    assert "staleness-aware" in out


def test_pipeline_timeline_example():
    out = run_example("pipeline_timeline.py")
    assert "baseline DataParallelTable" in out
    assert "optimized DataParallelTable" in out
    # The optimization must shrink main-thread serialization visibly.
    busy = [
        float(l.split("busy:")[1].split("ms")[0])
        for l in out.splitlines()
        if "main-thread busy" in l
    ]
    assert busy[1] < busy[0]


def test_fault_recovery_example():
    out = run_example("fault_recovery.py")
    assert "elastic recovery: 4 -> 3 learners" in out
    assert "records conserved 96/96" in out
    assert "bit-identical" in out and "DIVERGED" not in out
    # The transient drop must surface as exactly one retried iteration.
    retry_rows = [
        l for l in out.splitlines() if "lost in transit" in l
    ]
    assert len(retry_rows) == 1


def test_collective_profiler_example():
    out = run_example("collective_profiler.py")
    assert "Allreduce profile" in out
    assert "multicolor" in out and "hierarchical" in out
