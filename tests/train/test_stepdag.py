"""The unified training-step DAG: one Schedule for compute + comm.

Three layers of guarantees:

* the compiled step proves clean under every verify pass (the semantic
  pass certifying each bucket's gradient is reduced before its optimizer
  reads it) and its critical-path lower bound never exceeds its own
  simulated elapsed time;
* the unified DAG reproduces the retired bucket-release driver's overlap
  estimate within 1% — including the fp16 x bucketing x multicolor
  composition the whatif benchmarks expose;
* ``DistributedSGDTrainer(step_dag=True)`` stays bit-identical to the
  plain guarded-allreduce path (compute steps in data mode are
  timing-only).
"""

import numpy as np
import pytest

from repro.mpi.datatypes import SizeBuffer
from repro.mpi.runner import build_world
from repro.mpi.schedule import ComputeStep, OptimStep, ScheduleExecutor
from repro.mpi.verify import analyze_bounds, train_step_contract, verify_schedule
from repro.train.overlap import (
    _legacy_simulate_bucketed_overlap,
    simulate_bucketed_overlap,
)
from repro.train.stepdag import compile_bucketed_step, compile_model_step

COUNT = 1003


def _compile(algorithm="multicolor", n_ranks=4, memory="staged", **kw):
    kw.setdefault("forward_time", 1e-3)
    kw.setdefault("backward_time", 2e-3)
    kw.setdefault("optim_time", 5e-4)
    kw.setdefault("n_buckets", 4)
    return compile_bucketed_step(
        n_ranks, COUNT, 4, algorithm=algorithm, memory=memory, **kw
    )


# -- compilation --------------------------------------------------------------

def test_validation_rejects_bad_arguments():
    with pytest.raises(ValueError, match="n_ranks"):
        compile_bucketed_step(0, COUNT, 4)
    with pytest.raises(ValueError, match="count"):
        compile_bucketed_step(4, 0, 4)
    with pytest.raises(ValueError, match="compute times"):
        compile_bucketed_step(4, COUNT, 4, forward_time=-1.0)
    with pytest.raises(ValueError, match="n_buckets"):
        compile_bucketed_step(4, COUNT, 4, n_buckets=0)
    with pytest.raises(ValueError, match="memory"):
        compile_bucketed_step(4, COUNT, 4, memory="gpu")
    with pytest.raises(ValueError, match="unknown allreduce algorithm"):
        compile_bucketed_step(4, COUNT, 4, algorithm="warp")


def test_compiler_is_memoized():
    assert _compile() is _compile()
    assert _compile() is not _compile(n_buckets=2)


def test_more_buckets_than_elements_skips_empty_buckets():
    sched = compile_bucketed_step(
        2, 3, 4, forward_time=1e-4, backward_time=1e-4, n_buckets=8
    )
    optims = [s for s in sched.steps if isinstance(s, OptimStep)]
    # Only the 3 non-empty buckets get an optimizer step per rank.
    assert len(optims) == 2 * 3
    assert all(s.hi - s.lo == 1 for s in optims)


def test_step_structure_per_rank():
    sched = _compile()
    for rank in range(4):
        mine = [s for s in sched.steps if s.rank == rank]
        computes = [s for s in mine if isinstance(s, ComputeStep)]
        optims = [s for s in mine if isinstance(s, OptimStep)]
        assert len(computes) == 1 + 4  # forward + one backward per bucket
        assert len(optims) == 4
        # Optimizer ranges tile the gradient exactly.
        covered = sorted((s.lo, s.hi) for s in optims)
        assert covered[0][0] == 0 and covered[-1][1] == COUNT
        assert all(a[1] == b[0] for a, b in zip(covered, covered[1:]))


# -- verification -------------------------------------------------------------

@pytest.mark.parametrize("algorithm", ["multicolor", "ring", "rsag", "binomial"])
def test_staged_step_proves_clean(algorithm):
    report = verify_schedule(
        _compile(algorithm), train_step_contract(4, COUNT)
    )
    assert report.ok, report.format()


def test_critical_path_bounds_simulated_elapsed():
    sched = _compile(memory="data")
    engine, world, comm = build_world(4)
    bufs = [SizeBuffer(COUNT, 4) for _ in range(4)]
    executor = ScheduleExecutor(comm, sched, bufs)
    elapsed = executor.run()
    bounds = analyze_bounds(sched)
    assert 0 < bounds.critical_path_s <= elapsed
    # All compute ran: 4 ranks x (fwd 1ms + bwd 2ms + optim 0.5ms).
    assert executor.stats.compute_seconds == pytest.approx(4 * 3.5e-3)


def test_gpu_exclusivity_floor_in_critical_path():
    # With communication far cheaper than compute, the per-rank compute
    # sum is the binding lower bound and the simulated step matches it.
    sched = compile_bucketed_step(
        2, 64, 4, forward_time=0.05, backward_time=0.1, optim_time=0.01,
        n_buckets=2, algorithm="ring",
    )
    engine, world, comm = build_world(2)
    elapsed = ScheduleExecutor(
        comm, sched, [SizeBuffer(64, 4) for _ in range(2)]
    ).run()
    bounds = analyze_bounds(sched)
    assert bounds.critical_path_s >= 0.16
    assert bounds.critical_path_s <= elapsed


def test_model_step_compiles_and_verifies():
    from repro.core.calibration import compute_model_for
    from repro.models.zoo import get_model

    sched = compile_model_step(
        get_model("googlenet_bn"),
        n_ranks=4,
        algorithm="multicolor",
        compute=compute_model_for("googlenet_bn"),
        n_buckets=4,
        memory="data",
    )
    assert sched.itemsize == 4
    fwd = [
        s for s in sched.steps
        if isinstance(s, ComputeStep) and s.buf is None
    ]
    bwd = [
        s for s in sched.steps
        if isinstance(s, ComputeStep) and s.buf is not None
    ]
    # fwd:bwd = 1:2 FLOP accounting, whole step split across buckets.
    assert sum(s.seconds for s in bwd) == pytest.approx(
        2 * sum(s.seconds for s in fwd)
    )


def test_model_step_fp16_halves_the_wire_payload():
    from repro.core.calibration import compute_model_for
    from repro.models.zoo import get_model

    model = get_model("googlenet_bn")
    compute = compute_model_for("googlenet_bn")
    fp32 = compile_model_step(
        model, n_ranks=4, algorithm="multicolor", compute=compute,
        memory="data",
    )
    fp16 = compile_model_step(
        model, n_ranks=4, algorithm="multicolor", compute=compute,
        fp16=True, memory="data",
    )
    assert fp32.itemsize == 4 and fp16.itemsize == 2
    assert analyze_bounds(fp16).total_wire_bytes < analyze_bounds(
        fp32
    ).total_wire_bytes


# -- parity with the retired bucket-release driver ----------------------------

PARITY_KW = dict(
    n_ranks=4,
    forward_time=0.037,
    backward_time=0.074,
    gradient_bytes=8_000_000,
)


@pytest.mark.parametrize("algorithm,n_buckets", [
    ("multicolor", 1),
    ("multicolor", 8),
    ("ring", 4),
])
def test_unified_dag_matches_legacy_driver(algorithm, n_buckets):
    unified = simulate_bucketed_overlap(
        algorithm=algorithm, n_buckets=n_buckets, **PARITY_KW
    )
    legacy = _legacy_simulate_bucketed_overlap(
        algorithm=algorithm, n_buckets=n_buckets, **PARITY_KW
    )
    assert unified.iteration_time == pytest.approx(
        legacy.iteration_time, rel=0.01
    )
    assert unified.serial_iteration_time == pytest.approx(
        legacy.serial_iteration_time, rel=1e-9
    )


def test_composition_smoke_fp16_overlap_multicolor():
    """fp16 + bucketed overlap + multicolor compose in ONE schedule.

    A comm-dominated step over a fixed 4M-parameter gradient: the unified
    fp16 step (2-byte elements, half the wire bytes) must agree within 1%
    with the manually-composed legacy estimate (bucket-release driver
    over the fp16 payload) — the whatif composition CI gate.
    """
    n_params = 4_000_000
    kw = dict(
        n_ranks=4,
        forward_time=0.002,
        backward_time=0.004,
        n_buckets=8,
        algorithm="multicolor",
    )
    unified = simulate_bucketed_overlap(
        gradient_bytes=2 * n_params, itemsize=2, **kw
    )
    legacy = _legacy_simulate_bucketed_overlap(
        gradient_bytes=2 * n_params, itemsize=2, **kw
    )
    assert unified.iteration_time == pytest.approx(
        legacy.iteration_time, rel=0.01
    )
    # fp16 must actually help: the same parameters at fp32 are slower.
    fp32 = simulate_bucketed_overlap(
        gradient_bytes=4 * n_params, itemsize=4, **kw
    )
    assert unified.iteration_time < fp32.iteration_time
    assert unified.overlap_gain > 0.0
    assert len(unified.bucket_spans) == 8
    assert all(end >= start for start, end in unified.bucket_spans)


# -- the trainer knob ---------------------------------------------------------

def _net_factory(rng):
    from repro.models.nn import Dense, Flatten, Network, ReLU

    return Network([Flatten(), Dense(16, 8, rng), ReLU(), Dense(8, 3, rng)])


def _make_stores(n_learners, seed):
    from repro.data import DIMDStore
    from repro.data.codec import encode_image

    rng = np.random.default_rng(seed)
    stores = []
    for learner in range(n_learners):
        labels = rng.integers(0, 3, size=12)
        records = []
        for lab in labels:
            img = rng.integers(0, 60, size=(1, 4, 4), dtype=np.uint8)
            img[0, int(lab) % 4, :] = 255
            records.append(encode_image(img))
        stores.append(DIMDStore(records, labels, learner=learner))
    return stores


def test_trainer_step_dag_is_bit_identical():
    from repro.train import DistributedSGDTrainer, WarmupStepSchedule

    net_factory, make_stores = _net_factory, _make_stores
    schedule = WarmupStepSchedule(
        batch_per_gpu=1, n_workers=1, base_lr=0.05, reference_batch=1,
        warmup_epochs=0.0,
    )

    def run(**kw):
        with DistributedSGDTrainer(
            net_factory, make_stores(2, seed=7), gpus_per_node=2,
            batch_per_gpu=4, schedule=schedule, momentum=0.9,
            weight_decay=1e-3, reducer="multicolor", seed=7, **kw,
        ) as trainer:
            for _ in range(3):
                trainer.step()
            trainer.check_synchronized()
            return trainer.params()

    plain = run()
    unified = run(
        step_dag=True, step_fwd_time=1e-3, step_bwd_time=2e-3, step_buckets=4
    )
    assert np.array_equal(plain, unified)


def test_trainer_step_dag_rejects_exact_reducer():
    from repro.train import DistributedSGDTrainer

    with pytest.raises(ValueError, match="step_dag"):
        DistributedSGDTrainer(
            _net_factory, _make_stores(1, seed=0),
            reducer="exact", step_dag=True,
        )
