"""Tests for the asynchronous-SGD extension (paper §6 future work)."""

import numpy as np
import pytest

from repro.data import DIMDStore
from repro.data.codec import encode_image
from repro.models.nn import Dense, Flatten, Network, ReLU
from repro.train.async_sgd import AsyncSGDTrainer

N_CLASSES = 3


def net_factory(rng):
    return Network(
        [Flatten(), Dense(16, 12, rng), ReLU(), Dense(12, N_CLASSES, rng)]
    )


def make_stores(n_workers, per_worker=24, seed=0):
    rng = np.random.default_rng(seed)
    stores = []
    for w in range(n_workers):
        labels = rng.integers(0, N_CLASSES, size=per_worker)
        records = []
        for lab in labels:
            img = rng.integers(0, 50, size=(1, 4, 4), dtype=np.uint8)
            img[0, int(lab) % 4, :] = 255
            records.append(encode_image(img))
        stores.append(DIMDStore(records, labels, learner=w))
    return stores


def val_batch(stores):
    xs, ys = [], []
    rng = np.random.default_rng(99)
    for s in stores:
        x, y = s.random_batch(16, rng)
        xs.append(x)
        ys.append(y)
    return np.concatenate(xs), np.concatenate(ys)


def test_async_updates_all_applied():
    stores = make_stores(3)
    trainer = AsyncSGDTrainer(net_factory, stores, seed=1)
    result = trainer.run(iterations_per_worker=5)
    assert result.iterations == 15
    assert len(result.staleness) == 15
    assert result.simulated_seconds > 0
    assert result.updates_per_second > 0


def test_staleness_emerges_with_multiple_workers():
    stores = make_stores(4)
    trainer = AsyncSGDTrainer(net_factory, stores, compute_jitter=0.5, seed=2)
    result = trainer.run(iterations_per_worker=8)
    # With 4 desynchronized workers some pushes must land stale.
    assert result.max_staleness >= 1
    assert result.mean_staleness > 0


def test_single_worker_never_stale():
    stores = make_stores(1)
    trainer = AsyncSGDTrainer(net_factory, stores, seed=3)
    result = trainer.run(iterations_per_worker=10)
    assert result.max_staleness == 0


def test_async_training_learns():
    stores = make_stores(3, per_worker=40, seed=4)
    trainer = AsyncSGDTrainer(net_factory, stores, lr=0.08, seed=4)
    x, y = val_batch(stores)
    before = trainer.evaluate(x, y)
    trainer.run(iterations_per_worker=40)
    after = trainer.evaluate(x, y)
    assert after > before
    assert after > 0.7


def test_staleness_aware_scales_lr_down():
    """With identical seeds, the staleness-aware run takes smaller steps on
    stale pushes, so master weights differ from the plain-async run while
    zero-staleness behaviour is identical."""
    stores_a = make_stores(4, seed=5)
    stores_b = make_stores(4, seed=5)
    plain = AsyncSGDTrainer(
        net_factory, stores_a, compute_jitter=0.5, seed=5, staleness_aware=False
    )
    aware = AsyncSGDTrainer(
        net_factory, stores_b, compute_jitter=0.5, seed=5, staleness_aware=True
    )
    rp = plain.run(iterations_per_worker=6)
    ra = aware.run(iterations_per_worker=6)
    assert rp.staleness == ra.staleness  # same schedule, same staleness
    if rp.max_staleness > 0:
        assert not np.allclose(
            plain.master.get_flat_params(), aware.master.get_flat_params()
        )


def test_deterministic_given_seed():
    r1 = AsyncSGDTrainer(net_factory, make_stores(3, seed=6), seed=7).run(5)
    r2 = AsyncSGDTrainer(net_factory, make_stores(3, seed=6), seed=7).run(5)
    assert r1.staleness == r2.staleness
    assert r1.simulated_seconds == pytest.approx(r2.simulated_seconds)


def test_validation():
    stores = make_stores(2)
    with pytest.raises(ValueError):
        AsyncSGDTrainer(net_factory, [])
    with pytest.raises(ValueError):
        AsyncSGDTrainer(net_factory, stores, batch_size=0)
    with pytest.raises(ValueError):
        AsyncSGDTrainer(net_factory, stores, compute_jitter=1.5)
    trainer = AsyncSGDTrainer(net_factory, stores)
    with pytest.raises(ValueError):
        trainer.run(0)
