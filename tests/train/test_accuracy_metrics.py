"""Tests for the accuracy surrogate and scaling metrics."""

import numpy as np
import pytest

from repro.train import AccuracyModel, scaling_efficiency, speedup, time_to_epoch
from repro.train.accuracy import ACCURACY_MODELS


@pytest.fixture
def resnet():
    return ACCURACY_MODELS["resnet50"]


@pytest.fixture
def googlenet():
    return ACCURACY_MODELS["googlenet_bn"]


def test_peak_top1_matches_table1(resnet, googlenet):
    """Table 1: ResNet 75.99/75.78/75.56 at 2k/4k/8k; GoogleNet
    74.86/74.36/74.19.  The surrogate must land within noise (~0.35)."""
    for batch, paper in ((2048, 75.99), (4096, 75.78), (8192, 75.56)):
        assert resnet.peak_top1(batch) == pytest.approx(paper, abs=0.45)
    for batch, paper in ((2048, 74.86), (4096, 74.36), (8192, 74.19)):
        assert googlenet.peak_top1(batch) == pytest.approx(paper, abs=0.45)


def test_peak_top1_batch_penalty_monotone(resnet):
    # strip noise by averaging over seeds
    avg = [
        np.mean([resnet.peak_top1(b, seed=s) for s in range(20)])
        for b in (2048, 8192, 32768)
    ]
    assert avg[0] > avg[1] > avg[2]


def test_peak_deterministic_per_seed(resnet):
    assert resnet.peak_top1(8192, seed=3) == resnet.peak_top1(8192, seed=3)
    assert resnet.peak_top1(8192, seed=3) != resnet.peak_top1(8192, seed=4)


def test_curve_monotone_nondecreasing(resnet):
    epochs = np.linspace(0, 90, 181)
    curve = resnet.curve(epochs, 2048)
    assert np.all(np.diff(curve) >= -1e-9)
    assert curve[0] == pytest.approx(0.0, abs=1.0)
    assert curve[-1] == pytest.approx(resnet.peak_top1(2048), abs=0.5)


def test_curve_jumps_at_lr_drops(resnet):
    """The staircase: accuracy gains right after epochs 30 and 60."""
    c = resnet.curve([28, 29, 31, 35, 40], 2048)
    pre_drop_slope = c[1] - c[0]
    post_drop_slope = (c[3] - c[2]) / 4
    assert post_drop_slope > pre_drop_slope


def test_error_curve_decreasing(resnet):
    epochs = np.linspace(0, 90, 91)
    err = resnet.error_curve(epochs, 2048)
    assert err[0] > 6.0  # ~ln(1000)
    assert np.all(np.diff(err) <= 1e-9)
    assert err[-1] < 0.5


def test_validation():
    with pytest.raises(ValueError):
        AccuracyModel(name="x", base_top1=0.0)
    with pytest.raises(ValueError):
        AccuracyModel(name="x", base_top1=70, phase_fractions=(0.9, 1.0))
    m = ACCURACY_MODELS["resnet50"]
    with pytest.raises(ValueError):
        m.top1_at(-1, 2048)
    with pytest.raises(ValueError):
        m.peak_top1(0)


def test_speedup_matches_paper_convention():
    """249 -> 155 should read ~60% like Table 1's GoogleNetBN row."""
    assert speedup(249, 155) == pytest.approx(60.6, abs=0.1)
    assert speedup(498, 224) == pytest.approx(122.3, abs=0.1)
    with pytest.raises(ValueError):
        speedup(0, 1)


def test_scaling_efficiency():
    # Perfect scaling: 8 nodes at 100s -> 16 nodes at 50s = 100%.
    assert scaling_efficiency(8, 100, 16, 50) == pytest.approx(100.0)
    assert scaling_efficiency(8, 100, 16, 62.5) == pytest.approx(80.0)
    with pytest.raises(ValueError):
        scaling_efficiency(0, 1, 1, 1)


def test_time_to_epoch():
    assert time_to_epoch(32.0, 90) == pytest.approx(2880.0)
    with pytest.raises(ValueError):
        time_to_epoch(-1, 2)
