"""Silent-data-corruption defense: digests, guard invariants, the fault
registry, and the trainer's detect/attribute/quarantine/repair loop."""

import math

import numpy as np
import pytest

from repro.train import (
    FAULT_KINDS,
    DistributedSGDTrainer,
    FaultPlan,
    FaultSpec,
    corrupt_messages,
    crash,
    sdc_flip,
)
from repro.train.sdc import (
    FLIP_BIT,
    BucketFingerprint,
    SDCGuard,
    SDCVerdict,
    flip_bit,
)
from repro.train.sdc_chaos import (
    _N_STEPS,
    _build_trainer,
    _scripted_reference,
    SDCChaosPoint,
)
from repro.utils.digest import (
    array_fingerprint,
    crc_of_bytes,
    crc_of_ints,
    multiset_digest,
    record_fingerprint,
)


# -- shared digest helpers ----------------------------------------------------

def test_digest_extraction_is_backward_compatible():
    """The data plane's integrity primitives now come from utils.digest."""
    from repro.data import integrity

    blob = b"record payload"
    assert integrity.record_crc(blob) == crc_of_bytes(blob)
    assert integrity.multiset_digest is multiset_digest
    assert integrity.record_fingerprint is record_fingerprint
    assert integrity.crc_of_ints is crc_of_ints


def test_array_fingerprint_catches_below_tolerance_flips():
    """The CRC layer is exact: even a mantissa-LSB flip (numerically far
    below any float tolerance) changes the fingerprint."""
    a = np.linspace(0.0, 1.0, 50)
    before = array_fingerprint(a)
    b = a.copy()
    b.view(np.uint64)[25] ^= np.uint64(1)  # least significant mantissa bit
    assert array_fingerprint(b) != before
    assert abs(float(np.sum(b)) - float(np.sum(a))) < 1e-12


def test_fingerprint_label_distinguishes_buckets():
    a = np.arange(8, dtype=np.float64)
    assert array_fingerprint(a, label=0) != array_fingerprint(a, label=1)


# -- flip_bit -----------------------------------------------------------------

def test_flip_bit_roundtrip_and_magnitude():
    a = np.linspace(0.1, 1.0, 16)
    original = a.copy()
    flip_bit(a, 5)
    assert abs(a[5]) > 1e200  # bit 62 lands in the exponent's top range
    flip_bit(a, 5)
    np.testing.assert_array_equal(a, original)


def test_flip_bit_requires_float64():
    with pytest.raises(ValueError, match="float64"):
        flip_bit(np.zeros(4, dtype=np.float32), 0)


# -- SDCGuard invariants ------------------------------------------------------

N_RANKS = 3
COUNT = 20


def _grads(seed=0):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=COUNT) for _ in range(N_RANKS)]


def _sum_results(grads):
    total = np.sum(grads, axis=0)
    return [total.copy() for _ in range(len(grads))]


def test_guard_clean_pass():
    guard = SDCGuard(COUNT, 4)
    grads = _grads()
    pre = [guard.fingerprint(g) for g in grads]
    verdict = guard.check(pre, grads, _sum_results(grads))
    assert verdict.ok and not verdict.suspects


def test_guard_linearity_names_the_corrupter():
    guard = SDCGuard(COUNT, 4)
    grads = _grads()
    pre = [guard.fingerprint(g) for g in grads]
    honest = grads[1].copy()
    flip_bit(grads[1], 7)  # bucket 1 of 4 (elements 5..9)
    verdict = guard.check(
        pre, grads, _sum_results(grads),
        recompute=lambda slot, lo, hi: honest[lo:hi],
    )
    assert not verdict.ok
    assert verdict.invariant == "linearity"
    assert verdict.suspects == (1,)
    assert verdict.recompute_confirmed is True
    assert "recompute confirms" in verdict.detail


def test_guard_recompute_exonerates_when_fed_data_is_honest():
    guard = SDCGuard(COUNT, 4)
    grads = _grads()
    pre = [guard.fingerprint(g) for g in grads]
    flip_bit(grads[1], 7)
    # A recompute that reproduces the *fed* (flipped) window says the
    # learner honestly computed what it sent: the claim was stale.
    verdict = guard.check(
        pre, grads, _sum_results(grads),
        recompute=lambda slot, lo, hi: grads[1][lo:hi],
    )
    assert not verdict.ok and verdict.suspects == (1,)
    assert verdict.recompute_confirmed is False
    assert "exonerates" in verdict.detail


def test_guard_replica_divergence_minority_vote():
    guard = SDCGuard(COUNT, 2)
    grads = _grads()
    pre = [guard.fingerprint(g) for g in grads]
    results = _sum_results(grads)
    flip_bit(results[2], 3)  # one replica's copy of the sum diverges
    verdict = guard.check(pre, grads, results)
    assert not verdict.ok
    assert verdict.invariant == "replica-divergence"
    assert verdict.suspects == (2,)


def test_guard_inflight_corruption_is_detected_but_unattributed():
    guard = SDCGuard(COUNT, 2)
    grads = _grads()
    pre = [guard.fingerprint(g) for g in grads]
    results = _sum_results(grads)
    for r in results:  # identical wrong sum everywhere: corrupted pre-sum
        flip_bit(r, 3)
    verdict = guard.check(pre, grads, results)
    assert not verdict.ok
    assert verdict.invariant == "linearity"
    assert verdict.suspects == ()
    assert "in-flight" in verdict.detail


def test_guard_nan_poison_is_detected():
    guard = SDCGuard(COUNT, 2)
    grads = _grads()
    pre = [guard.fingerprint(g) for g in grads]
    grads[0][2] = math.nan
    verdict = guard.check(pre, grads, _sum_results(grads))
    assert not verdict.ok and verdict.suspects == (0,)


def test_guard_tolerates_reduction_order_noise():
    """Summing in a different association order must not false-positive."""
    guard = SDCGuard(COUNT, 1)
    grads = _grads(3)
    pre = [guard.fingerprint(g) for g in grads]
    # Pairwise tree sum instead of sequential: same value up to fp error.
    tree = (grads[0] + grads[1]) + grads[2]
    seq = grads[0] + (grads[1] + grads[2])
    # tree and seq may or may not differ in the last ulp — either way the
    # guard must accept the reordered sum.
    verdict = guard.check(pre, grads, [tree.copy() for _ in grads])
    assert verdict.ok, verdict.detail


def test_guard_more_buckets_than_elements():
    guard = SDCGuard(3, 8)
    grads = [np.ones(3) * (r + 1) for r in range(N_RANKS)]
    pre = [guard.fingerprint(g) for g in grads]
    assert guard.n_buckets == 8
    verdict = guard.check(pre, grads, _sum_results(grads))
    assert verdict.ok


def test_guard_validation():
    with pytest.raises(ValueError):
        SDCGuard(0, 1)
    with pytest.raises(ValueError):
        SDCGuard(8, 0)
    with pytest.raises(ValueError):
        SDCGuard(8, 2, tolerance_factor=0.0)


def test_verdict_types_are_frozen():
    fp = BucketFingerprint(0, 0, 4, 1, 2.0, 3.0)
    verdict = SDCVerdict(ok=True)
    with pytest.raises(AttributeError):
        fp.crc = 9
    with pytest.raises(AttributeError):
        verdict.ok = False


# -- fault registry -----------------------------------------------------------

def test_registry_lists_every_kind_with_plane_and_doc():
    assert set(FAULT_KINDS) == {
        "crash", "degrade", "delay", "drop", "corrupt", "sdc"
    }
    assert FAULT_KINDS["sdc"].plane == "compute"
    assert FAULT_KINDS["crash"].plane == "process"
    for kind in FAULT_KINDS.values():
        assert kind.doc and kind.name


def test_registry_predicate_drives_count_validation():
    # Non-payload kinds ignore count entirely (no hardcoded kind tuple).
    spec = FaultSpec("crash", 0, rank=1, count=0)
    assert spec.kind == "crash"
    for kind in ("delay", "drop", "corrupt", "sdc"):
        with pytest.raises(ValueError, match="count"):
            FaultSpec(kind, 0, rank=0, count=0, seconds=1.0)


def test_sdc_spec_validation():
    with pytest.raises(ValueError, match="needs a target rank"):
        FaultSpec("sdc", 0)
    with pytest.raises(ValueError, match="bucket"):
        sdc_flip(0, 1, bucket=-1)
    spec = sdc_flip(1, 2, bucket=3, count=2)
    assert (spec.rank, spec.bucket, spec.count) == (1, 3, 2)
    assert not spec.permanent


# -- trainer end to end -------------------------------------------------------

def test_trainer_detects_attributes_and_quarantines():
    plan = FaultPlan([sdc_flip(1, 1, bucket=0)])
    trainer = _build_trainer(plan=plan, sdc_check=True)
    with trainer:
        results = [trainer.step() for _ in range(_N_STEPS)]
        injected = [e for e in trainer.fault_log if e.kind == "sdc"]
        detected = [e for e in trainer.fault_log if e.kind == "sdc-detect"]
        assert len(injected) == 1 and injected[0].rank == 1
        assert len(detected) == 1 and detected[0].rank == 1
        assert "recompute confirms" in detected[0].detail
        assert results[1].quarantined == (1,)
        assert results[1].n_learners == 2  # survivors applied the step
        assert trainer.n_learners == 2
        trainer.check_synchronized()


def test_quarantine_rerun_is_bit_exact_vs_scripted_shrink():
    plan = FaultPlan([sdc_flip(1, 1, bucket=0)])
    trainer = _build_trainer(plan=plan, sdc_check=True)
    with trainer:
        for _ in range(_N_STEPS):
            trainer.step()
        ref = _scripted_reference(SDCChaosPoint(1, 0, 1), 3)
        np.testing.assert_array_equal(trainer.params(), ref)


def test_clean_run_equivalence_with_detection_on():
    """Fingerprinting is pure bookkeeping: params AND simulated time are
    bit-identical with sdc_check on and off, plain and step-DAG modes."""
    for mode in (dict(), dict(step_dag=True)):
        outcomes = []
        for check in (False, True):
            trainer = _build_trainer(sdc_check=check, **mode)
            with trainer:
                results = [trainer.step() for _ in range(_N_STEPS)]
                outcomes.append(
                    (trainer.params(), [r.sim_time for r in results])
                )
        np.testing.assert_array_equal(outcomes[0][0], outcomes[1][0])
        assert outcomes[0][1] == outcomes[1][1], f"sim times diverge {mode}"


def test_step_dag_mode_detects_and_quarantines_too():
    plan = FaultPlan([sdc_flip(2, 1, bucket=1)])
    trainer = _build_trainer(plan=plan, sdc_check=True, step_dag=True)
    with trainer:
        results = [trainer.step() for _ in range(_N_STEPS)]
        assert results[1].quarantined == (2,)
        assert trainer.n_learners == 2
        trainer.check_synchronized()
        ref = _scripted_reference(SDCChaosPoint(2, 1, 1), 3, step_dag=True)
        np.testing.assert_array_equal(trainer.params(), ref)


def test_inflight_corruption_retries_unattributed(monkeypatch):
    """A strong in-flight flip corrupts the partial sum identically on
    every replica: detected by linearity, unattributable to any rank,
    retried — and the retry (fault exhausted) lands bit-exact on the
    clean trajectory with no learner quarantined."""
    from repro.train.injection import _ArmedFaults

    def strong_corrupt(self, payload):
        if (
            isinstance(payload, np.ndarray)
            and payload.dtype == np.float64
            and payload.size
        ):
            flipped = payload.copy()
            flat = flipped.reshape(-1).view(np.uint64)
            flat[0] ^= np.uint64(1) << np.uint64(FLIP_BIT)
            return flipped
        return payload

    monkeypatch.setattr(_ArmedFaults, "corrupt_payload", strong_corrupt)
    plan = FaultPlan([corrupt_messages(1, count=1)])
    trainer = _build_trainer(plan=plan, sdc_check=True)
    with trainer:
        results = [trainer.step() for _ in range(_N_STEPS)]
        detected = [e for e in trainer.fault_log if e.kind == "sdc-detect"]
        assert len(detected) == 1 and detected[0].rank is None
        assert results[1].retries == 1
        assert all(r.quarantined == () for r in results)
        assert trainer.n_learners == 3
        clean = _build_trainer()
        with clean:
            for _ in range(_N_STEPS):
                clean.step()
            np.testing.assert_array_equal(trainer.params(), clean.params())


def test_sdc_check_rejects_exact_reducer():
    with pytest.raises(ValueError, match="simulated allreduce"):
        _build_trainer(sdc_check=True, reducer="exact")


def test_compute_plane_plan_requires_sdc_check():
    with pytest.raises(ValueError, match="sdc_check is off"):
        _build_trainer(plan=FaultPlan([sdc_flip(1, 1)]))


def test_crash_plan_does_not_require_sdc_check():
    trainer = _build_trainer(plan=FaultPlan([crash(1, 1)]))
    with trainer:
        assert trainer.sdc_check is False


def test_audit_time_requires_step_dag():
    with pytest.raises(ValueError, match="step_dag"):
        _build_trainer(sdc_check=True, sdc_audit_time=1e-3)
    with pytest.raises(ValueError, match="sdc_tolerance"):
        _build_trainer(sdc_check=True, sdc_tolerance=0.0)


def test_audit_time_is_an_explicit_priced_knob():
    """Detection cost enters simulated time only via sdc_audit_time."""
    times = {}
    for audit_time in (0.0, 1e-3):
        trainer = _build_trainer(
            sdc_check=True, step_dag=True, sdc_audit_time=audit_time
        )
        with trainer:
            times[audit_time] = sum(
                trainer.step().sim_time for _ in range(2)
            )
    free = _build_trainer(step_dag=True)
    with free:
        baseline = sum(free.step().sim_time for _ in range(2))
    assert times[0.0] == baseline  # zero-cost default
    assert times[1e-3] > baseline  # priced audit shows up in sim time


# -- the step DAG's audit steps -----------------------------------------------

def test_audited_step_dag_passes_semantic_verification():
    from repro.mpi.verify import train_step_contract, verify_schedule
    from repro.train.stepdag import compile_bucketed_step

    count = 64
    sched = compile_bucketed_step(
        4, count, 8, algorithm="multicolor", n_buckets=2,
        memory="staged", audit=True,
    )
    assert "audit" in sched.name
    audits = [
        s for s in sched.steps if "sdc audit" in getattr(s, "note", "")
    ]
    assert len(audits) == 2 * 4  # one per bucket per rank
    report = verify_schedule(sched, train_step_contract(4, count))
    assert report.ok, report.format()


def test_audit_rejects_negative_time():
    from repro.train.stepdag import compile_bucketed_step

    with pytest.raises(ValueError, match="audit_time"):
        compile_bucketed_step(4, 64, 8, audit=True, audit_time=-1.0)
