"""Tests for the warm-up + step LR schedule (§5 / Goyal et al.)."""

import pytest

from repro.train import WarmupStepSchedule


def paper_schedule(n_nodes=8, batch=64):
    """The paper's setup: batch 64/GPU, 4 GPUs/node."""
    return WarmupStepSchedule(batch_per_gpu=batch, n_workers=n_nodes * 4)


def test_peak_lr_formula():
    """lr = 0.1 * k n / 256 (§5)."""
    sched = paper_schedule(n_nodes=8)  # 32 workers * 64 = 2048
    assert sched.peak_lr == pytest.approx(0.1 * 2048 / 256)
    assert sched.global_batch == 2048


def test_warmup_starts_at_base_and_ramps_linearly():
    sched = paper_schedule()
    assert sched.lr_at(0.0) == pytest.approx(0.1)
    mid = sched.lr_at(2.5)
    assert mid == pytest.approx(0.1 + (sched.peak_lr - 0.1) / 2)
    assert sched.lr_at(5.0) == pytest.approx(sched.peak_lr)


def test_decay_by_10_every_30_epochs():
    sched = paper_schedule()
    assert sched.lr_at(29.9) == pytest.approx(sched.peak_lr)
    assert sched.lr_at(30.0) == pytest.approx(sched.peak_lr * 0.1)
    assert sched.lr_at(60.0) == pytest.approx(sched.peak_lr * 0.01)
    assert sched.lr_at(89.0) == pytest.approx(sched.peak_lr * 0.01)


def test_table2_batch_8k():
    """Table 2: 256 GPUs, batch 32/GPU -> 8k batch, peak lr 3.2."""
    sched = WarmupStepSchedule(batch_per_gpu=32, n_workers=256)
    assert sched.global_batch == 8192
    assert sched.peak_lr == pytest.approx(3.2)


def test_curve_is_monotone_within_phases():
    sched = paper_schedule()
    curve = sched.curve(steps_per_epoch=10)
    assert len(curve) == 900
    # warm-up rises
    assert curve[0] < curve[49]
    # post-warm-up plateau
    assert curve[60] == pytest.approx(curve[290])
    # drops happen
    assert curve[310] == pytest.approx(curve[290] * 0.1)


def test_no_warmup_variant():
    sched = WarmupStepSchedule(batch_per_gpu=8, n_workers=4, warmup_epochs=0.0)
    assert sched.lr_at(0.0) == pytest.approx(sched.peak_lr)


def test_validation():
    with pytest.raises(ValueError):
        WarmupStepSchedule(batch_per_gpu=0, n_workers=1)
    with pytest.raises(ValueError):
        WarmupStepSchedule(batch_per_gpu=1, n_workers=1, base_lr=0)
    with pytest.raises(ValueError):
        WarmupStepSchedule(batch_per_gpu=1, n_workers=1, decay_factor=1.5)
    sched = paper_schedule()
    with pytest.raises(ValueError):
        sched.lr_at(-1)
    with pytest.raises(ValueError):
        sched.curve(0)
