"""Elastic grow: the trainer-level inverse of the elastic shrink.

``DistributedSGDTrainer.grow_learner`` adds a learner at an iteration
boundary: its DIMD partition is funded by the survivors through the
deterministic regrow policy (records conserved), its replicas are seeded
from the live weights (group stays synchronized), and the LR schedule is
rescaled back up — the exact inverse of the shrink's linear rescale, so
a shrink followed by a grow round-trips ``n_workers``.
"""

import numpy as np
import pytest

from repro.data.dimd import DIMDStore, collect_regrow_share
from repro.train import DistributedSGDTrainer, FaultPlan, WarmupStepSchedule, crash

from tests.train.test_elastic import (
    content_multiset,
    make_stores,
    make_trainer,
    net_factory,
)


def worker_schedule(n):
    return WarmupStepSchedule(batch_per_gpu=4, n_workers=n, warmup_epochs=0.0)


# -- growth mechanics ---------------------------------------------------------

def test_grow_conserves_records_and_stays_synchronized():
    trainer = make_trainer(n=3)
    before = content_multiset(trainer)
    for _ in range(2):
        trainer.step()
    slot = trainer.grow_learner()
    assert slot == 3  # appended at the end
    assert trainer.n_learners == 4
    assert trainer.learner_ids == [0, 1, 2, 3]
    # The newcomer's share came out of the survivors: nothing created,
    # nothing lost.
    assert content_multiset(trainer) == before
    assert len(trainer.stores[slot]) > 0
    trainer.check_synchronized()
    for _ in range(2):
        trainer.step()
    trainer.check_synchronized()
    assert content_multiset(trainer) == before


def test_grow_default_id_is_max_plus_one():
    trainer = make_trainer(n=4, plan=FaultPlan([crash(1, 1)]))
    for _ in range(2):
        trainer.step()
    assert trainer.learner_ids == [0, 2, 3]
    trainer.grow_learner()
    assert trainer.learner_ids == [0, 2, 3, 4]


def test_grow_rejects_live_learner_id():
    trainer = make_trainer(n=2)
    with pytest.raises(ValueError, match="already live"):
        trainer.grow_learner(1)


def test_shrink_then_grow_round_trips_lr_schedule():
    trainer = make_trainer(
        n=4, plan=FaultPlan([crash(2, 1)]), schedule=worker_schedule(4),
        lr_rescale="linear",
    )
    for _ in range(2):
        trainer.step()
    assert trainer.schedule.n_workers == 3  # shrink rescaled down
    trainer.grow_learner()
    assert trainer.schedule.n_workers == 4  # grow rescaled back up


def test_grow_lr_rescale_none_keeps_schedule():
    trainer = make_trainer(
        n=2, schedule=worker_schedule(2), lr_rescale="none"
    )
    trainer.step()
    trainer.grow_learner()
    assert trainer.schedule.n_workers == 2


def test_grow_after_shrink_is_deterministic():
    """Two identically-seeded shrink-then-grow runs produce identical
    weights — the property the fleet's scripted-lineage replay rests on."""

    def run():
        trainer = make_trainer(n=3, plan=FaultPlan([crash(1, 1)]))
        for _ in range(2):
            trainer.step()
        trainer.grow_learner()
        for _ in range(3):
            trainer.step()
        return trainer

    a, b = run(), run()
    np.testing.assert_array_equal(a.params(), b.params())
    assert [len(s) for s in a.stores] == [len(s) for s in b.stores]
    a.check_synchronized()


def test_grow_newcomer_seeded_from_live_weights_not_init_rng():
    """The newcomer's replicas are checkpoint-seeded: its weights equal
    the live group's params immediately after the grow, regardless of
    what its init RNG would have produced."""
    trainer = make_trainer(n=2)
    for _ in range(3):
        trainer.step()
    live = trainer.params().copy()
    slot = trainer.grow_learner()
    for replica in trainer.tables[slot].replicas:
        np.testing.assert_array_equal(replica.get_flat_params(), live)


# -- the regrow share policy --------------------------------------------------

def test_collect_regrow_share_conserves_and_balances():
    stores = make_stores(3, per_learner=24)
    total = sorted(p for s in stores for p in s.content_multiset())
    newcomer = collect_regrow_share(stores, learner=9)
    assert newcomer.learner == 9
    assert len(newcomer) == 3 * (24 // 4)  # each survivor gives len//(n+1)
    after = sorted(
        p for s in stores + [newcomer] for p in s.content_multiset()
    )
    assert after == total
    assert newcomer.verify_integrity() == []  # checksums moved intact


def test_collect_regrow_share_requires_survivors():
    with pytest.raises(ValueError, match="no survivors"):
        collect_regrow_share([], learner=0)


def test_collect_regrow_share_rejects_starved_survivors():
    rng = np.random.default_rng(0)
    tiny = DIMDStore([b"x"], rng.integers(0, 2, size=1), learner=0)
    with pytest.raises(ValueError, match="too small"):
        collect_regrow_share([tiny], learner=1)
