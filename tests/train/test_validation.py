"""Tests for distributed validation."""

import numpy as np
import pytest

from repro.cluster import P100, GPUComputeModel
from repro.data import IMAGENET_1K
from repro.models import build_resnet50
from repro.models.nn import Dense, Flatten, Network, ReLU
from repro.train.validation import ValidationTimeModel, distributed_accuracy


def make_nets(n, seed=0):
    rng = np.random.default_rng(seed)
    master = Network([Flatten(), Dense(8, 6, rng), ReLU(), Dense(6, 3, rng)])
    nets = [master]
    for _ in range(n - 1):
        clone = Network(
            [Flatten(), Dense(8, 6, rng), ReLU(), Dense(6, 3, rng)]
        )
        clone.set_flat_params(master.get_flat_params())
        nets.append(clone)
    return nets


def test_distributed_accuracy_matches_single():
    rng = np.random.default_rng(1)
    x = rng.standard_normal((37, 1, 2, 4))  # odd size: ragged shards
    y = rng.integers(0, 3, size=37)
    nets = make_nets(4)
    single = nets[0].accuracy(x, y)
    distributed = distributed_accuracy(nets, x, y)
    assert distributed == pytest.approx(single)


def test_distributed_accuracy_more_replicas_than_samples():
    nets = make_nets(5)
    rng = np.random.default_rng(2)
    x = rng.standard_normal((3, 1, 2, 4))
    y = rng.integers(0, 3, size=3)
    assert distributed_accuracy(nets, x, y) == pytest.approx(
        nets[0].accuracy(x, y)
    )


def test_distributed_accuracy_validation():
    nets = make_nets(2)
    with pytest.raises(ValueError):
        distributed_accuracy([], np.zeros((1, 8)), np.zeros(1, dtype=int))
    with pytest.raises(ValueError):
        distributed_accuracy(nets, np.zeros((2, 1, 2, 4)), np.zeros(3, dtype=int))


def test_validation_pass_time_scales_inverse_with_gpus():
    compute = GPUComputeModel(gpu=P100, efficiency=0.5)
    t8 = ValidationTimeModel(
        model=build_resnet50(), compute=compute, dataset=IMAGENET_1K, n_nodes=8
    ).pass_time()
    t32 = ValidationTimeModel(
        model=build_resnet50(), compute=compute, dataset=IMAGENET_1K, n_nodes=32
    ).pass_time()
    assert t8 == pytest.approx(4 * t32, rel=0.15)  # ceil() granularity
    # 50k images forward-only at 8 nodes: seconds, not minutes.
    assert 1.0 < t8 < 60.0


def test_validation_model_checks():
    compute = GPUComputeModel(gpu=P100, efficiency=0.5)
    with pytest.raises(ValueError):
        ValidationTimeModel(
            model=build_resnet50(), compute=compute,
            dataset=IMAGENET_1K, n_nodes=0,
        )
