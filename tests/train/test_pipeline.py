"""Tests for the epoch-time pipeline model."""

import pytest

from repro.cluster import MINSKY_NODE, ClusterSpec
from repro.core.calibration import compute_model_for
from repro.data import IMAGENET_1K
from repro.models import build_resnet50
from repro.train import EpochTimeModel


def make_model(**kw):
    defaults = dict(
        model=build_resnet50(),
        cluster=ClusterSpec(name="c", n_nodes=8, node=MINSKY_NODE),
        dataset=IMAGENET_1K,
        compute=compute_model_for("resnet50"),
    )
    defaults.update(kw)
    return EpochTimeModel(**defaults)


def test_iterations_per_epoch():
    m = make_model()
    # 1.281M / (8 * 4 * 64) = 625.6 -> 626
    assert m.iterations_per_epoch == 626
    assert m.global_batch == 2048


def test_breakdown_components_positive_and_sum():
    b = make_model().iteration_breakdown()
    d = b.as_dict()
    assert all(v >= 0 for v in d.values())
    assert b.total == pytest.approx(
        b.data_serial + b.data_stall + b.step_time
    )
    assert b.gpu_compute > b.inter_allreduce  # compute-dominated at batch 64


def test_dimd_removes_data_cost():
    with_dimd = make_model(dimd=True).iteration_breakdown()
    without = make_model(dimd=False).iteration_breakdown()
    assert without.data_serial > with_dimd.data_serial * 5
    assert with_dimd.data_stall == 0.0
    assert without.total > with_dimd.total


def test_optimized_dpt_faster():
    opt = make_model(dpt_variant="optimized").iteration_time()
    base = make_model(dpt_variant="baseline").iteration_time()
    assert base > opt


def test_multicolor_beats_default():
    mc = make_model(allreduce_algorithm="multicolor").iteration_time()
    default = make_model(allreduce_algorithm="openmpi_default").iteration_time()
    assert default > mc


def test_compute_factor_scales_gpu_term():
    b1 = make_model().iteration_breakdown()
    b2 = make_model(compute_factor=2.0).iteration_breakdown()
    assert b2.gpu_compute == pytest.approx(2 * b1.gpu_compute)


def test_epoch_time_includes_shuffles():
    base = make_model(shuffles_per_epoch=0).epoch_time()
    with_shuffle = make_model(shuffles_per_epoch=2, shuffle_seconds=3.0).epoch_time()
    assert with_shuffle == pytest.approx(base + 6.0)


def test_single_node_has_no_internode_cost():
    m = make_model(cluster=ClusterSpec(name="c", n_nodes=1, node=MINSKY_NODE))
    assert m.iteration_breakdown().inter_allreduce == 0.0


def test_gradient_override():
    m = make_model(gradient_bytes_override=93_000_000)
    assert m.gradient_bytes == 93_000_000
    assert make_model().gradient_bytes == build_resnet50().gradient_bytes


def test_images_per_second_consistent():
    m = make_model()
    assert m.images_per_second() == pytest.approx(
        m.global_batch / m.iteration_time()
    )


def test_time_for_epochs():
    m = make_model()
    assert m.time_for_epochs(3) == pytest.approx(3 * m.epoch_time())
    with pytest.raises(ValueError):
        m.time_for_epochs(-1)


def test_validation():
    with pytest.raises(ValueError):
        make_model(batch_per_gpu=0)
    with pytest.raises(ValueError):
        make_model(compute_factor=0.5)
    with pytest.raises(ValueError):
        make_model(shuffle_seconds=-1)
