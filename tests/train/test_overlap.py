"""Tests for bucketed comm/compute overlap."""

import pytest

from repro.train.overlap import OverlapResult, bucketed_iteration_time


def linear_allreduce(alpha=0.001, beta=1e-8):
    return lambda nbytes: alpha + nbytes * beta


def test_single_bucket_equals_serial():
    r = bucketed_iteration_time(
        forward_time=0.1,
        backward_time=0.2,
        allreduce_time=linear_allreduce(),
        gradient_bytes=100_000_000,
        n_buckets=1,
    )
    assert r.iteration_time == pytest.approx(r.serial_iteration_time)
    assert r.overlap_gain == pytest.approx(0.0)


def test_many_buckets_hide_communication():
    r = bucketed_iteration_time(
        forward_time=0.1,
        backward_time=0.3,
        allreduce_time=linear_allreduce(alpha=1e-5),
        gradient_bytes=100_000_000,
        n_buckets=20,
    )
    # Comm (1 s total at beta=1e-8? no: 1e8 * 1e-8 = 1 s) dominates; with
    # overlap only the tail past the backward is exposed.
    assert r.iteration_time < r.serial_iteration_time
    assert r.overlap_gain > 0.1


def test_comm_fully_hidden_when_small():
    r = bucketed_iteration_time(
        forward_time=0.1,
        backward_time=0.5,
        allreduce_time=lambda n: 0.01,  # 8 buckets * 10ms = 80ms << bwd
        gradient_bytes=1000,
        n_buckets=8,
    )
    # Exposed communication is only the final bucket's tail.
    assert r.exposed_comm <= 0.01 + 1e-12
    assert r.iteration_time == pytest.approx(0.6 + 0.01 / 8, abs=0.011)


def test_alpha_cost_punishes_excessive_buckets():
    """Per-message overhead makes very many buckets worse again."""
    def ar(nbytes):
        return 0.004 + nbytes * 1e-10  # latency-heavy collective

    few = bucketed_iteration_time(
        forward_time=0.05, backward_time=0.1, allreduce_time=ar,
        gradient_bytes=10_000_000, n_buckets=4,
    )
    many = bucketed_iteration_time(
        forward_time=0.05, backward_time=0.1, allreduce_time=ar,
        gradient_bytes=10_000_000, n_buckets=256,
    )
    assert many.iteration_time > few.iteration_time


def test_iteration_never_faster_than_compute_or_comm():
    r = bucketed_iteration_time(
        forward_time=0.1, backward_time=0.2,
        allreduce_time=linear_allreduce(), gradient_bytes=50_000_000,
        n_buckets=10,
    )
    assert r.iteration_time >= r.compute_time
    assert r.iteration_time >= r.total_comm_time


def test_with_simulated_allreduce_times():
    """Plug the real simulated multicolor collective in as the cost fn."""
    from functools import lru_cache

    from repro.mpi import simulate_allreduce

    @lru_cache(maxsize=None)
    def ar(nbytes):
        return simulate_allreduce(
            8, nbytes, algorithm="multicolor",
            segment_bytes=max(64 * 1024, nbytes // 16),
        ).elapsed

    r = bucketed_iteration_time(
        forward_time=0.110,
        backward_time=0.220,
        allreduce_time=ar,
        gradient_bytes=102_000_000,
        n_buckets=8,
    )
    assert r.iteration_time < r.serial_iteration_time
    assert 0.0 < r.overlap_gain < 0.2


def _result(**kw):
    fields = dict(
        n_buckets=1, compute_time=0.3, total_comm_time=0.1,
        iteration_time=0.35, serial_iteration_time=0.4,
    )
    fields.update(kw)
    return OverlapResult(**fields)


def test_zero_comm_step_has_no_exposure_and_no_gain():
    # A compute-only step (e.g. single-rank "allreduce") must not report
    # phantom exposed communication or a divide-by-nothing gain.
    r = _result(total_comm_time=0.0, iteration_time=0.3,
                serial_iteration_time=0.3)
    assert r.exposed_comm == 0.0
    assert r.overlap_gain == 0.0


def test_zero_compute_step_is_well_defined():
    # Pure-communication step: everything is exposed, gain well-defined.
    r = _result(compute_time=0.0, total_comm_time=0.2, iteration_time=0.2,
                serial_iteration_time=0.2)
    assert r.exposed_comm == pytest.approx(0.2)
    assert r.overlap_gain == pytest.approx(0.0)


def test_degenerate_zero_serial_time_gives_zero_gain():
    r = _result(compute_time=0.0, total_comm_time=0.0, iteration_time=0.0,
                serial_iteration_time=0.0)
    assert r.overlap_gain == 0.0
    assert r.exposed_comm == 0.0


def test_exposed_comm_clamped_against_float_jitter():
    # iteration_time a hair below compute_time (simulator float noise)
    # must clamp to zero, not go negative.
    r = _result(compute_time=0.3, iteration_time=0.3 - 1e-15)
    assert r.exposed_comm == 0.0


def test_validation():
    with pytest.raises(ValueError):
        bucketed_iteration_time(
            forward_time=-1, backward_time=0, allreduce_time=lambda n: 0,
            gradient_bytes=1, n_buckets=1,
        )
    with pytest.raises(ValueError):
        bucketed_iteration_time(
            forward_time=0, backward_time=0, allreduce_time=lambda n: 0,
            gradient_bytes=0, n_buckets=1,
        )
