"""Failure-injection tests: stragglers and degraded links."""

import pytest

from repro.cluster import MINSKY_NODE, ClusterSpec
from repro.core.calibration import compute_model_for
from repro.data import IMAGENET_1K
from repro.models import build_resnet50
from repro.net import CONNECTX5_DUAL, fat_tree
from repro.net.fabric import Fabric
from repro.sim import Engine
from repro.train import EpochTimeModel
from repro.train.faults import degraded_allreduce_time, straggler_epoch_time


def make_model(n_nodes=8):
    return EpochTimeModel(
        model=build_resnet50(),
        cluster=ClusterSpec(name="c", n_nodes=n_nodes, node=MINSKY_NODE),
        dataset=IMAGENET_1K,
        compute=compute_model_for("resnet50"),
    )


def test_one_straggler_throttles_everything():
    model = make_model()
    report = straggler_epoch_time(model, slowdown=2.0, n_stragglers=1)
    # Compute dominates the iteration, so a 2x-slow node costs ~80-95%.
    assert 0.5 < report.penalty < 1.0
    # The penalty is independent of how many nodes straggle (barrier).
    report8 = straggler_epoch_time(model, slowdown=2.0, n_stragglers=8)
    assert report8.degraded_epoch == pytest.approx(report.degraded_epoch)


def test_no_straggler_no_penalty():
    model = make_model()
    report = straggler_epoch_time(model, slowdown=3.0, n_stragglers=0)
    assert report.penalty == 0.0
    report = straggler_epoch_time(model, slowdown=1.0, n_stragglers=4)
    assert report.penalty == 0.0


def test_straggler_validation():
    model = make_model()
    with pytest.raises(ValueError):
        straggler_epoch_time(model, slowdown=0.5)
    with pytest.raises(ValueError):
        straggler_epoch_time(model, slowdown=2.0, n_stragglers=99)


def test_scaled_links_topology():
    topo = fat_tree(8, CONNECTX5_DUAL, hosts_per_leaf=4)
    slow = topo.with_scaled_links(topo.host(0), 0.5)
    h0_links = [l for l in slow.links if "h0" in (l.src, l.dst)]
    ref = [l for l in topo.links if "h0" in (l.src, l.dst)]
    for s, r in zip(h0_links, ref):
        assert s.params.bandwidth == pytest.approx(r.params.bandwidth * 0.5)
    other = [l for l in slow.links if "h1" == l.src][0]
    ref_other = [l for l in topo.links if "h1" == l.src][0]
    assert other.params.bandwidth == ref_other.params.bandwidth
    with pytest.raises(ValueError):
        topo.with_scaled_links("h0", 0.0)


def test_degraded_transfer_takes_longer():
    topo = fat_tree(8, CONNECTX5_DUAL, hosts_per_leaf=4)
    slow = topo.with_scaled_links(topo.host(2), 0.25)
    times = {}
    for name, t in (("healthy", topo), ("degraded", slow)):
        eng = Engine()
        fab = Fabric(eng, t)
        ev = fab.transfer(2, 5, 100e6)
        eng.run(ev)
        times[name] = eng.now
    assert times["degraded"] == pytest.approx(4 * times["healthy"], rel=0.05)


@pytest.mark.parametrize(
    "algorithm,min_ratio",
    [("multicolor", 1.8), ("ring", 1.15)],
)
def test_degraded_node_slows_allreduce(algorithm, min_ratio):
    """A synchronous collective cannot route around one slow member.

    The multicolor trees push the degraded host's full uplink (several
    concurrent color flows), so it feels the 4x link cut almost fully; the
    ring was already rail-capped per hop, so the cut bites less.
    """
    healthy, degraded = degraded_allreduce_time(
        8, 8 << 20, algorithm=algorithm, link_factor=0.25
    )
    assert degraded > healthy * min_ratio


def test_degraded_allreduce_validation():
    with pytest.raises(ValueError):
        degraded_allreduce_time(8, 1024, link_factor=0.0)


@pytest.mark.parametrize("bad_rank", [-1, 8, 99])
def test_degraded_rank_bounds_checked(bad_rank):
    """An out-of-range rank must fail fast with ValueError, not blow up
    deep inside the topology lookup."""
    with pytest.raises(ValueError, match="degraded_rank"):
        degraded_allreduce_time(8, 1024, degraded_rank=bad_rank)


@pytest.mark.parametrize("n_stragglers", [1, 2, 5, 8])
def test_straggler_report_roundtrips_count(n_stragglers):
    """The barrier-max model ignores the straggler count for timing, but
    the report must still carry the requested count through verbatim."""
    model = make_model()
    report = straggler_epoch_time(model, slowdown=2.0, n_stragglers=n_stragglers)
    assert report.n_stragglers == n_stragglers
    # Documented invariant: degraded time is count-independent for >= 1.
    one = straggler_epoch_time(model, slowdown=2.0, n_stragglers=1)
    assert report.degraded_epoch == pytest.approx(one.degraded_epoch)
