"""Algorithm 1 correctness: the headline equivalence tests.

Distributed synchronous SGD with the gradient allreduce must match serial
large-batch SGD exactly — that is the property that makes the paper's
performance work sound without accuracy loss.
"""

import numpy as np
import pytest

from repro.data import DIMDStore
from repro.data.codec import encode_image
from repro.models.nn import Dense, Flatten, Network, ReLU, SGD
from repro.train import DistributedSGDTrainer, WarmupStepSchedule
from repro.utils.rng import rng_for

IMG_SHAPE = (1, 4, 4)
N_CLASSES = 3


def net_factory(rng):
    return Network(
        [Flatten(), Dense(16, 10, rng), ReLU(), Dense(10, N_CLASSES, rng)]
    )


def make_stores(n_learners, per_learner=24, seed=0):
    """Learnable data: each class has a bright stripe at a fixed row."""
    rng = np.random.default_rng(seed)
    stores = []
    for l in range(n_learners):
        labels = rng.integers(0, N_CLASSES, size=per_learner)
        records = []
        for lab in labels:
            img = rng.integers(0, 60, size=IMG_SHAPE, dtype=np.uint8)
            img[0, int(lab) % 4, :] = 255
            records.append(encode_image(img))
        stores.append(DIMDStore(records, labels, learner=l))
    return stores


def flat_schedule(lr=0.05):
    return WarmupStepSchedule(
        batch_per_gpu=1, n_workers=1, base_lr=lr, reference_batch=1, warmup_epochs=0.0
    )


def serial_reference(trainer, n_steps, seed):
    """Replay the exact same batches through one serial network."""
    net = net_factory(rng_for(seed, "init"))
    opt = SGD(net, lr=trainer.schedule.lr_at(0), momentum=trainer.momentum,
              weight_decay=trainer.weight_decay)
    for it in range(n_steps):
        batches = []
        for learner in range(trainer.n_learners):
            rng = rng_for(seed, "batch", learner, it)
            imgs, labels = trainer.stores[learner].random_batch(
                trainer.node_batch, rng
            )
            batches.append((imgs, labels))
        x = np.concatenate([b[0] for b in batches])
        y = np.concatenate([b[1] for b in batches])
        _, g = net.loss_and_grad(x, y)
        opt.lr = trainer.schedule.lr_at(it / trainer.steps_per_epoch)
        opt.step(g)
    return net.get_flat_params()


@pytest.mark.parametrize("reducer", ["exact", "multicolor", "ring"])
def test_distributed_equals_serial_large_batch(reducer):
    """2 learners x 2 GPUs == serial SGD on the concatenated batch."""
    seed = 17
    stores = make_stores(2, seed=seed)
    with DistributedSGDTrainer(
        net_factory,
        stores,
        gpus_per_node=2,
        batch_per_gpu=4,
        schedule=flat_schedule(),
        momentum=0.9,
        weight_decay=1e-3,
        reducer=reducer,
        seed=seed,
    ) as trainer:
        for _ in range(4):
            trainer.step()
        dist_params = trainer.params()
        trainer.check_synchronized()
    ref = serial_reference_params(seed, stores)
    np.testing.assert_allclose(dist_params, ref, rtol=1e-9, atol=1e-11)


def serial_reference_params(seed, stores):
    with DistributedSGDTrainer(
        net_factory,
        stores,
        gpus_per_node=2,
        batch_per_gpu=4,
        schedule=flat_schedule(),
        momentum=0.9,
        weight_decay=1e-3,
        reducer="exact",
        seed=seed,
    ) as t:
        return serial_reference(t, 4, seed)


def test_replicas_stay_synchronized_across_epoch():
    stores = make_stores(3, per_learner=12, seed=4)
    with DistributedSGDTrainer(
        net_factory, stores, gpus_per_node=2, batch_per_gpu=2,
        schedule=flat_schedule(), seed=5,
    ) as trainer:
        trainer.train_epoch()
        trainer.check_synchronized()


def test_baseline_and_optimized_dpt_train_identically():
    seed = 9
    results = {}
    for variant in ("baseline", "optimized"):
        stores = make_stores(2, seed=seed)
        with DistributedSGDTrainer(
            net_factory, stores, gpus_per_node=2, batch_per_gpu=4,
            schedule=flat_schedule(), dpt_variant=variant, seed=seed,
        ) as trainer:
            for _ in range(3):
                trainer.step()
            results[variant] = trainer.params()
    np.testing.assert_allclose(
        results["baseline"], results["optimized"], rtol=1e-10, atol=1e-12
    )


def test_loss_decreases_over_training():
    stores = make_stores(2, per_learner=32, seed=21)
    with DistributedSGDTrainer(
        net_factory, stores, gpus_per_node=2, batch_per_gpu=4,
        schedule=flat_schedule(lr=0.08), momentum=0.9, seed=21,
    ) as trainer:
        losses = [trainer.step().loss for _ in range(30)]
    assert np.mean(losses[-5:]) < np.mean(losses[:5]) * 0.9


def test_shuffle_every_preserves_data_and_training_continues():
    stores = make_stores(3, per_learner=9, seed=8)
    all_before = sorted(
        pair for s in stores for pair in s.content_multiset()
    )
    with DistributedSGDTrainer(
        net_factory, stores, gpus_per_node=1, batch_per_gpu=3,
        schedule=flat_schedule(), seed=8, shuffle_every=2,
    ) as trainer:
        for _ in range(4):
            trainer.step()
        trainer.check_synchronized()
    all_after = sorted(pair for s in stores for pair in s.content_multiset())
    assert all_after == all_before


def test_step_result_fields():
    stores = make_stores(1, seed=2)
    with DistributedSGDTrainer(
        net_factory, stores, gpus_per_node=2, batch_per_gpu=2,
        schedule=flat_schedule(), seed=2,
    ) as trainer:
        r = trainer.step()
    assert r.iteration == 1
    assert r.loss > 0
    assert r.lr == pytest.approx(0.05)
    assert r.grad_norm > 0


def test_trainer_validation():
    stores = make_stores(2)
    with pytest.raises(ValueError, match="unknown reducer"):
        DistributedSGDTrainer(net_factory, stores, reducer="magic")
    with pytest.raises(ValueError, match="dpt_variant"):
        DistributedSGDTrainer(net_factory, stores, dpt_variant="quantum")
    with pytest.raises(ValueError):
        DistributedSGDTrainer(net_factory, [])
    with pytest.raises(ValueError):
        DistributedSGDTrainer(net_factory, stores, batch_per_gpu=0)
