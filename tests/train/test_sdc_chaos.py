"""SDC chaos sweep: every scripted gradient bit-flip is detected,
attributed, quarantined, and repaired bit-exact."""

import pytest

from repro.train.sdc_chaos import (
    _N_BUCKETS,
    _N_LEARNERS,
    _N_STEPS,
    SDCChaosPoint,
    run_sdc_point,
    sdc_chaos_points,
    sdc_chaos_sweep,
)


def test_smoke_sweep_holds_all_invariants():
    report = sdc_chaos_sweep(smoke=True)
    assert report.outcomes, "sweep enumerated no points"
    assert report.all_ok, "\n" + report.format()
    assert report.clean_equivalent


def test_smoke_points_cover_corner_ranks_and_buckets():
    points = sdc_chaos_points(smoke=True)
    assert len(points) == 4
    assert {p.rank for p in points} == {0, _N_LEARNERS - 1}
    assert {p.bucket for p in points} == {0, _N_BUCKETS - 1}
    assert all(p.iteration == 1 for p in points)


def test_full_grid_covers_rank_bucket_iteration_cross_product():
    points = sdc_chaos_points(smoke=False)
    seen = {(p.rank, p.bucket, p.iteration) for p in points}
    assert len(seen) == len(points)
    for rank in range(_N_LEARNERS):
        for bucket in range(_N_BUCKETS):
            for iteration in (0, 1, _N_STEPS - 1):
                assert (rank, bucket, iteration) in seen


def test_max_points_subsamples_the_grid():
    report = sdc_chaos_sweep(max_points=2)
    assert len(report.outcomes) == 2
    assert report.all_ok, "\n" + report.format()


def test_single_point_outcome_carries_label():
    outcome = run_sdc_point(SDCChaosPoint(1, 0, 2))
    assert outcome.ok, outcome.violations
    assert "rank=1" in outcome.point.label()


@pytest.mark.slow
def test_full_sweep_holds_all_invariants():
    report = sdc_chaos_sweep(smoke=False)
    assert len(report.outcomes) == _N_LEARNERS * _N_BUCKETS * 3
    assert report.all_ok, "\n" + report.format()
