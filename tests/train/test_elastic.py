"""Elastic recovery and checkpoint/restore: the headline robustness tests.

* A transient fault (delayed/dropped messages, temporary link degradation)
  is retried with bounded backoff and — because the retry recomputes the
  identical deterministic collective — training matches a fault-free run
  **bit-exactly**.
* A permanent rank crash mid-training shrinks the trainer elastically:
  the run finishes on the survivors, replicas stay synchronized, data is
  conserved, and the final loss lands within tolerance of fault-free.
* Interrupt-at-iteration-k + restore-from-checkpoint reproduces the
  uninterrupted run's weights bit-identically.
"""

import numpy as np
import pytest

from repro.data import DIMDStore
from repro.data.codec import encode_image
from repro.models.nn import Dense, Flatten, Network, ReLU
from repro.train import (
    CollectiveTimeout,
    DistributedSGDTrainer,
    FaultPlan,
    TrainerCheckpoint,
    WarmupStepSchedule,
    corrupt_messages,
    crash,
    degrade_links,
    delay_messages,
    drop_messages,
)

IMG_SHAPE = (1, 4, 4)
N_CLASSES = 3


def net_factory(rng):
    return Network(
        [Flatten(), Dense(16, 10, rng), ReLU(), Dense(10, N_CLASSES, rng)]
    )


def make_stores(n_learners, per_learner=24, seed=0):
    rng = np.random.default_rng(seed)
    stores = []
    for l in range(n_learners):
        labels = rng.integers(0, N_CLASSES, size=per_learner)
        records = []
        for lab in labels:
            img = rng.integers(0, 60, size=IMG_SHAPE, dtype=np.uint8)
            img[0, int(lab) % 4, :] = 255
            records.append(encode_image(img))
        stores.append(DIMDStore(records, labels, learner=l))
    return stores


def flat_schedule(lr=0.05):
    return WarmupStepSchedule(
        batch_per_gpu=1, n_workers=1, base_lr=lr, reference_batch=1,
        warmup_epochs=0.0,
    )


def make_trainer(n=4, seed=7, plan=None, **overrides):
    kwargs = dict(
        gpus_per_node=1, batch_per_gpu=4, schedule=flat_schedule(0.08),
        momentum=0.9, reducer="multicolor", seed=seed,
    )
    kwargs.update(overrides)
    return DistributedSGDTrainer(
        net_factory, make_stores(n, seed=seed), fault_plan=plan, **kwargs
    )


def content_multiset(trainer):
    return sorted(p for s in trainer.stores for p in s.content_multiset())


# -- transient faults ---------------------------------------------------------

def test_transient_delay_is_retried_and_training_is_unperturbed():
    """A delayed message past the watchdog deadline triggers one retry;
    the retried collective recomputes the same sum, so the whole run is
    bit-identical to fault-free."""
    plan = FaultPlan([delay_messages(1, seconds=500.0, rank=0)])
    faulted = make_trainer(plan=plan, collective_timeout=60.0)
    clean = make_trainer(plan=None)
    results = [faulted.step() for _ in range(3)]
    for _ in range(3):
        clean.step()
    assert results[1].retries == 1
    assert results[1].backoff > 0
    assert any("delay" in f for f in results[1].faults)
    assert results[0].retries == results[2].retries == 0
    np.testing.assert_array_equal(faulted.params(), clean.params())
    faulted.check_synchronized()


def test_transient_drop_bounded_backoff_doubles():
    """Two consecutive lost-message attempts: backoff doubles, third
    attempt (fault exhausted) succeeds."""
    plan = FaultPlan([drop_messages(0, rank=1, count=1, max_firings=2)])
    trainer = make_trainer(plan=plan, retry_backoff=0.5, max_retries=3)
    r = trainer.step()
    assert r.retries == 2
    assert r.backoff == pytest.approx(0.5 + 1.0)  # exponential, bounded
    assert sum("drop" in f for f in r.faults) == 2
    trainer.check_synchronized()


def test_transient_degrade_surfaces_in_metrics_without_retry():
    """A temporary link degradation slows the collective but completes —
    no retry, fault surfaced, arithmetic unchanged."""
    plan = FaultPlan([degrade_links(2, 1, factor=0.1, duration=0.001)])
    faulted = make_trainer(plan=plan)
    clean = make_trainer(plan=None)
    results = [faulted.step() for _ in range(3)]
    for _ in range(3):
        clean.step()
    assert results[1].retries == 0
    assert any("degrade" in f for f in results[1].faults)
    np.testing.assert_array_equal(faulted.params(), clean.params())


def test_retry_budget_exhaustion_raises_collective_timeout():
    plan = FaultPlan([drop_messages(0, rank=0, count=1, max_firings=10)])
    trainer = make_trainer(plan=plan, max_retries=2)
    with pytest.raises(CollectiveTimeout, match="timed out"):
        trainer.step()


# -- permanent rank loss ------------------------------------------------------

def test_crash_mid_training_completes_on_survivors():
    """Acceptance: a permanent crash mid-training finishes the run on the
    surviving learners, synchronized, data conserved, and the final loss
    within tolerance of a fault-free run."""
    crash_at, total_steps = 5, 20
    faulted = make_trainer(n=4, plan=FaultPlan([crash(1, crash_at)]))
    before = content_multiset(faulted)
    results = [faulted.step() for _ in range(total_steps)]

    # The shrink happened exactly at the crash iteration, permanently.
    assert [r.n_learners for r in results] == [4] * crash_at + [3] * (
        total_steps - crash_at
    )
    assert faulted.n_learners == 3
    assert faulted.learner_ids == [0, 2, 3]
    assert any("crash" in f for f in results[crash_at].faults)

    # Survivors hold the dead learner's records: nothing was lost.
    assert content_multiset(faulted) == before
    faulted.check_synchronized()

    # Convergence within tolerance of fault-free at the same schedule.
    clean = make_trainer(n=4, plan=None)
    clean_losses = [clean.step().loss for _ in range(total_steps)]
    faulted_tail = np.mean([r.loss for r in results[-5:]])
    clean_tail = np.mean(clean_losses[-5:])
    assert faulted_tail < np.mean([r.loss for r in results[:5]]) * 0.25
    assert faulted_tail == pytest.approx(clean_tail, rel=1.0)


def test_surgical_and_restart_repair_agree_bit_exactly():
    """``collective_repair="surgical"`` (in-attempt recompile for the
    survivors) and ``"restart"`` (raise, shrink, rerun the collective)
    must produce identical parameters — the repair strategy is an
    operational knob, not a numerics knob."""
    crash_at, steps = 3, 8
    surgical = make_trainer(n=4, plan=FaultPlan([crash(1, crash_at)]))
    restart = make_trainer(
        n=4, plan=FaultPlan([crash(1, crash_at)]),
        collective_repair="restart",
    )
    assert surgical.collective_repair == "surgical"  # the default
    for _ in range(steps):
        surgical.step()
        restart.step()
    assert surgical.n_learners == restart.n_learners == 3
    assert surgical.learner_ids == restart.learner_ids == [0, 2, 3]
    np.testing.assert_array_equal(surgical.params(), restart.params())
    surgical.check_synchronized()
    restart.check_synchronized()


def test_invalid_collective_repair_rejected():
    with pytest.raises(ValueError, match="collective_repair"):
        make_trainer(collective_repair="hope")


def test_stall_diagnosis_surfaces_in_fault_log():
    """Each watchdog retry appends a 'stall' fault event naming the
    suspected victim rank and schedule step."""
    plan = FaultPlan([drop_messages(0, rank=1, count=1)])
    trainer = make_trainer(plan=plan, retry_backoff=0.5, max_retries=3)
    r = trainer.step()
    assert r.retries == 1
    stalls = [f for f in r.faults if f.startswith("stall")]
    assert len(stalls) == 1
    assert "rank 1" in stalls[0]
    assert "Step #" in stalls[0]  # names the schedule step
    trainer.check_synchronized()


def test_crash_rescales_schedule_linearly():
    sched = WarmupStepSchedule(
        batch_per_gpu=4, n_workers=4, warmup_epochs=0.0
    )
    trainer = make_trainer(
        n=4, plan=FaultPlan([crash(0, 2)]), schedule=sched, lr_rescale="linear"
    )
    for _ in range(4):
        trainer.step()
    assert trainer.schedule.n_workers == 3  # 4 -> 3 survivors
    assert trainer.schedule.peak_lr == pytest.approx(0.1 * 4 * 3 / 256)


def test_crash_lr_rescale_none_keeps_schedule():
    sched = WarmupStepSchedule(batch_per_gpu=4, n_workers=4, warmup_epochs=0.0)
    trainer = make_trainer(
        n=4, plan=FaultPlan([crash(0, 2)]), schedule=sched, lr_rescale="none"
    )
    for _ in range(4):
        trainer.step()
    assert trainer.schedule.n_workers == 4


def test_two_crashes_shrink_twice():
    plan = FaultPlan([crash(3, 1), crash(0, 3)])
    trainer = make_trainer(n=4, plan=plan)
    before = content_multiset(trainer)
    for _ in range(6):
        trainer.step()
    assert trainer.n_learners == 2
    assert trainer.learner_ids == [1, 2]
    assert content_multiset(trainer) == before
    trainer.check_synchronized()


def test_crash_without_reshuffle_deals_records_contiguously():
    plan = FaultPlan([crash(2, 0)])
    trainer = make_trainer(n=3, plan=plan, reshuffle_on_shrink=False)
    before = content_multiset(trainer)
    trainer.step()
    assert trainer.n_learners == 2
    sizes = [len(s) for s in trainer.stores]
    assert sum(sizes) == 3 * 24
    assert max(sizes) - min(sizes) <= 1  # dead learner's share dealt evenly
    assert content_multiset(trainer) == before


def test_fault_plan_requires_simulated_reducer():
    with pytest.raises(ValueError, match="simulated reducer"):
        make_trainer(plan=FaultPlan([crash(0, 0)]), reducer="exact")


# -- checkpoint / restore -----------------------------------------------------

@pytest.mark.parametrize("reducer", ["exact", "ring"])
def test_checkpoint_resume_is_bit_exact(tmp_path, reducer):
    """Acceptance: interrupt-at-iteration-k + resume == uninterrupted."""
    kwargs = dict(
        gpus_per_node=2, batch_per_gpu=3, schedule=flat_schedule(),
        momentum=0.9, weight_decay=1e-3, reducer=reducer, seed=11,
        shuffle_every=2,
    )
    full = DistributedSGDTrainer(net_factory, make_stores(3, seed=11), **kwargs)
    for _ in range(6):
        full.step()

    half = DistributedSGDTrainer(net_factory, make_stores(3, seed=11), **kwargs)
    for _ in range(3):
        half.step()
    path = tmp_path / "it3.ckpt"
    half.save_checkpoint(path)
    half.close()

    resumed = DistributedSGDTrainer.from_checkpoint(path, net_factory)
    for _ in range(3):
        resumed.step()
    np.testing.assert_array_equal(full.params(), resumed.params())
    np.testing.assert_array_equal(full._velocity, resumed._velocity)
    assert resumed.iteration == 6
    resumed.check_synchronized()


def test_checkpoint_after_elastic_shrink_roundtrips(tmp_path):
    """Checkpointing a shrunken trainer preserves survivor identities and
    the repartitioned stores; the resumed run matches the original."""
    trainer = make_trainer(n=4, plan=FaultPlan([crash(1, 2)]))
    for _ in range(4):
        trainer.step()
    assert trainer.n_learners == 3
    path = tmp_path / "shrunk.ckpt"
    trainer.save_checkpoint(path)

    resumed = DistributedSGDTrainer.from_checkpoint(path, net_factory)
    assert resumed.n_learners == 3
    assert resumed.learner_ids == trainer.learner_ids
    assert content_multiset(resumed) == content_multiset(trainer)
    for _ in range(3):
        trainer.step()
        resumed.step()
    np.testing.assert_array_equal(trainer.params(), resumed.params())


def test_checkpoint_capture_fields_and_load_type_check(tmp_path):
    trainer = make_trainer(n=2)
    trainer.step()
    ckpt = trainer.checkpoint()
    assert isinstance(ckpt, TrainerCheckpoint)
    assert ckpt.iteration == 1
    assert ckpt.learner_ids == [0, 1]
    assert len(ckpt.records) == 2
    # Snapshot is decoupled from the live trainer.
    trainer.step()
    assert ckpt.iteration == 1

    bogus = tmp_path / "bogus.ckpt"
    import pickle

    from repro.train.checkpoint import CheckpointCorrupt

    bogus.write_bytes(pickle.dumps({"not": "a checkpoint"}))
    with pytest.raises(CheckpointCorrupt, match="TrainerCheckpoint"):
        TrainerCheckpoint.load(bogus)


def test_restore_overrides_operational_knobs(tmp_path):
    trainer = make_trainer(n=2)
    trainer.step()
    path = tmp_path / "c.ckpt"
    trainer.save_checkpoint(path)
    resumed = DistributedSGDTrainer.from_checkpoint(
        path, net_factory, reducer="ring", max_retries=7
    )
    assert resumed.reducer == "ring"
    assert resumed.max_retries == 7
    # State untouched by the overrides.
    np.testing.assert_array_equal(resumed.params(), trainer.params())


def test_checkpoint_bit_flip_raises_corrupt(tmp_path):
    from repro.train.checkpoint import CheckpointCorrupt

    trainer = make_trainer(n=2)
    trainer.step()
    path = tmp_path / "c.ckpt"
    trainer.save_checkpoint(path)
    raw = bytearray(path.read_bytes())
    raw[len(raw) // 2] ^= 0x40  # flip a payload bit
    path.write_bytes(bytes(raw))
    with pytest.raises(CheckpointCorrupt, match="CRC32"):
        TrainerCheckpoint.load(path)


def test_checkpoint_truncation_raises_corrupt(tmp_path):
    from repro.train.checkpoint import CheckpointCorrupt

    trainer = make_trainer(n=2)
    trainer.step()
    path = tmp_path / "c.ckpt"
    trainer.save_checkpoint(path)
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) // 2])
    with pytest.raises(CheckpointCorrupt):
        TrainerCheckpoint.load(path)


def test_checkpoint_legacy_headerless_pickle_loads(tmp_path):
    import pickle

    trainer = make_trainer(n=2)
    trainer.step()
    ckpt = trainer.checkpoint()
    path = tmp_path / "legacy.ckpt"
    path.write_bytes(pickle.dumps(ckpt, protocol=pickle.HIGHEST_PROTOCOL))
    loaded = TrainerCheckpoint.load(path)
    assert loaded.iteration == ckpt.iteration
    np.testing.assert_array_equal(loaded.params, ckpt.params)


@pytest.mark.parametrize("keep", [0, 1, 3, 6, 40])
def test_checkpoint_torn_write_raises_corrupt_never_traceback(tmp_path, keep):
    """A torn write — the file cut at any prefix length, including inside
    the magic/header and inside the payload — must surface as
    CheckpointCorrupt, never as a raw pickle/struct stack trace."""
    from repro.train.checkpoint import CheckpointCorrupt

    trainer = make_trainer(n=2)
    trainer.step()
    path = tmp_path / "torn.ckpt"
    trainer.save_checkpoint(path)
    path.write_bytes(path.read_bytes()[:keep])
    with pytest.raises(CheckpointCorrupt):
        TrainerCheckpoint.load(path)


def test_checkpoint_torn_legacy_write_raises_corrupt(tmp_path):
    """Headerless (legacy) files get no CRC, but a truncated one must
    still fail loudly as corruption, not an unpickling traceback."""
    import pickle

    from repro.train.checkpoint import CheckpointCorrupt

    trainer = make_trainer(n=2)
    trainer.step()
    raw = pickle.dumps(trainer.checkpoint(), protocol=pickle.HIGHEST_PROTOCOL)
    path = tmp_path / "legacy-torn.ckpt"
    path.write_bytes(raw[: len(raw) // 3])
    with pytest.raises(CheckpointCorrupt, match="unpickle"):
        TrainerCheckpoint.load(path)


# -- data-plane faults (guarded shuffle) --------------------------------------


def test_crash_during_shuffle_shrinks_and_training_continues():
    """The crash lands inside the shuffle round (armed after the step's
    allreduce): the guard repairs surgically and training finishes on the
    survivors with every record accounted for."""
    trainer = make_trainer(
        n=3, plan=FaultPlan([crash(1, 1)]), shuffle_every=1
    )
    before = content_multiset(trainer)
    r1 = trainer.step()  # allreduce at it=0, shuffle armed at it=1 -> crash
    assert trainer.n_learners == 2
    assert trainer.learner_ids == [0, 2]
    assert any("crash" in f for f in r1.faults)
    assert content_multiset(trainer) == before
    for _ in range(2):
        trainer.step()
    trainer.check_synchronized()
    assert content_multiset(trainer) == before


def test_crash_during_shuffle_restart_mode():
    trainer = make_trainer(
        n=3, plan=FaultPlan([crash(2, 1)]), shuffle_every=1,
        collective_repair="restart",
    )
    before = content_multiset(trainer)
    trainer.step()
    assert trainer.n_learners == 2
    assert trainer.learner_ids == [0, 1]
    assert content_multiset(trainer) == before
    trainer.step()
    trainer.check_synchronized()


def test_corrupt_during_shuffle_rolls_back_and_retries():
    """An in-flight bit flip is caught by the wire checksums: the round
    rolls back, retries clean, and the step reports the corruption."""
    trainer = make_trainer(
        n=3, plan=FaultPlan([corrupt_messages(1, rank=2)]), shuffle_every=1
    )
    before = content_multiset(trainer)
    r1 = trainer.step()
    assert r1.retries >= 1
    assert any("corrupt" in f for f in r1.faults)
    assert trainer.n_learners == 3
    assert content_multiset(trainer) == before
    trainer.step()
    trainer.check_synchronized()


def test_corrupt_shuffle_matches_fault_free_run_bit_exactly():
    """Retry-from-snapshot must reproduce the fault-free shuffle exactly:
    the corrupted attempt leaves no trace in the data or the weights."""
    faulted = make_trainer(
        n=3, plan=FaultPlan([corrupt_messages(1, rank=0)]), shuffle_every=1
    )
    clean = make_trainer(n=3, shuffle_every=1)
    for _ in range(3):
        faulted.step()
        clean.step()
    np.testing.assert_array_equal(faulted.params(), clean.params())
    for a, b in zip(faulted.stores, clean.stores):
        assert a.records == b.records
        np.testing.assert_array_equal(a.labels, b.labels)


def test_trainer_topology_knob_reaches_shuffle():
    trainer = make_trainer(n=3, shuffle_every=1, topology="ring")
    assert trainer.topology == "ring"
    before = content_multiset(trainer)
    for _ in range(2):
        trainer.step()
    trainer.check_synchronized()
    assert content_multiset(trainer) == before
