"""Unit tests for the live fault-injection layer.

Covers the plan/spec model, the fabric's mid-flight link degradation, the
world's message delay/drop interception, and the injector's crash
delivery — each exercised directly against a small simulated world.
"""

import numpy as np
import pytest

from repro.mpi.datatypes import ArrayBuffer
from repro.mpi.runner import build_world
from repro.net.params import LinkParams, NetworkParams
from repro.sim.engine import Interrupt
from repro.train.injection import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RankFailure,
    crash,
    degrade_links,
    delay_messages,
    drop_messages,
)


# -- FaultSpec / FaultPlan ----------------------------------------------------

def test_spec_validation():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultSpec("meteor", 0)
    with pytest.raises(ValueError, match="target rank"):
        FaultSpec("crash", 0, rank=None)
    with pytest.raises(ValueError, match="factor"):
        degrade_links(0, 0, factor=0.0)
    with pytest.raises(ValueError, match="seconds"):
        delay_messages(0, seconds=0.0)
    with pytest.raises(ValueError, match="count"):
        drop_messages(0, count=0)
    with pytest.raises(ValueError, match="iteration"):
        crash(0, -1)
    with pytest.raises(ValueError, match="max_firings"):
        drop_messages(0, max_firings=0)


def test_plan_filters_by_iteration_and_exhaustion():
    a = crash(0, 3)
    b = drop_messages(3, rank=1, max_firings=2)
    c = delay_messages(7, seconds=1.0)
    plan = FaultPlan([a, b, c])
    assert plan.live_specs(3) == [a, b]
    assert plan.live_specs(7) == [c]
    assert plan.live_specs(0) == []
    b.firings = 2
    assert plan.live_specs(3) == [a]
    assert len(plan) == 3
    with pytest.raises(TypeError):
        plan.add("not a spec")


def test_helper_constructors_set_kind():
    assert crash(1, 2).kind == "crash"
    assert degrade_links(1, 2).kind == "degrade"
    assert delay_messages(2, seconds=1.0).kind == "delay"
    assert drop_messages(2).kind == "drop"
    assert crash(1, 2).permanent
    assert not drop_messages(2).permanent


# -- Fabric mid-flight degradation -------------------------------------------

#: Idealized network for exact arithmetic: 1 GB/s, no cap, no latency.
IDEAL_NET = NetworkParams(
    host_link=LinkParams(bandwidth=1e9, latency=0.0),
    fabric_link=LinkParams(bandwidth=1e9, latency=0.0),
    software_overhead=0.0,
)


def test_scale_links_mid_flight_slows_inflight_transfer():
    """Degrading a host's links while a flow is on the wire must stretch
    the remaining bytes, not just future transfers."""
    engine, world, _comm = build_world(4, topology="star", network=IDEAL_NET)
    fabric = world.fabric
    nbytes = 100e6
    healthy_time = nbytes / 1e9  # 0.1 s

    def degrade_midway():
        yield engine.timeout(healthy_time / 2)
        fabric.scale_host_links(0, 0.25)

    ev = fabric.transfer(0, 1, nbytes)
    engine.process(degrade_midway())
    engine.run(ev)
    # First half at full speed, second half at 1/4 speed -> 2.5x total.
    assert engine.now == pytest.approx(healthy_time * 2.5, rel=1e-6)


def test_scale_links_restore_mid_flight():
    engine, world, _comm = build_world(2, topology="star", network=IDEAL_NET)
    fabric = world.fabric
    fabric.scale_host_links(0, 0.5)
    nbytes = 100e6
    healthy_time = nbytes / 1e9

    def restore_midway():
        # Half the *bytes* pass in the first `healthy_time` at half rate.
        yield engine.timeout(healthy_time)
        fabric.scale_host_links(0, 1.0)

    ev = fabric.transfer(0, 1, nbytes)
    engine.process(restore_midway())
    engine.run(ev)
    assert engine.now == pytest.approx(healthy_time * 1.5, rel=1e-6)


def test_scale_links_validation():
    _engine, world, _comm = build_world(2, topology="star")
    with pytest.raises(ValueError, match="positive"):
        world.fabric.scale_host_links(0, 0.0)
    with pytest.raises(ValueError, match="out of range"):
        world.fabric.scale_links([999], 0.5)


# -- MPIWorld delay / drop interception ---------------------------------------

class _OneShotController:
    """Scripted fault_controller: verdict per (src, dst) key."""

    def __init__(self, verdicts):
        self.verdicts = dict(verdicts)
        self.seen = []

    def on_send(self, src, dst, tag, nbytes):
        self.seen.append((src, dst, tag, nbytes))
        return self.verdicts.pop((src, dst), ("deliver", 0.0))


def test_dropped_message_never_arrives():
    engine, world, _comm = build_world(2, topology="star")
    world.fault_controller = _OneShotController({(0, 1): ("drop", 0.0)})
    payload = np.arange(4, dtype=np.float64)
    send_done = world.isend(0, 1, "t", ArrayBuffer(payload))
    recv_ev = world.recv(1, 0, "t")
    engine.run(send_done)  # local completion: the sender is unaware
    assert send_done.ok
    engine.run()  # drain everything — the receive must still be pending
    assert not recv_ev.triggered


def test_delayed_message_arrives_late():
    timings = {}
    for name, verdicts in (
        ("normal", {}),
        ("delayed", {(0, 1): ("delay", 5.0)}),
    ):
        engine, world, _comm = build_world(2, topology="star")
        world.fault_controller = _OneShotController(verdicts)
        world.isend(0, 1, "t", ArrayBuffer(np.ones(8)))
        recv_ev = world.recv(1, 0, "t")
        engine.run(recv_ev)
        timings[name] = engine.now
        assert recv_ev.value.payload.tolist() == [1.0] * 8
    assert timings["delayed"] == pytest.approx(timings["normal"] + 5.0)


def test_drop_only_affects_selected_message():
    engine, world, _comm = build_world(3, topology="star")
    world.fault_controller = _OneShotController({(0, 2): ("drop", 0.0)})
    world.isend(0, 2, "t", ArrayBuffer(np.zeros(2)))
    world.isend(1, 2, "t", ArrayBuffer(np.ones(2)))
    ok_recv = world.recv(2, 1, "t")
    lost_recv = world.recv(2, 0, "t")
    engine.run(ok_recv)
    assert ok_recv.value.source == 1
    engine.run()
    assert not lost_recv.triggered


# -- FaultInjector against real collectives -----------------------------------

def _armed_allreduce(n_ranks, specs, iteration=0, nelem=64):
    from repro.mpi.collectives import ALLREDUCE_ALGORITHMS

    engine, world, comm = build_world(n_ranks, topology="star")
    program = ALLREDUCE_ALGORITHMS["multicolor"]
    buffers = [ArrayBuffer(np.full(nelem, float(r))) for r in range(n_ranks)]
    procs = [
        engine.process(program(comm, r, buffers[r], tag="t"), name=f"r{r}")
        for r in range(n_ranks)
    ]
    injector = FaultInjector(FaultPlan(specs))
    injector.arm(engine, world, procs, iteration)
    return engine, injector, procs, buffers


def test_injected_crash_interrupts_rank_and_fails_collective():
    engine, injector, procs, _buffers = _armed_allreduce(4, [crash(2, 0)])
    with pytest.raises(Interrupt) as exc_info:
        engine.run(engine.all_of(procs))
    cause = exc_info.value.cause
    assert isinstance(cause, RankFailure)
    assert cause.rank == 2
    assert [ev.kind for ev in injector.events] == ["crash"]
    assert injector.plan.specs[0].exhausted


def test_injected_drop_hangs_collective_until_watchdog():
    engine, injector, procs, _buffers = _armed_allreduce(
        4, [drop_messages(0, rank=1, count=1)]
    )
    done = engine.all_of(procs)
    deadline = engine.timeout(60.0)
    engine.run(engine.any_of([done, deadline]))
    assert not done.triggered  # the collective is stuck on the lost payload
    assert engine.now == pytest.approx(60.0)
    assert [ev.kind for ev in injector.events] == ["drop"]


def test_injected_degrade_slows_but_completes():
    nelem = 1 << 18  # 2 MB of float64: bandwidth-dominated timing
    healthy_engine, _inj, procs, buffers = _armed_allreduce(4, [], nelem=nelem)
    healthy_engine.run(healthy_engine.all_of(procs))
    healthy_time = healthy_engine.now
    expected = buffers[0].array.copy()

    engine, injector, procs, buffers = _armed_allreduce(
        4, [degrade_links(1, 0, factor=0.1)], nelem=nelem
    )
    engine.run(engine.all_of(procs))
    assert engine.now > healthy_time * 1.5
    np.testing.assert_allclose(buffers[0].array, expected)
    assert [ev.kind for ev in injector.events] == ["degrade"]


def _arm_world(injector, n_ranks, iteration, nelem=64):
    """Arm an existing injector against a freshly built collective."""
    from repro.mpi.collectives import ALLREDUCE_ALGORITHMS

    engine, world, comm = build_world(n_ranks, topology="star")
    program = ALLREDUCE_ALGORITHMS["multicolor"]
    buffers = [ArrayBuffer(np.full(nelem, float(r))) for r in range(n_ranks)]
    procs = [
        engine.process(program(comm, r, buffers[r], tag="t"), name=f"r{r}")
        for r in range(n_ranks)
    ]
    injector.arm(engine, world, procs, iteration)
    return engine, procs, buffers


def test_arm_rejects_out_of_range_rank_with_clear_error():
    """A spec rank the armed group never had is a user error, caught at
    arm time (not just construction time) with an actionable message."""
    with pytest.raises(ValueError, match="armed group has 3 rank"):
        _armed_allreduce(3, [crash(7, 0)])


def test_stale_spec_after_shrink_is_skipped():
    """Shrink-then-rearm: a spec addressing a rank of the *previous*,
    larger group is stale after the shrink (its target is gone) and must
    be skipped quietly, not raise."""
    injector = FaultInjector(FaultPlan([crash(3, 1)]))
    engine, procs, _ = _arm_world(injector, 4, iteration=0)  # records group=4
    engine.run(engine.all_of(procs))
    assert injector.events == []
    engine, procs, _ = _arm_world(injector, 3, iteration=1)  # group shrank
    engine.run(engine.all_of(procs))  # completes: stale spec skipped
    assert injector.events == []
    assert not injector.plan.specs[0].exhausted


def test_shrunken_group_rank_is_still_a_valid_target():
    """Group rank != world rank after a shrink: a spec for rank 2 of the
    shrunken 3-rank group arms against slot 2 of the current group."""
    injector = FaultInjector(FaultPlan([crash(2, 1)]))
    engine, procs, _ = _arm_world(injector, 4, iteration=0)
    engine.run(engine.all_of(procs))
    engine, procs, _ = _arm_world(injector, 3, iteration=1)
    with pytest.raises(Interrupt) as exc_info:
        engine.run(engine.all_of(procs))
    assert isinstance(exc_info.value.cause, RankFailure)
    assert exc_info.value.cause.rank == 2


def test_injector_event_log_and_since():
    engine, injector, procs, _buffers = _armed_allreduce(
        4, [delay_messages(0, seconds=0.001, rank=0, count=2)]
    )
    engine.run(engine.all_of(procs))
    assert len(injector.events) == 2
    assert injector.events_since(1) == injector.events[1:]
    assert all(ev.kind == "delay" for ev in injector.events)
    assert "held" in str(injector.events[0])


def test_events_since_orders_events_across_retried_attempts():
    """One drop per attempt for two attempts: the log keeps attempt order,
    events_since slices it consistently, and every watchdog diagnosis
    names the dropping sender."""
    from repro.mpi.collectives import ALLREDUCE_COMPILERS
    from repro.mpi.schedule import run_guarded

    injector = FaultInjector(
        FaultPlan([drop_messages(0, rank=1, count=1, max_firings=2)])
    )
    arrays = [np.full(8, float(r + 1)) for r in range(4)]
    buffers, telemetry = run_guarded(
        ALLREDUCE_COMPILERS["ring"],
        lambda: [ArrayBuffer(a.copy()) for a in arrays],
        timeout=5.0,
        max_retries=3,
        retry_backoff=0.5,
        fault_injector=injector,
        iteration=0,
    )
    # Two dropped attempts, then a clean third: two events in attempt order.
    assert [ev.kind for ev in injector.events] == ["drop", "drop"]
    assert telemetry.fault_events == injector.events
    assert injector.events_since(0) == injector.events
    assert injector.events_since(1) == injector.events[1:]
    assert injector.events_since(2) == []
    assert telemetry.retries == 2
    assert telemetry.backoff == pytest.approx(0.5 + 1.0)
    assert [d.suspect_rank for d in telemetry.diagnoses] == [1, 1]
    np.testing.assert_array_equal(buffers[0].array, np.sum(arrays, axis=0))


def test_fault_event_str_names_rank_and_step():
    ev = FaultEvent("stall", 2, 1, 0.5, "suspected victim", step="RecvReduceStep #7")
    s = str(ev)
    assert "rank 1" in s
    assert "RecvReduceStep #7" in s
