"""Tests for epoch sampling and the shuffle-diversity study."""

import numpy as np
import pytest

from repro.data.sampler import (
    DiversityReport,
    EpochSampler,
    sampling_diversity_study,
)


def test_epoch_sampler_covers_everything_each_epoch():
    sampler = EpochSampler(12, 4, seed=1)
    seen = np.concatenate([sampler.next_batch() for _ in range(3)])
    assert sorted(seen.tolist()) == list(range(12))
    assert sampler.epoch == 0
    sampler.next_batch()
    assert sampler.epoch == 1


def test_epoch_sampler_batches_disjoint_within_epoch():
    sampler = EpochSampler(20, 5, seed=2)
    batches = [set(sampler.next_batch().tolist()) for _ in range(4)]
    for i in range(4):
        for j in range(i + 1, 4):
            assert not (batches[i] & batches[j])


def test_epoch_sampler_new_permutation_per_epoch():
    sampler = EpochSampler(16, 16, seed=3)
    first = sampler.next_batch().tolist()
    second = sampler.next_batch().tolist()
    assert first != second
    assert sorted(first) == sorted(second)


def test_epoch_sampler_validation():
    with pytest.raises(ValueError):
        EpochSampler(0, 1)
    with pytest.raises(ValueError):
        EpochSampler(4, 8)


def test_shuffle_restores_class_diversity():
    """The headline: on a class-sorted file, per-node batches without
    shuffling see few classes; periodic shuffling approaches the global
    class mix."""
    kwargs = dict(
        n_learners=8, records_per_learner=256, n_classes=64,
        batch_per_learner=32, steps=48, seed=5,
    )
    frozen = sampling_diversity_study(shuffle_every=None, **kwargs)
    shuffled = sampling_diversity_study(shuffle_every=4, **kwargs)
    # Contiguous shards of a 64-class sorted file hold ~8 classes each.
    assert frozen.mean_classes_per_node_batch < 12
    assert shuffled.mean_classes_per_node_batch > 20
    assert shuffled.class_diversity > 2 * frozen.class_diversity


def test_more_frequent_shuffles_never_reduce_diversity():
    kwargs = dict(
        n_learners=4, records_per_learner=128, n_classes=32,
        batch_per_learner=16, steps=32, seed=6,
    )
    diversities = [
        sampling_diversity_study(shuffle_every=se, **kwargs).class_diversity
        for se in (None, 16, 4, 1)
    ]
    assert diversities[0] < diversities[-1]
    assert diversities == sorted(diversities) or (
        max(diversities[1:]) - min(diversities[1:]) < 0.15
    )


def test_coverage_unaffected_by_shuffle():
    """Uniform with-replacement draws cover the dataset at the same rate
    with or without shuffling (the shuffle fixes *composition*, not
    coverage) — a subtle point worth pinning down."""
    kwargs = dict(
        n_learners=4, records_per_learner=128, n_classes=16,
        batch_per_learner=32, steps=16, seed=7,
    )
    frozen = sampling_diversity_study(shuffle_every=None, **kwargs)
    shuffled = sampling_diversity_study(shuffle_every=2, **kwargs)
    assert frozen.record_coverage == pytest.approx(
        shuffled.record_coverage, abs=0.05
    )


def test_study_deterministic():
    a = sampling_diversity_study(seed=9, steps=8)
    b = sampling_diversity_study(seed=9, steps=8)
    assert a == b


def test_study_validation():
    with pytest.raises(ValueError):
        sampling_diversity_study(n_learners=0)
    with pytest.raises(ValueError):
        sampling_diversity_study(shuffle_every=0)
    with pytest.raises(ValueError):
        DiversityReport("x", 1.0, 4, 1.5)
