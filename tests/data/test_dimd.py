"""Tests for the DIMD store, group layouts and partitioned load."""

import numpy as np
import pytest

from repro.data import (
    DIMDStore,
    GroupLayout,
    RecordReader,
    build_synthetic_record_file,
    partitioned_load,
)
from repro.data.codec import encode_image


def make_store(n=10, seed=0, learner=0):
    rng = np.random.default_rng(seed)
    records = [
        encode_image(rng.integers(0, 256, size=(1, 4, 4), dtype=np.uint8))
        for _ in range(n)
    ]
    labels = rng.integers(0, 5, size=n)
    return DIMDStore(records, labels, learner=learner)


def test_group_layout_single_group():
    layout = GroupLayout(8, 1)
    assert layout.learners_per_group == 8
    assert layout.group_of(5) == 0
    assert layout.position_in_group(5) == 5
    assert layout.group_members(0) == list(range(8))


def test_group_layout_four_groups():
    layout = GroupLayout(32, 4)
    assert layout.learners_per_group == 8
    assert layout.group_of(9) == 1
    assert layout.position_in_group(9) == 1
    assert layout.group_members(3) == list(range(24, 32))


def test_group_layout_validation():
    with pytest.raises(ValueError):
        GroupLayout(8, 3)
    with pytest.raises(ValueError):
        GroupLayout(8, 9)
    with pytest.raises(ValueError):
        GroupLayout(0, 1)
    layout = GroupLayout(4, 2)
    with pytest.raises(ValueError):
        layout.group_of(4)
    with pytest.raises(ValueError):
        layout.group_members(2)


def test_store_basics():
    store = make_store(10)
    assert len(store) == 10
    assert store.nbytes == sum(len(r) for r in store.records)


def test_store_random_batch_decodes():
    store = make_store(10)
    rng = np.random.default_rng(1)
    imgs, labels = store.random_batch(4, rng)
    assert imgs.shape == (4, 1, 4, 4)
    assert labels.shape == (4,)
    assert imgs.max() <= 1.0


def test_store_random_batch_seeded():
    store = make_store(10)
    a = store.random_batch_ids(6, np.random.default_rng(3))
    b = store.random_batch_ids(6, np.random.default_rng(3))
    np.testing.assert_array_equal(a, b)


def test_store_local_permute_preserves_pairs():
    store = make_store(12)
    before = store.content_multiset()
    store.local_permute(np.random.default_rng(5))
    assert store.content_multiset() == before
    # and it actually permutes (overwhelmingly likely for n=12)
    store2 = make_store(12)
    store.local_permute(np.random.default_rng(6))
    assert store.records != store2.records


def test_store_validation():
    with pytest.raises(ValueError):
        DIMDStore([b"a"], np.array([1, 2]))
    store = make_store(3)
    with pytest.raises(ValueError):
        store.random_batch(0, np.random.default_rng(0))
    empty = DIMDStore([], np.array([], dtype=np.int64))
    with pytest.raises(ValueError):
        empty.random_batch(1, np.random.default_rng(0))


def test_partitioned_load_covers_dataset(tmp_path):
    ds, base = build_synthetic_record_file(tmp_path / "p", 20, 4, seed=2)
    layout = GroupLayout(4, 1)
    with RecordReader(base) as reader:
        stores = [partitioned_load(reader, l, layout) for l in range(4)]
    assert sum(len(s) for s in stores) == 20
    assert all(len(s) == 5 for s in stores)
    # Concatenated labels in order match the dataset.
    all_labels = np.concatenate([s.labels for s in stores])
    np.testing.assert_array_equal(all_labels, ds.labels)


def test_partitioned_load_groups_replicate(tmp_path):
    _ds, base = build_synthetic_record_file(tmp_path / "g", 12, 3, seed=3)
    layout = GroupLayout(4, 2)  # 2 groups of 2 learners
    with RecordReader(base) as reader:
        stores = [partitioned_load(reader, l, layout) for l in range(4)]
    # learners 0/2 hold the same slice (position 0 of each group).
    assert stores[0].records == stores[2].records
    assert stores[1].records == stores[3].records
    assert len(stores[0]) + len(stores[1]) == 12
