"""Tests for the DIMD store, group layouts and partitioned load."""

import numpy as np
import pytest

from repro.data import (
    DIMDStore,
    GroupLayout,
    RecordReader,
    build_synthetic_record_file,
    partitioned_load,
)
from repro.data.codec import encode_image


def make_store(n=10, seed=0, learner=0):
    rng = np.random.default_rng(seed)
    records = [
        encode_image(rng.integers(0, 256, size=(1, 4, 4), dtype=np.uint8))
        for _ in range(n)
    ]
    labels = rng.integers(0, 5, size=n)
    return DIMDStore(records, labels, learner=learner)


def test_group_layout_single_group():
    layout = GroupLayout(8, 1)
    assert layout.learners_per_group == 8
    assert layout.group_of(5) == 0
    assert layout.position_in_group(5) == 5
    assert layout.group_members(0) == list(range(8))


def test_group_layout_four_groups():
    layout = GroupLayout(32, 4)
    assert layout.learners_per_group == 8
    assert layout.group_of(9) == 1
    assert layout.position_in_group(9) == 1
    assert layout.group_members(3) == list(range(24, 32))


def test_group_layout_validation():
    with pytest.raises(ValueError):
        GroupLayout(8, 3)
    with pytest.raises(ValueError):
        GroupLayout(8, 9)
    with pytest.raises(ValueError):
        GroupLayout(0, 1)
    layout = GroupLayout(4, 2)
    with pytest.raises(ValueError):
        layout.group_of(4)
    with pytest.raises(ValueError):
        layout.group_members(2)


def test_store_basics():
    store = make_store(10)
    assert len(store) == 10
    assert store.nbytes == sum(len(r) for r in store.records)


def test_store_random_batch_decodes():
    store = make_store(10)
    rng = np.random.default_rng(1)
    imgs, labels = store.random_batch(4, rng)
    assert imgs.shape == (4, 1, 4, 4)
    assert labels.shape == (4,)
    assert imgs.max() <= 1.0


def test_store_random_batch_seeded():
    store = make_store(10)
    a = store.random_batch_ids(6, np.random.default_rng(3))
    b = store.random_batch_ids(6, np.random.default_rng(3))
    np.testing.assert_array_equal(a, b)


def test_store_local_permute_preserves_pairs():
    store = make_store(12)
    before = store.content_multiset()
    store.local_permute(np.random.default_rng(5))
    assert store.content_multiset() == before
    # and it actually permutes (overwhelmingly likely for n=12)
    store2 = make_store(12)
    store.local_permute(np.random.default_rng(6))
    assert store.records != store2.records


def test_store_validation():
    with pytest.raises(ValueError):
        DIMDStore([b"a"], np.array([1, 2]))
    store = make_store(3)
    with pytest.raises(ValueError):
        store.random_batch(0, np.random.default_rng(0))
    empty = DIMDStore([], np.array([], dtype=np.int64))
    with pytest.raises(ValueError):
        empty.random_batch(1, np.random.default_rng(0))


def test_partitioned_load_covers_dataset(tmp_path):
    ds, base = build_synthetic_record_file(tmp_path / "p", 20, 4, seed=2)
    layout = GroupLayout(4, 1)
    with RecordReader(base) as reader:
        stores = [partitioned_load(reader, l, layout) for l in range(4)]
    assert sum(len(s) for s in stores) == 20
    assert all(len(s) == 5 for s in stores)
    # Concatenated labels in order match the dataset.
    all_labels = np.concatenate([s.labels for s in stores])
    np.testing.assert_array_equal(all_labels, ds.labels)


def test_partitioned_load_groups_replicate(tmp_path):
    _ds, base = build_synthetic_record_file(tmp_path / "g", 12, 3, seed=3)
    layout = GroupLayout(4, 2)  # 2 groups of 2 learners
    with RecordReader(base) as reader:
        stores = [partitioned_load(reader, l, layout) for l in range(4)]
    # learners 0/2 hold the same slice (position 0 of each group).
    assert stores[0].records == stores[2].records
    assert stores[1].records == stores[3].records
    assert len(stores[0]) + len(stores[1]) == 12


# -- checksums & integrity ----------------------------------------------------


def test_store_checksums_match_records():
    from repro.data.integrity import record_crc

    store = make_store(6)
    assert store.checksums.dtype == np.int64
    assert store.checksums.tolist() == [record_crc(r) for r in store.records]


def test_store_checksums_follow_extend_and_permute():
    from repro.data.integrity import record_crc

    a = make_store(5, seed=1)
    b = make_store(4, seed=2, learner=1)
    a.extend(b.records, b.labels, b.checksums)
    assert len(a.checksums) == 9
    a.local_permute(np.random.default_rng(3))
    assert a.checksums.tolist() == [record_crc(r) for r in a.records]


def test_verify_integrity_quarantines_rotted_record():
    store = make_store(8, seed=4)
    victim = store.records[3]
    store.records[3] = bytes([victim[0] ^ 0xFF]) + victim[1:]
    bad = store.verify_integrity()
    assert len(bad) == 1
    assert len(store) == 7
    assert bad[0].label == int(store.quarantined[0].label)
    assert store.quarantined == bad
    # A clean store reports nothing and loses nothing.
    assert store.verify_integrity() == []
    assert len(store) == 7


def test_checksum_length_mismatch_rejected():
    with pytest.raises(ValueError):
        DIMDStore([b"a", b"b"], np.array([0, 1]), checksums=np.array([1]))


# -- shuffle transaction ------------------------------------------------------


def test_txn_commit_then_finalize():
    store = make_store(6, seed=5)
    other = make_store(6, seed=6)
    store.begin_shuffle(0)
    assert store.in_transaction
    store.commit_shuffle(0, other.records, other.labels, other.checksums)
    assert not store.in_transaction  # committed, awaiting finalize
    store.finalize_shuffle(0)
    assert store.records == other.records
    assert store._txn is None


def test_txn_rollback_before_commit_is_noop():
    store = make_store(6, seed=7)
    before = store.content_multiset()
    store.begin_shuffle(0)
    assert store.rollback_shuffle(0) is False
    assert store.content_multiset() == before
    assert not store.in_transaction


def test_txn_rollback_after_commit_restores_snapshot():
    store = make_store(6, seed=8)
    before = store.content_multiset()
    other = make_store(6, seed=9)
    store.begin_shuffle(0)
    store.commit_shuffle(0, other.records, other.labels, other.checksums)
    assert store.rollback_shuffle(0) is True
    assert store.content_multiset() == before


def test_txn_rollback_truncates_quarantined():
    from repro.data import QuarantinedRecord

    store = make_store(6, seed=10)
    store.begin_shuffle(0)
    q = QuarantinedRecord(b"bad", 0, 1, 2, "in-flight")
    other = make_store(6, seed=11)
    store.commit_shuffle(
        0, other.records, other.labels, other.checksums, quarantined=[q]
    )
    assert store.quarantined == [q]
    store.rollback_shuffle(0)
    assert store.quarantined == []


def test_txn_begin_is_idempotent_within_round():
    store = make_store(6, seed=12)
    before = store.content_multiset()
    store.begin_shuffle(3)
    store.local_permute(np.random.default_rng(0))  # mutate after snapshot
    store.begin_shuffle(3)  # re-entry must keep the original snapshot
    other = make_store(6, seed=13)
    store.commit_shuffle(3, other.records, other.labels, other.checksums)
    store.rollback_shuffle(3)
    assert store.content_multiset() == before


def test_txn_commit_wrong_round_rejected():
    store = make_store(4, seed=14)
    store.begin_shuffle(1)
    with pytest.raises(ValueError):
        store.commit_shuffle(2, [], np.array([], dtype=np.int64))


def test_txn_stale_round_replaced_by_fresh_begin():
    store = make_store(4, seed=15)
    store.begin_shuffle(0)
    other = make_store(4, seed=16)
    store.commit_shuffle(0, other.records, other.labels, other.checksums)
    # Next round begins without finalize: fresh snapshot of current state.
    current = store.content_multiset()
    store.begin_shuffle(1)
    third = make_store(4, seed=17)
    store.commit_shuffle(1, third.records, third.labels, third.checksums)
    store.rollback_shuffle(1)
    assert store.content_multiset() == current


# -- deal_records -------------------------------------------------------------


def test_deal_records_contiguous_and_conserving():
    dead = make_store(7, seed=18, learner=2)
    survivors = [make_store(4, seed=19 + i, learner=i) for i in range(3)]
    before = sorted(
        p
        for s in [dead, *survivors]
        for p in s.content_multiset()
    )
    deal_before = [len(s) for s in survivors]
    from repro.data import deal_records

    deal_records(dead, survivors)
    after = sorted(p for s in survivors for p in s.content_multiset())
    assert after == before
    # chunk_ranges(7, 3) -> 3/2/2 contiguous slices, in order.
    gains = [len(s) - b for s, b in zip(survivors, deal_before)]
    assert gains == [3, 2, 2]
    assert survivors[0].records[-3:] == dead.records[:3]


def test_deal_records_requires_survivors():
    from repro.data import deal_records

    with pytest.raises(ValueError):
        deal_records(make_store(3), [])
