"""Tests for the file-backed loader and the augmentation pipeline."""

import numpy as np
import pytest

from repro.cluster import NFS_STORAGE, StorageDevice, StorageSpec
from repro.data import FileBackedLoader, augment_batch, normalize_batch
from repro.data.augment import random_resized_crop
from repro.sim import Engine


def make_loader(engine, spec=None, **kw):
    device = StorageDevice(engine, spec or NFS_STORAGE)
    defaults = dict(batch_images=64, mean_image_bytes=110_000.0)
    defaults.update(kw)
    return FileBackedLoader(engine, device, **defaults)


def test_loader_produces_requested_batches():
    eng = Engine()
    loader = make_loader(eng)
    loader.start(n_batches=5)
    got = []

    def consumer():
        for _ in range(5):
            b = yield loader.next_batch()
            got.append((eng.now, b))

    eng.run(eng.process(consumer()))
    assert len(got) == 5
    assert got[0][0] > 0


def test_loader_throughput_is_storage_bound():
    """Consuming batches as fast as possible should take ~n * service time."""
    eng = Engine()
    loader = make_loader(eng)
    n = 6

    def consumer():
        for _ in range(n):
            yield loader.next_batch()

    loader.start(n)
    eng.run(eng.process(consumer()))
    expected = n * loader.batch_service_time()
    assert eng.now == pytest.approx(expected, rel=0.35)


def test_loader_prefetch_hides_io_behind_compute():
    """If compute per batch exceeds I/O per batch, the pipeline is
    compute-bound: total ~ n * compute."""
    eng = Engine()
    fast = StorageSpec(name="fast", sequential_bandwidth=10e9, random_iops=1e6)
    loader = make_loader(eng, spec=fast)
    io_time = loader.batch_service_time()
    compute = 10 * io_time
    n = 4

    def gpu():
        for _ in range(n):
            yield loader.next_batch()
            yield eng.timeout(compute)

    loader.start(n)
    eng.run(eng.process(gpu()))
    assert eng.now == pytest.approx(n * compute + io_time, rel=0.1)


def test_loader_validation():
    eng = Engine()
    with pytest.raises(ValueError):
        make_loader(eng, batch_images=0)
    loader = make_loader(eng)
    with pytest.raises(ValueError):
        loader.start(0)
    loader.start(1)
    with pytest.raises(RuntimeError):
        loader.start(1)


def test_random_resized_crop_shape_and_determinism():
    rng1 = np.random.default_rng(0)
    rng2 = np.random.default_rng(0)
    img = np.arange(3 * 16 * 16, dtype=float).reshape(3, 16, 16)
    a = random_resized_crop(img, 8, rng1)
    b = random_resized_crop(img, 8, rng2)
    assert a.shape == (3, 8, 8)
    np.testing.assert_array_equal(a, b)


def test_random_resized_crop_values_from_source():
    rng = np.random.default_rng(1)
    img = np.random.default_rng(2).standard_normal((3, 12, 12))
    crop = random_resized_crop(img, 6, rng)
    assert np.isin(crop, img).all()


def test_augment_batch_shapes():
    rng = np.random.default_rng(3)
    batch = np.random.default_rng(4).random((5, 3, 16, 16))
    out = augment_batch(batch, rng, out_size=8)
    assert out.shape == (5, 3, 8, 8)


def test_augment_flip_probability():
    rng = np.random.default_rng(5)
    batch = np.random.default_rng(6).random((64, 1, 4, 4))
    out = augment_batch(batch, rng, flip_prob=1.0, out_size=4)
    assert out.shape == batch.shape


def test_normalize_batch_standardizes():
    batch = np.random.default_rng(7).random((16, 3, 8, 8)) * 7 + 3
    out = normalize_batch(batch)
    np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-10)
    np.testing.assert_allclose(out.std(axis=(0, 2, 3)), 1.0, rtol=1e-6)


def test_normalize_batch_explicit_stats():
    batch = np.ones((2, 2, 2, 2))
    out = normalize_batch(batch, mean=np.array([1.0, 0.0]), std=np.array([1.0, 2.0]))
    assert out[0, 0, 0, 0] == pytest.approx(0.0)
    assert out[0, 1, 0, 0] == pytest.approx(0.5)


def test_augment_validation():
    rng = np.random.default_rng(8)
    with pytest.raises(ValueError):
        augment_batch(np.zeros((3, 4, 4)), rng)
    with pytest.raises(ValueError):
        normalize_batch(np.zeros((2, 2)), None, None)
    with pytest.raises(ValueError):
        random_resized_crop(np.zeros((3, 4, 4)), 0, rng)
    with pytest.raises(ValueError):
        normalize_batch(np.zeros((1, 2, 2, 2)), mean=np.zeros(3), std=np.ones(3))
