"""Tests for synthetic datasets and full-scale dataset specs."""

import numpy as np
import pytest

from repro.data import (
    IMAGENET_1K,
    IMAGENET_22K,
    DatasetSpec,
    SyntheticImageDataset,
    build_synthetic_record_file,
)


def test_imagenet_specs_match_paper():
    """§4.1/§5.2: 1.28M/7M images, 1k/22k classes, 70/220 GB files."""
    assert IMAGENET_1K.n_classes == 1000
    assert 1.2e6 < IMAGENET_1K.n_images < 1.3e6
    assert IMAGENET_1K.record_file_bytes == 70e9
    assert IMAGENET_22K.n_classes == 22_000
    assert IMAGENET_22K.n_images == 7_000_000
    assert IMAGENET_22K.record_file_bytes == 220e9


def test_partition_bytes_single_group():
    # 32 learners, one group: each holds 1/32 of the file.
    per = IMAGENET_22K.partition_bytes(32, 1)
    assert per == pytest.approx(220e9 / 32)


def test_partition_bytes_grouped():
    # 32 learners in 4 groups: 8 learners share a copy -> 1/8 each.
    per = IMAGENET_22K.partition_bytes(32, 4)
    assert per == pytest.approx(220e9 / 8)
    # full replication
    assert IMAGENET_1K.partition_bytes(8, 8) == pytest.approx(70e9)


def test_partition_bytes_validation():
    with pytest.raises(ValueError):
        IMAGENET_1K.partition_bytes(8, 3)
    with pytest.raises(ValueError):
        IMAGENET_1K.partition_bytes(8, 0)
    with pytest.raises(ValueError):
        IMAGENET_1K.partition_bytes(4, 8)


def test_dataset_spec_validation():
    with pytest.raises(ValueError):
        DatasetSpec(name="bad", n_images=0, n_classes=1, record_file_bytes=1)


def test_synthetic_images_deterministic():
    ds1 = SyntheticImageDataset(10, 3, seed=7)
    ds2 = SyntheticImageDataset(10, 3, seed=7)
    np.testing.assert_array_equal(ds1.image(4), ds2.image(4))
    np.testing.assert_array_equal(ds1.labels, ds2.labels)


def test_synthetic_seed_changes_content():
    a = SyntheticImageDataset(10, 3, seed=1).image(0)
    b = SyntheticImageDataset(10, 3, seed=2).image(0)
    assert not np.array_equal(a, b)


def test_synthetic_every_class_present():
    ds = SyntheticImageDataset(20, 5, seed=0)
    assert set(ds.labels.tolist()) == set(range(5))


def test_synthetic_classes_are_distinguishable():
    """Same-class images must be more alike than cross-class images."""
    ds = SyntheticImageDataset(40, 2, seed=3, noise=0.2)
    by_class = {0: [], 1: []}
    for i in range(40):
        by_class[int(ds.labels[i])].append(ds.image(i).astype(float).ravel())
    mean0 = np.mean(by_class[0], axis=0)
    mean1 = np.mean(by_class[1], axis=0)
    within = np.mean([np.linalg.norm(v - mean0) for v in by_class[0]])
    between = np.linalg.norm(mean0 - mean1) * np.sqrt(len(by_class[0]))
    assert between > within * 0.5


def test_batch_shapes_and_range():
    ds = SyntheticImageDataset(10, 3, seed=0, height=8, width=8)
    imgs, labels = ds.batch(np.array([0, 3, 5]))
    assert imgs.shape == (3, 3, 8, 8)
    assert labels.shape == (3,)
    assert 0.0 <= imgs.min() and imgs.max() <= 1.0


def test_build_record_file(tmp_path):
    ds, base = build_synthetic_record_file(tmp_path / "syn", 12, 4, seed=1)
    from repro.data import RecordReader, decode_image

    with RecordReader(base) as reader:
        assert len(reader) == 12
        blob, label = reader.read(3)
        np.testing.assert_array_equal(decode_image(blob), ds.image(3))
        assert label == ds.labels[3]


def test_synthetic_validation():
    with pytest.raises(ValueError):
        SyntheticImageDataset(0, 1)
    with pytest.raises(ValueError):
        SyntheticImageDataset(3, 5)
    ds = SyntheticImageDataset(3, 2)
    with pytest.raises(IndexError):
        ds.image(3)
