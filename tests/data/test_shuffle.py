"""Tests for the Algorithm 2 distributed shuffle (functional + timing)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import DIMDStore, IMAGENET_1K, IMAGENET_22K, distributed_shuffle, simulate_shuffle
from repro.data.codec import encode_image
from repro.data.integrity import record_crc
from repro.mpi import build_world


def make_stores(n_ranks, per_rank, seed=0):
    rng = np.random.default_rng(seed)
    stores = []
    for r in range(n_ranks):
        records = [
            encode_image(rng.integers(0, 256, size=(1, 4, 4), dtype=np.uint8))
            for _ in range(per_rank)
        ]
        labels = rng.integers(0, 7, size=per_rank)
        stores.append(DIMDStore(records, labels, learner=r))
    return stores


def run_shuffle(stores, *, seed=0, n_groups=1, max_chunk_bytes=2**31):
    n = len(stores)
    engine, world, comm = build_world(n, topology="star")
    comms = comm.split(n_groups)
    procs = []
    for r in range(n):
        g = r // (n // n_groups)
        sub = comms[g]
        procs.append(
            engine.process(
                distributed_shuffle(
                    sub,
                    sub.group_rank(r),
                    stores[r],
                    seed=seed,
                    max_chunk_bytes=max_chunk_bytes,
                ),
                name=f"shuf{r}",
            )
        )
    engine.run(engine.all_of(procs))
    world.assert_quiescent()
    return [p.value for p in procs]


def global_multiset(stores):
    out = []
    for s in stores:
        out.extend(s.content_multiset())
    return sorted(out)


def test_shuffle_preserves_global_multiset():
    stores = make_stores(4, 8, seed=1)
    before = global_multiset(stores)
    run_shuffle(stores, seed=42)
    assert global_multiset(stores) == before


def test_shuffle_moves_records_between_nodes():
    stores = make_stores(4, 16, seed=2)
    originals = [set(s.records) for s in stores]
    run_shuffle(stores, seed=7)
    # With 16 records per node and uniform destinations, each node keeps
    # ~1/4 of its own records; all-stay is essentially impossible.
    moved = sum(
        1
        for r, s in enumerate(stores)
        for rec in s.records
        if rec not in originals[r]
    )
    assert moved > 0


def test_shuffle_is_deterministic_per_seed():
    s1 = make_stores(3, 6, seed=3)
    s2 = make_stores(3, 6, seed=3)
    run_shuffle(s1, seed=11)
    run_shuffle(s2, seed=11)
    for a, b in zip(s1, s2):
        assert a.records == b.records
        np.testing.assert_array_equal(a.labels, b.labels)


def test_shuffle_different_seeds_differ():
    s1 = make_stores(3, 12, seed=4)
    s2 = make_stores(3, 12, seed=4)
    run_shuffle(s1, seed=1)
    run_shuffle(s2, seed=2)
    assert any(a.records != b.records for a, b in zip(s1, s2))


def test_shuffle_multi_pass_32bit_workaround():
    """Tiny max_chunk_bytes forces several AlltoAllv passes (Algorithm 2's
    m sub-tensors); conservation must still hold."""
    stores = make_stores(4, 10, seed=5)
    before = global_multiset(stores)
    reports = run_shuffle(stores, seed=9, max_chunk_bytes=64)
    assert all(r.n_passes > 1 for r in reports)
    assert global_multiset(stores) == before


def test_group_restricted_shuffle_stays_in_group():
    stores = make_stores(4, 10, seed=6)
    group_a_before = global_multiset(stores[:2])
    group_b_before = global_multiset(stores[2:])
    run_shuffle(stores, seed=13, n_groups=2)
    assert global_multiset(stores[:2]) == group_a_before
    assert global_multiset(stores[2:]) == group_b_before


def test_single_rank_shuffle_is_local_permute():
    stores = make_stores(1, 8, seed=7)
    before = global_multiset(stores)
    run_shuffle(stores, seed=3)
    assert global_multiset(stores) == before


@settings(max_examples=8, deadline=None)
@given(
    n_ranks=st.sampled_from([2, 3, 4]),
    per_rank=st.integers(1, 12),
    seed=st.integers(0, 50),
)
def test_shuffle_conservation_property(n_ranks, per_rank, seed):
    stores = make_stores(n_ranks, per_rank, seed=seed)
    before = global_multiset(stores)
    run_shuffle(stores, seed=seed + 100)
    assert global_multiset(stores) == before


def test_shuffle_report_elapsed_positive_multi_rank():
    """The report must account the real simulated exchange time (the old
    implementation always returned 0.0)."""
    stores = make_stores(4, 8, seed=8)
    reports = run_shuffle(stores, seed=21)
    for r in reports:
        assert r.elapsed > 0.0
        assert r.bytes_exchanged > 0.0


def test_shuffle_report_elapsed_zero_single_rank():
    stores = make_stores(1, 8, seed=8)
    (report,) = run_shuffle(stores, seed=21)
    assert report.elapsed == 0.0


# -- edge cases ---------------------------------------------------------------


def test_shuffle_with_one_empty_store():
    stores = make_stores(3, 6, seed=9)
    stores[1] = DIMDStore([], np.array([], dtype=np.int64), learner=1)
    before = global_multiset(stores)
    run_shuffle(stores, seed=17)
    assert global_multiset(stores) == before


def test_shuffle_with_all_stores_empty():
    stores = [
        DIMDStore([], np.array([], dtype=np.int64), learner=r) for r in range(3)
    ]
    reports = run_shuffle(stores, seed=17)
    assert all(len(s) == 0 for s in stores)
    assert all(r.bytes_exchanged == 0.0 for r in reports)


def test_shuffle_single_record_stores():
    stores = make_stores(3, 1, seed=10)
    before = global_multiset(stores)
    run_shuffle(stores, seed=19)
    assert global_multiset(stores) == before


def test_shuffle_chunk_smaller_than_largest_record():
    """max_chunk_bytes below one record's size must still shuffle whole
    records (passes multiply, records never split)."""
    stores = make_stores(3, 2, seed=11)
    largest = max(len(r) for s in stores for r in s.records)
    before = global_multiset(stores)
    reports = run_shuffle(stores, seed=23, max_chunk_bytes=largest // 2)
    assert all(r.n_passes >= 2 for r in reports)
    assert global_multiset(stores) == before


def test_shuffle_rejects_nonpositive_chunk():
    stores = make_stores(2, 2, seed=12)
    with pytest.raises(ValueError):
        run_shuffle(stores, seed=3, max_chunk_bytes=0)


# -- integrity ----------------------------------------------------------------


def test_shuffle_quarantines_at_rest_corruption():
    """A record whose bytes rotted in memory is pulled out of circulation
    at pack time, reported, and excluded from the exchange — while every
    healthy record still shuffles and conserves."""
    stores = make_stores(3, 6, seed=13)
    victim = stores[1].records[2]
    corrupted = bytes([victim[0] ^ 0xFF]) + victim[1:]
    assert record_crc(corrupted) != record_crc(victim)
    stores[1].records[2] = corrupted  # checksum column keeps the old CRC
    healthy_before = [
        pair for s in stores for pair in s.content_multiset()
        if pair[0] != corrupted
    ]
    reports = run_shuffle(stores, seed=29)
    assert sum(r.quarantined for r in reports) == 1
    assert global_multiset(stores) == sorted(healthy_before)
    quarantined = [q for s in stores for q in s.quarantined]
    assert len(quarantined) == 1
    assert quarantined[0].blob == corrupted
    assert quarantined[0].actual_crc == record_crc(corrupted)


# -- full-scale timing (Figures 7-9) ------------------------------------------


def test_simulate_shuffle_imagenet22k_32_learners():
    """§5.2: 'For Imagenet-22k the time to shuffle the entire data among 32
    learners is just 4.2 seconds' — we require the same few-second scale."""
    report = simulate_shuffle(32, IMAGENET_22K)
    assert 2.0 < report.elapsed < 8.0
    assert report.memory_per_node == pytest.approx(220e9 / 32)
    assert report.n_passes >= 2  # 6.9 GB partitions exceed the 2 GiB limit


def test_simulate_shuffle_time_decreases_with_learners():
    """Figures 7-8: doubling learners roughly halves the shuffle time."""
    times = [simulate_shuffle(n, IMAGENET_1K).elapsed for n in (8, 16, 32)]
    assert times[0] > times[1] > times[2]
    assert times[0] / times[2] > 2.0


def test_simulate_shuffle_memory_halves_per_doubling():
    mems = [simulate_shuffle(n, IMAGENET_22K).memory_per_node for n in (8, 16, 32)]
    assert mems[0] == pytest.approx(2 * mems[1])
    assert mems[1] == pytest.approx(2 * mems[2])


def test_simulate_group_shuffle_roughly_flat():
    """Figure 9: on a symmetric network, group count changes little."""
    base = simulate_shuffle(32, IMAGENET_22K, n_groups=1).elapsed
    for g in (4, 8, 16):
        t = simulate_shuffle(32, IMAGENET_22K, n_groups=g).elapsed
        assert t == pytest.approx(base, rel=0.5)


def test_simulate_shuffle_validation():
    with pytest.raises(ValueError):
        simulate_shuffle(8, IMAGENET_1K, pack_bandwidth=0)
