"""Tests for the Algorithm 2 distributed shuffle (functional + timing)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import DIMDStore, IMAGENET_1K, IMAGENET_22K, distributed_shuffle, simulate_shuffle
from repro.data.codec import encode_image
from repro.mpi import build_world


def make_stores(n_ranks, per_rank, seed=0):
    rng = np.random.default_rng(seed)
    stores = []
    for r in range(n_ranks):
        records = [
            encode_image(rng.integers(0, 256, size=(1, 4, 4), dtype=np.uint8))
            for _ in range(per_rank)
        ]
        labels = rng.integers(0, 7, size=per_rank)
        stores.append(DIMDStore(records, labels, learner=r))
    return stores


def run_shuffle(stores, *, seed=0, n_groups=1, max_chunk_bytes=2**31):
    n = len(stores)
    engine, world, comm = build_world(n, topology="star")
    comms = comm.split(n_groups)
    procs = []
    for r in range(n):
        g = r // (n // n_groups)
        sub = comms[g]
        procs.append(
            engine.process(
                distributed_shuffle(
                    sub,
                    sub.group_rank(r),
                    stores[r],
                    seed=seed,
                    max_chunk_bytes=max_chunk_bytes,
                ),
                name=f"shuf{r}",
            )
        )
    engine.run(engine.all_of(procs))
    world.assert_quiescent()
    return [p.value for p in procs]


def global_multiset(stores):
    out = []
    for s in stores:
        out.extend(s.content_multiset())
    return sorted(out)


def test_shuffle_preserves_global_multiset():
    stores = make_stores(4, 8, seed=1)
    before = global_multiset(stores)
    run_shuffle(stores, seed=42)
    assert global_multiset(stores) == before


def test_shuffle_moves_records_between_nodes():
    stores = make_stores(4, 16, seed=2)
    originals = [set(s.records) for s in stores]
    run_shuffle(stores, seed=7)
    # With 16 records per node and uniform destinations, each node keeps
    # ~1/4 of its own records; all-stay is essentially impossible.
    moved = sum(
        1
        for r, s in enumerate(stores)
        for rec in s.records
        if rec not in originals[r]
    )
    assert moved > 0


def test_shuffle_is_deterministic_per_seed():
    s1 = make_stores(3, 6, seed=3)
    s2 = make_stores(3, 6, seed=3)
    run_shuffle(s1, seed=11)
    run_shuffle(s2, seed=11)
    for a, b in zip(s1, s2):
        assert a.records == b.records
        np.testing.assert_array_equal(a.labels, b.labels)


def test_shuffle_different_seeds_differ():
    s1 = make_stores(3, 12, seed=4)
    s2 = make_stores(3, 12, seed=4)
    run_shuffle(s1, seed=1)
    run_shuffle(s2, seed=2)
    assert any(a.records != b.records for a, b in zip(s1, s2))


def test_shuffle_multi_pass_32bit_workaround():
    """Tiny max_chunk_bytes forces several AlltoAllv passes (Algorithm 2's
    m sub-tensors); conservation must still hold."""
    stores = make_stores(4, 10, seed=5)
    before = global_multiset(stores)
    reports = run_shuffle(stores, seed=9, max_chunk_bytes=64)
    assert all(r.n_passes > 1 for r in reports)
    assert global_multiset(stores) == before


def test_group_restricted_shuffle_stays_in_group():
    stores = make_stores(4, 10, seed=6)
    group_a_before = global_multiset(stores[:2])
    group_b_before = global_multiset(stores[2:])
    run_shuffle(stores, seed=13, n_groups=2)
    assert global_multiset(stores[:2]) == group_a_before
    assert global_multiset(stores[2:]) == group_b_before


def test_single_rank_shuffle_is_local_permute():
    stores = make_stores(1, 8, seed=7)
    before = global_multiset(stores)
    run_shuffle(stores, seed=3)
    assert global_multiset(stores) == before


@settings(max_examples=8, deadline=None)
@given(
    n_ranks=st.sampled_from([2, 3, 4]),
    per_rank=st.integers(1, 12),
    seed=st.integers(0, 50),
)
def test_shuffle_conservation_property(n_ranks, per_rank, seed):
    stores = make_stores(n_ranks, per_rank, seed=seed)
    before = global_multiset(stores)
    run_shuffle(stores, seed=seed + 100)
    assert global_multiset(stores) == before


# -- full-scale timing (Figures 7-9) ------------------------------------------


def test_simulate_shuffle_imagenet22k_32_learners():
    """§5.2: 'For Imagenet-22k the time to shuffle the entire data among 32
    learners is just 4.2 seconds' — we require the same few-second scale."""
    report = simulate_shuffle(32, IMAGENET_22K)
    assert 2.0 < report.elapsed < 8.0
    assert report.memory_per_node == pytest.approx(220e9 / 32)
    assert report.n_passes >= 2  # 6.9 GB partitions exceed the 2 GiB limit


def test_simulate_shuffle_time_decreases_with_learners():
    """Figures 7-8: doubling learners roughly halves the shuffle time."""
    times = [simulate_shuffle(n, IMAGENET_1K).elapsed for n in (8, 16, 32)]
    assert times[0] > times[1] > times[2]
    assert times[0] / times[2] > 2.0


def test_simulate_shuffle_memory_halves_per_doubling():
    mems = [simulate_shuffle(n, IMAGENET_22K).memory_per_node for n in (8, 16, 32)]
    assert mems[0] == pytest.approx(2 * mems[1])
    assert mems[1] == pytest.approx(2 * mems[2])


def test_simulate_group_shuffle_roughly_flat():
    """Figure 9: on a symmetric network, group count changes little."""
    base = simulate_shuffle(32, IMAGENET_22K, n_groups=1).elapsed
    for g in (4, 8, 16):
        t = simulate_shuffle(32, IMAGENET_22K, n_groups=g).elapsed
        assert t == pytest.approx(base, rel=0.5)


def test_simulate_shuffle_validation():
    with pytest.raises(ValueError):
        simulate_shuffle(8, IMAGENET_1K, pack_bandwidth=0)
