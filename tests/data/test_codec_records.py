"""Unit + property tests for the codec and record-file format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import RecordReader, RecordWriter, decode_image, encode_image, write_record_file


def random_image(rng, c=3, h=8, w=8):
    return rng.integers(0, 256, size=(c, h, w), dtype=np.uint8)


def test_codec_roundtrip():
    rng = np.random.default_rng(0)
    img = random_image(rng)
    np.testing.assert_array_equal(decode_image(encode_image(img)), img)


def test_codec_compresses_structured_images():
    flat = np.zeros((3, 32, 32), dtype=np.uint8)
    blob = encode_image(flat)
    assert len(blob) < flat.nbytes / 4


def test_codec_validation():
    with pytest.raises(ValueError):
        encode_image(np.zeros((3, 4, 4), dtype=np.float32))
    with pytest.raises(ValueError):
        encode_image(np.zeros((4, 4), dtype=np.uint8))
    with pytest.raises(ValueError):
        decode_image(b"xx")


def test_codec_rejects_corrupt_payload():
    img = random_image(np.random.default_rng(1))
    blob = encode_image(img)
    # Corrupt the declared shape: decompressed size no longer matches.
    bad = blob[:1] + b"\xff\xff" + blob[3:]
    with pytest.raises(ValueError):
        decode_image(bad)


@settings(max_examples=20, deadline=None)
@given(
    c=st.integers(1, 4),
    h=st.integers(1, 16),
    w=st.integers(1, 16),
    seed=st.integers(0, 100),
)
def test_codec_roundtrip_property(c, h, w, seed):
    rng = np.random.default_rng(seed)
    img = rng.integers(0, 256, size=(c, h, w), dtype=np.uint8)
    np.testing.assert_array_equal(decode_image(encode_image(img)), img)


def test_record_file_roundtrip(tmp_path):
    rng = np.random.default_rng(2)
    records = [
        (encode_image(random_image(rng)), int(rng.integers(0, 10)))
        for _ in range(20)
    ]
    base = write_record_file(tmp_path / "train", records)
    with RecordReader(base) as reader:
        assert len(reader) == 20
        for i, (blob, label) in enumerate(records):
            got_blob, got_label = reader.read(i)
            assert got_blob == blob
            assert got_label == label


def test_record_reader_metadata(tmp_path):
    records = [(b"abc", 1), (b"defgh", 2), (b"x", 0)]
    base = write_record_file(tmp_path / "t", records)
    with RecordReader(base) as reader:
        assert reader.lengths.tolist() == [3, 5, 1]
        assert reader.labels.tolist() == [1, 2, 0]
        assert reader.data_bytes == 9


def test_record_reader_read_many(tmp_path):
    records = [(bytes([i]) * (i + 1), i) for i in range(5)]
    base = write_record_file(tmp_path / "t", records)
    with RecordReader(base) as reader:
        blobs, labels = reader.read_many(np.array([3, 0, 4]))
        assert blobs == [records[3][0], records[0][0], records[4][0]]
        assert labels.tolist() == [3, 0, 4]


def test_record_reader_bounds(tmp_path):
    base = write_record_file(tmp_path / "t", [(b"a", 0)])
    with RecordReader(base) as reader:
        with pytest.raises(IndexError):
            reader.read(1)


def test_writer_validation(tmp_path):
    w = RecordWriter(tmp_path / "t")
    with pytest.raises(ValueError):
        w.append(b"a", -1)
    w.append(b"a", 0)
    assert w.n_records == 1
    assert w.data_bytes == 1
    w.close()
    w.close()  # idempotent
    with pytest.raises(ValueError):
        w.append(b"b", 1)


# -- record integrity ---------------------------------------------------------


def test_index_has_crc_column_and_checksums_property(tmp_path):
    from repro.data.integrity import record_crc

    records = [(b"abc", 1), (b"defgh", 2)]
    base = write_record_file(tmp_path / "t", records)
    with RecordReader(base) as reader:
        assert reader.index.shape == (2, 4)
        assert reader.checksums.tolist() == [
            record_crc(b"abc"), record_crc(b"defgh"),
        ]


def test_read_detects_flipped_data_byte(tmp_path):
    from repro.data.integrity import RecordCorrupt

    records = [(b"hello world", 3), (b"intact", 4)]
    base = write_record_file(tmp_path / "t", records)
    data_path = base.with_suffix(".data")
    raw = bytearray(data_path.read_bytes())
    raw[2] ^= 0x01  # flip one bit inside record 0
    data_path.write_bytes(bytes(raw))
    with RecordReader(base) as reader:
        with pytest.raises(RecordCorrupt) as excinfo:
            reader.read(0)
        assert excinfo.value.index == 0
        # the undamaged record still reads fine
        assert reader.read(1) == (b"intact", 4)


def test_legacy_three_column_index_loads_unverified(tmp_path):
    records = [(b"old", 1), (b"format", 2)]
    base = write_record_file(tmp_path / "t", records)
    idx_path = base.with_suffix(".idx.npy")
    legacy = np.load(idx_path)[:, :3]  # strip the CRC column
    np.save(idx_path, legacy)
    # Corrupt the data; a legacy index has no CRC, so the read succeeds.
    data_path = base.with_suffix(".data")
    raw = bytearray(data_path.read_bytes())
    raw[0] ^= 0xFF
    data_path.write_bytes(bytes(raw))
    with RecordReader(base) as reader:
        assert reader.checksums is None
        blob, label = reader.read(0)
        assert label == 1
        assert blob != b"old"  # corruption passed through silently
