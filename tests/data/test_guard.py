"""Tests for the guarded transactional shuffle (repro.data.guard)."""

import numpy as np
import pytest

from repro.data import DIMDStore, deal_records, run_shuffle_guarded
from repro.data.codec import encode_image
from repro.data.guard import diagnose_shuffle
from repro.data.shuffle import ShuffleProgress
from repro.mpi.schedule import CollectiveTimeout
from repro.train.injection import (
    FaultInjector,
    FaultPlan,
    corrupt_messages,
    crash,
    drop_messages,
)


def make_stores(n_ranks, per_rank, seed=0):
    rng = np.random.default_rng(seed)
    stores = []
    for r in range(n_ranks):
        records = [
            encode_image(rng.integers(0, 256, size=(1, 4, 4), dtype=np.uint8))
            for _ in range(per_rank)
        ]
        labels = rng.integers(0, 7, size=per_rank)
        stores.append(DIMDStore(records, labels, learner=r))
    return stores


def global_multiset(stores):
    out = []
    for s in stores:
        out.extend(s.content_multiset())
    return sorted(out)


def expected_survivor_state(n_ranks, per_rank, victims, *, seed_data, seed):
    """Fault-free reference: pop victims in repair order, deal, shuffle."""
    live = make_stores(n_ranks, per_rank, seed=seed_data)
    for v in victims:
        dead = live.pop(v)
        deal_records(dead, live)
    run_shuffle_guarded(live, seed=seed, round_id=0, timeout=60.0)
    return live


def test_guarded_shuffle_fault_free():
    stores = make_stores(3, 6, seed=1)
    before = global_multiset(stores)
    reports, telemetry = run_shuffle_guarded(
        stores, seed=5, round_id=0, timeout=60.0
    )
    assert len(reports) == 3
    assert all(r.elapsed > 0 for r in reports)
    assert global_multiset(stores) == before
    assert telemetry.retries == 0
    assert telemetry.repairs == 0
    assert not any(s.in_transaction for s in stores)


def test_guarded_shuffle_single_store_local_permute():
    stores = make_stores(1, 6, seed=1)
    before = global_multiset(stores)
    reports, telemetry = run_shuffle_guarded(
        stores, seed=5, round_id=0, timeout=60.0
    )
    assert len(reports) == 1 and reports[0].elapsed == 0.0
    assert global_multiset(stores) == before


def test_crash_repairs_and_matches_fault_free_survivor_shuffle():
    stores = make_stores(3, 6, seed=2)
    before = global_multiset(stores)
    injector = FaultInjector(FaultPlan([crash(1, 0)]))
    reports, telemetry = run_shuffle_guarded(
        stores, seed=9, round_id=0, timeout=60.0,
        fault_injector=injector, iteration=0,
    )
    assert telemetry.repaired_ranks == [1]
    assert telemetry.retries == 0
    assert len(reports) == 2
    live = [stores[0], stores[2]]
    # Conservation: the victim's partition was dealt to the survivors.
    assert global_multiset(live) == before
    # Repaired run is bit-identical to a fault-free survivor-group round.
    expected = expected_survivor_state(3, 6, [1], seed_data=2, seed=9)
    for got, want in zip(live, expected):
        assert got.records == want.records
        np.testing.assert_array_equal(got.labels, want.labels)
    assert not any(s.in_transaction for s in stores)


def test_drop_rolls_back_and_retries_to_fault_free_result():
    stores = make_stores(3, 6, seed=3)
    before = global_multiset(stores)
    injector = FaultInjector(FaultPlan([drop_messages(0, rank=1, count=1)]))
    reports, telemetry = run_shuffle_guarded(
        stores, seed=11, round_id=0, timeout=1.0, retry_backoff=0.25,
        fault_injector=injector, iteration=0,
    )
    assert telemetry.retries == 1
    assert telemetry.repairs == 0
    assert len(telemetry.diagnoses) == 1
    diag = telemetry.diagnoses[0]
    assert diag.cause == "message-loss"
    assert diag.suspect_rank == 1
    assert global_multiset(stores) == before
    expected = expected_survivor_state(3, 6, [], seed_data=3, seed=11)
    for got, want in zip(stores, expected):
        assert got.records == want.records


def test_corrupt_rolls_back_and_retries_with_corruption_diagnosis():
    stores = make_stores(3, 6, seed=4)
    before = global_multiset(stores)
    injector = FaultInjector(FaultPlan([corrupt_messages(0, rank=2, count=1)]))
    reports, telemetry = run_shuffle_guarded(
        stores, seed=13, round_id=0, timeout=60.0, retry_backoff=0.25,
        fault_injector=injector, iteration=0,
    )
    assert telemetry.retries == 1
    assert telemetry.repairs == 0
    diag = telemetry.diagnoses[0]
    assert diag.cause == "corruption"
    assert diag.suspect_rank == 2
    assert any(ev.kind == "corrupt" for ev in telemetry.fault_events)
    assert global_multiset(stores) == before
    expected = expected_survivor_state(3, 6, [], seed_data=4, seed=13)
    for got, want in zip(stores, expected):
        assert got.records == want.records


def test_exhausted_retries_leave_stores_pristine():
    """Every attempt faulted: the guard raises, and the failed rounds are
    a group-wide no-op (transactional rollback)."""
    stores = make_stores(3, 6, seed=5)
    originals = [(list(s.records), s.labels.copy()) for s in stores]
    injector = FaultInjector(FaultPlan([
        drop_messages(0, rank=0, count=500, max_firings=10),
    ]))
    with pytest.raises(CollectiveTimeout) as excinfo:
        run_shuffle_guarded(
            stores, seed=15, round_id=0, timeout=1.0, max_retries=2,
            retry_backoff=0.25, fault_injector=injector, iteration=0,
        )
    assert excinfo.value.diagnosis is not None
    for s, (records, labels) in zip(stores, originals):
        assert s.records == records
        np.testing.assert_array_equal(s.labels, labels)
        assert not s.in_transaction


# -- diagnosis unit tests -----------------------------------------------------


def test_diagnose_shuffle_message_loss():
    progress = ShuffleProgress(3)
    key = ("shg", None, 0, 1, 2)
    progress.sent(1, 2, key)           # sender posted...
    progress.begin_recv(2, 1, key, 0.5)  # ...receiver still waiting
    diag = diagnose_shuffle(progress, now=10.0)
    assert diag.cause == "message-loss"
    assert diag.suspect_rank == 1
    assert diag.suspect_link == (1, 2)


def test_diagnose_shuffle_silent_rank():
    progress = ShuffleProgress(3)
    # Rank 2 waits on rank 1, rank 1 waits on rank 0; rank 0 posted
    # nothing and waits on nobody: it went silent.
    progress.begin_recv(2, 1, ("k", 1, 2), 0.1)
    progress.begin_recv(1, 0, ("k", 0, 1), 0.2)
    diag = diagnose_shuffle(progress, now=10.0)
    assert diag.cause == "silent-rank"
    assert diag.suspect_rank == 0


def test_diagnose_shuffle_no_progress():
    progress = ShuffleProgress(2)
    progress.finish(0, 1.0)
    diag = diagnose_shuffle(progress, now=10.0)
    assert diag.cause == "no-progress"
    assert diag.suspect_rank == 1
