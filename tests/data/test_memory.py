"""Tests for DIMD memory planning."""

import pytest

from repro.cluster import MINSKY_NODE
from repro.data import GroupLayout, IMAGENET_1K, IMAGENET_22K
from repro.data.memory import max_replication_groups, plan_memory


def test_imagenet1k_fully_replicated_fits_on_minsky():
    """74 GB per node fits comfortably in 256 GB — the paper's 'each
    learner can hold the entire data set' extreme."""
    plan = plan_memory(IMAGENET_1K, MINSKY_NODE, GroupLayout(8, 8))
    assert plan.fits
    assert plan.partition_bytes == pytest.approx(70e9)
    assert plan.headroom_bytes > 50e9


def test_imagenet22k_fully_replicated_does_not_fit():
    """220 GB per node exceeds the usable budget of a 256 GB node."""
    plan = plan_memory(IMAGENET_22K, MINSKY_NODE, GroupLayout(32, 32))
    assert not plan.fits


def test_imagenet22k_partitioned_fits():
    """One copy across 32 learners: ~6.9 GB per node (Figure 7's setup)."""
    plan = plan_memory(IMAGENET_22K, MINSKY_NODE, GroupLayout(32, 1))
    assert plan.fits
    assert plan.partition_bytes == pytest.approx(220e9 / 32)
    assert plan.utilization < 0.05


def test_max_replication_1k():
    """ImageNet-1k can be fully replicated at any node count."""
    assert max_replication_groups(IMAGENET_1K, MINSKY_NODE, 8) == 8
    assert max_replication_groups(IMAGENET_1K, MINSKY_NODE, 32) == 32


def test_max_replication_22k():
    """ImageNet-22k needs >= 2 learners per copy (110 GB each) on 256 GB."""
    g = max_replication_groups(IMAGENET_22K, MINSKY_NODE, 32)
    assert g == 16  # 2 learners/copy -> 110 GB/node, fits under 0.8*256-8
    plan = plan_memory(IMAGENET_22K, MINSKY_NODE, GroupLayout(32, g))
    assert plan.fits


def test_infeasible_dataset_raises():
    from repro.data import DatasetSpec

    huge = DatasetSpec(
        name="huge", n_images=10**8, n_classes=10**5, record_file_bytes=1e13
    )
    with pytest.raises(ValueError, match="does not fit"):
        max_replication_groups(huge, MINSKY_NODE, 4)


def test_validation():
    with pytest.raises(ValueError):
        plan_memory(IMAGENET_1K, MINSKY_NODE, GroupLayout(8, 1), memory_fraction=0)
    with pytest.raises(ValueError):
        plan_memory(IMAGENET_1K, MINSKY_NODE, GroupLayout(8, 1), working_set=-1)
