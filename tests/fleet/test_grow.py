"""Elastic grow-after-shrink, proactive migration and lineage replay.

The fleet-level counterparts of ``tests/train/test_grow.py``: a shrunk
job reclaims learners when the scheduler has slots to spare (node
revival or a neighbour finishing), a sick-but-alive node is drained by
the health monitor before the watchdog fires, and every grown run stays
bit-exact against a fault-free reference replaying its recorded lineage
(``JobSpec.scripted_shrinks`` + ``scripted_grows``).
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.fleet import (
    FleetScheduler,
    HealthPolicy,
    JobSpec,
    SharedCluster,
    validate_scripted_lineage,
)
from repro.train.faults import DrainPolicy

TIGHT = dict(n_racks=2, nodes_per_rack=2, slots_per_node=1)


def run_fleet(specs, *, placement="pack", seed=0, cluster_kw=None,
              trigger=None, health=None):
    cluster = SharedCluster(**(cluster_kw or TIGHT))
    scheduler = FleetScheduler(
        cluster, specs, placement=placement, seed=seed, health=health
    )
    if trigger is not None:
        scheduler.spawn(trigger(cluster, scheduler))
    report = scheduler.run()
    return report, scheduler


def lineage_reference_params(spec, shrinks, grows, cluster_kw=None):
    """Fault-free solo run replaying the recorded lineage as a script."""
    ref = replace(
        spec, arrival=0.0, priority=0, elastic_grow=False,
        scripted_shrinks=tuple(shrinks), scripted_grows=tuple(grows),
    )
    _report, scheduler = run_fleet([ref], cluster_kw=cluster_kw)
    job = scheduler.jobs[spec.name]
    assert job.status == "finished"
    return job.final_params


def kill_then_revive(job_name="long", revive_after=3e-4):
    """Kill one of the job's nodes mid-run, revive it a bit later."""

    def trigger(cluster, scheduler):
        job = scheduler.jobs[job_name]
        while job.telemetry.steps < 1:
            yield cluster.engine.timeout(1e-4)
        node = job.placement[-1]
        scheduler.kill_node(node)
        yield cluster.engine.timeout(revive_after)
        scheduler.revive_node(node)

    return trigger


# -- grow-after-shrink --------------------------------------------------------

def test_grow_back_after_revival_is_bit_exact():
    """The tentpole: kill -> shrink -> revive -> grow back to full gang,
    and the grown run's weights equal the scripted shrink+grow replay."""
    spec = JobSpec(name="long", n_learners=2, n_steps=8, seed=500,
                   elastic_grow=True, checkpoint_every=3)
    filler = JobSpec(name="short", n_learners=2, n_steps=3, seed=501)
    report, scheduler = run_fleet([spec, filler], trigger=kill_then_revive())
    job = scheduler.jobs["long"]
    assert job.status == "finished"
    assert len(job.shrink_log) == 1
    assert len(job.grow_log) == 1
    assert job.telemetry.grows == 1
    assert scheduler.jobs["short"].grow_log == []  # not elastic: untouched
    kinds = [e.kind for e in report.events]
    for wanted in ("node-kill", "revive", "grow-grant", "grow"):
        assert wanted in kinds
    ref = lineage_reference_params(spec, job.shrink_log, job.grow_log)
    np.testing.assert_array_equal(job.final_params, ref)


def test_no_grow_without_elastic_flag():
    spec = JobSpec(name="long", n_learners=2, n_steps=8, seed=500)
    filler = JobSpec(name="short", n_learners=2, n_steps=3, seed=501)
    report, scheduler = run_fleet([spec, filler], trigger=kill_then_revive())
    job = scheduler.jobs["long"]
    assert job.status == "finished"
    assert job.grow_log == []
    assert not any(e.kind == "grow-grant" for e in report.events)


def test_granted_node_killed_before_join_is_revoked():
    """A grant whose node dies before the iteration boundary must be
    revoked — never half-joined — and the slot returned to the ledger."""
    spec = JobSpec(name="long", n_learners=2, n_steps=8, seed=500,
                   elastic_grow=True)
    filler = JobSpec(name="short", n_learners=2, n_steps=3, seed=501)

    def trigger(cluster, scheduler):
        job = scheduler.jobs["long"]
        while job.telemetry.steps < 1:
            yield cluster.engine.timeout(1e-4)
        node = job.placement[-1]
        scheduler.kill_node(node)
        while node in job.placement:  # wait for the shrink to land
            yield cluster.engine.timeout(1e-4)
        scheduler.revive_node(node)
        # The revival's kick granted the freed slot back synchronously.
        assert job.pending_grows == [node]
        scheduler.kill_node(node)  # dies again before the boundary
        assert job.pending_grows == []

    report, scheduler = run_fleet([spec, filler], trigger=trigger)
    job = scheduler.jobs["long"]
    assert job.status == "finished"
    revoked = next(e for e in report.events if e.kind == "grow-revoked")
    dead = revoked.data["node"]
    # The revoked grant never became a learner; any later regrow (after
    # "short" frees its slots) lands on a different, living node.
    assert dead not in job.placement
    grows = [e for e in report.events if e.kind == "grow"]
    assert all(e.data["node"] != dead for e in grows)
    assert report.leaked == []
    ref = lineage_reference_params(spec, job.shrink_log, job.grow_log)
    np.testing.assert_array_equal(job.final_params, ref)


def test_queued_gang_outranks_grow_back():
    """A queued job gets freed capacity before any shrunk job regrows."""
    spec = JobSpec(name="long", n_learners=2, n_steps=10, seed=500,
                   elastic_grow=True)
    filler = JobSpec(name="short", n_learners=2, n_steps=3, seed=501)
    late = JobSpec(name="late", n_learners=2, n_steps=2, seed=502,
                   arrival=2e-4)
    report, scheduler = run_fleet(
        [spec, filler, late], trigger=kill_then_revive()
    )
    assert all(j.status == "finished" for j in report.jobs)
    events = report.events
    late_start = next(
        e.t for e in events if e.kind == "start" and e.data["job"] == "late"
    )
    first_grant = next(e.t for e in events if e.kind == "grow-grant")
    assert late_start <= first_grant


# -- checkpointed lineage round-trip ------------------------------------------

def test_saved_lineage_roundtrip_empty_logs():
    """A preempted job with no shrinks or grows saves (and restores) an
    empty lineage — the 3-tuple's degenerate case."""
    victim = JobSpec(name="victim", n_learners=2, n_steps=6, seed=31,
                     checkpoint_every=2, elastic_grow=True)
    vip = JobSpec(name="vip", n_learners=4, n_steps=2, seed=32,
                  priority=5, arrival=8e-4)
    report, scheduler = run_fleet([victim, vip])
    job = scheduler.jobs["victim"]
    assert job.telemetry.preemptions >= 1
    assert job.saved is not None
    ckpt, shrinks, grows = job.saved
    assert shrinks == () and grows == ()
    assert job.status == "finished"
    assert job.shrink_log == [] and job.grow_log == []
    ref = lineage_reference_params(victim, (), ())
    np.testing.assert_array_equal(job.final_params, ref)


def test_saved_lineage_roundtrip_populated_logs():
    """A job that shrank and grew, then checkpoints, carries both logs
    through the saved tuple; a restore resumes the same lineage and the
    final params still replay bit-exactly."""
    spec = JobSpec(name="long", n_learners=2, n_steps=10, seed=510,
                   elastic_grow=True, checkpoint_every=2,
                   preemption="requeue")
    filler = JobSpec(name="short", n_learners=2, n_steps=3, seed=511)
    vip = JobSpec(name="vip", n_learners=3, n_steps=2, seed=512,
                  priority=5, arrival=28e-4)
    report, scheduler = run_fleet(
        [spec, filler, vip], trigger=kill_then_revive()
    )
    job = scheduler.jobs["long"]
    assert job.status == "finished"
    assert job.telemetry.preemptions >= 1  # vip preempted it mid-lineage
    assert job.saved is not None
    _ckpt, shrinks, grows = job.saved
    assert len(shrinks) == 1 and len(grows) == 1
    # The restored run kept the pre-preemption lineage as its prefix.
    assert list(job.shrink_log)[: len(shrinks)] == list(shrinks)
    assert list(job.grow_log)[: len(grows)] == list(grows)
    ref = lineage_reference_params(spec, job.shrink_log, job.grow_log)
    np.testing.assert_array_equal(job.final_params, ref)


# -- scripted-lineage validation ----------------------------------------------

def test_scripted_lineage_valid_scripts_construct():
    JobSpec(name="a", n_learners=3, n_steps=6,
            scripted_shrinks=((1, 2), (3, 0)))
    JobSpec(name="b", n_learners=2, n_steps=6,
            scripted_shrinks=((1, 1),), scripted_grows=((3, 1),))
    # Same-iteration grow (top of step) then shrink (post-compute).
    JobSpec(name="c", n_learners=2, n_steps=6,
            scripted_grows=((2, 2),), scripted_shrinks=((2, 1),))
    validate_scripted_lineage(2, 4, ((0, 1),), ((1, 1),))


def test_scripted_lineage_rejects_out_of_order_iterations():
    with pytest.raises(ValueError, match="non-decreasing"):
        JobSpec(name="a", n_learners=3, n_steps=6,
                scripted_shrinks=((3, 0), (1, 0)))
    with pytest.raises(ValueError, match="non-decreasing"):
        JobSpec(name="a", n_learners=2, n_steps=6,
                scripted_grows=((3, 2), (1, 2)))


def test_scripted_lineage_rejects_out_of_range_iteration():
    with pytest.raises(ValueError, match=r"outside \[0, 4\)"):
        JobSpec(name="a", n_learners=2, n_steps=4,
                scripted_shrinks=((4, 0),))


def test_scripted_lineage_rejects_bad_slots():
    with pytest.raises(ValueError, match="slot outside"):
        JobSpec(name="a", n_learners=3, n_steps=6,
                scripted_shrinks=((1, 3),))
    # After one shrink only slots 0..1 remain live.
    with pytest.raises(ValueError, match="slot outside"):
        JobSpec(name="a", n_learners=3, n_steps=6,
                scripted_shrinks=((1, 0), (2, 2)))
    # Grown learners append at the end: slot must equal the live count.
    with pytest.raises(ValueError, match="expected slot 2"):
        JobSpec(name="a", n_learners=2, n_steps=6,
                scripted_grows=((1, 0),))


def test_scripted_lineage_rejects_dropping_last_learner():
    with pytest.raises(ValueError, match="last learner"):
        JobSpec(name="a", n_learners=2, n_steps=6,
                scripted_shrinks=((1, 0), (2, 0)))


# -- proactive migration ------------------------------------------------------

FAST_HEALTH = HealthPolicy(
    policy=DrainPolicy(link_factor_threshold=0.5, strikes=2),
    poll_every=2e-4,
)


def degrade_node(job_name="long", factor=0.05):
    """Degrade the job's last-placed node once it has made progress and
    capacity for a replacement exists."""

    def trigger(cluster, scheduler):
        job = scheduler.jobs[job_name]
        short = scheduler.jobs["short"]
        from repro.fleet.jobs import TERMINAL

        while job.telemetry.steps < 1 or short.status not in TERMINAL:
            yield cluster.engine.timeout(1e-4)
        node = job.placement[-1]
        cluster.degrade_node_links(node, factor)

    return trigger


def test_health_monitor_drains_and_migrates_before_watchdog():
    spec = JobSpec(name="long", n_learners=2, n_steps=10, seed=520,
                   checkpoint_every=4)
    filler = JobSpec(name="short", n_learners=2, n_steps=2, seed=521)
    report, scheduler = run_fleet(
        [spec, filler], trigger=degrade_node(), health=FAST_HEALTH
    )
    job = scheduler.jobs["long"]
    assert job.status == "finished"
    assert job.telemetry.migrations == 1
    assert job.telemetry.retries == 0  # moved before any watchdog fired
    assert len(job.shrink_log) == 1 and len(job.grow_log) == 1
    drain = next(e for e in report.events if e.kind == "drain")
    assert "degraded links" in drain.text
    migrate = next(e for e in report.events if e.kind == "migrate")
    assert migrate.data["job"] == "long"
    assert migrate.data["node"] == drain.data["node"]
    assert "replacement" in migrate.data
    # Migration is a shrink+grow pair, so the lineage replay still holds.
    ref = lineage_reference_params(spec, job.shrink_log, job.grow_log)
    np.testing.assert_array_equal(job.final_params, ref)
    assert report.leaked == []


def test_healthy_fleet_with_monitor_never_drains():
    spec = JobSpec(name="long", n_learners=2, n_steps=6, seed=530)
    with_mon, s1 = run_fleet([spec], health=FAST_HEALTH)
    without, s2 = run_fleet([spec])
    assert not any(e.kind in ("drain", "migrate") for e in with_mon.events)
    assert with_mon.makespan == without.makespan
    np.testing.assert_array_equal(
        s1.jobs["long"].final_params, s2.jobs["long"].final_params
    )


def test_finish_log_line_reports_grows():
    spec = JobSpec(name="long", n_learners=2, n_steps=8, seed=500,
                   elastic_grow=True)
    filler = JobSpec(name="short", n_learners=2, n_steps=3, seed=501)
    report, _scheduler = run_fleet([spec, filler], trigger=kill_then_revive())
    finish = next(
        e for e in report.events
        if e.kind == "finish" and e.data["job"] == "long"
    )
    assert "1 shrinks, 1 grows" in finish.text
    assert len(report.job("long").grows) == 1
    assert len(report.job("long").shrinks) == 1
    assert "grows=1" in report.format()
