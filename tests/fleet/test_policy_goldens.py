"""Pure-policy extraction safety net: clean fleet runs vs. frozen goldens.

The PR that introduced ``repro.fleet.policy`` moved every scheduler
decision (placement scoring, grow-offer order, grow-node choice,
preemption-victim selection, queue order) out of ``FleetScheduler`` into
pure functions.  These goldens were captured from the *pre-refactor*
scheduler: every event (timestamp, kind, text), every placement and the
makespan of three clean workloads must stay byte-identical, or the
extraction changed a decision.

Regenerate (only when a behaviour change is intended and reviewed)::

    PYTHONPATH=src python tests/fleet/test_policy_goldens.py --write
"""

import json
from pathlib import Path

from repro.fleet import FleetScheduler, JobSpec, SharedCluster

GOLDEN_PATH = Path(__file__).parent / "goldens" / "clean_fleet.json"


def _scenarios():
    """Deterministic fault-free workloads covering every decision path."""
    return {
        # Plain gang scheduling + backfill on a small cluster.
        "pack-backfill": dict(
            placement="pack",
            cluster_kw=dict(n_racks=2, nodes_per_rack=2, slots_per_node=1),
            specs=[
                JobSpec(name="job0", n_learners=2, n_steps=4, seed=1),
                JobSpec(name="big", n_learners=4, n_steps=2, seed=2,
                        arrival=1e-4),
                JobSpec(name="small", n_learners=1, n_steps=2, seed=3,
                        arrival=2e-4),
            ],
        ),
        # Spread placement with three concurrent tenants.
        "spread-tenants": dict(
            placement="spread",
            cluster_kw=dict(n_racks=2, nodes_per_rack=4, slots_per_node=2),
            specs=[
                JobSpec(name=f"job{i}", n_learners=2, n_steps=4, seed=50 + i)
                for i in range(3)
            ],
        ),
        # Priority preemption (requeue + shrink modes) and elastic grow:
        # every pure-policy function fires, still fault-free.
        "preempt-grow": dict(
            placement="pack",
            cluster_kw=dict(n_racks=2, nodes_per_rack=4, slots_per_node=1),
            specs=[
                JobSpec(name="victim", n_learners=4, n_steps=6, seed=11,
                        checkpoint_every=2),
                JobSpec(name="shrinky", n_learners=3, n_steps=8, seed=21,
                        preemption="shrink", elastic_grow=True),
                JobSpec(name="vip", n_learners=6, n_steps=2, seed=12,
                        priority=5, arrival=1e-3),
            ],
        ),
    }


def _capture(name):
    scenario = _scenarios()[name]
    cluster = SharedCluster(**scenario["cluster_kw"])
    scheduler = FleetScheduler(
        cluster, scenario["specs"], placement=scenario["placement"], seed=0
    )
    report = scheduler.run()
    return {
        "events": [[e.t, e.kind, e.text] for e in report.events],
        "placements": [
            [e.t, e.data["nodes"]] for e in report.events if e.kind == "start"
        ],
        "makespan": report.makespan,
        "jobs": [
            [j.name, j.status, j.steps, list(map(list, j.shrinks)),
             list(map(list, j.grows))]
            for j in report.jobs
        ],
        "leaked": report.leaked,
    }


def _capture_all():
    return {name: _capture(name) for name in sorted(_scenarios())}


def test_clean_fleet_runs_match_pre_refactor_goldens():
    golden = json.loads(GOLDEN_PATH.read_text())
    got = _capture_all()
    # json round-trip normalizes tuples/lists so the diff is structural.
    got = json.loads(json.dumps(got))
    assert sorted(got) == sorted(golden)
    for name in golden:
        assert got[name]["makespan"] == golden[name]["makespan"], name
        assert got[name]["placements"] == golden[name]["placements"], name
        assert got[name]["jobs"] == golden[name]["jobs"], name
        assert got[name]["leaked"] == golden[name]["leaked"], name
        assert got[name]["events"] == golden[name]["events"], name


if __name__ == "__main__":
    import sys

    if "--write" in sys.argv:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(_capture_all(), indent=1))
        print(f"wrote {GOLDEN_PATH}")
