"""Mutation self-test: every seeded control-plane bug dies statically."""

from repro.fleet import policy
from repro.fleet.verify import (
    FLEET_MUTANTS,
    clean_hunt_bounds,
    run_fleet_mutation_suite,
    verify_fleet,
)
from repro.fleet.verify import model as model_mod
from repro.fleet.verify.invariants import INVARIANTS
from repro.fleet.verify.mutate import _patched


def test_clean_model_proves_under_every_hunt_bound():
    # A kill is only attributable to the mutation if the unmutated model
    # proves clean under the same bound.
    for name, bounds in clean_hunt_bounds().items():
        result = verify_fleet(bounds, max_states=500_000)
        assert result.ok, f"hunt bound {name!r} unsound:\n{result.format()}"


def test_every_mutant_is_killed():
    result = run_fleet_mutation_suite()
    assert result.kill_rate == 1.0, result.format()
    assert not result.escaped
    assert len(result.records) >= 10


def test_mutants_exercise_every_invariant():
    # Each of the eight invariants must be the one that kills at least
    # one mutant — otherwise an invariant could silently rot.
    result = run_fleet_mutation_suite()
    assert result.invariants_exercised == set(INVARIANTS), result.format()


def test_killing_traces_are_short():
    # BFS minimality: every seeded bug is surfaced within a handful of
    # events, so counterexamples stay human-readable.
    result = run_fleet_mutation_suite()
    for record in result.records:
        assert record.killed
        assert record.trace_len <= 6, (
            f"{record.operator}: trace of {record.trace_len}"
        )


def test_mutant_patching_reaches_every_seam_and_restores():
    # Policy mutants must be visible to the runtime scheduler and the
    # checker alike (import-by-name rebinding), and must be undone.
    mutant = next(m for m in FLEET_MUTANTS if m.operator == "grow-overcommit")
    original = policy.wants_grow
    assert model_mod.wants_grow is original
    with _patched(mutant):
        assert policy.wants_grow is not original
        assert model_mod.wants_grow is policy.wants_grow
        from repro.fleet import scheduler as runtime
        assert runtime.wants_grow is policy.wants_grow
    assert policy.wants_grow is original
    assert model_mod.wants_grow is original
