"""The fleet model checker: proofs, counterexamples, replay, bounds."""

import dataclasses

import pytest

from repro.fleet.verify import (
    Bounds,
    INVARIANTS,
    ModelJobSpec,
    apply_event,
    check_invariants,
    enabled_events,
    initial_state,
    replay_trace,
    smoke_bounds,
    sweep_bounds,
    verify_fleet,
)
from repro.fleet.verify.model import Event


def tiny_bounds(**overrides):
    """One elastic job on a 2x2 cluster: proves in well under a second."""
    kw = dict(
        jobs=(
            ModelJobSpec(
                name="a", target=2, elastic_grow=True, preemption="shrink"
            ),
        ),
        n_racks=2,
        nodes_per_rack=2,
        slots_per_node=1,
        placement="pack",
        depth=6,
        max_steps=2,
        max_kills=1,
        max_revives=1,
        max_drains=1,
        max_undrains=0,
        max_sdc=1,
        max_requeues=2,
    )
    kw.update(overrides)
    return Bounds(**kw)


def scripted(bounds, events):
    """Apply a fixed event sequence, asserting each event is enabled."""
    state = initial_state(bounds)
    trace = []
    for event in events:
        assert event in enabled_events(state, bounds), (
            f"{event} not enabled; enabled: "
            f"{[str(e) for e in enabled_events(state, bounds)]}"
        )
        state = apply_event(state, event, bounds)
        trace.append(event)
    return state, tuple(trace)


# -- proofs -------------------------------------------------------------------

def test_tiny_bound_proves_all_invariants():
    result = verify_fleet(tiny_bounds())
    assert result.ok, result.format()
    assert result.states > 1000  # kills/drains/sdc all interleave
    assert result.frontier_depth == 6
    assert "PROVED all 8" in result.format()


def test_tiny_bound_proves_under_spread_placement():
    result = verify_fleet(tiny_bounds(placement="spread"))
    assert result.ok, result.format()


def test_multi_job_preemption_bound_proves():
    # Arrival/preemption/grow interleavings of the full 3-job workload
    # at reduced depth (the depth-8 proof is the slow smoke test).
    result = verify_fleet(smoke_bounds(depth=5))
    assert result.ok, result.format()
    assert result.states > 5000


@pytest.mark.slow
def test_smoke_bound_proves_all_invariants():
    # The CI fleet-verify gate: 3 jobs x 4 nodes, depth 8.
    result = verify_fleet(smoke_bounds())
    assert result.ok, result.format()
    assert result.states > 200_000


@pytest.mark.slow
def test_sweep_bound_proves_all_invariants():
    # Full budgets: revive-after-kill and undrain-after-drain flaps.
    result = verify_fleet(sweep_bounds(), max_states=4_000_000)
    assert result.ok, result.format()


# -- counterexamples ----------------------------------------------------------

def test_counterexample_is_minimal_and_replayable():
    # Break an invariant by hand-mutating a reachable state: a checker
    # counterexample must format a numbered trace and carry the state.
    bounds = tiny_bounds()
    state, trace = scripted(bounds, [Event("arrive", job="a")])
    job = state.job("a")
    job.placement += (job.placement[0],)  # duplicate learner on one node
    breaches = check_invariants(state, bounds)
    assert breaches, "hand-seeded duplicate placement must breach"
    kinds = {v.invariant for v in breaches}
    assert "gang-atomicity" in kinds or "slot-conservation" in kinds


def test_explorer_finds_shortest_trace_to_seeded_policy_bug(monkeypatch):
    # Grow off-by-one (a real mutant from the battery): BFS must return
    # the 1-event trace — arrival alone over-grants — not a longer one.
    from repro.fleet.verify import model as model_mod

    def grow_past_target(job):
        return (
            job.elastic_grow
            and job.status in ("running", "checkpointing")
            and job.active
            and not job.preempt_pending
            and job.n_live + len(job.pending_grows) <= job.target
        )

    monkeypatch.setattr(model_mod, "wants_grow", grow_past_target)
    result = verify_fleet(tiny_bounds())
    assert not result.ok
    cex = result.counterexample
    assert len(cex.trace) == 1
    assert cex.trace[0].kind == "arrive"
    assert cex.invariant == "gang-atomicity"
    assert "minimal trace (1 events)" in cex.format()


def test_max_states_cap_never_reports_proved():
    with pytest.raises(RuntimeError, match="exceeded"):
        verify_fleet(tiny_bounds(), max_states=10)


# -- replay -------------------------------------------------------------------

def test_clean_trace_replays_through_real_scheduler():
    bounds = smoke_bounds()
    _state, trace = scripted(bounds, [
        Event("arrive", job="a"),
        Event("sdc", job="a", slot=1),
        Event("arrive", job="b"),
        Event("kill", node=3),
        Event("step", job="a"),
        Event("finish", job="a"),
    ])
    replay = replay_trace(bounds, trace)
    assert replay.ok, replay.format()
    jobs = {j.name: j for j in replay.report.jobs}
    assert jobs["a"].status == "finished"
    assert len(jobs["a"].shrinks) >= 1  # the SDC quarantine shrink happened
    assert "clean" in replay.format()


def test_replay_drives_drain_events():
    bounds = tiny_bounds()
    _state, trace = scripted(bounds, [
        Event("arrive", job="a"),
        Event("drain", node=0),
        Event("absorb", job="a"),   # migrate off the draining node
        Event("step", job="a"),     # join the replacement grant
        Event("finish", job="a"),
    ])
    replay = replay_trace(bounds, trace)
    assert replay.ok, replay.format()


# -- bounds validation --------------------------------------------------------

@pytest.mark.parametrize("overrides, match", [
    (dict(jobs=()), "at least one job"),
    (dict(depth=0), "depth"),
    (dict(max_steps=0), "max_steps"),
    (dict(max_kills=-1), "max_kills"),
    (dict(placement="ring"), "placement"),
    (dict(nodes_per_rack=0), ">= 1"),
])
def test_bounds_rejects_bad_values(overrides, match):
    with pytest.raises(ValueError, match=match):
        tiny_bounds(**overrides)


def test_bounds_rejects_duplicate_job_names():
    with pytest.raises(ValueError, match="duplicate"):
        tiny_bounds(jobs=(ModelJobSpec(name="a"), ModelJobSpec(name="a")))


def test_model_job_spec_rejects_bad_values():
    with pytest.raises(ValueError, match="gang size"):
        ModelJobSpec(name="a", target=0)
    with pytest.raises(ValueError, match="preemption"):
        ModelJobSpec(name="a", preemption="pause")


# -- determinism --------------------------------------------------------------

def test_exploration_is_deterministic():
    a = verify_fleet(tiny_bounds())
    b = verify_fleet(tiny_bounds())
    assert (a.states, a.transitions, a.frontier_depth) == (
        b.states, b.transitions, b.frontier_depth
    )


def test_invariant_registry_is_stable():
    assert INVARIANTS == (
        "slot-conservation",
        "no-double-grant",
        "no-dead-grants",
        "gang-atomicity",
        "grant-closure",
        "drain-clears-sdc",
        "lineage-valid",
        "bounded-requeue",
    )


def test_canonical_hashing_merges_equivalent_orders():
    # kill(1) then drain(2) lands on the same control-plane state as
    # drain(2) then kill(1) when no job is placed — the explorer's
    # seen-set must merge them.
    bounds = tiny_bounds(max_revives=0)
    s1, _ = scripted(bounds, [Event("kill", node=1), Event("drain", node=2)])
    s2, _ = scripted(bounds, [Event("drain", node=2), Event("kill", node=1)])
    assert s1.canonical() == s2.canonical()
