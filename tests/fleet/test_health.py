"""Health-monitor strike lifecycle, signal validation, and the SDC ledger.

The monitor's hysteresis contract: a drain needs ``strikes`` *consecutive*
unhealthy polls, any healthy poll resets the counter, and a node returned
to service (undrained or revived) re-earns its strikes from zero.  The
SDC ledger feeds the same policy: confirmed corruption strikes accumulate
per node across jobs and leave with the node on drain.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.fleet import (
    FleetScheduler,
    HealthPolicy,
    JobSpec,
    SharedCluster,
)
from repro.train.faults import DrainPolicy, NodeHealthSignal

TIGHT = dict(n_racks=2, nodes_per_rack=2, slots_per_node=1)

#: One poll period of the fast policies below.
POLL = 2e-4


def run_fleet(specs, *, cluster_kw=None, trigger=None, health=None):
    cluster = SharedCluster(**(cluster_kw or TIGHT))
    scheduler = FleetScheduler(cluster, specs, placement="pack", health=health)
    if trigger is not None:
        scheduler.spawn(trigger(cluster, scheduler))
    report = scheduler.run()
    return report, scheduler


# -- signal validation --------------------------------------------------------

def test_signal_rejects_negative_queue_depth():
    with pytest.raises(ValueError, match="cpu_queue_depth"):
        NodeHealthSignal(node=0, cpu_queue_depth=-1, link_factor=1.0)


@pytest.mark.parametrize("factor", [0.0, -0.5, 1.5])
def test_signal_rejects_out_of_range_link_factor(factor):
    with pytest.raises(ValueError, match="link_factor"):
        NodeHealthSignal(node=0, cpu_queue_depth=0, link_factor=factor)


def test_signal_rejects_negative_sdc_count():
    with pytest.raises(ValueError, match="sdc_count"):
        NodeHealthSignal(
            node=0, cpu_queue_depth=0, link_factor=1.0, sdc_count=-1
        )


# -- policy validation and classification -------------------------------------

def test_policy_rejects_bad_thresholds():
    with pytest.raises(ValueError, match="link_factor_threshold"):
        DrainPolicy(link_factor_threshold=1.5)
    with pytest.raises(ValueError, match="queue_depth_threshold"):
        DrainPolicy(queue_depth_threshold=0)
    with pytest.raises(ValueError, match="sdc_threshold"):
        DrainPolicy(sdc_threshold=0)
    with pytest.raises(ValueError, match="strikes"):
        DrainPolicy(strikes=0)


def test_policy_must_watch_at_least_one_signal():
    with pytest.raises(
        ValueError, match="neither links, CPU queues nor SDC strikes"
    ):
        DrainPolicy(
            link_factor_threshold=None,
            queue_depth_threshold=None,
            sdc_threshold=None,
        )


def test_classify_reasons_and_priority():
    policy = DrainPolicy(
        link_factor_threshold=0.5, queue_depth_threshold=4, sdc_threshold=2
    )

    def signal(**kw):
        base = dict(node=0, cpu_queue_depth=0, link_factor=1.0, sdc_count=0)
        base.update(kw)
        return NodeHealthSignal(**base)

    assert policy.classify(signal()) is None
    assert "degraded links" in policy.classify(signal(link_factor=0.25))
    assert "cpu queue depth" in policy.classify(signal(cpu_queue_depth=4))
    assert "silent data corruption" in policy.classify(signal(sdc_count=2))
    # Links outrank queues outrank SDC when several signals fire at once.
    everything = signal(link_factor=0.25, cpu_queue_depth=9, sdc_count=5)
    assert "degraded links" in policy.classify(everything)


# -- strike lifecycle ---------------------------------------------------------

def double_transient(job_name="long", factor=0.05):
    """Degrade the job's last node for 2-3 polls, restore for at least one
    healthy poll, then degrade for 2-3 polls again: 4-6 unhealthy polls
    in total, but never 4 consecutive."""

    def trigger(cluster, scheduler):
        job = scheduler.jobs[job_name]
        while job.telemetry.steps < 1:
            yield cluster.engine.timeout(1e-4)
        # De-align from the poll instants so each degrade window covers a
        # deterministic 2-3 polls with no edge ambiguity.
        yield cluster.engine.timeout(0.3 * POLL)
        node = job.placement[-1]
        cluster.degrade_node_links(node, factor)
        yield cluster.engine.timeout(2.5 * POLL)
        cluster.degrade_node_links(node, 1.0)
        yield cluster.engine.timeout(1.6 * POLL)  # >= 1 healthy poll
        cluster.degrade_node_links(node, factor)
        yield cluster.engine.timeout(2.5 * POLL)
        cluster.degrade_node_links(node, 1.0)

    return trigger


def _lifecycle_health(strikes):
    return HealthPolicy(
        policy=DrainPolicy(link_factor_threshold=0.5, strikes=strikes),
        poll_every=POLL,
    )


def test_healthy_streak_resets_strikes():
    """Two transient windows of 2-3 strikes each never drain a 4-strike
    policy: the healthy polls between them reset the counter instead of
    letting the windows accumulate past the threshold."""
    spec = JobSpec(name="long", n_learners=2, n_steps=12, seed=540)
    report, scheduler = run_fleet(
        [spec], trigger=double_transient(), health=_lifecycle_health(4)
    )
    assert scheduler.jobs["long"].status == "finished"
    assert not any(e.kind in ("drain", "migrate") for e in report.events)


def test_transient_windows_do_carry_strikes():
    """Control for the reset test: the same disturbance drains a 2-strike
    policy, so each window really did land >= 2 consecutive strikes."""
    spec = JobSpec(name="long", n_learners=2, n_steps=12, seed=540)
    report, scheduler = run_fleet(
        [spec], trigger=double_transient(), health=_lifecycle_health(2)
    )
    assert scheduler.jobs["long"].status == "finished"
    drain = next(e for e in report.events if e.kind == "drain")
    assert "degraded links" in drain.text


def test_undrained_node_is_re_drained_on_fresh_strikes():
    """A node restored to service re-earns its strikes from zero and is
    drained again when the degradation returns."""
    spec = JobSpec(name="long", n_learners=2, n_steps=24, seed=541)

    def trigger(cluster, scheduler):
        job = scheduler.jobs[job_name := "long"]
        while job.telemetry.steps < 1:
            yield cluster.engine.timeout(1e-4)
        node = job.placement[-1]
        cluster.degrade_node_links(node, 0.05)
        while node not in scheduler.draining:
            yield cluster.engine.timeout(POLL)
        cluster.degrade_node_links(node, 1.0)
        scheduler.undrain_node(node)
        yield cluster.engine.timeout(2 * POLL)  # healthy polls in between
        cluster.degrade_node_links(node, 0.05)
        while scheduler.jobs[job_name].status != "finished":
            if node in scheduler.draining:
                cluster.degrade_node_links(node, 1.0)
                return
            yield cluster.engine.timeout(POLL)

    report, scheduler = run_fleet(
        [spec], trigger=trigger, health=_lifecycle_health(2)
    )
    assert scheduler.jobs["long"].status == "finished"
    drains = [e for e in report.events if e.kind == "drain"]
    assert len(drains) == 2
    assert drains[0].data["node"] == drains[1].data["node"]
    assert any(e.kind == "undrain" for e in report.events)


# -- the SDC ledger -----------------------------------------------------------

def test_cluster_sdc_ledger_counts_and_clears():
    cluster = SharedCluster(**TIGHT)
    assert cluster.sdc_count(1) == 0
    assert cluster.record_sdc(1) == 1
    assert cluster.record_sdc(1) == 2
    assert cluster.record_sdc(2) == 1
    assert cluster.sdc_count(1) == 2
    cluster.clear_sdc(1)
    assert cluster.sdc_count(1) == 0
    assert cluster.sdc_count(2) == 1  # other nodes keep their strikes
    assert cluster.record_sdc(1) == 1  # re-strikes accumulate from zero


def test_drain_node_clears_sdc_strikes():
    cluster = SharedCluster(**TIGHT)
    scheduler = FleetScheduler(cluster, [])
    cluster.record_sdc(0)
    cluster.record_sdc(0)
    scheduler.drain_node(0, "silent data corruption (test)")
    assert cluster.sdc_count(0) == 0
    assert 0 in scheduler.draining


# -- SDC containment through the fleet ----------------------------------------

def test_single_flip_is_detected_quarantined_and_repaired_bit_exact():
    """One scripted compute-plane bit flip: the job detects it at the
    allreduce boundary, quarantines the learner, books the strike, and
    lands bit-exact on a fault-free run replaying the same shrink."""
    spec = JobSpec(
        name="sick", n_learners=3, n_steps=6, seed=700,
        sdc_check=True, sdc_buckets=2, sdc_faults=((1, 1, 0),),
    )
    report, scheduler = run_fleet([spec])
    job = scheduler.jobs["sick"]
    assert job.status == "finished"
    assert job.sdc_injected == [(1, 1, 0)]
    assert (1, 1) in job.shrink_log
    detect = next(e for e in report.events if e.kind == "sdc-detect")
    assert detect.data["job"] == "sick"
    assert detect.data["strikes"] == 1
    assert "corruption" in detect.text
    # The quarantine replays as a scripted shrink, bit-exact.
    ref_spec = replace(
        spec, sdc_faults=(), elastic_grow=False,
        scripted_shrinks=tuple(job.shrink_log),
        scripted_grows=tuple(job.grow_log),
    )
    _ref_report, ref_scheduler = run_fleet([ref_spec])
    ref = ref_scheduler.jobs["sick"]
    assert ref.status == "finished"
    np.testing.assert_array_equal(job.final_params, ref.final_params)


def test_jobspec_rejects_bad_sdc_configs():
    ok = dict(name="j", n_learners=2, n_steps=4)
    with pytest.raises(ValueError, match="sdc_buckets"):
        JobSpec(**ok, sdc_buckets=0)
    with pytest.raises(ValueError, match="poison training"):
        JobSpec(**ok, sdc_faults=((1, 0, 0),))
    with pytest.raises(ValueError, match="outside"):
        JobSpec(**ok, sdc_check=True, sdc_faults=((9, 0, 0),))
    with pytest.raises(ValueError, match="slot"):
        JobSpec(**ok, sdc_check=True, sdc_faults=((1, -1, 0),))
    with pytest.raises(ValueError, match="bucket"):
        JobSpec(**ok, sdc_check=True, sdc_buckets=2, sdc_faults=((1, 0, 5),))
