"""Ledger audit error paths: leaks, torn grants, unreplayable lineages.

The model checker proves these can't happen under the real scheduler's
policies; these tests prove the *auditors themselves* catch each failure
shape when it is constructed by hand.
"""

import pytest

from repro.fleet.cluster import SharedCluster
from repro.fleet.jobs import validate_scripted_lineage
from repro.fleet.verify import Bounds, ModelJobSpec, check_invariants
from repro.fleet.verify.model import (
    _close_grant,
    _open_grant,
    initial_state,
)
from repro.sim.engine import SimulationError


def small_bounds():
    return Bounds(
        jobs=(ModelJobSpec(name="a", target=2, elastic_grow=True),),
        n_racks=1,
        nodes_per_rack=2,
    )


# -- SharedCluster.leaked_placements -----------------------------------------

def test_leaked_placements_empty_on_balanced_ledger():
    cluster = SharedCluster(n_racks=1, nodes_per_rack=2, slots_per_node=1)
    cluster.allocate("a", 0)
    cluster.release("a", 0)
    assert cluster.leaked_placements() == []


def test_leaked_placements_reports_every_held_slot():
    cluster = SharedCluster(n_racks=1, nodes_per_rack=2, slots_per_node=2)
    cluster.allocate("a", 0)
    cluster.allocate("a", 0)
    cluster.allocate("b", 1)
    assert cluster.leaked_placements() == [(0, "a", 2), (1, "b", 1)]
    cluster.release("a", 0)
    assert cluster.leaked_placements() == [(0, "a", 1), (1, "b", 1)]


def test_leaked_placements_surfaces_torn_grant_across_kill():
    # A slot granted, its node killed, never revoked nor absorbed: the
    # audit must still name it — death does not forgive a held slot.
    cluster = SharedCluster(n_racks=1, nodes_per_rack=2, slots_per_node=1)
    cluster.allocate("a", 1)
    torn = cluster.kill_node(1)
    assert torn == [("a", 1)]  # kill reports who was holding
    assert cluster.leaked_placements() == [(1, "a", 1)]
    cluster.revive_node(1)
    assert cluster.leaked_placements() == [(1, "a", 1)]  # flap keeps it
    cluster.release("a", 1)
    assert cluster.leaked_placements() == []


def test_ledger_rejects_double_release_and_dead_allocate():
    cluster = SharedCluster(n_racks=1, nodes_per_rack=2, slots_per_node=1)
    cluster.allocate("a", 0)
    cluster.release("a", 0)
    with pytest.raises(SimulationError, match="unheld slot"):
        cluster.release("a", 0)
    cluster.kill_node(1)
    with pytest.raises(SimulationError, match="dead node"):
        cluster.allocate("a", 1)


# -- model grant lifecycle ----------------------------------------------------

def test_model_revoke_after_join_is_a_closure_violation():
    # Join consumes the grant; a second close (the revocation racing the
    # join) must be flagged, not silently double-counted.
    bounds = small_bounds()
    state = initial_state(bounds)
    job = state.job("a")
    _open_grant(state, job, 0)
    _close_grant(state, job, 0, "join")
    assert not state.violations
    _close_grant(state, job, 0, "revoke")
    assert any(
        v.invariant == "grant-closure" and "not held" in v.detail
        for v in state.violations
    )


def test_model_torn_grant_is_a_dead_grant_violation():
    # Grant open, node killed, grant not revoked: the state-level check
    # names the dangling grant.
    bounds = small_bounds()
    state = initial_state(bounds)
    job = state.job("a")
    job.status = "running"
    _open_grant(state, job, 1)
    state.nodes[1].alive = False
    breaches = check_invariants(state, bounds)
    assert any(
        v.invariant == "no-dead-grants" and "dead node 1" in v.detail
        for v in breaches
    )


# -- scripted lineage error paths ---------------------------------------------

def test_lineage_rejects_dropping_last_learner():
    with pytest.raises(ValueError, match="drop the last learner"):
        validate_scripted_lineage(2, 4, ((0, 1), (1, 0)), ())


def test_lineage_rejects_grow_slot_not_at_end():
    # Grown learners append: slot must equal the live count.
    with pytest.raises(ValueError, match="expected slot 2"):
        validate_scripted_lineage(2, 4, (), ((1, 0),))


def test_lineage_rejects_interleaved_same_iteration_shrink_then_grow():
    # Within one iteration grows apply first (top of step), shrinks
    # after compute — a script that only replays shrink-before-grow at
    # the same boundary is unreplayable and must be rejected.
    with pytest.raises(ValueError, match="expected slot 2"):
        validate_scripted_lineage(2, 4, ((2, 1),), ((2, 1),))
    # The replayable spelling of the same intent is accepted.
    validate_scripted_lineage(2, 4, ((2, 1),), ((2, 2),))


def test_lineage_rejects_shrink_of_unknown_slot_after_interleaving():
    # After a scripted shrink the gang is smaller; a later shrink naming
    # the departed slot index must be rejected with the live range.
    with pytest.raises(ValueError, match=r"slot outside \[0, 2\)"):
        validate_scripted_lineage(3, 6, ((1, 0), (2, 2)), ())
