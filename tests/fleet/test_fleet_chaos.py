"""Fleet chaos sweep: the seven robustness invariants under disturbance."""

import pytest

from repro.fleet import fleet_chaos_sweep
from repro.fleet.chaos import (
    FLEET_KINDS,
    GROW_KINDS,
    SDC_KINDS,
    FleetChaosPoint,
    _points,
)


def test_smoke_sweep_holds_all_invariants():
    report = fleet_chaos_sweep(smoke=True)
    assert report.outcomes, "sweep enumerated no points"
    failed = [o for o in report.outcomes if not o.ok]
    assert report.all_ok, "\n" + report.format() + f"\n{len(failed)} failed"


def test_smoke_sweep_covers_every_kind_and_placement():
    report = fleet_chaos_sweep(smoke=True)
    seen = {(o.point.kind, o.point.placement) for o in report.outcomes}
    for kind in FLEET_KINDS:
        for placement in ("pack", "spread"):
            assert (kind, placement) in seen


def test_node_kills_actually_fired_and_shrank_jobs():
    report = fleet_chaos_sweep(kinds=("node-kill",), smoke=True)
    assert report.all_ok, "\n" + report.format()
    for outcome in report.outcomes:
        kills = [e for e in outcome.report.events if e.kind == "node-kill"]
        assert len(kills) == 1
        shrunk = [j for j in outcome.report.jobs if j.shrinks]
        assert len(shrunk) == outcome.point.hosted


def test_grow_kind_triggers_actually_fired():
    report = fleet_chaos_sweep(kinds=GROW_KINDS, smoke=True)
    assert report.all_ok, "\n" + report.format()
    for outcome in report.outcomes:
        label = outcome.point.label()
        long = outcome.report.job("long")
        assert long.grows, label  # every grow kind regrew the shrunk job
        kinds = [e.kind for e in outcome.report.events]
        if outcome.point.kind == "grow-in-flight-kill":
            assert "grow-revoked" in kinds, label
        elif outcome.point.kind == "kill-in-grow-replay":
            assert len(long.shrinks) >= 2 and len(long.grows) >= 2, label
        elif outcome.point.kind == "node-flap":
            assert "drain" in kinds and "migrate" in kinds, label
            assert long.migrations >= 1, label


def test_sdc_kind_detects_quarantines_drains_and_migrates():
    report = fleet_chaos_sweep(kinds=SDC_KINDS, smoke=True)
    assert report.all_ok, "\n" + report.format()
    for outcome in report.outcomes:
        label = outcome.point.label()
        kinds = [e.kind for e in outcome.report.events]
        # One flip per sick job, both detected before any optimizer apply.
        assert kinds.count("sdc-detect") == 2, label
        # Cross-job strikes on the co-located node drained it and moved
        # the hosted learners elsewhere.
        assert "drain" in kinds and "migrate" in kinds, label
        for name in ("sickA", "sickB"):
            assert outcome.report.job(name).shrinks, label
        # The clean job is never quarantined — its only disturbance is
        # the migration off the drained node, which regrows elastically.
        clean = outcome.report.job("clean")
        assert clean.migrations >= 1 and clean.grows, label


def test_unknown_kind_is_rejected():
    with pytest.raises(ValueError, match="unknown fleet chaos kind"):
        fleet_chaos_sweep(kinds=("bogus",))


def test_full_point_set_covers_node_kill_cross_product():
    points = _points(FLEET_KINDS, ("pack", "spread"), smoke=False)
    kills = {
        (p.placement, p.n_jobs, p.hosted)
        for p in points
        if p.kind == "node-kill"
    }
    for placement in ("pack", "spread"):
        for n_jobs in (3, 5):
            for hosted in (1, 2):
                assert (placement, n_jobs, hosted) in kills
    assert FleetChaosPoint("node-kill", "pack", 3, 1).label()


@pytest.mark.slow
def test_full_sweep_holds_all_invariants():
    report = fleet_chaos_sweep(smoke=False)
    assert report.all_ok, "\n" + report.format()
    # Full sweep widens node-kill to the 5-job workload on both policies.
    kill_points = {
        (o.point.placement, o.point.n_jobs, o.point.hosted)
        for o in report.outcomes
        if o.point.kind == "node-kill"
    }
    assert ("pack", 5, 1) in kill_points
    assert ("spread", 5, 2) in kill_points
