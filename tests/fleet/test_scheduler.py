"""Fleet scheduler: gang placement, preemption, fault domains, requeue."""

from dataclasses import replace

import numpy as np

from repro.fleet import FleetScheduler, JobSpec, SharedCluster


def run_fleet(specs, *, placement="pack", seed=0, max_queued=None,
              cluster_kw=None, trigger=None):
    cluster = SharedCluster(**(cluster_kw or {}))
    scheduler = FleetScheduler(
        cluster, specs, placement=placement, seed=seed, max_queued=max_queued
    )
    if trigger is not None:
        scheduler.spawn(trigger(cluster, scheduler))
    report = scheduler.run()
    return report, scheduler


def solo_params(spec, cluster_kw=None):
    """Final params of an uninterrupted single-job run of ``spec``."""
    clean = replace(spec, arrival=0.0, priority=0)
    _report, scheduler = run_fleet([clean], cluster_kw=cluster_kw)
    job = scheduler.jobs[spec.name]
    assert job.status == "finished"
    return job.final_params


def test_gang_waits_and_backfill():
    # big (4 learners) cannot start while job0 holds 2 of 4 one-slot
    # nodes; small (1 learner) backfills around the blocked gang.
    specs = [
        JobSpec(name="job0", n_learners=2, n_steps=4, seed=1),
        JobSpec(name="big", n_learners=4, n_steps=2, seed=2, arrival=1e-4),
        JobSpec(name="small", n_learners=1, n_steps=2, seed=3, arrival=2e-4),
    ]
    report, scheduler = run_fleet(
        specs,
        cluster_kw=dict(n_racks=2, nodes_per_rack=2, slots_per_node=1),
    )
    assert report.all_terminal
    assert all(j.status == "finished" for j in report.jobs)
    big = scheduler.jobs["big"].telemetry
    small = scheduler.jobs["small"].telemetry
    job0 = scheduler.jobs["job0"].telemetry
    assert big.first_start >= job0.finished  # gang waited for all 4 nodes
    assert small.first_start < big.first_start  # backfilled past the gang
    assert big.queue_wait > 0


def test_pack_vs_spread_rack_span():
    spec = [JobSpec(name="job0", n_learners=2, n_steps=2)]
    for placement, racks_wanted in (("pack", 1), ("spread", 2)):
        report, scheduler = run_fleet(spec, placement=placement)
        start = next(e for e in report.events if e.kind == "start")
        cluster = scheduler.cluster
        racks = {cluster.rack_of(n) for n in start.data["nodes"]}
        assert len(racks) == racks_wanted, placement


def test_colocated_jobs_contend_but_stay_bit_exact():
    spec = JobSpec(name="job0", n_learners=2, n_steps=4, seed=5)
    other = JobSpec(name="other", n_learners=2, n_steps=4, seed=6)
    solo_report, solo_sched = run_fleet([spec])
    shared_report, shared_sched = run_fleet([spec, other])
    # pack co-locates both jobs on the same nodes: genuinely slower...
    assert shared_report.makespan > solo_report.makespan
    # ...but numerically untouched.
    assert np.array_equal(
        shared_sched.jobs["job0"].final_params,
        solo_sched.jobs["job0"].final_params,
    )


def test_priority_preemption_checkpoints_and_stays_bit_exact():
    victim = JobSpec(
        name="victim", n_learners=4, n_steps=6, seed=11, checkpoint_every=2
    )
    vip = JobSpec(
        name="vip", n_learners=6, n_steps=2, seed=12, priority=5, arrival=1e-3
    )
    cluster_kw = dict(n_racks=2, nodes_per_rack=4, slots_per_node=1)
    report, scheduler = run_fleet([victim, vip], cluster_kw=cluster_kw)
    vjob = scheduler.jobs["victim"]
    assert all(j.status == "finished" for j in report.jobs)
    assert vjob.telemetry.preemptions >= 1
    assert vjob.telemetry.checkpoints >= 1
    preempt = next(e for e in report.events if e.kind == "preempt")
    assert preempt.data["beneficiary"] == "vip"
    # The vip ran in the middle of the victim's lifetime, on its slots.
    assert report.job("vip").finished < report.job("victim").finished
    # Preemption is a *controlled* fault: checkpoint/restore round-trips
    # to exactly the weights an uninterrupted run produces.
    assert np.array_equal(
        vjob.final_params, solo_params(victim, cluster_kw=cluster_kw)
    )


def test_shrink_mode_preemption_surrenders_one_learner():
    victim = JobSpec(
        name="victim", n_learners=3, n_steps=6, seed=21, preemption="shrink"
    )
    vip = JobSpec(
        name="vip", n_learners=6, n_steps=2, seed=22, priority=5, arrival=8e-4
    )
    cluster_kw = dict(n_racks=2, nodes_per_rack=4, slots_per_node=1)
    report, scheduler = run_fleet([victim, vip], cluster_kw=cluster_kw)
    vjob = scheduler.jobs["victim"]
    assert all(j.status == "finished" for j in report.jobs)
    assert vjob.telemetry.preemptions == 0  # never vacated, only shrank
    assert len(vjob.shrink_log) == 1
    # The reference: a fault-free run replaying the same controlled shrink.
    ref = replace(
        victim, arrival=0.0, scripted_shrinks=tuple(vjob.shrink_log)
    )
    assert np.array_equal(
        vjob.final_params, solo_params(ref, cluster_kw=cluster_kw)
    )


def kill_node_when_running(node_index):
    def trigger(cluster, scheduler):
        while True:
            yield cluster.engine.timeout(1e-4)
            running = [
                j for j in scheduler.jobs.values() if j.status == "running"
            ]
            if running and all(j.telemetry.steps >= 1 for j in running):
                scheduler.kill_node(node_index)
                return

    return trigger


def test_node_kill_emits_correlated_failures():
    # pack puts job0 and job1 on the same two nodes; killing one node
    # must shrink *both* jobs in the same instant and name both victims.
    specs = [
        JobSpec(name="job0", n_learners=2, n_steps=5, seed=31),
        JobSpec(name="job1", n_learners=2, n_steps=5, seed=32),
    ]
    report, scheduler = run_fleet(
        specs, trigger=kill_node_when_running(0)
    )
    assert all(j.status == "finished" for j in report.jobs)
    assert len(scheduler.jobs["job0"].shrink_log) == 1
    assert len(scheduler.jobs["job1"].shrink_log) == 1
    kill = next(e for e in report.events if e.kind == "node-kill")
    assert sorted(kill.data["jobs"]) == ["job0", "job1"]
    assert "job job0 slot 0" in kill.text
    assert "job job1 slot 0" in kill.text
    assert report.leaked == []
    # Survivors are bit-exact vs fault-free runs scripted with the shrink.
    for name in ("job0", "job1"):
        job = scheduler.jobs[name]
        ref = replace(
            job.spec, scripted_shrinks=tuple(job.shrink_log)
        )
        assert np.array_equal(job.final_params, solo_params(ref))


def kill_all_job_nodes(name):
    def trigger(cluster, scheduler):
        job = scheduler.jobs[name]
        while job.telemetry.steps < 3:
            yield cluster.engine.timeout(1e-4)
        for node_index in list(job.placement):
            if cluster.nodes[node_index].alive:
                scheduler.kill_node(node_index)

    return trigger


def test_total_loss_requeues_from_checkpoint_with_seeded_backoff():
    spec = JobSpec(name="solo", n_learners=2, n_steps=6, seed=7,
                   checkpoint_every=2)
    report, scheduler = run_fleet([spec], trigger=kill_all_job_nodes("solo"))
    job = scheduler.jobs["solo"]
    assert job.status == "finished"
    assert job.telemetry.requeues == 1
    assert job.final_iteration == 6
    requeue = next(
        e for e in report.events if e.kind == "requeue" and "delay" in e.data
    )
    assert requeue.data["delay"] > 0
    assert report.leaked == []
    # Restarted from the checkpoint on fresh nodes, bit-exact vs clean run.
    assert np.array_equal(job.final_params, solo_params(spec))


def test_requeue_jitter_is_seeded_and_reproducible():
    spec = JobSpec(name="solo", n_learners=2, n_steps=6, seed=7,
                   checkpoint_every=2)

    def requeue_delay(seed):
        report, _sched = run_fleet(
            [spec], seed=seed, trigger=kill_all_job_nodes("solo")
        )
        event = next(
            e for e in report.events
            if e.kind == "requeue" and "delay" in e.data
        )
        return event.data["delay"], [
            (e.t, e.kind, e.text) for e in report.events
        ], report.makespan

    delay_a, events_a, makespan_a = requeue_delay(0)
    delay_b, events_b, makespan_b = requeue_delay(0)
    delay_c, _events_c, _makespan_c = requeue_delay(1)
    # Same fleet seed: bit-identical schedule, events and makespan.
    assert delay_a == delay_b
    assert events_a == events_b
    assert makespan_a == makespan_b
    # Different fleet seed: different jitter draw.
    assert delay_a != delay_c


def test_admission_limits_reject_instead_of_queueing_forever():
    specs = [
        JobSpec(name="hog", n_learners=4, n_steps=5, seed=41),
        JobSpec(name="wait0", n_learners=4, n_steps=2, seed=42, arrival=1e-4),
        JobSpec(name="wait1", n_learners=4, n_steps=2, seed=43, arrival=2e-4),
        JobSpec(name="over", n_learners=4, n_steps=2, seed=44, arrival=3e-4),
    ]
    report, _scheduler = run_fleet(
        specs, max_queued=2,
        cluster_kw=dict(n_racks=2, nodes_per_rack=2, slots_per_node=1),
    )
    assert report.job("over").status == "rejected"
    assert report.job("wait0").status == "finished"
    assert report.job("wait1").status == "finished"
    assert report.all_terminal


def test_oversized_job_is_rejected_outright():
    report, _scheduler = run_fleet(
        [JobSpec(name="huge", n_learners=99, n_steps=1)]
    )
    assert report.job("huge").status == "rejected"


def test_fleet_metrics_are_populated():
    specs = [
        JobSpec(name=f"job{i}", n_learners=2, n_steps=4, seed=50 + i)
        for i in range(3)
    ]
    report, _scheduler = run_fleet(specs)
    assert report.makespan > 0
    assert 0 < report.utilization <= 1
    assert 0 < report.goodput <= report.utilization
