"""Report generator test (slow: runs the full experiment sweep)."""

import pytest

from repro.analysis.report import generate_report


@pytest.mark.slow
def test_generate_report_covers_everything():
    text = generate_report()
    for must_have in (
        "Table 1", "Table 2", "Figure 5", "Figure 6", "Figure 7",
        "Figure 8", "Figure 9", "Figure 10", "Figure 11", "Figure 12",
        "Figures 13-16", "multicolor", "DIMD",
    ):
        assert must_have in text
    # Markdown tables present.
    assert text.count("|---|") >= 10
