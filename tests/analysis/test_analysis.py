"""Tests for tables, figures and comparators."""

import pytest

from repro.analysis import (
    PAPER_TABLE1,
    fig6_series,
    fig_dimd_series,
    fig_dpt_series,
    ordering_matches,
    relative_error,
    render_table1,
    render_table2,
    table1_rows,
    table2_rows,
)
from repro.analysis.compare import improvement_pct
from repro.utils.ascii import render_series, render_table


def test_table1_rows_structure():
    rows = table1_rows(models=("resnet50",), node_counts=(8,))
    assert len(rows) == 1
    r = rows[0]
    assert r["base_s"] > r["opt_s"]
    assert r["speedup_pct"] > 0
    assert r["paper_base_s"] == PAPER_TABLE1[("resnet50", 8)][0]


def test_render_table1_mentions_paper_values():
    text = render_table1(table1_rows(models=("resnet50",), node_counts=(8,)))
    assert "Table 1" in text
    assert "(498)" in text


def test_table2_has_measured_row():
    rows = table2_rows()
    assert rows[-1]["measured"]
    assert rows[-1]["batch"] == 8192
    text = render_table2(rows)
    assert "Goyal" in text and "This reproduction" in text


def test_fig6_multicolor_fastest():
    x, series, meta = fig6_series(node_counts=(8, 16))
    assert x == [8, 16]
    for i in range(2):
        assert series["multicolor"][i] <= series["ring"][i]
        assert series["ring"][i] < series["openmpi_default"][i]


def test_fig_dimd_gains_direction():
    _x, series, _meta = fig_dimd_series("imagenet-1k", node_counts=(8,))
    for model in ("googlenet_bn", "resnet50"):
        assert series[f"{model} file I/O"][0] > series[f"{model} DIMD"][0]


def test_fig_dpt_gains_direction():
    _x, series, _meta = fig_dpt_series(node_counts=(8,))
    for model in ("googlenet_bn", "resnet50"):
        assert series[f"{model} baseline"][0] > series[f"{model} optimized"][0]


def test_comparators():
    assert relative_error(110, 100) == pytest.approx(0.1)
    assert improvement_pct(200, 150) == pytest.approx(25.0)
    assert ordering_matches([1, 2, 3], "asc")
    assert ordering_matches([3, 2, 1], "desc")
    assert not ordering_matches([1, 3, 2], "asc")
    with pytest.raises(ValueError):
        relative_error(1, 0)
    with pytest.raises(ValueError):
        ordering_matches([1], "sideways")
    with pytest.raises(ValueError):
        improvement_pct(0, 1)


def test_render_table_basic():
    text = render_table(["a", "b"], [[1, 2.5], ["x", 0.0001]])
    assert "| a" in text or "a |" in text
    with pytest.raises(ValueError):
        render_table(["a"], [[1, 2]])


def test_render_series_basic():
    text = render_series(
        [1, 2, 3], {"s1": [1.0, 2.0, 3.0], "s2": [3.0, 2.0, 1.0]},
        title="demo", xlabel="x", ylabel="y",
    )
    assert "demo" in text
    assert "s1" in text and "s2" in text
    assert render_series([], {}) == "(empty chart)"
