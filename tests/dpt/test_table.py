"""Both DataParallelTable designs must compute identical math."""

import numpy as np
import pytest

from repro.dpt import BaselineDataParallelTable, OptimizedDataParallelTable
from repro.models.nn import Dense, Network, ReLU


def make_replicas(m, seed=0, n_in=6, n_out=3):
    rng = np.random.default_rng(seed)
    return [
        Network([Dense(n_in, 12, rng), ReLU(), Dense(12, n_out, rng)])
        for _ in range(m)
    ]


def make_batch(seed=1, n=16, n_in=6, n_out=3):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, n_in)), rng.integers(0, n_out, size=n)


def reference_grad(seed, x, y, n_in=6, n_out=3):
    rng = np.random.default_rng(seed)
    net = Network([Dense(n_in, 12, rng), ReLU(), Dense(12, n_out, rng)])
    # A second network from the same rng stream would differ; reuse replica 0
    # weights instead.
    return net


def test_replicas_start_identical():
    with OptimizedDataParallelTable(make_replicas(4)) as dpt:
        flats = [r.get_flat_params() for r in dpt.replicas]
        for f in flats[1:]:
            np.testing.assert_array_equal(f, flats[0])


def test_both_designs_match_single_gpu():
    x, y = make_batch()
    replicas = make_replicas(4, seed=5)
    single = make_replicas(1, seed=5)[0]
    single.set_flat_params(replicas[0].get_flat_params())
    ref_loss, ref_grads = single.loss_and_grad(x, y)

    with BaselineDataParallelTable(make_replicas(4, seed=5)) as base:
        base.broadcast_params(single.get_flat_params())
        b_loss, b_grads = base.forward_backward(x, y)
    with OptimizedDataParallelTable(make_replicas(4, seed=5)) as opt:
        opt.broadcast_params(single.get_flat_params())
        o_loss, o_grads = opt.forward_backward(x, y)

    assert b_loss == pytest.approx(ref_loss, rel=1e-12)
    assert o_loss == pytest.approx(ref_loss, rel=1e-12)
    np.testing.assert_allclose(b_grads, ref_grads, rtol=1e-10, atol=1e-12)
    np.testing.assert_allclose(o_grads, ref_grads, rtol=1e-10, atol=1e-12)


def test_designs_match_each_other_across_steps():
    x, y = make_batch(seed=9, n=24)
    with BaselineDataParallelTable(make_replicas(3, seed=2)) as base, \
         OptimizedDataParallelTable(make_replicas(3, seed=2)) as opt:
        params = base.replicas[0].get_flat_params()
        opt.broadcast_params(params)
        for step in range(3):
            bl, bg = base.forward_backward(x, y)
            ol, og = opt.forward_backward(x, y)
            assert bl == pytest.approx(ol, rel=1e-12)
            np.testing.assert_allclose(bg, og, rtol=1e-10, atol=1e-12)
            params = params - 0.1 * bg
            base.broadcast_params(params)
            opt.broadcast_params(params)


def test_sync_point_counts():
    with BaselineDataParallelTable(make_replicas(2)) as base:
        assert base.sync_points_per_step == 4
    with OptimizedDataParallelTable(make_replicas(2)) as opt:
        assert opt.sync_points_per_step == 1


def test_optimized_runs_fewer_callbacks():
    x, y = make_batch(n=8)
    with BaselineDataParallelTable(make_replicas(2, seed=3)) as base:
        base.forward_backward(x, y)
        base_callbacks = base.threads.callbacks_run
    with OptimizedDataParallelTable(make_replicas(2, seed=3)) as opt:
        opt.forward_backward(x, y)
        opt_callbacks = opt.threads.callbacks_run
    assert opt_callbacks < base_callbacks


def test_indivisible_batch_rejected():
    with OptimizedDataParallelTable(make_replicas(3)) as dpt:
        x, y = make_batch(n=16)
        with pytest.raises(ValueError, match="not divisible"):
            dpt.forward_backward(x, y)


def test_mismatched_replicas_rejected():
    rng = np.random.default_rng(0)
    a = Network([Dense(4, 2, rng)])
    b = Network([Dense(5, 2, rng)])
    with pytest.raises(ValueError, match="identical"):
        BaselineDataParallelTable([a, b])
    with pytest.raises(ValueError):
        OptimizedDataParallelTable([])


def test_forward_only_matches_single_network():
    x, _y = make_batch(seed=21, n=12)
    replicas = make_replicas(3, seed=8)
    single = make_replicas(1, seed=8)[0]
    single.set_flat_params(replicas[0].get_flat_params())
    expected = single.forward(x, train=False)
    for cls in (BaselineDataParallelTable, OptimizedDataParallelTable):
        with cls(make_replicas(3, seed=8)) as dpt:
            dpt.broadcast_params(single.get_flat_params())
            out = dpt.forward_only(x)
        np.testing.assert_allclose(out, expected, rtol=1e-12, atol=1e-14)


def test_forward_only_shape_and_divisibility():
    with OptimizedDataParallelTable(make_replicas(2)) as dpt:
        x, _ = make_batch(n=8)
        assert dpt.forward_only(x).shape == (8, 3)
        with pytest.raises(ValueError):
            dpt.forward_only(x[:7])
