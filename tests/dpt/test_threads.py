"""Tests for the Torch-threads-style pool."""

import threading

import pytest

from repro.dpt import TorchThreads


def test_jobs_run_and_return_values():
    with TorchThreads(2) as pool:
        pool.add_job(lambda: 1)
        pool.add_job(lambda: 2)
        assert pool.synchronize() == [1, 2]
        assert pool.jobs_run == 2


def test_ending_callbacks_serialized_in_order():
    order = []
    with TorchThreads(4) as pool:
        for i in range(8):
            pool.add_job(lambda i=i: i, lambda v: order.append(v))
        pool.synchronize()
    # Callbacks run in submission order regardless of job completion order.
    assert order == list(range(8))


def test_callbacks_run_on_synchronizing_thread():
    callback_threads = []
    with TorchThreads(3) as pool:
        for _ in range(3):
            pool.add_job(
                lambda: threading.get_ident(),
                lambda _v: callback_threads.append(threading.get_ident()),
            )
        job_threads = pool.synchronize()
    main = threading.get_ident()
    assert all(t == main for t in callback_threads)
    assert any(t != main for t in job_threads)  # jobs ran off-main


def test_jobs_actually_parallel():
    """With n threads and n sleeping jobs, wall time ~ one job."""
    import time

    with TorchThreads(4) as pool:
        start = time.monotonic()
        for _ in range(4):
            pool.add_job(lambda: time.sleep(0.1))
        pool.synchronize()
        elapsed = time.monotonic() - start
    assert elapsed < 0.35


def test_exception_propagates_at_synchronize():
    with TorchThreads(1) as pool:
        pool.add_job(lambda: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            pool.synchronize()


def test_synchronize_empty_is_noop():
    with TorchThreads(1) as pool:
        assert pool.synchronize() == []


def test_use_after_shutdown_rejected():
    pool = TorchThreads(1)
    pool.shutdown()
    with pytest.raises(RuntimeError):
        pool.add_job(lambda: 1)


def test_validation():
    with pytest.raises(ValueError):
        TorchThreads(0)
