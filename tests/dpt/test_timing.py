"""Tests for the DPT timing models."""

import pytest

from repro.cluster import MINSKY_NODE
from repro.dpt import DPTTimingModel, DPT_VARIANTS

BATCH_BYTES = 256 * 3 * 224 * 224 * 4  # 256 images/node, fp32
OUTPUT_BYTES = 256 * 1000 * 4


@pytest.fixture
def baseline():
    return DPTTimingModel(MINSKY_NODE, "baseline")


@pytest.fixture
def optimized():
    return DPTTimingModel(MINSKY_NODE, "optimized")


def test_optimized_is_faster_everywhere(baseline, optimized):
    assert optimized.input_time(BATCH_BYTES) < baseline.input_time(BATCH_BYTES)
    assert optimized.criterion_time(OUTPUT_BYTES) < baseline.criterion_time(
        OUTPUT_BYTES
    )
    assert optimized.serialization_time() < baseline.serialization_time()
    assert optimized.step_overhead(BATCH_BYTES, OUTPUT_BYTES) < baseline.step_overhead(
        BATCH_BYTES, OUTPUT_BYTES
    )


def test_sync_points_match_functional_tables(baseline, optimized):
    assert baseline.sync_points == 4
    assert optimized.sync_points == 1


def test_serialization_scales_with_gpus(baseline):
    assert baseline.serialization_time() == pytest.approx(
        4 * MINSKY_NODE.n_gpus * baseline.callback_cost
    )


def test_breakdown_sums_to_overhead(baseline):
    parts = baseline.breakdown(BATCH_BYTES, OUTPUT_BYTES)
    assert sum(parts.values()) == pytest.approx(
        baseline.step_overhead(BATCH_BYTES, OUTPUT_BYTES)
    )
    assert set(parts) == {"input", "criterion", "serialization"}


def test_overhead_magnitude_sensible(baseline, optimized):
    """The per-step saving should sit in the tens-of-ms range that yields
    the paper's 15-18% epoch improvement at ~350 ms steps."""
    saved = baseline.step_overhead(BATCH_BYTES, OUTPUT_BYTES) - optimized.step_overhead(
        BATCH_BYTES, OUTPUT_BYTES
    )
    assert 0.02 < saved < 0.12


def test_variants_registry():
    assert DPT_VARIANTS == ("baseline", "optimized")


def test_validation():
    with pytest.raises(ValueError):
        DPTTimingModel(MINSKY_NODE, "turbo")
    with pytest.raises(ValueError):
        DPTTimingModel(MINSKY_NODE, "baseline", criterion_bandwidth=0)
    model = DPTTimingModel(MINSKY_NODE, "baseline")
    with pytest.raises(ValueError):
        model.step_overhead(-1, 0)
