"""Tests for units, RNG derivation and formatting helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils import (
    Gbps,
    bytes_per_second,
    derive_seed,
    format_bytes,
    format_duration,
    format_rate,
    rng_for,
)


def test_gbps_conversion():
    assert Gbps(100) == pytest.approx(12.5e9)
    assert Gbps(8) == pytest.approx(1e9)


def test_bytes_per_second():
    assert bytes_per_second(100, 2) == 50
    with pytest.raises(ValueError):
        bytes_per_second(100, 0)


def test_format_bytes():
    assert format_bytes(512) == "512 B"
    assert format_bytes(93_000_000) == "88.7 MiB"
    assert format_bytes(70e9) == "65.2 GiB"
    assert format_bytes(-2048) == "-2.0 KiB"


def test_format_duration():
    assert format_duration(48 * 60) == "48m00s"
    assert format_duration(4.2) == "4.2s"
    assert format_duration(0.0113) == "11.3ms"
    assert format_duration(2e-6) == "2us"
    assert format_duration(3700) == "1h01m"
    assert format_duration(5e-10).endswith("ns")


def test_format_rate():
    assert format_rate(12.5e9) == "12.5 GB/s"
    assert format_rate(350e6) == "350.0 MB/s"
    assert format_rate(10) == "10 B/s"


def test_derive_seed_stable_and_distinct():
    assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)
    assert derive_seed(1, "a", 2) != derive_seed(1, "a", 3)
    assert derive_seed(1, "a") != derive_seed(2, "a")


def test_rng_for_independent_streams():
    a = rng_for(0, "x").standard_normal(4)
    b = rng_for(0, "y").standard_normal(4)
    a2 = rng_for(0, "x").standard_normal(4)
    np.testing.assert_array_equal(a, a2)
    assert not np.array_equal(a, b)


@given(seed=st.integers(0, 2**31), tag=st.text(max_size=8))
def test_derive_seed_in_range(seed, tag):
    s = derive_seed(seed, tag)
    assert 0 <= s < 2**63


def test_public_package_api():
    import repro

    assert repro.__version__ == "1.0.0"
    assert "multicolor" in repro.ALLREDUCE_ALGORITHMS
