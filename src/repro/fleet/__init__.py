"""Multi-tenant fleet layer: many trainer jobs on one shared cluster.

See DESIGN.md §4h.  The pieces:

* :class:`~repro.fleet.cluster.SharedCluster` — nodes, racks, the shared
  engine/fabric/world, and the slot/utilization ledger;
* :class:`~repro.fleet.jobs.JobSpec` / :class:`~repro.fleet.jobs.FleetJob`
  — deterministic job definitions and their runtime training programs;
* :func:`~repro.fleet.collective.guarded_fleet_allreduce` — the
  watchdog/retry/surgical-repair guard re-expressed as a generator for a
  shared engine;
* :class:`~repro.fleet.scheduler.FleetScheduler` — gang scheduling,
  pack/spread placement, priority preemption, seeded-backoff requeue,
  elastic grow-after-shrink and proactive drain/migration;
* :mod:`~repro.fleet.health` — the opt-in straggler monitor that turns
  per-node runtime signals into proactive drains;
* :func:`~repro.fleet.chaos.fleet_chaos_sweep` — the fleet-level chaos
  harness asserting the seven robustness invariants.
"""

from repro.fleet.chaos import FleetChaosReport, fleet_chaos_sweep
from repro.fleet.cluster import Node, SharedCluster
from repro.fleet.collective import JobLost, guarded_fleet_allreduce
from repro.fleet.health import HealthPolicy, health_monitor
from repro.fleet.jobs import (
    FleetJob,
    JobSpec,
    PreemptionNotice,
    build_trainer,
    validate_scripted_lineage,
)
from repro.fleet.scheduler import (
    FleetEvent,
    FleetReport,
    FleetScheduler,
    JobSummary,
)

__all__ = [
    "FleetChaosReport",
    "FleetEvent",
    "FleetJob",
    "FleetReport",
    "FleetScheduler",
    "HealthPolicy",
    "JobLost",
    "JobSpec",
    "JobSummary",
    "Node",
    "PreemptionNotice",
    "SharedCluster",
    "build_trainer",
    "fleet_chaos_sweep",
    "guarded_fleet_allreduce",
    "health_monitor",
    "validate_scripted_lineage",
]
