"""Pure fleet control-plane policy: every scheduler *decision* as a function.

``FleetScheduler`` used to make its decisions inline — placement scoring
in ``_place``, grow-offer order and grow-node choice in
``_offer_grows``/``_pick_grow_node``, preemption-victim selection in
``_maybe_preempt``, drain gating in ``drain_node``.  This module hoists
all of them into pure functions over a serializable :class:`FleetState`
snapshot, with two consumers sharing the exact same code:

* the **runtime** scheduler (:mod:`repro.fleet.scheduler`) builds a
  snapshot of its live objects before every decision;
* the **model checker** (:mod:`repro.fleet.verify`) builds snapshots of
  its abstract states while exhaustively exploring event interleavings —
  so a policy bug the checker proves absent is absent from the runtime
  too, and a mutation of this file is visible to both.

This is also the seam ROADMAP item 3's DRF allocator targets: weighted
fair sharing replaces these functions (share-aware ``scan_order`` /
``grow_offer_order`` / ``select_preemption_victims``) without touching
the scheduler's event plumbing, and inherits the checker for free.

Nothing here mutates anything, reads a clock, or draws randomness:
``decision = f(FleetState)``, always.
"""

from __future__ import annotations

from typing import NamedTuple

__all__ = [
    "FleetState",
    "JobView",
    "NodeView",
    "choose_placement",
    "drain_admissible",
    "grow_offer_order",
    "pick_grow_node",
    "scan_order",
    "select_preemption_victims",
    "wants_grow",
]

#: Job statuses with a live program attached (placement-holding states).
ACTIVE_STATUSES = ("running", "checkpointing")


class NodeView(NamedTuple):
    """One node as the placement policies see it.

    (A ``NamedTuple``, not a dataclass: the model checker builds millions
    of these while exploring, and tuple construction is what keeps the
    smoke bound inside its time budget.)
    """

    index: int
    rack: int
    slots: int
    used: int
    alive: bool
    draining: bool

    @property
    def free(self) -> int:
        return self.slots - self.used if self.alive else 0

    @property
    def placeable(self) -> bool:
        return self.alive and self.free > 0 and not self.draining


class JobView(NamedTuple):
    """One job as the queue/grow/preemption policies see it."""

    name: str
    priority: int
    #: FIFO tiebreak: submission order (``-1`` = never enqueued, sorts
    #: like the runtime's ``_order.get(name, 0)`` default would).
    order: int
    #: Raw job status string (``"running"``, ``"queued"``, ...).
    status: str
    #: True when a live program is attached (the runtime's
    #: ``proc is not None and proc.is_alive`` on top of the status).
    active: bool
    preemption: str
    elastic_grow: bool
    #: Full gang size the job wants to (re)grow towards.
    target: int
    #: Gang size for the next (re)start (checkpointed live count after a
    #: shrink, else ``target``) — the runtime's ``learners_needed()``.
    needed: int
    placement: tuple[int, ...]
    pending_grows: tuple[int, ...]
    pending_shrinks: int
    preempt_pending: bool

    @property
    def n_live(self) -> int:
        return len(self.placement)


class FleetState(NamedTuple):
    """Serializable control-plane snapshot every decision is a function of."""

    placement_policy: str
    nodes: tuple[NodeView, ...]
    jobs: tuple[JobView, ...]
    #: Names of queued jobs, in enqueue order.
    queue: tuple[str, ...]

    def job(self, name: str) -> JobView:
        for job in self.jobs:
            if job.name == name:
                return job
        raise KeyError(name)

    def node(self, index: int) -> NodeView:
        return self.nodes[index]


# -- queue scan ---------------------------------------------------------------

def scan_order(state: FleetState) -> tuple[str, ...]:
    """Queue scan order: strict priority, FIFO within a priority band."""
    queued = [state.job(name) for name in state.queue]
    queued.sort(key=lambda j: (-j.priority, j.order))
    return tuple(j.name for j in queued)


# -- gang placement -----------------------------------------------------------

def choose_placement(state: FleetState, k: int) -> tuple[int, ...] | None:
    """Pick ``k`` distinct nodes under the active policy, or ``None``.

    ``pack`` fills the fewest racks (cheap allreduce, correlated blast
    radius); ``spread`` round-robins racks (expensive allreduce,
    independent fault domains).  Dead and draining nodes never place.
    """
    free = [n for n in state.nodes if n.placeable]
    if len(free) < k:
        return None
    by_rack: dict[int, list[NodeView]] = {}
    for node in free:
        by_rack.setdefault(node.rack, []).append(node)
    for nodes in by_rack.values():
        nodes.sort(key=lambda n: n.index)
    if state.placement_policy == "pack":
        # Fewest racks: take racks with the most placeable nodes first.
        racks = sorted(by_rack, key=lambda r: (-len(by_rack[r]), r))
        chosen: list[int] = []
        for rack in racks:
            for node in by_rack[rack]:
                chosen.append(node.index)
                if len(chosen) == k:
                    return tuple(chosen)
        return None
    # spread: round-robin racks so fault domains stay independent.
    racks = sorted(by_rack)
    chosen = []
    cursors = {r: 0 for r in racks}
    while len(chosen) < k:
        advanced = False
        for rack in racks:
            nodes = by_rack[rack]
            if cursors[rack] < len(nodes):
                chosen.append(nodes[cursors[rack]].index)
                cursors[rack] += 1
                advanced = True
                if len(chosen) == k:
                    return tuple(chosen)
        if not advanced:
            return None
    return tuple(chosen)


# -- elastic grow -------------------------------------------------------------

def wants_grow(job: JobView) -> bool:
    """Is ``job`` running, shrunk, elastic and not on its way out?"""
    return (
        job.elastic_grow
        and job.status in ACTIVE_STATUSES
        and job.active
        and not job.preempt_pending
        and job.n_live + len(job.pending_grows) < job.target
    )


def grow_offer_order(state: FleetState) -> tuple[str, ...]:
    """Order in which spare slots are offered back to shrunk elastic jobs."""
    jobs = sorted(state.jobs, key=lambda j: (-j.priority, max(j.order, 0)))
    return tuple(j.name for j in jobs)


def pick_grow_node(state: FleetState, job: JobView) -> int | None:
    """One free node for ``job``, honouring the placement policy.

    Never a node the job already occupies or was granted, never a
    draining node.  ``pack`` prefers racks the job already uses (cheap
    allreduce), ``spread`` prefers fresh racks (independent fault
    domains).
    """
    exclude = set(job.placement) | set(job.pending_grows)
    candidates = [
        n for n in state.nodes
        if n.alive and n.free > 0 and not n.draining and n.index not in exclude
    ]
    if not candidates:
        return None
    used_racks = {state.node(n).rack for n in job.placement}
    if state.placement_policy == "pack":
        candidates.sort(key=lambda n: (n.rack not in used_racks, n.index))
    else:
        candidates.sort(key=lambda n: (n.rack in used_racks, n.index))
    return candidates[0].index


# -- preemption ---------------------------------------------------------------

def select_preemption_victims(
    state: FleetState, job_name: str
) -> tuple[tuple[str, str], ...] | None:
    """Choose victims freeing enough slots for ``job_name``'s gang.

    Returns ``None`` when no preemption should happen — either enough
    capacity is already free (or already draining back from earlier
    victims), or even preempting every lower-priority job would not fit.
    Otherwise returns ``((victim_name, mode), ...)`` in sacrifice order,
    ``mode`` being ``"shrink"`` (surrender one learner at the next
    collective boundary) or ``"preempt"`` (checkpoint and requeue).
    """
    job = state.job(job_name)
    k = job.needed
    free = {n.index: n.free for n in state.nodes if n.alive}
    # Slots already on their way back (victims mid-preemption).
    for other in state.jobs:
        if other.preempt_pending or other.pending_shrinks:
            for node_index in other.placement:
                if node_index in free:
                    free[node_index] += 1
    if sum(1 for f in free.values() if f > 0) >= k:
        return None  # enough capacity is already draining towards us
    victims = sorted(
        (
            other
            for other in state.jobs
            if other.status in ACTIVE_STATUSES
            and other.active
            and not other.preempt_pending
            and other.priority < job.priority
        ),
        key=lambda o: (o.priority, -max(o.order, 0)),
    )
    chosen: list[tuple[str, str]] = []
    for victim in victims:
        if victim.preemption == "shrink" and victim.n_live > 1:
            freed_nodes = victim.placement[-1:]
            mode = "shrink"
        else:
            freed_nodes = victim.placement
            mode = "preempt"
        chosen.append((victim.name, mode))
        for node_index in freed_nodes:
            if node_index in free:
                free[node_index] += 1
        if sum(1 for f in free.values() if f > 0) >= k:
            return tuple(chosen)
    return None  # even preempting everyone would not fit: just wait


# -- drain gating -------------------------------------------------------------

def drain_admissible(state: FleetState, node_index: int) -> bool:
    """May a proactive drain start on ``node_index``?  (Alive, not
    already draining — dead nodes have nothing left to migrate.)"""
    node = state.node(node_index)
    return node.alive and not node.draining
