"""Fleet jobs: specs, runtime state and the per-job training program.

A :class:`FleetJob` wraps one :class:`DistributedSGDTrainer` whose
compute/apply halves run as a generator process on the shared cluster
engine; the gradient sum goes through
:func:`~repro.fleet.collective.guarded_fleet_allreduce` so every job
independently gets the PR 1/3 watchdog + surgical-repair semantics while
contending with its neighbours for links and CPUs.

Fault and preemption semantics:

* a **node death** reaches the job either as a mid-collective
  ``Interrupt(RankFailure)`` (the scheduler kills the victim's rank
  proxy) or, between collectives, through the pending-victim scan at the
  next attempt launch — both funnel into the same elastic shrink;
* a **preemption** is a *controlled* fault: the job checkpoints
  (``TrainerCheckpoint`` capture plus a simulated write window), releases
  every slot and requeues; restore is bit-exact, so a preempted job's
  final params equal an uninterrupted run's;
* **shrink-mode preemption** instead surrenders one learner at the next
  collective boundary (same pending-victim path, but the slot's node is
  alive, so the freed slot backfills immediately);
* a **total loss** (:class:`JobLost`) requeues from the last periodic
  checkpoint (or from scratch if none was taken yet).

For bit-exactness audits the job keeps ``shrink_log`` and ``grow_log``:
the ``(iteration, slot)`` histories of its *current lineage*.  A
checkpoint stores both logs alongside the trainer state; restoring rolls
them back with it, so the logs always script exactly the shrinks and
grows a fault-free reference run must replay (see
``JobSpec.scripted_shrinks`` / ``scripted_grows``) to land on identical
weights.

Elastic grow (the inverse of the shrink): when the scheduler grants a
freed slot to a shrunk job (node revival, a neighbour finishing, a
proactive drain's replacement), the grant is *ledgered immediately* —
the slot is allocated at grant time, so it can never be double-granted —
and the learner joins at the job's next iteration boundary: the trainer
re-deals a share of the survivors' DIMD records to the newcomer, seeds
its replicas from the live weights and rescales the LR schedule back up
(:meth:`~repro.train.distributed.DistributedSGDTrainer.grow_learner`).
A granted node that dies before the boundary is revoked, never joined.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.data.codec import encode_image
from repro.data.dimd import DIMDStore
from repro.fleet.collective import guarded_fleet_allreduce
from repro.models.nn import Dense, Flatten, Network, ReLU
from repro.mpi.schedule import CollectiveTelemetry
from repro.sim.engine import Event, Interrupt

if TYPE_CHECKING:  # circular at runtime: scheduler imports this module
    from repro.fleet.cluster import SharedCluster
    from repro.fleet.scheduler import FleetScheduler
from repro.train.checkpoint import TrainerCheckpoint
from repro.train.distributed import DistributedSGDTrainer
from repro.train.schedule import WarmupStepSchedule
from repro.train.sdc import SDCDetected, SDCGuard, flip_bit

__all__ = [
    "JobSpec",
    "FleetJob",
    "PreemptionNotice",
    "build_trainer",
    "validate_scripted_lineage",
]

#: Terminal job states (the no-lost-no-duplicated invariant counts these).
TERMINAL = ("finished", "failed", "rejected")


class PreemptionNotice(Exception):
    """Interrupt cause asking a job to checkpoint and yield its slots."""


@dataclass(frozen=True)
class JobSpec:
    """Everything needed to (re)create one job deterministically."""

    name: str
    n_learners: int = 2
    n_steps: int = 5
    arrival: float = 0.0
    priority: int = 0
    seed: int = 0
    compute_time: float = 2e-4
    records_per_learner: int = 24
    n_classes: int = 3
    batch_per_gpu: int = 4
    reducer: str = "multicolor"
    collective_timeout: float = 5.0
    max_retries: int = 2
    retry_backoff: float = 0.05
    checkpoint_every: int = 2
    checkpoint_time: float = 1e-3
    preemption: str = "requeue"  # "requeue" | "shrink"
    #: Opt-in elastic grow: a shrunk job reclaims learners when the
    #: scheduler has slots to spare (back up to ``n_learners``).
    elastic_grow: bool = False
    #: Controlled shrinks a fault-free reference run replays to mirror a
    #: faulted run's lineage: ``((iteration, slot), ...)`` applied between
    #: gradient compute and the collective of that iteration.
    scripted_shrinks: tuple[tuple[int, int], ...] = ()
    #: Controlled grows the reference run replays: ``((iteration, slot),
    #: ...)`` applied at the *top* of that iteration, before gradient
    #: compute (slot is the appended index, i.e. the live count before
    #: the grow).
    scripted_grows: tuple[tuple[int, int], ...] = ()
    #: Audit every collective boundary for silent data corruption
    #: (:mod:`repro.train.sdc`); pure bookkeeping, so a clean run's fleet
    #: event log is byte-identical with it on or off.
    sdc_check: bool = False
    #: Gradient buckets the SDC guard fingerprints per learner.
    sdc_buckets: int = 2
    #: SDC injections: ``((iteration, slot, bucket), ...)`` — flip one bit
    #: of that slot's gradient bucket between backward and the collective.
    sdc_faults: tuple[tuple[int, int, int], ...] = ()

    def __post_init__(self) -> None:
        if self.n_learners < 1 or self.n_steps < 1:
            raise ValueError("n_learners and n_steps must be >= 1")
        if self.preemption not in ("requeue", "shrink"):
            raise ValueError(f"unknown preemption mode {self.preemption!r}")
        validate_scripted_lineage(
            self.n_learners, self.n_steps,
            self.scripted_shrinks, self.scripted_grows,
        )
        if self.sdc_buckets < 1:
            raise ValueError("sdc_buckets must be >= 1")
        if self.sdc_faults and not self.sdc_check:
            raise ValueError(
                "sdc_faults without sdc_check would poison training "
                "undetected"
            )
        for iteration, slot, bucket in self.sdc_faults:
            if not 0 <= iteration < self.n_steps:
                raise ValueError(
                    f"sdc fault at iteration {iteration} outside "
                    f"[0, {self.n_steps})"
                )
            if slot < 0:
                raise ValueError(f"sdc fault slot must be >= 0, got {slot}")
            if not 0 <= bucket < self.sdc_buckets:
                raise ValueError(
                    f"sdc fault bucket {bucket} outside "
                    f"[0, {self.sdc_buckets})"
                )


def validate_scripted_lineage(
    n_learners: int,
    n_steps: int,
    shrinks: tuple[tuple[int, int], ...],
    grows: tuple[tuple[int, int], ...],
) -> None:
    """Reject an unreplayable script at construction, not mid-replay.

    Replays a merged timeline of the scripted shrinks and grows (grows
    apply at the top of their iteration, shrinks after that iteration's
    gradient compute) over a live-learner counter and raises
    ``ValueError`` on the first entry that could not happen: iterations
    must be non-decreasing within each log and inside ``[0, n_steps)``, a
    shrink slot must name a live learner and may never drop the last one,
    and a grow slot must equal the live count at its boundary (grown
    learners are always appended).
    """
    for name, log in (("scripted_shrinks", shrinks), ("scripted_grows", grows)):
        iterations = [it for it, _slot in log]
        if iterations != sorted(iterations):
            raise ValueError(
                f"{name} iterations must be non-decreasing, got {iterations}"
            )
    merged = sorted(
        [(it, 0, slot) for it, slot in grows]
        + [(it, 1, slot) for it, slot in shrinks],
        key=lambda e: (e[0], e[1]),
    )
    live = n_learners
    for iteration, phase, slot in merged:
        kind = "grow" if phase == 0 else "shrink"
        if not 0 <= iteration < n_steps:
            raise ValueError(
                f"scripted {kind} at iteration {iteration} outside "
                f"[0, {n_steps})"
            )
        if phase == 0:
            if slot != live:
                raise ValueError(
                    f"scripted grow ({iteration}, {slot}): grown learners "
                    f"append at the end, expected slot {live}"
                )
            live += 1
        else:
            if live <= 1:
                raise ValueError(
                    f"scripted shrink ({iteration}, {slot}) would drop the "
                    "last learner"
                )
            if not 0 <= slot < live:
                raise ValueError(
                    f"scripted shrink ({iteration}, {slot}): slot outside "
                    f"[0, {live})"
                )
            live -= 1


def build_trainer(spec: JobSpec) -> DistributedSGDTrainer:
    """Deterministic tiny-MLP trainer for one fleet job (from its seed)."""
    n_classes = spec.n_classes

    def net_factory(rng: np.random.Generator) -> Network:
        return Network(
            [Flatten(), Dense(16, 10, rng), ReLU(), Dense(10, n_classes, rng)]
        )

    rng = np.random.default_rng(spec.seed)
    stores = []
    for learner in range(spec.n_learners):
        labels = rng.integers(0, n_classes, size=spec.records_per_learner)
        records = []
        for lab in labels:
            img = rng.integers(0, 60, size=(1, 4, 4), dtype=np.uint8)
            img[0, int(lab) % 4, :] = 255
            records.append(encode_image(img))
        stores.append(DIMDStore(records, labels, learner=learner))
    schedule = WarmupStepSchedule(
        batch_per_gpu=spec.batch_per_gpu,
        n_workers=spec.n_learners,
        base_lr=0.08,
        reference_batch=spec.batch_per_gpu * spec.n_learners,
        warmup_epochs=0.0,
    )
    trainer = DistributedSGDTrainer(
        net_factory,
        stores,
        gpus_per_node=1,
        batch_per_gpu=spec.batch_per_gpu,
        schedule=schedule,
        reducer=spec.reducer,
        seed=spec.seed,
        shuffle_every=None,
        reshuffle_on_shrink=False,
        collective_repair="surgical",
    )
    return trainer


@dataclass
class JobTelemetry:
    """Per-job fleet metrics, in simulated seconds."""

    submitted: float = 0.0
    first_start: float | None = None
    finished: float | None = None
    queue_wait: float = 0.0
    steps: int = 0
    retries: int = 0
    backoff: float = 0.0
    requeues: int = 0
    preemptions: int = 0
    checkpoints: int = 0
    grows: int = 0
    migrations: int = 0
    #: Node-slot-seconds spent making forward progress (steps that landed).
    goodput_node_seconds: float = 0.0


class FleetJob:
    """Runtime state of one job: placement, lineage, process handle."""

    def __init__(self, spec: JobSpec):
        self.spec = spec
        self.status = "pending"
        self.trainer: DistributedSGDTrainer | None = None
        #: World rank (= node index) of each live slot, group-rank order.
        self.placement: list[int] = []
        self.proc = None
        self.active_executor = None
        self.telemetry = JobTelemetry()
        self.shrink_log: list[tuple[int, int]] = []
        self.grow_log: list[tuple[int, int]] = []
        self.saved: tuple[TrainerCheckpoint, tuple, tuple] | None = None
        self.pending_shrinks = 0  # controlled (preemption) shrink requests
        self.preempt_pending = False
        #: Nodes granted by the scheduler (slots already allocated), to be
        #: incorporated as learners at the next iteration boundary.
        self.pending_grows: list[int] = []
        #: Nodes that died while hosting one of our slots — the victim
        #: scan keys on this, not on current liveness, so a revived
        #: (flapping) node can never resurrect a doomed learner.
        self.dead_nodes: set[int] = set()
        #: Nodes being drained under us: surrender that slot at the next
        #: collective boundary (the proactive-migration shrink half).
        self.pending_migrations: set[int] = set()
        self.final_params: np.ndarray | None = None
        self._enqueued_at: float | None = None
        self._collective_seq = 0
        self._scripted = {}
        for iteration, slot in spec.scripted_shrinks:
            self._scripted.setdefault(iteration, []).append(slot)
        self._scripted_grows = {}
        for iteration, slot in spec.scripted_grows:
            self._scripted_grows.setdefault(iteration, []).append(slot)
        self._sdc_by_iter: dict[int, list[tuple[int, int]]] = {}
        for iteration, slot, bucket in spec.sdc_faults:
            self._sdc_by_iter.setdefault(iteration, []).append((slot, bucket))
        #: ``(iteration, slot, bucket)`` flips that actually fired — the
        #: chaos sweep checks every one of these produced a detection.
        self.sdc_injected: list[tuple[int, int, int]] = []

    # -- identity / bookkeeping --------------------------------------------
    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def n_live(self) -> int:
        return len(self.placement)

    def learners_needed(self) -> int:
        """Gang size for the next (re)start."""
        if self.saved is not None:
            return len(self.saved[0].learner_ids)
        return self.spec.n_learners

    def placement_ranks(self) -> list[int]:
        return list(self.placement)

    def next_collective_seq(self) -> int:
        self._collective_seq += 1
        return self._collective_seq

    def learner_id(self, slot: int) -> int:
        return self.trainer.learner_ids[slot]

    # -- victim plumbing (called from the guarded collective) ---------------
    def next_victim(self) -> int | None:
        """Lowest slot whose node died, else a pending controlled shrink,
        else a slot being drained off a sick node (proactive migration)."""
        for slot, node_index in enumerate(self.placement):
            if (
                node_index in self.dead_nodes
                or not self._cluster.nodes[node_index].alive
            ):
                return slot
        if self.pending_shrinks > 0 and self.n_live > 1:
            self.pending_shrinks -= 1
            return self.n_live - 1
        if self.n_live > 1:
            for slot, node_index in enumerate(self.placement):
                if node_index in self.pending_migrations:
                    return slot
        return None

    def drop_slot(self, slot: int) -> None:
        """Forget a victim slot and return its allocation to the ledger."""
        node_index = self.placement.pop(slot)
        self.dead_nodes.discard(node_index)
        self.pending_migrations.discard(node_index)
        self._cluster.release(self.name, node_index)
        self._scheduler.on_slot_freed(self, node_index)

    def record_shrink(self, iteration: int, slot: int) -> None:
        self.shrink_log.append((iteration, slot))

    def record_grow(self, iteration: int, slot: int) -> None:
        self.grow_log.append((iteration, slot))

    # -- program -------------------------------------------------------------
    def start(
        self, cluster: SharedCluster, scheduler: FleetScheduler,
        placement: list[int],
    ) -> None:
        """Claim ``placement`` and spawn the training process."""
        self._cluster = cluster
        self._scheduler = scheduler
        now = cluster.engine.now
        if self._enqueued_at is not None:
            self.telemetry.queue_wait += now - self._enqueued_at
            self._enqueued_at = None
        if self.telemetry.first_start is None:
            self.telemetry.first_start = now
        for node_index in placement:
            cluster.allocate(self.name, node_index)
        self.placement = list(placement)
        if self.trainer is None:
            if self.saved is not None:
                ckpt, shrinks, grows = self.saved
                self.trainer = DistributedSGDTrainer.from_checkpoint(
                    ckpt, ckpt_net_factory(self.spec)
                )
                self.shrink_log = list(shrinks)
                self.grow_log = list(grows)
            else:
                self.trainer = build_trainer(self.spec)
                self.shrink_log = []
                self.grow_log = []
        self.status = "running"
        self.proc = cluster.engine.process(self._program(), name=f"job:{self.name}")

    def mark_enqueued(self, now: float) -> None:
        self.status = "queued"
        self._enqueued_at = now

    def _program(self) -> Iterator[Event]:
        engine = self._cluster.engine
        trainer = self.trainer
        spec = self.spec
        try:
            while trainer.iteration < spec.n_steps:
                step_start = engine.now
                try:
                    self._incorporate_grows()
                    yield engine.timeout(spec.compute_time)
                    grads, losses = trainer.step_compute()
                    grads = self._apply_scripted_shrinks(grads)
                    guard = pre = None
                    if spec.sdc_check:
                        guard = SDCGuard(grads[0].size, spec.sdc_buckets)
                        # Honest post-backward claims, then the injected
                        # flip lands between fingerprint and collective.
                        pre = [guard.fingerprint(g) for g in grads]
                        self._inject_sdc(grads, guard)
                    telemetry = CollectiveTelemetry()
                    handled = 0
                    sdc_retries = 0
                    while True:
                        buffers, _ = yield from guarded_fleet_allreduce(
                            self._cluster, self, grads, telemetry
                        )
                        new_victims = telemetry.repaired_ranks[handled:]
                        for victim in new_victims:
                            handled += 1
                            self.record_shrink(trainer.iteration, victim)
                            trainer.absorb_failure(victim, reshuffle=False)
                            if guard is not None:
                                del grads[victim]
                                del pre[victim]
                        if guard is None:
                            break
                        verdict = guard.check(
                            pre, grads, [b.array for b in buffers],
                            recompute=trainer._recompute_grad,
                        )
                        if verdict.ok:
                            break
                        if not verdict.suspects:
                            # In-flight corruption spread to every replica:
                            # retry the collective (transient specs are
                            # exhausted per attempt), give up if persistent.
                            sdc_retries += 1
                            if sdc_retries > spec.max_retries:
                                raise SDCDetected(verdict, trainer.iteration)
                            continue
                        # Quarantine each named corrupter before any
                        # optimizer apply, then re-run on the survivors.
                        for offset, suspect in enumerate(
                            sorted(verdict.suspects)
                        ):
                            slot = suspect - offset
                            self._scheduler.on_sdc(
                                self, slot, self.placement[slot],
                                verdict.detail,
                            )
                            self.record_shrink(trainer.iteration, slot)
                            trainer.absorb_failure(slot, reshuffle=False)
                            self.drop_slot(slot)
                            del grads[slot]
                            del pre[slot]
                    trainer.step_apply(buffers[0].array, len(buffers), losses)
                    self.telemetry.steps += 1
                    self.telemetry.retries += telemetry.retries
                    self.telemetry.backoff += telemetry.backoff
                    productive = max(
                        0.0, engine.now - step_start - telemetry.backoff
                    )
                    self.telemetry.goodput_node_seconds += (
                        productive * self.n_live
                    )
                    if (
                        spec.checkpoint_every
                        and trainer.iteration % spec.checkpoint_every == 0
                        and trainer.iteration < spec.n_steps
                    ):
                        yield from self._take_checkpoint(absorb_preempts=False)
                except Interrupt as exc:
                    if isinstance(exc.cause, PreemptionNotice):
                        yield from self._preempt_requeue()
                        return
                    raise
            self._finish()
        except Exception as exc:
            self._scheduler.on_job_error(self, exc)

    def _apply_scripted_shrinks(
        self, grads: list[np.ndarray]
    ) -> list[np.ndarray]:
        """Replay a reference script's controlled shrinks for this step.

        Applied between gradient compute and the collective — exactly
        where a surgically-repaired crash removes the victim's
        contribution — so the scripted run's sums, LR rescales and record
        deals land identically to the faulted run's.
        """
        trainer = self.trainer
        for slot in self._scripted.get(trainer.iteration, ()):
            del grads[slot]
            self.record_shrink(trainer.iteration, slot)
            trainer.absorb_failure(slot, reshuffle=False)
            self.drop_slot(slot)
        return grads

    def _inject_sdc(self, grads: list[np.ndarray], guard: SDCGuard) -> None:
        """Fire this iteration's scripted SDC flips (mid-bucket bit 62).

        A slot whose learner is already gone (shrunk earlier in the
        lineage) is skipped — the fault targeted hardware that no longer
        hosts a learner of ours.
        """
        for slot, bucket in self._sdc_by_iter.get(self.trainer.iteration, ()):
            if slot >= len(grads):
                continue
            lo, hi = guard.ranges[bucket]
            flip_bit(grads[slot], lo + (hi - lo) // 2)
            self.sdc_injected.append((self.trainer.iteration, slot, bucket))

    def _incorporate_grows(self) -> None:
        """Join granted (or scripted) learners at this iteration boundary.

        Runs at the *top* of the iteration, before gradient compute, so
        the newcomer contributes fully to this step — the ordering the
        scripted-lineage validator and the reference replay both assume.
        Pure Python state changes only (no engine events), so a job with
        no grants pays nothing.
        """
        trainer = self.trainer
        for _slot in self._scripted_grows.get(trainer.iteration, ()):
            node = self._scheduler.grant_scripted_grow(self)
            self._grow_onto(node)
        while self.pending_grows:
            node = self.pending_grows.pop(0)
            if not self._cluster.nodes[node].alive:
                # Granted node died before the boundary: the scheduler's
                # kill path normally revokes it, but guard anyway.
                self._cluster.release(self.name, node)
                self._scheduler.on_grow_revoked(self, node)
                continue
            self._grow_onto(node)

    def _grow_onto(self, node_index: int) -> None:
        """Turn one already-allocated node into a live learner."""
        trainer = self.trainer
        new_id = self.spec.n_learners + len(self.grow_log)
        slot = trainer.grow_learner(new_id)
        self.placement.append(node_index)
        self.record_grow(trainer.iteration, slot)
        self.telemetry.grows += 1
        self._scheduler.on_grown(self, node_index)

    def _take_checkpoint(self, *, absorb_preempts: bool) -> Iterator[Event]:
        """Capture state, then pay the simulated write window.

        Capture is atomic (plain Python state), so a fault *during* the
        write window can neither tear the snapshot nor corrupt the
        previous one — interrupts here only re-run the remaining wait.
        A preemption landing inside the window (the chaos sweep's
        preemption-during-checkpoint point) lets the write finish and
        commit first; with ``absorb_preempts=False`` it is then re-raised
        so the program's preemption path runs against the fresh save,
        with ``absorb_preempts=True`` (already preempting) it is dropped.
        """
        engine = self._cluster.engine
        self.status = "checkpointing"
        state = TrainerCheckpoint.capture(self.trainer)
        shrinks = tuple(self.shrink_log)
        grows = tuple(self.grow_log)
        self.telemetry.checkpoints += 1
        end = engine.now + self.spec.checkpoint_time
        preempted = False
        while True:
            remaining = end - engine.now
            if remaining <= 0:
                break
            try:
                yield engine.timeout(remaining)
                break
            except Interrupt as exc:
                if isinstance(exc.cause, PreemptionNotice):
                    preempted = True
                    continue
                self.saved = (state, shrinks, grows)
                self.status = "running"
                raise
        self.saved = (state, shrinks, grows)
        self.status = "running"
        if preempted and not absorb_preempts:
            raise Interrupt(PreemptionNotice())

    def _preempt_requeue(self) -> Iterator[Event]:
        """Controlled preemption: checkpoint, release everything, requeue."""
        self.telemetry.preemptions += 1
        yield from self._take_checkpoint(absorb_preempts=True)
        self._teardown_trainer()
        self._release_all()
        self.status = "preempted"
        self._scheduler.on_preempted(self)

    def requeue_from_loss(self) -> None:
        """After a total loss: drop the live trainer, keep the last save."""
        self._teardown_trainer()
        self._release_all()

    def _teardown_trainer(self) -> None:
        if self.trainer is not None:
            self.trainer.close()
        self.trainer = None

    def _release_all(self) -> None:
        for node_index in self.placement:
            self._cluster.release(self.name, node_index)
            self._scheduler.on_slot_freed(self, node_index)
        self.placement = []
        while self.pending_grows:
            node_index = self.pending_grows.pop(0)
            self._cluster.release(self.name, node_index)
            self._scheduler.on_grow_revoked(self, node_index)
        self.dead_nodes.clear()
        self.pending_migrations.clear()

    def _finish(self) -> None:
        self.final_params = self.trainer.params().copy()
        self.final_iteration = self.trainer.iteration
        self._teardown_trainer()
        self._release_all()
        self.status = "finished"
        self.telemetry.finished = self._cluster.engine.now
        self._scheduler.on_finished(self)


def ckpt_net_factory(spec: JobSpec) -> Callable[[np.random.Generator], Network]:
    """The network factory a restored trainer needs (same as build time)."""
    n_classes = spec.n_classes

    def net_factory(rng: np.random.Generator) -> Network:
        return Network(
            [Flatten(), Dense(16, 10, rng), ReLU(), Dense(10, n_classes, rng)]
        )

    return net_factory
