"""The shared simulated cluster every fleet job runs on.

One :class:`SharedCluster` owns a single :class:`~repro.sim.engine.Engine`,
one fat-tree :class:`~repro.net.fabric.Fabric` and one
:class:`~repro.mpi.world.MPIWorld` spanning all nodes.  Concurrent jobs'
collectives therefore share links under the existing max-min flow model,
share each node's reduce/copy CPU (:class:`~repro.sim.resources.Resource`)
and share the per-``(src, dst)`` NIC send queue — co-location manufactures
genuine stragglers instead of modelled ones.

Fault domains are *nodes*: :meth:`SharedCluster.kill_node` marks a node
dead and reports every job slot hosted there, so the scheduler can emit
one correlated :class:`~repro.mpi.schedule.RankFailure` per hosted job.
Racks are the placement-level fault domains (`rack = node // nodes_per_rack`
equals the node's fat-tree leaf), which the ``pack``/``spread`` placement
policies trade off against allreduce locality.

Slot allocation is strictly accounted: every ``allocate`` must be paired
with a ``release``, and :meth:`leaked_placements` names any slot still
held after the fleet drains — the chaos sweep's "no leaked placements"
invariant reads it directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mpi.world import MPIWorld
from repro.net.fabric import Fabric
from repro.net.params import CONNECTX5_DUAL, NetworkParams
from repro.net.topology import fat_tree
from repro.sim.engine import Engine, SimulationError

__all__ = ["Node", "SharedCluster"]


@dataclass
class Node:
    """One host: a fault domain holding ``slots`` learner slots."""

    index: int
    rack: int
    slots: int
    alive: bool = True
    #: job name -> number of slots that job holds here (at most 1 today:
    #: a communicator cannot host two ranks of one job on the same node).
    held: dict[str, int] = field(default_factory=dict)

    @property
    def used(self) -> int:
        return sum(self.held.values())

    @property
    def free(self) -> int:
        return self.slots - self.used if self.alive else 0


class SharedCluster:
    """All nodes, the shared network and the slot/utilization ledger."""

    def __init__(
        self,
        *,
        n_racks: int = 2,
        nodes_per_rack: int = 4,
        slots_per_node: int = 2,
        network: NetworkParams = CONNECTX5_DUAL,
        reduce_bandwidth: float = 15e9,
        copy_bandwidth: float = 40e9,
    ):
        if n_racks < 1 or nodes_per_rack < 1 or slots_per_node < 1:
            raise ValueError("racks, nodes per rack and slots must be >= 1")
        self.n_racks = n_racks
        self.nodes_per_rack = nodes_per_rack
        self.slots_per_node = slots_per_node
        n_nodes = n_racks * nodes_per_rack
        self.engine = Engine()
        topo = fat_tree(
            n_nodes, network, hosts_per_leaf=nodes_per_rack, name="fleet"
        )
        self.fabric = Fabric(
            self.engine,
            topo,
            software_overhead=network.software_overhead,
            per_flow_cap=network.per_flow_cap,
        )
        self.world = MPIWorld(
            self.engine,
            self.fabric,
            n_nodes,
            reduce_bandwidth=reduce_bandwidth,
            copy_bandwidth=copy_bandwidth,
        )
        self.nodes = [
            Node(i, i // nodes_per_rack, slots_per_node) for i in range(n_nodes)
        ]
        # Utilization ledger: integrals of busy slots and live capacity over
        # simulated time, advanced lazily at every allocation event.
        self._busy = 0
        self._capacity = n_nodes * slots_per_node
        self._busy_integral = 0.0
        self._capacity_integral = 0.0
        self._last_account = 0.0
        # Confirmed silent-data-corruption detections per node since its
        # last drain — the compute-plane health signal.
        self._sdc_counts: dict[int, int] = {}

    # -- topology helpers ---------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def rack_of(self, node_index: int) -> int:
        return self.nodes[node_index].rack

    def live_nodes(self) -> list[Node]:
        return [n for n in self.nodes if n.alive]

    def rack_uplinks(self, rack: int) -> list[int]:
        """Indices of both directions of ``rack``'s leaf-to-spine cables."""
        leaf = f"s:leaf{rack}"
        return [
            link.index
            for link in self.fabric.topology.links
            if leaf in (link.src, link.dst)
            and (link.src.startswith("s:spine") or link.dst.startswith("s:spine"))
        ]

    def degrade_rack_uplinks(self, rack: int, factor: float) -> None:
        """Scale ``rack``'s spine uplinks mid-flight (1.0 restores)."""
        self.fabric.scale_links(self.rack_uplinks(rack), factor)

    def degrade_node_links(self, node_index: int, factor: float) -> None:
        """Scale one node's host links mid-flight (a flapping NIC; 1.0
        restores)."""
        self.fabric.scale_host_links(node_index, factor)

    def node_link_factor(self, node_index: int) -> float:
        """Worst residual bandwidth factor on ``node_index``'s data path.

        1.0 when healthy; the minimum over the node's own host links and
        its rack's spine uplinks of (effective / nominal) bandwidth after
        any live :meth:`~repro.net.fabric.Fabric.scale_links` degrades.
        The health monitor's link-degrade-residue signal.
        """
        topo = self.fabric.topology
        host = topo.host(node_index)
        indices = [
            link.index
            for link in topo.links
            if host in (link.src, link.dst)
        ]
        indices += self.rack_uplinks(self.nodes[node_index].rack)
        return min(
            self.fabric.link_bandwidth(i) / topo.links[i].params.bandwidth
            for i in indices
        )

    # -- slot ledger --------------------------------------------------------
    def allocate(self, job_name: str, node_index: int) -> None:
        node = self.nodes[node_index]
        if not node.alive:
            raise SimulationError(
                f"allocate on dead node {node_index} for job {job_name!r}"
            )
        if node.free < 1:
            raise SimulationError(
                f"no free slot on node {node_index} for job {job_name!r}"
            )
        self._account()
        node.held[job_name] = node.held.get(job_name, 0) + 1
        self._busy += 1

    def release(self, job_name: str, node_index: int) -> None:
        node = self.nodes[node_index]
        held = node.held.get(job_name, 0)
        if held < 1:
            raise SimulationError(
                f"release of unheld slot on node {node_index} by {job_name!r}"
            )
        self._account()
        if held == 1:
            del node.held[job_name]
        else:
            node.held[job_name] = held - 1
        if node.alive:
            # A dead node's held slots already left the busy ledger when
            # the node died; releasing them is pure bookkeeping.
            self._busy -= 1

    def kill_node(self, node_index: int) -> list[tuple[str, int]]:
        """Mark a node dead; returns ``(job_name, held_slots)`` casualties.

        The node's capacity and its busy slots leave the utilization
        ledger immediately, but the *allocations* stay on the node until
        each hosted job absorbs the failure and releases them — exactly
        the window the "no leaked placements" invariant polices.
        """
        node = self.nodes[node_index]
        if not node.alive:
            raise SimulationError(f"node {node_index} is already dead")
        self._account()
        node.alive = False
        self._capacity -= node.slots
        self._busy -= node.used
        return sorted(node.held.items())

    def revive_node(self, node_index: int) -> None:
        """Bring a dead node back: its capacity rejoins the ledger.

        Any slots still *held* on the node (jobs that have not yet
        absorbed the death) rejoin the busy integral too — their eventual
        ``release`` decrements it symmetrically, because the node is alive
        again.  The learners themselves stay doomed: each hosting job's
        pending-victim scan keys on the recorded death, not on current
        liveness, so a flap can never resurrect a half-dead rank.
        """
        node = self.nodes[node_index]
        if node.alive:
            raise SimulationError(f"node {node_index} is already alive")
        self._account()
        node.alive = True
        self._capacity += node.slots
        self._busy += node.used

    # -- silent-data-corruption ledger --------------------------------------
    def record_sdc(self, node_index: int) -> int:
        """Charge one confirmed SDC detection to a node; returns the new
        count.  Attribution (which learner, hence which node) happens at
        the allreduce boundary in :mod:`repro.train.sdc`; the scheduler
        books each confirmed event here so the health monitor sees repeat
        offenders across *jobs*."""
        self._sdc_counts[node_index] = self._sdc_counts.get(node_index, 0) + 1
        return self._sdc_counts[node_index]

    def sdc_count(self, node_index: int) -> int:
        return self._sdc_counts.get(node_index, 0)

    def clear_sdc(self, node_index: int) -> None:
        """Reset a node's SDC strikes (on drain: the fault follows the
        hardware out of service, and a later revived node starts clean)."""
        self._sdc_counts.pop(node_index, None)

    def leaked_placements(self) -> list[tuple[int, str, int]]:
        """Every slot still held, as ``(node, job_name, count)``."""
        return [
            (node.index, job, count)
            for node in self.nodes
            for job, count in sorted(node.held.items())
        ]

    # -- utilization --------------------------------------------------------
    def _account(self, until: float | None = None) -> None:
        now = self.engine.now if until is None else min(until, self.engine.now)
        dt = now - self._last_account
        if dt > 0:
            self._busy_integral += dt * self._busy
            self._capacity_integral += dt * self._capacity
            self._last_account = now

    def utilization(self, until: float | None = None) -> float:
        """Busy node-slot-seconds over live node-slot-seconds.

        ``until`` caps the accounting horizon: stale watchdog timers keep
        the drained engine's clock running past the last real event, and
        that idle tail should not dilute the fleet's utilization.
        """
        self._account(until)
        if self._capacity_integral <= 0:
            return 0.0
        return self._busy_integral / self._capacity_integral

    def capacity_integral_at(self, until: float | None = None) -> float:
        """Live node-slot-seconds accumulated up to ``until`` (or now)."""
        self._account(until)
        return self._capacity_integral

    @property
    def capacity_integral(self) -> float:
        return self.capacity_integral_at()
