"""The fleet health monitor: straggler signals into proactive drains.

Synchronous SGD runs at the pace of its slowest learner (the barrier-max
model in :mod:`repro.train.faults`), so a node that is degraded but not
dead — a flapping NIC, an oversubscribed reduce CPU — silently throttles
every job it hosts until a collective watchdog finally times out.  The
monitor closes that gap: it polls each live node's runtime signals
(worst residual link-bandwidth factor via
:meth:`~repro.fleet.cluster.SharedCluster.node_link_factor`, reduce-CPU
queue depth via :meth:`~repro.mpi.world.MPIWorld.cpu_queue_depth`, and
confirmed silent-data-corruption strikes via
:meth:`~repro.fleet.cluster.SharedCluster.sdc_count`),
classifies them with a pure :class:`~repro.train.faults.DrainPolicy`,
and — after the policy's ``strikes`` *consecutive* unhealthy polls, so a
single transient queue spike never moves a learner — asks the scheduler
to :meth:`~repro.fleet.scheduler.FleetScheduler.drain_node`, migrating
hosted learners off before the watchdog ever fires.

The monitor is opt-in (``FleetScheduler(..., health=HealthPolicy())``)
and purely observational until it drains: a healthy fleet's event
timeline, placements and makespan are identical with or without it.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.fleet.jobs import TERMINAL
from repro.train.faults import DrainPolicy, NodeHealthSignal

if TYPE_CHECKING:  # circular at runtime: scheduler imports this module
    from repro.fleet.cluster import SharedCluster
    from repro.fleet.scheduler import FleetScheduler
    from repro.sim.engine import Event

__all__ = ["HealthPolicy", "health_monitor"]


@dataclass(frozen=True)
class HealthPolicy:
    """How the fleet watches node health: what to flag, how often to look."""

    policy: DrainPolicy = field(default_factory=DrainPolicy)
    #: Simulated seconds between polls of every live node.
    poll_every: float = 5e-4

    def __post_init__(self) -> None:
        if self.poll_every <= 0:
            raise ValueError("poll_every must be positive")


def health_monitor(
    cluster: SharedCluster, scheduler: FleetScheduler, health: HealthPolicy,
) -> Iterator[Event]:
    """Generator process: poll node signals, drain after sustained strikes.

    Strike counters are per node and reset by any healthy poll, by a
    node death and by an in-progress drain — the hysteresis lives here,
    on top of the policy's pure per-poll :meth:`DrainPolicy.classify`.
    Exits once every job is terminal so the engine can drain.
    """
    engine = cluster.engine
    policy = health.policy
    strikes: dict[int, int] = {}
    while any(
        job.status not in TERMINAL for job in scheduler.jobs.values()
    ):
        yield engine.timeout(health.poll_every)
        for node in cluster.nodes:
            if not node.alive or node.index in scheduler.draining:
                strikes.pop(node.index, None)
                continue
            signal = NodeHealthSignal(
                node=node.index,
                cpu_queue_depth=cluster.world.cpu_queue_depth(node.index),
                link_factor=min(1.0, cluster.node_link_factor(node.index)),
                sdc_count=cluster.sdc_count(node.index),
            )
            reason = policy.classify(signal)
            if reason is None:
                strikes.pop(node.index, None)
                continue
            count = strikes.get(node.index, 0) + 1
            strikes[node.index] = count
            if count >= policy.strikes:
                strikes.pop(node.index, None)
                scheduler.drain_node(node.index, reason)
