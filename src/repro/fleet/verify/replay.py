"""Replay abstract checker traces through the real fleet scheduler.

A counterexample from :func:`repro.fleet.verify.explore.verify_fleet` is
a sequence of abstract events.  This module compiles such a trace into a
concrete workload — one :class:`~repro.fleet.jobs.JobSpec` per arriving
model job (arrival order, step counts, SDC injections all taken from the
trace) plus a chaos driver that fires the trace's node events in order —
and runs it through a real :class:`~repro.fleet.scheduler.FleetScheduler`
on a real :class:`~repro.fleet.cluster.SharedCluster`.

The real engine schedules in continuous time, so the replay reproduces
the trace's *event order*, not its exact interleaving with collective
internals; it is the bridge that turns an abstract counterexample into a
runnable repro script.  The audit checks the runtime analogues of the
checker's ledger invariants: no leaked placements, every job terminal,
no node over capacity.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from repro.fleet.cluster import SharedCluster
from repro.fleet.jobs import JobSpec
from repro.fleet.scheduler import FleetReport, FleetScheduler
from repro.fleet.verify.model import Bounds, Event
from repro.sim.engine import Event as EngineEvent

__all__ = ["ReplayResult", "replay_trace", "trace_specs"]

#: Simulated seconds between consecutive trace events in the replay.
EVENT_SPACING = 2e-3


@dataclass
class ReplayResult:
    """A replayed trace: the real run's report plus the ledger audit."""

    report: FleetReport
    notes: list[str]

    @property
    def ok(self) -> bool:
        return not self.notes

    def format(self) -> str:
        lines = [self.report.format()]
        if self.notes:
            lines.append("replay audit:")
            lines += [f"  FAIL {note}" for note in self.notes]
        else:
            lines.append("replay audit: clean (ledger invariants hold)")
        return "\n".join(lines)


def trace_specs(bounds: Bounds, trace: tuple[Event, ...]) -> list[JobSpec]:
    """Compile the trace's per-job story into concrete ``JobSpec``s.

    Only jobs that arrive in the trace get a spec.  A job's ``n_steps``
    is the number of ``step`` events it completed before its ``finish``
    (the model finishes a job after any completed iteration); a job still
    running when the trace ends gets one extra step so the replay keeps
    it alive through the full event sequence.  ``sdc`` events become
    scripted SDC injections at the iteration the trace fired them.
    """
    specs: list[JobSpec] = []
    for model_spec in bounds.jobs:
        name = model_spec.name
        arrival_pos = None
        steps_seen = 0
        finish_steps = None
        sdc_faults: list[tuple[int, int, int]] = []
        for pos, event in enumerate(trace):
            if event.job != name:
                continue
            if event.kind == "arrive":
                arrival_pos = pos
            elif event.kind == "step":
                steps_seen += 1
            elif event.kind == "finish":
                finish_steps = steps_seen
            elif event.kind == "sdc":
                sdc_faults.append((steps_seen, event.slot or 0, 0))
        if arrival_pos is None:
            continue
        n_steps = finish_steps if finish_steps is not None else steps_seen + 1
        specs.append(JobSpec(
            name=name,
            n_learners=model_spec.target,
            n_steps=max(1, n_steps),
            arrival=EVENT_SPACING * (arrival_pos + 1),
            priority=model_spec.priority,
            seed=len(specs),
            elastic_grow=model_spec.elastic_grow,
            preemption=model_spec.preemption,
            # The model checkpoints at every boundary (its documented
            # abstraction); the replay matches it.
            checkpoint_every=1,
            checkpoint_time=1e-4,
            sdc_check=bool(sdc_faults),
            sdc_faults=tuple(sdc_faults),
        ))
    return specs


def _chaos_driver(
    scheduler: FleetScheduler, trace: tuple[Event, ...]
) -> Iterator[EngineEvent]:
    """Fire the trace's node events in order, one spacing apart."""
    engine = scheduler.cluster.engine
    for pos, event in enumerate(trace):
        if event.kind not in ("kill", "revive", "drain", "undrain"):
            continue
        target = EVENT_SPACING * (pos + 1)
        if target > engine.now:
            yield engine.timeout(target - engine.now)
        node = event.node or 0
        if event.kind == "kill":
            scheduler.kill_node(node)
        elif event.kind == "revive":
            scheduler.revive_node(node)
        elif event.kind == "drain":
            scheduler.drain_node(node, reason="verify-replay")
        else:
            scheduler.undrain_node(node)


def replay_trace(
    bounds: Bounds, trace: tuple[Event, ...], *, placement: str | None = None
) -> ReplayResult:
    """Run the trace's workload + chaos through the real control plane."""
    cluster = SharedCluster(
        n_racks=bounds.n_racks,
        nodes_per_rack=bounds.nodes_per_rack,
        slots_per_node=bounds.slots_per_node,
    )
    specs = trace_specs(bounds, trace)
    scheduler = FleetScheduler(
        cluster,
        specs,
        placement=placement or bounds.placement,
        seed=0,
        max_requeues=bounds.max_requeues,
        requeue_base=1e-3,
    )
    if any(e.kind in ("kill", "revive", "drain", "undrain") for e in trace):
        scheduler.spawn(
            _chaos_driver(scheduler, trace), name="verify-replay-chaos"
        )
    report = scheduler.run()
    notes: list[str] = []
    if report.leaked:
        notes.append(f"leaked placements: {report.leaked}")
    for node in cluster.nodes:
        if node.used > node.slots:
            notes.append(
                f"node {node.index} over capacity: "
                f"{node.used}/{node.slots}"
            )
    for job in report.jobs:
        if job.status not in ("finished", "failed", "rejected"):
            notes.append(f"job {job.name} not terminal: {job.status}")
    return ReplayResult(report, notes)
