"""Mutation self-test: surgical control-plane bugs the checker must kill.

Each mutant re-introduces one small, realistic scheduler bug — placing a
gang on a draining node, granting growth from the drained set, leaving a
grow grant dangling on a killed node, freeing a slot twice, committing
the preemption checkpoint *after* releasing the gang, forgetting to
clear a drained node's SDC ledger, and so on.  Policy mutants are
patched into every namespace that binds the shared function —
:mod:`repro.fleet.policy`, the checker's :mod:`~repro.fleet.verify.model`
*and* the runtime :mod:`~repro.fleet.scheduler` — so one mutation is
visible to both consumers of the pure-policy seam; plumbing mutants
patch the checker's line-for-line mirror of the runtime entry point they
break.

Every mutant is then hunted **statically**: :func:`verify_fleet` is run
over a bound known to exercise the mutated seam, and the mutant counts
as *killed* when the explorer returns a counterexample (any invariant —
a bug often breaches several; the hunt does not insist on a particular
one, though each mutant records the invariant it aims at).  The suite
asserts a 100% kill rate: a surviving mutant is a hole in the invariant
set or the bounds, not a flaky test.

Hunt bounds are deliberately small (one or two jobs where the seam
allows it): mutation testing needs *a* counterexample, and a tight
workload finds it in milliseconds instead of re-exploring the full CI
smoke bound per mutant.  The unmutated model must prove clean under
every hunt bound — :func:`clean_hunt_bounds` enumerates them for the
baseline test — so a kill is attributable to the mutation alone.
"""

from __future__ import annotations

import contextlib
from collections.abc import Iterator
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.fleet import policy, scheduler as _runtime
from repro.fleet.policy import ACTIVE_STATUSES, FleetState, JobView
from repro.fleet.verify import model
from repro.fleet.verify.explore import (
    FleetVerifyResult,
    smoke_bounds,
    verify_fleet,
)
from repro.fleet.verify.model import Bounds
from repro.fleet.verify.state import ModelJob, ModelJobSpec, ModelState

__all__ = [
    "FLEET_MUTANTS",
    "FleetMutant",
    "FleetMutationRecord",
    "FleetMutationResult",
    "clean_hunt_bounds",
    "run_fleet_mutation_suite",
]

#: Modules where a shared policy name may be bound (import-by-name).
_SEAMS = (policy, model, _runtime)

#: Originals captured at import time for wrapping mutants.
_ORIG_CHOOSE_PLACEMENT = policy.choose_placement
_ORIG_PICK_GROW_NODE = policy.pick_grow_node


@dataclass(frozen=True)
class FleetMutant:
    """One surgical bug: what to patch, where to hunt, what should trip."""

    operator: str
    description: str
    #: Invariant the mutant is aimed at (documentation; any breach kills).
    expected: str
    #: ``(attribute name, replacement)`` pairs, patched into every seam
    #: module that binds the name.
    patches: tuple[tuple[str, Callable[..., Any]], ...]
    bounds: Bounds


@dataclass(frozen=True)
class FleetMutationRecord:
    """Verdict on one mutant."""

    operator: str
    description: str
    expected: str
    #: Invariant of the counterexample found, or ``None`` (escaped).
    caught: str | None
    #: Length of the minimal killing trace (0 when escaped).
    trace_len: int

    @property
    def killed(self) -> bool:
        return self.caught is not None


@dataclass
class FleetMutationResult:
    """Aggregate of one mutation sweep."""

    records: list[FleetMutationRecord] = field(default_factory=list)

    @property
    def escaped(self) -> list[FleetMutationRecord]:
        return [r for r in self.records if not r.killed]

    @property
    def kill_rate(self) -> float:
        if not self.records:
            return 1.0
        return sum(r.killed for r in self.records) / len(self.records)

    @property
    def invariants_exercised(self) -> set[str]:
        return {r.caught for r in self.records if r.caught is not None}

    def format(self) -> str:
        lines = [
            f"fleet mutation sweep: {len(self.records)} mutants, "
            f"kill rate {self.kill_rate:.1%}"
        ]
        for r in self.records:
            if r.killed:
                lines.append(
                    f"  KILLED {r.operator}: {r.caught} "
                    f"(trace of {r.trace_len}) — {r.description}"
                )
            else:
                lines.append(
                    f"  ESCAPED {r.operator}: {r.description} "
                    f"(aimed at {r.expected})"
                )
        return "\n".join(lines)


# -- policy mutants (patched into runtime and checker alike) ------------------

def _nodes_with(state: FleetState, **overrides: Any) -> FleetState:
    """Doctor every node view — how a mutant 'forgets' a status check."""
    return state._replace(
        nodes=tuple(n._replace(**overrides) for n in state.nodes)
    )


def _place_on_draining(state: FleetState, k: int) -> tuple[int, ...] | None:
    """Placement scorer forgets the draining check."""
    return _ORIG_CHOOSE_PLACEMENT(_nodes_with(state, draining=False), k)


def _place_stale_ledger(state: FleetState, k: int) -> tuple[int, ...] | None:
    """Placement scorer reads a stale ledger: every node looks free."""
    return _ORIG_CHOOSE_PLACEMENT(_nodes_with(state, used=0), k)


def _grant_from_draining(state: FleetState, job: JobView) -> int | None:
    """Grow-node choice forgets the draining check."""
    return _ORIG_PICK_GROW_NODE(_nodes_with(state, draining=False), job)


def _grant_to_dead(state: FleetState, job: JobView) -> int | None:
    """Grow-node choice treats every node as alive."""
    return _ORIG_PICK_GROW_NODE(_nodes_with(state, alive=True), job)


def _grow_past_target(job: JobView) -> bool:
    """Off-by-one: a full gang still asks for one more learner."""
    return (
        job.elastic_grow
        and job.status in ACTIVE_STATUSES
        and job.active
        and not job.preempt_pending
        and job.n_live + len(job.pending_grows) <= job.target
    )


# -- plumbing mutants (the checker's mirror of a runtime entry point) ---------

def _kill_keeps_grants(state: ModelState, node_index: int) -> None:
    """``kill_node`` forgets to revoke unjoined grants on the dead node."""
    node = state.nodes[node_index]
    node.alive = False
    state.kills += 1
    for job_name in sorted(node.held):
        job = state.job(job_name)
        if node_index in job.pending_grows:
            continue  # BUG: the grant dangles on a dead node
        job.dead_nodes = tuple(sorted((*job.dead_nodes, node_index)))
    model._kick(state)


def _double_free_slot(state: ModelState, job: ModelJob, slot: int) -> None:
    """The slot-freed path fires twice for one dropped learner."""
    node_index = job.placement[slot]
    job.placement = job.placement[:slot] + job.placement[slot + 1:]
    job.dead_nodes = tuple(n for n in job.dead_nodes if n != node_index)
    job.pending_migrations = tuple(
        n for n in job.pending_migrations if n != node_index
    )
    model._release(state, job.name, node_index)
    model._release(state, job.name, node_index)  # BUG: freed twice


def _preempt_release_before_checkpoint(
    state: ModelState, job: ModelJob
) -> None:
    """Preemption releases the gang first — the checkpoint sees nothing."""
    model._release_all(state, job)  # BUG: runs before the commit
    model._commit_checkpoint(state, job)
    job.status = "preempted"
    job.preempt_pending = False
    model._enqueue(state, job)
    model._kick(state)


def _drain_keeps_sdc(state: ModelState, node_index: int) -> None:
    """``drain_node`` forgets to clear the node's SDC strike ledger."""
    node = state.nodes[node_index]
    node.draining = True
    state.drains += 1  # BUG: ``node.sdc`` never reset
    for job_name in sorted(node.held):
        job = state.job(job_name)
        if (
            job.status not in ("running", "checkpointing")
            or node_index not in job.placement
            or node_index in job.pending_migrations
            or job.n_live <= 1
        ):
            continue
        job.pending_migrations = tuple(
            sorted((*job.pending_migrations, node_index))
        )
        snap = state.to_fleet_state()
        replacement = model.pick_grow_node(snap, snap.job(job.name))
        if replacement is not None:
            model._open_grant(state, job, replacement)
    model._kick(state)


def _start_uncharged(
    state: ModelState, job: ModelJob, placed: tuple[int, ...]
) -> None:
    """``start`` claims the gang without charging the shared ledger."""
    job.placement = tuple(placed)  # BUG: ``_allocate`` never called
    if job.saved is not None:
        _needed, iteration, shrinks, grows = job.saved
        job.iteration = iteration
        job.shrink_log = shrinks
        job.grow_log = grows
    else:
        job.iteration = 0
        job.shrink_log = ()
        job.grow_log = ()
    job.shrunk_this_iter = False
    job.status = "running"


def _requeue_forever(
    state: ModelState, job: ModelJob, bounds: Bounds
) -> None:
    """JobLost requeues without ever consulting the budget."""
    model._release_all(state, job)
    job.requeues += 1  # BUG: over-budget check dropped
    model._enqueue(state, job)


def _step_mislogs_grow(state: ModelState, job: ModelJob) -> None:
    """Grant join records the wrong slot in the lineage grow log."""
    job.iteration += 1
    job.shrunk_this_iter = False
    model._commit_checkpoint(state, job)
    while job.pending_grows:
        node_index = job.pending_grows[0]
        if not state.nodes[node_index].alive:
            model._close_grant(state, job, node_index, "revoke")
            continue
        model._close_grant(state, job, node_index, "join")
        slot = job.n_live
        job.placement += (node_index,)
        job.grow_log += ((job.iteration, slot + 1),)  # BUG: off by one


def _revoke_leaks_slot(
    state: ModelState, job: ModelJob, node_index: int, how: str
) -> None:
    """Revocation drops the grant record but never returns the slot."""
    if node_index not in job.pending_grows:
        state.violate(
            "grant-closure",
            f"{how} of grant not held by {job.name!r} on node {node_index}",
        )
        return
    i = job.pending_grows.index(node_index)
    job.pending_grows = job.pending_grows[:i] + job.pending_grows[i + 1:]
    state.grants_closed += 1
    # BUG: the revoked slot is never released back to the ledger.


def _grant_off_books(
    state: ModelState, job: ModelJob, node_index: int
) -> None:
    """A grant is opened without entering the open/close audit trail."""
    model._allocate(state, job.name, node_index)
    job.pending_grows += (node_index,)
    # BUG: ``grants_opened`` never incremented.


# -- hunt bounds --------------------------------------------------------------

def _solo_bounds() -> Bounds:
    """One elastic job on 2x2: the cheapest bound exercising shrink,
    grow, kill, drain and SDC seams."""
    return Bounds(
        jobs=(
            ModelJobSpec(
                name="a", target=2, elastic_grow=True, preemption="shrink"
            ),
        ),
        n_racks=2,
        nodes_per_rack=2,
        slots_per_node=1,
        placement="pack",
        depth=6,
        max_steps=2,
        max_kills=1,
        max_revives=0,
        max_drains=1,
        max_undrains=0,
        max_sdc=1,
        max_requeues=2,
    )


def _pair_bounds() -> Bounds:
    """The solo job plus a filler gang pinning the spare rack, so the
    only 'free' capacity a buggy grow policy can find is dead."""
    solo = _solo_bounds()
    return Bounds(
        jobs=(*solo.jobs, ModelJobSpec(name="b", target=2)),
        n_racks=2,
        nodes_per_rack=2,
        slots_per_node=1,
        placement="pack",
        depth=6,
        max_steps=2,
        max_kills=1,
        max_revives=0,
        max_drains=0,
        max_undrains=0,
        max_sdc=0,
        max_requeues=2,
    )


def _preempt_bounds() -> Bounds:
    """The three-job smoke workload under ``spread``, deep enough for
    arrival -> preemption -> yield -> restart."""
    return smoke_bounds(depth=5, placement="spread")


def _requeue_bounds() -> Bounds:
    """One single-learner job flapping between two nodes: two kills
    exhaust a requeue budget of one."""
    return Bounds(
        jobs=(ModelJobSpec(name="solo", target=1),),
        n_racks=1,
        nodes_per_rack=2,
        slots_per_node=1,
        placement="pack",
        depth=6,
        max_steps=1,
        max_kills=2,
        max_revives=1,
        max_drains=0,
        max_undrains=0,
        max_sdc=0,
        max_requeues=1,
    )


def clean_hunt_bounds() -> dict[str, Bounds]:
    """Every distinct bound the sweep hunts under, for the baseline
    check that the *unmutated* model proves clean under each."""
    return {
        "solo": _solo_bounds(),
        "pair": _pair_bounds(),
        "preempt-spread": _preempt_bounds(),
        "requeue": _requeue_bounds(),
    }


#: The mutant battery: one realistic control-plane bug each.
FLEET_MUTANTS: tuple[FleetMutant, ...] = (
    FleetMutant(
        operator="place-on-draining",
        description="placement scorer places gangs onto draining nodes",
        expected="no-dead-grants",
        patches=(("choose_placement", _place_on_draining),),
        bounds=_solo_bounds(),
    ),
    FleetMutant(
        operator="place-stale-ledger",
        description="placement scorer double-books occupied nodes",
        expected="no-double-grant",
        patches=(("choose_placement", _place_stale_ledger),),
        bounds=_pair_bounds(),
    ),
    FleetMutant(
        operator="grant-from-draining",
        description="grow-node choice offers slots on draining nodes",
        expected="no-dead-grants",
        patches=(("pick_grow_node", _grant_from_draining),),
        bounds=_solo_bounds(),
    ),
    FleetMutant(
        operator="grant-to-dead",
        description="grow-node choice treats dead nodes as available",
        expected="no-dead-grants",
        patches=(("pick_grow_node", _grant_to_dead),),
        bounds=_pair_bounds(),
    ),
    FleetMutant(
        operator="grow-overcommit",
        description="wants_grow off-by-one grows a full gang past target",
        expected="gang-atomicity",
        patches=(("wants_grow", _grow_past_target),),
        bounds=_solo_bounds(),
    ),
    FleetMutant(
        operator="skip-grant-revoke",
        description="kill_node leaves unjoined grants on the dead node",
        expected="no-dead-grants",
        patches=(("_apply_kill", _kill_keeps_grants),),
        bounds=_solo_bounds(),
    ),
    FleetMutant(
        operator="double-free-slot",
        description="dropping one learner frees its slot twice",
        expected="slot-conservation",
        patches=(("_drop_slot", _double_free_slot),),
        bounds=_solo_bounds(),
    ),
    FleetMutant(
        operator="reorder-preempt-checkpoint",
        description="preemption releases the gang before the checkpoint "
                    "commit, saving an empty restart gang",
        expected="gang-atomicity",
        patches=(("_apply_preempt_yield", _preempt_release_before_checkpoint),),
        bounds=_preempt_bounds(),
    ),
    FleetMutant(
        operator="skip-sdc-clear-on-drain",
        description="drain_node forgets to clear the SDC strike ledger",
        expected="drain-clears-sdc",
        patches=(("_apply_drain", _drain_keeps_sdc),),
        bounds=_solo_bounds(),
    ),
    FleetMutant(
        operator="start-uncharged",
        description="start claims a gang without charging the slot ledger",
        expected="slot-conservation",
        patches=(("_start", _start_uncharged),),
        bounds=_solo_bounds(),
    ),
    FleetMutant(
        operator="unbounded-requeue",
        description="JobLost requeues forever, ignoring the budget",
        expected="bounded-requeue",
        patches=(("_requeue_from_loss", _requeue_forever),),
        bounds=_requeue_bounds(),
    ),
    FleetMutant(
        operator="mislog-grow-slot",
        description="grant join records the wrong slot in the grow log",
        expected="lineage-valid",
        patches=(("_apply_step", _step_mislogs_grow),),
        bounds=_solo_bounds(),
    ),
    FleetMutant(
        operator="revoke-leaks-slot",
        description="grant revocation never releases the held slot",
        expected="slot-conservation",
        patches=(("_close_grant", _revoke_leaks_slot),),
        bounds=_solo_bounds(),
    ),
    FleetMutant(
        operator="grant-off-books",
        description="grants open without entering the closure audit trail",
        expected="grant-closure",
        patches=(("_open_grant", _grant_off_books),),
        bounds=_solo_bounds(),
    ),
)


@contextlib.contextmanager
def _patched(mutant: FleetMutant) -> Iterator[None]:
    """Install the mutant into every seam module binding each name."""
    saved: list[tuple[Any, str, Any]] = []
    try:
        for name, replacement in mutant.patches:
            for module in _SEAMS:
                if hasattr(module, name):
                    saved.append((module, name, getattr(module, name)))
                    setattr(module, name, replacement)
        yield
    finally:
        for module, name, original in reversed(saved):
            setattr(module, name, original)


def hunt(mutant: FleetMutant, *, max_states: int = 500_000
         ) -> FleetVerifyResult | None:
    """Run the checker against one installed mutant (``None`` = the
    exploration blew the state cap without a verdict)."""
    with _patched(mutant):
        try:
            return verify_fleet(mutant.bounds, max_states=max_states)
        except RuntimeError:
            return None


def run_fleet_mutation_suite(
    mutants: tuple[FleetMutant, ...] = FLEET_MUTANTS,
    *,
    max_states: int = 500_000,
) -> FleetMutationResult:
    """Hunt every mutant statically and report the kill rate."""
    result = FleetMutationResult()
    for mutant in mutants:
        outcome = hunt(mutant, max_states=max_states)
        cex = outcome.counterexample if outcome is not None else None
        result.records.append(FleetMutationRecord(
            operator=mutant.operator,
            description=mutant.description,
            expected=mutant.expected,
            caught=None if cex is None else cex.invariant,
            trace_len=0 if cex is None else len(cex.trace),
        ))
    return result
