"""Event semantics of the fleet control plane, mirrored for the checker.

Each abstract event corresponds to one entry point of the runtime
control plane; its ``apply`` mirrors the runtime's plumbing
*line-for-line* (same order of ledger operations, same trailing
``_kick``), while every **decision** inside that plumbing goes through
the shared :mod:`repro.fleet.policy` functions — so mutating a policy
decision changes the checker and the runtime identically.

| event                  | runtime entry point                              |
|------------------------|--------------------------------------------------|
| ``arrive(job)``        | ``FleetScheduler._arrival``                      |
| ``step(job)``          | one loop pass of ``FleetJob._program``           |
| ``absorb(job)``        | the guarded collective's victim repair           |
| ``finish(job)``        | ``FleetJob._finish``                             |
| ``preempt-yield(job)`` | ``FleetJob._preempt_requeue``                    |
| ``sdc(job, slot)``     | SDC quarantine at the allreduce boundary         |
| ``kill(node)``         | ``FleetScheduler.kill_node``                     |
| ``revive(node)``       | ``FleetScheduler.revive_node``                   |
| ``drain(node)``        | ``FleetScheduler.drain_node``                    |
| ``undrain(node)``      | ``FleetScheduler.undrain_node``                  |

The grow offer/grant/revoke lifecycle is not an event of its own: grants
happen inside the deterministic post-event ``kick`` (as in the runtime),
joins happen at the next ``step`` boundary, revocations inside ``kill``
and the release paths — exactly the runtime's seams.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fleet.policy import (
    FleetState,
    choose_placement,
    drain_admissible,
    grow_offer_order,
    pick_grow_node,
    scan_order,
    select_preemption_victims,
    wants_grow,
)
from repro.fleet.verify.state import ModelJob, ModelJobSpec, ModelNode, ModelState

__all__ = ["Bounds", "Event", "apply_event", "enabled_events", "initial_state"]

#: Statuses a terminal model job can be in (mirrors ``jobs.TERMINAL``).
MODEL_TERMINAL = ("finished", "failed", "rejected")


@dataclass(frozen=True)
class Event:
    """One abstract control-plane event: ``kind`` plus its target."""

    kind: str
    job: str | None = None
    node: int | None = None
    slot: int | None = None

    def __str__(self) -> str:
        parts = []
        if self.job is not None:
            parts.append(f"job={self.job}")
        if self.node is not None:
            parts.append(f"node={self.node}")
        if self.slot is not None:
            parts.append(f"slot={self.slot}")
        return f"{self.kind}({', '.join(parts)})"


@dataclass(frozen=True)
class Bounds:
    """Exploration bounds: the workload, the cluster, and event budgets."""

    jobs: tuple[ModelJobSpec, ...]
    n_racks: int = 2
    nodes_per_rack: int = 2
    slots_per_node: int = 1
    placement: str = "pack"
    #: Maximum events per trace (exploration depth).
    depth: int = 8
    #: Per-job iteration boundaries (``step`` events) explored.
    max_steps: int = 2
    max_kills: int = 1
    max_revives: int = 1
    max_drains: int = 1
    max_undrains: int = 0
    max_sdc: int = 1
    #: Requeue budget before a job fails (mirrors ``max_requeues``).
    max_requeues: int = 2

    def __post_init__(self) -> None:
        names = [s.name for s in self.jobs]
        if not names:
            raise ValueError("bounds need at least one job")
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate job names in workload: {names}")
        if self.n_racks < 1 or self.nodes_per_rack < 1 or self.slots_per_node < 1:
            raise ValueError("racks, nodes per rack and slots must be >= 1")
        if self.placement not in ("pack", "spread"):
            raise ValueError(f"unknown placement policy {self.placement!r}")
        if self.depth < 1:
            raise ValueError("depth must be >= 1")
        if self.max_steps < 1:
            raise ValueError("max_steps must be >= 1")
        for name in ("max_kills", "max_revives", "max_drains",
                     "max_undrains", "max_sdc", "max_requeues"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    @property
    def n_nodes(self) -> int:
        return self.n_racks * self.nodes_per_rack


def initial_state(bounds: Bounds) -> ModelState:
    nodes = [
        ModelNode(i, i // bounds.nodes_per_rack, bounds.slots_per_node)
        for i in range(bounds.n_nodes)
    ]
    jobs = [ModelJob(spec) for spec in bounds.jobs]
    return ModelState(bounds.placement, nodes, jobs)


# -- ledger operations (mirror SharedCluster, recording instead of raising) --

def _allocate(state: ModelState, job_name: str, node_index: int) -> None:
    node = state.nodes[node_index]
    if not node.alive:
        state.violate(
            "no-dead-grants",
            f"allocate on dead node {node_index} for job {job_name!r}",
        )
    elif node.draining:
        state.violate(
            "no-dead-grants",
            f"allocate on draining node {node_index} for job {job_name!r}",
        )
    elif node.free < 1:
        state.violate(
            "no-double-grant",
            f"no free slot on node {node_index} for job {job_name!r}",
        )
    node.held[job_name] = node.held.get(job_name, 0) + 1


def _release(state: ModelState, job_name: str, node_index: int) -> None:
    node = state.nodes[node_index]
    held = node.held.get(job_name, 0)
    if held < 1:
        state.violate(
            "slot-conservation",
            f"release of unheld slot on node {node_index} by {job_name!r}",
        )
        return
    if held == 1:
        del node.held[job_name]
    else:
        node.held[job_name] = held - 1


def _open_grant(state: ModelState, job: ModelJob, node_index: int) -> None:
    _allocate(state, job.name, node_index)
    job.pending_grows += (node_index,)
    state.grants_opened += 1


def _close_grant(
    state: ModelState, job: ModelJob, node_index: int, how: str
) -> None:
    if node_index not in job.pending_grows:
        state.violate(
            "grant-closure",
            f"{how} of grant not held by {job.name!r} on node {node_index}",
        )
        return
    i = job.pending_grows.index(node_index)
    job.pending_grows = job.pending_grows[:i] + job.pending_grows[i + 1:]
    state.grants_closed += 1
    if how == "revoke":
        _release(state, job.name, node_index)


# -- job plumbing (mirror FleetJob) ------------------------------------------

def _next_victim(state: ModelState, job: ModelJob) -> tuple[int, str] | None:
    """``FleetJob.next_victim``: dead slot, else controlled shrink, else
    migration — the guarded collective's absorb order.  Returns the
    victim slot plus which branch chose it (``apply`` must consume the
    matching mark: the runtime decrements ``pending_shrinks`` inside the
    scan, before it ever looks at migrations)."""
    for slot, node_index in enumerate(job.placement):
        if node_index in job.dead_nodes or not state.nodes[node_index].alive:
            return slot, "dead"
    if job.pending_shrinks > 0 and job.n_live > 1:
        return job.n_live - 1, "shrink"
    if job.n_live > 1:
        for slot, node_index in enumerate(job.placement):
            if node_index in job.pending_migrations:
                return slot, "migrate"
    return None


def _drop_slot(state: ModelState, job: ModelJob, slot: int) -> None:
    """``FleetJob.drop_slot`` followed by the runtime's on_slot_freed kick
    (the kick is issued by the caller)."""
    node_index = job.placement[slot]
    job.placement = job.placement[:slot] + job.placement[slot + 1:]
    job.dead_nodes = tuple(n for n in job.dead_nodes if n != node_index)
    job.pending_migrations = tuple(
        n for n in job.pending_migrations if n != node_index
    )
    _release(state, job.name, node_index)


def _release_all(state: ModelState, job: ModelJob) -> None:
    """``FleetJob._release_all``: slots back, grants revoked, marks clear."""
    for node_index in job.placement:
        _release(state, job.name, node_index)
    job.placement = ()
    while job.pending_grows:
        _close_grant(state, job, job.pending_grows[0], "revoke")
    job.dead_nodes = ()
    job.pending_migrations = ()


def _commit_checkpoint(state: ModelState, job: ModelJob) -> None:
    """Capture the restart state (``FleetJob._take_checkpoint`` commit)."""
    job.saved = (
        job.n_live, job.iteration, job.shrink_log, job.grow_log,
    )


def _start(state: ModelState, job: ModelJob, placed: tuple[int, ...]) -> None:
    """``FleetJob.start``: claim the gang atomically, restore or build."""
    for node_index in placed:
        _allocate(state, job.name, node_index)
    job.placement = tuple(placed)
    if job.saved is not None:
        _needed, iteration, shrinks, grows = job.saved
        job.iteration = iteration
        job.shrink_log = shrinks
        job.grow_log = grows
    else:
        job.iteration = 0
        job.shrink_log = ()
        job.grow_log = ()
    job.shrunk_this_iter = False
    job.status = "running"


def _requeue_from_loss(state: ModelState, job: ModelJob, bounds: Bounds) -> None:
    """JobLost: release everything, then bounded requeue (backoff elided)."""
    _release_all(state, job)
    job.requeues += 1
    if job.requeues > bounds.max_requeues:
        job.status = "failed"
        return
    _enqueue(state, job)


def _enqueue(state: ModelState, job: ModelJob) -> None:
    if job.order < 0:
        job.order = state.next_order
        state.next_order += 1
    job.status = "queued"
    state.queue.append(job.name)


# -- the deterministic kick (shared decisions, mirrored plumbing) ------------

def _kick(state: ModelState) -> None:
    """``FleetScheduler._kick``: scan, start fits, preempt, offer grows.

    The runtime rebuilds a snapshot before every decision; between
    mutations consecutive snapshots are equal, so the model reuses one
    snapshot until something mutates (start breaks the scan, preemption
    marks victims) — observationally identical, far fewer rebuilds.
    """
    progress = True
    while progress and state.queue:
        progress = False
        snap = state.to_fleet_state()
        for name in scan_order(snap):
            job = state.job(name)
            placed = choose_placement(snap, job.needed())
            if placed is not None:
                state.queue.remove(name)
                _start(state, job, placed)
                progress = True
                break
            if _maybe_preempt(state, snap, job):
                snap = state.to_fleet_state()
            # Gang blocked: leave it queued and backfill smaller jobs.
    if not state.queue:
        # Only spare capacity (no queued gang wants it) feeds grows.
        _offer_grows(state)


def _maybe_preempt(state: ModelState, snap: FleetState, job: ModelJob) -> bool:
    chosen = select_preemption_victims(snap, job.name)
    if chosen is None:
        return False
    for victim_name, mode in chosen:
        victim = state.job(victim_name)
        if mode == "shrink":
            victim.pending_shrinks += 1
        else:
            victim.preempt_pending = True
    return True


def _offer_grows(state: ModelState) -> None:
    snap = state.to_fleet_state()
    for name in grow_offer_order(snap):
        job = state.job(name)
        while True:
            view = snap.job(name)
            if not wants_grow(view):
                break
            node_index = pick_grow_node(snap, view)
            if node_index is None:
                break
            _open_grant(state, job, node_index)
            snap = state.to_fleet_state()


# -- events -------------------------------------------------------------------

def enabled_events(state: ModelState, bounds: Bounds) -> list[Event]:
    """Every event that may fire next, in deterministic order."""
    events: list[Event] = []
    n_alive = sum(1 for n in state.nodes if n.alive)
    # Built only if a drain is still in budget (snapshots cost real time
    # across hundreds of thousands of states).
    snap = None
    for job in state.jobs:
        if job.status == "pending":
            events.append(Event("arrive", job=job.name))
            continue
        running = job.status == "running"
        if not running:
            continue
        if job.preempt_pending:
            events.append(Event("preempt-yield", job=job.name))
            continue
        victim = _next_victim(state, job)
        if victim is not None:
            events.append(Event("absorb", job=job.name))
        else:
            # A step's collective would first absorb any pending victim,
            # so step/finish only race with *future* faults, not past ones.
            if job.iteration < bounds.max_steps:
                events.append(Event("step", job=job.name))
            if job.iteration >= 1:
                # ``n_steps >= 1``: a job models finishing after any
                # completed iteration (abstracting each job's n_steps),
                # but never before its first.
                events.append(Event("finish", job=job.name))
        if state.sdc_strikes < bounds.max_sdc and job.n_live > 1:
            for slot, node_index in enumerate(job.placement):
                node = state.nodes[node_index]
                if (
                    node.alive and not node.draining
                    and node_index not in job.dead_nodes
                ):
                    events.append(Event("sdc", job=job.name, slot=slot))
    for node in state.nodes:
        if node.alive:
            # Never kill the last node: the model would only explore
            # mass-rejection, not scheduling.
            if state.kills < bounds.max_kills and n_alive > 1:
                events.append(Event("kill", node=node.index))
            if state.drains < bounds.max_drains:
                if snap is None:
                    snap = state.to_fleet_state()
                if drain_admissible(snap, node.index):
                    events.append(Event("drain", node=node.index))
            if state.undrains < bounds.max_undrains and node.draining:
                events.append(Event("undrain", node=node.index))
        elif state.revives < bounds.max_revives:
            events.append(Event("revive", node=node.index))
    return events


def apply_event(state: ModelState, event: Event, bounds: Bounds) -> ModelState:
    """Apply one event to a copy of ``state`` and return the successor."""
    state = state.clone()
    if event.kind == "arrive":
        _apply_arrive(state, state.job(event.job or ""))
    elif event.kind == "step":
        _apply_step(state, state.job(event.job or ""))
    elif event.kind == "absorb":
        _apply_absorb(state, state.job(event.job or ""), bounds)
    elif event.kind == "finish":
        _apply_finish(state, state.job(event.job or ""))
    elif event.kind == "preempt-yield":
        _apply_preempt_yield(state, state.job(event.job or ""))
    elif event.kind == "sdc":
        _apply_sdc(state, state.job(event.job or ""), event.slot or 0)
    elif event.kind == "kill":
        _apply_kill(state, event.node or 0)
    elif event.kind == "revive":
        _apply_revive(state, event.node or 0)
    elif event.kind == "drain":
        _apply_drain(state, event.node or 0)
    elif event.kind == "undrain":
        _apply_undrain(state, event.node or 0)
    else:  # pragma: no cover - enabled_events never emits unknown kinds
        raise ValueError(f"unknown event kind {event.kind!r}")
    return state


def _apply_arrive(state: ModelState, job: ModelJob) -> None:
    """``FleetScheduler._arrival``: admission, then enqueue and kick."""
    if job.spec.target > sum(1 for n in state.nodes if n.alive):
        job.status = "rejected"
        return
    _enqueue(state, job)
    _kick(state)


def _apply_step(state: ModelState, job: ModelJob) -> None:
    """One completed iteration: commit the boundary checkpoint, then join
    pending grants at the top of the next iteration (``_incorporate_grows``
    runs before anything else can shrink that iteration)."""
    job.iteration += 1
    job.shrunk_this_iter = False
    _commit_checkpoint(state, job)
    while job.pending_grows:
        node_index = job.pending_grows[0]
        if not state.nodes[node_index].alive:
            # Granted node died before the boundary: the kill path
            # normally revokes it, but guard anyway (mirrors the job).
            _close_grant(state, job, node_index, "revoke")
            continue
        _close_grant(state, job, node_index, "join")
        slot = job.n_live
        job.placement += (node_index,)
        job.grow_log += ((job.iteration, slot),)


def _apply_absorb(state: ModelState, job: ModelJob, bounds: Bounds) -> None:
    """The guarded collective absorbing one victim (dead node, controlled
    shrink, or migration), or raising JobLost for a lone learner."""
    found = _next_victim(state, job)
    if found is None:  # pragma: no cover - only enabled with a victim
        return
    victim, kind = found
    if kind == "shrink":
        job.pending_shrinks -= 1
    if kind == "dead" and job.n_live <= 1:
        # ``JobLost``: the last learner's node died.
        _requeue_from_loss(state, job, bounds)
        _kick(state)
        return
    job.shrink_log += ((job.iteration, victim),)
    job.shrunk_this_iter = True
    _drop_slot(state, job, victim)
    _kick(state)


def _apply_finish(state: ModelState, job: ModelJob) -> None:
    job.status = "finished"
    _release_all(state, job)
    _kick(state)


def _apply_preempt_yield(state: ModelState, job: ModelJob) -> None:
    """``_preempt_requeue``: checkpoint commit *then* release and requeue."""
    _commit_checkpoint(state, job)
    _release_all(state, job)
    job.status = "preempted"
    job.preempt_pending = False
    _enqueue(state, job)
    _kick(state)


def _apply_sdc(state: ModelState, job: ModelJob, slot: int) -> None:
    """SDC quarantine: strike the hosting node, shrink the suspect slot."""
    node_index = job.placement[slot]
    state.nodes[node_index].sdc += 1
    state.sdc_strikes += 1
    job.shrink_log += ((job.iteration, slot),)
    job.shrunk_this_iter = True
    _drop_slot(state, job, slot)
    _kick(state)


def _apply_kill(state: ModelState, node_index: int) -> None:
    """``FleetScheduler.kill_node``: revoke unjoined grants on the node,
    mark hosted learners dead, then kick."""
    node = state.nodes[node_index]
    node.alive = False
    state.kills += 1
    for job_name in sorted(node.held):
        job = state.job(job_name)
        if node_index in job.pending_grows:
            _close_grant(state, job, node_index, "revoke")
            continue
        job.dead_nodes = tuple(sorted((*job.dead_nodes, node_index)))
    _kick(state)


def _apply_revive(state: ModelState, node_index: int) -> None:
    node = state.nodes[node_index]
    node.alive = True
    node.draining = False
    state.revives += 1
    _kick(state)


def _apply_drain(state: ModelState, node_index: int) -> None:
    """``FleetScheduler.drain_node``: mark draining, clear the SDC ledger,
    grant each hosted job a replacement up front, then kick."""
    node = state.nodes[node_index]
    node.draining = True
    node.sdc = 0
    state.drains += 1
    for job_name in sorted(node.held):
        job = state.job(job_name)
        if (
            job.status not in ("running", "checkpointing")
            or node_index not in job.placement
            or node_index in job.pending_migrations
            or job.n_live <= 1
        ):
            continue
        job.pending_migrations = tuple(
            sorted((*job.pending_migrations, node_index))
        )
        snap = state.to_fleet_state()
        replacement = pick_grow_node(snap, snap.job(job.name))
        if replacement is not None:
            _open_grant(state, job, replacement)
    _kick(state)


def _apply_undrain(state: ModelState, node_index: int) -> None:
    state.nodes[node_index].draining = False
    state.undrains += 1
    _kick(state)
