"""Bounded model checking of the fleet control plane.

An explicit-state explorer over abstract control-plane events (arrival,
iteration boundaries, kills, revives, drains, SDC strikes, preemption,
grow grants), sharing the runtime scheduler's *decision* code through
:mod:`repro.fleet.policy` and mirroring its plumbing line-for-line.
Eight invariants — the slot ledger, grant lifecycle, gang atomicity,
lineage replayability, drain hygiene and requeue budgets — are checked
at every reachable state up to a configurable bound; breaches come back
as minimal event traces replayable through the real scheduler via
:mod:`repro.fleet.verify.replay`.  :mod:`repro.fleet.verify.mutate`
turns the checker on itself: a battery of surgical scheduler bugs it
must kill statically.

Entry points: ``repro verify --fleet`` on the CLI,
:func:`verify_fleet` + :func:`smoke_bounds` / :func:`sweep_bounds` from
code.
"""

from repro.fleet.verify.explore import (
    Counterexample,
    FleetVerifyResult,
    smoke_bounds,
    sweep_bounds,
    verify_fleet,
)
from repro.fleet.verify.invariants import INVARIANTS, check_invariants
from repro.fleet.verify.model import (
    Bounds,
    Event,
    apply_event,
    enabled_events,
    initial_state,
)
from repro.fleet.verify.mutate import (
    FLEET_MUTANTS,
    FleetMutant,
    FleetMutationRecord,
    FleetMutationResult,
    clean_hunt_bounds,
    run_fleet_mutation_suite,
)
from repro.fleet.verify.replay import ReplayResult, replay_trace, trace_specs
from repro.fleet.verify.state import ModelJobSpec, ModelState, Violation

__all__ = [
    "Bounds",
    "Counterexample",
    "Event",
    "FLEET_MUTANTS",
    "FleetMutant",
    "FleetMutationRecord",
    "FleetMutationResult",
    "FleetVerifyResult",
    "INVARIANTS",
    "ModelJobSpec",
    "ModelState",
    "ReplayResult",
    "Violation",
    "apply_event",
    "check_invariants",
    "clean_hunt_bounds",
    "enabled_events",
    "initial_state",
    "replay_trace",
    "run_fleet_mutation_suite",
    "smoke_bounds",
    "sweep_bounds",
    "trace_specs",
    "verify_fleet",
]
