"""Exhaustive breadth-first exploration of fleet control-plane interleavings.

The explorer enumerates every interleaving of the abstract events in
:mod:`repro.fleet.verify.model` up to ``Bounds.depth``, deduplicating
via canonical-state hashing (two traces landing on the same control-plane
state explore its future once), and evaluates all eight invariants at
every reachable state.  Breadth-first order makes the first breach found
a *minimal* counterexample: no shorter event trace violates anything.
"""

from __future__ import annotations

import gc
from collections import deque
from dataclasses import dataclass

from repro.fleet.verify.invariants import INVARIANTS, check_invariants
from repro.fleet.verify.model import (
    Bounds,
    Event,
    apply_event,
    enabled_events,
    initial_state,
)
from repro.fleet.verify.state import ModelState, Violation

__all__ = [
    "Counterexample",
    "FleetVerifyResult",
    "smoke_bounds",
    "sweep_bounds",
    "verify_fleet",
]


@dataclass(frozen=True)
class Counterexample:
    """A minimal event trace reaching an invariant breach."""

    invariant: str
    detail: str
    trace: tuple[Event, ...]
    state: ModelState

    def format(self) -> str:
        lines = [
            f"invariant violated: {self.invariant}",
            f"  {self.detail}",
            f"minimal trace ({len(self.trace)} events):",
        ]
        lines += [f"  {i + 1}. {event}" for i, event in enumerate(self.trace)]
        return "\n".join(lines)


@dataclass
class FleetVerifyResult:
    """Outcome of one bounded exploration."""

    bounds: Bounds
    states: int
    transitions: int
    frontier_depth: int
    counterexample: Counterexample | None

    @property
    def ok(self) -> bool:
        return self.counterexample is None

    def format(self) -> str:
        b = self.bounds
        head = (
            f"fleet-verify: {len(b.jobs)} jobs x {b.n_nodes} nodes "
            f"({b.n_racks} racks, {b.slots_per_node} slot/node, "
            f"placement={b.placement}) depth<={b.depth}"
        )
        body = (
            f"  explored {self.states} states / {self.transitions} "
            f"transitions (frontier depth {self.frontier_depth})"
        )
        if self.ok:
            proved = "\n".join(f"    {name}" for name in INVARIANTS)
            return (
                f"{head}\n{body}\n  PROVED all {len(INVARIANTS)} "
                f"invariants within the bound:\n{proved}"
            )
        return f"{head}\n{body}\n{self.counterexample.format()}"


def verify_fleet(
    bounds: Bounds, *, max_states: int | None = None
) -> FleetVerifyResult:
    """Explore every interleaving within ``bounds``; all-clear or the
    shortest trace to an invariant breach.

    ``max_states`` caps the seen-set as a runaway guard; hitting it
    raises ``RuntimeError`` (a truncated exploration must never report
    "proved").
    """
    root = initial_state(bounds)
    breaches = check_invariants(root, bounds)
    if breaches:
        return FleetVerifyResult(
            bounds, 1, 0, 0, _first(breaches, (), root)
        )
    # Model states are trees (no reference cycles), but the explorer
    # allocates millions of containers the cyclic GC would repeatedly
    # re-scan as the seen-set grows; pause it for the search.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        return _search(bounds, root, max_states)
    finally:
        if gc_was_enabled:
            gc.enable()


def _search(
    bounds: Bounds, root: ModelState, max_states: int | None
) -> FleetVerifyResult:
    seen = {root.canonical()}
    frontier: deque[tuple[ModelState, tuple[Event, ...]]] = deque(
        [(root, ())]
    )
    states = 1
    transitions = 0
    frontier_depth = 0
    while frontier:
        state, trace = frontier.popleft()
        if len(trace) >= bounds.depth:
            continue
        for event in enabled_events(state, bounds):
            succ = apply_event(state, event, bounds)
            transitions += 1
            key = succ.canonical()
            if key in seen:
                # Invariants depend only on the state, and this exact
                # state was checked when first reached (at <= this
                # depth, BFS) — skipping keeps minimality.
                continue
            breaches = check_invariants(succ, bounds)
            if breaches:
                return FleetVerifyResult(
                    bounds, states, transitions, len(trace) + 1,
                    _first(breaches, trace + (event,), succ),
                )
            seen.add(key)
            states += 1
            if max_states is not None and states > max_states:
                raise RuntimeError(
                    f"exploration exceeded {max_states} states; raise "
                    "max_states or tighten the bounds"
                )
            frontier_depth = max(frontier_depth, len(trace) + 1)
            frontier.append((succ, trace + (event,)))
    return FleetVerifyResult(bounds, states, transitions, frontier_depth, None)


def _first(
    breaches: list[Violation], trace: tuple[Event, ...], state: ModelState
) -> Counterexample:
    ordered = sorted(
        breaches,
        key=lambda v: (
            INVARIANTS.index(v.invariant)
            if v.invariant in INVARIANTS
            else len(INVARIANTS)
        ),
    )
    v = ordered[0]
    return Counterexample(v.invariant, v.detail, trace, state)


def smoke_bounds(
    *,
    depth: int = 8,
    max_steps: int = 2,
    placement: str = "pack",
) -> Bounds:
    """The CI smoke bound: 3 jobs x 4 nodes with every control-plane
    feature armed (elastic grow, shrink-mode preemption, priority
    arrival) under one kill, one drain and one SDC strike.

    Revive and undrain budgets are zero here — flap interleavings
    roughly 1.5x the state space and live in the slow full-bound sweep
    (``sweep_bounds``) instead, keeping the smoke proof inside its CI
    time budget.
    """
    from repro.fleet.verify.state import ModelJobSpec

    return Bounds(
        jobs=(
            ModelJobSpec(
                name="a", target=2, priority=0,
                elastic_grow=True, preemption="shrink",
            ),
            ModelJobSpec(name="b", target=2, priority=1),
            ModelJobSpec(name="c", target=3, priority=2),
        ),
        n_racks=2,
        nodes_per_rack=2,
        slots_per_node=1,
        placement=placement,
        depth=depth,
        max_steps=max_steps,
        max_kills=1,
        max_revives=0,
        max_drains=1,
        max_undrains=0,
        max_sdc=1,
        max_requeues=2,
    )


def sweep_bounds(*, placement: str = "pack") -> Bounds:
    """The slow full-bound sweep: the smoke workload with the flap
    budgets armed (revive after kill, undrain after drain) at depth 9."""
    base = smoke_bounds(depth=9, placement=placement)
    from dataclasses import replace

    return replace(base, max_revives=1, max_undrains=1)
