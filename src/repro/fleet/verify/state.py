"""Abstract fleet control-plane state for the bounded model checker.

The model abstracts *time and training away* and keeps everything the
control plane decides over: the slot ledger, the queue, pending grants,
the drained set, the per-node SDC ledger and each job's lineage logs.
Decisions over this state go through the exact same pure functions the
runtime scheduler uses (:mod:`repro.fleet.policy`), via
:meth:`ModelState.to_fleet_state`.

Two deliberate abstractions (documented here, asserted nowhere else):

* **checkpoints happen at every iteration boundary** — the runtime's
  ``checkpoint_every=1`` configuration.  Coarser periods only widen the
  rollback window; they add no new control-plane interleavings.
* **requeue backoff is instantaneous** — the runtime sleeps a seeded
  jitter before re-enqueueing; the model re-enqueues immediately.  The
  backoff only delays the same kick.

States are plain mutable objects while a transition builds them;
:meth:`ModelState.canonical` freezes one into nested tuples for the
explorer's seen-set (canonical-state hashing).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fleet.policy import (
    ACTIVE_STATUSES,
    FleetState,
    JobView,
    NodeView,
)

__all__ = ["ModelJob", "ModelJobSpec", "ModelNode", "ModelState", "Violation"]

Canonical = tuple[object, ...]


@dataclass(frozen=True)
class ModelJobSpec:
    """The slice of :class:`~repro.fleet.jobs.JobSpec` the control plane
    sees: everything that influences a scheduling decision, nothing that
    influences training."""

    name: str
    target: int = 2
    priority: int = 0
    elastic_grow: bool = False
    preemption: str = "requeue"  # "requeue" | "shrink"

    def __post_init__(self) -> None:
        if self.target < 1:
            raise ValueError("target gang size must be >= 1")
        if self.preemption not in ("requeue", "shrink"):
            raise ValueError(f"unknown preemption mode {self.preemption!r}")


@dataclass(frozen=True)
class Violation:
    """One invariant breach, recorded where the model detected it."""

    invariant: str
    detail: str


@dataclass(slots=True)
class ModelNode:
    """One node's ledger-visible state."""

    index: int
    rack: int
    slots: int
    alive: bool = True
    draining: bool = False
    sdc: int = 0
    #: job name -> slots that job holds here (mirrors ``Node.held``).
    held: dict[str, int] = field(default_factory=dict)

    @property
    def used(self) -> int:
        return sum(self.held.values())

    @property
    def free(self) -> int:
        return self.slots - self.used if self.alive else 0

    def clone(self) -> "ModelNode":
        return ModelNode(
            self.index, self.rack, self.slots, self.alive,
            self.draining, self.sdc, dict(self.held),
        )

    def canonical(self) -> Canonical:
        return (
            self.alive, self.draining, self.sdc,
            tuple(sorted(self.held.items())),
        )


@dataclass(slots=True)
class ModelJob:
    """One job's control-plane state (mirrors ``FleetJob`` minus training).

    The object itself is mutable (transitions rebind fields), but every
    container field holds an *immutable* value — tuples, sorted for the
    set-like ones — so ``clone`` is a shallow field copy and
    ``canonical`` needs no conversions.  The explorer visits hundreds of
    thousands of states; this is what keeps it affordable.
    """

    spec: ModelJobSpec
    status: str = "pending"
    order: int = -1
    iteration: int = 0
    placement: tuple[int, ...] = ()
    pending_grows: tuple[int, ...] = ()
    pending_shrinks: int = 0
    preempt_pending: bool = False
    #: Sorted tuples (set semantics, deterministic canonical form).
    dead_nodes: tuple[int, ...] = ()
    pending_migrations: tuple[int, ...] = ()
    #: True once a shrink was recorded at the current iteration — a grant
    #: arriving after it must wait for the next boundary so the lineage
    #: stays replayable (grows precede shrinks within an iteration).
    shrunk_this_iter: bool = False
    shrink_log: tuple[tuple[int, int], ...] = ()
    grow_log: tuple[tuple[int, int], ...] = ()
    #: Last committed checkpoint: (gang size to restart with, iteration,
    #: shrink log, grow log) — mirrors ``FleetJob.saved``.
    saved: tuple[int, int, tuple[tuple[int, int], ...],
                 tuple[tuple[int, int], ...]] | None = None
    requeues: int = 0

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def n_live(self) -> int:
        return len(self.placement)

    def needed(self) -> int:
        """Gang size for the next (re)start — ``FleetJob.learners_needed``."""
        if self.saved is not None:
            return self.saved[0]
        return self.spec.target

    def clone(self) -> "ModelJob":
        return ModelJob(
            self.spec, self.status, self.order, self.iteration,
            self.placement, self.pending_grows,
            self.pending_shrinks, self.preempt_pending,
            self.dead_nodes, self.pending_migrations,
            self.shrunk_this_iter,
            self.shrink_log, self.grow_log,
            self.saved, self.requeues,
        )

    def canonical(self) -> Canonical:
        return (
            self.status, self.order, self.iteration,
            self.placement, self.pending_grows,
            self.pending_shrinks, self.preempt_pending,
            self.dead_nodes, self.pending_migrations,
            self.shrunk_this_iter,
            self.shrink_log, self.grow_log,
            self.saved, self.requeues,
        )


@dataclass(slots=True)
class ModelState:
    """The whole control plane: nodes, jobs, queue, budgets, violations."""

    placement_policy: str
    nodes: list[ModelNode]
    jobs: list[ModelJob]
    queue: list[str] = field(default_factory=list)
    next_order: int = 0
    #: Chaos budgets consumed so far (bounded by ``Bounds``).
    kills: int = 0
    revives: int = 0
    drains: int = 0
    undrains: int = 0
    sdc_strikes: int = 0
    #: Grow grants opened / closed (each grant must close exactly once).
    grants_opened: int = 0
    grants_closed: int = 0
    violations: list[Violation] = field(default_factory=list)

    def job(self, name: str) -> ModelJob:
        for job in self.jobs:
            if job.name == name:
                return job
        raise KeyError(name)

    def clone(self) -> "ModelState":
        return ModelState(
            self.placement_policy,
            [n.clone() for n in self.nodes],
            [j.clone() for j in self.jobs],
            list(self.queue),
            self.next_order,
            self.kills, self.revives, self.drains, self.undrains,
            self.sdc_strikes, self.grants_opened, self.grants_closed,
            list(self.violations),
        )

    def violate(self, invariant: str, detail: str) -> None:
        self.violations.append(Violation(invariant, detail))

    # -- the shared-policy bridge -------------------------------------------
    def to_fleet_state(self) -> FleetState:
        """Snapshot for :mod:`repro.fleet.policy` — the checker-side twin
        of ``FleetScheduler.snapshot()``.  (Positional construction: the
        explorer builds one or more snapshots per transition.)"""
        nodes = tuple(
            NodeView(
                n.index, n.rack, n.slots, sum(n.held.values()),
                n.alive, n.draining,
            )
            for n in self.nodes
        )
        jobs = []
        for j in self.jobs:
            spec = j.spec
            saved = j.saved
            jobs.append(JobView(
                spec.name, spec.priority, j.order, j.status,
                j.status in ACTIVE_STATUSES, spec.preemption,
                spec.elastic_grow, spec.target,
                spec.target if saved is None else saved[0],
                j.placement, j.pending_grows,
                j.pending_shrinks, j.preempt_pending,
            ))
        return FleetState(
            self.placement_policy, nodes, tuple(jobs), tuple(self.queue)
        )

    def canonical(self) -> Canonical:
        """Hashable identity for the explorer's seen-set.

        Excludes ``grants_opened``/``grants_closed``: at every state the
        explorer keeps exploring from, the grant-closure invariant holds,
        so their difference equals the pending-grant sum (already in the
        per-job keys) and their absolute values are pure history — two
        states differing only there behave identically forever.
        ``violations`` is likewise always empty on explored states (a
        breach stops the search).
        """
        return (
            tuple(n.canonical() for n in self.nodes),
            tuple(j.canonical() for j in self.jobs),
            tuple(self.queue),
            self.kills, self.revives, self.drains, self.undrains,
            self.sdc_strikes,
        )
