"""The eight fleet control-plane invariants the checker proves.

Each invariant is a pure predicate over one :class:`ModelState`; the
explorer evaluates all of them at every reachable state and reports the
first breach with the event trace that produced it.  Two kinds of checks
feed the verdict:

* **operation-time** violations the model records while applying a
  transition (``_allocate`` on a dead node, releasing an unheld slot,
  closing an unknown grant) — these live in ``state.violations``;
* **state-level** checks below, evaluated on the resulting state.

The invariant names (stable identifiers, used by the mutation suite and
the CLI output):

``slot-conservation``
    Every held slot in the cluster ledger is owned by exactly one live
    placement entry or pending grant — ``SharedCluster.
    leaked_placements()`` stays empty at every state, not just at the
    end of a run.
``no-double-grant``
    No node is ever allocated past its slot capacity.
``no-dead-grants``
    A pending grow grant never names a dead node (the kill path revokes
    them), and is never *opened* on a dead, draining or full node.
``gang-atomicity``
    A running job holds ≥1 slot, on distinct nodes, disjoint from its
    pending grants; a job without a live program holds nothing; live
    learners plus grants never exceed the target gang plus in-flight
    migration replacements.
``grant-closure``
    Every grow grant ever opened is closed exactly once — by a join at
    an iteration boundary or by a revocation — or is still pending.
``drain-clears-sdc``
    A draining node's SDC strike ledger is empty (drain clears it; a
    drained node takes no new strikes).
``lineage-valid``
    Every running job's ``(shrink_log, grow_log)`` is a replayable
    script per :func:`repro.fleet.jobs.validate_scripted_lineage`, and
    replaying it from the target gang lands exactly on the live count.
``bounded-requeue``
    No job requeues past the budget without being declared failed.
"""

from __future__ import annotations

from repro.fleet.jobs import validate_scripted_lineage
from repro.fleet.verify.model import Bounds
from repro.fleet.verify.state import ModelJob, ModelState, Violation

__all__ = ["INVARIANTS", "check_invariants"]

#: Stable names of every invariant the checker proves, in report order.
INVARIANTS = (
    "slot-conservation",
    "no-double-grant",
    "no-dead-grants",
    "gang-atomicity",
    "grant-closure",
    "drain-clears-sdc",
    "lineage-valid",
    "bounded-requeue",
)


def check_invariants(state: ModelState, bounds: Bounds) -> list[Violation]:
    """Every invariant breach visible in ``state`` (op-time + state-level)."""
    found = list(state.violations)
    _check_ledger(state, found)
    _check_jobs(state, bounds, found)
    _check_closure(state, found)
    _check_drained_sdc(state, found)
    return found


def _check_jobs(
    state: ModelState, bounds: Bounds, found: list[Violation]
) -> None:
    """One pass over the jobs: grants, gangs, lineage, requeue budget
    (separate loops would each re-traverse 400k+ states)."""
    for job in state.jobs:
        _check_job_grants(state, job, found)
        _check_job_gang(job, found)
        _check_job_lineage(job, bounds, found)
        if job.requeues > bounds.max_requeues and job.status != "failed":
            found.append(Violation(
                "bounded-requeue",
                f"{job.name!r} requeued {job.requeues} times "
                f"(budget {bounds.max_requeues}) without failing",
            ))


def _check_ledger(state: ModelState, found: list[Violation]) -> None:
    """slot-conservation + no-double-grant: the ledger matches the owners."""
    owned: dict[int, dict[str, int]] = {}
    for job in state.jobs:
        for node_index in job.placement:
            per_node = owned.setdefault(node_index, {})
            per_node[job.name] = per_node.get(job.name, 0) + 1
        for node_index in job.pending_grows:
            per_node = owned.setdefault(node_index, {})
            per_node[job.name] = per_node.get(job.name, 0) + 1
    for node in state.nodes:
        if node.used > node.slots:
            found.append(Violation(
                "no-double-grant",
                f"node {node.index} holds {node.used} slots of "
                f"{node.slots}",
            ))
        owners = owned.get(node.index, {})
        if node.held != owners:
            found.append(Violation(
                "slot-conservation",
                f"node {node.index}: ledger holds {dict(sorted(node.held.items()))} "
                f"but jobs own {dict(sorted(owners.items()))} there "
                "(leak or theft)",
            ))


def _check_job_grants(
    state: ModelState, job: ModelJob, found: list[Violation]
) -> None:
    """no-dead-grants: pending grants only ever name live nodes."""
    for node_index in job.pending_grows:
        if not state.nodes[node_index].alive:
            found.append(Violation(
                "no-dead-grants",
                f"{job.name!r} holds a grant on dead node "
                f"{node_index} (kill must revoke)",
            ))


def _check_job_gang(job: ModelJob, found: list[Violation]) -> None:
    holds = job.n_live + len(job.pending_grows)
    if job.status in ("running", "checkpointing"):
        if job.n_live < 1:
            found.append(Violation(
                "gang-atomicity",
                f"{job.name!r} is running with no live learners",
            ))
        if len(set(job.placement)) != job.n_live:
            found.append(Violation(
                "gang-atomicity",
                f"{job.name!r} placed twice on one node: "
                f"{job.placement}",
            ))
        if set(job.placement) & set(job.pending_grows):
            found.append(Violation(
                "gang-atomicity",
                f"{job.name!r} granted a node it already occupies: "
                f"{sorted(set(job.placement) & set(job.pending_grows))}",
            ))
        # Migration replacements may transiently overshoot the target
        # (the drained slot leaves only at the next boundary).
        limit = job.spec.target + len(job.pending_migrations)
        if holds > limit:
            found.append(Violation(
                "gang-atomicity",
                f"{job.name!r} holds {holds} slots "
                f"(target {job.spec.target}, "
                f"{len(job.pending_migrations)} migrating)",
            ))
    elif holds > 0:
        found.append(Violation(
            "gang-atomicity",
            f"{job.name!r} is {job.status} but still holds "
            f"{holds} slot(s)",
        ))


def _check_closure(state: ModelState, found: list[Violation]) -> None:
    pending = sum(len(job.pending_grows) for job in state.jobs)
    if state.grants_opened != state.grants_closed + pending:
        found.append(Violation(
            "grant-closure",
            f"{state.grants_opened} grants opened, "
            f"{state.grants_closed} closed, {pending} pending "
            "(each grant must close exactly once)",
        ))


def _check_drained_sdc(state: ModelState, found: list[Violation]) -> None:
    for node in state.nodes:
        if node.draining and node.sdc > 0:
            found.append(Violation(
                "drain-clears-sdc",
                f"draining node {node.index} still carries "
                f"{node.sdc} SDC strike(s)",
            ))


def _check_job_lineage(
    job: ModelJob, bounds: Bounds, found: list[Violation]
) -> None:
    """lineage-valid: the logs script a replayable fault-free reference."""
    if job.status not in ("running", "checkpointing"):
        return
    if not job.shrink_log and not job.grow_log:
        if job.n_live != job.spec.target:
            found.append(Violation(
                "lineage-valid",
                f"{job.name!r}: empty lineage but {job.n_live} "
                f"learners live of target {job.spec.target}",
            ))
        return
    try:
        validate_scripted_lineage(
            job.spec.target,
            bounds.max_steps + 1,
            job.shrink_log,
            job.grow_log,
        )
    except ValueError as exc:
        found.append(Violation(
            "lineage-valid", f"{job.name!r}: {exc}"
        ))
        return
    replayed = (
        job.spec.target - len(job.shrink_log) + len(job.grow_log)
    )
    if replayed != job.n_live:
        found.append(Violation(
            "lineage-valid",
            f"{job.name!r}: replaying the lineage yields "
            f"{replayed} learners but {job.n_live} are live",
        ))
