"""Fleet-level chaos: kill nodes, degrade racks, burst arrivals, preempt
mid-checkpoint — and prove the fleet absorbs all of it.

Each chaos point runs a full multi-job fleet on a 2-rack cluster with one
injected disturbance, then asserts seven invariants:

1. **no job lost or duplicated** — every submitted job reaches exactly
   one terminal state (``finished``, or ``rejected`` only where the
   scenario's admission limit predicts it), and every finished job ran
   its full step count;
2. **bit-exact survivors** — each finished job's final params equal a
   fault-free single-job reference run that replays the job's recorded
   shrink lineage as *controlled* shrinks (``JobSpec.scripted_shrinks``);
3. **bounded makespan** — the faulted fleet's makespan stays within a
   fixed factor of the fault-free fleet's (retries, requeues and backoff
   are bounded, so recovery cannot stall the fleet indefinitely);
4. **no leaked placements** — every slot allocation was returned to the
   ledger, dead nodes included;
5. **victim naming** — a node kill logs a diagnosis naming the node, its
   rack and *every* hosted job's slot and learner id;
6. **bit-exact grown jobs** — a job that shrank *and grew back* lands on
   the same params as a fault-free reference replaying its full recorded
   lineage (``scripted_shrinks`` **and** ``scripted_grows``), and every
   grow point actually produced at least one grow;
7. **no double-granted slots** — auditing the event log, every
   ``grow-grant`` (and every migration's replacement grant) resolves to
   exactly one ``grow`` or ``grow-revoked``, never two outstanding
   grants of one node to one job, and none left outstanding at drain;
8. **SDC contained** (``sdc`` points) — every scripted gradient bit-flip
   is detected at the allreduce boundary *before any optimizer apply*
   and logged as an ``sdc-detect`` event naming the corrupting learner
   and node; repeat strikes on one node drain it ("silent data
   corruption" reason) and hosted learners migrate off; and a clean
   fleet with fingerprinting enabled keeps its event log byte-identical
   to one with it disabled.

Triggers are event-driven (they poll simulated state on a fixed tick and
fire when the fleet reaches the scenario's window), so every point is
bit-reproducible: same seed, same sweep, same report.
"""

from __future__ import annotations

from collections.abc import Callable, Generator, Iterator, Sequence
from dataclasses import dataclass, field, replace

import numpy as np

from repro.fleet.cluster import SharedCluster
from repro.fleet.health import HealthPolicy
from repro.fleet.jobs import TERMINAL, JobSpec
from repro.fleet.scheduler import FleetReport, FleetScheduler
from repro.sim.engine import Event
from repro.train.faults import DrainPolicy

#: A chaos trigger: a generator process the scheduler spawns alongside the
#: fleet; it polls simulated state and fires its disturbance when the
#: scenario's window opens, leaving evidence in ``record``.
Trigger = Callable[[SharedCluster, FleetScheduler, dict], Iterator[Event]]

__all__ = ["FleetChaosOutcome", "FleetChaosPoint", "FleetChaosReport",
           "FLEET_KINDS", "GROW_KINDS", "SDC_KINDS", "fleet_chaos_sweep"]

#: Chaos trigger poll tick (simulated seconds) — well under one job step.
_POLL = 1e-4
#: Makespan bound: faulted <= factor * fault-free + slack (requeue backoff
#: and checkpoint windows are additive, not multiplicative).
_MAKESPAN_FACTOR = 10.0
_MAKESPAN_SLACK = 2.0

#: Grow/flap points: the elastic-grow and proactive-migration scenarios.
GROW_KINDS = ("grow-in-flight-kill", "kill-in-grow-replay", "node-flap")
#: Silent-data-corruption points: scripted gradient bit-flips.
SDC_KINDS = ("sdc",)
FLEET_KINDS = ("node-kill", "link-degrade", "burst-arrival",
               "preempt-in-checkpoint") + GROW_KINDS + SDC_KINDS

#: Health policy for the node-flap point: link-factor-only (a clean run's
#: factor is exactly 1.0, so a healthy fleet can never drain), two strikes.
_FLAP_HEALTH = HealthPolicy(
    policy=DrainPolicy(
        link_factor_threshold=0.5, queue_depth_threshold=None, strikes=2
    ),
    poll_every=2e-4,
)

#: Health policy for the sdc point: SDC-strikes-only (a clean run books
#: zero strikes, so a healthy fleet can never drain); the ledger already
#: counts *confirmed* detections, so one poll over threshold suffices.
_SDC_HEALTH = HealthPolicy(
    policy=DrainPolicy(
        link_factor_threshold=None, queue_depth_threshold=None,
        sdc_threshold=2, strikes=1,
    ),
    poll_every=2e-4,
)


@dataclass(frozen=True)
class FleetChaosPoint:
    """One scenario: a disturbance against a workload under a policy."""

    kind: str
    placement: str
    n_jobs: int
    hosted: int | None = None  # node-kill: jobs on the victim node

    def label(self) -> str:
        extra = f" hosted={self.hosted}" if self.hosted is not None else ""
        return f"{self.kind} placement={self.placement} jobs={self.n_jobs}{extra}"


@dataclass
class FleetChaosOutcome:
    point: FleetChaosPoint
    ok: bool
    violations: list[str] = field(default_factory=list)
    makespan: float = 0.0
    ref_makespan: float = 0.0
    report: FleetReport | None = None


@dataclass
class FleetChaosReport:
    outcomes: list[FleetChaosOutcome]

    @property
    def all_ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    def format(self) -> str:
        lines = [
            f"fleet chaos: {len(self.outcomes)} points, "
            f"{sum(o.ok for o in self.outcomes)} ok, "
            f"{sum(not o.ok for o in self.outcomes)} failed"
        ]
        for o in self.outcomes:
            mark = "ok " if o.ok else "FAIL"
            lines.append(
                f"  [{mark}] {o.point.label():<55s} "
                f"makespan {o.makespan:.4f}s (ref {o.ref_makespan:.4f}s)"
            )
            for v in o.violations:
                lines.append(f"         - {v}")
        return "\n".join(lines)


# -- workloads ----------------------------------------------------------------

def _workload(point: FleetChaosPoint) -> tuple[list[JobSpec], dict, int]:
    """Specs, cluster kwargs and expected rejections for one scenario."""
    cluster_kw = dict(n_racks=2, nodes_per_rack=4, slots_per_node=2)
    expect_rejects = 0
    if point.kind == "burst-arrival":
        # One-slot nodes so the burst actually queues; the admission limit
        # turns the deepest arrival into a counted rejection, not a loss.
        cluster_kw["slots_per_node"] = 1
        specs = [
            JobSpec(name=f"base{i}", n_learners=3, n_steps=4,
                    seed=300 + i, arrival=0.0)
            for i in range(2)
        ] + [
            JobSpec(name=f"burst{i}", n_learners=3, n_steps=3,
                    seed=320 + i, arrival=3e-4)
            for i in range(point.n_jobs)
        ]
        expect_rejects = max(0, point.n_jobs - 2)
    elif point.kind == "preempt-in-checkpoint":
        cluster_kw["slots_per_node"] = 1
        specs = [
            JobSpec(name="victim", n_learners=4, n_steps=5, seed=400,
                    checkpoint_every=1, checkpoint_time=5e-4),
            JobSpec(name="vip", n_learners=6, n_steps=3, seed=401,
                    priority=5, arrival=1.5e-3),
        ]
    elif point.kind in GROW_KINDS:
        # Tight one-slot cluster: killing one of "long"'s nodes shrinks
        # it, and the revived node is the only capacity its elastic grow
        # can reclaim.  "short" finishes early, freeing migration targets
        # for the flap scenario.
        cluster_kw = dict(n_racks=2, nodes_per_rack=2, slots_per_node=1)
        specs = [
            JobSpec(name="long", n_learners=2, n_steps=8, seed=500,
                    elastic_grow=True, checkpoint_every=3),
            JobSpec(name="short", n_learners=2, n_steps=3, seed=501),
        ]
    elif point.kind in SDC_KINDS:
        # Three co-located 3-gangs on a 4-node cluster: both sick jobs'
        # slot-1 learners share a node (under pack *and* spread), so two
        # confirmed strikes drain it; node 3 stays free as the clean
        # job's migration target.
        cluster_kw = dict(n_racks=2, nodes_per_rack=2, slots_per_node=3)
        specs = [
            JobSpec(name="sickA", n_learners=3, n_steps=6, seed=600,
                    sdc_check=True, sdc_buckets=2, sdc_faults=((1, 1, 0),)),
            JobSpec(name="sickB", n_learners=3, n_steps=6, seed=601,
                    sdc_check=True, sdc_buckets=2, sdc_faults=((2, 1, 1),)),
            JobSpec(name="clean", n_learners=3, n_steps=10, seed=602,
                    sdc_check=True, elastic_grow=True),
        ]
    else:  # node-kill, link-degrade
        specs = [
            JobSpec(name=f"job{i}", n_learners=2, n_steps=5, seed=100 + i)
            for i in range(point.n_jobs)
        ]
    return specs, cluster_kw, expect_rejects


def _run_fleet(
    specs: list[JobSpec],
    placement: str,
    cluster_kw: dict,
    *,
    seed: int = 0,
    max_queued: int | None = None,
    trigger: Trigger | None = None,
    health: HealthPolicy | None = None,
) -> tuple[FleetReport, FleetScheduler, dict]:
    cluster = SharedCluster(**cluster_kw)
    scheduler = FleetScheduler(
        cluster, specs, placement=placement, seed=seed,
        max_queued=max_queued, health=health,
    )
    record: dict = {}
    if trigger is not None:
        scheduler.spawn(trigger(cluster, scheduler, record))
    report = scheduler.run()
    return report, scheduler, record


# -- triggers -----------------------------------------------------------------

def _drained(scheduler: FleetScheduler) -> bool:
    return all(j.status in TERMINAL for j in scheduler.jobs.values())


def _kill_trigger(hosted: int) -> Trigger:
    """Kill the first node hosting exactly ``hosted`` jobs, once every
    job has made a step of progress (so the kill lands mid-training)."""

    def trigger(
        cluster: SharedCluster, scheduler: FleetScheduler, record: dict,
    ) -> Iterator[Event]:
        while not _drained(scheduler):
            yield cluster.engine.timeout(_POLL)
            active = [
                j for j in scheduler.jobs.values() if j.status not in TERMINAL
            ]
            if active and all(j.telemetry.steps >= 1 for j in active):
                candidates = [
                    n for n in cluster.nodes if n.alive and len(n.held) == hosted
                ]
                if not candidates:
                    continue
                node = candidates[0]
                record["node"] = node.index
                record["jobs"] = sorted(node.held)
                scheduler.kill_node(node.index)
                return
        record["skipped"] = "fleet drained before a kill candidate appeared"

    return trigger


def _degrade_trigger(
    rack: int = 0, factor: float = 0.05, window: float = 5e-4,
) -> Trigger:
    """Degrade one rack's spine uplinks mid-run, then restore them."""

    def trigger(
        cluster: SharedCluster, scheduler: FleetScheduler, record: dict,
    ) -> Iterator[Event]:
        while not _drained(scheduler):
            yield cluster.engine.timeout(_POLL)
            if any(j.telemetry.steps >= 1 for j in scheduler.jobs.values()):
                record["rack"] = rack
                cluster.degrade_rack_uplinks(rack, factor)
                yield cluster.engine.timeout(window)
                cluster.degrade_rack_uplinks(rack, 1.0)
                record["restored"] = True
                return
        record["skipped"] = "fleet drained before degrade window"

    return trigger


def _preempt_in_checkpoint_trigger(victim_name: str = "victim") -> Trigger:
    """Deliver a preemption while the victim is inside a checkpoint write —
    the torn-write window the job must commit through, then vacate from."""

    def trigger(
        cluster: SharedCluster, scheduler: FleetScheduler, record: dict,
    ) -> Iterator[Event]:
        victim = scheduler.jobs[victim_name]
        while not _drained(scheduler):
            yield cluster.engine.timeout(_POLL)
            if (
                victim.status == "checkpointing"
                and not victim.preempt_pending
                and victim.proc is not None
                and victim.proc.is_alive
            ):
                from repro.fleet.jobs import PreemptionNotice

                record["at_status"] = victim.status
                victim.preempt_pending = True
                victim.proc.interrupt(PreemptionNotice())
                scheduler._log(
                    "preempt",
                    f"{victim_name} preempted inside its checkpoint window",
                    job=victim_name,
                )
                return
        record["skipped"] = "victim never entered a checkpoint window"

    return trigger


def _shrink_then_revive(
    cluster: SharedCluster,
    scheduler: FleetScheduler,
    record: dict,
    job_name: str = "long",
) -> Generator[Event, object, int | None]:
    """Shared grow preamble: kill one of the job's nodes mid-training,
    wait for the elastic shrink to land, then revive the node — the
    revival's placement kick hands the freed slot straight back as a
    grow grant (``job.pending_grows``) in the same simulated instant.

    Yields until done; sets ``record['skipped']`` if the window never
    opened.  Returns the revived node index, or ``None`` on skip.
    """
    job = scheduler.jobs[job_name]
    while not _drained(scheduler):
        yield cluster.engine.timeout(_POLL)
        if job.status in TERMINAL:
            break
        if job.telemetry.steps >= 1 and job.n_live > 1:
            node = job.placement[-1]
            record["killed"] = node
            scheduler.kill_node(node)
            break
    else:
        record["skipped"] = f"{job_name} never reached the kill window"
        return None
    if "killed" not in record:
        record["skipped"] = f"{job_name} terminal before the kill window"
        return None
    while not _drained(scheduler):
        yield cluster.engine.timeout(_POLL)
        if job.status in TERMINAL:
            record["skipped"] = f"{job_name} terminal before regrowing"
            return None
        if job.n_live == 1 and record["killed"] not in job.placement:
            break
    scheduler.revive_node(record["killed"])
    record["revived"] = record["killed"]
    return record["killed"]


def _grow_in_flight_kill_trigger(job_name: str = "long") -> Trigger:
    """Kill a *granted-but-not-yet-joined* node: the grant must be
    revoked (never half-joined), and a later revival must still grow the
    job back to full strength."""

    def trigger(
        cluster: SharedCluster, scheduler: FleetScheduler, record: dict,
    ) -> Iterator[Event]:
        job = scheduler.jobs[job_name]
        node = yield from _shrink_then_revive(cluster, scheduler, record)
        if node is None:
            return
        # The revival's kick granted the slot synchronously; no simulated
        # time has passed, so the learner cannot have joined yet.
        if node not in job.pending_grows:
            record["skipped"] = "revived node was not granted back"
            return
        record["granted"] = node
        scheduler.kill_node(node)
        record["revoked"] = True
        # Second revival: this grant is allowed to complete.
        yield cluster.engine.timeout(_POLL)
        scheduler.revive_node(node)

    return trigger


def _kill_in_grow_replay_trigger(job_name: str = "long") -> Trigger:
    """Kill a placement node again *after* a grow has joined, so the
    lineage interleaves shrink → grow → shrink → grow and the reference
    replay must reproduce all four."""

    def trigger(
        cluster: SharedCluster, scheduler: FleetScheduler, record: dict,
    ) -> Iterator[Event]:
        job = scheduler.jobs[job_name]
        node = yield from _shrink_then_revive(cluster, scheduler, record)
        if node is None:
            return
        while not _drained(scheduler):
            yield cluster.engine.timeout(_POLL)
            if job.status in TERMINAL:
                record["skipped"] = f"{job_name} terminal before its grow"
                return
            if job.grow_log and job.n_live > 1:
                second = job.placement[-1]
                record["second_kill"] = second
                scheduler.kill_node(second)
                break
        else:
            return
        while not _drained(scheduler):
            yield cluster.engine.timeout(_POLL)
            if job.status in TERMINAL:
                return
            if job.n_live == 1 and record["second_kill"] not in job.placement:
                scheduler.revive_node(record["second_kill"])
                return

    return trigger


def _node_flap_trigger(job_name: str = "long", factor: float = 0.05) -> Trigger:
    """Full flap: kill → revive → grow back, then degrade the revived
    node's links until the health monitor drains it and the job migrates
    off proactively, then restore the links and the node."""

    def trigger(
        cluster: SharedCluster, scheduler: FleetScheduler, record: dict,
    ) -> Iterator[Event]:
        job = scheduler.jobs[job_name]
        node = yield from _shrink_then_revive(cluster, scheduler, record)
        if node is None:
            return
        short = scheduler.jobs["short"]
        while not _drained(scheduler):
            yield cluster.engine.timeout(_POLL)
            if job.status in TERMINAL:
                record["skipped"] = f"{job_name} terminal before its grow"
                return
            # Degrade only once the grow joined and "short" has freed a
            # migration target, so the drain can grant a replacement.
            if (
                job.grow_log
                and node in job.placement
                and short.status in TERMINAL
            ):
                record["degraded"] = node
                cluster.degrade_node_links(node, factor)
                break
        else:
            return
        while not _drained(scheduler):
            yield cluster.engine.timeout(_POLL)
            if node not in job.placement or job.status in TERMINAL:
                # Migrated off (or finished): restore the flapping NIC.
                cluster.degrade_node_links(node, 1.0)
                scheduler.undrain_node(node)
                record["restored"] = True
                return

    return trigger


# -- invariants ---------------------------------------------------------------

def _reference_params(
    spec: JobSpec,
    shrinks: tuple[tuple[int, int], ...],
    grows: tuple[tuple[int, int], ...],
    cluster_kw: dict,
    cache: dict,
) -> np.ndarray:
    """Final params of a fault-free solo run replaying the full lineage:
    ``shrinks`` as controlled shrinks *and* ``grows`` as scripted grows
    (elastic grow itself disabled, so the reference only ever does what
    the script says)."""
    key = (spec.seed, spec.n_learners, spec.n_steps, spec.batch_per_gpu,
           spec.records_per_learner, spec.reducer, spec.sdc_check,
           shrinks, grows)
    if key not in cache:
        ref_spec = replace(
            spec, arrival=0.0, priority=0, elastic_grow=False,
            scripted_shrinks=tuple(shrinks), scripted_grows=tuple(grows),
            sdc_faults=(),
        )
        _report, scheduler, _rec = _run_fleet(
            [ref_spec], "pack", cluster_kw
        )
        job = scheduler.jobs[spec.name]
        if job.status != "finished" or job.final_params is None:
            raise RuntimeError(
                f"reference run for {spec.name!r} did not finish "
                f"(status {job.status!r})"
            )
        cache[key] = job.final_params
    return cache[key]


def _check_point(
    point: FleetChaosPoint,
    cluster_kw: dict,
    expect_rejects: int,
    report: FleetReport,
    scheduler: FleetScheduler,
    record: dict,
    ref_makespan: float,
    ref_cache: dict,
) -> list[str]:
    violations: list[str] = []
    if "skipped" in record:
        violations.append(f"trigger never fired: {record['skipped']}")
    # 1. No job lost or duplicated.
    names = [j.name for j in report.jobs]
    if len(set(names)) != len(names):
        violations.append(f"duplicated job summaries: {names}")
    rejected = [j.name for j in report.jobs if j.status == "rejected"]
    for summary in report.jobs:
        if summary.status == "rejected":
            continue
        if summary.status != "finished":
            violations.append(
                f"job {summary.name} lost: terminal status {summary.status!r}"
            )
            continue
        job = scheduler.jobs[summary.name]
        if job.final_iteration != job.spec.n_steps:
            violations.append(
                f"job {summary.name} finished at iteration "
                f"{job.final_iteration} != {job.spec.n_steps}"
            )
    if len(rejected) != expect_rejects:
        violations.append(
            f"expected {expect_rejects} admission rejections, got "
            f"{len(rejected)}: {rejected}"
        )
    # 2 & 6. Bit-exact survivor params vs the fault-free reference that
    # replays the job's full recorded lineage (shrinks and grows).
    for summary in report.jobs:
        if summary.status != "finished":
            continue
        job = scheduler.jobs[summary.name]
        ref = _reference_params(
            job.spec, tuple(job.shrink_log), tuple(job.grow_log),
            cluster_kw, ref_cache,
        )
        if not np.array_equal(job.final_params, ref):
            violations.append(
                f"job {summary.name} params diverge from its fault-free "
                f"reference (shrinks {job.shrink_log}, "
                f"grows {job.grow_log})"
            )
    # 3. Bounded makespan.
    bound = _MAKESPAN_FACTOR * ref_makespan + _MAKESPAN_SLACK
    if not (0.0 <= report.makespan <= bound):
        violations.append(
            f"makespan {report.makespan:.4f}s exceeds bound {bound:.4f}s "
            f"(ref {ref_makespan:.4f}s)"
        )
    # 4. No leaked placements.
    if report.leaked:
        violations.append(f"leaked placements: {report.leaked}")
    # 5. Victim-naming diagnosis for node kills.
    if point.kind == "node-kill" and "skipped" not in record:
        kills = [e for e in report.events if e.kind == "node-kill"]
        if not kills:
            violations.append("node killed but no node-kill event logged")
        else:
            event = kills[0]
            hosted_jobs = record.get("jobs", [])
            if len(hosted_jobs) != point.hosted:
                violations.append(
                    f"victim node hosted {len(hosted_jobs)} jobs, "
                    f"point wanted {point.hosted}"
                )
            for name in hosted_jobs:
                if f"job {name} " not in event.text:
                    violations.append(
                        f"node-kill diagnosis does not name hosted job "
                        f"{name!r}: {event.text!r}"
                    )
            if f"node {record['node']} " not in event.text:
                violations.append(
                    f"node-kill diagnosis does not name the node: "
                    f"{event.text!r}"
                )
    # 6. Grow points must actually grow (the replay above already proved
    # the grown params bit-exact).
    if point.kind in GROW_KINDS and "skipped" not in record:
        long_job = scheduler.jobs["long"]
        if not long_job.grow_log:
            violations.append(
                "grow point finished without a single recorded grow"
            )
        if point.kind == "grow-in-flight-kill":
            if not any(e.kind == "grow-revoked" for e in report.events):
                violations.append(
                    "in-flight kill never revoked the granted slot"
                )
        if point.kind == "node-flap":
            if long_job.telemetry.migrations < 1:
                violations.append("flap point never migrated a learner")
            for needed in ("drain", "migrate"):
                if not any(e.kind == needed for e in report.events):
                    violations.append(f"flap point logged no {needed} event")
            migrates = [e for e in report.events if e.kind == "migrate"]
            if migrates and (
                f"node {record.get('degraded')} " not in migrates[0].text
                or "degraded links" not in migrates[0].text
            ):
                violations.append(
                    f"migration not attributed to the sick node and its "
                    f"drain reason: {migrates[0].text!r}"
                )
    # 8. SDC points: detect before apply, attribute, contain, migrate.
    if point.kind in SDC_KINDS:
        violations.extend(_check_sdc(point, cluster_kw, report, scheduler))
    # 7. No slot double-granted: every grant resolves exactly once.
    violations.extend(_audit_grow_grants(report))
    return violations


def _check_sdc(
    point: FleetChaosPoint,
    cluster_kw: dict,
    report: FleetReport,
    scheduler: FleetScheduler,
) -> list[str]:
    """The sdc point's invariant 8: every flip detected and quarantined
    before any optimizer apply, repeat strikes drain the node, hosted
    learners migrate, and fingerprinting leaves a clean fleet's event
    log byte-identical."""
    violations: list[str] = []
    detects = [e for e in report.events if e.kind == "sdc-detect"]
    injected = sum(
        len(j.sdc_injected) for j in scheduler.jobs.values()
    )
    expected = sum(
        len(j.spec.sdc_faults) for j in scheduler.jobs.values()
    )
    if injected != expected:
        violations.append(
            f"{expected} scripted sdc flips but only {injected} injected"
        )
    if len(detects) != injected:
        violations.append(
            f"{injected} injected flips but {len(detects)} sdc-detect "
            f"events — a flip reached the optimizer undetected"
        )
    for job in scheduler.jobs.values():
        for iteration, slot, _bucket in job.sdc_injected:
            if (iteration, slot) not in job.shrink_log:
                violations.append(
                    f"job {job.name}: flip at iteration {iteration} slot "
                    f"{slot} never quarantined (shrinks {job.shrink_log})"
                )
    drains = [e for e in report.events if e.kind == "drain"]
    if not any("corruption" in e.text for e in drains):
        violations.append(
            "repeat SDC strikes never drained the offending node"
        )
    migrates = [e for e in report.events if e.kind == "migrate"]
    if not any("corruption" in e.text for e in migrates):
        violations.append(
            "no learner migrated off the drained corrupting node"
        )
    # Clean-fleet equivalence: same workload, faults stripped, no health
    # monitor — the event timeline must be byte-identical with
    # fingerprinting on and off (zero-sim-event bookkeeping).
    logs = []
    for check in (True, False):
        clean_specs = [
            replace(j.spec, sdc_faults=(), sdc_check=check)
            for j in scheduler.jobs.values()
        ]
        clean_report, _s, _r = _run_fleet(
            clean_specs, point.placement, cluster_kw
        )
        logs.append([str(e) for e in clean_report.events])
    if logs[0] != logs[1]:
        violations.append(
            "fingerprinting perturbed a clean fleet's event log "
            "(zero-sim-event bookkeeping broken)"
        )
    return violations


def _audit_grow_grants(report: FleetReport) -> list[str]:
    """Replay the event log's grant lifecycle (invariant 7).

    A ``grow-grant`` (or a migration's replacement grant) opens exactly
    one outstanding ``(job, node)`` claim; a ``grow`` or ``grow-revoked``
    closes it.  Two simultaneous claims on one pair, a close without an
    open, or a claim still open once the fleet drained all violate the
    no-double-grant invariant.
    """
    violations: list[str] = []
    outstanding: set[tuple[str, int]] = set()
    for event in report.events:
        job = event.data.get("job")
        if event.kind == "grow-grant":
            key = (job, event.data.get("node"))
            if key in outstanding:
                violations.append(
                    f"node {key[1]} granted twice to {key[0]} with the "
                    f"first grant still outstanding"
                )
            outstanding.add(key)
        elif event.kind == "migrate" and "replacement" in event.data:
            key = (job, event.data["replacement"])
            if key in outstanding:
                violations.append(
                    f"migration replacement node {key[1]} already granted "
                    f"to {key[0]}"
                )
            outstanding.add(key)
        elif event.kind in ("grow", "grow-revoked"):
            key = (job, event.data.get("node"))
            if key not in outstanding:
                violations.append(
                    f"{event.kind} of node {key[1]} for {key[0]} without "
                    f"an outstanding grant"
                )
            outstanding.discard(key)
    for job, node in sorted(outstanding, key=str):
        violations.append(
            f"grant of node {node} to {job} never resolved (no grow or "
            f"revoke before drain)"
        )
    return violations


# -- the sweep ----------------------------------------------------------------

def _points(
    kinds: Sequence[str], placements: Sequence[str], smoke: bool,
) -> list[FleetChaosPoint]:
    points: list[FleetChaosPoint] = []
    # 3 and 5 jobs both leave the cluster with at least one singly- and one
    # doubly-hosted node under *both* placement policies (4 jobs pair up
    # perfectly and leave no singly-hosted node to kill).
    job_counts = (3,) if smoke else (3, 5)
    for placement in placements:
        if "node-kill" in kinds:
            for n_jobs in job_counts:
                for hosted in (1, 2):
                    points.append(FleetChaosPoint(
                        "node-kill", placement, n_jobs, hosted))
        if "link-degrade" in kinds:
            points.append(FleetChaosPoint("link-degrade", placement, 2))
        if "burst-arrival" in kinds:
            points.append(FleetChaosPoint("burst-arrival", placement, 3))
        if "preempt-in-checkpoint" in kinds:
            points.append(FleetChaosPoint(
                "preempt-in-checkpoint", placement, 2))
        for kind in GROW_KINDS:
            if kind in kinds:
                points.append(FleetChaosPoint(kind, placement, 2))
        if "sdc" in kinds:
            points.append(FleetChaosPoint("sdc", placement, 3))
    return points


def fleet_chaos_sweep(
    *,
    kinds: tuple[str, ...] = FLEET_KINDS,
    placements: tuple[str, ...] = ("pack", "spread"),
    smoke: bool = False,
    seed: int = 0,
) -> FleetChaosReport:
    """Run every chaos point and check the seven fleet invariants."""
    unknown = [k for k in kinds if k not in FLEET_KINDS]
    if unknown:
        raise ValueError(
            f"unknown fleet chaos kind(s) {unknown}; choose from {FLEET_KINDS}"
        )
    ref_cache: dict = {}
    ref_makespans: dict = {}
    outcomes: list[FleetChaosOutcome] = []
    for point in _points(kinds, placements, smoke):
        specs, cluster_kw, expect_rejects = _workload(point)
        if point.kind == "node-kill":
            trigger = _kill_trigger(point.hosted)
        elif point.kind == "link-degrade":
            trigger = _degrade_trigger()
        elif point.kind == "preempt-in-checkpoint":
            trigger = _preempt_in_checkpoint_trigger()
        elif point.kind == "grow-in-flight-kill":
            trigger = _grow_in_flight_kill_trigger()
        elif point.kind == "kill-in-grow-replay":
            trigger = _kill_in_grow_replay_trigger()
        elif point.kind == "node-flap":
            trigger = _node_flap_trigger()
        else:
            trigger = None
        max_queued = 2 if point.kind == "burst-arrival" else None
        if point.kind == "node-flap":
            health = _FLAP_HEALTH
        elif point.kind in SDC_KINDS:
            health = _SDC_HEALTH
        else:
            health = None
        ref_key = (point.kind, point.placement, point.n_jobs)
        if ref_key not in ref_makespans:
            # The sdc point's disturbance lives in the specs themselves;
            # strip it so the makespan reference is genuinely fault-free.
            ref_specs = (
                [replace(s, sdc_faults=()) for s in specs]
                if point.kind in SDC_KINDS else specs
            )
            ref_report, _s, _r = _run_fleet(
                ref_specs, point.placement, cluster_kw,
                seed=seed, max_queued=max_queued,
            )
            ref_makespans[ref_key] = ref_report.makespan
        ref_makespan = ref_makespans[ref_key]
        report, scheduler, record = _run_fleet(
            specs, point.placement, cluster_kw,
            seed=seed, max_queued=max_queued, trigger=trigger,
            health=health,
        )
        violations = _check_point(
            point, cluster_kw, expect_rejects,
            report, scheduler, record, ref_makespan, ref_cache,
        )
        outcomes.append(FleetChaosOutcome(
            point=point,
            ok=not violations,
            violations=violations,
            makespan=report.makespan,
            ref_makespan=ref_makespan,
            report=report,
        ))
    return FleetChaosReport(outcomes)
