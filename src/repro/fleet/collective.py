"""Guarded allreduce for fleet jobs sharing one live engine.

:func:`~repro.mpi.schedule.run_guarded` owns its engine: every attempt
builds a fresh isolated world and blocks in ``engine.run``.  A fleet job
cannot do that — it is *one process among many* on the shared cluster
engine, so its watchdog/retry/repair loop must itself be a generator that
yields control back to the scheduler's event loop.  This module is that
generator: the same snapshot/restore, diagnosis, surgical-repair and
bounded-backoff semantics as ``run_guarded``, re-expressed for a
persistent world.

The delicate part is *abandoning* a timed-out or preempted attempt
without poisoning the shared engine.  Interrupting the executor's strand
processes (never its rank proxies directly) fails each strand with an
:class:`~repro.sim.engine.Interrupt`; the failure then walks the chain
strand -> per-rank ``AllOf`` -> rank proxy -> completion ``AllOf``, and
every hop defuses its child, so no failed event ever reaches
``engine.step`` unhandled.  The completion gate itself is pre-defused at
creation: if the job process is interrupted *away* from the gate (a
preemption landing mid-wait), the gate's later failure is already marked
handled.  Per-attempt wire tags carry ``(job, iteration, sequence)`` so a
stale message from an abandoned attempt can never satisfy a retry's recv.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import TYPE_CHECKING

import numpy as np

from repro.mpi.collectives import ALLREDUCE_COMPILERS
from repro.mpi.datatypes import ArrayBuffer
from repro.mpi.schedule import (
    CollectiveTelemetry,
    CollectiveTimeout,
    RankFailure,
    ScheduleExecutor,
)
from repro.mpi.world import Communicator
from repro.sim.engine import Event, Interrupt

if TYPE_CHECKING:  # circular at runtime: jobs imports this module
    from repro.fleet.cluster import SharedCluster
    from repro.fleet.jobs import FleetJob

__all__ = ["JobLost", "abandon_attempt", "guarded_fleet_allreduce"]


class JobLost(RuntimeError):
    """A job ran out of live learners and must requeue from checkpoint."""

    def __init__(self, job_name: str, detail: str):
        super().__init__(f"job {job_name!r} lost all learners: {detail}")
        self.job_name = job_name
        self.detail = detail


class _Abandoned(Exception):
    """Interrupt cause delivered to a doomed attempt's strand processes."""


def abandon_attempt(executor: ScheduleExecutor) -> None:
    """Kill a launched attempt's processes without crashing the engine.

    Only *strand* processes are interrupted; each rank proxy then dies of
    its inner ``AllOf``'s failure, which keeps every ``_resume`` callback
    attached along the chain so each failure is defused by its consumer.
    (Interrupting a proxy directly would detach its callback from the
    inner ``AllOf`` and leave that failure unobserved — an engine crash.)
    """
    for proc in executor.strand_procs:
        if proc.is_alive:
            proc.interrupt(_Abandoned())


def guarded_fleet_allreduce(
    cluster: SharedCluster,
    job: FleetJob,
    grads: list[np.ndarray],
    telemetry: CollectiveTelemetry | None = None,
) -> Generator[Event, object, tuple[list[ArrayBuffer], CollectiveTelemetry]]:
    """Generator: sum ``grads`` across ``job``'s live learners, guarded.

    Yields engine events (run it inside the job's process); returns
    ``(buffers, telemetry)`` exactly like ``run_guarded``.  Differences
    forced by the shared engine:

    * **pre-launch victims** — nodes that died while the job was computing
      (no collective in flight to interrupt) are absorbed here, before the
      attempt launches, through the same ``telemetry.repaired_ranks``
      bookkeeping as a mid-collective repair;
    * **mid-attempt crashes** — the scheduler interrupts the victim's rank
      proxy; the failure arrives at the gate as ``Interrupt(RankFailure)``,
      the attempt is abandoned, the victim's buffer/snapshot/slot are
      dropped and the survivor group recompiles;
    * **real backoff** — retry backoff is slept in shared simulated time
      (``yield engine.timeout``), not merely accounted, because other jobs
      keep running through it;
    * **preemption** — any non-``RankFailure`` interrupt abandons the
      attempt and propagates to the job program (the scheduler's
      controlled-fault path), leaving the engine clean.
    """
    engine = cluster.engine
    telemetry = telemetry if telemetry is not None else CollectiveTelemetry()
    spec = job.spec
    compiler = ALLREDUCE_COMPILERS[spec.reducer]
    buffers = [ArrayBuffer(g.copy()) for g in grads]
    snapshots = [b.extract() for b in buffers]
    attempts = 0
    backoff = spec.retry_backoff
    dirty = False
    while True:
        # Absorb every pending victim: dead nodes noticed between
        # collectives, plus controlled preemption shrinks.
        victim = job.next_victim()
        while victim is not None:
            if len(buffers) <= 1:
                raise JobLost(spec.name, "last learner's node died")
            telemetry.repaired_ranks.append(victim)
            del buffers[victim]
            del snapshots[victim]
            job.drop_slot(victim)
            victim = job.next_victim()
        if dirty:
            for buf, snap in zip(buffers, snapshots):
                buf.copy_(snap)
            dirty = False
        n = len(buffers)
        if n == 1:
            return buffers, telemetry
        comm = Communicator(cluster.world, job.placement_ranks())
        schedule = compiler(n, buffers[0].count, buffers[0].itemsize)
        tag = (spec.name, job.trainer.iteration, job.next_collective_seq())
        executor = ScheduleExecutor(comm, schedule, buffers, tag=tag)
        done = executor.launch()
        job.active_executor = executor
        deadline = engine.timeout(spec.collective_timeout)
        gate = engine.any_of([done, deadline])
        # If this process gets interrupted away from the gate, the gate's
        # eventual failure has no waiter left — pre-defuse it.
        gate.defuse()
        dirty = True
        start = engine.now
        try:
            yield gate
        except Interrupt as exc:
            telemetry.sim_time += engine.now - start
            abandon_attempt(executor)
            cause = exc.cause
            if isinstance(cause, RankFailure):
                # Surgical repair: a launched attempt has n >= 2, so at
                # least one survivor remains (a lone survivor is fine —
                # the n == 1 short-circuit above handles it next pass).
                telemetry.repaired_ranks.append(cause.rank)
                del buffers[cause.rank]
                del snapshots[cause.rank]
                job.drop_slot(cause.rank)
                continue
            raise
        finally:
            executor.release_observer()
            job.active_executor = None
        telemetry.sim_time += engine.now - start
        if done.triggered:
            return buffers, telemetry
        # Watchdog fired: diagnose the stall (naming the suspect rank and
        # step), abandon the attempt, back off for real, and retry.
        diagnosis = executor.diagnose()
        telemetry.diagnoses.append(diagnosis)
        abandon_attempt(executor)
        attempts += 1
        telemetry.retries += 1
        if attempts > spec.max_retries:
            raise CollectiveTimeout(
                spec.collective_timeout, job.trainer.iteration, attempts, diagnosis
            )
        telemetry.backoff += backoff
        telemetry.sim_time += backoff
        yield engine.timeout(backoff)
        backoff *= 2
