"""The fleet scheduler: gang placement, preemption, requeue, backfill.

One :class:`FleetScheduler` drives a workload of :class:`JobSpec`s over a
:class:`~repro.fleet.cluster.SharedCluster`:

* **gang scheduling** — a job starts only when *all* its learners can be
  placed on distinct live nodes (a communicator rejects duplicate
  members, so one node hosts at most one learner per job);
* **topology-aware placement** — ``placement="pack"`` fills the fewest
  racks (cheap allreduce, correlated blast radius), ``"spread"``
  round-robins racks (expensive allreduce, independent fault domains);
* **priority preemption** — a higher-priority arrival that cannot be
  placed preempts strictly-lower-priority victims, delivered as a
  controlled fault (checkpoint + requeue, or a single-learner elastic
  shrink for ``preemption="shrink"`` victims);
* **bounded-backoff requeue** — a job that loses all learners requeues
  from its last checkpoint with exponential backoff whose jitter is drawn
  from the deterministic sim RNG (``rng_for(seed, "requeue", job, n)``),
  so fleet sweeps are bit-reproducible run to run;
* **backfill** — every freed slot (finish, shrink, preemption) re-runs
  the placement scan over the whole queue, so small jobs flow around a
  blocked gang at the head.

Node deaths enter here: :meth:`FleetScheduler.kill_node` marks the fault
domain dead, emits one correlated ``RankFailure`` into every hosted job's
in-flight collective, and logs a diagnosis naming every victim — the
chaos sweep asserts on that naming.

Two elastic flows run on top (both opt-in, both no-ops for a clean
fleet):

* **grow-after-shrink** — whenever the queue is empty and slots are
  spare, shrunk jobs with ``elastic_grow=True`` are offered nodes back
  (up to their original gang size).  The grant allocates the slot in the
  cluster ledger *immediately* — one slot can never back two grants —
  and the job joins the learner at its next iteration boundary
  (``grow`` event) or the grant is revoked if the node dies first
  (``grow-revoked`` event).  Queued gangs strictly outrank grow-backs.
* **proactive migration** — a :mod:`repro.fleet.health` monitor (enabled
  by passing ``health=``) watches per-node straggler signals and calls
  :meth:`drain_node`: every hosted learner is surrendered at its next
  collective boundary (the controlled-shrink path) while a replacement
  node is granted up front (the grow path), so the job moves off the
  sick node before the collective watchdog ever fires.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.fleet.cluster import SharedCluster
from repro.fleet.collective import JobLost
from repro.fleet.health import HealthPolicy, health_monitor
from repro.fleet.jobs import TERMINAL, FleetJob, JobSpec, PreemptionNotice
from repro.fleet.policy import (
    FleetState,
    JobView,
    NodeView,
    choose_placement,
    drain_admissible,
    grow_offer_order,
    pick_grow_node,
    scan_order,
    select_preemption_victims,
    wants_grow,
)
from repro.mpi.schedule import RankFailure
from repro.sim.engine import Event, Process, SimulationError
from repro.utils.rng import rng_for

__all__ = ["FleetEvent", "FleetReport", "FleetScheduler", "JobSummary"]


@dataclass(frozen=True)
class FleetEvent:
    """One scheduler decision or fault, timestamped in simulated seconds."""

    t: float
    kind: str
    text: str
    data: dict = field(default_factory=dict)

    def __str__(self) -> str:
        return f"[{self.t:10.4f}s] {self.kind:<12s} {self.text}"


@dataclass
class JobSummary:
    name: str
    status: str
    priority: int
    submitted: float
    first_start: float | None
    finished: float | None
    queue_wait: float
    steps: int
    retries: int
    requeues: int
    preemptions: int
    shrinks: tuple[tuple[int, int], ...]
    grows: tuple[tuple[int, int], ...] = ()
    migrations: int = 0


@dataclass
class FleetReport:
    """What one fleet run did: per-job summaries plus fleet metrics."""

    placement: str
    seed: int
    jobs: list[JobSummary]
    events: list[FleetEvent]
    makespan: float
    utilization: float
    goodput: float
    leaked: list[tuple[int, str, int]]

    @property
    def all_terminal(self) -> bool:
        return all(j.status in TERMINAL for j in self.jobs)

    def job(self, name: str) -> JobSummary:
        for j in self.jobs:
            if j.name == name:
                return j
        raise KeyError(name)

    def format(self) -> str:
        lines = [
            f"fleet: placement={self.placement} seed={self.seed} "
            f"makespan={self.makespan:.4f}s utilization={self.utilization:.1%} "
            f"goodput={self.goodput:.1%}"
        ]
        for j in self.jobs:
            lines.append(
                f"  {j.name:<10s} {j.status:<9s} prio={j.priority} "
                f"wait={j.queue_wait:.4f}s steps={j.steps} "
                f"retries={j.retries} requeues={j.requeues} "
                f"preempt={j.preemptions} shrinks={len(j.shrinks)} "
                f"grows={len(j.grows)}"
            )
        if self.leaked:
            lines.append(f"  LEAKED PLACEMENTS: {self.leaked}")
        return "\n".join(lines)


class FleetScheduler:
    """Queue + placement + failure-domain policy over one shared cluster."""

    def __init__(
        self,
        cluster: SharedCluster,
        specs: list[JobSpec],
        *,
        placement: str = "pack",
        seed: int = 0,
        max_queued: int | None = None,
        requeue_base: float = 0.05,
        max_requeues: int = 6,
        health: HealthPolicy | None = None,
    ):
        if placement not in ("pack", "spread"):
            raise ValueError(f"unknown placement policy {placement!r}")
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate job names in workload: {names}")
        self.cluster = cluster
        self.placement = placement
        self.seed = seed
        self.max_queued = max_queued
        self.requeue_base = requeue_base
        self.max_requeues = max_requeues
        self.health = health
        self.jobs: dict[str, FleetJob] = {s.name: FleetJob(s) for s in specs}
        self.events: list[FleetEvent] = []
        #: Nodes under a proactive drain: excluded from placement and from
        #: grow grants until revived or restored to health.
        self.draining: set[int] = set()
        self._queue: list[FleetJob] = []
        self._seq = 0
        self._order: dict[str, int] = {}
        self._ran = False

    # -- driving ------------------------------------------------------------
    def run(self) -> FleetReport:
        """Submit every spec at its arrival time and drain the fleet."""
        if self._ran:
            raise RuntimeError("a FleetScheduler instance runs once")
        self._ran = True
        engine = self.cluster.engine
        for job in self.jobs.values():
            engine.process(self._arrival(job), name=f"arrive:{job.name}")
        if self.health is not None:
            self.spawn(
                health_monitor(self.cluster, self, self.health),
                name="health-monitor",
            )
        engine.run()
        return self.report()

    def spawn(self, generator: Iterator[Event], name: str = "chaos") -> Process:
        """Register an auxiliary process (chaos triggers) on the engine."""
        return self.cluster.engine.process(generator, name=name)

    def _arrival(self, job: FleetJob) -> Iterator[Event]:
        if job.spec.arrival > 0:
            yield self.cluster.engine.timeout(job.spec.arrival)
        now = self.cluster.engine.now
        job.telemetry.submitted = now
        if job.spec.n_learners > len(self.cluster.live_nodes()):
            job.status = "rejected"
            self._log(
                "reject", f"{job.name}: needs {job.spec.n_learners} nodes, "
                f"{len(self.cluster.live_nodes())} alive", job=job.name,
            )
            return
        if self.max_queued is not None and len(self._queue) >= self.max_queued:
            job.status = "rejected"
            self._log(
                "reject", f"{job.name}: queue full ({self.max_queued})",
                job=job.name,
            )
            return
        self._log("submit", f"{job.name} (priority {job.spec.priority})",
                  job=job.name)
        self._enqueue(job)
        self._kick()

    # -- pure-policy snapshot ------------------------------------------------
    def snapshot(self) -> FleetState:
        """Serializable control-plane state the pure policy decides over.

        Every decision below is ``policy_fn(self.snapshot())`` — the model
        checker (:mod:`repro.fleet.verify`) calls the same functions on
        snapshots of its abstract states, so checker and runtime can never
        disagree about a decision.
        """
        nodes = tuple(
            NodeView(
                index=n.index, rack=n.rack, slots=n.slots, used=n.used,
                alive=n.alive, draining=n.index in self.draining,
            )
            for n in self.cluster.nodes
        )
        jobs = tuple(
            JobView(
                name=j.name,
                priority=j.spec.priority,
                order=self._order.get(j.name, -1),
                status=j.status,
                active=(
                    j.trainer is not None
                    and j.proc is not None
                    and j.proc.is_alive
                ),
                preemption=j.spec.preemption,
                elastic_grow=j.spec.elastic_grow,
                target=j.spec.n_learners,
                needed=j.learners_needed(),
                placement=tuple(j.placement),
                pending_grows=tuple(j.pending_grows),
                pending_shrinks=j.pending_shrinks,
                preempt_pending=j.preempt_pending,
            )
            for j in self.jobs.values()
        )
        queue = tuple(j.name for j in self._queue)
        return FleetState(self.placement, nodes, jobs, queue)

    # -- queue / placement --------------------------------------------------
    def _enqueue(self, job: FleetJob) -> None:
        if job.name not in self._order:
            self._order[job.name] = self._seq
            self._seq += 1
        job.mark_enqueued(self.cluster.engine.now)
        self._queue.append(job)

    def _kick(self) -> None:
        """Scan the queue (priority order, with backfill) and start fits."""
        progress = True
        while progress:
            progress = False
            for name in scan_order(self.snapshot()):
                job = self.jobs[name]
                placed = choose_placement(
                    self.snapshot(), job.learners_needed()
                )
                if placed is not None:
                    chosen = list(placed)
                    self._queue.remove(job)
                    job.start(self.cluster, self, chosen)
                    self._log(
                        "start",
                        f"{job.name} on nodes {chosen} "
                        f"(racks {sorted({self.cluster.rack_of(n) for n in chosen})})",
                        job=job.name, nodes=list(chosen),
                    )
                    progress = True
                    break
                self._maybe_preempt(job)
                # Gang blocked: leave it queued and backfill smaller jobs.
        if not self._queue:
            # Only spare capacity (no queued gang wants it) feeds grows.
            self._offer_grows()
        return

    # -- elastic grow --------------------------------------------------------
    def _grow_eligible(self, job: FleetJob) -> bool:
        """Is ``job`` running, shrunk, elastic and not on its way out?"""
        return wants_grow(self.snapshot().job(job.name))

    def _offer_grows(self) -> None:
        """Grant spare slots back to shrunk elastic jobs (priority order).

        The slot is allocated in the cluster ledger *here*, at grant
        time — the no-double-grant invariant — and parked on the job's
        ``pending_grows`` until its next iteration boundary joins the
        learner (or a node death revokes it).
        """
        for name in grow_offer_order(self.snapshot()):
            job = self.jobs[name]
            while self._grow_eligible(job):
                node_index = self._pick_grow_node(job)
                if node_index is None:
                    break
                self.cluster.allocate(job.name, node_index)
                job.pending_grows.append(node_index)
                self._log(
                    "grow-grant",
                    f"{job.name} granted node {node_index} "
                    f"(back towards {job.spec.n_learners} learners)",
                    job=job.name, node=node_index,
                )

    def _pick_grow_node(self, job: FleetJob) -> int | None:
        """One free node for ``job``, via :func:`~repro.fleet.policy.pick_grow_node`."""
        state = self.snapshot()
        return pick_grow_node(state, state.job(job.name))

    def grant_scripted_grow(self, job: FleetJob) -> int:
        """Allocate a node for one of ``job``'s scripted (reference) grows."""
        node_index = self._pick_grow_node(job)
        if node_index is None:
            raise SimulationError(
                f"scripted grow for {job.name}: no free node to grant"
            )
        self.cluster.allocate(job.name, node_index)
        self._log(
            "grow-grant",
            f"{job.name} granted node {node_index} (scripted replay)",
            job=job.name, node=node_index,
        )
        return node_index

    def on_grown(self, job: FleetJob, node_index: int) -> None:
        self._log(
            "grow",
            f"{job.name} grew onto node {node_index} "
            f"(now {job.n_live} learners)",
            job=job.name, node=node_index,
        )

    def on_grow_revoked(self, job: FleetJob, node_index: int) -> None:
        self._log(
            "grow-revoked",
            f"{job.name}: granted node {node_index} revoked before joining",
            job=job.name, node=node_index,
        )

    # -- preemption ---------------------------------------------------------
    def _maybe_preempt(self, job: FleetJob) -> None:
        """Free slots for ``job`` by preempting lower-priority victims.

        *Which* victims, in what order, and in which mode is the pure
        :func:`~repro.fleet.policy.select_preemption_victims`; this
        method only delivers the verdict (shrink request or controlled
        preemption interrupt).
        """
        chosen = select_preemption_victims(self.snapshot(), job.name)
        if chosen is None:
            return  # capacity already coming, or preemption cannot help
        for victim_name, mode in chosen:
            victim = self.jobs[victim_name]
            if mode == "shrink":
                victim.pending_shrinks += 1
                self._log(
                    "shrink-req",
                    f"{victim.name} surrenders one learner to {job.name}",
                    job=victim.name, beneficiary=job.name,
                )
            else:
                victim.preempt_pending = True
                victim.proc.interrupt(PreemptionNotice())
                self._log(
                    "preempt",
                    f"{victim.name} (priority {victim.spec.priority}) "
                    f"checkpoints for {job.name} "
                    f"(priority {job.spec.priority})",
                    job=victim.name, beneficiary=job.name,
                )

    # -- fault domains -------------------------------------------------------
    def kill_node(self, node_index: int) -> None:
        """Kill a node: correlated ``RankFailure`` into every hosted job.

        A slot merely *granted* on the node (a grow not yet joined) is
        revoked on the spot — released back to the ledger, never turned
        into a learner.  A live slot's death is recorded in the job's
        ``dead_nodes`` so the pending-victim scan keys on the recorded
        death even if the node later revives (flap-safety).
        """
        engine = self.cluster.engine
        casualties = self.cluster.kill_node(node_index)
        parts = []
        for job_name, _slots in casualties:
            job = self.jobs[job_name]
            if node_index in job.pending_grows:
                job.pending_grows.remove(node_index)
                self.cluster.release(job_name, node_index)
                self.on_grow_revoked(job, node_index)
                parts.append(f"job {job_name} grant revoked (not yet joined)")
                continue
            job.dead_nodes.add(node_index)
            slot = job.placement.index(node_index)
            parts.append(
                f"job {job_name} slot {slot} (learner {job.learner_id(slot)})"
            )
            executor = job.active_executor
            if executor is not None and slot < len(executor.rank_procs):
                proc = executor.rank_procs[slot]
                if proc.is_alive:
                    proc.interrupt(RankFailure(slot, engine.now))
            # Otherwise the job is between collectives; the pending-victim
            # scan absorbs the death at its next attempt launch.
        detail = "; ".join(parts) if parts else "no hosted jobs"
        self._log(
            "node-kill",
            f"node {node_index} (rack {self.cluster.rack_of(node_index)}) "
            f"died: {detail}",
            node=node_index, jobs=[name for name, _ in casualties],
        )
        self._kick()

    def revive_node(self, node_index: int) -> None:
        """Bring a dead node back into service and re-run placement.

        Learners the death doomed stay doomed (their jobs key on the
        recorded death, not current liveness); the node's capacity simply
        becomes placeable — and grow-grantable — again.
        """
        self.cluster.revive_node(node_index)
        self.draining.discard(node_index)
        self._log(
            "revive",
            f"node {node_index} (rack {self.cluster.rack_of(node_index)}) "
            f"back in service ({self.cluster.nodes[node_index].slots} slots)",
            node=node_index,
        )
        self._kick()

    def drain_node(self, node_index: int, reason: str) -> None:
        """Proactively migrate learners off a degraded-but-alive node.

        Each hosted job (with a learner to spare) surrenders its slot on
        the node at its next collective boundary — the same controlled
        shrink a preemption uses — while a replacement node is granted up
        front, so the learner count recovers at the next iteration
        boundary without waiting for the collective watchdog to fire.
        """
        node = self.cluster.nodes[node_index]
        if not drain_admissible(self.snapshot(), node_index):
            return
        self.draining.add(node_index)
        # The node leaves service with its SDC strikes: a later revive
        # starts from a clean compute-plane record.
        self.cluster.clear_sdc(node_index)
        self._log(
            "drain",
            f"node {node_index} (rack {self.cluster.rack_of(node_index)}) "
            f"draining: {reason}",
            node=node_index, reason=reason,
        )
        for job_name in sorted(node.held):
            job = self.jobs[job_name]
            if (
                job.trainer is None
                or node_index not in job.placement
                or node_index in job.pending_migrations
                or job.n_live <= 1
            ):
                continue
            job.pending_migrations.add(node_index)
            job.telemetry.migrations += 1
            replacement = self._pick_grow_node(job)
            if replacement is not None:
                self.cluster.allocate(job.name, replacement)
                job.pending_grows.append(replacement)
                self._log(
                    "migrate",
                    f"{job.name}: learner migrating off node {node_index} "
                    f"({reason}); replacement node {replacement} granted",
                    job=job.name, node=node_index,
                    replacement=replacement, reason=reason,
                )
            else:
                self._log(
                    "migrate",
                    f"{job.name}: learner migrating off node {node_index} "
                    f"({reason}); no replacement free",
                    job=job.name, node=node_index, reason=reason,
                )
        self._kick()

    def undrain_node(self, node_index: int) -> None:
        """Restore a drained (but alive) node to placement service."""
        if node_index in self.draining:
            self.draining.discard(node_index)
            self._log("undrain", f"node {node_index} restored to service",
                      node=node_index)
            self._kick()

    # -- job callbacks -------------------------------------------------------
    def on_sdc(self, job: FleetJob, slot: int, node_index: int, detail: str) -> int:
        """Book one confirmed SDC detection against the hosting node.

        Called by a job at the allreduce boundary, *before* it absorbs
        the quarantined learner (so ``slot`` still resolves).  The strike
        lands in the cluster's per-node ledger, where the health monitor
        reads it — a repeat offender crosses ``DrainPolicy.sdc_threshold``
        and is drained exactly like a degraded link.  Returns the node's
        updated strike count.
        """
        count = self.cluster.record_sdc(node_index)
        self._log(
            "sdc-detect",
            f"{job.name}: learner {job.learner_id(slot)} on node "
            f"{node_index} quarantined for silent data corruption "
            f"(node strike {count}): {detail}",
            job=job.name, node=node_index, slot=slot, strikes=count,
        )
        return count

    def on_slot_freed(self, job: FleetJob, node_index: int) -> None:
        self._log(
            "release", f"{job.name} released node {node_index}",
            job=job.name, node=node_index,
        )
        self._kick()

    def on_finished(self, job: FleetJob) -> None:
        self._log(
            "finish",
            f"{job.name} after {job.telemetry.steps} steps "
            f"({job.telemetry.retries} retries, "
            f"{len(job.shrink_log)} shrinks, {len(job.grow_log)} grows)",
            job=job.name,
        )
        self._kick()

    def on_preempted(self, job: FleetJob) -> None:
        job.preempt_pending = False
        self._log("requeue", f"{job.name} (preempted, checkpoint saved)",
                  job=job.name)
        self._enqueue(job)
        self._kick()

    def on_job_error(self, job: FleetJob, exc: BaseException) -> None:
        if isinstance(exc, JobLost):
            job.requeue_from_loss()
            self._log("job-lost", str(exc), job=job.name)
            self._requeue_with_backoff(job)
            self._kick()
            return
        job.requeue_from_loss()
        job.status = "failed"
        job.telemetry.finished = self.cluster.engine.now
        self._log("job-failed", f"{job.name}: {exc!r}", job=job.name)
        self._kick()

    def _requeue_with_backoff(self, job: FleetJob) -> None:
        """Bounded exponential backoff, jitter seeded from the sim RNG."""
        job.telemetry.requeues += 1
        if job.telemetry.requeues > self.max_requeues:
            job.status = "failed"
            job.telemetry.finished = self.cluster.engine.now
            self._log(
                "job-failed",
                f"{job.name}: requeue budget exhausted "
                f"({self.max_requeues})",
                job=job.name,
            )
            return
        base = self.requeue_base * (2 ** (job.telemetry.requeues - 1))
        jitter = rng_for(
            self.seed, "requeue", job.name, job.telemetry.requeues
        ).uniform(0.5, 1.5)
        delay = base * jitter
        self._log(
            "requeue",
            f"{job.name} in {delay:.4f}s "
            f"(attempt {job.telemetry.requeues})",
            job=job.name, delay=delay,
        )
        job.status = "backoff"
        self.spawn(self._delayed_enqueue(job, delay), name=f"requeue:{job.name}")

    def _delayed_enqueue(self, job: FleetJob, delay: float) -> Iterator[Event]:
        yield self.cluster.engine.timeout(delay)
        self._enqueue(job)
        self._kick()

    # -- reporting -----------------------------------------------------------
    def _log(self, kind: str, text: str, **data: object) -> None:
        self.events.append(
            FleetEvent(self.cluster.engine.now, kind, text, data)
        )

    def report(self) -> FleetReport:
        jobs = []
        finishes = []
        submits = []
        for name in sorted(self.jobs):
            job = self.jobs[name]
            t = job.telemetry
            jobs.append(
                JobSummary(
                    name=name,
                    status=job.status,
                    priority=job.spec.priority,
                    submitted=t.submitted,
                    first_start=t.first_start,
                    finished=t.finished,
                    queue_wait=t.queue_wait,
                    steps=t.steps,
                    retries=t.retries,
                    requeues=t.requeues,
                    preemptions=t.preemptions,
                    shrinks=tuple(job.shrink_log),
                    grows=tuple(job.grow_log),
                    migrations=t.migrations,
                )
            )
            if t.finished is not None:
                finishes.append(t.finished)
            if job.status != "rejected":
                submits.append(t.submitted)
        makespan = (max(finishes) - min(submits)) if finishes and submits else 0.0
        # Account up to the last real fleet event: once drained, stale
        # watchdog deadlines coast the engine clock through pure idle time.
        end = max(finishes) if finishes else self.cluster.engine.now
        capacity = self.cluster.capacity_integral_at(end)
        goodput = (
            sum(j.telemetry.goodput_node_seconds for j in self.jobs.values())
            / capacity
            if capacity > 0
            else 0.0
        )
        return FleetReport(
            placement=self.placement,
            seed=self.seed,
            jobs=jobs,
            events=list(self.events),
            makespan=makespan,
            utilization=self.cluster.utilization(end),
            goodput=goodput,
            leaked=self.cluster.leaked_placements(),
        )
