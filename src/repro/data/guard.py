"""Guarded execution for the distributed shuffle (data-plane fault tolerance).

:func:`run_shuffle_guarded` is the shuffle's counterpart of
:func:`repro.mpi.schedule.run_guarded`: it runs one transactional shuffle
round under a watchdog, rolls every store back to its pre-shuffle snapshot
on any fault, and either retries (transient: lost/delayed/corrupted
messages) or surgically repairs around a permanent rank loss by dealing
the victim's partition to the survivors and re-running the round over the
survivor group.  Because the re-run draws its randomness from the same
``(seed, round_id)`` and the dealing policy is shared with the trainer's
elastic shrink (:func:`repro.data.dimd.deal_records`), a repaired shuffle
is bit-identical to a fault-free shuffle over the same survivor group.

Failure attribution mirrors the executor layer: :func:`diagnose_shuffle`
turns the :class:`~repro.data.shuffle.ShuffleProgress` bookkeeping into a
:class:`~repro.mpi.schedule.FailureDiagnosis` naming the suspected victim
rank/link, distinguishing a payload lost on the wire (matching send was
posted) from a rank that went silent (cascade of blocked receives traced
to its root).  CRC failures get their own ``"corruption"`` diagnosis that
names the corrupting sender directly from the raised
:class:`~repro.data.integrity.ShuffleIntegrityError`.
"""

from __future__ import annotations

from repro.data.dimd import DIMDStore, deal_records
from repro.data.integrity import ShuffleIntegrityError
from repro.data.shuffle import (
    MPI_OFFSET_LIMIT,
    ShuffleProgress,
    ShuffleReport,
    distributed_shuffle,
)
from repro.mpi.runner import build_world
from repro.mpi.schedule import (
    CollectiveTelemetry,
    CollectiveTimeout,
    FailureDiagnosis,
    RankFailure,
    StalledStep,
)
from repro.sim.engine import Interrupt
from repro.utils.rng import rng_for

__all__ = ["diagnose_shuffle", "run_shuffle_guarded"]


def _steps_total(progress: ShuffleProgress) -> tuple[int, ...]:
    """Message steps each rank has done plus one pending unless finished."""
    return tuple(
        done + (0 if fin else 1)
        for done, fin in zip(progress.steps_done, progress.finished)
    )


def diagnose_shuffle(progress: ShuffleProgress, now: float) -> FailureDiagnosis:
    """Attribute a stalled shuffle attempt from its progress bookkeeping.

    Same attribution logic as :func:`repro.mpi.schedule.diagnose_execution`
    at message granularity: each blocked receive whose matching send was
    posted is ``"message-loss"`` on that wire; otherwise the chain of
    blocked receives is walked backwards to the rank that stopped making
    progress without waiting on anyone (``"silent-rank"``), or to a cycle.
    """
    blocked: list[StalledStep] = []
    for rank in sorted(progress.waiting):
        src, key, since = progress.waiting[rank]
        blocked.append(
            StalledStep(
                rank=rank,
                sid=progress.steps_done[rank],
                kind="ShuffleRecv",
                waiting_on=src,
                note=str(key),
                since=since,
                waited=now - since,
                overdue=now - since,
            )
        )
    blocked.sort(key=lambda s: (s.since, s.rank))

    base = dict(
        now=now,
        n_ranks=progress.n_ranks,
        steps_done=tuple(progress.steps_done),
        steps_total=_steps_total(progress),
        stalled=tuple(blocked),
    )

    if not blocked:
        behind = [
            r for r in range(progress.n_ranks) if not progress.finished[r]
        ]
        return FailureDiagnosis(
            cause="no-progress",
            suspect_rank=behind[0] if behind else None,
            **base,
        )

    for s in blocked:
        _, key, _ = progress.waiting[s.rank]
        if key in progress.sends:
            return FailureDiagnosis(
                cause="message-loss",
                suspect_rank=s.waiting_on,
                suspect_link=(s.waiting_on, s.rank),
                suspect_sid=s.sid,
                suspect_kind=s.kind,
                **base,
            )

    # No lost payload: follow the chain of blocked receives backwards until
    # it reaches a rank that is not itself waiting on anyone.
    by_rank = {s.rank: s for s in blocked}
    pick = blocked[0]
    suspect = pick.waiting_on
    seen = {pick.rank}
    while suspect not in seen and suspect in by_rank:
        seen.add(suspect)
        pick = by_rank[suspect]
        suspect = pick.waiting_on
    return FailureDiagnosis(
        cause="stalled-cycle" if suspect in seen else "silent-rank",
        suspect_rank=suspect,
        suspect_link=(suspect, pick.rank),
        suspect_sid=pick.sid,
        suspect_kind=pick.kind,
        **base,
    )


def _corruption_diagnosis(
    progress: ShuffleProgress, exc: ShuffleIntegrityError, now: float
) -> FailureDiagnosis:
    link = None
    if exc.suspect is not None and exc.detected_by is not None:
        link = (exc.suspect, exc.detected_by)
    return FailureDiagnosis(
        now=now,
        n_ranks=progress.n_ranks,
        steps_done=tuple(progress.steps_done),
        steps_total=_steps_total(progress),
        stalled=(),
        cause="corruption",
        suspect_rank=exc.suspect,
        suspect_link=link,
    )


def _rollback_all(stores: list[DIMDStore], round_id: int) -> None:
    for s in stores:
        s.rollback_shuffle(round_id)


def run_shuffle_guarded(
    stores: list[DIMDStore],
    *,
    seed: int = 0,
    round_id: int = 0,
    timeout: float,
    max_retries: int = 3,
    retry_backoff: float = 0.5,
    topology: str = "star",
    max_chunk_bytes: int = MPI_OFFSET_LIMIT,
    tag: object = None,
    fault_injector=None,
    iteration: int = 0,
    telemetry: CollectiveTelemetry | None = None,
    repair: bool = True,
) -> tuple[list[ShuffleReport], CollectiveTelemetry]:
    """Run one shuffle round to completion under watchdog/retry/repair.

    ``stores`` is consumed as the live survivor list: a surgically repaired
    victim is popped (after its records are dealt to the survivors) and
    the group-rank of every pop is appended to ``telemetry.repaired_ranks``
    in order, so callers can replay the pops against their own slot
    bookkeeping — exactly the :func:`~repro.mpi.schedule.run_guarded`
    contract.  Returns ``(reports, telemetry)`` with one
    :class:`~repro.data.shuffle.ShuffleReport` per surviving rank.

    Every failed attempt rolls **all** stores back to their pre-round
    snapshots (including ranks that had already committed), so partial
    commits can never leak: a failed round is a group-wide no-op.
    """
    telemetry = telemetry if telemetry is not None else CollectiveTelemetry()
    stores = list(stores)
    attempts = 0
    backoff = retry_backoff
    while True:
        n = len(stores)
        if n == 1:
            stores[0].local_permute(rng_for(seed, "perm", round_id, 0))
            return [ShuffleReport(0.0, 0.0, stores[0].nbytes, 1)], telemetry
        for s in stores:
            s.begin_shuffle(round_id)
        engine, world, comm = build_world(n, topology=topology)
        progress = ShuffleProgress(n)
        procs = [
            engine.process(
                distributed_shuffle(
                    comm,
                    r,
                    stores[r],
                    seed=seed,
                    round_id=round_id,
                    max_chunk_bytes=max_chunk_bytes,
                    tag=tag,
                    progress=progress,
                ),
                name=f"shuffle{r}",
            )
            for r in range(n)
        ]
        done = engine.all_of(procs)
        mark = len(fault_injector.events) if fault_injector is not None else 0
        if fault_injector is not None:
            fault_injector.arm(engine, world, procs, iteration)
        deadline = engine.timeout(timeout)
        try:
            engine.run(engine.any_of([done, deadline]))
        except Interrupt as exc:
            telemetry.sim_time += engine.now
            if fault_injector is not None:
                telemetry.fault_events.extend(fault_injector.events_since(mark))
            _rollback_all(stores, round_id)
            cause = exc.cause
            if isinstance(cause, RankFailure) and repair:
                # Surgical repair: the victim's (rolled-back) partition is
                # dealt to the survivors and the round re-runs over the
                # survivor group from pristine post-deal state.
                telemetry.repaired_ranks.append(cause.rank)
                dead = stores.pop(cause.rank)
                deal_records(dead, stores)
                continue
            if isinstance(cause, RankFailure):
                raise cause from exc
            raise
        except ShuffleIntegrityError as exc:
            telemetry.sim_time += engine.now
            if fault_injector is not None:
                telemetry.fault_events.extend(fault_injector.events_since(mark))
            _rollback_all(stores, round_id)
            diagnosis = _corruption_diagnosis(progress, exc, engine.now)
            telemetry.diagnoses.append(diagnosis)
            attempts += 1
            telemetry.retries += 1
            if attempts > max_retries:
                raise CollectiveTimeout(
                    timeout, iteration, attempts, diagnosis
                ) from exc
            telemetry.backoff += backoff
            telemetry.sim_time += backoff
            backoff *= 2
            continue
        telemetry.sim_time += engine.now
        if fault_injector is not None:
            telemetry.fault_events.extend(fault_injector.events_since(mark))
        if done.triggered:
            for s in stores:
                s.finalize_shuffle(round_id)
            return [p.value for p in procs], telemetry
        # Watchdog fired first: roll back, attribute the stall, retry with
        # bounded exponential backoff (accounted in simulated time).
        _rollback_all(stores, round_id)
        diagnosis = diagnose_shuffle(progress, engine.now)
        telemetry.diagnoses.append(diagnosis)
        attempts += 1
        telemetry.retries += 1
        if attempts > max_retries:
            raise CollectiveTimeout(timeout, iteration, attempts, diagnosis)
        telemetry.backoff += backoff
        telemetry.sim_time += backoff
        backoff *= 2
