"""Batch-sampling statistics: why the periodic shuffle matters.

§4.1 motivates the distributed shuffle with randomness: record files are
written class-by-class (that is how the concatenation tool walks the
dataset), so the *contiguous* partitioned load hands each learner a
class-skewed shard.  Without reshuffling, every one of a learner's batches
comes from the same few classes for the whole run — the global batch still
covers all classes, but its composition is frozen, and per-learner
statistics (e.g. batch normalization moments) are badly biased.  The
shuffle "can be invoked after every fixed number of training steps to
ensure that the batch selection is fairly random".

This module quantifies that at the index level:

* :class:`EpochSampler` — classical without-replacement permutation
  sampling (the single-node gold standard);
* :func:`sampling_diversity_study` — simulates DIMD-style local sampling
  over a class-sorted record file under a configurable shuffle period and
  reports per-node batch class diversity and global record coverage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import rng_for

__all__ = ["EpochSampler", "DiversityReport", "sampling_diversity_study"]


class EpochSampler:
    """Without-replacement epoch sampling over ``n_items`` indices."""

    def __init__(self, n_items: int, batch_size: int, *, seed: int = 0):
        if n_items < 1 or batch_size < 1:
            raise ValueError("n_items and batch_size must be >= 1")
        if batch_size > n_items:
            raise ValueError("batch_size cannot exceed n_items")
        self.n_items = n_items
        self.batch_size = batch_size
        self.seed = seed
        self._epoch = 0
        self._cursor = 0
        self._perm = rng_for(seed, "perm", 0).permutation(n_items)

    @property
    def epoch(self) -> int:
        return self._epoch

    def next_batch(self) -> np.ndarray:
        """The next batch of distinct indices; reshuffles at epoch ends."""
        if self._cursor + self.batch_size > self.n_items:
            self._epoch += 1
            self._cursor = 0
            self._perm = rng_for(self.seed, "perm", self._epoch).permutation(
                self.n_items
            )
        batch = self._perm[self._cursor : self._cursor + self.batch_size]
        self._cursor += self.batch_size
        return batch.copy()


@dataclass(frozen=True)
class DiversityReport:
    """Sampling quality of one strategy over a simulated run."""

    strategy: str
    mean_classes_per_node_batch: float  # distinct classes in a node's batch
    max_possible_classes: int           # min(batch size, n_classes)
    record_coverage: float              # fraction of records ever drawn

    @property
    def class_diversity(self) -> float:
        """Fraction of the achievable class variety a node batch shows."""
        return self.mean_classes_per_node_batch / self.max_possible_classes

    def __post_init__(self) -> None:
        if not 0 <= self.record_coverage <= 1:
            raise ValueError("coverage must be in [0, 1]")


def sampling_diversity_study(
    *,
    n_learners: int = 8,
    records_per_learner: int = 512,
    n_classes: int = 64,
    batch_per_learner: int = 32,
    shuffle_every: int | None = None,
    steps: int = 64,
    seed: int = 0,
) -> DiversityReport:
    """Simulate DIMD sampling over a class-sorted record file.

    Records ``0..total`` carry labels in sorted order (class-contiguous
    file); learners load contiguous shards; each step every learner draws
    ``batch_per_learner`` ids with replacement from its shard.  Every
    ``shuffle_every`` steps the records are globally re-dealt (Algorithm
    2's effect); ``None`` disables shuffling.
    """
    if min(n_learners, records_per_learner, batch_per_learner, steps) < 1:
        raise ValueError("all sizes must be >= 1")
    if n_classes < 1:
        raise ValueError("n_classes must be >= 1")
    if shuffle_every is not None and shuffle_every < 1:
        raise ValueError("shuffle_every must be >= 1 or None")
    total = n_learners * records_per_learner
    labels = np.sort(
        rng_for(seed, "labels").integers(0, n_classes, size=total)
    )  # class-sorted file
    partitions = np.arange(total).reshape(n_learners, records_per_learner)
    seen = np.zeros(total, dtype=bool)
    class_counts: list[int] = []
    for step in range(steps):
        for learner in range(n_learners):
            rng = rng_for(seed, "draw", learner, step)
            picks = rng.integers(0, records_per_learner, size=batch_per_learner)
            ids = partitions[learner, picks]
            seen[ids] = True
            class_counts.append(len(np.unique(labels[ids])))
        if shuffle_every and (step + 1) % shuffle_every == 0:
            flat = partitions.reshape(-1)
            perm = rng_for(seed, "shuffle", step).permutation(total)
            partitions = flat[perm].reshape(n_learners, records_per_learner)
    label = (
        "no shuffle" if not shuffle_every else f"shuffle every {shuffle_every}"
    )
    return DiversityReport(
        strategy=label,
        mean_classes_per_node_batch=float(np.mean(class_counts)),
        max_possible_classes=min(batch_per_learner, n_classes),
        record_coverage=float(np.count_nonzero(seen) / total),
    )
