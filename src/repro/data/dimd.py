"""The Distributed In-Memory Data store (§4.1).

Implements the three DIMD APIs:

i)   **Partitioned load** (:func:`partitioned_load`) — each learner loads a
     contiguous slice of the record file into memory.  Learners are divided
     into *groups* that each collectively own the full dataset
     (:class:`GroupLayout`); one group of all learners is maximal
     partitioning, ``n_groups == n_learners`` replicates the full set on
     every node.

ii)  **Random in-memory batch load** (:meth:`DIMDStore.random_batch`) —
     sample a batch of (decoded image, label) pairs straight from memory,
     each learner with its own seeded RNG as in Algorithm 1.

iii) **Shuffle across learners** — in :mod:`repro.data.shuffle`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.codec import decode_image
from repro.data.records import RecordReader
from repro.mpi.datatypes import chunk_ranges

__all__ = ["GroupLayout", "DIMDStore", "partitioned_load"]


@dataclass(frozen=True)
class GroupLayout:
    """How learners are grouped for partitioning and shuffling."""

    n_learners: int
    n_groups: int = 1

    def __post_init__(self) -> None:
        if self.n_learners < 1:
            raise ValueError("n_learners must be >= 1")
        if not 1 <= self.n_groups <= self.n_learners:
            raise ValueError(
                f"n_groups must be in [1, {self.n_learners}], got {self.n_groups}"
            )
        if self.n_learners % self.n_groups != 0:
            raise ValueError(
                f"{self.n_learners} learners not divisible into "
                f"{self.n_groups} groups"
            )

    @property
    def learners_per_group(self) -> int:
        return self.n_learners // self.n_groups

    def group_of(self, learner: int) -> int:
        if not 0 <= learner < self.n_learners:
            raise ValueError(f"learner {learner} out of range")
        return learner // self.learners_per_group

    def position_in_group(self, learner: int) -> int:
        return learner % self.learners_per_group

    def group_members(self, group: int) -> list[int]:
        if not 0 <= group < self.n_groups:
            raise ValueError(f"group {group} out of range")
        base = group * self.learners_per_group
        return list(range(base, base + self.learners_per_group))


class DIMDStore:
    """One learner's in-memory partition of the dataset."""

    def __init__(self, records: list[bytes], labels: np.ndarray, *, learner: int = 0):
        if len(records) != len(labels):
            raise ValueError(
                f"{len(records)} records vs {len(labels)} labels"
            )
        self.records = list(records)
        self.labels = np.asarray(labels, dtype=np.int64).copy()
        self.learner = learner

    def __len__(self) -> int:
        return len(self.records)

    @property
    def nbytes(self) -> int:
        """Memory held by the compressed records (index overhead excluded)."""
        return sum(len(r) for r in self.records)

    def random_batch(
        self, batch_size: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Decode a random batch: (images float64 [0,1] NCHW, labels)."""
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if not self.records:
            raise ValueError("store is empty")
        ids = rng.integers(0, len(self.records), size=batch_size)
        images = np.stack([decode_image(self.records[i]) for i in ids])
        return images.astype(np.float64) / 255.0, self.labels[ids]

    def random_batch_ids(
        self, batch_size: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Just the record indices (for callers that decode lazily)."""
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        return rng.integers(0, len(self.records), size=batch_size)

    def take(self, ids: np.ndarray) -> tuple[list[bytes], np.ndarray]:
        """Extract (blobs, labels) for the given indices (no removal)."""
        blobs = [self.records[int(i)] for i in ids]
        return blobs, self.labels[np.asarray(ids, dtype=int)]

    def extend(self, records: list[bytes], labels: np.ndarray) -> None:
        """Absorb extra records (elastic recovery: a dead learner's share)."""
        labels = np.asarray(labels, dtype=np.int64)
        if len(records) != len(labels):
            raise ValueError(
                f"{len(records)} records vs {len(labels)} labels"
            )
        self.records.extend(records)
        self.labels = np.concatenate([self.labels, labels])

    def replace_contents(self, records: list[bytes], labels: np.ndarray) -> None:
        """Swap in a new partition (after a shuffle)."""
        if len(records) != len(labels):
            raise ValueError("records/labels length mismatch")
        self.records = list(records)
        self.labels = np.asarray(labels, dtype=np.int64).copy()

    def local_permute(self, rng: np.random.Generator) -> None:
        """In-node random permutation (the tail of Algorithm 2)."""
        perm = rng.permutation(len(self.records))
        self.records = [self.records[i] for i in perm]
        self.labels = self.labels[perm]

    def content_multiset(self) -> list[tuple[bytes, int]]:
        """Sorted (blob, label) pairs — for conservation checks in tests."""
        return sorted(zip(self.records, (int(l) for l in self.labels)))


def partitioned_load(
    reader: RecordReader,
    learner: int,
    layout: GroupLayout,
) -> DIMDStore:
    """DIMD API (i): load this learner's slice of the record file.

    Within each group the dataset is split contiguously by group position;
    every group holds a complete copy.
    """
    n = len(reader)
    per_group = layout.learners_per_group
    pos = layout.position_in_group(learner)
    lo, hi = chunk_ranges(n, per_group)[pos]
    ids = np.arange(lo, hi)
    blobs, labels = reader.read_many(ids)
    return DIMDStore(blobs, labels, learner=learner)
