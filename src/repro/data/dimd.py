"""The Distributed In-Memory Data store (§4.1).

Implements the three DIMD APIs:

i)   **Partitioned load** (:func:`partitioned_load`) — each learner loads a
     contiguous slice of the record file into memory.  Learners are divided
     into *groups* that each collectively own the full dataset
     (:class:`GroupLayout`); one group of all learners is maximal
     partitioning, ``n_groups == n_learners`` replicates the full set on
     every node.

ii)  **Random in-memory batch load** (:meth:`DIMDStore.random_batch`) —
     sample a batch of (decoded image, label) pairs straight from memory,
     each learner with its own seeded RNG as in Algorithm 1.

iii) **Shuffle across learners** — in :mod:`repro.data.shuffle`.

The store also carries the machinery the crash-safe shuffle needs:

* a per-record CRC32 column (:attr:`DIMDStore.checksums`) so at-rest
  corruption is detectable at any time (:meth:`DIMDStore.verify_integrity`
  quarantines mismatches instead of serving them);
* an epoch-versioned **shuffle transaction**: :meth:`begin_shuffle`
  snapshots the partition, :meth:`commit_shuffle` swaps in the staged
  post-exchange contents, and :meth:`rollback_shuffle` restores the
  snapshot — whether or not this rank had already committed — so a failed
  distributed shuffle is a no-op rather than data loss.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.codec import decode_image
from repro.data.integrity import record_crc
from repro.data.records import RecordReader
from repro.mpi.datatypes import chunk_ranges

__all__ = [
    "GroupLayout",
    "DIMDStore",
    "QuarantinedRecord",
    "collect_regrow_share",
    "deal_records",
    "partitioned_load",
]


@dataclass(frozen=True)
class GroupLayout:
    """How learners are grouped for partitioning and shuffling."""

    n_learners: int
    n_groups: int = 1

    def __post_init__(self) -> None:
        if self.n_learners < 1:
            raise ValueError("n_learners must be >= 1")
        if not 1 <= self.n_groups <= self.n_learners:
            raise ValueError(
                f"n_groups must be in [1, {self.n_learners}], got {self.n_groups}"
            )
        if self.n_learners % self.n_groups != 0:
            raise ValueError(
                f"{self.n_learners} learners not divisible into "
                f"{self.n_groups} groups"
            )

    @property
    def learners_per_group(self) -> int:
        return self.n_learners // self.n_groups

    def group_of(self, learner: int) -> int:
        if not 0 <= learner < self.n_learners:
            raise ValueError(f"learner {learner} out of range")
        return learner // self.learners_per_group

    def position_in_group(self, learner: int) -> int:
        return learner % self.learners_per_group

    def group_members(self, group: int) -> list[int]:
        if not 0 <= group < self.n_groups:
            raise ValueError(f"group {group} out of range")
        base = group * self.learners_per_group
        return list(range(base, base + self.learners_per_group))


@dataclass(frozen=True)
class QuarantinedRecord:
    """A record pulled out of circulation after failing its checksum."""

    blob: bytes
    label: int
    expected_crc: int
    actual_crc: int
    reason: str


@dataclass
class _ShuffleTxn:
    """Pre-shuffle snapshot kept until the round finalizes or rolls back."""

    round_id: int
    records: list[bytes]
    labels: np.ndarray
    checksums: np.ndarray
    n_quarantined_before: int
    committed: bool = False


class DIMDStore:
    """One learner's in-memory partition of the dataset."""

    def __init__(
        self,
        records: list[bytes],
        labels: np.ndarray,
        *,
        learner: int = 0,
        checksums: np.ndarray | None = None,
    ):
        if len(records) != len(labels):
            raise ValueError(
                f"{len(records)} records vs {len(labels)} labels"
            )
        self.records = list(records)
        self.labels = np.asarray(labels, dtype=np.int64).copy()
        self.learner = learner
        self.checksums = self._as_checksums(self.records, checksums)
        #: Records removed from circulation after a checksum mismatch.
        self.quarantined: list[QuarantinedRecord] = []
        self._txn: _ShuffleTxn | None = None

    @staticmethod
    def _as_checksums(
        records: list[bytes], checksums: np.ndarray | None
    ) -> np.ndarray:
        if checksums is None:
            return np.array([record_crc(r) for r in records], dtype=np.int64)
        checksums = np.asarray(checksums, dtype=np.int64).copy()
        if len(checksums) != len(records):
            raise ValueError(
                f"{len(records)} records vs {len(checksums)} checksums"
            )
        return checksums

    def __len__(self) -> int:
        return len(self.records)

    @property
    def nbytes(self) -> int:
        """Memory held by the compressed records (index overhead excluded)."""
        return sum(len(r) for r in self.records)

    def random_batch(
        self, batch_size: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Decode a random batch: (images float64 [0,1] NCHW, labels)."""
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if not self.records:
            raise ValueError("store is empty")
        ids = rng.integers(0, len(self.records), size=batch_size)
        images = np.stack([decode_image(self.records[i]) for i in ids])
        return images.astype(np.float64) / 255.0, self.labels[ids]

    def random_batch_ids(
        self, batch_size: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Just the record indices (for callers that decode lazily)."""
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        return rng.integers(0, len(self.records), size=batch_size)

    def take(self, ids: np.ndarray) -> tuple[list[bytes], np.ndarray]:
        """Extract (blobs, labels) for the given indices (no removal)."""
        blobs = [self.records[int(i)] for i in ids]
        return blobs, self.labels[np.asarray(ids, dtype=int)]

    def extend(
        self,
        records: list[bytes],
        labels: np.ndarray,
        checksums: np.ndarray | None = None,
    ) -> None:
        """Absorb extra records (elastic recovery: a dead learner's share)."""
        labels = np.asarray(labels, dtype=np.int64)
        if len(records) != len(labels):
            raise ValueError(
                f"{len(records)} records vs {len(labels)} labels"
            )
        self.records.extend(records)
        self.labels = np.concatenate([self.labels, labels])
        self.checksums = np.concatenate(
            [self.checksums, self._as_checksums(list(records), checksums)]
        )

    def replace_contents(
        self,
        records: list[bytes],
        labels: np.ndarray,
        checksums: np.ndarray | None = None,
    ) -> None:
        """Swap in a new partition (after a shuffle)."""
        if len(records) != len(labels):
            raise ValueError("records/labels length mismatch")
        self.records = list(records)
        self.labels = np.asarray(labels, dtype=np.int64).copy()
        self.checksums = self._as_checksums(self.records, checksums)

    def local_permute(self, rng: np.random.Generator) -> None:
        """In-node random permutation (the tail of Algorithm 2)."""
        perm = rng.permutation(len(self.records))
        self.records = [self.records[i] for i in perm]
        self.labels = self.labels[perm]
        self.checksums = self.checksums[perm]

    def content_multiset(self) -> list[tuple[bytes, int]]:
        """Sorted (blob, label) pairs — for conservation checks in tests."""
        return sorted(zip(self.records, (int(l) for l in self.labels)))

    # -- integrity ------------------------------------------------------------
    def verify_integrity(self) -> list[QuarantinedRecord]:
        """Re-checksum every record; quarantine and return any mismatches.

        Corrupt records are removed from the active set (they will not be
        served by :meth:`random_batch` or shuffled onward) and appended to
        :attr:`quarantined` for reporting.
        """
        bad: list[int] = []
        for i, blob in enumerate(self.records):
            if record_crc(blob) != int(self.checksums[i]):
                bad.append(i)
        if not bad:
            return []
        newly = [
            QuarantinedRecord(
                blob=self.records[i],
                label=int(self.labels[i]),
                expected_crc=int(self.checksums[i]),
                actual_crc=record_crc(self.records[i]),
                reason="at-rest checksum mismatch",
            )
            for i in bad
        ]
        keep = [i for i in range(len(self.records)) if i not in set(bad)]
        self.records = [self.records[i] for i in keep]
        self.labels = self.labels[keep]
        self.checksums = self.checksums[keep]
        self.quarantined.extend(newly)
        return newly

    # -- shuffle transaction --------------------------------------------------
    @property
    def in_transaction(self) -> bool:
        return self._txn is not None and not self._txn.committed

    def begin_shuffle(self, round_id: int) -> None:
        """Open (or join) the transaction for ``round_id``.

        Idempotent within a round: re-entering an *open* transaction keeps
        the original snapshot, so the guard and the rank program can both
        call this without clobbering the pre-shuffle state.  A committed
        or stale transaction is replaced by a fresh snapshot.
        """
        txn = self._txn
        if txn is not None and txn.round_id == round_id and not txn.committed:
            return
        self._txn = _ShuffleTxn(
            round_id=round_id,
            records=list(self.records),
            labels=self.labels.copy(),
            checksums=self.checksums.copy(),
            n_quarantined_before=len(self.quarantined),
        )

    def commit_shuffle(
        self,
        round_id: int,
        records: list[bytes],
        labels: np.ndarray,
        checksums: np.ndarray | None = None,
        quarantined: list[QuarantinedRecord] | None = None,
    ) -> None:
        """Swap in the staged post-exchange partition.

        The snapshot is *retained* (marked committed) so a guard can still
        roll this rank back if another rank fails after our commit; it is
        dropped by :meth:`finalize_shuffle` once the whole group succeeds.
        """
        txn = self._txn
        if txn is None or txn.round_id != round_id:
            raise ValueError(
                f"no open shuffle transaction for round {round_id}"
            )
        self.replace_contents(records, labels, checksums)
        self.quarantined.extend(quarantined or [])
        txn.committed = True

    def rollback_shuffle(self, round_id: int) -> bool:
        """Restore the pre-shuffle snapshot and close the transaction.

        Safe to call whether or not this rank committed (a failed shuffle
        must be a no-op on *every* rank); returns ``True`` when a committed
        swap was actually undone.  No open transaction for ``round_id`` is
        a no-op returning ``False``.
        """
        txn = self._txn
        if txn is None or txn.round_id != round_id:
            return False
        restored = txn.committed
        if restored:
            self.records = list(txn.records)
            self.labels = txn.labels.copy()
            self.checksums = txn.checksums.copy()
            del self.quarantined[txn.n_quarantined_before:]
        self._txn = None
        return restored

    def finalize_shuffle(self, round_id: int) -> None:
        """Drop the snapshot: the round succeeded group-wide."""
        txn = self._txn
        if txn is not None and txn.round_id == round_id:
            self._txn = None


def deal_records(dead: DIMDStore, survivors: list[DIMDStore]) -> None:
    """Deal a dead learner's records contiguously to the survivors.

    The single repartitioning policy shared by the trainer's elastic
    shrink and the guarded shuffle's surgical repair — both must deal
    identically for repaired runs to stay bit-identical to fault-free
    survivor-group runs.
    """
    if not survivors:
        raise ValueError("no survivors to absorb the dead learner's records")
    for slot, (lo, hi) in enumerate(chunk_ranges(len(dead), len(survivors))):
        if hi > lo:
            survivors[slot].extend(
                dead.records[lo:hi],
                dead.labels[lo:hi],
                dead.checksums[lo:hi],
            )


def collect_regrow_share(
    survivors: list[DIMDStore], learner: int
) -> DIMDStore:
    """Fund a (re)joining learner's partition from the survivors.

    The inverse of :func:`deal_records`, and like it the *single* regrow
    policy shared by every elastic-grow path: each survivor surrenders the
    tail ``len(survivor) // (n + 1)`` of its partition (``n`` survivors),
    so the newcomer ends up with roughly a ``1/(n + 1)`` share and every
    record is conserved.  Deterministic — no RNG — which is what lets a
    scripted reference run replay a grow bit-exactly.
    """
    if not survivors:
        raise ValueError("no survivors to fund the new learner's partition")
    n = len(survivors)
    records: list[bytes] = []
    label_parts: list[np.ndarray] = []
    crc_parts: list[np.ndarray] = []
    for store in survivors:
        give = len(store) // (n + 1)
        if give == 0:
            continue
        records.extend(store.records[-give:])
        label_parts.append(store.labels[-give:])
        crc_parts.append(store.checksums[-give:])
        del store.records[-give:]
        store.labels = store.labels[:-give].copy()
        store.checksums = store.checksums[:-give].copy()
    if not records:
        raise ValueError(
            "survivor partitions too small to fund a new learner "
            f"({[len(s) for s in survivors]} records across {n} stores)"
        )
    labels = np.concatenate(label_parts)
    checksums = np.concatenate(crc_parts)
    return DIMDStore(records, labels, learner=learner, checksums=checksums)


def partitioned_load(
    reader: RecordReader,
    learner: int,
    layout: GroupLayout,
) -> DIMDStore:
    """DIMD API (i): load this learner's slice of the record file.

    Within each group the dataset is split contiguously by group position;
    every group holds a complete copy.  Reads are CRC-verified by the
    reader; the stored checksums travel into the store so corruption
    stays detectable for the partition's whole in-memory lifetime.
    """
    n = len(reader)
    per_group = layout.learners_per_group
    pos = layout.position_in_group(learner)
    lo, hi = chunk_ranges(n, per_group)[pos]
    ids = np.arange(lo, hi)
    blobs, labels = reader.read_many(ids)
    checksums = reader.checksums
    if checksums is not None:
        checksums = checksums[lo:hi]
    return DIMDStore(blobs, labels, learner=learner, checksums=checksums)
