"""End-to-end record integrity for the DIMD data plane.

Every record carries a CRC32 of its compressed bytes from the moment it is
written (:class:`~repro.data.records.RecordWriter` stores the checksum in
the index file) through the in-memory store
(:attr:`~repro.data.dimd.DIMDStore.checksums`) and across the shuffle wire
format.  Three failure classes become detectable:

* **at rest** — a record's bytes no longer match its stored checksum
  (flipped in memory or on disk); the record is *quarantined* rather than
  trained on or shuffled onward;
* **in flight** — a shuffle payload or metadata block arrives with a CRC
  mismatch; the receiving rank raises :class:`ShuffleIntegrityError`
  naming the sender, the transaction rolls back, and the guarded executor
  retries;
* **protocol loss** — the post-exchange conservation barrier compares a
  permutation-invariant *multiset digest* (sum of per-record
  fingerprints) before and after the exchange, so silently lost or
  duplicated records fail the commit even if every individual message
  verified.

All functions here are pure Python/NumPy with no simulation coupling.
The digest core (splitmix fingerprint, multiset sum, CRC helpers) lives
in :mod:`repro.utils.digest` so the compute plane's SDC defense
(:mod:`repro.train.sdc`) shares it without a data→train import cycle;
this module re-exports it for the data plane's historical import surface.
"""

from __future__ import annotations

from repro.utils.digest import (
    crc_of_bytes,
    crc_of_ints,
    multiset_digest,
    record_fingerprint,
)

__all__ = [
    "RecordCorrupt",
    "ShuffleIntegrityError",
    "crc_of_ints",
    "multiset_digest",
    "record_crc",
    "record_fingerprint",
]


class RecordCorrupt(RuntimeError):
    """A record's bytes do not match its stored CRC32 checksum."""

    def __init__(self, index: int, expected: int, actual: int, where: str = ""):
        suffix = f" in {where}" if where else ""
        super().__init__(
            f"record {index}{suffix} is corrupt: "
            f"CRC32 {actual:#010x} != stored {expected:#010x}"
        )
        self.index = index
        self.expected = expected
        self.actual = actual


class ShuffleIntegrityError(RuntimeError):
    """A shuffle attempt failed verification and must roll back.

    ``suspect`` is the group rank whose message failed its CRC (the
    immediate sender — for forwarded control blocks the corrupting hop);
    ``detected_by`` is the rank that observed the mismatch.  Either may be
    ``None`` for conservation-barrier failures that no single link
    explains.
    """

    def __init__(
        self,
        message: str,
        *,
        detected_by: int | None = None,
        suspect: int | None = None,
    ):
        super().__init__(message)
        self.detected_by = detected_by
        self.suspect = suspect


def record_crc(blob: bytes) -> int:
    """CRC32 of one record's compressed bytes (non-negative, < 2**32)."""
    return crc_of_bytes(blob)
