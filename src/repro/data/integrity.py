"""End-to-end record integrity for the DIMD data plane.

Every record carries a CRC32 of its compressed bytes from the moment it is
written (:class:`~repro.data.records.RecordWriter` stores the checksum in
the index file) through the in-memory store
(:attr:`~repro.data.dimd.DIMDStore.checksums`) and across the shuffle wire
format.  Three failure classes become detectable:

* **at rest** — a record's bytes no longer match its stored checksum
  (flipped in memory or on disk); the record is *quarantined* rather than
  trained on or shuffled onward;
* **in flight** — a shuffle payload or metadata block arrives with a CRC
  mismatch; the receiving rank raises :class:`ShuffleIntegrityError`
  naming the sender, the transaction rolls back, and the guarded executor
  retries;
* **protocol loss** — the post-exchange conservation barrier compares a
  permutation-invariant *multiset digest* (sum of per-record
  fingerprints) before and after the exchange, so silently lost or
  duplicated records fail the commit even if every individual message
  verified.

All functions here are pure Python/NumPy with no simulation coupling.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = [
    "RecordCorrupt",
    "ShuffleIntegrityError",
    "crc_of_ints",
    "multiset_digest",
    "record_crc",
    "record_fingerprint",
]

#: Digests live in [0, 2**63) so they always fit a non-negative int64.
_DIGEST_MOD = 2**63


class RecordCorrupt(RuntimeError):
    """A record's bytes do not match its stored CRC32 checksum."""

    def __init__(self, index: int, expected: int, actual: int, where: str = ""):
        suffix = f" in {where}" if where else ""
        super().__init__(
            f"record {index}{suffix} is corrupt: "
            f"CRC32 {actual:#010x} != stored {expected:#010x}"
        )
        self.index = index
        self.expected = expected
        self.actual = actual


class ShuffleIntegrityError(RuntimeError):
    """A shuffle attempt failed verification and must roll back.

    ``suspect`` is the group rank whose message failed its CRC (the
    immediate sender — for forwarded control blocks the corrupting hop);
    ``detected_by`` is the rank that observed the mismatch.  Either may be
    ``None`` for conservation-barrier failures that no single link
    explains.
    """

    def __init__(
        self,
        message: str,
        *,
        detected_by: int | None = None,
        suspect: int | None = None,
    ):
        super().__init__(message)
        self.detected_by = detected_by
        self.suspect = suspect


def record_crc(blob: bytes) -> int:
    """CRC32 of one record's compressed bytes (non-negative, < 2**32)."""
    return zlib.crc32(blob) & 0xFFFFFFFF


def crc_of_ints(values) -> int:
    """CRC32 over an int64 vector's bytes — trailer for control blocks."""
    return zlib.crc32(np.ascontiguousarray(values, dtype=np.int64).tobytes()) & 0xFFFFFFFF


def record_fingerprint(crc: int, label: int, length: int) -> int:
    """Order-independent per-record digest contribution.

    Mixes the payload CRC with the label and length (all of which travel
    in the shuffle metadata) through a splitmix-style scramble so that
    swapping bytes *between* records cannot cancel out in the sum.
    """
    x = (
        int(crc) * 0x9E3779B97F4A7C15
        + int(label) * 0xBF58476D1CE4E5B9
        + int(length) * 0x94D049BB133111EB
        + 0x2545F4914F6CDD1D
    ) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 29
    return x % _DIGEST_MOD


def multiset_digest(crcs, labels, lengths) -> int:
    """Permutation-invariant digest of a record multiset.

    Summing :func:`record_fingerprint` modulo ``2**63`` makes the digest
    independent of record order and cheap to combine across ranks — the
    conservation barrier allreduces one int64 per rank.
    """
    total = 0
    for crc, label, length in zip(crcs, labels, lengths):
        total += record_fingerprint(crc, label, length)
    return total % _DIGEST_MOD
