"""Algorithm 2: the distributed in-memory shuffle over MPI_AlltoAllv.

The functional path (:func:`distributed_shuffle`) really moves compressed
image bytes between learners through the simulated MPI:

1. learners agree on the number of sub-tensor passes ``m`` (the paper
   splits the exchange "to overcome the deficiency of MPI to handle more
   than 32 bit offsets");
2. each pass assigns every record of the local sub-tensor a uniformly
   random destination learner, exchanges (lengths, labels) metadata and
   then the concatenated record bytes with ``AlltoAllv``;
3. finally each learner randomly permutes its received records locally.

The timing path (:func:`simulate_shuffle`) runs the same communication
pattern with size-only payloads at full ImageNet-1k/22k scale, including
the CPU cost of packing/unpacking records into send buffers (record-
granular scatter/gather, the practical bottleneck of an in-memory shuffle).
Group-based shuffles (§5.2, Figure 9) restrict the exchange to
sub-communicators, all groups shuffling concurrently.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.data.dimd import DIMDStore
from repro.data.synthetic import DatasetSpec
from repro.mpi.collectives.alltoall import alltoallv
from repro.mpi.collectives.basic import ring_allgatherv
from repro.mpi.datatypes import ArrayBuffer, SizeBuffer, chunk_ranges
from repro.mpi.runner import build_world
from repro.mpi.world import Communicator
from repro.net.params import CONNECTX5_DUAL, NetworkParams
from repro.utils.rng import rng_for

__all__ = ["ShuffleReport", "distributed_shuffle", "simulate_shuffle"]

#: The paper's MPI 32-bit offset ceiling that forces multi-pass exchanges.
MPI_OFFSET_LIMIT = 2**31

#: Effective CPU rate for gathering records into / out of send buffers.
#: Record-granular strided copies run far below streaming memcpy; this
#: value calibrates the 32-learner ImageNet-22k full shuffle to the
#: paper's measured 4.2 s (§5.2).
DEFAULT_PACK_BANDWIDTH = 3.2e9


@dataclass
class ShuffleReport:
    """Outcome of one shuffle."""

    elapsed: float              # simulated seconds
    bytes_exchanged: float      # payload bytes that crossed the network
    memory_per_node: float      # partition bytes held per learner
    n_passes: int               # sub-tensor passes (32-bit workaround)
    n_groups: int = 1


def distributed_shuffle(
    comm: Communicator,
    rank: int,
    store: DIMDStore,
    *,
    seed: int = 0,
    round_id: int = 0,
    max_chunk_bytes: int = MPI_OFFSET_LIMIT,
    tag: object = None,
):
    """Rank program: shuffle ``store``'s records across ``comm`` in place.

    Randomness is derived from ``(seed, round_id, rank)`` so repeated
    shuffles (every few training steps, as the paper recommends) draw fresh
    permutations deterministically.
    """
    S = comm.size
    if max_chunk_bytes < 1:
        raise ValueError("max_chunk_bytes must be >= 1")
    if S == 1:
        store.local_permute(rng_for(seed, "perm", round_id, rank))
        return ShuffleReport(0.0, 0.0, store.nbytes, 1)

    # Agree on the pass count: every learner must loop the same m times.
    my_m = max(1, math.ceil(store.nbytes / max_chunk_bytes))
    counts = yield from ring_allgatherv(
        comm, rank, ArrayBuffer(np.array([my_m], dtype=np.int64)), tag=("shm", tag)
    )
    m = max(int(c[0]) for c in counts)

    rng = rng_for(seed, "shuffle", round_id, rank)
    new_records: list[bytes] = []
    new_labels: list[int] = []
    bytes_sent = 0.0
    for t, (lo, hi) in enumerate(chunk_ranges(len(store), m)):
        ids = np.arange(lo, hi)
        dests = rng.integers(0, S, size=len(ids))
        send_meta: list[ArrayBuffer] = []
        send_data: list[ArrayBuffer] = []
        pack_bytes = 0
        for d in range(S):
            sel = ids[dests == d]
            blobs, labels = store.take(sel)
            lengths = np.array([len(b) for b in blobs], dtype=np.int64)
            meta = np.concatenate(
                [np.array([len(blobs)], dtype=np.int64), lengths, labels]
            )
            data = np.frombuffer(b"".join(blobs), dtype=np.uint8).copy()
            send_meta.append(ArrayBuffer(meta))
            send_data.append(ArrayBuffer(data))
            pack_bytes += data.nbytes
            if d != rank:
                bytes_sent += data.nbytes
        yield from comm.copy_cpu(rank, pack_bytes)  # gather into send buffers
        metas = yield from alltoallv(comm, rank, send_meta, tag=("shM", tag, t))
        datas = yield from alltoallv(comm, rank, send_data, tag=("shD", tag, t))
        recv_bytes = 0
        for src in range(S):
            meta = metas[src]
            n = int(meta[0])
            lengths = meta[1 : 1 + n]
            labels = meta[1 + n : 1 + 2 * n]
            raw = datas[src].tobytes()
            offsets = np.concatenate([[0], np.cumsum(lengths)])
            for j in range(n):
                new_records.append(raw[offsets[j] : offsets[j + 1]])
                new_labels.append(int(labels[j]))
            recv_bytes += len(raw)
        yield from comm.copy_cpu(rank, recv_bytes)  # scatter out of recv buffers

    store.replace_contents(new_records, np.asarray(new_labels, dtype=np.int64))
    store.local_permute(rng_for(seed, "perm", round_id, rank))
    return ShuffleReport(0.0, bytes_sent, store.nbytes, m)


def _timing_program(
    comm: Communicator,
    rank: int,
    partition_bytes: float,
    n_passes: int,
    tag: object = None,
):
    """Size-only shuffle with the same pack/exchange/unpack structure."""
    S = comm.size
    per_pass = partition_bytes / n_passes
    for t in range(n_passes):
        send = [SizeBuffer(int(per_pass / S), 1) for _ in range(S)]
        yield from comm.copy_cpu(rank, per_pass)
        yield from alltoallv(comm, rank, send, tag=("sht", tag, t))
        yield from comm.copy_cpu(rank, per_pass)


def simulate_shuffle(
    n_learners: int,
    dataset: DatasetSpec,
    *,
    n_groups: int = 1,
    replicate_per_group: bool = False,
    network: NetworkParams = CONNECTX5_DUAL,
    pack_bandwidth: float = DEFAULT_PACK_BANDWIDTH,
    hosts_per_leaf: int = 4,
    max_chunk_bytes: int = MPI_OFFSET_LIMIT,
) -> ShuffleReport:
    """Full-scale shuffle timing (Figures 7-9).

    With ``replicate_per_group=False`` (the Figure 9 setup) the dataset is
    partitioned across *all* learners and ``n_groups`` only restricts the
    exchange to sub-communicators — on a symmetric fabric this changes
    little, which is exactly the paper's finding.  With
    ``replicate_per_group=True`` every group holds a full copy of the
    dataset (the paper's memory-rich layout), so per-node bytes — and
    shuffle time — grow with the group count.
    """
    if pack_bandwidth <= 0:
        raise ValueError("pack_bandwidth must be positive")
    if replicate_per_group:
        partition = dataset.partition_bytes(n_learners, n_groups)
    else:
        partition = dataset.partition_bytes(n_learners, 1)
        if not 1 <= n_groups <= n_learners or n_learners % n_groups != 0:
            raise ValueError(
                f"{n_learners} learners not divisible into {n_groups} groups"
            )
    n_passes = max(1, math.ceil(partition / max_chunk_bytes))
    engine, world, comm = build_world(
        n_learners,
        topology="fat_tree",
        network=network,
        hosts_per_leaf=hosts_per_leaf,
        copy_bandwidth=pack_bandwidth,
    )
    groups = comm.split(n_groups)
    start = engine.now
    procs = []
    for group in groups:
        for grank in range(group.size):
            procs.append(
                engine.process(
                    _timing_program(group, grank, partition, n_passes),
                    name=f"shuffle-g{grank}",
                )
            )
    engine.run(engine.all_of(procs))
    return ShuffleReport(
        elapsed=engine.now - start,
        bytes_exchanged=world.fabric.stats.bytes_completed,
        memory_per_node=partition,
        n_passes=n_passes,
        n_groups=n_groups,
    )
