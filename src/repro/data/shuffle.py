"""Algorithm 2: the distributed in-memory shuffle over MPI_AlltoAllv.

The functional path (:func:`distributed_shuffle`) really moves compressed
image bytes between learners through the simulated MPI:

1. learners agree on the number of sub-tensor passes ``m`` (the paper
   splits the exchange "to overcome the deficiency of MPI to handle more
   than 32 bit offsets");
2. each pass assigns every record of the local sub-tensor a uniformly
   random destination learner, exchanges (lengths, labels, checksums)
   metadata and then the concatenated record bytes with ``AlltoAllv``;
3. after the exchange a *conservation barrier* (a verified ring allgather
   of per-rank record counts and multiset digests) proves no record was
   lost or duplicated, and only then does each rank commit the staged
   contents into its store;
4. finally each learner randomly permutes its received records locally.

The shuffle is **transactional**: incoming records are staged off to the
side while the store keeps its pre-shuffle snapshot
(:meth:`~repro.data.dimd.DIMDStore.begin_shuffle`), and any fault —
a CRC mismatch in flight, a conservation failure, a crash or a watchdog
timeout at the guard layer (:mod:`repro.data.guard`) — rolls every rank
back to that snapshot, so a failed shuffle is a no-op instead of data
loss.  Every wire message is checksummed: metadata and control blocks
carry a CRC trailer validated hop by hop (naming the corrupting sender),
and each record payload is verified against the checksum it has carried
since :class:`~repro.data.records.RecordWriter` stamped it.

The timing path (:func:`simulate_shuffle`) runs the same communication
pattern with size-only payloads at full ImageNet-1k/22k scale, including
the CPU cost of packing/unpacking records into send buffers (record-
granular scatter/gather, the practical bottleneck of an in-memory shuffle).
It carries none of the transaction/checksum machinery — the integrity
layer is pure-Python bookkeeping on the functional path and adds no
simulation events there either.  Group-based shuffles (§5.2, Figure 9)
restrict the exchange to sub-communicators, all groups shuffling
concurrently.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.data.dimd import DIMDStore, QuarantinedRecord
from repro.data.integrity import (
    ShuffleIntegrityError,
    crc_of_ints,
    multiset_digest,
    record_crc,
    record_fingerprint,
)
from repro.data.synthetic import DatasetSpec
from repro.mpi.collectives.alltoall import alltoallv
from repro.mpi.datatypes import ArrayBuffer, SizeBuffer, chunk_ranges
from repro.mpi.runner import build_world
from repro.mpi.world import Communicator
from repro.net.params import CONNECTX5_DUAL, NetworkParams
from repro.utils.rng import rng_for

__all__ = [
    "ShuffleProgress",
    "ShuffleReport",
    "distributed_shuffle",
    "simulate_shuffle",
]

#: The paper's MPI 32-bit offset ceiling that forces multi-pass exchanges.
MPI_OFFSET_LIMIT = 2**31

#: Effective CPU rate for gathering records into / out of send buffers.
#: Record-granular strided copies run far below streaming memcpy; this
#: value calibrates the 32-learner ImageNet-22k full shuffle to the
#: paper's measured 4.2 s (§5.2).
DEFAULT_PACK_BANDWIDTH = 3.2e9

_DIGEST_MOD = 2**63


@dataclass
class ShuffleReport:
    """Outcome of one shuffle."""

    elapsed: float              # simulated seconds
    bytes_exchanged: float      # payload bytes that crossed the network
    memory_per_node: float      # partition bytes held per learner
    n_passes: int               # sub-tensor passes (32-bit workaround)
    n_groups: int = 1
    quarantined: int = 0        # at-rest corrupt records pulled this round


class ShuffleProgress:
    """Per-rank progress bookkeeping for one shuffle attempt.

    Pure-Python accounting updated synchronously from inside the rank
    programs — it adds **no simulation events**, so a tracked shuffle is
    time-identical to an untracked one.  It mirrors the executor layer's
    :class:`~repro.mpi.schedule.ExecutionProgress` at message granularity:
    ``waiting`` maps each blocked rank to the (sender, message key) it is
    receiving on, and ``sends`` records every posted message key, so the
    diagnoser (:func:`repro.data.guard.diagnose_shuffle`) can tell a lost
    message from a sender that never posted.
    """

    def __init__(self, n_ranks: int):
        self.n_ranks = n_ranks
        self.steps_done = [0] * n_ranks
        self.last_advance = [0.0] * n_ranks
        self.finished = [False] * n_ranks
        #: rank -> (src, message key, since) for the receive it is blocked on.
        self.waiting: dict[int, tuple[int, object, float]] = {}
        #: Message keys posted so far (eager sends complete locally).
        self.sends: set = set()

    def sent(self, rank: int, dst: int, key: object) -> None:
        self.sends.add(key)

    def begin_recv(self, rank: int, src: int, key: object, now: float) -> None:
        self.waiting[rank] = (src, key, now)

    def end_recv(self, rank: int, now: float) -> None:
        self.waiting.pop(rank, None)
        self.steps_done[rank] += 1
        self.last_advance[rank] = now

    def finish(self, rank: int, now: float) -> None:
        self.waiting.pop(rank, None)
        self.finished[rank] = True
        self.last_advance[rank] = now


def _verified_ring_exchange(
    comm: Communicator,
    rank: int,
    values,
    *,
    tag: object = None,
    progress: ShuffleProgress | None = None,
):
    """Allgather one int64 block per rank, CRC-checked at every hop.

    Ring forwarding: in step ``t`` each rank forwards the block it received
    in step ``t-1``.  Each block travels with a CRC32 trailer that every
    hop validates *before* forwarding, so a corrupted control block is
    detected by the first rank past the corrupting link and the immediate
    sender is named as the suspect.  Returns the blocks (without trailers)
    indexed by owner rank.
    """
    n = comm.size
    own = np.asarray(values, dtype=np.int64)
    blocks: list[np.ndarray] = [own] * n  # placeholder; overwritten below
    blocks[rank] = own
    if n == 1:
        return blocks
    succ = (rank + 1) % n
    pred = (rank - 1) % n
    carry = np.concatenate([own, [crc_of_ints(own)]])
    for t in range(n - 1):
        comm.isend(rank, succ, ("shg", tag, t), ArrayBuffer(carry))
        if progress is not None:
            progress.sent(rank, succ, ("shg", tag, t, rank, succ))
            progress.begin_recv(
                rank, pred, ("shg", tag, t, pred, rank), comm.engine.now
            )
        msg = yield comm.recv(rank, pred, ("shg", tag, t))
        if progress is not None:
            progress.end_recv(rank, comm.engine.now)
        incoming = np.asarray(msg.payload, dtype=np.int64)
        owner = (rank - t - 1) % n
        if len(incoming) < 2 or int(incoming[-1]) != crc_of_ints(incoming[:-1]):
            raise ShuffleIntegrityError(
                f"control block from rank {owner} failed its CRC at rank "
                f"{rank} (hop {t}): corrupted on link {pred}->{rank}",
                detected_by=rank,
                suspect=pred,
            )
        blocks[owner] = incoming[:-1].copy()
        carry = incoming
    return blocks


def distributed_shuffle(
    comm: Communicator,
    rank: int,
    store: DIMDStore,
    *,
    seed: int = 0,
    round_id: int = 0,
    max_chunk_bytes: int = MPI_OFFSET_LIMIT,
    tag: object = None,
    progress: ShuffleProgress | None = None,
):
    """Rank program: shuffle ``store``'s records across ``comm`` in place.

    Randomness is derived from ``(seed, round_id, rank)`` so repeated
    shuffles (every few training steps, as the paper recommends) draw fresh
    permutations deterministically.

    The exchange is transactional (see the module docstring): the store is
    snapshotted up front, incoming records are staged, and the swap only
    happens after the conservation barrier proves the global multiset
    survived intact.  At-rest corrupt records (stored checksum mismatch at
    pack time) are quarantined and reported in the returned
    :class:`ShuffleReport` rather than propagated; in-flight corruption
    raises :class:`~repro.data.integrity.ShuffleIntegrityError` naming the
    sender, which aborts (and rolls back) the whole round.
    """
    S = comm.size
    engine = comm.engine
    if max_chunk_bytes < 1:
        raise ValueError("max_chunk_bytes must be >= 1")
    if S == 1:
        store.local_permute(rng_for(seed, "perm", round_id, rank))
        return ShuffleReport(0.0, 0.0, store.nbytes, 1)

    start = engine.now
    store.begin_shuffle(round_id)

    # Agree on the pass count: every learner must loop the same m times.
    my_m = max(1, math.ceil(store.nbytes / max_chunk_bytes))
    counts = yield from _verified_ring_exchange(
        comm, rank, [my_m], tag=("shm", tag), progress=progress
    )
    m = max(int(c[0]) for c in counts)

    pre_count = len(store)
    pre_digest = multiset_digest(
        store.checksums, store.labels, (len(r) for r in store.records)
    )

    rng = rng_for(seed, "shuffle", round_id, rank)
    staged_records: list[bytes] = []
    staged_labels: list[int] = []
    staged_crcs: list[int] = []
    quarantined: list[QuarantinedRecord] = []
    quar_digest = 0
    bytes_sent = 0.0
    for t, (lo, hi) in enumerate(chunk_ranges(len(store), m)):
        ids = np.arange(lo, hi)
        dests = rng.integers(0, S, size=len(ids))
        # At-rest integrity scan: a record whose bytes no longer match the
        # checksum it has carried since it was written is quarantined here
        # instead of being shuffled onward.  The destination RNG stream is
        # consumed for *all* ids so healthy records keep the destinations
        # they would get in a corruption-free run.
        ok = np.ones(len(ids), dtype=bool)
        for k, i in enumerate(ids):
            blob = store.records[int(i)]
            expected = int(store.checksums[int(i)])
            actual = record_crc(blob)
            if actual != expected:
                ok[k] = False
                quarantined.append(QuarantinedRecord(
                    blob=blob,
                    label=int(store.labels[int(i)]),
                    expected_crc=expected,
                    actual_crc=actual,
                    reason="at-rest checksum mismatch at shuffle pack",
                ))
                quar_digest += record_fingerprint(
                    expected, int(store.labels[int(i)]), len(blob)
                )
        send_meta: list[ArrayBuffer] = []
        send_data: list[ArrayBuffer] = []
        pack_bytes = 0
        for d in range(S):
            sel = ids[(dests == d) & ok]
            blobs, labels = store.take(sel)
            crcs = store.checksums[sel]
            lengths = np.array([len(b) for b in blobs], dtype=np.int64)
            body = np.concatenate([
                np.array([len(blobs)], dtype=np.int64), lengths, labels, crcs,
            ])
            meta = np.concatenate([body, [crc_of_ints(body)]])
            data = np.frombuffer(b"".join(blobs), dtype=np.uint8).copy()
            send_meta.append(ArrayBuffer(meta))
            send_data.append(ArrayBuffer(data))
            pack_bytes += data.nbytes
            if d != rank:
                bytes_sent += data.nbytes
        yield from comm.copy_cpu(rank, pack_bytes)  # gather into send buffers
        metas = yield from alltoallv(
            comm, rank, send_meta, tag=("shM", tag, t), progress=progress
        )
        datas = yield from alltoallv(
            comm, rank, send_data, tag=("shD", tag, t), progress=progress
        )
        recv_bytes = 0
        for src in range(S):
            meta = np.asarray(metas[src], dtype=np.int64)
            if len(meta) < 2 or int(meta[-1]) != crc_of_ints(meta[:-1]):
                raise ShuffleIntegrityError(
                    f"metadata from rank {src} failed its CRC at rank {rank} "
                    f"(pass {t}): corrupted in flight",
                    detected_by=rank,
                    suspect=src,
                )
            body = meta[:-1]
            n = int(body[0])
            if len(body) != 1 + 3 * n:
                raise ShuffleIntegrityError(
                    f"metadata from rank {src} is malformed at rank {rank} "
                    f"(pass {t}): {len(body)} fields for {n} records",
                    detected_by=rank,
                    suspect=src,
                )
            lengths = body[1 : 1 + n]
            labels = body[1 + n : 1 + 2 * n]
            crcs = body[1 + 2 * n : 1 + 3 * n]
            raw = datas[src].tobytes()
            if len(raw) != int(lengths.sum()):
                raise ShuffleIntegrityError(
                    f"payload from rank {src} is {len(raw)}B but metadata "
                    f"promises {int(lengths.sum())}B at rank {rank} (pass {t})",
                    detected_by=rank,
                    suspect=src,
                )
            offsets = np.concatenate([[0], np.cumsum(lengths)])
            for j in range(n):
                blob = raw[offsets[j] : offsets[j + 1]]
                if record_crc(blob) != int(crcs[j]):
                    raise ShuffleIntegrityError(
                        f"record {j} from rank {src} failed its CRC at rank "
                        f"{rank} (pass {t}): corrupted in flight",
                        detected_by=rank,
                        suspect=src,
                    )
                staged_records.append(blob)
                staged_labels.append(int(labels[j]))
                staged_crcs.append(int(crcs[j]))
            recv_bytes += len(raw)
        yield from comm.copy_cpu(rank, recv_bytes)  # scatter out of recv buffers

    # Conservation barrier: commit only once the group-wide record multiset
    # provably survived the exchange (counts and permutation-invariant
    # digests, quarantined records accounted on the pre side).
    post_digest = multiset_digest(
        staged_crcs, staged_labels, (len(b) for b in staged_records)
    )
    block = [
        pre_count, pre_digest,
        len(staged_records), post_digest,
        len(quarantined), quar_digest % _DIGEST_MOD,
    ]
    blocks = yield from _verified_ring_exchange(
        comm, rank, block, tag=("shb", tag), progress=progress
    )
    pre_n = sum(int(b[0]) for b in blocks)
    pre_d = sum(int(b[1]) for b in blocks) % _DIGEST_MOD
    post_n = sum(int(b[2]) for b in blocks)
    post_d = sum(int(b[3]) for b in blocks) % _DIGEST_MOD
    quar_n = sum(int(b[4]) for b in blocks)
    quar_d = sum(int(b[5]) for b in blocks) % _DIGEST_MOD
    if post_n + quar_n != pre_n or (post_d + quar_d) % _DIGEST_MOD != pre_d:
        raise ShuffleIntegrityError(
            f"conservation barrier failed at rank {rank}: "
            f"{pre_n} records in, {post_n} staged + {quar_n} quarantined out "
            f"(digest {pre_d:#x} -> {(post_d + quar_d) % _DIGEST_MOD:#x})",
            detected_by=rank,
        )

    store.commit_shuffle(
        round_id,
        staged_records,
        np.asarray(staged_labels, dtype=np.int64),
        np.asarray(staged_crcs, dtype=np.int64),
        quarantined,
    )
    store.local_permute(rng_for(seed, "perm", round_id, rank))
    if progress is not None:
        progress.finish(rank, engine.now)
    return ShuffleReport(
        elapsed=engine.now - start,
        bytes_exchanged=bytes_sent,
        memory_per_node=store.nbytes,
        n_passes=m,
        quarantined=len(quarantined),
    )


def _timing_program(
    comm: Communicator,
    rank: int,
    partition_bytes: float,
    n_passes: int,
    tag: object = None,
):
    """Size-only shuffle with the same pack/exchange/unpack structure."""
    S = comm.size
    per_pass = partition_bytes / n_passes
    for t in range(n_passes):
        send = [SizeBuffer(int(per_pass / S), 1) for _ in range(S)]
        yield from comm.copy_cpu(rank, per_pass)
        yield from alltoallv(comm, rank, send, tag=("sht", tag, t))
        yield from comm.copy_cpu(rank, per_pass)


def simulate_shuffle(
    n_learners: int,
    dataset: DatasetSpec,
    *,
    n_groups: int = 1,
    replicate_per_group: bool = False,
    network: NetworkParams = CONNECTX5_DUAL,
    pack_bandwidth: float = DEFAULT_PACK_BANDWIDTH,
    hosts_per_leaf: int = 4,
    max_chunk_bytes: int = MPI_OFFSET_LIMIT,
) -> ShuffleReport:
    """Full-scale shuffle timing (Figures 7-9).

    With ``replicate_per_group=False`` (the Figure 9 setup) the dataset is
    partitioned across *all* learners and ``n_groups`` only restricts the
    exchange to sub-communicators — on a symmetric fabric this changes
    little, which is exactly the paper's finding.  With
    ``replicate_per_group=True`` every group holds a full copy of the
    dataset (the paper's memory-rich layout), so per-node bytes — and
    shuffle time — grow with the group count.
    """
    if pack_bandwidth <= 0:
        raise ValueError("pack_bandwidth must be positive")
    if replicate_per_group:
        partition = dataset.partition_bytes(n_learners, n_groups)
    else:
        partition = dataset.partition_bytes(n_learners, 1)
        if not 1 <= n_groups <= n_learners or n_learners % n_groups != 0:
            raise ValueError(
                f"{n_learners} learners not divisible into {n_groups} groups"
            )
    n_passes = max(1, math.ceil(partition / max_chunk_bytes))
    engine, world, comm = build_world(
        n_learners,
        topology="fat_tree",
        network=network,
        hosts_per_leaf=hosts_per_leaf,
        copy_bandwidth=pack_bandwidth,
    )
    groups = comm.split(n_groups)
    start = engine.now
    procs = []
    for group in groups:
        for grank in range(group.size):
            procs.append(
                engine.process(
                    _timing_program(group, grank, partition, n_passes),
                    name=f"shuffle-g{grank}",
                )
            )
    engine.run(engine.all_of(procs))
    return ShuffleReport(
        elapsed=engine.now - start,
        bytes_exchanged=world.fabric.stats.bytes_completed,
        memory_per_node=partition,
        n_passes=n_passes,
        n_groups=n_groups,
    )
