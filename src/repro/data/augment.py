"""Input augmentation: scale+aspect random crop, flip, normalization.

§5: "we used scale and aspect ratio data augmentation as in [fb.resnet].
The input image is a 224x224 pixel random crop from a scaled image or its
horizontal flip ... normalized by the per-color mean and standard
deviation."  Implemented here for NCHW float batches at any resolution
(the synthetic datasets are small, so the crop size is a parameter).
"""

from __future__ import annotations

import numpy as np

__all__ = ["augment_batch", "normalize_batch", "random_resized_crop"]


def random_resized_crop(
    image: np.ndarray,
    out_size: int,
    rng: np.random.Generator,
    *,
    scale_range: tuple[float, float] = (0.25, 1.0),
    aspect_range: tuple[float, float] = (3 / 4, 4 / 3),
) -> np.ndarray:
    """Sample a scale/aspect crop and resize it to ``out_size`` (nearest).

    Follows the GoogleNet/fb.resnet recipe: draw a target area fraction and
    aspect ratio, crop, then resize.  Falls back to a center crop when the
    sampled box does not fit.
    """
    if image.ndim != 3:
        raise ValueError(f"image must be (C, H, W), got {image.shape}")
    if out_size < 1:
        raise ValueError("out_size must be >= 1")
    _c, h, w = image.shape
    for _attempt in range(10):
        area = h * w * rng.uniform(*scale_range)
        aspect = rng.uniform(*aspect_range)
        ch = int(round(np.sqrt(area / aspect)))
        cw = int(round(np.sqrt(area * aspect)))
        if 0 < ch <= h and 0 < cw <= w:
            top = int(rng.integers(0, h - ch + 1))
            left = int(rng.integers(0, w - cw + 1))
            crop = image[:, top : top + ch, left : left + cw]
            return _resize_nearest(crop, out_size)
    # Fallback: center crop of the short side.
    side = min(h, w)
    top = (h - side) // 2
    left = (w - side) // 2
    return _resize_nearest(image[:, top : top + side, left : left + side], out_size)


def _resize_nearest(image: np.ndarray, out_size: int) -> np.ndarray:
    _c, h, w = image.shape
    rows = np.clip((np.arange(out_size) + 0.5) * h / out_size, 0, h - 1).astype(int)
    cols = np.clip((np.arange(out_size) + 0.5) * w / out_size, 0, w - 1).astype(int)
    return image[:, rows[:, None], cols[None, :]]


def augment_batch(
    images: np.ndarray,
    rng: np.random.Generator,
    *,
    out_size: int | None = None,
    flip_prob: float = 0.5,
) -> np.ndarray:
    """Random resized crop + horizontal flip for an NCHW batch."""
    if images.ndim != 4:
        raise ValueError(f"batch must be (N, C, H, W), got {images.shape}")
    size = out_size if out_size is not None else images.shape[-1]
    out = np.empty(images.shape[:2] + (size, size), dtype=images.dtype)
    for i in range(images.shape[0]):
        img = random_resized_crop(images[i], size, rng)
        if rng.random() < flip_prob:
            img = img[:, :, ::-1]
        out[i] = img
    return out


def normalize_batch(
    images: np.ndarray,
    mean: np.ndarray | None = None,
    std: np.ndarray | None = None,
) -> np.ndarray:
    """Per-channel standardization; stats default to the batch's own."""
    if images.ndim != 4:
        raise ValueError(f"batch must be (N, C, H, W), got {images.shape}")
    if mean is None:
        mean = images.mean(axis=(0, 2, 3))
    if std is None:
        std = images.std(axis=(0, 2, 3))
    mean = np.asarray(mean, dtype=float)
    std = np.asarray(std, dtype=float)
    if mean.shape != (images.shape[1],) or std.shape != (images.shape[1],):
        raise ValueError("mean/std must have one value per channel")
    return (images - mean[None, :, None, None]) / np.maximum(
        std[None, :, None, None], 1e-8
    )
