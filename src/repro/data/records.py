"""The DIMD record-file format: one big data file + an index file.

Layout (§4.1): "the resized images are compressed and concatenated into two
large files for the training and validation data sets ... we also maintain
an index file which contains the start location of each image along with
its label id".

* ``<name>.data`` — the record blobs, back to back.
* ``<name>.idx``  — int64 array of shape (n, 4):
  (offset, length, label, crc32).

The CRC32 column gives end-to-end record integrity: the writer stamps each
blob as it is appended and :meth:`RecordReader.read` verifies it on every
fetch, raising :class:`~repro.data.integrity.RecordCorrupt` on a mismatch
instead of handing corrupt bytes to the training pipeline.  Index files
written before the checksum column (shape ``(n, 3)``) still load; reads
from them simply skip verification.

Readers memory-map nothing fancy — they read the index eagerly and fetch
record byte ranges on demand, which is exactly the random-access pattern
the partitioned loader needs.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.data.integrity import RecordCorrupt, record_crc

__all__ = ["RecordWriter", "RecordReader", "write_record_file"]

_IDX_DTYPE = np.int64


class RecordWriter:
    """Append records; call :meth:`close` (or use as context manager)."""

    def __init__(self, base_path: str | os.PathLike):
        self.base = Path(base_path)
        self.base.parent.mkdir(parents=True, exist_ok=True)
        self._data = open(self.base.with_suffix(".data"), "wb")
        self._entries: list[tuple[int, int, int, int]] = []
        self._offset = 0
        self._closed = False

    def append(self, blob: bytes, label: int) -> int:
        """Write one record; returns its index."""
        if self._closed:
            raise ValueError("writer is closed")
        if label < 0:
            raise ValueError(f"label must be >= 0, got {label}")
        self._data.write(blob)
        self._entries.append((self._offset, len(blob), label, record_crc(blob)))
        self._offset += len(blob)
        return len(self._entries) - 1

    def close(self) -> None:
        if self._closed:
            return
        self._data.close()
        index = np.asarray(self._entries, dtype=_IDX_DTYPE).reshape(-1, 4)
        np.save(self.base.with_suffix(".idx"), index)
        self._closed = True

    def __enter__(self) -> "RecordWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def n_records(self) -> int:
        return len(self._entries)

    @property
    def data_bytes(self) -> int:
        return self._offset


class RecordReader:
    """Random access to a record file pair (CRC-verified per read)."""

    def __init__(self, base_path: str | os.PathLike):
        self.base = Path(base_path)
        idx_path = self.base.with_suffix(".idx.npy")
        if not idx_path.exists():
            idx_path = self.base.with_suffix(".idx")
        self.index = np.load(idx_path)
        if self.index.ndim != 2 or self.index.shape[1] not in (3, 4):
            raise ValueError(f"malformed index file {idx_path}")
        self._data = open(self.base.with_suffix(".data"), "rb")

    def __len__(self) -> int:
        return int(self.index.shape[0])

    @property
    def labels(self) -> np.ndarray:
        return self.index[:, 2]

    @property
    def lengths(self) -> np.ndarray:
        return self.index[:, 1]

    @property
    def checksums(self) -> np.ndarray | None:
        """Per-record CRC32 column, or ``None`` for a legacy 3-col index."""
        if self.index.shape[1] < 4:
            return None
        return self.index[:, 3]

    @property
    def data_bytes(self) -> int:
        return int(self.index[:, 1].sum())

    def read(self, i: int) -> tuple[bytes, int]:
        """Fetch record ``i``: (blob, label); verifies the stored CRC32."""
        if not 0 <= i < len(self):
            raise IndexError(f"record {i} out of range [0, {len(self)})")
        offset, length, label = (int(v) for v in self.index[i, :3])
        self._data.seek(offset)
        blob = self._data.read(length)
        if len(blob) != length:
            raise IOError(f"short read for record {i}")
        if self.index.shape[1] >= 4:
            expected = int(self.index[i, 3])
            actual = record_crc(blob)
            if actual != expected:
                raise RecordCorrupt(i, expected, actual, where=str(self.base))
        return blob, label

    def read_many(self, ids: np.ndarray) -> tuple[list[bytes], np.ndarray]:
        """Fetch several records; returns (blobs, labels)."""
        blobs = []
        labels = np.empty(len(ids), dtype=np.int64)
        for j, i in enumerate(ids):
            blob, label = self.read(int(i))
            blobs.append(blob)
            labels[j] = label
        return blobs, labels

    def close(self) -> None:
        self._data.close()

    def __enter__(self) -> "RecordReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def write_record_file(
    base_path: str | os.PathLike,
    records: list[tuple[bytes, int]],
) -> Path:
    """Write a complete record file pair in one call; returns the base path."""
    with RecordWriter(base_path) as w:
        for blob, label in records:
            w.append(blob, label)
    return Path(base_path)
