"""The DIMD data substrate (§4.1).

The paper resizes images, compresses them, concatenates them into one large
data file with an index file (offset + length + label per image), loads
partitions of it into node memory, serves random batches from memory, and
periodically reshuffles partitions across nodes with ``MPI_AlltoAllv``.

Every piece is implemented for real here — the record files are actual
bytes on disk (or in memory), the shuffle really moves image payloads
through the simulated MPI — on synthetic datasets scaled to test size.
Full-scale ImageNet-1k/22k *byte counts* (for the timing studies) come from
:data:`IMAGENET_1K` / :data:`IMAGENET_22K`.
"""

from repro.data.codec import decode_image, encode_image
from repro.data.integrity import (
    RecordCorrupt,
    ShuffleIntegrityError,
    multiset_digest,
    record_crc,
)
from repro.data.records import RecordReader, RecordWriter, write_record_file
from repro.data.synthetic import (
    IMAGENET_1K,
    IMAGENET_22K,
    DatasetSpec,
    SyntheticImageDataset,
    build_synthetic_record_file,
)
from repro.data.dimd import (
    DIMDStore,
    GroupLayout,
    QuarantinedRecord,
    deal_records,
    partitioned_load,
)
from repro.data.shuffle import (
    ShuffleProgress,
    ShuffleReport,
    distributed_shuffle,
    simulate_shuffle,
)
from repro.data.guard import diagnose_shuffle, run_shuffle_guarded
from repro.data.filestore import FileBackedLoader
from repro.data.memory import MemoryPlan, max_replication_groups, plan_memory
from repro.data.augment import augment_batch, normalize_batch

__all__ = [
    "DIMDStore",
    "DatasetSpec",
    "FileBackedLoader",
    "GroupLayout",
    "IMAGENET_1K",
    "IMAGENET_22K",
    "MemoryPlan",
    "QuarantinedRecord",
    "RecordCorrupt",
    "RecordReader",
    "RecordWriter",
    "ShuffleIntegrityError",
    "ShuffleProgress",
    "ShuffleReport",
    "SyntheticImageDataset",
    "augment_batch",
    "build_synthetic_record_file",
    "deal_records",
    "decode_image",
    "diagnose_shuffle",
    "distributed_shuffle",
    "encode_image",
    "max_replication_groups",
    "multiset_digest",
    "normalize_batch",
    "plan_memory",
    "partitioned_load",
    "record_crc",
    "run_shuffle_guarded",
    "simulate_shuffle",
    "write_record_file",
]
