"""Image codec: the in-memory "JPEG" stand-in.

The paper stores compressed images and uses "an in-memory JPEG
decompresser ... to decompress images to generate image tensor objects"
during SGD.  Offline we have no libjpeg, so records hold zlib-compressed
uint8 tensors with a small shape header.  What matters for the reproduction
is preserved: records are variable-length compressed blobs that must be
decoded CPU-side before a batch can reach the GPU.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

__all__ = ["encode_image", "decode_image"]

_HEADER = struct.Struct("<BHHH")  # ndim tag (always 3), C, H, W
_MAGIC_LEVEL = 6


def encode_image(image: np.ndarray, level: int = _MAGIC_LEVEL) -> bytes:
    """Compress a (C, H, W) uint8 image into a record blob."""
    img = np.ascontiguousarray(image)
    if img.dtype != np.uint8:
        raise ValueError(f"images must be uint8, got {img.dtype}")
    if img.ndim != 3:
        raise ValueError(f"images must be (C, H, W), got shape {img.shape}")
    c, h, w = img.shape
    if max(c, h, w) > 0xFFFF:
        raise ValueError(f"image dimension too large: {img.shape}")
    return _HEADER.pack(3, c, h, w) + zlib.compress(img.tobytes(), level)


def decode_image(blob: bytes) -> np.ndarray:
    """Decompress a record blob back into a (C, H, W) uint8 image."""
    if len(blob) < _HEADER.size:
        raise ValueError("record blob too short for header")
    ndim, c, h, w = _HEADER.unpack_from(blob)
    if ndim != 3:
        raise ValueError(f"unsupported record format tag {ndim}")
    raw = zlib.decompress(blob[_HEADER.size :])
    expected = c * h * w
    if len(raw) != expected:
        raise ValueError(
            f"decompressed size {len(raw)} != expected {expected} for ({c},{h},{w})"
        )
    return np.frombuffer(raw, dtype=np.uint8).reshape(c, h, w)
