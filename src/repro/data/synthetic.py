"""Synthetic image datasets standing in for ImageNet-1k / ImageNet-22k.

Two roles:

* **Functional** — :class:`SyntheticImageDataset` generates small labelled
  images with class-dependent structure (each class has a characteristic
  low-frequency pattern plus noise), so real training runs can actually
  learn and the DIMD machinery moves real compressed bytes.

* **Scale modelling** — :class:`DatasetSpec` carries the full-scale byte
  counts the paper quotes (§4.1/§5.2: Imagenet-1k training set ≈ 70 GB as a
  single concatenated file, Imagenet-22k ≈ 220 GB, 1.28 M / 7 M images) for
  the shuffle- and epoch-timing experiments, where only sizes matter.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.data.codec import encode_image
from repro.data.records import write_record_file
from repro.utils.rng import rng_for
from repro.utils.units import GB

__all__ = [
    "DatasetSpec",
    "IMAGENET_1K",
    "IMAGENET_22K",
    "SyntheticImageDataset",
    "build_synthetic_record_file",
]


@dataclass(frozen=True)
class DatasetSpec:
    """Full-scale dataset metadata used by the timing models."""

    name: str
    n_images: int
    n_classes: int
    record_file_bytes: float   # concatenated training file size (§5.2)
    val_images: int = 50_000

    def __post_init__(self) -> None:
        if self.n_images < 1 or self.n_classes < 1 or self.record_file_bytes <= 0:
            raise ValueError(f"DatasetSpec {self.name}: counts must be positive")

    @property
    def mean_image_bytes(self) -> float:
        return self.record_file_bytes / self.n_images

    def partition_bytes(self, n_learners: int, n_groups: int = 1) -> float:
        """Bytes held by one learner when each group owns the full set.

        With ``n_groups == 1`` all learners together hold one copy (maximal
        partitioning); with ``n_groups == n_learners`` every learner holds
        the full dataset.
        """
        if n_learners < 1 or n_groups < 1 or n_groups > n_learners:
            raise ValueError("need 1 <= n_groups <= n_learners")
        if n_learners % n_groups != 0:
            raise ValueError(
                f"{n_learners} learners not divisible into {n_groups} groups"
            )
        learners_per_group = n_learners // n_groups
        return self.record_file_bytes / learners_per_group


#: §5.2: "the training data set along with the map indices of Imagenet-1k
#: form a single file of size 70 GB".
IMAGENET_1K = DatasetSpec(
    name="imagenet-1k",
    n_images=1_281_167,
    n_classes=1000,
    record_file_bytes=70 * GB,
)

#: §5.2: "for Imagenet-22k they form a single file of size 220 GB";
#: 7 M images, 22 000 classes.
IMAGENET_22K = DatasetSpec(
    name="imagenet-22k",
    n_images=7_000_000,
    n_classes=22_000,
    record_file_bytes=220 * GB,
)


class SyntheticImageDataset:
    """Deterministic labelled images with learnable class structure."""

    def __init__(
        self,
        n_images: int,
        n_classes: int,
        *,
        channels: int = 3,
        height: int = 16,
        width: int = 16,
        seed: int = 0,
        noise: float = 0.25,
    ):
        if n_images < 1 or n_classes < 1:
            raise ValueError("n_images and n_classes must be >= 1")
        if n_classes > n_images:
            raise ValueError("need at least one image per class")
        self.n_images = n_images
        self.n_classes = n_classes
        self.channels = channels
        self.height = height
        self.width = width
        self.seed = seed
        self.noise = noise
        proto_rng = rng_for(seed, "prototypes")
        # Smooth class prototypes: random low-frequency sinusoid mixtures.
        yy, xx = np.mgrid[0:height, 0:width]
        self._prototypes = np.empty((n_classes, channels, height, width))
        freq = proto_rng.uniform(0.5, 2.5, size=(n_classes, channels, 2))
        phase = proto_rng.uniform(0, 2 * np.pi, size=(n_classes, channels, 2))
        for k in range(n_classes):
            for c in range(channels):
                fy, fx = freq[k, c]
                py, px = phase[k, c]
                wave = np.sin(2 * np.pi * fy * yy / height + py) + np.cos(
                    2 * np.pi * fx * xx / width + px
                )
                self._prototypes[k, c] = wave
        labels_rng = rng_for(seed, "labels")
        self.labels = labels_rng.integers(0, n_classes, size=n_images)
        # Guarantee every class appears at least once.
        self.labels[:n_classes] = np.arange(n_classes)

    def image(self, i: int) -> np.ndarray:
        """The i-th image as (C, H, W) uint8."""
        if not 0 <= i < self.n_images:
            raise IndexError(f"image {i} out of range")
        rng = rng_for(self.seed, "image", i)
        label = int(self.labels[i])
        base = self._prototypes[label]
        img = base + rng.standard_normal(base.shape) * self.noise * 2.0
        img = (img - img.min()) / max(float(np.ptp(img)), 1e-9)
        return (img * 255).astype(np.uint8)

    def batch(self, ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(images, labels) for the given indices, images float in [0,1]."""
        imgs = np.stack([self.image(int(i)) for i in ids]).astype(np.float64) / 255.0
        return imgs, self.labels[np.asarray(ids, dtype=int)]

    def records(self) -> list[tuple[bytes, int]]:
        """All images encoded as record blobs."""
        return [
            (encode_image(self.image(i)), int(self.labels[i]))
            for i in range(self.n_images)
        ]


def build_synthetic_record_file(
    base_path: str | os.PathLike,
    n_images: int,
    n_classes: int,
    *,
    seed: int = 0,
    **dataset_kwargs,
):
    """Generate a synthetic dataset and write it in DIMD record format.

    Returns ``(dataset, base_path)``.
    """
    ds = SyntheticImageDataset(n_images, n_classes, seed=seed, **dataset_kwargs)
    write_record_file(base_path, ds.records())
    return ds, base_path
