"""DIMD memory-capacity planning.

§4.1: "If there is sufficient memory on each node, then the entire dataset
can be stored in its memory, otherwise the data needs to be partitioned".
This module answers the operational questions behind that sentence: does a
given (dataset, cluster, group layout) fit, with how much headroom, and
what is the most-replicated layout (fewest learners per copy -> cheapest
shuffles, most local randomness) a cluster can afford?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.specs import NodeSpec
from repro.data.dimd import GroupLayout
from repro.data.synthetic import DatasetSpec

__all__ = ["MemoryPlan", "plan_memory", "max_replication_groups"]

#: Fraction of host RAM the DIMD store may use; the rest is for the OS,
#: framework, decode buffers and pinned staging areas.
DEFAULT_MEMORY_FRACTION = 0.80

#: Per-node working memory besides the store: decode scratch, batch
#: staging, model/optimizer host copies.
WORKING_SET_BYTES = 8e9


@dataclass(frozen=True)
class MemoryPlan:
    """Feasibility verdict for one layout."""

    dataset: str
    n_learners: int
    n_groups: int
    partition_bytes: float
    budget_bytes: float
    fits: bool

    @property
    def headroom_bytes(self) -> float:
        return self.budget_bytes - self.partition_bytes

    @property
    def utilization(self) -> float:
        return self.partition_bytes / self.budget_bytes if self.budget_bytes else 1.0


def plan_memory(
    dataset: DatasetSpec,
    node: NodeSpec,
    layout: GroupLayout,
    *,
    memory_fraction: float = DEFAULT_MEMORY_FRACTION,
    working_set: float = WORKING_SET_BYTES,
) -> MemoryPlan:
    """Check whether ``layout`` fits the node's RAM budget."""
    if not 0 < memory_fraction <= 1:
        raise ValueError("memory_fraction must be in (0, 1]")
    if working_set < 0:
        raise ValueError("working_set must be >= 0")
    partition = dataset.partition_bytes(layout.n_learners, layout.n_groups)
    budget = node.host_memory_bytes * memory_fraction - working_set
    return MemoryPlan(
        dataset=dataset.name,
        n_learners=layout.n_learners,
        n_groups=layout.n_groups,
        partition_bytes=partition,
        budget_bytes=max(0.0, budget),
        fits=partition <= budget,
    )


def max_replication_groups(
    dataset: DatasetSpec,
    node: NodeSpec,
    n_learners: int,
    *,
    memory_fraction: float = DEFAULT_MEMORY_FRACTION,
    working_set: float = WORKING_SET_BYTES,
) -> int:
    """The largest feasible group count (most replication) for a cluster.

    Returns ``g``: learners are split into ``g`` groups, each holding one
    full dataset copy.  ``g == n_learners`` means full replication on every
    node; ``g == 1`` means one copy across the whole machine.  Raises if
    even the single-copy layout does not fit.
    """
    for g in range(n_learners, 0, -1):
        if n_learners % g != 0:
            continue
        plan = plan_memory(
            dataset,
            node,
            GroupLayout(n_learners, g),
            memory_fraction=memory_fraction,
            working_set=working_set,
        )
        if plan.fits:
            return g
    raise ValueError(
        f"{dataset.name} does not fit across {n_learners} x "
        f"{node.host_memory_bytes / 1e9:.0f} GB nodes even fully partitioned"
    )
