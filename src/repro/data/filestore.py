"""The baseline data path DIMD replaces: per-image file reads with donkeys.

In stock Torch, "donkey" worker threads fetch and decode the next
mini-batch's images from the filesystem while the GPUs compute.  On the
paper's cluster the shared filesystem could not keep up ("a critical
scaling bottleneck was insufficient I/O throughput from the file system",
§4.1) — every image is an independent random read.

:class:`FileBackedLoader` reproduces that pipeline on the event engine: N
donkey processes issue random per-image reads against a
:class:`~repro.cluster.storage.StorageDevice` and deposit finished batches
into a bounded prefetch queue that the training loop consumes.
"""

from __future__ import annotations

from repro.cluster.storage import StorageDevice
from repro.sim.engine import Engine, Event
from repro.sim.resources import Store

__all__ = ["FileBackedLoader"]


class FileBackedLoader:
    """Donkey-thread prefetch pipeline over a storage device."""

    def __init__(
        self,
        engine: Engine,
        device: StorageDevice,
        *,
        batch_images: int,
        mean_image_bytes: float,
        n_donkeys: int = 4,
        queue_depth: int = 2,
        decode_rate: float = 1.2e9,
    ):
        """
        Parameters
        ----------
        batch_images:
            Images per fetched batch (the node's share of the global batch).
        mean_image_bytes:
            Average compressed image size.
        n_donkeys:
            Concurrent loader threads (Torch default is small).
        queue_depth:
            Prefetched batches the queue can hold before donkeys block.
        decode_rate:
            JPEG-decode throughput per donkey (bytes/second).
        """
        if batch_images < 1 or mean_image_bytes <= 0:
            raise ValueError("batch_images >= 1 and mean_image_bytes > 0 required")
        if n_donkeys < 1 or queue_depth < 1 or decode_rate <= 0:
            raise ValueError("invalid donkey/queue/decode configuration")
        self.engine = engine
        self.device = device
        self.batch_images = batch_images
        self.mean_image_bytes = mean_image_bytes
        self.n_donkeys = n_donkeys
        self.decode_rate = decode_rate
        self.queue = Store(engine, capacity=queue_depth, name="batch-queue")
        self.batches_produced = 0
        self._running = False

    def start(self, n_batches: int) -> None:
        """Launch donkeys to produce ``n_batches`` total."""
        if self._running:
            raise RuntimeError("loader already started")
        if n_batches < 1:
            raise ValueError("n_batches must be >= 1")
        self._running = True
        per_donkey, extra = divmod(n_batches, self.n_donkeys)
        for d in range(self.n_donkeys):
            quota = per_donkey + (1 if d < extra else 0)
            if quota:
                self.engine.process(self._donkey(quota), name=f"donkey{d}")

    def _donkey(self, quota: int):
        batch_bytes = self.batch_images * self.mean_image_bytes
        for _ in range(quota):
            # Random reads: one request per image.
            yield from self.device.read(batch_bytes, n_requests=self.batch_images)
            # In-memory decode before the batch is usable.
            yield self.engine.timeout(batch_bytes / self.decode_rate)
            self.batches_produced += 1
            yield self.queue.put(self.batches_produced)

    def next_batch(self) -> Event:
        """Event that fires when a prefetched batch is available."""
        return self.queue.get()

    def batch_service_time(self) -> float:
        """Closed-form steady-state time between batches (all donkeys).

        The storage device serializes requests, so aggregate throughput is
        device-bound regardless of donkey count; decode overlaps across
        donkeys.
        """
        batch_bytes = self.batch_images * self.mean_image_bytes
        io = self.device.spec.read_time(batch_bytes, self.batch_images)
        decode = batch_bytes / self.decode_rate / self.n_donkeys
        return max(io, decode)
