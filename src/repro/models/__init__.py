"""Model zoo: performance descriptors + an executable NumPy NN substrate."""

from repro.models.classic import build_alexnet, build_vgg16
from repro.models.descriptors import (
    LayerSpec,
    ModelDescriptor,
    batch_norm,
    conv2d,
    dense,
    pool,
)
from repro.models.googlenet import build_googlenet_bn
from repro.models.resnet import RESNET50_PARAMS, build_resnet, build_resnet50
from repro.models.zoo import MODELS, get_model

__all__ = [
    "LayerSpec",
    "MODELS",
    "ModelDescriptor",
    "RESNET50_PARAMS",
    "batch_norm",
    "build_alexnet",
    "build_googlenet_bn",
    "build_resnet",
    "build_resnet50",
    "build_vgg16",
    "conv2d",
    "dense",
    "get_model",
    "pool",
]
