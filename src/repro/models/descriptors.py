"""Network descriptors: per-layer parameter and FLOP accounting.

A :class:`ModelDescriptor` is the static view of a CNN the performance
model needs: how many parameters (-> gradient payload bytes for the
allreduce), how many forward FLOPs per image (-> GPU step time), and how
many layers (-> kernel-launch overhead).  The builders in
:mod:`repro.models.resnet` / :mod:`repro.models.googlenet` construct these
layer-by-layer from the published architectures, so parameter totals can be
checked against the literature (ResNet-50: 25.56 M).

FLOP convention: one multiply-accumulate = 2 FLOPs, forward pass only
(backward is scaled in :mod:`repro.cluster.gpu`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["LayerSpec", "ModelDescriptor", "conv2d", "dense", "batch_norm", "pool"]


@dataclass(frozen=True)
class LayerSpec:
    """One layer's static cost."""

    name: str
    kind: str                 # "conv" | "fc" | "bn" | "pool" | "act" | ...
    params: int               # trainable parameter count
    fwd_flops: float          # forward FLOPs per image
    out_shape: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.params < 0 or self.fwd_flops < 0:
            raise ValueError(f"layer {self.name}: negative cost")


@dataclass
class ModelDescriptor:
    """A named stack of layers with aggregate cost properties."""

    name: str
    input_shape: tuple[int, int, int]  # (C, H, W)
    layers: list[LayerSpec] = field(default_factory=list)

    def add(self, layer: LayerSpec) -> "ModelDescriptor":
        self.layers.append(layer)
        return self

    @property
    def n_params(self) -> int:
        return sum(l.params for l in self.layers)

    @property
    def gradient_bytes(self) -> int:
        """fp32 gradient payload for the inter-node allreduce."""
        return 4 * self.n_params

    @property
    def forward_flops(self) -> float:
        """Forward FLOPs per image."""
        return sum(l.fwd_flops for l in self.layers)

    @property
    def n_layers(self) -> int:
        """Layers with compute kernels (excludes activations folded in)."""
        return sum(1 for l in self.layers if l.kind in ("conv", "fc", "bn", "pool"))

    @property
    def n_weight_layers(self) -> int:
        return sum(1 for l in self.layers if l.params > 0)

    def summary(self) -> str:
        return (
            f"{self.name}: {self.n_params / 1e6:.2f}M params "
            f"({self.gradient_bytes / 1e6:.1f} MB grads), "
            f"{self.forward_flops / 1e9:.2f} GFLOPs/img fwd, "
            f"{self.n_layers} layers"
        )


def conv2d(
    name: str,
    cin: int,
    cout: int,
    kernel: int,
    h_out: int,
    w_out: int,
    *,
    groups: int = 1,
    bias: bool = False,
) -> LayerSpec:
    """A 2-D convolution producing a (cout, h_out, w_out) map."""
    if min(cin, cout, kernel, h_out, w_out, groups) < 1:
        raise ValueError(f"conv {name}: dimensions must be >= 1")
    if cin % groups or cout % groups:
        raise ValueError(f"conv {name}: groups must divide channels")
    weights = kernel * kernel * (cin // groups) * cout
    params = weights + (cout if bias else 0)
    flops = 2.0 * weights * h_out * w_out
    return LayerSpec(name, "conv", params, flops, (cout, h_out, w_out))


def dense(name: str, n_in: int, n_out: int, *, bias: bool = True) -> LayerSpec:
    """A fully-connected layer."""
    if min(n_in, n_out) < 1:
        raise ValueError(f"fc {name}: dimensions must be >= 1")
    params = n_in * n_out + (n_out if bias else 0)
    return LayerSpec(name, "fc", params, 2.0 * n_in * n_out, (n_out,))


def batch_norm(name: str, channels: int, h: int, w: int) -> LayerSpec:
    """Batch normalization over a (channels, h, w) map (scale + shift)."""
    if min(channels, h, w) < 1:
        raise ValueError(f"bn {name}: dimensions must be >= 1")
    return LayerSpec(name, "bn", 2 * channels, 4.0 * channels * h * w, (channels, h, w))


def pool(name: str, channels: int, h_out: int, w_out: int, kernel: int) -> LayerSpec:
    """Max/avg pooling (no parameters, comparison/add FLOPs only)."""
    if min(channels, h_out, w_out, kernel) < 1:
        raise ValueError(f"pool {name}: dimensions must be >= 1")
    flops = float(channels * h_out * w_out * kernel * kernel)
    return LayerSpec(name, "pool", 0, flops, (channels, h_out, w_out))
