"""Model registry: name -> descriptor builder."""

from __future__ import annotations

from typing import Callable

from repro.models.classic import build_alexnet, build_vgg16
from repro.models.descriptors import ModelDescriptor
from repro.models.googlenet import build_googlenet_bn
from repro.models.resnet import build_resnet50

__all__ = ["MODELS", "get_model"]

MODELS: dict[str, Callable[[], ModelDescriptor]] = {
    "resnet50": build_resnet50,
    "googlenet_bn": build_googlenet_bn,
    "alexnet": build_alexnet,
    "vgg16": build_vgg16,
}


def get_model(name: str) -> ModelDescriptor:
    """Build a registered model descriptor by name."""
    try:
        builder = MODELS[name]
    except KeyError:
        raise ValueError(
            f"unknown model {name!r}; choose from {sorted(MODELS)}"
        ) from None
    return builder()
