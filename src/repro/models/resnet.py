"""ResNet-50 descriptor (He et al., 2015), built bottleneck by bottleneck.

Matches the architecture of the ``fb.resnet.torch`` package the paper
trains (§5): 224x224 input, stem 7x7/2 conv, stages of [3, 4, 6, 3]
bottleneck blocks with output widths 256/512/1024/2048, global average
pooling and a 1000-way classifier.  Parameter total is asserted against
the canonical 25.557 M in the tests.
"""

from __future__ import annotations

from repro.models.descriptors import (
    ModelDescriptor,
    batch_norm,
    conv2d,
    dense,
    pool,
)

__all__ = ["build_resnet50", "build_resnet", "RESNET50_PARAMS"]

#: Canonical trainable parameter count of ResNet-50 (1000 classes).
RESNET50_PARAMS = 25_557_032

# (n_blocks, bottleneck_width, output_width, first_stride) per stage
_RESNET50_STAGES = [
    (3, 64, 256, 1),
    (4, 128, 512, 2),
    (6, 256, 1024, 2),
    (3, 512, 2048, 2),
]


def _bottleneck(
    model: ModelDescriptor,
    name: str,
    cin: int,
    width: int,
    cout: int,
    h: int,
    w: int,
    stride: int,
) -> tuple[int, int, int]:
    """Append one bottleneck block; returns (cout, h_out, w_out)."""
    h_out, w_out = h // stride, w // stride
    # 1x1 reduce (applies the stride in the fb.resnet.torch convention's
    # 3x3; we follow the original: stride on the 3x3).
    model.add(conv2d(f"{name}.conv1", cin, width, 1, h, w))
    model.add(batch_norm(f"{name}.bn1", width, h, w))
    model.add(conv2d(f"{name}.conv2", width, width, 3, h_out, w_out))
    model.add(batch_norm(f"{name}.bn2", width, h_out, w_out))
    model.add(conv2d(f"{name}.conv3", width, cout, 1, h_out, w_out))
    model.add(batch_norm(f"{name}.bn3", cout, h_out, w_out))
    if stride != 1 or cin != cout:
        model.add(conv2d(f"{name}.downsample", cin, cout, 1, h_out, w_out))
        model.add(batch_norm(f"{name}.downsample_bn", cout, h_out, w_out))
    return cout, h_out, w_out


def build_resnet(
    stages: list[tuple[int, int, int, int]],
    *,
    name: str,
    n_classes: int = 1000,
    input_size: int = 224,
) -> ModelDescriptor:
    """Generic bottleneck ResNet from a stage table."""
    model = ModelDescriptor(name=name, input_shape=(3, input_size, input_size))
    h = w = input_size // 2
    model.add(conv2d("stem.conv", 3, 64, 7, h, w))
    model.add(batch_norm("stem.bn", 64, h, w))
    h, w = h // 2, w // 2
    model.add(pool("stem.maxpool", 64, h, w, 3))
    cin = 64
    for si, (n_blocks, width, cout, first_stride) in enumerate(stages, start=1):
        for b in range(n_blocks):
            stride = first_stride if b == 0 else 1
            cin, h, w = _bottleneck(
                model, f"layer{si}.block{b}", cin, width, cout, h, w, stride
            )
    model.add(pool("avgpool", cin, 1, 1, h))
    model.add(dense("fc", cin, n_classes))
    return model


def build_resnet50(n_classes: int = 1000) -> ModelDescriptor:
    """The paper's ResNet-50 (25.56 M params, ~102 MB fp32 gradients)."""
    return build_resnet(_RESNET50_STAGES, name="resnet50", n_classes=n_classes)
