"""A sequential network with flat-gradient access for the allreduce path."""

from __future__ import annotations

import numpy as np

from repro.models.nn.layers import Layer
from repro.models.nn.losses import softmax_cross_entropy

__all__ = ["Network"]


class Network:
    """A stack of layers trained with softmax cross-entropy."""

    def __init__(self, layers: list[Layer]):
        if not layers:
            raise ValueError("network needs at least one layer")
        self.layers = layers

    # -- parameter plumbing -------------------------------------------------
    @property
    def params(self) -> list[np.ndarray]:
        return [p for layer in self.layers for p in layer.params]

    @property
    def grads(self) -> list[np.ndarray]:
        return [g for layer in self.layers for g in layer.grads]

    @property
    def n_params(self) -> int:
        return sum(p.size for p in self.params)

    def zero_grads(self) -> None:
        for layer in self.layers:
            layer.zero_grads()

    def get_flat_params(self) -> np.ndarray:
        """All parameters concatenated into one vector (a copy)."""
        return np.concatenate([p.ravel() for p in self.params])

    def set_flat_params(self, flat: np.ndarray) -> None:
        if flat.shape != (self.n_params,):
            raise ValueError(f"expected {self.n_params} values, got {flat.shape}")
        offset = 0
        for p in self.params:
            p[...] = flat[offset : offset + p.size].reshape(p.shape)
            offset += p.size

    def get_flat_grads(self) -> np.ndarray:
        """All gradients concatenated into one vector (a copy).

        This is exactly the buffer the data-parallel allreduce sums.
        """
        return np.concatenate([g.ravel() for g in self.grads])

    def set_flat_grads(self, flat: np.ndarray) -> None:
        if flat.shape != (self.n_params,):
            raise ValueError(f"expected {self.n_params} values, got {flat.shape}")
        offset = 0
        for g in self.grads:
            g[...] = flat[offset : offset + g.size].reshape(g.shape)
            offset += g.size

    # -- compute ---------------------------------------------------------------
    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, train=train)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def loss_and_grad(
        self, x: np.ndarray, labels: np.ndarray
    ) -> tuple[float, np.ndarray]:
        """Zero grads, run forward+backward, return (loss, flat grads)."""
        self.zero_grads()
        logits = self.forward(x, train=True)
        loss, dlogits = softmax_cross_entropy(logits, labels)
        self.backward(dlogits)
        return loss, self.get_flat_grads()

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class ids for a batch (inference mode)."""
        return np.argmax(self.forward(x, train=False), axis=1)

    def accuracy(self, x: np.ndarray, labels: np.ndarray) -> float:
        """Top-1 accuracy on a batch."""
        return float(np.mean(self.predict(x) == labels))
