"""A real (NumPy) neural network for functional training experiments.

This is the executable counterpart of the performance descriptors: small
CNNs/MLPs with exact forward/backward passes, used to *prove* properties of
the distributed algorithm — e.g. that Algorithm 1 (gradient allreduce +
identical SGD updates) is numerically equivalent to serial large-batch SGD —
and to run end-to-end training demos on synthetic data.

All layers are vectorized (im2col convolutions); no autograd framework is
used.
"""

from repro.models.nn.blocks import (
    AvgPool2d,
    Dropout,
    GlobalAvgPool,
    Residual,
    Sequential,
    build_tiny_resnet,
)
from repro.models.nn.layers import (
    BatchNorm,
    Conv2d,
    Dense,
    Flatten,
    Layer,
    MaxPool2d,
    ReLU,
)
from repro.models.nn.losses import softmax_cross_entropy
from repro.models.nn.network import Network
from repro.models.nn.optim import SGD

__all__ = [
    "AvgPool2d",
    "BatchNorm",
    "Conv2d",
    "Dense",
    "Dropout",
    "GlobalAvgPool",
    "Flatten",
    "Layer",
    "MaxPool2d",
    "Network",
    "ReLU",
    "Residual",
    "Sequential",
    "SGD",
    "build_tiny_resnet",
    "softmax_cross_entropy",
]
