"""Neural-net layers with exact forward/backward passes (NumPy).

Conventions: activations are float64 (so distributed-equals-serial tests
can assert tight tolerances), images are NCHW, parameters are exposed as
``layer.params`` / ``layer.grads`` aligned lists of arrays.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Layer", "Dense", "Conv2d", "ReLU", "MaxPool2d", "Flatten", "BatchNorm"]


class Layer:
    """Base class; stateless layers keep ``params == []``."""

    def __init__(self):
        self.params: list[np.ndarray] = []
        self.grads: list[np.ndarray] = []

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Accumulate parameter grads; return gradient w.r.t. the input."""
        raise NotImplementedError

    def zero_grads(self) -> None:
        for g in self.grads:
            g[...] = 0.0


class Dense(Layer):
    """Fully-connected layer ``y = x W + b`` with He-uniform init."""

    def __init__(self, n_in: int, n_out: int, rng: np.random.Generator):
        super().__init__()
        if n_in < 1 or n_out < 1:
            raise ValueError("Dense dimensions must be >= 1")
        bound = np.sqrt(6.0 / n_in)
        self.W = rng.uniform(-bound, bound, size=(n_in, n_out))
        self.b = np.zeros(n_out)
        self.params = [self.W, self.b]
        self.grads = [np.zeros_like(self.W), np.zeros_like(self.b)]
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.W.shape[0]:
            raise ValueError(
                f"Dense expected (*, {self.W.shape[0]}), got {x.shape}"
            )
        self._x = x if train else None
        return x @ self.W + self.b

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward() before forward(train=True)")
        self.grads[0] += self._x.T @ grad_out
        self.grads[1] += grad_out.sum(axis=0)
        return grad_out @ self.W.T


def _im2col(x: np.ndarray, kh: int, kw: int, stride: int, pad: int):
    """(N, C, H, W) -> (N, out_h, out_w, C*kh*kw) patch matrix."""
    n, c, h, w = x.shape
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    out_h = (h + 2 * pad - kh) // stride + 1
    out_w = (w + 2 * pad - kw) // stride + 1
    s0, s1, s2, s3 = x.strides
    patches = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(s0, s1, s2 * stride, s3 * stride, s2, s3),
        writeable=False,
    )
    # -> (N, out_h, out_w, C, kh, kw) -> flatten patch dims
    cols = patches.transpose(0, 2, 3, 1, 4, 5).reshape(n, out_h, out_w, c * kh * kw)
    return cols, out_h, out_w


class Conv2d(Layer):
    """2-D convolution via im2col, stride/pad supported, He init."""

    def __init__(
        self,
        cin: int,
        cout: int,
        kernel: int,
        rng: np.random.Generator,
        *,
        stride: int = 1,
        pad: int | None = None,
    ):
        super().__init__()
        if min(cin, cout, kernel, stride) < 1:
            raise ValueError("Conv2d dimensions must be >= 1")
        self.cin, self.cout, self.kernel = cin, cout, kernel
        self.stride = stride
        self.pad = kernel // 2 if pad is None else pad
        fan_in = cin * kernel * kernel
        std = np.sqrt(2.0 / fan_in)
        self.W = rng.normal(0.0, std, size=(cout, cin, kernel, kernel))
        self.b = np.zeros(cout)
        self.params = [self.W, self.b]
        self.grads = [np.zeros_like(self.W), np.zeros_like(self.b)]
        self._cache = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.cin:
            raise ValueError(f"Conv2d expected (N, {self.cin}, H, W), got {x.shape}")
        cols, out_h, out_w = _im2col(x, self.kernel, self.kernel, self.stride, self.pad)
        w_mat = self.W.reshape(self.cout, -1)  # (cout, cin*k*k)
        out = cols @ w_mat.T + self.b  # (N, oh, ow, cout)
        self._cache = (x.shape, cols) if train else None
        return out.transpose(0, 3, 1, 2)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward() before forward(train=True)")
        x_shape, cols = self._cache
        n, _c, h, w = x_shape
        g = grad_out.transpose(0, 2, 3, 1)  # (N, oh, ow, cout)
        oh, ow = g.shape[1], g.shape[2]
        g_flat = g.reshape(-1, self.cout)
        cols_flat = cols.reshape(-1, cols.shape[-1])
        self.grads[0] += (g_flat.T @ cols_flat).reshape(self.W.shape)
        self.grads[1] += g_flat.sum(axis=0)
        # Gradient to input: scatter patch gradients back (col2im).
        w_mat = self.W.reshape(self.cout, -1)
        dcols = (g_flat @ w_mat).reshape(n, oh, ow, self.cin, self.kernel, self.kernel)
        dx = np.zeros((n, self.cin, h + 2 * self.pad, w + 2 * self.pad))
        for ki in range(self.kernel):
            for kj in range(self.kernel):
                dx[
                    :,
                    :,
                    ki : ki + oh * self.stride : self.stride,
                    kj : kj + ow * self.stride : self.stride,
                ] += dcols[:, :, :, :, ki, kj].transpose(0, 3, 1, 2)
        if self.pad:
            dx = dx[:, :, self.pad : -self.pad or None, self.pad : -self.pad or None]
        return dx


class ReLU(Layer):
    def __init__(self):
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        mask = x > 0
        self._mask = mask if train else None
        return x * mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward() before forward(train=True)")
        return grad_out * self._mask


class MaxPool2d(Layer):
    """Non-overlapping max pooling (kernel == stride)."""

    def __init__(self, kernel: int = 2):
        super().__init__()
        if kernel < 1:
            raise ValueError("kernel must be >= 1")
        self.kernel = kernel
        self._cache = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        n, c, h, w = x.shape
        k = self.kernel
        if h % k or w % k:
            raise ValueError(f"input {h}x{w} not divisible by pool kernel {k}")
        # (n, c, h//k, w//k, k, k): one trailing (k, k) block per output cell.
        blocks = x.reshape(n, c, h // k, k, w // k, k).transpose(0, 1, 2, 4, 3, 5)
        flat = blocks.reshape(n, c, h // k, w // k, k * k)
        out = flat.max(axis=-1)
        if train:
            # argmax breaks ties deterministically (first max in the block).
            self._cache = (x.shape, np.argmax(flat, axis=-1))
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward() before forward(train=True)")
        x_shape, first = self._cache
        n, c, h, w = x_shape
        k = self.kernel
        dx_flat = np.zeros((n, c, h // k, w // k, k * k))
        np.put_along_axis(dx_flat, first[..., None], grad_out[..., None], axis=-1)
        dx = dx_flat.reshape(n, c, h // k, w // k, k, k).transpose(0, 1, 2, 4, 3, 5)
        return dx.reshape(n, c, h, w)


class Flatten(Layer):
    def __init__(self):
        super().__init__()
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward() before forward(train=True)")
        return grad_out.reshape(self._shape)


class BatchNorm(Layer):
    """Batch normalization over the channel axis of NCHW or NF inputs.

    Note: per-worker batch statistics make distributed training *not*
    bitwise-equal to serial large-batch training (true of real frameworks
    too); the equivalence tests use BN-free networks.
    """

    def __init__(self, channels: int, momentum: float = 0.9, eps: float = 1e-5):
        super().__init__()
        if channels < 1:
            raise ValueError("channels must be >= 1")
        self.gamma = np.ones(channels)
        self.beta = np.zeros(channels)
        self.params = [self.gamma, self.beta]
        self.grads = [np.zeros_like(self.gamma), np.zeros_like(self.beta)]
        self.running_mean = np.zeros(channels)
        self.running_var = np.ones(channels)
        self.momentum = momentum
        self.eps = eps
        self._cache = None

    @staticmethod
    def _axes(x: np.ndarray) -> tuple[int, ...]:
        if x.ndim == 4:
            return (0, 2, 3)
        if x.ndim == 2:
            return (0,)
        raise ValueError(f"BatchNorm expects 2-D or 4-D input, got {x.ndim}-D")

    def _bcast(self, v: np.ndarray, ndim: int) -> np.ndarray:
        return v.reshape(1, -1, 1, 1) if ndim == 4 else v

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        axes = self._axes(x)
        if train:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            self.running_mean = (
                self.momentum * self.running_mean + (1 - self.momentum) * mean
            )
            self.running_var = (
                self.momentum * self.running_var + (1 - self.momentum) * var
            )
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - self._bcast(mean, x.ndim)) * self._bcast(inv_std, x.ndim)
        if train:
            self._cache = (x_hat, inv_std, axes)
        return self._bcast(self.gamma, x.ndim) * x_hat + self._bcast(self.beta, x.ndim)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward() before forward(train=True)")
        x_hat, inv_std, axes = self._cache
        m = np.prod([grad_out.shape[a] for a in axes])
        self.grads[0] += (grad_out * x_hat).sum(axis=axes)
        self.grads[1] += grad_out.sum(axis=axes)
        g = grad_out * self._bcast(self.gamma, grad_out.ndim)
        term1 = g
        term2 = self._bcast(g.sum(axis=axes) / m, grad_out.ndim)
        term3 = x_hat * self._bcast((g * x_hat).sum(axis=axes) / m, grad_out.ndim)
        return (term1 - term2 - term3) * self._bcast(inv_std, grad_out.ndim)
