"""Composite layers: residual blocks, average pooling, dropout.

ResNet-50 is the paper's headline workload; these blocks let the
*functional* NumPy substrate train genuinely residual networks (skip
connections, global pooling) rather than plain stacks, so the
distributed-equals-serial guarantees are exercised on the same
architecture family the paper runs.
"""

from __future__ import annotations

import numpy as np

from repro.models.nn.layers import Conv2d, Layer, ReLU

__all__ = ["AvgPool2d", "GlobalAvgPool", "Dropout", "Residual", "Sequential"]


class AvgPool2d(Layer):
    """Non-overlapping average pooling (kernel == stride)."""

    def __init__(self, kernel: int = 2):
        super().__init__()
        if kernel < 1:
            raise ValueError("kernel must be >= 1")
        self.kernel = kernel
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        n, c, h, w = x.shape
        k = self.kernel
        if h % k or w % k:
            raise ValueError(f"input {h}x{w} not divisible by pool kernel {k}")
        self._shape = x.shape
        return x.reshape(n, c, h // k, k, w // k, k).mean(axis=(3, 5))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward() before forward(train=True)")
        n, c, h, w = self._shape
        k = self.kernel
        g = grad_out[:, :, :, None, :, None] / (k * k)
        return np.broadcast_to(
            g, (n, c, h // k, k, w // k, k)
        ).reshape(n, c, h, w)


class GlobalAvgPool(Layer):
    """Average over all spatial positions: (N, C, H, W) -> (N, C)."""

    def __init__(self):
        super().__init__()
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError(f"expected NCHW input, got {x.shape}")
        self._shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward() before forward(train=True)")
        n, c, h, w = self._shape
        return np.broadcast_to(
            grad_out[:, :, None, None] / (h * w), (n, c, h, w)
        ).copy()


class Dropout(Layer):
    """Inverted dropout; identity at inference.

    The mask RNG is owned by the layer and seeded at construction, so runs
    are reproducible; note that dropout makes *distributed* training differ
    from serial unless every replica processes the same slice, which is why
    the equivalence tests use dropout-free networks (true of real
    frameworks as well).
    """

    def __init__(self, p: float, rng: np.random.Generator):
        super().__init__()
        if not 0 <= p < 1:
            raise ValueError(f"drop probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        if not train or self.p == 0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask


class Sequential(Layer):
    """A sub-stack usable as a single layer (for residual branches)."""

    def __init__(self, layers: list[Layer]):
        super().__init__()
        if not layers:
            raise ValueError("Sequential needs at least one layer")
        self.layers = layers
        self.params = [p for l in layers for p in l.params]
        self.grads = [g for l in layers for g in l.grads]

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, train=train)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def zero_grads(self) -> None:
        for layer in self.layers:
            layer.zero_grads()


class Residual(Layer):
    """``y = relu(branch(x) + shortcut(x))`` — the ResNet building block.

    ``shortcut`` defaults to identity; pass a 1x1 conv stack when the
    branch changes shape (the descriptor family's "downsample").
    """

    def __init__(self, branch: Layer, shortcut: Layer | None = None):
        super().__init__()
        self.branch = branch
        self.shortcut = shortcut
        self._relu = ReLU()
        self.params = list(branch.params) + (
            list(shortcut.params) if shortcut else []
        )
        self.grads = list(branch.grads) + (
            list(shortcut.grads) if shortcut else []
        )

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        main = self.branch.forward(x, train=train)
        skip = self.shortcut.forward(x, train=train) if self.shortcut else x
        if main.shape != skip.shape:
            raise ValueError(
                f"branch output {main.shape} does not match shortcut {skip.shape}"
            )
        return self._relu.forward(main + skip, train=train)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        g = self._relu.backward(grad_out)
        g_main = self.branch.backward(g)
        g_skip = self.shortcut.backward(g) if self.shortcut else g
        return g_main + g_skip

    def zero_grads(self) -> None:
        self.branch.zero_grads()
        if self.shortcut:
            self.shortcut.zero_grads()


def build_tiny_resnet(
    rng: np.random.Generator,
    *,
    n_classes: int = 4,
    channels: int = 8,
    in_channels: int = 3,
    input_size: int = 8,
):
    """A small but genuinely residual CNN for functional experiments.

    stem conv -> residual block -> strided residual block (1x1 shortcut)
    -> global average pool -> classifier, mirroring the descriptor
    family's structure at test scale.
    """
    from repro.models.nn.layers import Dense
    from repro.models.nn.network import Network

    def conv_relu(cin, cout, stride=1):
        return Sequential(
            [Conv2d(cin, cout, 3, rng, stride=stride, pad=1), ReLU()]
        )

    block1 = Residual(
        Sequential(
            [
                Conv2d(channels, channels, 3, rng, pad=1),
                ReLU(),
                Conv2d(channels, channels, 3, rng, pad=1),
            ]
        )
    )
    block2 = Residual(
        Sequential(
            [
                Conv2d(channels, 2 * channels, 3, rng, stride=2, pad=1),
                ReLU(),
                Conv2d(2 * channels, 2 * channels, 3, rng, pad=1),
            ]
        ),
        shortcut=Conv2d(channels, 2 * channels, 1, rng, stride=2, pad=0),
    )
    return Network(
        [
            conv_relu(in_channels, channels),
            block1,
            block2,
            GlobalAvgPool(),
            Dense(2 * channels, n_classes, rng),
        ]
    )
