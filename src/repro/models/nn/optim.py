"""SGD with momentum and weight decay, applied to flat gradients.

Matches the update the paper's Torch trainer performs on every GPU after
the broadcast of globally-summed gradients:

    v <- mu * v + g + wd * w
    w <- w - lr * v

(heavy-ball momentum with L2 regularization folded into the gradient, the
fb.resnet.torch convention).
"""

from __future__ import annotations

import numpy as np

from repro.models.nn.network import Network

__all__ = ["SGD"]


class SGD:
    """Momentum SGD over a :class:`Network`'s flat parameter vector."""

    def __init__(
        self,
        network: Network,
        lr: float = 0.1,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ):
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not 0 <= momentum < 1:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be >= 0, got {weight_decay}")
        self.network = network
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = np.zeros(network.n_params)

    def step(self, flat_grads: np.ndarray | None = None) -> None:
        """Apply one update; uses the network's own grads if none given."""
        g = flat_grads if flat_grads is not None else self.network.get_flat_grads()
        if g.shape != self._velocity.shape:
            raise ValueError(f"gradient shape {g.shape} != {self._velocity.shape}")
        w = self.network.get_flat_params()
        if self.weight_decay:
            g = g + self.weight_decay * w
        self._velocity = self.momentum * self._velocity + g
        self.network.set_flat_params(w - self.lr * self._velocity)

    def state_dict(self) -> dict:
        return {
            "lr": self.lr,
            "momentum": self.momentum,
            "weight_decay": self.weight_decay,
            "velocity": self._velocity.copy(),
        }

    def load_state_dict(self, state: dict) -> None:
        self.lr = state["lr"]
        self.momentum = state["momentum"]
        self.weight_decay = state["weight_decay"]
        self._velocity = state["velocity"].copy()
