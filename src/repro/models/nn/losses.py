"""Loss functions (the "criterion" in Torch terminology)."""

from __future__ import annotations

import numpy as np

__all__ = ["softmax_cross_entropy"]


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean softmax cross-entropy and its gradient w.r.t. the logits.

    ``labels`` are integer class ids.  The gradient is already divided by
    the batch size, so summing worker gradients weighted by worker batch
    fractions reproduces the full-batch gradient (the invariant Algorithm 1
    relies on).
    """
    if logits.ndim != 2:
        raise ValueError(f"logits must be (batch, classes), got {logits.shape}")
    if labels.shape != (logits.shape[0],):
        raise ValueError(
            f"labels shape {labels.shape} does not match batch {logits.shape[0]}"
        )
    n, c = logits.shape
    if labels.min() < 0 or labels.max() >= c:
        raise ValueError("label id out of range")
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=1, keepdims=True)
    nll = -np.log(np.clip(probs[np.arange(n), labels], 1e-300, None))
    loss = float(nll.mean())
    grad = probs.copy()
    grad[np.arange(n), labels] -= 1.0
    return loss, grad / n
