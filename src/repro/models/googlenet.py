"""GoogleNet-BN (BN-Inception) descriptor, Ioffe & Szegedy 2015.

The paper trains "the batch-normalized GoogleNet available in the
open-source Torch packages" (§5).  This builder follows the BN-Inception
architecture table: a 7x7/2 + 3x3 stem, inception blocks 3a-3c, 4a-4e and
5a-5b (the stride-2 blocks 3c/4e use pass-through max pooling), global
average pooling and a 1000-way classifier, plus the training-time auxiliary
classifier tower attached after 4d.

Note on gradient payload: §5.1 quotes a 93 MB reduction payload for
GoogleNetBN.  A faithful BN-Inception has ~14 M parameters (~57 MB fp32
including the aux tower); the Torch package the authors used evidently
carried additional classifier weights.  Experiments that reproduce
Figures 5-6 therefore use the paper's quoted 93 MB payload explicitly
(see ``repro.core.calibration.GOOGLENET_PAPER_PAYLOAD``), while this
descriptor reports its true architectural cost.
"""

from __future__ import annotations

from repro.models.descriptors import (
    ModelDescriptor,
    batch_norm,
    conv2d,
    dense,
    pool,
)

__all__ = ["build_googlenet_bn"]

# Inception block table: (name, 1x1, 3x3red, 3x3, d3x3red, d3x3a, d3x3b,
#                         pool_proj, stride)
# pool_proj == 0 with stride 2 means pass-through max pool (3c, 4e).
_BLOCKS = [
    ("3a", 64, 64, 64, 64, 96, 96, 32, 1),
    ("3b", 64, 64, 96, 64, 96, 96, 64, 1),
    ("3c", 0, 128, 160, 64, 96, 96, 0, 2),
    ("4a", 224, 64, 96, 96, 128, 128, 128, 1),
    ("4b", 192, 96, 128, 96, 128, 128, 128, 1),
    ("4c", 160, 128, 160, 128, 160, 160, 96, 1),
    ("4d", 96, 128, 192, 160, 192, 192, 96, 1),
    ("4e", 0, 128, 192, 192, 256, 256, 0, 2),
    ("5a", 352, 192, 320, 160, 224, 224, 128, 1),
    ("5b", 352, 192, 320, 192, 224, 224, 128, 1),
]


def _conv_bn(model, name, cin, cout, k, h, w):
    model.add(conv2d(name, cin, cout, k, h, w))
    model.add(batch_norm(f"{name}.bn", cout, h, w))


def _inception(model: ModelDescriptor, name: str, cin: int, cfg, h: int, w: int):
    """Append one inception block; returns (cout, h_out, w_out)."""
    _nm, b1, b3r, b3, bd3r, bd3a, bd3b, pp, stride = cfg
    h_out, w_out = h // stride, w // stride
    cout = 0
    if b1:
        _conv_bn(model, f"{name}.1x1", cin, b1, 1, h_out, w_out)
        cout += b1
    _conv_bn(model, f"{name}.3x3_reduce", cin, b3r, 1, h, w)
    _conv_bn(model, f"{name}.3x3", b3r, b3, 3, h_out, w_out)
    cout += b3
    _conv_bn(model, f"{name}.d3x3_reduce", cin, bd3r, 1, h, w)
    _conv_bn(model, f"{name}.d3x3_a", bd3r, bd3a, 3, h, w)
    _conv_bn(model, f"{name}.d3x3_b", bd3a, bd3b, 3, h_out, w_out)
    cout += bd3b
    model.add(pool(f"{name}.pool", cin, h_out, w_out, 3))
    if pp:
        _conv_bn(model, f"{name}.pool_proj", cin, pp, 1, h_out, w_out)
        cout += pp
    else:
        cout += cin  # stride-2 pass-through branch
    return cout, h_out, w_out


def build_googlenet_bn(
    n_classes: int = 1000, *, aux_head: bool = True
) -> ModelDescriptor:
    """The paper's GoogleNetBN; ``aux_head`` adds the training-time tower."""
    model = ModelDescriptor(name="googlenet_bn", input_shape=(3, 224, 224))
    h = w = 112
    _conv_bn(model, "stem.conv1", 3, 64, 7, h, w)
    h = w = 56
    model.add(pool("stem.pool1", 64, h, w, 3))
    _conv_bn(model, "stem.conv2_reduce", 64, 64, 1, h, w)
    _conv_bn(model, "stem.conv2", 64, 192, 3, h, w)
    h = w = 28
    model.add(pool("stem.pool2", 192, h, w, 3))

    cin = 192
    for cfg in _BLOCKS:
        name = f"inception_{cfg[0]}"
        cin, h, w = _inception(model, name, cin, cfg, h, w)
        if cfg[0] == "4d" and aux_head:
            # Auxiliary classifier: 5x5/3 avg pool -> 1x1 conv 128 -> fc.
            model.add(pool("aux.pool", cin, 4, 4, 5))
            _conv_bn(model, "aux.conv", cin, 128, 1, 4, 4)
            model.add(dense("aux.fc1", 128 * 4 * 4, 768))
            model.add(dense("aux.fc2", 768, n_classes))

    model.add(pool("avgpool", cin, 1, 1, h))
    model.add(dense("fc", cin, n_classes))
    return model
