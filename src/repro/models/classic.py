"""AlexNet and VGG-16 descriptors.

AlexNet is needed for the Table 2 comparison row (You et al. train AlexNet
on 512 KNL nodes); VGG-16 is included as the communication-heavy extreme
(~528 MB of gradients) for the batch-size/comm-ratio ablations.
"""

from __future__ import annotations

from repro.models.descriptors import ModelDescriptor, conv2d, dense, pool

__all__ = ["build_alexnet", "build_vgg16"]


def build_alexnet(n_classes: int = 1000) -> ModelDescriptor:
    """AlexNet (single-tower variant, Krizhevsky 2014 'one weird trick')."""
    m = ModelDescriptor(name="alexnet", input_shape=(3, 227, 227))
    m.add(conv2d("conv1", 3, 64, 11, 55, 55, bias=True))
    m.add(pool("pool1", 64, 27, 27, 3))
    m.add(conv2d("conv2", 64, 192, 5, 27, 27, bias=True))
    m.add(pool("pool2", 192, 13, 13, 3))
    m.add(conv2d("conv3", 192, 384, 3, 13, 13, bias=True))
    m.add(conv2d("conv4", 384, 256, 3, 13, 13, bias=True))
    m.add(conv2d("conv5", 256, 256, 3, 13, 13, bias=True))
    m.add(pool("pool5", 256, 6, 6, 3))
    m.add(dense("fc6", 256 * 6 * 6, 4096))
    m.add(dense("fc7", 4096, 4096))
    m.add(dense("fc8", 4096, n_classes))
    return m


_VGG16_CFG = [
    (64, 2, 224),
    (128, 2, 112),
    (256, 3, 56),
    (512, 3, 28),
    (512, 3, 14),
]


def build_vgg16(n_classes: int = 1000) -> ModelDescriptor:
    """VGG-16 (Simonyan & Zisserman configuration D)."""
    m = ModelDescriptor(name="vgg16", input_shape=(3, 224, 224))
    cin = 3
    for stage, (width, n_convs, size) in enumerate(_VGG16_CFG, start=1):
        for i in range(n_convs):
            m.add(
                conv2d(f"conv{stage}_{i + 1}", cin, width, 3, size, size, bias=True)
            )
            cin = width
        m.add(pool(f"pool{stage}", width, size // 2, size // 2, 2))
    m.add(dense("fc6", 512 * 7 * 7, 4096))
    m.add(dense("fc7", 4096, 4096))
    m.add(dense("fc8", 4096, n_classes))
    return m
