"""Deterministic discrete-event simulation engine.

A minimal SimPy-style kernel: an :class:`Engine` owns a priority queue of
timestamped events; :class:`Process` objects are Python generators that yield
events (timeouts, other processes, resource requests) and are resumed when
those events trigger.  Everything in the cluster/network/training simulators
is built on this substrate.

Determinism: ties in the event queue are broken by insertion order, so a
simulation with the same inputs always produces the same trace.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Engine,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.resources import PriorityResource, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Engine",
    "Event",
    "Interrupt",
    "Process",
    "PriorityResource",
    "Resource",
    "SimulationError",
    "Store",
    "Timeout",
]
