"""Shared-resource primitives for the event engine.

* :class:`Resource` — a counted resource (e.g. a GPU, a disk head, a host
  thread slot).  Processes ``request()`` a slot, yield the returned event,
  and must ``release()`` when done.
* :class:`PriorityResource` — same, with lower-priority-number-first grants.
* :class:`Store` — an unbounded-or-bounded FIFO of Python objects (used for
  work queues such as the Torch "donkey" mini-batch queue).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any

from repro.sim.engine import Engine, Event, SimulationError

__all__ = ["Resource", "PriorityResource", "Store"]


class Resource:
    """A resource with ``capacity`` identical slots, FIFO grant order."""

    def __init__(self, engine: Engine, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def request(self) -> Event:
        """Return an event that triggers when a slot is granted."""
        ev = self.engine.event()
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed(self)
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Free one slot; grants the longest-waiting request if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release() on idle resource {self.name!r}")
        if self._waiters:
            ev = self._waiters.popleft()
            ev.succeed(self)
        else:
            self._in_use -= 1

    def cancel(self, request_event: Event) -> None:
        """Withdraw a pending request, or release a granted-but-unused slot.

        Needed when the requesting process is interrupted: a request left
        in the waiter queue would be granted to a dead process later and
        leak the slot for good (deadlocking every other user).
        """
        if request_event.triggered:
            self.release()
            return
        try:
            self._waiters.remove(request_event)
        except ValueError:
            pass

    def use(self, duration: float):
        """Generator helper: acquire, hold for ``duration``, release.

        Interrupt-safe: an exception thrown in while waiting for the grant
        withdraws the request; one thrown in while holding releases the
        slot — either way no capacity is leaked.
        """
        req = self.request()
        try:
            yield req
        except BaseException:
            self.cancel(req)
            raise
        try:
            yield self.engine.timeout(duration)
        finally:
            self.release()


class PriorityResource(Resource):
    """A resource whose waiters are granted lowest-priority-number first."""

    def __init__(self, engine: Engine, capacity: int = 1, name: str = ""):
        super().__init__(engine, capacity, name)
        self._prio_waiters: list[tuple[int, int, Event]] = []
        self._seq = 0

    def request(self, priority: int = 0) -> Event:  # type: ignore[override]
        ev = self.engine.event()
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed(self)
        else:
            self._seq += 1
            self._prio_waiters.append((priority, self._seq, ev))
            self._prio_waiters.sort(key=lambda t: (t[0], t[1]))
        return ev

    def release(self) -> None:  # type: ignore[override]
        if self._in_use <= 0:
            raise SimulationError(f"release() on idle resource {self.name!r}")
        if self._prio_waiters:
            _prio, _seq, ev = self._prio_waiters.pop(0)
            ev.succeed(self)
        else:
            self._in_use -= 1

    def cancel(self, request_event: Event) -> None:  # type: ignore[override]
        if request_event.triggered:
            self.release()
            return
        self._prio_waiters = [
            t for t in self._prio_waiters if t[2] is not request_event
        ]


class Store:
    """A FIFO buffer of items with optional capacity bound.

    ``put`` returns an event that triggers when the item is accepted;
    ``get`` returns an event that triggers with the next item.
    """

    def __init__(self, engine: Engine, capacity: float = math.inf, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple[Any, ...]:
        return tuple(self._items)

    def put(self, item: Any) -> Event:
        ev = self.engine.event()
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
            ev.succeed(item)
        elif len(self._items) < self.capacity:
            self._items.append(item)
            ev.succeed(item)
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        ev = self.engine.event()
        if self._items:
            item = self._items.popleft()
            ev.succeed(item)
            if self._putters:
                put_ev, put_item = self._putters.popleft()
                self._items.append(put_item)
                put_ev.succeed(put_item)
        else:
            self._getters.append(ev)
        return ev
