"""Event tracing: record named spans on simulation timelines.

A :class:`Tracer` collects ``(track, name, start, end)`` spans from
anywhere in a simulation (collectives, storage reads, GPU steps) and can
render them as an ASCII timeline — the tool used to *see* why the baseline
DataParallelTable serializes and how the multi-color pipeline overlaps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.engine import Engine

__all__ = ["Span", "Tracer"]


@dataclass(frozen=True)
class Span:
    """A named interval on a track."""

    track: str
    name: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Tracer:
    """Collects spans; attach one per simulation."""

    engine: Engine
    spans: list[Span] = field(default_factory=list)
    enabled: bool = True

    def record(self, track: str, name: str, start: float, end: float) -> None:
        if not self.enabled:
            return
        if end < start:
            raise ValueError(f"span {name!r} ends before it starts")
        self.spans.append(Span(track, name, start, end))

    def span(self, track: str, name: str):
        """Context manager capturing ``engine.now`` at enter/exit.

        Works inside process generators::

            with tracer.span("gpu0", "fwd"):
                yield engine.timeout(0.3)    # NOT supported - see below

        Note: generators cannot yield inside a ``with`` across suspension
        reliably for timing; prefer :meth:`record` with explicit times, or
        use :meth:`timed` to wrap a process.
        """
        return _SpanContext(self, track, name)

    def timed(self, track: str, name: str, generator):
        """Wrap a process generator, recording its full lifetime as a span."""
        start = self.engine.now

        def wrapper():
            result = yield from generator
            self.record(track, name, start, self.engine.now)
            return result

        return wrapper()

    # -- queries -----------------------------------------------------------
    def tracks(self) -> list[str]:
        seen: dict[str, None] = {}
        for s in self.spans:
            seen.setdefault(s.track)
        return list(seen)

    def busy_time(self, track: str) -> float:
        """Total (possibly overlapping) span time on a track."""
        return sum(s.duration for s in self.spans if s.track == track)

    def utilization(self, track: str, horizon: float | None = None) -> float:
        """Union-of-spans busy fraction over the horizon (default: now)."""
        end_time = horizon if horizon is not None else self.engine.now
        if end_time <= 0:
            return 0.0
        intervals = sorted(
            (s.start, s.end) for s in self.spans if s.track == track
        )
        busy = 0.0
        cur_start, cur_end = None, None
        for start, end in intervals:
            if cur_end is None or start > cur_end:
                if cur_end is not None:
                    busy += cur_end - cur_start
                cur_start, cur_end = start, end
            else:
                cur_end = max(cur_end, end)
        if cur_end is not None:
            busy += cur_end - cur_start
        return min(1.0, busy / end_time)

    # -- rendering ---------------------------------------------------------
    def render(self, width: int = 72) -> str:
        """ASCII timeline: one row per track, '#' where the track is busy."""
        if not self.spans:
            return "(no spans recorded)"
        t_max = max(s.end for s in self.spans)
        t_max = t_max or 1.0
        lines = []
        name_w = max(len(t) for t in self.tracks()) + 1
        for track in self.tracks():
            row = [" "] * width
            for s in self.spans:
                if s.track != track:
                    continue
                lo = int(s.start / t_max * (width - 1))
                hi = max(lo, int(s.end / t_max * (width - 1)))
                for c in range(lo, hi + 1):
                    row[c] = "#"
            lines.append(f"{track.ljust(name_w)}|{''.join(row)}|")
        lines.append(f"{' ' * name_w}0{' ' * (width - 8)}{t_max:.3g}s")
        return "\n".join(lines)


class _SpanContext:
    def __init__(self, tracer: Tracer, track: str, name: str):
        self.tracer = tracer
        self.track = track
        self.name = name
        self._start = 0.0

    def __enter__(self):
        self._start = self.tracer.engine.now
        return self

    def __exit__(self, *exc):
        self.tracer.record(self.track, self.name, self._start, self.tracer.engine.now)
