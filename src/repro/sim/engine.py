"""Core discrete-event engine: events, processes and the scheduler loop.

Design notes
------------
* Time is a ``float`` in seconds.  The engine never advances past an event
  that has not been scheduled, so causality is enforced structurally.
* The event heap is keyed by ``(time, priority, sequence)``; the sequence
  counter makes the engine fully deterministic (FIFO among equal-time,
  equal-priority events).
* A :class:`Process` wraps a generator.  Yielding an :class:`Event` suspends
  the process until the event triggers; the event's value becomes the result
  of the ``yield`` expression.  A process is itself an event that triggers
  when the generator returns, carrying the generator's return value.
* Failures propagate: if a yielded event *fails* (``event.fail(exc)``), the
  exception is thrown into the waiting generator, which may catch it.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Generator, Iterable
from typing import Any

__all__ = [
    "AllOf",
    "AnyOf",
    "Engine",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
]

# Scheduling priorities: lower runs first at equal timestamps.
URGENT = 0
NORMAL = 1


class SimulationError(RuntimeError):
    """Raised for structural errors in the simulation (not model failures)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence with callbacks and an optional value.

    Lifecycle: *pending* -> ``succeed``/``fail`` (becomes *triggered*) ->
    processed by the engine loop (callbacks run, becomes *processed*).
    """

    __slots__ = ("engine", "callbacks", "_value", "_ok", "_scheduled", "_defused")

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self.callbacks: list[Callable[[Event], None]] | None = []
        self._value: Any = None
        self._ok: bool | None = None
        self._scheduled = False
        self._defused = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been succeeded or failed."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """True once callbacks have been run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None, *, delay: float = 0.0) -> "Event":
        """Trigger successfully, scheduling callbacks after ``delay``."""
        self._trigger(True, value, delay)
        return self

    def fail(self, exc: BaseException, *, delay: float = 0.0) -> "Event":
        """Trigger as failed; waiting processes receive ``exc``."""
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() needs an exception, got {exc!r}")
        self._trigger(False, exc, delay)
        return self

    def _trigger(self, ok: bool, value: Any, delay: float) -> None:
        if self._ok is not None:
            raise SimulationError(f"{self!r} has already been triggered")
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._ok = ok
        self._value = value
        self.engine._schedule(self, delay)

    def defuse(self) -> None:
        """Mark a failure as handled so the engine does not crash on it."""
        self._defused = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending" if self._ok is None else ("ok" if self._ok else "failed")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers ``delay`` seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay}")
        super().__init__(engine)
        self.delay = delay
        self._ok = True
        self._value = value
        engine._schedule(self, delay)


class Process(Event):
    """A running generator; also an event that fires when it finishes."""

    __slots__ = ("_generator", "_waiting_on", "name")

    def __init__(
        self,
        engine: "Engine",
        generator: Generator[Event, Any, Any],
        name: str = "",
    ):
        if not hasattr(generator, "throw"):
            raise TypeError(f"process target must be a generator, got {generator!r}")
        super().__init__(engine)
        self._generator = generator
        self._waiting_on: Event | None = None
        self.name = name or getattr(generator, "__name__", "process")
        # Kick off the process at the current simulation time.
        boot = Event(engine)
        boot.callbacks.append(self._resume)
        boot.succeed()

    @property
    def is_alive(self) -> bool:
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        target = self._waiting_on
        if target is not None and self._resume in (target.callbacks or ()):
            target.callbacks.remove(self._resume)
        self._waiting_on = None
        poke = Event(self.engine)
        poke.callbacks.append(
            lambda _ev: self._step(lambda: self._generator.throw(Interrupt(cause)))
        )
        poke.succeed()

    # -- internal ----------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        if event._ok:
            self._step(lambda: self._generator.send(event._value))
        else:
            event._defused = True
            exc = event._value
            self._step(lambda: self._generator.throw(exc))

    def _step(self, advance: Callable[[], Event]) -> None:
        try:
            target = advance()
        except StopIteration as stop:
            super().succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - model code may raise anything
            super().fail(exc)
            return
        if not isinstance(target, Event):
            super().fail(
                SimulationError(
                    f"process {self.name!r} yielded {target!r}; expected an Event"
                )
            )
            return
        if target.engine is not self.engine:
            super().fail(SimulationError("yielded event belongs to another engine"))
            return
        self._waiting_on = target
        if target.callbacks is None:
            # Already processed: resume immediately (at the current time).
            poke = Event(self.engine)
            poke.callbacks.append(lambda _ev: self._resume(target))
            poke.succeed()
        else:
            target.callbacks.append(self._resume)


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("events", "_remaining")

    def __init__(self, engine: "Engine", events: Iterable[Event]):
        super().__init__(engine)
        self.events = list(events)
        for ev in self.events:
            if ev.engine is not engine:
                raise SimulationError("condition mixes events from different engines")
        self._remaining = 0
        for ev in self.events:
            if ev.callbacks is None:
                self._check(ev, immediate=True)
            else:
                self._remaining += 1
                ev.callbacks.append(self._on_child)
        self._finalize_empty()

    def _finalize_empty(self) -> None:
        raise NotImplementedError

    def _on_child(self, event: Event) -> None:
        self._check(event, immediate=False)

    def _check(self, event: Event, *, immediate: bool) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when every child event has triggered; value is a list."""

    __slots__ = ()

    def _finalize_empty(self) -> None:
        if self._remaining == 0 and self._ok is None:
            self.succeed([ev._value for ev in self.events])

    def _check(self, event: Event, *, immediate: bool) -> None:
        if not event._ok:
            event._defused = True
            if self._ok is None:
                self.fail(event._value)
            return
        if not immediate:
            self._remaining -= 1
        if self._remaining == 0 and self._ok is None:
            self.succeed([ev._value for ev in self.events])


class AnyOf(_Condition):
    """Triggers when the first child event triggers; value is that value."""

    __slots__ = ()

    def _finalize_empty(self) -> None:
        if not self.events and self._ok is None:
            self.succeed(None)

    def _check(self, event: Event, *, immediate: bool) -> None:
        if self._ok is not None:
            if not event._ok:
                event._defused = True
            return
        if event._ok:
            self.succeed(event._value)
        else:
            event._defused = True
            self.fail(event._value)


class Engine:
    """The event loop: schedules triggered events and runs their callbacks."""

    def __init__(self):
        self._now = 0.0
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    # -- factories ----------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator[Event, Any, Any], name: str = ""
    ) -> Process:
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        if event._scheduled:
            raise SimulationError(f"{event!r} already scheduled")
        event._scheduled = True
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, priority, self._seq, event))

    # -- running ----------------------------------------------------------
    def step(self) -> None:
        """Process the single next event."""
        if not self._heap:
            raise SimulationError("cannot step: no scheduled events")
        when, _prio, _seq, event = heapq.heappop(self._heap)
        if when < self._now:
            raise SimulationError("event scheduled in the past (engine bug)")
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None
        assert callbacks is not None
        for cb in callbacks:
            cb(event)
        if not event._ok and not event._defused:
            exc = event._value
            raise exc

    def run(self, until: Event | float | None = None) -> Any:
        """Run until ``until`` (an event, an absolute time, or exhaustion).

        Returns the event's value if ``until`` is an event.
        """
        if isinstance(until, Event):
            stop_event = until
            if stop_event.engine is not self:
                raise SimulationError("run(until=...) event from another engine")
            while not stop_event.processed:
                if not self._heap:
                    raise SimulationError(
                        "deadlock: event queue empty but run-until event "
                        f"{stop_event!r} never triggered"
                    )
                self.step()
            if not stop_event.ok:
                raise stop_event._value
            return stop_event._value
        if until is not None:
            horizon = float(until)
            if horizon < self._now:
                raise ValueError(f"until={horizon} is in the past (now={self._now})")
            while self._heap and self._heap[0][0] <= horizon:
                self.step()
            self._now = horizon
            return None
        while self._heap:
            self.step()
        return None

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")
