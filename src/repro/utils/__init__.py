"""Shared utilities: units, deterministic RNG helpers, ASCII rendering."""

from repro.utils.units import (
    KB,
    MB,
    GB,
    KIB,
    MIB,
    GIB,
    Gbps,
    bytes_per_second,
    format_bytes,
    format_duration,
    format_rate,
)
from repro.utils.rng import derive_seed, rng_for

__all__ = [
    "KB",
    "MB",
    "GB",
    "KIB",
    "MIB",
    "GIB",
    "Gbps",
    "bytes_per_second",
    "format_bytes",
    "format_duration",
    "format_rate",
    "derive_seed",
    "rng_for",
]
