"""Shared digest core for data- and compute-plane integrity checks.

Extracted from :mod:`repro.data.integrity` so the compute plane's SDC
defense (:mod:`repro.train.sdc`) and the data plane's record/shuffle
checks share one digest implementation without a ``data`` → ``train``
import cycle.  Everything here is pure Python/NumPy with no simulation
coupling:

* :func:`record_fingerprint` / :func:`multiset_digest` — the splitmix
  scramble and permutation-invariant multiset sum the DIMD shuffle's
  conservation barrier allreduces (one int64 per rank);
* :func:`crc_of_bytes` / :func:`crc_of_ints` — plain CRC32 trailers for
  payloads and control blocks;
* :func:`array_fingerprint` — the bit-level digest of one buffer window
  the SDC guard compares across ranks at the allreduce boundary (a CRC
  of the raw bytes folded through the same scramble, so the data- and
  compute-plane fingerprints are one family).
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = [
    "DIGEST_MOD",
    "array_fingerprint",
    "crc_of_bytes",
    "crc_of_ints",
    "multiset_digest",
    "record_fingerprint",
]

#: Digests live in [0, 2**63) so they always fit a non-negative int64.
DIGEST_MOD = 2**63


def crc_of_bytes(blob: bytes) -> int:
    """CRC32 of a byte string (non-negative, < 2**32)."""
    return zlib.crc32(blob) & 0xFFFFFFFF


def crc_of_ints(values) -> int:
    """CRC32 over an int64 vector's bytes — trailer for control blocks."""
    return zlib.crc32(
        np.ascontiguousarray(values, dtype=np.int64).tobytes()
    ) & 0xFFFFFFFF


def record_fingerprint(crc: int, label: int, length: int) -> int:
    """Order-independent per-record digest contribution.

    Mixes the payload CRC with the label and length (all of which travel
    in the shuffle metadata) through a splitmix-style scramble so that
    swapping bytes *between* records cannot cancel out in the sum.
    """
    x = (
        int(crc) * 0x9E3779B97F4A7C15
        + int(label) * 0xBF58476D1CE4E5B9
        + int(length) * 0x94D049BB133111EB
        + 0x2545F4914F6CDD1D
    ) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 29
    return x % DIGEST_MOD


def multiset_digest(crcs, labels, lengths) -> int:
    """Permutation-invariant digest of a record multiset.

    Summing :func:`record_fingerprint` modulo ``2**63`` makes the digest
    independent of record order and cheap to combine across ranks — the
    conservation barrier allreduces one int64 per rank.
    """
    total = 0
    for crc, label, length in zip(crcs, labels, lengths):
        total += record_fingerprint(crc, label, length)
    return total % DIGEST_MOD


def array_fingerprint(array, label: int = 0) -> int:
    """Bit-level digest of one buffer window (order-sensitive).

    A CRC32 of the window's raw bytes folded through the same splitmix
    scramble as :func:`record_fingerprint`, with the window's byte count
    as the length term — equal arrays (bit-for-bit) digest equal, any
    single flipped bit digests different.  The compute-plane SDC guard
    exchanges these per gradient bucket at the allreduce boundary.
    """
    a = np.ascontiguousarray(array)
    return record_fingerprint(crc_of_bytes(a.tobytes()), label, a.nbytes)
