"""Plain-text rendering of tables and line charts.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep the formatting consistent and dependency-free (no matplotlib in
the offline environment).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["render_table", "render_series"]


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    ``rows`` cells are converted with ``str``; numeric alignment is applied
    to cells that parse as floats.
    """
    str_rows = [[_fmt_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str], pad: str = " ") -> str:
        return "| " + " | ".join(c.rjust(w, pad) for c, w in zip(cells, widths)) + " |"

    sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    out: list[str] = []
    if title:
        out.append(title)
    out.append(sep)
    out.append(line(list(headers)))
    out.append(sep)
    for row in str_rows:
        out.append(line(row))
    out.append(sep)
    return "\n".join(out)


def _fmt_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4g}"
    return str(value)


def render_series(
    x: Sequence[float],
    series: dict[str, Sequence[float]],
    *,
    width: int = 72,
    height: int = 18,
    title: str | None = None,
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Render one or more line series as an ASCII scatter chart.

    Each series gets a distinct marker character.  Intended for eyeballing
    figure shapes (monotonicity, crossovers) in terminal output.
    """
    markers = "*o+x#@%&"
    xs = [float(v) for v in x]
    all_y = [float(v) for ys in series.values() for v in ys]
    if not xs or not all_y:
        return "(empty chart)"
    xmin, xmax = min(xs), max(xs)
    ymin, ymax = min(all_y), max(all_y)
    if xmax == xmin:
        xmax = xmin + 1.0
    if ymax == ymin:
        ymax = ymin + 1.0

    grid = [[" "] * width for _ in range(height)]
    for si, (name, ys) in enumerate(series.items()):
        marker = markers[si % len(markers)]
        for xv, yv in zip(xs, ys):
            col = int(round((xv - xmin) / (xmax - xmin) * (width - 1)))
            row = int(round((float(yv) - ymin) / (ymax - ymin) * (height - 1)))
            grid[height - 1 - row][col] = marker

    out: list[str] = []
    if title:
        out.append(title)
    out.append(f"{ymax:.3g} ".rjust(10) + "+" + "-" * width + "+")
    for row in grid:
        out.append(" " * 10 + "|" + "".join(row) + "|")
    out.append(f"{ymin:.3g} ".rjust(10) + "+" + "-" * width + "+")
    footer = f"{xmin:.3g}".ljust(width // 2) + f"{xmax:.3g}".rjust(width // 2)
    out.append(" " * 11 + footer)
    if xlabel or ylabel:
        out.append(" " * 11 + f"x: {xlabel}   y: {ylabel}")
    legend = "   ".join(
        f"{markers[i % len(markers)]} {name}" for i, name in enumerate(series)
    )
    out.append(" " * 11 + legend)
    return "\n".join(out)
