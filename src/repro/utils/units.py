"""Unit constants and human-readable formatting helpers.

The simulator works in SI base units throughout: bytes, seconds, and
bytes/second.  Network hardware is usually quoted in Gbit/s while payloads
are quoted in MiB; these helpers keep the conversions in one place so the
rest of the codebase never multiplies by a bare ``1e9 / 8``.
"""

from __future__ import annotations

__all__ = [
    "KB", "MB", "GB", "TB", "KIB", "MIB", "GIB", "TIB",
    "Gbps", "bytes_per_second", "format_bytes", "format_duration", "format_rate",
]

# Decimal byte units (storage vendors, network payload sizes).
KB: int = 1000
MB: int = 1000**2
GB: int = 1000**3
TB: int = 1000**4

# Binary byte units (memory, buffer sizes).
KIB: int = 1024
MIB: int = 1024**2
GIB: int = 1024**3
TIB: int = 1024**4


def Gbps(gigabits: float) -> float:
    """Convert a link rate in gigabits/second to bytes/second.

    >>> Gbps(100)
    12500000000.0
    """
    return gigabits * 1e9 / 8.0


def bytes_per_second(nbytes: float, seconds: float) -> float:
    """Average throughput of ``nbytes`` moved in ``seconds`` (B/s)."""
    if seconds <= 0:
        raise ValueError(f"seconds must be positive, got {seconds}")
    return nbytes / seconds


def format_bytes(nbytes: float) -> str:
    """Render a byte count using binary units, e.g. ``93.1 MiB``."""
    sign = "-" if nbytes < 0 else ""
    n = abs(float(nbytes))
    for unit, label in ((TIB, "TiB"), (GIB, "GiB"), (MIB, "MiB"), (KIB, "KiB")):
        if n >= unit:
            return f"{sign}{n / unit:.1f} {label}"
    return f"{sign}{n:.0f} B"


def format_duration(seconds: float) -> str:
    """Render a duration compactly, e.g. ``48m00s``, ``4.2s``, ``310us``."""
    sign = "-" if seconds < 0 else ""
    s = abs(float(seconds))
    if s >= 3600:
        hours = int(s // 3600)
        minutes = int((s % 3600) // 60)
        return f"{sign}{hours}h{minutes:02d}m"
    if s >= 60:
        minutes = int(s // 60)
        rem = s % 60
        return f"{sign}{minutes}m{rem:02.0f}s"
    if s >= 1:
        return f"{sign}{s:.1f}s"
    if s >= 1e-3:
        return f"{sign}{s * 1e3:.1f}ms"
    if s >= 1e-6:
        return f"{sign}{s * 1e6:.0f}us"
    return f"{sign}{s * 1e9:.0f}ns"


def format_rate(bytes_per_sec: float) -> str:
    """Render a throughput, e.g. ``11.6 GB/s``."""
    n = float(bytes_per_sec)
    for unit, label in ((GB, "GB/s"), (MB, "MB/s"), (KB, "KB/s")):
        if abs(n) >= unit:
            return f"{n / unit:.1f} {label}"
    return f"{n:.0f} B/s"
