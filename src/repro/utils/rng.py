"""Deterministic random-number helpers.

Every stochastic component in the reproduction (sampling mini-batches,
shuffles, synthetic datasets, accuracy noise) derives its generator from a
root seed plus a string purpose tag, so that (a) experiments are exactly
repeatable, and (b) two components never share a stream by accident.  This
mirrors the paper's setup where "each learner randomly samples ... using a
different random number seed".
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "rng_for"]


def derive_seed(root_seed: int, *tags: object) -> int:
    """Derive a 63-bit child seed from ``root_seed`` and a tag tuple.

    The derivation is a SHA-256 hash of the textual representation, which is
    stable across processes and Python versions (unlike ``hash()``).
    """
    text = repr((int(root_seed),) + tuple(str(t) for t in tags))
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & (2**63 - 1)


def rng_for(root_seed: int, *tags: object) -> np.random.Generator:
    """A :class:`numpy.random.Generator` keyed by ``(root_seed, *tags)``."""
    return np.random.default_rng(derive_seed(root_seed, *tags))
