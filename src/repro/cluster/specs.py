"""Hardware specification dataclasses and the paper's testbed constants.

Numbers are public datasheet values where available (P100, POWER8 Minsky,
KNL); behavioural efficiencies (cuDNN utilization, filesystem randomness
penalties) live in :mod:`repro.core.calibration` where they are pinned to
the paper's measured baselines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.params import CONNECTX5_DUAL, NetworkParams
from repro.utils.units import GB, GIB, MB

__all__ = [
    "GPUSpec",
    "NodeSpec",
    "StorageSpec",
    "ClusterSpec",
    "P100",
    "V100",
    "MINSKY_NODE",
    "KNL_NODE",
    "NFS_STORAGE",
    "FLASH_STORAGE",
    "LOCAL_MEMORY",
]


@dataclass(frozen=True)
class GPUSpec:
    """An accelerator's raw capabilities."""

    name: str
    fp32_tflops: float            # peak single-precision throughput
    memory_bytes: float           # device memory
    mem_bandwidth: float          # device memory bandwidth (B/s)
    kernel_overhead: float = 6e-6  # per-kernel launch cost (seconds)

    def __post_init__(self) -> None:
        if self.fp32_tflops <= 0 or self.memory_bytes <= 0 or self.mem_bandwidth <= 0:
            raise ValueError(f"GPUSpec {self.name}: capabilities must be positive")


@dataclass(frozen=True)
class NodeSpec:
    """One compute node (learner)."""

    name: str
    gpu: GPUSpec
    n_gpus: int
    cpu_cores: int
    host_memory_bytes: float
    h2d_bandwidth: float          # host -> device copy rate per GPU (B/s)
    nvlink_bandwidth: float       # GPU <-> GPU peer rate (B/s)
    host_reduce_bandwidth: float  # CPU vectorized summing rate (B/s)

    def __post_init__(self) -> None:
        if self.n_gpus < 1:
            raise ValueError("n_gpus must be >= 1")
        if min(
            self.host_memory_bytes,
            self.h2d_bandwidth,
            self.nvlink_bandwidth,
            self.host_reduce_bandwidth,
        ) <= 0:
            raise ValueError(f"NodeSpec {self.name}: rates must be positive")


@dataclass(frozen=True)
class StorageSpec:
    """A storage tier as seen by one node."""

    name: str
    sequential_bandwidth: float   # B/s for streaming reads
    random_iops: float            # random-read operations per second
    latency: float = 0.0          # fixed per-request latency (seconds)

    def __post_init__(self) -> None:
        if self.sequential_bandwidth <= 0 or self.random_iops <= 0:
            raise ValueError(f"StorageSpec {self.name}: rates must be positive")
        if self.latency < 0:
            raise ValueError("latency must be >= 0")

    def read_time(self, nbytes: float, n_requests: int = 1) -> float:
        """Closed-form time to read ``nbytes`` in ``n_requests`` random reads."""
        if nbytes < 0 or n_requests < 1:
            raise ValueError("nbytes >= 0 and n_requests >= 1 required")
        return (
            self.latency * n_requests
            + n_requests / self.random_iops
            + nbytes / self.sequential_bandwidth
        )


@dataclass(frozen=True)
class ClusterSpec:
    """The whole machine: nodes, network, storage."""

    name: str
    n_nodes: int
    node: NodeSpec
    network: NetworkParams = field(default=CONNECTX5_DUAL)
    storage: StorageSpec = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if self.storage is None:
            object.__setattr__(self, "storage", NFS_STORAGE)

    @property
    def total_gpus(self) -> int:
        return self.n_nodes * self.node.n_gpus

    def with_nodes(self, n_nodes: int) -> "ClusterSpec":
        """The same machine scaled to a different node count."""
        return ClusterSpec(
            name=self.name,
            n_nodes=n_nodes,
            node=self.node,
            network=self.network,
            storage=self.storage,
        )


#: NVIDIA Tesla P100 (SXM2): 10.6 TFLOPS fp32, 16 GB HBM2 at 732 GB/s.
P100 = GPUSpec(
    name="P100-SXM2",
    fp32_tflops=10.6,
    memory_bytes=16 * GIB,
    mem_bandwidth=732e9,
)

#: NVIDIA Tesla V100 (SXM2): the P100's successor — for what-if studies of
#: how the paper's balance shifts as compute outpaces the network.
V100 = GPUSpec(
    name="V100-SXM2",
    fp32_tflops=15.7,
    memory_bytes=16 * GIB,
    mem_bandwidth=900e9,
)

#: POWER8 "Minsky" (S822LC): 20 cores, 256 GB, 4x P100 on NVLink 1.0.
#: NVLink 1.0 gives 2 links x 20 GB/s per GPU to the CPU and between GPU
#: pairs; host summing uses the altivec vector unit.
MINSKY_NODE = NodeSpec(
    name="POWER8-Minsky",
    gpu=P100,
    n_gpus=4,
    cpu_cores=20,
    host_memory_bytes=256 * GIB,
    h2d_bandwidth=32e9,
    nvlink_bandwidth=40e9,
    host_reduce_bandwidth=30e9,
)

#: Intel Xeon Phi 7250 (KNL) node, for the Table 2 comparison row
#: (You et al. use 512 of these).  Modelled as a 1-GPU-equivalent node.
KNL_NODE = NodeSpec(
    name="KNL-7250",
    gpu=GPUSpec(
        name="KNL-7250",
        fp32_tflops=5.2,  # ~half of P100 in practice for conv nets
        memory_bytes=16 * GIB,
        mem_bandwidth=400e9,
    ),
    n_gpus=1,
    cpu_cores=68,
    host_memory_bytes=96 * GIB,
    h2d_bandwidth=80e9,   # MCDRAM is on-package; no PCIe staging
    nvlink_bandwidth=80e9,
    host_reduce_bandwidth=30e9,
)

#: A shared parallel filesystem under random-read image load: the paper's
#: bottleneck.  Throughput per node is modest and each image read is an
#: independent random request.
NFS_STORAGE = StorageSpec(
    name="shared-fs",
    sequential_bandwidth=350 * MB,
    random_iops=2800.0,
    latency=0.3e-3,
)

#: A flash/NVMe tier ("typically costly", §1) for the storage ablation.
FLASH_STORAGE = StorageSpec(
    name="flash",
    sequential_bandwidth=2.4 * GB,
    random_iops=200_000.0,
    latency=0.08e-3,
)

#: Host DRAM treated as a storage tier: what DIMD effectively provides.
LOCAL_MEMORY = StorageSpec(
    name="dram",
    sequential_bandwidth=60 * GB,
    random_iops=5e7,
    latency=0.0,
)
