"""Intra-node data movement: NVLink peer copies and host staging.

The Torch DataParallelTable experiments (§4.3) hinge on *where* batches and
gradients move inside a node:

* baseline design — the full input batch lands on GPU1 first and is
  re-scattered to the other GPUs over NVLink (extra hop + GPU1 memory);
* optimized design — the host partitions the batch and DMAs each slice
  directly to its GPU.

Gradient accumulation inside a node uses a binary tree over NVLink pairs
followed by a host gather (the paper's "local intra-node summation").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cluster.specs import NodeSpec

__all__ = ["IntraNodeFabric"]


@dataclass(frozen=True)
class IntraNodeFabric:
    """Closed-form transfer/reduce times inside one node."""

    node: NodeSpec

    def h2d_time(self, nbytes: float) -> float:
        """Host -> one device copy."""
        self._check(nbytes)
        return nbytes / self.node.h2d_bandwidth

    def d2d_time(self, nbytes: float) -> float:
        """Device -> device peer copy over NVLink."""
        self._check(nbytes)
        return nbytes / self.node.nvlink_bandwidth

    def scatter_via_first_gpu(self, batch_bytes: float) -> float:
        """Baseline DataParallelTable input path.

        The whole batch goes host->GPU1, then GPU1 sends each other GPU its
        slice.  The second stage's transfers share GPU1's NVLink egress, so
        they serialize.
        """
        self._check(batch_bytes)
        m = self.node.n_gpus
        slice_bytes = batch_bytes / m
        return self.h2d_time(batch_bytes) + self.d2d_time(slice_bytes * (m - 1))

    def scatter_direct(self, batch_bytes: float) -> float:
        """Optimized input path: host DMAs each slice to its GPU directly.

        Copies to distinct GPUs proceed concurrently on separate NVLink
        pairs, so the critical path is one slice.
        """
        self._check(batch_bytes)
        return self.h2d_time(batch_bytes / self.node.n_gpus)

    def allreduce_time(self, grad_bytes: float) -> float:
        """Intra-node gradient sum + result on the host.

        Binary-tree pairwise NVLink reduction (ceil(log2 m) rounds of a full
        gradient copy+add) followed by one device->host copy.
        """
        self._check(grad_bytes)
        m = self.node.n_gpus
        rounds = math.ceil(math.log2(m)) if m > 1 else 0
        return rounds * self.d2d_time(grad_bytes) + self.h2d_time(grad_bytes)

    def broadcast_time(self, grad_bytes: float) -> float:
        """Host -> all GPUs broadcast of the reduced gradients.

        One host->device copy feeds a binary NVLink fan-out tree
        (ceil(log2 m) peer-copy rounds).
        """
        self._check(grad_bytes)
        m = self.node.n_gpus
        rounds = math.ceil(math.log2(m)) if m > 1 else 0
        return self.h2d_time(grad_bytes) + rounds * self.d2d_time(grad_bytes)

    @staticmethod
    def _check(nbytes: float) -> None:
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
