"""Hardware models: machine specs, GPU compute, storage and NVLink.

The paper's testbed — a POWER8 "Minsky" cluster (4x NVIDIA Pascal P100 and
256 GB RAM per node, dual ConnectX-5 InfiniBand) — is unavailable here, so
these parametric models stand in for it.  Rates are calibrated against the
paper's own Table 1 baselines (see ``repro.core.calibration``).
"""

from repro.cluster.specs import (
    GPUSpec,
    KNL_NODE,
    MINSKY_NODE,
    NodeSpec,
    P100,
    V100,
    StorageSpec,
    ClusterSpec,
    NFS_STORAGE,
    FLASH_STORAGE,
    LOCAL_MEMORY,
)
from repro.cluster.gpu import GPUComputeModel
from repro.cluster.storage import StorageDevice
from repro.cluster.interconnect import IntraNodeFabric

__all__ = [
    "ClusterSpec",
    "FLASH_STORAGE",
    "GPUComputeModel",
    "GPUSpec",
    "IntraNodeFabric",
    "KNL_NODE",
    "LOCAL_MEMORY",
    "MINSKY_NODE",
    "NFS_STORAGE",
    "NodeSpec",
    "P100",
    "V100",
    "StorageDevice",
    "StorageSpec",
]
