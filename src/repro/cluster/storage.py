"""A storage device as a simulated resource.

One :class:`StorageDevice` per node models that node's view of the image
store.  Reads are serialized through the device (one head / one NFS client
stream) and each read pays per-request latency + IOPS cost + transfer time,
so a mini-batch of individually-fetched JPEG files is dominated by request
overheads — the paper's observed bottleneck ("the Torch donkeys were unable
to load the next samples of the mini-batch before the GPUs finished").

DIMD replaces this device with :data:`~repro.cluster.specs.LOCAL_MEMORY`,
whose request cost is negligible.
"""

from __future__ import annotations

from repro.cluster.specs import StorageSpec
from repro.sim.engine import Engine, Event
from repro.sim.resources import Resource

__all__ = ["StorageDevice"]


class StorageDevice:
    """Serialized access to one node's storage tier."""

    def __init__(self, engine: Engine, spec: StorageSpec, *, streams: int = 1):
        """``streams`` parallel channels (e.g. NFS mounts); reads beyond
        that queue."""
        if streams < 1:
            raise ValueError("streams must be >= 1")
        self.engine = engine
        self.spec = spec
        self._channel = Resource(engine, streams, name=f"storage:{spec.name}")
        self.bytes_read = 0.0
        self.requests = 0

    def read(self, nbytes: float, n_requests: int = 1):
        """Generator: perform a (possibly multi-request) read."""
        if nbytes < 0 or n_requests < 1:
            raise ValueError("nbytes >= 0 and n_requests >= 1 required")
        duration = self.spec.read_time(nbytes, n_requests)
        yield from self._channel.use(duration)
        self.bytes_read += nbytes
        self.requests += n_requests

    def read_event(self, nbytes: float, n_requests: int = 1) -> Event:
        """Process-wrapped :meth:`read`, for callers that want an event."""
        return self.engine.process(
            self.read(nbytes, n_requests), name=f"read:{self.spec.name}"
        )
