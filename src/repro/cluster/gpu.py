"""GPU training-step compute model.

Forward+backward time for a mini-batch is derived from the model
descriptor's FLOP count and the GPU's peak throughput, scaled by a cuDNN
*efficiency* that (a) differs per network (ResNet-50's large uniform
convolutions utilize the GPU better than GoogleNetBN's many small inception
branches) and (b) improves with batch size (small batches under-fill the
SMs).  Per-layer kernel-launch overhead adds a batch-independent floor.

The backward pass is modelled as twice the forward FLOPs (grad-input +
grad-weight convolutions), the standard 1:2 fwd:bwd accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.specs import GPUSpec

__all__ = ["GPUComputeModel"]

#: fwd:bwd FLOP ratio — backward computes both input and weight gradients.
BACKWARD_FLOP_FACTOR = 2.0


@dataclass(frozen=True)
class GPUComputeModel:
    """Maps (model FLOPs, batch size) to step time on one GPU."""

    gpu: GPUSpec
    efficiency: float          # asymptotic fraction of peak FLOPs achieved
    batch_half_point: float = 8.0   # batch size at which efficiency is halved
    kernels_per_layer: float = 2.5  # avg kernels launched per layer per pass

    def __post_init__(self) -> None:
        if not 0 < self.efficiency <= 1:
            raise ValueError(f"efficiency must be in (0, 1], got {self.efficiency}")
        if self.batch_half_point <= 0:
            raise ValueError("batch_half_point must be positive")

    def effective_flops(self, batch: int) -> float:
        """Achieved FLOP/s at the given per-GPU batch size."""
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        utilization = batch / (batch + self.batch_half_point)
        return self.gpu.fp32_tflops * 1e12 * self.efficiency * utilization

    def step_time(self, forward_flops_per_image: float, batch: int, n_layers: int) -> float:
        """Seconds for one forward+backward pass of ``batch`` images."""
        if forward_flops_per_image <= 0:
            raise ValueError("forward_flops_per_image must be positive")
        if n_layers < 1:
            raise ValueError("n_layers must be >= 1")
        total_flops = (
            forward_flops_per_image * batch * (1.0 + BACKWARD_FLOP_FACTOR)
        )
        launch = 2 * n_layers * self.kernels_per_layer * self.gpu.kernel_overhead
        return total_flops / self.effective_flops(batch) + launch

    def forward_time(self, forward_flops_per_image: float, batch: int, n_layers: int) -> float:
        """Seconds for inference only (used by validation passes)."""
        if forward_flops_per_image <= 0:
            raise ValueError("forward_flops_per_image must be positive")
        if n_layers < 1:
            raise ValueError("n_layers must be >= 1")
        launch = n_layers * self.kernels_per_layer * self.gpu.kernel_overhead
        return (
            forward_flops_per_image * batch / self.effective_flops(batch) + launch
        )

    def images_per_second(
        self, forward_flops_per_image: float, batch: int, n_layers: int
    ) -> float:
        """Training throughput of one GPU at this batch size."""
        return batch / self.step_time(forward_flops_per_image, batch, n_layers)
