"""Command-line interface: run the paper's experiments from a shell.

Examples::

    python -m repro table1
    python -m repro table2
    python -m repro epoch --model resnet50 --nodes 8 --baseline
    python -m repro allreduce --ranks 16 --mbytes 93 --algorithm multicolor
    python -m repro step --model resnet50 --ranks 16 --algorithm multicolor
    python -m repro shuffle --dataset imagenet-22k --learners 32
    python -m repro memory --dataset imagenet-22k --learners 32
    python -m repro trees --ranks 8 --colors 4
    python -m repro faults --learners 4 --crash-rank 1 --crash-at 4
    python -m repro faults --list
    python -m repro faults --kind sdc
    python -m repro chaos --ranks 4 --algorithms smoke
    python -m repro chaos --collective shuffle --ranks 4
    python -m repro chaos --collective fleet
    python -m repro chaos --collective sdc-step
    python -m repro fleet --jobs 4 --placement spread --kill-node 0
    python -m repro fleet --chaos --full
    python -m repro verify --all --goldens --mutate smoke
    python -m repro fig5

Exit codes follow the fault tooling convention: 0 = ran and every
invariant held, 1 = ran but an invariant failed (lost recovery, chaos
violation), 2 = bad arguments.
"""

from __future__ import annotations

import argparse
import sys

from repro.utils.units import MB, format_bytes, format_duration, format_rate

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Kumar et al., CLUSTER 2018",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="Table 1: open-source vs optimized epoch times")
    sub.add_parser("table2", help="Table 2: 90-epoch state-of-the-art comparison")
    sub.add_parser("fig5", help="Figure 5: allreduce throughput sweep")

    p = sub.add_parser("report", help="full paper-vs-measured markdown report")
    p.add_argument("--output", default=None, help="write to file instead of stdout")

    p = sub.add_parser("epoch", help="epoch time + breakdown for one config")
    p.add_argument("--model", default="resnet50")
    p.add_argument("--dataset", default="imagenet-1k")
    p.add_argument("--nodes", type=int, default=8)
    p.add_argument("--batch", type=int, default=64, help="batch per GPU")
    p.add_argument("--allreduce", default="multicolor")
    p.add_argument("--baseline", action="store_true",
                   help="use the open-source baseline configuration")

    p = sub.add_parser("allreduce", help="simulate one allreduce")
    p.add_argument("--ranks", type=int, default=16)
    p.add_argument("--mbytes", type=float, default=93.0)
    p.add_argument("--algorithm", default="multicolor")
    p.add_argument("--segment-kib", type=int, default=1024)

    p = sub.add_parser(
        "schedule",
        help="compile an allreduce to its point-to-point schedule and print it",
    )
    p.add_argument("--ranks", type=int, default=8)
    p.add_argument("--kib", type=float, default=64.0, help="payload size in KiB")
    p.add_argument("--algorithm", default="multicolor")
    p.add_argument("--segment-kib", type=int, default=64)
    p.add_argument("--max-steps", type=int, default=None,
                   help="print at most this many steps per rank")

    p = sub.add_parser(
        "step",
        help="compile one whole training iteration (forward, bucketed "
             "backward, per-bucket allreduce, optimizer) to a unified "
             "schedule; verify and time it",
    )
    p.add_argument("--model", default="resnet50")
    p.add_argument("--ranks", type=int, default=4)
    p.add_argument("--algorithm", default="multicolor")
    p.add_argument("--buckets", type=int, default=8,
                   help="gradient buckets the backward pass is split into")
    p.add_argument("--batch", type=int, default=32, help="batch per GPU")
    p.add_argument("--fp16", action="store_true",
                   help="halve the wire payload (2-byte gradients)")
    p.add_argument("--print", dest="print_steps", action="store_true",
                   help="also print the compiled schedule")
    p.add_argument("--max-steps", type=int, default=6,
                   help="with --print: at most this many steps per rank")

    p = sub.add_parser("shuffle", help="full-scale DIMD shuffle timing")
    p.add_argument("--dataset", default="imagenet-22k")
    p.add_argument("--learners", type=int, default=32)
    p.add_argument("--groups", type=int, default=1)

    p = sub.add_parser("memory", help="DIMD memory feasibility planning")
    p.add_argument("--dataset", default="imagenet-22k")
    p.add_argument("--learners", type=int, default=32)

    p = sub.add_parser("trees", help="print the multi-color spanning trees")
    p.add_argument("--ranks", type=int, default=8)
    p.add_argument("--colors", type=int, default=4)
    p.add_argument("--arity", type=int, default=None)

    p = sub.add_parser(
        "faults", help="inject faults into a training run and recover live"
    )
    p.add_argument("--list", action="store_true",
                   help="print every registered fault kind with its plane "
                        "and one-line doc, then exit")
    p.add_argument("--kind", default=None,
                   help="run a canned one-fault demo of this registered "
                        "kind (see --list) instead of the default "
                        "crash+drop scenario")
    p.add_argument("--learners", type=int, default=4)
    p.add_argument("--steps", type=int, default=10)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--crash-rank", type=int, default=1,
                   help="rank to fail-stop permanently (-1 to disable)")
    p.add_argument("--crash-at", type=int, default=4,
                   help="iteration at which the crash fires")
    p.add_argument("--drop-at", type=int, default=1,
                   help="iteration whose gradient message is lost "
                        "(-1 to disable)")

    p = sub.add_parser(
        "chaos",
        help="sweep every schedule-level fault point and check the "
             "no-deadlock / bit-exactness / telemetry invariants",
    )
    p.add_argument("--collective", default="allreduce",
                   choices=("allreduce", "shuffle", "fleet", "sdc-step"),
                   help="what to sweep: the gradient allreduce (control "
                        "plane), the DIMD shuffle (data plane), the "
                        "multi-tenant fleet (node kills, link degrades, "
                        "arrival bursts, preemption, grow-in-flight "
                        "kills, kill-during-grow-replay, node flaps, "
                        "sdc strikes), or the training step's "
                        "silent-data-corruption defense (one gradient "
                        "bit-flip per rank x bucket x iteration point)")
    p.add_argument("--ranks", type=int, nargs="+", default=[4],
                   help="group sizes to sweep")
    p.add_argument("--algorithms", default="smoke",
                   help="allreduce only: 'smoke' (one per family), 'all', "
                        "or a comma list")
    p.add_argument("--kinds", default=None,
                   help="comma list of fault kinds to inject (default: "
                        "crash,drop,delay for allreduce; "
                        "crash,drop,delay,corrupt for shuffle)")
    p.add_argument("--count", type=int, default=24,
                   help="allreduce only: elements per rank buffer")
    p.add_argument("--max-points", type=int, default=None,
                   help="cap fault points per rank (evenly subsampled)")

    p = sub.add_parser(
        "fleet",
        help="run many concurrent training jobs on one shared simulated "
             "cluster (gang scheduling, preemption, fault domains)",
    )
    p.add_argument("--jobs", type=int, default=4, help="number of jobs")
    p.add_argument("--learners", type=int, default=2,
                   help="learners per job")
    p.add_argument("--steps", type=int, default=5, help="steps per job")
    p.add_argument("--placement", default="pack", choices=("pack", "spread"),
                   help="pack jobs into few racks, or spread fault domains")
    p.add_argument("--racks", type=int, default=2)
    p.add_argument("--nodes-per-rack", type=int, default=4)
    p.add_argument("--slots-per-node", type=int, default=2)
    p.add_argument("--seed", type=int, default=0,
                   help="fleet seed (requeue jitter etc.)")
    p.add_argument("--kill-node", type=int, default=None,
                   help="kill this node once every job has made progress")
    p.add_argument("--revive-after", type=float, default=None,
                   help="with --kill-node: revive the node this many "
                        "simulated seconds after the kill")
    p.add_argument("--grow", action="store_true",
                   help="give every job elastic_grow=True, so shrunk jobs "
                        "reclaim learners when slots free up")
    p.add_argument("--events", action="store_true",
                   help="print the scheduler event log")
    p.add_argument("--chaos", action="store_true",
                   help="run the fleet chaos sweep instead of one workload")
    p.add_argument("--full", action="store_true",
                   help="with --chaos: the full sweep, not the smoke subset")

    p = sub.add_parser(
        "verify",
        help="statically prove compiled schedules correct, race-free "
             "and bounded (semantic, race, determinism, bounds passes)",
    )
    p.add_argument("--all", action="store_true",
                   help="sweep every registered allreduce compiler plus the "
                        "auxiliary collectives (default: one per family)")
    p.add_argument("--algorithms", default=None,
                   help="comma list of allreduce algorithms to verify "
                        "(overrides --all)")
    p.add_argument("--ranks", type=int, nargs="+", default=[2, 4, 6, 16],
                   help="group sizes to sweep")
    p.add_argument("--count", type=int, default=1003,
                   help="elements per rank buffer")
    p.add_argument("--goldens", action="store_true",
                   help="cross-check the alpha-beta critical-path lower "
                        "bound against the Fig. 5 goldens")
    p.add_argument("--goldens-max-mb", type=float, default=None,
                   help="only cross-check goldens up to this payload size")
    p.add_argument("--mutate", default="off",
                   choices=("off", "smoke", "full"),
                   help="also run the mutation self-test: 'smoke' mutates "
                        "one compiler per family, 'full' all compilers")
    p.add_argument("--verbose", action="store_true",
                   help="print every schedule's report, not just failures")
    p.add_argument("--fleet", action="store_true",
                   help="model-check the fleet control plane instead: "
                        "exhaustively explore event interleavings and prove "
                        "the eight control-plane invariants (exit 0 proved, "
                        "1 counterexample, 2 bad bounds)")
    p.add_argument("--fleet-depth", type=int, default=None,
                   help="with --fleet: maximum events per explored trace "
                        "(default: the CI smoke bound's depth)")
    p.add_argument("--fleet-steps", type=int, default=None,
                   help="with --fleet: per-job iteration boundaries explored")
    p.add_argument("--fleet-placement", default="pack",
                   help="with --fleet: placement policy to check "
                        "(pack or spread)")
    p.add_argument("--fleet-sweep", action="store_true",
                   help="with --fleet: the slow full bound (revive and "
                        "undrain flaps armed) instead of the CI smoke bound")
    p.add_argument("--fleet-max-states", type=int, default=None,
                   help="with --fleet: abort if the exploration exceeds "
                        "this many states (exit 2)")
    p.add_argument("--fleet-replay", action="store_true",
                   help="with --fleet: replay any counterexample trace "
                        "through the real scheduler and print the audit")
    return parser


def _cmd_table1(_args) -> int:
    from repro.analysis import render_table1

    print(render_table1())
    return 0


def _cmd_table2(_args) -> int:
    from repro.analysis import render_table2

    print(render_table2())
    return 0


def _cmd_fig5(_args) -> int:
    from repro.analysis import fig5_series
    from repro.utils.ascii import render_table

    x, series, _meta = fig5_series()
    rows = [
        [f"{mb} MB"] + [f"{series[a][i]:.2f}" for a in series]
        for i, mb in enumerate(x)
    ]
    print(
        render_table(
            ["payload"] + [f"{a} GB/s" for a in series], rows,
            title="Figure 5 — allreduce throughput, 16 nodes",
        )
    )
    return 0


def _cmd_epoch(args) -> int:
    from repro.core import ClusterExperiment, ExperimentConfig

    try:
        cfg = ExperimentConfig(
            model=args.model,
            dataset=args.dataset,
            n_nodes=args.nodes,
            batch_per_gpu=args.batch,
            allreduce=args.allreduce,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.baseline:
        cfg = cfg.open_source_baseline()
    exp = ClusterExperiment(cfg)
    print(f"configuration : {cfg}")
    print(f"epoch time    : {format_duration(exp.epoch_time())}")
    print(f"throughput    : {exp.images_per_second():,.0f} images/s")
    print(f"peak top-1    : {exp.peak_top1():.2f}%")
    print("breakdown per iteration:")
    for name, seconds in exp.breakdown().as_dict().items():
        print(f"  {name:16s} {format_duration(seconds):>10s}")
    return 0


def _cmd_allreduce(args) -> int:
    from repro.mpi import ALLREDUCE_ALGORITHMS, simulate_allreduce

    if args.algorithm not in ALLREDUCE_ALGORITHMS:
        print(
            f"unknown algorithm {args.algorithm!r}; "
            f"choose from {sorted(ALLREDUCE_ALGORITHMS)}",
            file=sys.stderr,
        )
        return 2
    nbytes = int(args.mbytes * MB)
    out = simulate_allreduce(
        args.ranks,
        nbytes,
        algorithm=args.algorithm,
        segment_bytes=args.segment_kib * 1024,
    )
    print(
        f"{args.algorithm} allreduce of {format_bytes(nbytes)} across "
        f"{args.ranks} nodes: {format_duration(out.elapsed)} "
        f"({format_rate(out.throughput(nbytes))} algorithmic)"
    )
    return 0


def _cmd_schedule(args) -> int:
    from repro.mpi import ALLREDUCE_COMPILERS, format_schedule, validate_schedule

    if args.algorithm not in ALLREDUCE_COMPILERS:
        print(
            f"unknown algorithm {args.algorithm!r}; "
            f"choose from {sorted(ALLREDUCE_COMPILERS)}",
            file=sys.stderr,
        )
        return 2
    itemsize = 4
    count = max(1, int(args.kib * 1024) // itemsize)
    schedule = ALLREDUCE_COMPILERS[args.algorithm](
        args.ranks, count, itemsize, segment_bytes=args.segment_kib * 1024
    )
    report = validate_schedule(schedule)
    print(format_schedule(schedule, max_steps=args.max_steps))
    print(
        f"lint ok: {report['n_steps']} steps, {report['n_messages']} messages, "
        f"sends/rank {report['sends_per_rank']}"
    )
    return 0


def _cmd_step(args) -> int:
    from repro.core.calibration import GPU_EFFICIENCY, compute_model_for
    from repro.models.zoo import get_model
    from repro.mpi import ALLREDUCE_COMPILERS, format_schedule
    from repro.mpi.datatypes import SizeBuffer
    from repro.mpi.runner import build_world
    from repro.mpi.schedule import ScheduleExecutor, validate_schedule
    from repro.mpi.verify import analyze_bounds, train_step_contract, verify_schedule
    from repro.train.stepdag import compile_bucketed_step, compile_model_step

    if args.model not in GPU_EFFICIENCY:
        print(
            f"unknown model {args.model!r}; "
            f"choose from {sorted(GPU_EFFICIENCY)}",
            file=sys.stderr,
        )
        return 2
    if args.algorithm not in ALLREDUCE_COMPILERS:
        print(
            f"unknown algorithm {args.algorithm!r}; "
            f"choose from {sorted(ALLREDUCE_COMPILERS)}",
            file=sys.stderr,
        )
        return 2
    model = get_model(args.model)
    schedule = compile_model_step(
        model,
        n_ranks=args.ranks,
        algorithm=args.algorithm,
        compute=compute_model_for(args.model),
        batch_per_gpu=args.batch,
        n_buckets=args.buckets,
        fp16=args.fp16,
        memory="data",
    )
    report = validate_schedule(schedule)
    if args.print_steps:
        print(format_schedule(schedule, max_steps=args.max_steps))
    print(
        f"{schedule.name}: {report['n_steps']} steps, "
        f"{report['n_messages']} messages"
    )

    # Prove the same DAG shape statically, at a tractable element count.
    proxy_count = 1003
    proxy = compile_bucketed_step(
        args.ranks, proxy_count, schedule.itemsize,
        forward_time=1e-3, backward_time=2e-3, optim_time=5e-4,
        n_buckets=args.buckets, algorithm=args.algorithm, memory="staged",
    )
    vreport = verify_schedule(proxy, train_step_contract(args.ranks, proxy_count))
    print(vreport.format())
    if not vreport.ok:
        return 1

    # Time the full-size step and cross-check the analytic lower bound.
    engine, world, comm = build_world(args.ranks)
    buffers = [
        SizeBuffer(schedule.count, schedule.itemsize) for _ in range(args.ranks)
    ]
    executor = ScheduleExecutor(comm, schedule, buffers)
    start = engine.now
    engine.run(executor.launch())
    elapsed = engine.now - start
    bounds = analyze_bounds(schedule)
    ok = bounds.critical_path_s <= elapsed
    print(
        f"simulated step {format_duration(elapsed)} "
        f"(compute {format_duration(executor.stats.compute_seconds / args.ranks)}"
        f"/rank); critical-path lower bound "
        f"{format_duration(bounds.critical_path_s)} "
        f"{'ok' if ok else 'VIOLATED'}"
    )
    return 0 if ok else 1


def _cmd_shuffle(args) -> int:
    from repro.core.calibration import DATASETS
    from repro.data import simulate_shuffle

    dataset = DATASETS[args.dataset]
    report = simulate_shuffle(args.learners, dataset, n_groups=args.groups)
    print(
        f"{dataset.name} shuffle across {args.learners} learners "
        f"({args.groups} group(s)): {report.elapsed:.2f} s, "
        f"{format_bytes(report.memory_per_node)} per node, "
        f"{report.n_passes} AlltoAllv passes"
    )
    return 0


def _cmd_memory(args) -> int:
    from repro.cluster import MINSKY_NODE
    from repro.core.calibration import DATASETS
    from repro.data import GroupLayout, max_replication_groups, plan_memory

    dataset = DATASETS[args.dataset]
    single = plan_memory(dataset, MINSKY_NODE, GroupLayout(args.learners, 1))
    print(
        f"single copy across {args.learners} learners: "
        f"{format_bytes(single.partition_bytes)}/node "
        f"({single.utilization:.0%} of budget) — "
        f"{'fits' if single.fits else 'DOES NOT FIT'}"
    )
    g = max_replication_groups(dataset, MINSKY_NODE, args.learners)
    plan = plan_memory(dataset, MINSKY_NODE, GroupLayout(args.learners, g))
    print(
        f"max replication: {g} group(s) of {args.learners // g} learner(s), "
        f"{format_bytes(plan.partition_bytes)}/node"
    )
    return 0


def _cmd_trees(args) -> int:
    from repro.mpi.collectives import color_trees, internal_nodes

    trees = color_trees(args.ranks, args.colors, args.arity)
    for color, tree in enumerate(trees):
        print(
            f"color {color}: root {tree.root}, "
            f"internal {sorted(internal_nodes(tree))}, "
            f"parents {dict(sorted(tree.parent.items()))}"
        )
    return 0


def _cmd_faults(args) -> int:
    import numpy as np

    from repro.data import DIMDStore
    from repro.data.codec import encode_image
    from repro.models.nn import Dense, Flatten, Network, ReLU
    from repro.train import (
        FAULT_KINDS,
        DistributedSGDTrainer,
        FaultPlan,
        WarmupStepSchedule,
        corrupt_messages,
        crash,
        degrade_links,
        delay_messages,
        drop_messages,
        sdc_flip,
    )

    if args.list:
        width = max(len(name) for name in FAULT_KINDS)
        for kind in FAULT_KINDS.values():
            print(f"{kind.name:<{width}s}  {kind.plane:<8s}  {kind.doc}")
        return 0
    if args.kind is not None and args.kind not in FAULT_KINDS:
        print(
            f"unknown fault kind {args.kind!r}; "
            f"choose from {tuple(FAULT_KINDS)}",
            file=sys.stderr,
        )
        return 2
    if args.kind is not None and args.learners < 2:
        print("--kind demos need --learners >= 2", file=sys.stderr)
        return 2

    n_classes = 3

    def net_factory(rng):
        return Network(
            [Flatten(), Dense(16, 10, rng), ReLU(), Dense(10, n_classes, rng)]
        )

    rng = np.random.default_rng(args.seed)
    stores = []
    for w in range(args.learners):
        labels = rng.integers(0, n_classes, size=24)
        records = []
        for lab in labels:
            img = rng.integers(0, 60, size=(1, 4, 4), dtype=np.uint8)
            img[0, int(lab) % 4, :] = 255
            records.append(encode_image(img))
        stores.append(DIMDStore(records, labels, learner=w))

    specs = []
    trainer_kw = {}
    if args.kind is not None:
        # One canned fault of the requested kind, landing mid-run.
        mid = max(1, min(2, args.steps - 1))
        if args.kind == "crash":
            specs = [crash(1, mid)]
        elif args.kind == "degrade":
            specs = [degrade_links(1, mid, factor=0.25, duration=1e-3)]
        elif args.kind == "delay":
            specs = [delay_messages(mid, seconds=5e-4, count=2)]
        elif args.kind == "drop":
            specs = [drop_messages(mid, count=1)]
        elif args.kind == "corrupt":
            # Wire corruption: the payload lies but sizes and timing hold.
            # The data-plane shuffle CRC-checks every record; the
            # allreduce demo here shows the fault firing and training
            # running through it.
            specs = [corrupt_messages(mid, rank=0, count=1)]
        else:  # sdc
            specs = [sdc_flip(1, mid, bucket=0)]
            trainer_kw = dict(sdc_check=True, step_buckets=2)
    else:
        if args.drop_at >= 0:
            specs.append(drop_messages(args.drop_at, count=1))
        if args.crash_rank >= 0:
            if not 0 <= args.crash_rank < args.learners:
                print(
                    f"--crash-rank {args.crash_rank} out of range "
                    f"[0, {args.learners})",
                    file=sys.stderr,
                )
                return 2
            specs.append(crash(args.crash_rank, args.crash_at))
    schedule = WarmupStepSchedule(
        batch_per_gpu=4, n_workers=args.learners, base_lr=0.08,
        reference_batch=4 * args.learners, warmup_epochs=0.0,
    )
    trainer = DistributedSGDTrainer(
        net_factory, stores, gpus_per_node=1, batch_per_gpu=4,
        schedule=schedule, reducer="multicolor", seed=args.seed,
        fault_plan=FaultPlan(specs), **trainer_kw,
    )
    total = sum(len(s) for s in trainer.stores)
    print(f"{'it':>3} {'learners':>8} {'loss':>8} {'retries':>7}  faults")
    try:
        for _ in range(args.steps):
            r = trainer.step()
            note = "; ".join(r.faults) if r.faults else "-"
            print(
                f"{r.iteration:>3} {r.n_learners:>8} {r.loss:>8.4f} "
                f"{r.retries:>7}  {note}"
            )
        trainer.check_synchronized()
    except Exception as exc:
        print(f"recovery failed: {exc!r}", file=sys.stderr)
        return 1
    conserved = sum(len(s) for s in trainer.stores)
    print(
        f"survivors {trainer.n_learners}/{args.learners}, replicas "
        f"synchronized, records conserved {conserved}/{total}"
    )
    if conserved != total:
        print("records lost during recovery", file=sys.stderr)
        return 1
    return 0


def _cmd_chaos(args) -> int:
    from repro.mpi.chaos import (
        DEFAULT_KINDS,
        SHUFFLE_KINDS,
        chaos_sweep,
        shuffle_chaos_sweep,
        smoke_algorithms,
    )
    from repro.mpi.collectives import ALLREDUCE_COMPILERS

    if args.collective == "fleet":
        from repro.fleet.chaos import FLEET_KINDS, fleet_chaos_sweep

        kinds = (
            FLEET_KINDS
            if args.kinds is None
            else tuple(k.strip() for k in args.kinds.split(",") if k.strip())
        )
        try:
            report = fleet_chaos_sweep(kinds=kinds, smoke=True)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        print(report.format())
        return 0 if report.all_ok else 1

    if args.collective == "sdc-step":
        from repro.train.sdc_chaos import sdc_chaos_sweep

        report = sdc_chaos_sweep(max_points=args.max_points)
        print(report.format())
        return 0 if report.all_ok else 1

    if args.collective == "shuffle":
        kinds = (
            SHUFFLE_KINDS
            if args.kinds is None
            else tuple(k.strip() for k in args.kinds.split(",") if k.strip())
        )
        try:
            report = shuffle_chaos_sweep(
                tuple(args.ranks), kinds=kinds,
                max_points_per_rank=args.max_points,
            )
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        print(report.format())
        return 0 if report.all_ok else 1

    if args.algorithms == "smoke":
        algorithms = smoke_algorithms()
    elif args.algorithms == "all":
        algorithms = sorted(ALLREDUCE_COMPILERS)
    else:
        algorithms = [a.strip() for a in args.algorithms.split(",") if a.strip()]
    unknown = [a for a in algorithms if a not in ALLREDUCE_COMPILERS]
    if unknown:
        print(
            f"unknown algorithm(s) {unknown}; "
            f"choose from {sorted(ALLREDUCE_COMPILERS)}",
            file=sys.stderr,
        )
        return 2
    kinds = (
        DEFAULT_KINDS
        if args.kinds is None
        else tuple(k.strip() for k in args.kinds.split(",") if k.strip())
    )
    try:
        report = chaos_sweep(
            algorithms, tuple(args.ranks), kinds=kinds, count=args.count,
            max_points_per_rank=args.max_points,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(report.format())
    return 0 if report.all_ok else 1


def _cmd_fleet(args) -> int:
    from repro.fleet import (
        FleetScheduler,
        JobSpec,
        SharedCluster,
        fleet_chaos_sweep,
    )

    if args.chaos:
        report = fleet_chaos_sweep(smoke=not args.full)
        print(report.format())
        return 0 if report.all_ok else 1

    if args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2
    try:
        cluster = SharedCluster(
            n_racks=args.racks,
            nodes_per_rack=args.nodes_per_rack,
            slots_per_node=args.slots_per_node,
        )
        specs = [
            JobSpec(
                name=f"job{i}",
                n_learners=args.learners,
                n_steps=args.steps,
                seed=args.seed * 1000 + i,
                elastic_grow=args.grow,
            )
            for i in range(args.jobs)
        ]
        scheduler = FleetScheduler(
            cluster, specs, placement=args.placement, seed=args.seed
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.revive_after is not None and args.kill_node is None:
        print("--revive-after needs --kill-node", file=sys.stderr)
        return 2
    if args.kill_node is not None:
        if not 0 <= args.kill_node < cluster.n_nodes:
            print(
                f"--kill-node {args.kill_node} out of range "
                f"[0, {cluster.n_nodes})",
                file=sys.stderr,
            )
            return 2
        if args.revive_after is not None and args.revive_after <= 0:
            print("--revive-after must be positive", file=sys.stderr)
            return 2

        def killer():
            while not all(
                j.telemetry.steps >= 1 or j.status in ("failed", "rejected")
                for j in scheduler.jobs.values()
            ):
                yield cluster.engine.timeout(1e-4)
            if cluster.nodes[args.kill_node].alive:
                scheduler.kill_node(args.kill_node)
                if args.revive_after is not None:
                    yield cluster.engine.timeout(args.revive_after)
                    if not cluster.nodes[args.kill_node].alive:
                        scheduler.revive_node(args.kill_node)

        scheduler.spawn(killer(), name="kill-node")
    report = scheduler.run()
    print(report.format())
    if args.events:
        for event in report.events:
            print(event)
    ok = report.all_terminal and not report.leaked and not any(
        j.status == "failed" for j in report.jobs
    )
    return 0 if ok else 1


def _cmd_verify(args) -> int:
    if args.fleet:
        return _cmd_verify_fleet(args)
    from repro.mpi.chaos import smoke_algorithms
    from repro.mpi.collectives import ALLREDUCE_COMPILERS
    from repro.mpi.verify.mutate import run_mutation_suite
    from repro.mpi.verify.sweep import run_sweep

    if args.algorithms is not None:
        algorithms = [a.strip() for a in args.algorithms.split(",") if a.strip()]
        unknown = [a for a in algorithms if a not in ALLREDUCE_COMPILERS]
        if unknown:
            print(
                f"unknown algorithm(s) {unknown}; "
                f"choose from {sorted(ALLREDUCE_COMPILERS)}",
                file=sys.stderr,
            )
            return 2
    elif args.all:
        algorithms = sorted(ALLREDUCE_COMPILERS)
    else:
        algorithms = smoke_algorithms()

    result = run_sweep(
        algorithms=algorithms,
        ranks=tuple(args.ranks),
        count=args.count,
        goldens=args.goldens,
        goldens_max_mb=args.goldens_max_mb,
    )
    print(result.format(verbose=args.verbose))
    ok = result.all_ok

    if args.mutate != "off":
        names = (
            sorted(ALLREDUCE_COMPILERS)
            if args.mutate == "full"
            else smoke_algorithms()
        )
        mutation = run_mutation_suite(
            {name: ALLREDUCE_COMPILERS[name] for name in names}
        )
        print(mutation.format())
        ok = ok and mutation.kill_rate >= 0.95

    return 0 if ok else 1


def _cmd_verify_fleet(args) -> int:
    """Bounded model checking of the fleet control plane.

    Exit codes: 0 all invariants proved within the bound, 1 a
    counterexample (or escaped mutant) was found, 2 the requested bounds
    are invalid or the exploration blew the state cap.
    """
    import dataclasses

    from repro.fleet.verify import (
        replay_trace,
        run_fleet_mutation_suite,
        smoke_bounds,
        sweep_bounds,
        verify_fleet,
    )

    try:
        if args.fleet_sweep:
            bounds = sweep_bounds(placement=args.fleet_placement)
        else:
            bounds = smoke_bounds(placement=args.fleet_placement)
        overrides = {}
        if args.fleet_depth is not None:
            overrides["depth"] = args.fleet_depth
        if args.fleet_steps is not None:
            overrides["max_steps"] = args.fleet_steps
        if overrides:
            bounds = dataclasses.replace(bounds, **overrides)
    except ValueError as exc:
        print(f"bad bounds: {exc}", file=sys.stderr)
        return 2

    try:
        result = verify_fleet(bounds, max_states=args.fleet_max_states)
    except RuntimeError as exc:
        print(f"aborted: {exc}", file=sys.stderr)
        return 2
    print(result.format())
    ok = result.ok

    if result.counterexample is not None and args.fleet_replay:
        replay = replay_trace(bounds, result.counterexample.trace)
        print(replay.format())

    if args.mutate != "off":
        mutation = run_fleet_mutation_suite()
        print(mutation.format())
        ok = ok and mutation.kill_rate == 1.0

    return 0 if ok else 1


def _cmd_report(args) -> int:
    from repro.analysis.report import generate_report

    text = generate_report()
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


_COMMANDS = {
    "table1": _cmd_table1,
    "report": _cmd_report,
    "table2": _cmd_table2,
    "fig5": _cmd_fig5,
    "epoch": _cmd_epoch,
    "allreduce": _cmd_allreduce,
    "schedule": _cmd_schedule,
    "step": _cmd_step,
    "shuffle": _cmd_shuffle,
    "memory": _cmd_memory,
    "trees": _cmd_trees,
    "faults": _cmd_faults,
    "chaos": _cmd_chaos,
    "fleet": _cmd_fleet,
    "verify": _cmd_verify,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
