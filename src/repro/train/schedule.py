"""The warm-start learning-rate schedule (§5, following Goyal et al.).

"The starting learning rate was fixed at 0.1.  This is linearly ramped to
``0.1 * k n / 256``, where k is the batch size per GPU and n is the total
number of workers ... a 90 epoch training regime with the learning rate
dropped by a factor of 10 after every 30 epochs."
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["WarmupStepSchedule"]


@dataclass(frozen=True)
class WarmupStepSchedule:
    """Linear warm-up to the scaled LR, then stepwise 10x decays."""

    batch_per_gpu: int
    n_workers: int                      # total GPUs (nodes * GPUs per node)
    base_lr: float = 0.1
    reference_batch: int = 256
    warmup_epochs: float = 5.0
    total_epochs: int = 90
    decay_every: int = 30
    decay_factor: float = 0.1

    def __post_init__(self) -> None:
        if self.batch_per_gpu < 1 or self.n_workers < 1:
            raise ValueError("batch_per_gpu and n_workers must be >= 1")
        if self.base_lr <= 0 or not 0 < self.decay_factor < 1:
            raise ValueError("base_lr > 0 and 0 < decay_factor < 1 required")
        if self.warmup_epochs < 0 or self.total_epochs < 1 or self.decay_every < 1:
            raise ValueError("invalid schedule horizon")

    @property
    def global_batch(self) -> int:
        return self.batch_per_gpu * self.n_workers

    @property
    def peak_lr(self) -> float:
        """The scaled target LR, 0.1 * k n / 256."""
        return self.base_lr * self.global_batch / self.reference_batch

    def lr_at(self, epoch: float) -> float:
        """Learning rate at a (fractional) epoch."""
        if epoch < 0:
            raise ValueError(f"epoch must be >= 0, got {epoch}")
        # Step decays apply to the peak LR; warm-up ramps toward it.
        n_decays = int(epoch // self.decay_every)
        decayed = self.peak_lr * (self.decay_factor**n_decays)
        if epoch < self.warmup_epochs and self.warmup_epochs > 0:
            frac = epoch / self.warmup_epochs
            return self.base_lr + (self.peak_lr - self.base_lr) * frac
        return decayed

    def curve(self, steps_per_epoch: int) -> list[float]:
        """Per-iteration LRs over the whole regime (for plots and tests)."""
        if steps_per_epoch < 1:
            raise ValueError("steps_per_epoch must be >= 1")
        return [
            self.lr_at(step / steps_per_epoch)
            for step in range(self.total_epochs * steps_per_epoch)
        ]
