"""Checkpoint/restore for :class:`~repro.train.distributed.DistributedSGDTrainer`.

A checkpoint captures everything the trainer's state math depends on:

* model weights and the optimizer's momentum (velocity) vector,
* the iteration counter and shuffle round — the trainer derives every RNG
  stream counter-style from ``(seed, purpose, learner_id, iteration)``
  (:func:`repro.utils.rng.rng_for`), so restoring the counters restores
  the streams exactly, with no generator state to serialize,
* the DIMD partition map: each live learner's identity plus its current
  records and labels (partitions drift across shuffles and elastic
  shrinks, so the map must travel with the weights),
* the hyperparameter configuration, including the (possibly rescaled)
  LR schedule.

Restore is **bit-exact**: a run interrupted at iteration *k* and resumed
from its checkpoint produces weights identical to an uninterrupted run —
the equivalence test in ``tests/train/test_elastic.py`` asserts
``np.array_equal``, not approximate closeness.

Serialization uses :mod:`pickle` (stdlib): the payload is NumPy arrays,
``bytes`` blobs and primitive config — no custom classes beyond the
checkpoint itself and the frozen schedule dataclass.  On disk the pickle
payload travels behind a small header (magic + CRC32), so a truncated or
bit-flipped checkpoint fails loudly with :class:`CheckpointCorrupt`
instead of resuming training from silently damaged state.  Headerless
files written before the format change still load (best-effort, no
verification).
"""

from __future__ import annotations

import pickle
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.data.dimd import DIMDStore
from repro.train.schedule import WarmupStepSchedule

__all__ = ["CheckpointCorrupt", "TrainerCheckpoint", "CHECKPOINT_VERSION"]

CHECKPOINT_VERSION = 1

#: File header: magic, then the CRC32 of the pickle payload (little-endian).
CHECKPOINT_MAGIC = b"RPCK"
_HEADER = struct.Struct("<4sI")


class CheckpointCorrupt(RuntimeError):
    """A checkpoint file failed its integrity check and must not be trusted."""

    def __init__(self, path, detail: str):
        super().__init__(f"checkpoint {path} is corrupt: {detail}")
        self.path = str(path)
        self.detail = detail


@dataclass
class TrainerCheckpoint:
    """Complete, bit-exact snapshot of a distributed training run."""

    version: int
    seed: int
    iteration: int
    shuffle_round: int
    learner_ids: list[int]
    params: np.ndarray
    velocity: np.ndarray
    records: list[list[bytes]]
    labels: list[np.ndarray]
    gpus_per_node: int
    batch_per_gpu: int
    momentum: float
    weight_decay: float
    reducer: str
    dpt_variant: str
    shuffle_every: int | None
    schedule: WarmupStepSchedule

    # -- capture ------------------------------------------------------------
    @classmethod
    def capture(cls, trainer) -> "TrainerCheckpoint":
        return cls(
            version=CHECKPOINT_VERSION,
            seed=trainer.seed,
            iteration=trainer.iteration,
            shuffle_round=trainer._shuffle_round,
            learner_ids=list(trainer.learner_ids),
            params=trainer.params().copy(),
            velocity=trainer._velocity.copy(),
            records=[list(s.records) for s in trainer.stores],
            labels=[s.labels.copy() for s in trainer.stores],
            gpus_per_node=trainer.gpus_per_node,
            batch_per_gpu=trainer.batch_per_gpu,
            momentum=trainer.momentum,
            weight_decay=trainer.weight_decay,
            reducer=trainer.reducer,
            dpt_variant=trainer.dpt_variant,
            shuffle_every=trainer.shuffle_every,
            schedule=trainer.schedule,
        )

    # -- restore ------------------------------------------------------------
    def restore(self, trainer_cls, network_factory, **overrides):
        """Rebuild a live trainer from this snapshot.

        ``overrides`` lets the caller change operational knobs (fault plan,
        timeouts, reducer) without touching the training state.
        """
        if self.version != CHECKPOINT_VERSION:
            raise ValueError(
                f"checkpoint version {self.version} != {CHECKPOINT_VERSION}"
            )
        stores = [
            DIMDStore(recs, labs, learner=lid)
            for recs, labs, lid in zip(self.records, self.labels, self.learner_ids)
        ]
        kwargs = dict(
            gpus_per_node=self.gpus_per_node,
            batch_per_gpu=self.batch_per_gpu,
            schedule=self.schedule,
            momentum=self.momentum,
            weight_decay=self.weight_decay,
            reducer=self.reducer,
            dpt_variant=self.dpt_variant,
            seed=self.seed,
            shuffle_every=self.shuffle_every,
        )
        kwargs.update(overrides)
        trainer = trainer_cls(network_factory, stores, **kwargs)
        trainer.learner_ids = list(self.learner_ids)
        trainer.iteration = self.iteration
        trainer._shuffle_round = self.shuffle_round
        trainer._velocity = self.velocity.copy()
        for table in trainer.tables:
            table.broadcast_params(self.params)
        return trainer

    # -- (de)serialization --------------------------------------------------
    def save(self, path) -> None:
        payload = pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)
        header = _HEADER.pack(CHECKPOINT_MAGIC, zlib.crc32(payload) & 0xFFFFFFFF)
        Path(path).write_bytes(header + payload)

    @classmethod
    def load(cls, path) -> "TrainerCheckpoint":
        raw = Path(path).read_bytes()
        if not raw:
            raise CheckpointCorrupt(path, "empty file (torn write?)")
        if raw[:4] == CHECKPOINT_MAGIC:
            if len(raw) < _HEADER.size:
                raise CheckpointCorrupt(path, "truncated header")
            _, expected = _HEADER.unpack(raw[: _HEADER.size])
            payload = raw[_HEADER.size:]
            actual = zlib.crc32(payload) & 0xFFFFFFFF
            if actual != expected:
                raise CheckpointCorrupt(
                    path,
                    f"payload CRC32 {actual:#010x} != header {expected:#010x} "
                    "(bit-flipped or truncated)",
                )
            try:
                ckpt = pickle.loads(payload)
            except Exception as exc:
                raise CheckpointCorrupt(
                    path, f"payload verified but failed to unpickle: {exc}"
                ) from exc
        else:
            # Legacy headerless pickle: load best-effort, no CRC — but a
            # torn write must still surface as corruption, not a pickle
            # stack trace.
            try:
                ckpt = pickle.loads(raw)
            except Exception as exc:
                raise CheckpointCorrupt(
                    path,
                    f"headerless payload failed to unpickle "
                    f"(truncated or not a checkpoint): {exc}",
                ) from exc
        if not isinstance(ckpt, cls):
            raise CheckpointCorrupt(
                path, f"payload is {type(ckpt).__name__}, not a TrainerCheckpoint"
            )
        return ckpt
