"""Convergence surrogate: top-1 accuracy and training-error curves.

Running the real 90-epoch ImageNet regime needs ~10^18 FLOPs, so the
curves of Figures 13-16 come from a calibrated parametric model instead:

* the **final accuracy** is the paper's measured peak minus a per-doubling
  penalty for large global batches (Table 1: ResNet-50 75.99/75.78/75.56 %
  at 2k/4k/8k; GoogleNetBN 74.86/74.36/74.19 %) plus seeded run-to-run
  noise;
* the **shape within the regime** is piecewise-exponential saturation with
  a jump after each 10x LR decay (epochs 30 and 60), the canonical step-
  schedule staircase;
* the **training error** decays correspondingly.

None of the paper's optimizations change accuracy ("none of the
optimizations we presented have any impact on the final accuracy", §5.4) —
only the time axis differs across configurations, which is what the
experiment layer supplies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import rng_for

__all__ = ["AccuracyModel", "ACCURACY_MODELS"]


@dataclass(frozen=True)
class AccuracyModel:
    """Top-1 / training-error curves for one network."""

    name: str
    base_top1: float            # peak top-1 (%) at the reference batch
    reference_batch: int = 2048
    batch_penalty: float = 0.2  # top-1 % lost per doubling beyond reference
    phase_fractions: tuple[float, ...] = (0.905, 0.975, 1.0)
    phase_rate: float = 0.25    # exponential saturation rate within a phase
    decay_epochs: tuple[int, ...] = (30, 60)
    total_epochs: int = 90
    noise_std: float = 0.12     # run-to-run peak accuracy jitter (%)
    initial_error: float = 6.9  # cross-entropy at init, ~ln(1000)

    def __post_init__(self) -> None:
        if not 0 < self.base_top1 < 100:
            raise ValueError("base_top1 must be a percentage in (0, 100)")
        if len(self.phase_fractions) != len(self.decay_epochs) + 1:
            raise ValueError("need one phase fraction per LR phase")
        if sorted(self.phase_fractions) != list(self.phase_fractions):
            raise ValueError("phase fractions must be non-decreasing")

    # -- final accuracy ---------------------------------------------------------
    def peak_top1(self, global_batch: int, seed: int = 0) -> float:
        """Final validation top-1 (%) for a global batch size."""
        if global_batch < 1:
            raise ValueError("global_batch must be >= 1")
        doublings = max(0.0, np.log2(global_batch / self.reference_batch))
        noise = rng_for(seed, self.name, "peak", global_batch).normal(
            0.0, self.noise_std
        )
        return self.base_top1 - self.batch_penalty * doublings + noise

    # -- curves -------------------------------------------------------------------
    def top1_at(self, epoch: float, global_batch: int, seed: int = 0) -> float:
        """Validation top-1 (%) at a (fractional) epoch."""
        if epoch < 0:
            raise ValueError("epoch must be >= 0")
        peak = self.peak_top1(global_batch, seed)
        boundaries = (0,) + self.decay_epochs + (self.total_epochs,)
        level = 0.0
        for phase, frac in enumerate(self.phase_fractions):
            lo, hi = boundaries[phase], boundaries[phase + 1]
            if epoch < lo:
                break
            ceiling = peak * frac
            progress = 1.0 - np.exp(-self.phase_rate * (min(epoch, hi) - lo))
            level = max(level, level + (ceiling - level) * progress)
        return float(min(level, peak))

    def train_error_at(self, epoch: float, global_batch: int, seed: int = 0) -> float:
        """Training objective (cross-entropy) at a (fractional) epoch."""
        top1 = self.top1_at(epoch, global_batch, seed)
        peak = self.peak_top1(global_batch, seed)
        # Map accuracy progress onto a loss decay toward a model-specific floor.
        floor = 1.2 * (1.0 - peak / 100.0)
        progress = top1 / peak if peak > 0 else 0.0
        return float(self.initial_error * (1 - progress) + floor * progress)

    def curve(
        self, epochs: np.ndarray | list[float], global_batch: int, seed: int = 0
    ) -> np.ndarray:
        """Vectorized :meth:`top1_at`."""
        return np.array(
            [self.top1_at(float(e), global_batch, seed) for e in epochs]
        )

    def error_curve(
        self, epochs: np.ndarray | list[float], global_batch: int, seed: int = 0
    ) -> np.ndarray:
        return np.array(
            [self.train_error_at(float(e), global_batch, seed) for e in epochs]
        )


#: Calibrated to Table 1's peak accuracies (see class docstring).
ACCURACY_MODELS = {
    "resnet50": AccuracyModel(name="resnet50", base_top1=76.0, batch_penalty=0.215),
    "googlenet_bn": AccuracyModel(
        name="googlenet_bn", base_top1=74.85, batch_penalty=0.335
    ),
    "alexnet": AccuracyModel(name="alexnet", base_top1=58.0, batch_penalty=0.5),
    "vgg16": AccuracyModel(name="vgg16", base_top1=71.5, batch_penalty=0.3),
}
