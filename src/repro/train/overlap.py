"""Gradient bucketing: overlapping the allreduce with backpropagation.

The paper's related work (§2) notes that Goyal et al. "pipelined the
computation and communication of gradient of different layers of the model
to other nodes to minimize the impact of communication overhead".  The
paper itself reduces communication *after* the backward pass; this module
models the complementary optimization so the two can be compared.

Model: the backward pass produces gradients back-to-front at a uniform
rate over its duration; gradients are grouped into ``n_buckets`` equal
buckets, and a bucket's allreduce may start once the bucket is complete,
with bucket allreduces serialized on the NIC (the standard DDP/Horovod
execution).  Iteration communication cost becomes only the part that
cannot hide behind compute.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

__all__ = ["OverlapResult", "bucketed_iteration_time"]


@dataclass(frozen=True)
class OverlapResult:
    """Timing of one iteration with bucketed comm/compute overlap."""

    n_buckets: int
    compute_time: float        # fwd + bwd
    total_comm_time: float     # sum of bucket allreduce times
    iteration_time: float      # with overlap
    serial_iteration_time: float  # compute + full allreduce, no overlap

    @property
    def exposed_comm(self) -> float:
        """Communication time that could not hide behind the backward."""
        return self.iteration_time - self.compute_time

    @property
    def overlap_gain(self) -> float:
        """Fraction of the serial iteration saved by overlapping."""
        if self.serial_iteration_time <= 0:
            return 0.0
        return 1.0 - self.iteration_time / self.serial_iteration_time


def bucketed_iteration_time(
    *,
    forward_time: float,
    backward_time: float,
    allreduce_time: Callable[[int], float],
    gradient_bytes: int,
    n_buckets: int,
) -> OverlapResult:
    """Iteration time with ``n_buckets`` bucketed gradient allreduces.

    ``allreduce_time(nbytes)`` maps a payload size to its collective time
    (callers pass a closure over the simulated fabric, so per-message
    overheads make many tiny buckets genuinely worse — the real trade-off).
    Bucket *i* (back-to-front) completes at
    ``forward_time + backward_time * (i+1)/n`` and its allreduce runs as
    soon as both the bucket and the NIC are free.
    """
    if forward_time < 0 or backward_time < 0:
        raise ValueError("compute times must be >= 0")
    if gradient_bytes < 1 or n_buckets < 1:
        raise ValueError("gradient_bytes and n_buckets must be >= 1")
    bucket_bytes = gradient_bytes // n_buckets
    bucket_comm = allreduce_time(max(1, bucket_bytes))
    full_comm = allreduce_time(gradient_bytes)
    compute = forward_time + backward_time

    nic_free = 0.0
    for i in range(n_buckets):
        ready = forward_time + backward_time * (i + 1) / n_buckets
        nic_free = max(ready, nic_free) + bucket_comm
    return OverlapResult(
        n_buckets=n_buckets,
        compute_time=compute,
        total_comm_time=n_buckets * bucket_comm,
        iteration_time=max(compute, nic_free),
        serial_iteration_time=compute + full_comm,
    )
