"""Gradient bucketing: overlapping the allreduce with backpropagation.

The paper's related work (§2) notes that Goyal et al. "pipelined the
computation and communication of gradient of different layers of the model
to other nodes to minimize the impact of communication overhead".  The
paper itself reduces communication *after* the backward pass; this module
models the complementary optimization so the two can be compared.

Model: the backward pass produces gradients back-to-front at a uniform
rate over its duration; gradients are grouped into ``n_buckets`` equal
buckets, and a bucket's allreduce may start once the bucket is complete,
with bucket allreduces serialized on the NIC (the standard DDP/Horovod
execution).  Iteration communication cost becomes only the part that
cannot hide behind compute.

Two fidelity levels:

* :func:`bucketed_iteration_time` — closed-form pipeline arithmetic over a
  caller-supplied ``allreduce_time(nbytes)`` cost function;
* :func:`simulate_bucketed_overlap` — the real thing: the whole iteration
  (forward, backward segments, bucket allreduces, update) is lowered by
  :func:`repro.train.stepdag.compile_bucketed_step` into **one** unified
  :class:`~repro.mpi.schedule.Schedule` run by **one**
  :class:`~repro.mpi.schedule.ScheduleExecutor` — overlap falls out of
  the dependency structure instead of a bespoke bucket-release driver,
  and the same schedule is provable by :mod:`repro.mpi.verify`.

The retired bucket-release driver survives as
:func:`_legacy_simulate_bucketed_overlap`, the independent reference the
unified DAG is cross-checked against (CI asserts agreement within 1%).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

__all__ = ["OverlapResult", "bucketed_iteration_time", "simulate_bucketed_overlap"]


@dataclass(frozen=True)
class OverlapResult:
    """Timing of one iteration with bucketed comm/compute overlap."""

    n_buckets: int
    compute_time: float        # fwd + bwd
    total_comm_time: float     # sum of bucket allreduce times
    iteration_time: float      # with overlap
    serial_iteration_time: float  # compute + full allreduce, no overlap
    #: (start, end) sim-time span of each bucket's collective (simulated
    #: path only; empty for the closed-form model).
    bucket_spans: tuple = ()

    @property
    def exposed_comm(self) -> float:
        """Communication time that could not hide behind the backward.

        Well-defined 0.0 for steps with no communication at all, and
        clamped at 0.0 so float jitter in ``iteration_time`` vs
        ``compute_time`` never reports negative exposure.
        """
        if self.total_comm_time <= 0:
            return 0.0
        return max(0.0, self.iteration_time - self.compute_time)

    @property
    def overlap_gain(self) -> float:
        """Fraction of the serial iteration saved by overlapping.

        Well-defined 0.0 for degenerate steps — zero serial time (nothing
        to divide by) or zero communication (nothing to overlap).
        """
        if self.serial_iteration_time <= 0 or self.total_comm_time <= 0:
            return 0.0
        return 1.0 - self.iteration_time / self.serial_iteration_time


def bucketed_iteration_time(
    *,
    forward_time: float,
    backward_time: float,
    allreduce_time: Callable[[int], float],
    gradient_bytes: int,
    n_buckets: int,
) -> OverlapResult:
    """Iteration time with ``n_buckets`` bucketed gradient allreduces.

    ``allreduce_time(nbytes)`` maps a payload size to its collective time
    (callers pass a closure over the simulated fabric, so per-message
    overheads make many tiny buckets genuinely worse — the real trade-off).
    Bucket *i* (back-to-front) completes at
    ``forward_time + backward_time * (i+1)/n`` and its allreduce runs as
    soon as both the bucket and the NIC are free.
    """
    if forward_time < 0 or backward_time < 0:
        raise ValueError("compute times must be >= 0")
    if gradient_bytes < 1 or n_buckets < 1:
        raise ValueError("gradient_bytes and n_buckets must be >= 1")
    bucket_bytes = gradient_bytes // n_buckets
    bucket_comm = allreduce_time(max(1, bucket_bytes))
    full_comm = allreduce_time(gradient_bytes)
    compute = forward_time + backward_time

    nic_free = 0.0
    for i in range(n_buckets):
        ready = forward_time + backward_time * (i + 1) / n_buckets
        nic_free = max(ready, nic_free) + bucket_comm
    return OverlapResult(
        n_buckets=n_buckets,
        compute_time=compute,
        total_comm_time=n_buckets * bucket_comm,
        iteration_time=max(compute, nic_free),
        serial_iteration_time=compute + full_comm,
    )


def _default_segment_bytes(bucket_bytes: int) -> int:
    """Pipeline segment rule used by the Figure 5/6 benchmarks."""
    return max(64 * 1024, bucket_bytes // 16)


def _seg_rule(segment_bytes) -> Callable[[int], int]:
    def seg_for(nbytes: int) -> int:
        if segment_bytes is None:
            return _default_segment_bytes(nbytes)
        if callable(segment_bytes):
            return segment_bytes(nbytes)
        return segment_bytes
    return seg_for


def _check_overlap_args(forward_time, backward_time, gradient_bytes, n_buckets):
    if forward_time < 0 or backward_time < 0:
        raise ValueError("compute times must be >= 0")
    if gradient_bytes < 1 or n_buckets < 1:
        raise ValueError("gradient_bytes and n_buckets must be >= 1")


def simulate_bucketed_overlap(
    *,
    n_ranks: int,
    forward_time: float,
    backward_time: float,
    gradient_bytes: int,
    n_buckets: int,
    algorithm: str = "multicolor",
    itemsize: int = 4,
    topology: str = "fat_tree",
    network=None,
    serialize_buckets: bool = True,
    segment_bytes: Callable[[int], int] | int | None = None,
    **alg_kwargs,
) -> OverlapResult:
    """Run the bucketed overlap for real on the simulated fabric.

    The whole iteration compiles to one unified training-step DAG
    (:func:`repro.train.stepdag.compile_bucketed_step`, data memory mode):
    forward/backward :class:`~repro.mpi.schedule.ComputeStep` chains make
    bucket *i*'s gradient dependency-visible at
    ``forward + backward * (i+1)/n``, each bucket's allreduce schedule is
    spliced in behind that edge (and, with ``serialize_buckets``, behind
    the previous bucket — the DDP execution model), and one executor run
    yields the iteration time.  Concurrent bucket collectives
    (``serialize_buckets=False``) share NIC and link bandwidth through
    the fabric instead of a closed-form sum.

    ``segment_bytes`` may be an int, a callable of the bucket's byte size,
    or ``None`` for the benchmark default ``max(64 KiB, bytes/16)``.
    """
    from repro.mpi.collectives import ALLREDUCE_COMPILERS
    from repro.mpi.datatypes import SizeBuffer
    from repro.mpi.runner import build_world
    from repro.mpi.schedule import ExecutionProgress, ScheduleExecutor
    from repro.net.params import CONNECTX5_DUAL
    from repro.train.stepdag import compile_bucketed_step

    _check_overlap_args(forward_time, backward_time, gradient_bytes, n_buckets)
    try:
        compiler = ALLREDUCE_COMPILERS[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown allreduce algorithm {algorithm!r}; "
            f"choose from {sorted(ALLREDUCE_COMPILERS)}"
        ) from None
    network = network if network is not None else CONNECTX5_DUAL
    compute = forward_time + backward_time
    count = max(1, gradient_bytes // itemsize)
    seg_for = _seg_rule(segment_bytes)

    # Serial baseline: compute, then one full-gradient allreduce (own world
    # so its traffic does not pollute the overlapped run).
    engine, world, comm = build_world(n_ranks, topology=topology, network=network)
    bufs = [SizeBuffer(count, itemsize) for _ in range(n_ranks)]
    full = ScheduleExecutor(
        comm,
        compiler(
            n_ranks, count, itemsize,
            segment_bytes=seg_for(count * itemsize), **alg_kwargs,
        ),
        bufs,
    )
    serial_time = compute + full.run()

    # Overlapped run: one unified step DAG, one executor, one world.
    step = compile_bucketed_step(
        n_ranks, count, itemsize,
        forward_time=forward_time,
        backward_time=backward_time,
        n_buckets=n_buckets,
        algorithm=algorithm,
        segment_bytes=segment_bytes,
        serialize_buckets=serialize_buckets,
        memory="data",
        **alg_kwargs,
    )

    class _BucketSpans(ExecutionProgress):
        """Span tracking off the ``b{i}|`` note prefix; zero sim events."""

        def __init__(self, schedule):
            super().__init__(schedule)
            self.spans = [[None, 0.0] for _ in range(n_buckets)]

        @staticmethod
        def _bucket_of(note: str) -> int | None:
            if not note.startswith("b"):
                return None
            head, sep, _rest = note.partition("|")
            return int(head[1:]) if sep else None

        def begin(self, s, now):
            super().begin(s, now)
            i = self._bucket_of(s.note)
            if i is not None and self.spans[i][0] is None:
                self.spans[i][0] = now

        def finish(self, s, now):
            super().finish(s, now)
            i = self._bucket_of(s.note)
            if i is not None:
                self.spans[i][1] = max(self.spans[i][1], now)

    engine, world, comm = build_world(n_ranks, topology=topology, network=network)
    step_bufs = [SizeBuffer(count, itemsize) for _ in range(n_ranks)]
    executor = ScheduleExecutor(comm, step, step_bufs, tag="stepdag")
    tracker = _BucketSpans(step)
    executor.progress = tracker
    elapsed = executor.run()

    spans = [(s[0] if s[0] is not None else 0.0, s[1]) for s in tracker.spans]
    return OverlapResult(
        n_buckets=n_buckets,
        compute_time=compute,
        total_comm_time=sum(end - start for start, end in spans),
        iteration_time=max(compute, elapsed),
        serial_iteration_time=serial_time,
        bucket_spans=tuple(spans),
    )


def _legacy_simulate_bucketed_overlap(
    *,
    n_ranks: int,
    forward_time: float,
    backward_time: float,
    gradient_bytes: int,
    n_buckets: int,
    algorithm: str = "multicolor",
    itemsize: int = 4,
    topology: str = "fat_tree",
    network=None,
    serialize_buckets: bool = True,
    segment_bytes: Callable[[int], int] | int | None = None,
    **alg_kwargs,
) -> OverlapResult:
    """The retired bucket-release driver, kept as a reference oracle.

    One executor *per bucket*, released by a driver process at the
    gradient-ready time ``forward + backward * (i+1)/n`` (and, with
    ``serialize_buckets``, not before bucket *i-1* finished).  The unified
    step DAG in :func:`simulate_bucketed_overlap` must reproduce this
    estimate within 1% — the cross-check the CI composition smoke runs.
    Not part of the public API.
    """
    from repro.mpi.collectives import ALLREDUCE_COMPILERS
    from repro.mpi.datatypes import SizeBuffer, chunk_ranges
    from repro.mpi.runner import build_world
    from repro.mpi.schedule import ScheduleExecutor
    from repro.net.params import CONNECTX5_DUAL

    _check_overlap_args(forward_time, backward_time, gradient_bytes, n_buckets)
    compiler = ALLREDUCE_COMPILERS[algorithm]
    network = network if network is not None else CONNECTX5_DUAL
    compute = forward_time + backward_time
    count = max(1, gradient_bytes // itemsize)
    seg_for = _seg_rule(segment_bytes)

    def compile_for(n_elems: int) -> object:
        return compiler(
            n_ranks, n_elems, itemsize,
            segment_bytes=seg_for(n_elems * itemsize), **alg_kwargs,
        )

    engine, world, comm = build_world(n_ranks, topology=topology, network=network)
    bufs = [SizeBuffer(count, itemsize) for _ in range(n_ranks)]
    full = ScheduleExecutor(comm, compile_for(count), bufs)
    serial_time = compute + full.run()

    engine, world, comm = build_world(n_ranks, topology=topology, network=network)
    spans: list[list[float]] = [[0.0, 0.0] for _ in range(n_buckets)]
    bucket_sizes = [hi - lo for lo, hi in chunk_ranges(count, n_buckets)]

    def driver():
        dones = []
        prev_done = None
        for i, n_elems in enumerate(bucket_sizes):
            ready = forward_time + backward_time * (i + 1) / n_buckets
            if engine.now < ready:
                yield engine.timeout(ready - engine.now)
            if serialize_buckets and prev_done is not None:
                yield prev_done  # already-triggered events resume immediately
            if n_elems < 1:
                continue
            bucket_bufs = [SizeBuffer(n_elems, itemsize) for _ in range(n_ranks)]
            executor = ScheduleExecutor(
                comm, compile_for(n_elems), bucket_bufs, tag=("bkt", i)
            )
            done = executor.launch()
            spans[i][0] = engine.now
            done.callbacks.append(
                lambda _ev, i=i: spans[i].__setitem__(1, engine.now)
            )
            dones.append(done)
            prev_done = done
        for done in dones:
            yield done

    engine.run(engine.process(driver(), name="bucket-driver"))
    last_done = max((s[1] for s in spans), default=0.0)
    return OverlapResult(
        n_buckets=n_buckets,
        compute_time=compute,
        total_comm_time=sum(s[1] - s[0] for s in spans),
        iteration_time=max(compute, last_done),
        serial_iteration_time=serial_time,
        bucket_spans=tuple((s[0], s[1]) for s in spans),
    )
