"""Gradient bucketing: overlapping the allreduce with backpropagation.

The paper's related work (§2) notes that Goyal et al. "pipelined the
computation and communication of gradient of different layers of the model
to other nodes to minimize the impact of communication overhead".  The
paper itself reduces communication *after* the backward pass; this module
models the complementary optimization so the two can be compared.

Model: the backward pass produces gradients back-to-front at a uniform
rate over its duration; gradients are grouped into ``n_buckets`` equal
buckets, and a bucket's allreduce may start once the bucket is complete,
with bucket allreduces serialized on the NIC (the standard DDP/Horovod
execution).  Iteration communication cost becomes only the part that
cannot hide behind compute.

Two fidelity levels:

* :func:`bucketed_iteration_time` — closed-form pipeline arithmetic over a
  caller-supplied ``allreduce_time(nbytes)`` cost function;
* :func:`simulate_bucketed_overlap` — the real thing: every bucket is
  compiled to a point-to-point :class:`~repro.mpi.schedule.Schedule` and
  executed by the :class:`~repro.mpi.schedule.ScheduleExecutor` inside
  *one* simulated fabric, so consecutive bucket collectives genuinely
  contend for NICs and links instead of being summed analytically.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

__all__ = ["OverlapResult", "bucketed_iteration_time", "simulate_bucketed_overlap"]


@dataclass(frozen=True)
class OverlapResult:
    """Timing of one iteration with bucketed comm/compute overlap."""

    n_buckets: int
    compute_time: float        # fwd + bwd
    total_comm_time: float     # sum of bucket allreduce times
    iteration_time: float      # with overlap
    serial_iteration_time: float  # compute + full allreduce, no overlap
    #: (start, end) sim-time span of each bucket's collective (simulated
    #: path only; empty for the closed-form model).
    bucket_spans: tuple = ()

    @property
    def exposed_comm(self) -> float:
        """Communication time that could not hide behind the backward."""
        return self.iteration_time - self.compute_time

    @property
    def overlap_gain(self) -> float:
        """Fraction of the serial iteration saved by overlapping."""
        if self.serial_iteration_time <= 0:
            return 0.0
        return 1.0 - self.iteration_time / self.serial_iteration_time


def bucketed_iteration_time(
    *,
    forward_time: float,
    backward_time: float,
    allreduce_time: Callable[[int], float],
    gradient_bytes: int,
    n_buckets: int,
) -> OverlapResult:
    """Iteration time with ``n_buckets`` bucketed gradient allreduces.

    ``allreduce_time(nbytes)`` maps a payload size to its collective time
    (callers pass a closure over the simulated fabric, so per-message
    overheads make many tiny buckets genuinely worse — the real trade-off).
    Bucket *i* (back-to-front) completes at
    ``forward_time + backward_time * (i+1)/n`` and its allreduce runs as
    soon as both the bucket and the NIC are free.
    """
    if forward_time < 0 or backward_time < 0:
        raise ValueError("compute times must be >= 0")
    if gradient_bytes < 1 or n_buckets < 1:
        raise ValueError("gradient_bytes and n_buckets must be >= 1")
    bucket_bytes = gradient_bytes // n_buckets
    bucket_comm = allreduce_time(max(1, bucket_bytes))
    full_comm = allreduce_time(gradient_bytes)
    compute = forward_time + backward_time

    nic_free = 0.0
    for i in range(n_buckets):
        ready = forward_time + backward_time * (i + 1) / n_buckets
        nic_free = max(ready, nic_free) + bucket_comm
    return OverlapResult(
        n_buckets=n_buckets,
        compute_time=compute,
        total_comm_time=n_buckets * bucket_comm,
        iteration_time=max(compute, nic_free),
        serial_iteration_time=compute + full_comm,
    )


def _default_segment_bytes(bucket_bytes: int) -> int:
    """Pipeline segment rule used by the Figure 5/6 benchmarks."""
    return max(64 * 1024, bucket_bytes // 16)


def simulate_bucketed_overlap(
    *,
    n_ranks: int,
    forward_time: float,
    backward_time: float,
    gradient_bytes: int,
    n_buckets: int,
    algorithm: str = "multicolor",
    itemsize: int = 4,
    topology: str = "fat_tree",
    network=None,
    serialize_buckets: bool = True,
    segment_bytes: Callable[[int], int] | int | None = None,
    **alg_kwargs,
) -> OverlapResult:
    """Run the bucketed overlap for real on the simulated fabric.

    One engine + one world carry *all* bucket collectives: a driver process
    releases bucket *i*'s schedule at its gradient-ready time
    ``forward + backward * (i+1)/n`` (and, with ``serialize_buckets``, not
    before bucket ``i-1`` finished — the DDP execution model); each bucket
    is a compiled schedule run by its own
    :class:`~repro.mpi.schedule.ScheduleExecutor`, so with
    ``serialize_buckets=False`` concurrent bucket collectives share NIC
    and link bandwidth through the fabric instead of a closed-form sum.

    ``segment_bytes`` may be an int, a callable of the bucket's byte size,
    or ``None`` for the benchmark default ``max(64 KiB, bytes/16)``.
    """
    from repro.mpi.collectives import ALLREDUCE_COMPILERS
    from repro.mpi.datatypes import SizeBuffer, chunk_ranges
    from repro.mpi.runner import build_world
    from repro.mpi.schedule import ScheduleExecutor
    from repro.net.params import CONNECTX5_DUAL

    if forward_time < 0 or backward_time < 0:
        raise ValueError("compute times must be >= 0")
    if gradient_bytes < 1 or n_buckets < 1:
        raise ValueError("gradient_bytes and n_buckets must be >= 1")
    try:
        compiler = ALLREDUCE_COMPILERS[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown allreduce algorithm {algorithm!r}; "
            f"choose from {sorted(ALLREDUCE_COMPILERS)}"
        ) from None
    network = network if network is not None else CONNECTX5_DUAL
    compute = forward_time + backward_time
    count = max(1, gradient_bytes // itemsize)

    def seg_for(nbytes: int) -> int:
        if segment_bytes is None:
            return _default_segment_bytes(nbytes)
        if callable(segment_bytes):
            return segment_bytes(nbytes)
        return segment_bytes

    def compile_for(n_elems: int) -> object:
        return compiler(
            n_ranks, n_elems, itemsize,
            segment_bytes=seg_for(n_elems * itemsize), **alg_kwargs,
        )

    # Serial baseline: compute, then one full-gradient allreduce (own world
    # so its traffic does not pollute the overlapped run).
    engine, world, comm = build_world(n_ranks, topology=topology, network=network)
    bufs = [SizeBuffer(count, itemsize) for _ in range(n_ranks)]
    full = ScheduleExecutor(comm, compile_for(count), bufs)
    serial_time = compute + full.run()

    # Overlapped run: one world for every bucket collective.
    engine, world, comm = build_world(n_ranks, topology=topology, network=network)
    spans: list[list[float]] = [[0.0, 0.0] for _ in range(n_buckets)]
    bucket_sizes = [hi - lo for lo, hi in chunk_ranges(count, n_buckets)]

    def driver():
        dones = []
        prev_done = None
        for i, n_elems in enumerate(bucket_sizes):
            ready = forward_time + backward_time * (i + 1) / n_buckets
            if engine.now < ready:
                yield engine.timeout(ready - engine.now)
            if serialize_buckets and prev_done is not None:
                yield prev_done  # already-triggered events resume immediately
            if n_elems < 1:
                continue
            bucket_bufs = [SizeBuffer(n_elems, itemsize) for _ in range(n_ranks)]
            executor = ScheduleExecutor(
                comm, compile_for(n_elems), bucket_bufs, tag=("bkt", i)
            )
            done = executor.launch()
            spans[i][0] = engine.now
            done.callbacks.append(
                lambda _ev, i=i: spans[i].__setitem__(1, engine.now)
            )
            dones.append(done)
            prev_done = done
        for done in dones:
            yield done

    engine.run(engine.process(driver(), name="bucket-driver"))
    last_done = max((s[1] for s in spans), default=0.0)
    return OverlapResult(
        n_buckets=n_buckets,
        compute_time=compute,
        total_comm_time=sum(s[1] - s[0] for s in spans),
        iteration_time=max(compute, last_done),
        serial_iteration_time=serial_time,
        bucket_spans=tuple((s[0], s[1]) for s in spans),
    )
