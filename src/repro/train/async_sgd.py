"""Asynchronous SGD with a parameter server — the paper's §6 future work.

"In future, we would like to explore the use and impact of our
optimizations for the case of asynchronous SGD."  This module builds that
exploration: a parameter-server trainer running on the same simulated
cluster, with real NumPy gradients and genuinely emergent staleness.

Design (the classical Downpour/EASGD-family setup the paper cites):

* rank 0 is the **parameter server** (PS); ranks ``1..N`` are workers;
* each worker pulls the current weights, computes a gradient on its own
  mini-batch (its simulated compute time includes per-worker jitter, so
  workers genuinely desynchronize), and pushes the gradient to the PS;
* the PS applies updates in *arrival order*; a gradient computed against
  weight version ``v`` applied at version ``V`` has staleness ``V - v``;
* optionally, updates are **staleness-aware** (Zhang et al., the paper's
  reference [10]): the learning rate is scaled by ``1 / (1 + staleness)``.

Because pushes ride the simulated network and compute times differ, the
staleness distribution is an *output* of the simulation, not an input.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.data.dimd import DIMDStore
from repro.models.nn.network import Network
from repro.mpi.datatypes import ArrayBuffer, SizeBuffer
from repro.mpi.runner import build_world
from repro.utils.rng import rng_for

__all__ = ["AsyncSGDResult", "AsyncSGDTrainer"]

_PUSH = "ps-push"
_PULL = "ps-pull"


@dataclass
class AsyncSGDResult:
    """Outcome of an asynchronous training run."""

    iterations: int                  # total gradient updates applied
    simulated_seconds: float         # wall-clock on the simulated cluster
    mean_loss: float                 # mean loss over the last quarter
    staleness: list[int] = field(default_factory=list)

    @property
    def mean_staleness(self) -> float:
        return float(np.mean(self.staleness)) if self.staleness else 0.0

    @property
    def max_staleness(self) -> int:
        return max(self.staleness) if self.staleness else 0

    @property
    def updates_per_second(self) -> float:
        if self.simulated_seconds <= 0:
            return float("inf")
        return self.iterations / self.simulated_seconds


class AsyncSGDTrainer:
    """Parameter-server asynchronous SGD on the simulated cluster."""

    def __init__(
        self,
        network_factory: Callable[[np.random.Generator], Network],
        stores: list[DIMDStore],
        *,
        batch_size: int = 8,
        lr: float = 0.05,
        staleness_aware: bool = False,
        compute_time: float = 1e-3,
        compute_jitter: float = 0.3,
        worker_speed_factors: list[float] | None = None,
        seed: int = 0,
    ):
        """
        Parameters
        ----------
        stores:
            One DIMD store per *worker* (the PS holds no data).
        compute_time / compute_jitter:
            Mean simulated seconds per gradient computation, and the
            relative spread across workers/iterations — the jitter is what
            makes workers drift apart and staleness appear.
        worker_speed_factors:
            Optional per-worker compute multipliers (>= 1 = slower), for
            straggler studies: async training degrades gracefully where
            synchronous SGD barriers on the slowest node.
        """
        if not stores:
            raise ValueError("need at least one worker store")
        if batch_size < 1 or lr <= 0:
            raise ValueError("batch_size >= 1 and lr > 0 required")
        if compute_time <= 0 or not 0 <= compute_jitter < 1:
            raise ValueError("compute_time > 0 and 0 <= jitter < 1 required")
        if worker_speed_factors is not None:
            if len(worker_speed_factors) != len(stores):
                raise ValueError("need one speed factor per worker")
            if min(worker_speed_factors) <= 0:
                raise ValueError("speed factors must be positive")
        self.n_workers = len(stores)
        self.stores = stores
        self.batch_size = batch_size
        self.lr = lr
        self.staleness_aware = staleness_aware
        self.compute_time = compute_time
        self.compute_jitter = compute_jitter
        self.worker_speed_factors = (
            list(worker_speed_factors)
            if worker_speed_factors is not None
            else [1.0] * self.n_workers
        )
        self.seed = seed

        self.master = network_factory(rng_for(seed, "init"))
        self.worker_nets = [
            network_factory(rng_for(seed, "w", w)) for w in range(self.n_workers)
        ]
        for net in self.worker_nets:
            net.set_flat_params(self.master.get_flat_params())
        self._losses: list[float] = []

    def run(
        self,
        iterations_per_worker: int | None = None,
        *,
        time_limit: float | None = None,
    ) -> AsyncSGDResult:
        """Run the parameter server and workers; returns stats.

        Exactly one of ``iterations_per_worker`` (fixed per-worker quota)
        or ``time_limit`` (simulated seconds; workers stop starting new
        iterations past it) must be given.  The time-budget mode is the
        right one for straggler studies: a slow worker merely contributes
        fewer updates instead of gating the whole run.
        """
        if (iterations_per_worker is None) == (time_limit is None):
            raise ValueError(
                "give exactly one of iterations_per_worker or time_limit"
            )
        if iterations_per_worker is not None and iterations_per_worker < 1:
            raise ValueError("iterations_per_worker must be >= 1")
        if time_limit is not None and time_limit <= 0:
            raise ValueError("time_limit must be positive")
        engine, world, comm = build_world(self.n_workers + 1, topology="star")
        version = [0]                      # PS weight version counter
        worker_version = [0] * self.n_workers
        staleness: list[int] = []
        self._losses = []

        def ps_program():
            active = self.n_workers
            while active:
                msg = yield world.recv_any(0, _PUSH)
                if msg.nbytes == 0:  # retirement sentinel
                    active -= 1
                    continue
                worker = msg.source - 1
                grad = msg.payload
                stale = version[0] - worker_version[worker]
                staleness.append(stale)
                lr = self.lr / (1 + stale) if self.staleness_aware else self.lr
                w = self.master.get_flat_params()
                self.master.set_flat_params(w - lr * grad)
                version[0] += 1
                worker_version[worker] = version[0]
                world.isend(
                    0, msg.source, _PULL,
                    ArrayBuffer(self.master.get_flat_params()),
                )

        def worker_program(w: int):
            rank = w + 1
            net = self.worker_nets[w]
            rng = rng_for(self.seed, "jitter", w)
            it = 0
            while True:
                if iterations_per_worker is not None:
                    if it >= iterations_per_worker:
                        break
                elif engine.now >= time_limit:
                    break
                batch_rng = rng_for(self.seed, "abatch", w, it)
                images, labels = self.stores[w].random_batch(
                    self.batch_size, batch_rng
                )
                loss, grad = net.loss_and_grad(images, labels)
                self._losses.append(loss)
                duration = (
                    self.compute_time
                    * self.worker_speed_factors[w]
                    * (1.0 + self.compute_jitter * (2 * rng.random() - 1))
                )
                yield engine.timeout(duration)
                world.isend(rank, 0, _PUSH, ArrayBuffer(grad))
                msg = yield world.recv(rank, 0, _PULL)
                net.set_flat_params(msg.payload)
                it += 1
            world.isend(rank, 0, _PUSH, SizeBuffer(0))

        procs = [engine.process(ps_program(), name="ps")]
        procs += [
            engine.process(worker_program(w), name=f"worker{w}")
            for w in range(self.n_workers)
        ]
        engine.run(engine.all_of(procs))
        tail = self._losses[-max(1, len(self._losses) // 4):]
        return AsyncSGDResult(
            iterations=version[0],
            simulated_seconds=engine.now,
            mean_loss=float(np.mean(tail)),
            staleness=staleness,
        )

    def evaluate(self, images: np.ndarray, labels: np.ndarray) -> float:
        """Top-1 accuracy of the PS master weights."""
        return self.master.accuracy(images, labels)
