"""Silent-data-corruption chaos for the training step: flip one gradient
bit on every (rank x bucket x iteration) point and prove the defense.

Each point runs a full multi-learner training job with one scripted
compute-plane bit-flip (:func:`repro.train.injection.sdc_flip` — bit 62
of one float64, between backward and the gradient allreduce), then
asserts five invariants:

1. **injected** — the scripted ``sdc`` fault actually fired, exactly
   once, at the scripted iteration against the scripted rank;
2. **detected before apply** — the same step's result carries an
   ``sdc-detect`` event: the fingerprint invariants caught the flip at
   the allreduce boundary, before any optimizer apply;
3. **attributed** — the detection names the corrupting rank (and the
   recompute confirmation, when enabled, agrees);
4. **contained** — exactly that learner is quarantined (an elastic
   shrink), and every survivor replica stays synchronized;
5. **repaired bit-exact** — the run's final params equal a fault-free
   reference that shrinks the same learner at the same iteration as a
   *controlled* shrink: the poisoned iteration was rolled back and
   re-run on the survivors with no numeric residue.

The sweep also proves the **zero-cost clean path**: a fault-free run
with fingerprinting enabled lands on bit-identical params *and* the
identical simulated time as one with it disabled — detection spends no
simulated events, so every existing golden stays byte-stable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data import DIMDStore
from repro.data.codec import encode_image
from repro.models.nn import Dense, Flatten, Network, ReLU
from repro.train.distributed import DistributedSGDTrainer
from repro.train.injection import FaultPlan, sdc_flip
from repro.train.schedule import WarmupStepSchedule

__all__ = ["SDCChaosOutcome", "SDCChaosPoint", "SDCChaosReport",
           "sdc_chaos_points", "sdc_chaos_sweep"]

#: Sweep geometry: learners in the group, gradient buckets, train steps.
_N_LEARNERS = 3
_N_BUCKETS = 2
_N_STEPS = 4
_N_CLASSES = 3
_SEED = 11


@dataclass(frozen=True)
class SDCChaosPoint:
    """One scripted flip: which rank, which bucket, which iteration."""

    rank: int
    bucket: int
    iteration: int

    def label(self) -> str:
        return (
            f"sdc rank={self.rank} bucket={self.bucket} "
            f"iteration={self.iteration}"
        )


@dataclass
class SDCChaosOutcome:
    point: SDCChaosPoint
    ok: bool
    violations: list[str] = field(default_factory=list)


@dataclass
class SDCChaosReport:
    outcomes: list[SDCChaosOutcome]
    clean_equivalent: bool = True

    @property
    def all_ok(self) -> bool:
        return self.clean_equivalent and all(o.ok for o in self.outcomes)

    def format(self) -> str:
        lines = [
            f"sdc chaos: {len(self.outcomes)} points, "
            f"{sum(o.ok for o in self.outcomes)} ok, "
            f"{sum(not o.ok for o in self.outcomes)} failed"
        ]
        for o in self.outcomes:
            mark = "ok " if o.ok else "FAIL"
            lines.append(f"  [{mark}] {o.point.label()}")
            for v in o.violations:
                lines.append(f"         - {v}")
        lines.append(
            "  clean path: fingerprinting "
            + ("zero-cost (params and sim time bit-identical)"
               if self.clean_equivalent
               else "PERTURBED the clean run")
        )
        return "\n".join(lines)


def _build_trainer(
    n_learners: int = _N_LEARNERS,
    seed: int = _SEED,
    *,
    plan: FaultPlan | None = None,
    sdc_check: bool = False,
    **overrides,
) -> DistributedSGDTrainer:
    """A small deterministic training job (the elastic-test fixture shape)."""

    def net_factory(rng):
        return Network(
            [Flatten(), Dense(16, 10, rng), ReLU(),
             Dense(10, _N_CLASSES, rng)]
        )

    rng = np.random.default_rng(0)
    stores = []
    for learner in range(n_learners):
        labels = rng.integers(0, _N_CLASSES, size=24)
        records = []
        for lab in labels:
            img = rng.integers(0, 60, size=(1, 4, 4), dtype=np.uint8)
            img[0, int(lab) % 4, :] = 255
            records.append(encode_image(img))
        stores.append(DIMDStore(records, labels, learner=learner))
    schedule = WarmupStepSchedule(
        batch_per_gpu=4, n_workers=n_learners, base_lr=0.08,
        reference_batch=4 * n_learners, warmup_epochs=0.0,
    )
    kwargs = dict(
        gpus_per_node=1, batch_per_gpu=4, schedule=schedule,
        reducer="multicolor", seed=seed, momentum=0.9,
        reshuffle_on_shrink=False, fault_plan=plan,
        sdc_check=sdc_check, step_buckets=_N_BUCKETS,
    )
    kwargs.update(overrides)
    return DistributedSGDTrainer(net_factory, stores, **kwargs)


def _scripted_reference(
    point: SDCChaosPoint, n_learners: int, **overrides
) -> np.ndarray:
    """Final params of a fault-free run that sheds the same learner at the
    same iteration as a controlled shrink (the repair target).  Pass the
    faulted run's mode switches (e.g. ``step_dag=True``) as overrides so
    the reference reduces in the identical association order."""
    trainer = _build_trainer(n_learners, **overrides)
    with trainer:
        for iteration in range(_N_STEPS):
            grads, losses = trainer.step_compute()
            if iteration == point.iteration:
                del grads[point.rank]
                trainer.absorb_failure(point.rank, reshuffle=False)
            summed, n = trainer._allreduce(grads)
            trainer.step_apply(summed, n, losses)
        return trainer.params()


def run_sdc_point(point: SDCChaosPoint) -> SDCChaosOutcome:
    """Run one scripted flip and check the five defense invariants."""
    violations: list[str] = []
    plan = FaultPlan([
        sdc_flip(point.rank, point.iteration, bucket=point.bucket)
    ])
    trainer = _build_trainer(plan=plan, sdc_check=True)
    with trainer:
        results = [trainer.step() for _ in range(_N_STEPS)]
        injected = [e for e in trainer.fault_log if e.kind == "sdc"]
        detected = [e for e in trainer.fault_log if e.kind == "sdc-detect"]
        if len(injected) != 1 or injected[0].rank != point.rank:
            violations.append(
                f"expected one sdc injection against rank {point.rank}, "
                f"got {[str(e) for e in injected]}"
            )
        if len(detected) != 1:
            violations.append(
                f"expected one sdc-detect, got "
                f"{[str(e) for e in detected]} — a flip reached the "
                f"optimizer undetected"
            )
        elif detected[0].rank != point.rank:
            violations.append(
                f"detection named rank {detected[0].rank}, "
                f"injected rank {point.rank}"
            )
        hit = results[point.iteration]
        if hit.quarantined != (point.rank,):
            violations.append(
                f"step {point.iteration} quarantined {hit.quarantined}, "
                f"expected learner {point.rank}"
            )
        if trainer.n_learners != _N_LEARNERS - 1:
            violations.append(
                f"{trainer.n_learners} survivors, expected "
                f"{_N_LEARNERS - 1}"
            )
        for r in results:
            if r.iteration - 1 > point.iteration and r.quarantined:
                violations.append(
                    f"step {r.iteration - 1} quarantined {r.quarantined} "
                    f"with no fault scripted there"
                )
        try:
            trainer.check_synchronized()
        except AssertionError as exc:
            violations.append(f"survivors desynchronized: {exc}")
        ref = _scripted_reference(point, _N_LEARNERS)
        if not np.array_equal(trainer.params(), ref):
            violations.append(
                "final params diverge from the controlled-shrink "
                "reference — the poisoned iteration left numeric residue"
            )
    return SDCChaosOutcome(point, ok=not violations, violations=violations)


def _clean_equivalent() -> bool:
    """Fault-free runs with detection on vs off: params and simulated
    time must both be bit-identical (zero-sim-event bookkeeping)."""
    outcomes = []
    for check in (False, True):
        trainer = _build_trainer(sdc_check=check)
        with trainer:
            results = [trainer.step() for _ in range(_N_STEPS)]
            outcomes.append(
                (trainer.params(), [r.sim_time for r in results])
            )
    (params_off, times_off), (params_on, times_on) = outcomes
    return bool(np.array_equal(params_off, params_on)) and (
        times_off == times_on
    )


def sdc_chaos_points(*, smoke: bool = False) -> list[SDCChaosPoint]:
    """The sweep grid: every rank x bucket x a spread of iterations
    (smoke: corner ranks and buckets at one mid-run iteration)."""
    if smoke:
        return [
            SDCChaosPoint(rank, bucket, 1)
            for rank in (0, _N_LEARNERS - 1)
            for bucket in (0, _N_BUCKETS - 1)
        ]
    iterations = sorted({0, 1, _N_STEPS - 1})
    return [
        SDCChaosPoint(rank, bucket, iteration)
        for rank in range(_N_LEARNERS)
        for bucket in range(_N_BUCKETS)
        for iteration in iterations
    ]


def sdc_chaos_sweep(
    *,
    smoke: bool = False,
    max_points: int | None = None,
) -> SDCChaosReport:
    """Run every scripted-flip point plus the clean-path equivalence."""
    points = sdc_chaos_points(smoke=smoke)
    if max_points is not None and max_points < len(points):
        stride = len(points) / max_points
        points = [points[int(i * stride)] for i in range(max_points)]
    outcomes = [run_sdc_point(point) for point in points]
    return SDCChaosReport(outcomes, clean_equivalent=_clean_equivalent())
