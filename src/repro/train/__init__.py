"""Training: Algorithm 1 (functional), epoch timing, LR schedules, accuracy.

* :mod:`repro.train.schedule` — the Goyal et al. warm-up + step schedule
  the paper uses (§5).
* :mod:`repro.train.distributed` — Algorithm 1 executed for real on NumPy
  networks over the simulated MPI (gradients actually allreduced).
* :mod:`repro.train.pipeline` — the per-iteration/epoch timing model that
  combines storage, DPT, GPU and collective costs.
* :mod:`repro.train.accuracy` — the convergence surrogate producing
  top-1/loss curves (Figures 13-16) without 10^18 real FLOPs.
* :mod:`repro.train.injection` — live fault injection (crash / degrade /
  delay / drop / corrupt / sdc) into the simulated collectives and the
  compute plane, with elastic recovery in the trainer and bit-exact
  checkpoint/restore in :mod:`repro.train.checkpoint`.
* :mod:`repro.train.sdc` — silent-data-corruption defense: per-bucket
  gradient fingerprints checked at the allreduce boundary, attribution
  of the corrupting rank, quarantine and bit-exact re-run.
"""

from repro.train.schedule import WarmupStepSchedule
from repro.train.distributed import DistributedSGDTrainer, TrainStepResult
from repro.train.pipeline import EpochTimeModel, IterationBreakdown
from repro.train.accuracy import AccuracyModel
from repro.train.checkpoint import TrainerCheckpoint
from repro.train.injection import (
    FAULT_KINDS,
    CollectiveTimeout,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    RankFailure,
    corrupt_messages,
    crash,
    degrade_links,
    delay_messages,
    drop_messages,
    sdc_flip,
)
from repro.train.sdc import SDCDetected, SDCGuard, SDCVerdict
from repro.train.metrics import scaling_efficiency, speedup, time_to_epoch

__all__ = [
    "AccuracyModel",
    "CollectiveTimeout",
    "DistributedSGDTrainer",
    "EpochTimeModel",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "IterationBreakdown",
    "RankFailure",
    "SDCDetected",
    "SDCGuard",
    "SDCVerdict",
    "TrainStepResult",
    "TrainerCheckpoint",
    "WarmupStepSchedule",
    "corrupt_messages",
    "crash",
    "degrade_links",
    "delay_messages",
    "drop_messages",
    "scaling_efficiency",
    "speedup",
    "sdc_flip",
    "time_to_epoch",
]
