"""Algorithm 1, executed for real: data-parallel distributed SGD.

Every learner (node) holds a DataParallelTable of NumPy network replicas
(its "GPUs") and a DIMD store; each iteration

1. samples ``B_node`` images from its store with its own seeded RNG,
2. computes gradients across its GPUs (intra-node summation is inside the
   DataParallelTable),
3. sums gradients across learners — either exactly (``reducer="exact"``)
   or by actually running a simulated-MPI allreduce algorithm on the
   gradient buffers (``reducer="multicolor"`` etc.), and
4. applies an identical SGD update on every GPU.

Because every learner applies the same update to the same weights, the
replicas stay synchronized — asserted by :meth:`check_synchronized`.
The equivalence test in ``tests/train`` shows a K-learner trainer matches
serial large-batch SGD to float precision, which is the correctness claim
behind the paper's Algorithm 1.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.data.dimd import DIMDStore
from repro.data.shuffle import distributed_shuffle
from repro.dpt.table import (
    BaselineDataParallelTable,
    OptimizedDataParallelTable,
    _DataParallelTableBase,
)
from repro.models.nn.network import Network
from repro.mpi.collectives import ALLREDUCE_ALGORITHMS
from repro.mpi.datatypes import ArrayBuffer
from repro.mpi.runner import build_world
from repro.train.schedule import WarmupStepSchedule
from repro.utils.rng import rng_for

__all__ = ["DistributedSGDTrainer", "TrainStepResult"]


@dataclass
class TrainStepResult:
    """Per-iteration outcome."""

    iteration: int
    loss: float
    lr: float
    grad_norm: float


class DistributedSGDTrainer:
    """N learners x m GPUs running synchronous data-parallel SGD."""

    def __init__(
        self,
        network_factory: Callable[[np.random.Generator], Network],
        stores: list[DIMDStore],
        *,
        gpus_per_node: int = 2,
        batch_per_gpu: int = 8,
        schedule: WarmupStepSchedule | None = None,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
        reducer: str = "exact",
        dpt_variant: str = "optimized",
        seed: int = 0,
        shuffle_every: int | None = None,
    ):
        """
        Parameters
        ----------
        network_factory:
            Builds one replica given an RNG; all replicas are forced to
            identical initial weights (Algorithm 1's identical random init).
        stores:
            One DIMD store per learner.
        reducer:
            ``"exact"`` for direct NumPy summation, or any name in
            :data:`~repro.mpi.collectives.ALLREDUCE_ALGORITHMS` to push the
            gradients through the simulated MPI.
        shuffle_every:
            If set, run the Algorithm 2 distributed shuffle across learners
            every that many iterations.
        """
        if not stores:
            raise ValueError("need at least one learner store")
        if reducer != "exact" and reducer not in ALLREDUCE_ALGORITHMS:
            raise ValueError(
                f"unknown reducer {reducer!r}; use 'exact' or one of "
                f"{sorted(ALLREDUCE_ALGORITHMS)}"
            )
        if dpt_variant not in ("baseline", "optimized"):
            raise ValueError(f"unknown dpt_variant {dpt_variant!r}")
        if batch_per_gpu < 1 or gpus_per_node < 1:
            raise ValueError("batch_per_gpu and gpus_per_node must be >= 1")
        self.n_learners = len(stores)
        self.gpus_per_node = gpus_per_node
        self.batch_per_gpu = batch_per_gpu
        self.stores = stores
        self.reducer = reducer
        self.seed = seed
        self.shuffle_every = shuffle_every
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.schedule = schedule or WarmupStepSchedule(
            batch_per_gpu=batch_per_gpu,
            n_workers=self.n_learners * gpus_per_node,
            warmup_epochs=0.0,
        )

        init_rng = rng_for(seed, "init")
        master = network_factory(init_rng)
        table_cls = (
            OptimizedDataParallelTable
            if dpt_variant == "optimized"
            else BaselineDataParallelTable
        )
        self.tables: list[_DataParallelTableBase] = []
        for learner in range(self.n_learners):
            replicas = [
                network_factory(rng_for(seed, "replica", learner, g))
                for g in range(gpus_per_node)
            ]
            table = table_cls(replicas)
            table.broadcast_params(master.get_flat_params())
            self.tables.append(table)
        self.n_params = master.n_params
        self._velocity = np.zeros(self.n_params)
        self.iteration = 0
        self._shuffle_round = 0

    # -- public API ----------------------------------------------------------
    @property
    def node_batch(self) -> int:
        return self.batch_per_gpu * self.gpus_per_node

    @property
    def global_batch(self) -> int:
        return self.node_batch * self.n_learners

    @property
    def steps_per_epoch(self) -> int:
        total = sum(len(s) for s in self.stores)
        return max(1, total // self.global_batch)

    def params(self) -> np.ndarray:
        return self.tables[0].replicas[0].get_flat_params()

    def step(self) -> TrainStepResult:
        """One iteration of Algorithm 1 across all learners."""
        per_learner_grads: list[np.ndarray] = []
        losses: list[float] = []
        for learner, table in enumerate(self.tables):
            rng = rng_for(self.seed, "batch", learner, self.iteration)
            images, labels = self.stores[learner].random_batch(self.node_batch, rng)
            loss, grads = table.forward_backward(images, labels)
            per_learner_grads.append(grads)
            losses.append(loss)

        mean_grad = self._allreduce(per_learner_grads) / self.n_learners
        epoch = self.iteration / self.steps_per_epoch
        lr = self.schedule.lr_at(epoch)
        self._apply_update(mean_grad, lr)

        self.iteration += 1
        if self.shuffle_every and self.iteration % self.shuffle_every == 0:
            self.shuffle()
        return TrainStepResult(
            iteration=self.iteration,
            loss=float(np.mean(losses)),
            lr=lr,
            grad_norm=float(np.linalg.norm(mean_grad)),
        )

    def train_epoch(self) -> list[TrainStepResult]:
        return [self.step() for _ in range(self.steps_per_epoch)]

    def evaluate(self, images: np.ndarray, labels: np.ndarray) -> float:
        """Top-1 accuracy of the (synchronized) model."""
        return self.tables[0].replicas[0].accuracy(images, labels)

    def shuffle(self) -> None:
        """Algorithm 2 across all learners' stores."""
        if self.n_learners == 1:
            self.stores[0].local_permute(
                rng_for(self.seed, "perm", self._shuffle_round)
            )
            self._shuffle_round += 1
            return
        engine, world, comm = build_world(self.n_learners, topology="star")
        procs = [
            engine.process(
                distributed_shuffle(
                    comm,
                    r,
                    self.stores[r],
                    seed=self.seed,
                    round_id=self._shuffle_round,
                ),
                name=f"shuffle{r}",
            )
            for r in range(self.n_learners)
        ]
        engine.run(engine.all_of(procs))
        self._shuffle_round += 1

    def check_synchronized(self) -> None:
        """Assert every replica on every learner holds identical weights."""
        reference = self.params()
        for li, table in enumerate(self.tables):
            for gi, replica in enumerate(table.replicas):
                if not np.array_equal(replica.get_flat_params(), reference):
                    raise AssertionError(
                        f"replica (learner {li}, gpu {gi}) diverged"
                    )

    def close(self) -> None:
        for table in self.tables:
            table.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    # -- internals ----------------------------------------------------------
    def _allreduce(self, grads: list[np.ndarray]) -> np.ndarray:
        if self.reducer == "exact" or self.n_learners == 1:
            return np.sum(grads, axis=0)
        engine, _world, comm = build_world(self.n_learners, topology="star")
        program = ALLREDUCE_ALGORITHMS[self.reducer]
        buffers = [ArrayBuffer(g.copy()) for g in grads]
        procs = [
            engine.process(
                program(comm, r, buffers[r], tag=("it", self.iteration)),
                name=f"ar{r}",
            )
            for r in range(self.n_learners)
        ]
        engine.run(engine.all_of(procs))
        return buffers[0].array

    def _apply_update(self, mean_grad: np.ndarray, lr: float) -> None:
        """The identical SGD step every GPU performs."""
        w = self.params()
        g = mean_grad
        if self.weight_decay:
            g = g + self.weight_decay * w
        self._velocity = self.momentum * self._velocity + g
        new_w = w - lr * self._velocity
        for table in self.tables:
            table.broadcast_params(new_w)
